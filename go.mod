module partalloc

go 1.22
