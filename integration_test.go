package partalloc_test

import (
	"strings"
	"testing"

	"partalloc"
	"partalloc/internal/trace"
)

// Integration: a sequence serialized to JSON and replayed must produce
// exactly the same loads, ratios and reallocation statistics for every
// deterministic algorithm — the reproducibility contract behind
// `partsim -trace-out` / `-trace-in`.
func TestTraceReplayDeterminism(t *testing.T) {
	const n = 128
	orig := partalloc.PoissonWorkload(partalloc.WorkloadConfig{N: n, Arrivals: 800, Seed: 17})

	var buf strings.Builder
	if err := trace.WriteJSON(&buf, orig, "integration", n); err != nil {
		t.Fatal(err)
	}
	replayed, _, _, err := trace.ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}

	mks := map[string]func() partalloc.Allocator{
		"greedy":   func() partalloc.Allocator { return partalloc.NewGreedy(partalloc.MustNewMachine(n)) },
		"basic":    func() partalloc.Allocator { return partalloc.NewBasic(partalloc.MustNewMachine(n)) },
		"constant": func() partalloc.Allocator { return partalloc.NewConstant(partalloc.MustNewMachine(n)) },
		"periodic": func() partalloc.Allocator {
			return partalloc.NewPeriodic(partalloc.MustNewMachine(n), 2, partalloc.DecreasingSize)
		},
		"lazy": func() partalloc.Allocator {
			return partalloc.NewLazy(partalloc.MustNewMachine(n), 2, partalloc.DecreasingSize)
		},
		"random": func() partalloc.Allocator { return partalloc.NewRandom(partalloc.MustNewMachine(n), 9) },
	}
	for name, mk := range mks {
		a := partalloc.Simulate(mk(), orig, partalloc.SimOptions{})
		b := partalloc.Simulate(mk(), replayed, partalloc.SimOptions{})
		if a.MaxLoad != b.MaxLoad || a.LStar != b.LStar || a.Realloc != b.Realloc ||
			a.FinalLoad != b.FinalLoad || a.PeakRatio != b.PeakRatio {
			t.Errorf("%s: replay diverged: %+v vs %+v", name, a, b)
		}
	}
}

// Integration: cross-algorithm dominance facts that tie the whole stack
// together on one larger run.
func TestCrossAlgorithmDominance(t *testing.T) {
	const n = 512
	for seed := int64(0); seed < 3; seed++ {
		seq := partalloc.SaturationWorkload(partalloc.SaturationConfig{
			N: n, Events: 4000, Seed: seed, Churn: 0.25, Target: 2.0,
		})
		lstar := seq.OptimalLoad(n)

		constant := partalloc.Simulate(partalloc.NewConstant(partalloc.MustNewMachine(n)), seq, partalloc.SimOptions{})
		greedy := partalloc.Simulate(partalloc.NewGreedy(partalloc.MustNewMachine(n)), seq, partalloc.SimOptions{})
		d1 := partalloc.Simulate(partalloc.NewPeriodic(partalloc.MustNewMachine(n), 1, partalloc.DecreasingSize), seq, partalloc.SimOptions{})
		d3 := partalloc.Simulate(partalloc.NewPeriodic(partalloc.MustNewMachine(n), 3, partalloc.DecreasingSize), seq, partalloc.SimOptions{})

		// A_C is optimal; everyone else is at least optimal.
		if constant.MaxLoad != lstar {
			t.Fatalf("seed %d: A_C load %d != L* %d", seed, constant.MaxLoad, lstar)
		}
		for name, r := range map[string]partalloc.SimResult{"greedy": greedy, "d1": d1, "d3": d3} {
			if r.MaxLoad < lstar {
				t.Fatalf("seed %d %s: load below optimal", seed, name)
			}
		}
		// Theorem bounds.
		if greedy.MaxLoad > partalloc.GreedyBound(n)*lstar {
			t.Fatalf("seed %d: greedy exceeded its bound", seed)
		}
		if d1.MaxLoad > partalloc.UpperBound(n, 1)*lstar || d3.MaxLoad > partalloc.UpperBound(n, 3)*lstar {
			t.Fatalf("seed %d: A_M exceeded Theorem 4.2", seed)
		}
		// Reallocation frequency ordering: d=1 reallocates more than d=3.
		if d1.Realloc.Reallocations <= d3.Realloc.Reallocations {
			t.Fatalf("seed %d: realloc counts not ordered (%d vs %d)",
				seed, d1.Realloc.Reallocations, d3.Realloc.Reallocations)
		}
	}
}

// Integration: the closed-loop scheduler and the open-loop simulator agree
// on the degenerate case where every job runs alone (sequential arrivals,
// machine drained between jobs): slowdown 1 everywhere and max load 1.
func TestSchedulerMatchesOpenLoopWhenUncontended(t *testing.T) {
	const n = 16
	w := partalloc.SchedWorkload{}
	at := 0.0
	for i := 1; i <= 20; i++ {
		w.Jobs = append(w.Jobs, partalloc.SchedJob{
			ID: partalloc.TaskID(i), Size: 4, Arrival: at, Work: 1,
		})
		at += 2 // next arrival after the previous job surely finished
	}
	res := partalloc.Execute(partalloc.NewGreedy(partalloc.MustNewMachine(n)), w)
	if res.MaxLoad != 1 {
		t.Fatalf("max load %d, want 1", res.MaxLoad)
	}
	for _, j := range res.Jobs {
		if j.Slowdown != 1 {
			t.Fatalf("job %d slowdown %g, want 1", j.ID, j.Slowdown)
		}
	}
}
