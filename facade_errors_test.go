package partalloc_test

import (
	"errors"
	"strings"
	"testing"

	"partalloc"
)

// Error-path coverage for the public surface.

// loadSeqErr loads a JSON trace expected to fail validation and returns
// the error.
func loadSeqErr(t *testing.T, body string) error {
	t.Helper()
	_, _, _, err := partalloc.LoadSequence(strings.NewReader(body))
	if err == nil {
		t.Fatalf("sequence %q accepted", body)
	}
	return err
}

// TestSentinelErrorsViaErrorsIs checks that every typed sentinel survives
// the wrapping layers between the model packages and the public surface.
func TestSentinelErrorsViaErrorsIs(t *testing.T) {
	// ErrNotPowerOfTwo from machine construction.
	if _, err := partalloc.NewMachine(12); !errors.Is(err, partalloc.ErrNotPowerOfTwo) {
		t.Errorf("NewMachine(12): %v is not ErrNotPowerOfTwo", err)
	}
	// ErrNotPowerOfTwo from sequence validation (task size 3).
	err := loadSeqErr(t, `{"format":1,"n":8,"events":[{"kind":"arrive","task":1,"size":3}]}`)
	if !errors.Is(err, partalloc.ErrNotPowerOfTwo) {
		t.Errorf("size-3 task: %v is not ErrNotPowerOfTwo", err)
	}
	// ErrTaskTooLarge from sequence validation.
	err = loadSeqErr(t, `{"format":1,"n":4,"events":[{"kind":"arrive","task":1,"size":8}]}`)
	if !errors.Is(err, partalloc.ErrTaskTooLarge) {
		t.Errorf("oversized task: %v is not ErrTaskTooLarge", err)
	}
	// ErrDuplicateTask from sequence validation.
	err = loadSeqErr(t, `{"format":1,"n":4,"events":[{"kind":"arrive","task":1,"size":2},{"kind":"arrive","task":1,"size":2}]}`)
	if !errors.Is(err, partalloc.ErrDuplicateTask) {
		t.Errorf("duplicate arrival: %v is not ErrDuplicateTask", err)
	}

	// ErrOverloaded from the engine's Shed overload policy.
	eng, err := partalloc.NewEngine(
		partalloc.WithMaxQueue(1), partalloc.WithOverloadPolicy(partalloc.OverloadShed))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddTenant("t", partalloc.AlgoBasic, partalloc.MustNewMachine(4)); err != nil {
		t.Fatal(err)
	}
	err = eng.Submit("t",
		partalloc.Event{Kind: partalloc.EventArrive, Task: 1, Size: 1},
		partalloc.Event{Kind: partalloc.EventArrive, Task: 2, Size: 1})
	if !errors.Is(err, partalloc.ErrOverloaded) {
		t.Errorf("shed submission: %v is not ErrOverloaded", err)
	}

	// ErrTenantPoisoned from an engine apply failure, with the
	// allocator-side cause on the same chain. With MaxQueue 1 the batch
	// trigger is 1, so each submit applies immediately and the second
	// (duplicate) arrival poisons the tenant right there.
	if err := eng.Submit("t", partalloc.Event{Kind: partalloc.EventArrive, Task: 1, Size: 1}); err != nil {
		t.Fatal(err)
	}
	err = eng.Submit("t", partalloc.Event{Kind: partalloc.EventArrive, Task: 1, Size: 1})
	if !errors.Is(err, partalloc.ErrTenantPoisoned) || !errors.Is(err, partalloc.ErrDuplicateTask) {
		t.Errorf("poisoning submit: %v is not ErrTenantPoisoned wrapping ErrDuplicateTask", err)
	}
	if err := eng.Err("t"); !errors.Is(err, partalloc.ErrTenantPoisoned) {
		t.Errorf("Err after poisoning: %v", err)
	}
}

// TestSentinelErrorsFromAllocatorPanics checks the allocator-side wrapping:
// misuse panics carry error values that errors.Is recognizes. (The Engine
// converts these panics into returned errors; see internal/engine.)
func TestSentinelErrorsFromAllocatorPanics(t *testing.T) {
	recoverIs := func(t *testing.T, want error, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("no panic")
			}
			err, ok := r.(error)
			if !ok || !errors.Is(err, want) {
				t.Fatalf("panic %v is not %v", r, want)
			}
		}()
		f()
	}

	m := partalloc.MustNewMachine(8)
	t.Run("duplicate", func(t *testing.T) {
		a := partalloc.MustNew(partalloc.AlgoGreedy, m)
		a.Arrive(partalloc.Task{ID: 1, Size: 2})
		recoverIs(t, partalloc.ErrDuplicateTask, func() {
			a.Arrive(partalloc.Task{ID: 1, Size: 4})
		})
	})
	t.Run("too-large", func(t *testing.T) {
		a := partalloc.MustNew(partalloc.AlgoBasic, m)
		recoverIs(t, partalloc.ErrTaskTooLarge, func() {
			a.Arrive(partalloc.Task{ID: 1, Size: 16})
		})
	})
	t.Run("non-pow2", func(t *testing.T) {
		a := partalloc.MustNew(partalloc.AlgoRandom, m)
		recoverIs(t, partalloc.ErrNotPowerOfTwo, func() {
			a.Arrive(partalloc.Task{ID: 1, Size: 3})
		})
	})
	t.Run("machine-full", func(t *testing.T) {
		// Fail both PEs of an N=2 machine: no healthy submachine remains.
		m2 := partalloc.MustNewMachine(2)
		a := partalloc.MustNew(partalloc.AlgoBasic, m2)
		ft := a.(partalloc.FaultTolerant)
		ft.FailPE(0)
		ft.FailPE(1)
		recoverIs(t, partalloc.ErrMachineFull, func() {
			a.Arrive(partalloc.Task{ID: 1, Size: 1})
		})
	})
}

func TestNewMachineRejectsNonPow2(t *testing.T) {
	for _, n := range []int{0, -4, 3, 100} {
		if _, err := partalloc.NewMachine(n); err == nil {
			t.Errorf("NewMachine(%d) accepted", n)
		}
	}
}

func TestNewTopologyErrors(t *testing.T) {
	if _, err := partalloc.NewTopology("torus", 16); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := partalloc.NewTopology("tree", 12); err == nil {
		t.Error("non-power-of-two size accepted")
	}
}

func TestLoadSequenceErrors(t *testing.T) {
	if _, _, _, err := partalloc.LoadSequence(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	// Invalid sequence content must be rejected at load time.
	bad := `{"format":1,"n":4,"events":[{"kind":"arrive","task":1,"size":8}]}`
	if _, _, _, err := partalloc.LoadSequence(strings.NewReader(bad)); err == nil {
		t.Error("oversized task accepted")
	}
}

func TestSaveLoadRoundTripThroughFacade(t *testing.T) {
	seq := partalloc.Figure1Sequence()
	var b strings.Builder
	if err := partalloc.SaveSequence(&b, seq, "fig1", 4); err != nil {
		t.Fatal(err)
	}
	got, label, n, err := partalloc.LoadSequence(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if label != "fig1" || n != 4 || len(got.Events) != len(seq.Events) {
		t.Fatalf("round trip lost data: %q %d %d", label, n, len(got.Events))
	}
}

func TestMustNewMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewMachine(3) did not panic")
		}
	}()
	partalloc.MustNewMachine(3)
}
