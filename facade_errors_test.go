package partalloc_test

import (
	"strings"
	"testing"

	"partalloc"
)

// Error-path coverage for the public surface.

func TestNewMachineRejectsNonPow2(t *testing.T) {
	for _, n := range []int{0, -4, 3, 100} {
		if _, err := partalloc.NewMachine(n); err == nil {
			t.Errorf("NewMachine(%d) accepted", n)
		}
	}
}

func TestNewTopologyErrors(t *testing.T) {
	if _, err := partalloc.NewTopology("torus", 16); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := partalloc.NewTopology("tree", 12); err == nil {
		t.Error("non-power-of-two size accepted")
	}
}

func TestLoadSequenceErrors(t *testing.T) {
	if _, _, _, err := partalloc.LoadSequence(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	// Invalid sequence content must be rejected at load time.
	bad := `{"format":1,"n":4,"events":[{"kind":"arrive","task":1,"size":8}]}`
	if _, _, _, err := partalloc.LoadSequence(strings.NewReader(bad)); err == nil {
		t.Error("oversized task accepted")
	}
}

func TestSaveLoadRoundTripThroughFacade(t *testing.T) {
	seq := partalloc.Figure1Sequence()
	var b strings.Builder
	if err := partalloc.SaveSequence(&b, seq, "fig1", 4); err != nil {
		t.Fatal(err)
	}
	got, label, n, err := partalloc.LoadSequence(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if label != "fig1" || n != 4 || len(got.Events) != len(seq.Events) {
		t.Fatalf("round trip lost data: %q %d %d", label, n, len(got.Events))
	}
}

func TestMustNewMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewMachine(3) did not panic")
		}
	}()
	partalloc.MustNewMachine(3)
}
