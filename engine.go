package partalloc

import (
	"context"
	"fmt"
	"strings"
	"time"

	"partalloc/internal/core"
	"partalloc/internal/engine"
	"partalloc/internal/fault"
	"partalloc/internal/task"
	"partalloc/internal/topology"
	"partalloc/internal/wal"
)

// Event is one task arrival or departure in a tenant's stream; Sequence
// bundles an ordered slice of them.
type Event = task.Event

// Event kinds for building streams by hand; generated workloads
// (PoissonWorkload) produce them already ordered.
const (
	// EventArrive is a task-arrival event.
	EventArrive = task.Arrive
	// EventDepart is a task-departure event.
	EventDepart = task.Depart
)

// EngineConfig parameterizes NewEngine; the zero value selects the
// defaults (min(GOMAXPROCS, 8) shards, 256-event batches, no audit, no
// queue bound, no journal). Overload and journal behavior are set with
// EngineOptions, which override the corresponding fields.
type EngineConfig = engine.Config

// EngineTenantStats is a point-in-time ledger snapshot for one tenant:
// applied events, batch apply latencies, current and peak max-load, the
// running optimal bound L*, reallocation counters, and the robustness
// ledgers (shed/dropped events, degradation transitions, breaker state).
type EngineTenantStats = engine.TenantStats

// DegradeTransition records one move on a tenant's degradation ladder
// (EngineTenantStats.Degrades).
type DegradeTransition = engine.DegradeTransition

// OverloadPolicy selects what Submit does when a submission would push a
// tenant's queue past the WithMaxQueue bound.
type OverloadPolicy = engine.OverloadPolicy

// Overload policies for WithOverloadPolicy.
const (
	// OverloadBlock applies backpressure: oversized submissions are
	// admitted in bound-sized chunks, applying batches in between.
	OverloadBlock = engine.Block
	// OverloadShed rejects over-bound submissions whole with ErrOverloaded.
	OverloadShed = engine.Shed
	// OverloadDegrade admits like OverloadBlock but additionally trades
	// placement quality for ingestion speed, turning the paper's d knob
	// on the tenant's allocator when its apply-latency EWMA exceeds the
	// degrade budget; see docs/ENGINE.md.
	OverloadDegrade = engine.Degrade
)

// JournalSyncPolicy selects when a journaling engine fsyncs its log.
type JournalSyncPolicy = wal.SyncPolicy

// Journal sync policies for WithJournalSync; docs/ENGINE.md discusses
// the durability trade-offs.
const (
	// JournalSyncNever leaves flushing to the OS: survives process
	// crashes (SIGKILL included), not power loss. The default.
	JournalSyncNever = wal.SyncNever
	// JournalSyncBatched fsyncs every few appends — bounded loss.
	JournalSyncBatched = wal.SyncBatched
	// JournalSyncAlways fsyncs every append — full durability.
	JournalSyncAlways = wal.SyncAlways
)

// Engine sentinel errors, recognizable with errors.Is. Allocator-side
// sentinels (ErrMachineFull, ErrDuplicateTask, ...) appear on the same
// chains when an apply fails.
var (
	// ErrUnknownTenant reports an operation on an unregistered tenant.
	ErrUnknownTenant = engine.ErrUnknownTenant
	// ErrDuplicateTenant reports AddTenant on an existing tenant ID.
	ErrDuplicateTenant = engine.ErrDuplicateTenant
	// ErrTenantPoisoned reports an operation on a tenant whose allocator
	// already failed; the chain includes the original cause. On a
	// journaling engine the circuit breaker makes this transient: after a
	// backoff the tenant is rebuilt from its journaled safe prefix.
	ErrTenantPoisoned = engine.ErrTenantPoisoned
	// ErrOverloaded reports a submission rejected whole by the
	// OverloadShed policy; none of its events were queued.
	ErrOverloaded = engine.ErrOverloaded
)

// engineOptions accumulates EngineOptions.
type engineOptions struct {
	maxQueue    int
	maxQueueSet bool
	policy      OverloadPolicy
	policySet   bool
	budget      time.Duration
	journalDir  string
	sync        JournalSyncPolicy
}

// EngineOption configures NewEngine and RecoverEngine beyond the plain
// EngineConfig: queue bounds, overload policy, and the write-ahead
// journal.
type EngineOption func(*engineOptions)

// WithMaxQueue bounds each tenant's ingestion queue to n events
// (0 = unbounded). What happens past the bound is WithOverloadPolicy's
// call.
func WithMaxQueue(n int) EngineOption {
	return func(o *engineOptions) { o.maxQueue, o.maxQueueSet = n, true }
}

// WithOverloadPolicy selects the over-bound behavior: OverloadBlock
// (default), OverloadShed, or OverloadDegrade.
func WithOverloadPolicy(p OverloadPolicy) EngineOption {
	return func(o *engineOptions) { o.policy, o.policySet = p, true }
}

// WithDegradeBudget sets the per-tenant batch apply-latency budget the
// OverloadDegrade controller steers by (default 5ms).
func WithDegradeBudget(d time.Duration) EngineOption {
	return func(o *engineOptions) { o.budget = d }
}

// WithJournal turns on write-ahead journaling in dir: every ingestion
// call is appended to a segmented log before tenant state changes, the
// engine becomes recoverable with RecoverEngine, and poisoned tenants
// heal through the circuit breaker instead of staying down. Close the
// engine when done.
func WithJournal(dir string) EngineOption {
	return func(o *engineOptions) { o.journalDir = dir }
}

// WithJournalSync selects the journal's fsync policy (default
// JournalSyncNever).
func WithJournalSync(p JournalSyncPolicy) EngineOption {
	return func(o *engineOptions) { o.sync = p }
}

// apply folds the options into cfg and returns the journal parameters.
func (o engineOptions) apply(cfg EngineConfig) EngineConfig {
	if o.maxQueueSet {
		cfg.MaxQueue = o.maxQueue
	}
	if o.policySet {
		cfg.Overload = o.policy
	}
	if o.budget > 0 {
		cfg.DegradeBudget = o.budget
	}
	cfg.Rebuild = rebuildSpec
	return cfg
}

// Engine multiplexes many independent tenant machines behind one
// concurrent ingestion API: tenants are hash-partitioned across
// lock-striped shards, events are applied in batches through the
// allocators' batch fast path, and Replay fans out one worker per shard.
// Allocator panics (capacity exhaustion under faults, stream misuse) are
// converted into returned errors that poison the offending tenant and
// leave the rest of the fleet running. With WithMaxQueue the ingestion
// queues are bounded, and with WithJournal the engine survives crashes
// and heals poisoned tenants; see docs/ENGINE.md.
type Engine struct {
	eng *engine.Engine
}

// NewEngine builds an engine from cfg (zero value = defaults) and
// options. The error is always nil unless WithJournal is given and the
// journal directory cannot be opened.
func NewEngine(cfg EngineConfig, opts ...EngineOption) (*Engine, error) {
	var o engineOptions
	for _, opt := range opts {
		opt(&o)
	}
	cfg = o.apply(cfg)
	if o.journalDir != "" {
		log, err := wal.Open(o.journalDir, wal.Options{Sync: o.sync})
		if err != nil {
			return nil, fmt.Errorf("partalloc: NewEngine: %w", err)
		}
		cfg.Journal = log
	}
	return &Engine{eng: engine.New(cfg)}, nil
}

// RecoverEngine reconstructs a journaling engine from the log a crashed
// (or closed) engine left in dir: tenants are rebuilt from their
// registration records and every journaled ingestion call is re-applied,
// reproducing ledgers and queue contents exactly — including tenants the
// crash left poisoned. The recovered engine journals onward in the same
// directory. Pass the same EngineConfig and options the original engine
// ran with; WithJournal is implied by dir.
func RecoverEngine(cfg EngineConfig, dir string, opts ...EngineOption) (*Engine, error) {
	var o engineOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.journalDir != "" && o.journalDir != dir {
		return nil, fmt.Errorf("partalloc: RecoverEngine: WithJournal(%q) conflicts with recovery directory %q", o.journalDir, dir)
	}
	eng, err := engine.Recover(o.apply(cfg), dir, wal.Options{Sync: o.sync})
	if err != nil {
		return nil, fmt.Errorf("partalloc: RecoverEngine: %w", err)
	}
	return &Engine{eng: eng}, nil
}

// Close releases the engine's journal, if any. Queued events are NOT
// flushed: they are journaled, and RecoverEngine restores them.
func (e *Engine) Close() error {
	if j := e.eng.Journal(); j != nil {
		return j.Close()
	}
	return nil
}

// AddTenant registers a tenant backed by a fresh allocator built exactly
// as New(algo, m, opts...) would, including WithFaults schedules, which
// the engine injects at the event indexes of the tenant's own stream, and
// WithTopology hosts, which price the tenant's migrations in network hops
// (EngineTenantStats.Topology/MigHops/ForcedHops). The same options are
// captured as the tenant's rebuild recipe, so on a journaling engine the
// tenant is recoverable and breaker-protected with no extra wiring.
func (e *Engine) AddTenant(id string, algo Algorithm, m *Machine, opts ...Option) error {
	a, err := New(algo, m, opts...)
	if err != nil {
		return err
	}
	ua, sched, host := unwrapRun(a)
	spec, err := tenantSpec(id, algo, m, opts)
	if err != nil {
		return err
	}
	return e.eng.AddTenantSpec(spec, ua, sched, host)
}

// Submit queues events for a tenant, applying a batch whenever the
// queue reaches the configured batch size. Past a WithMaxQueue bound the
// overload policy takes over: OverloadBlock and OverloadDegrade admit in
// bound-sized chunks, OverloadShed fails with ErrOverloaded.
func (e *Engine) Submit(id string, evs ...Event) error {
	return e.eng.Submit(id, evs...)
}

// Flush applies a tenant's queued events immediately.
func (e *Engine) Flush(id string) error { return e.eng.Flush(id) }

// FlushAll flushes every tenant and returns the first error.
func (e *Engine) FlushAll() error { return e.eng.FlushAll() }

// Replay feeds each tenant its stream in batches, one parallel worker
// per shard. Cancelling ctx drains the batches in flight and returns
// ctx.Err(), like every other context-aware entry point.
func (e *Engine) Replay(ctx context.Context, streams map[string][]Event) error {
	return e.eng.Replay(ctx, streams)
}

// Tenants returns all tenant IDs in sorted order.
func (e *Engine) Tenants() []string { return e.eng.Tenants() }

// TenantStats snapshots one tenant's ledger.
func (e *Engine) TenantStats(id string) (EngineTenantStats, error) {
	return e.eng.TenantStats(id)
}

// Stats snapshots every tenant's ledger in sorted ID order.
func (e *Engine) Stats() []EngineTenantStats { return e.eng.Stats() }

// Err returns the tenant's poisoning error (nil while healthy).
func (e *Engine) Err(id string) error { return e.eng.Err(id) }

// CanonicalEngineStats renders a tenant snapshot as deterministic JSON
// with every wall-clock-derived field cleared, for byte-for-byte
// comparison across runs — the form in which a recovered engine's
// ledgers equal an uninterrupted run's.
func CanonicalEngineStats(st EngineTenantStats) []byte {
	return engine.CanonicalStats(st)
}

// tenantSpec captures an AddTenant call as a serializable rebuild
// recipe: the exact algorithm, machine size, and options, with the fault
// schedule in its text format and the topology by name. rebuildSpec
// inverts it through the same New constructor, so the pair cannot drift
// from what AddTenant actually built.
func tenantSpec(id string, algo Algorithm, m *Machine, opts []Option) (engine.TenantSpec, error) {
	c := config{order: DecreasingSize, seed: 1}
	for _, o := range opts {
		o(&c)
	}
	spec := engine.TenantSpec{
		ID:        id,
		Algorithm: algo.String(),
		N:         m.N(),
		D:         c.d,
		DSet:      c.dSet,
		Seed:      c.seed,
		SeedSet:   c.seedSet,
	}
	if c.orderSet {
		spec.Order = c.order.String()
	}
	if c.top != nil {
		spec.Topology = c.top.Name()
	}
	if c.faults != nil {
		// The raw schedule names physical PEs; serialize it untranslated
		// so rebuilding re-runs the same topology mapping New did.
		var b strings.Builder
		if err := fault.WriteText(&b, *c.faults); err != nil {
			return engine.TenantSpec{}, fmt.Errorf("partalloc: AddTenant(%q): %w", id, err)
		}
		spec.Faults = b.String()
	}
	return spec, nil
}

// rebuildSpec is the engine.RebuildFunc the facade installs: it turns a
// tenantSpec recipe back into options and rebuilds the allocator through
// New, exactly as the original AddTenant did.
func rebuildSpec(spec engine.TenantSpec) (core.Allocator, *fault.Schedule, *topology.Host, error) {
	algo, err := ParseAlgorithm(spec.Algorithm)
	if err != nil {
		return nil, nil, nil, err
	}
	m, err := NewMachine(spec.N)
	if err != nil {
		return nil, nil, nil, err
	}
	var opts []Option
	if spec.DSet {
		opts = append(opts, WithD(spec.D))
	}
	if spec.Order != "" {
		order, err := parseReallocOrder(spec.Order)
		if err != nil {
			return nil, nil, nil, err
		}
		opts = append(opts, WithOrder(order))
	}
	if spec.SeedSet {
		opts = append(opts, WithSeed(spec.Seed))
	}
	if spec.Topology != "" {
		top, err := NewTopology(spec.Topology, spec.N)
		if err != nil {
			return nil, nil, nil, err
		}
		opts = append(opts, WithTopology(top))
	}
	if spec.Faults != "" {
		sched, err := fault.ParseText(strings.NewReader(spec.Faults), spec.N)
		if err != nil {
			return nil, nil, nil, err
		}
		opts = append(opts, WithFaults(sched))
	}
	a, err := New(algo, m, opts...)
	if err != nil {
		return nil, nil, nil, err
	}
	ua, sched, host := unwrapRun(a)
	return ua, sched, host, nil
}

// parseReallocOrder inverts ReallocOrder.String.
func parseReallocOrder(s string) (ReallocOrder, error) {
	switch s {
	case DecreasingSize.String():
		return DecreasingSize, nil
	case ArrivalOrder.String():
		return ArrivalOrder, nil
	}
	return 0, fmt.Errorf("partalloc: unknown reallocation order %q", s)
}
