package partalloc

import (
	"context"

	"partalloc/internal/engine"
	"partalloc/internal/task"
)

// Event is one task arrival or departure in a tenant's stream; Sequence
// bundles an ordered slice of them.
type Event = task.Event

// Event kinds for building streams by hand; generated workloads
// (PoissonWorkload) produce them already ordered.
const (
	// EventArrive is a task-arrival event.
	EventArrive = task.Arrive
	// EventDepart is a task-departure event.
	EventDepart = task.Depart
)

// EngineConfig parameterizes NewEngine; the zero value selects the
// defaults (min(GOMAXPROCS, 8) shards, 256-event batches, no audit).
type EngineConfig = engine.Config

// EngineTenantStats is a point-in-time ledger snapshot for one tenant:
// applied events, batch apply latencies, current and peak max-load, the
// running optimal bound L*, and reallocation counters.
type EngineTenantStats = engine.TenantStats

// Engine sentinel errors, recognizable with errors.Is. Allocator-side
// sentinels (ErrMachineFull, ErrDuplicateTask, ...) appear on the same
// chains when an apply fails.
var (
	// ErrUnknownTenant reports an operation on an unregistered tenant.
	ErrUnknownTenant = engine.ErrUnknownTenant
	// ErrDuplicateTenant reports AddTenant on an existing tenant ID.
	ErrDuplicateTenant = engine.ErrDuplicateTenant
	// ErrTenantPoisoned reports an operation on a tenant whose allocator
	// already failed; the chain includes the original cause.
	ErrTenantPoisoned = engine.ErrTenantPoisoned
)

// Engine multiplexes many independent tenant machines behind one
// concurrent ingestion API: tenants are hash-partitioned across
// lock-striped shards, events are applied in batches through the
// allocators' batch fast path, and Replay fans out one worker per shard.
// Allocator panics (capacity exhaustion under faults, stream misuse) are
// converted into returned errors that poison the offending tenant and
// leave the rest of the fleet running; see docs/ENGINE.md.
type Engine struct {
	eng *engine.Engine
}

// NewEngine builds an engine from cfg (zero value = defaults).
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{eng: engine.New(cfg)}
}

// AddTenant registers a tenant backed by a fresh allocator built exactly
// as New(algo, m, opts...) would, including WithFaults schedules, which
// the engine injects at the event indexes of the tenant's own stream, and
// WithTopology hosts, which price the tenant's migrations in network hops
// (EngineTenantStats.Topology/MigHops/ForcedHops).
func (e *Engine) AddTenant(id string, algo Algorithm, m *Machine, opts ...Option) error {
	a, err := New(algo, m, opts...)
	if err != nil {
		return err
	}
	ua, sched, host := unwrapRun(a)
	return e.eng.AddTenantHosted(id, ua, sched, host)
}

// Submit queues events for a tenant, applying a batch whenever the
// queue reaches the configured batch size.
func (e *Engine) Submit(id string, evs ...Event) error {
	return e.eng.Submit(id, evs...)
}

// Flush applies a tenant's queued events immediately.
func (e *Engine) Flush(id string) error { return e.eng.Flush(id) }

// FlushAll flushes every tenant and returns the first error.
func (e *Engine) FlushAll() error { return e.eng.FlushAll() }

// Replay feeds each tenant its stream in batches, one parallel worker
// per shard. Cancelling ctx drains the batches in flight and returns
// ctx.Err(), like every other context-aware entry point.
func (e *Engine) Replay(ctx context.Context, streams map[string][]Event) error {
	return e.eng.Replay(ctx, streams)
}

// Tenants returns all tenant IDs in sorted order.
func (e *Engine) Tenants() []string { return e.eng.Tenants() }

// TenantStats snapshots one tenant's ledger.
func (e *Engine) TenantStats(id string) (EngineTenantStats, error) {
	return e.eng.TenantStats(id)
}

// Stats snapshots every tenant's ledger in sorted ID order.
func (e *Engine) Stats() []EngineTenantStats { return e.eng.Stats() }

// Err returns the tenant's poisoning error (nil while healthy).
func (e *Engine) Err(id string) error { return e.eng.Err(id) }
