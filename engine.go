package partalloc

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"partalloc/internal/core"
	"partalloc/internal/engine"
	"partalloc/internal/fault"
	"partalloc/internal/mathx"
	"partalloc/internal/obs"
	"partalloc/internal/task"
	"partalloc/internal/topology"
	"partalloc/internal/wal"
)

// Event is one task arrival or departure in a tenant's stream; Sequence
// bundles an ordered slice of them.
type Event = task.Event

// Event kinds for building streams by hand; generated workloads
// (PoissonWorkload) produce them already ordered.
const (
	// EventArrive is a task-arrival event.
	EventArrive = task.Arrive
	// EventDepart is a task-departure event.
	EventDepart = task.Depart
)

// EngineConfig parameterizes the deprecated NewEngineFromConfig; the
// zero value selects the defaults (min(GOMAXPROCS, 8) shards, 256-event
// batches, no audit, no queue bound, no journal).
//
// Deprecated: configure NewEngine with EngineOptions (WithShards,
// WithBatchSize, WithAudit, ...) instead of a config struct. The struct
// form survives as NewEngineFromConfig.
type EngineConfig = engine.Config

// BreakerConfig tunes the poisoned-tenant circuit breaker's backoff for
// WithBreaker; the zero value selects the defaults (100ms base, 30s cap,
// jitter seed 1). See docs/ENGINE.md.
type BreakerConfig = engine.BreakerConfig

// EngineTenantStats is a point-in-time ledger snapshot for one tenant:
// applied events, batch apply latencies, current and peak max-load, the
// running optimal bound L*, reallocation counters, and the robustness
// ledgers (shed/dropped events, degradation transitions, breaker state).
type EngineTenantStats = engine.TenantStats

// DegradeTransition records one move on a tenant's degradation ladder
// (EngineTenantStats.Degrades).
type DegradeTransition = engine.DegradeTransition

// OverloadPolicy selects what Submit does when a submission would push a
// tenant's queue past the WithMaxQueue bound.
type OverloadPolicy = engine.OverloadPolicy

// RecoveryStats reports how RecoverEngine reconstructed the engine:
// records scanned, records skipped because a later snapshot already
// covered them, records re-applied, and snapshots restored. With
// WithSnapshotEvery on the crashed engine, skipped should dwarf
// replayed — that is the O(tail) recovery at work.
type RecoveryStats = engine.RecoveryStats

// Overload policies for WithOverloadPolicy.
const (
	// OverloadBlock applies backpressure: oversized submissions are
	// admitted in bound-sized chunks, applying batches in between.
	OverloadBlock = engine.Block
	// OverloadShed rejects over-bound submissions whole with ErrOverloaded.
	OverloadShed = engine.Shed
	// OverloadDegrade admits like OverloadBlock but additionally trades
	// placement quality for ingestion speed, turning the paper's d knob
	// on the tenant's allocator when its apply-latency EWMA exceeds the
	// degrade budget; see docs/ENGINE.md.
	OverloadDegrade = engine.Degrade
)

// PlacementPolicy selects how the engine routes tenants to shards; see
// WithPlacement.
type PlacementPolicy = engine.PlacementPolicy

// Placement policies for WithPlacement.
const (
	// PlacementHash routes each tenant to fnv32a(id) mod shards, fixed for
	// the tenant's lifetime. The default.
	PlacementHash = engine.PlacementHash
	// PlacementBalanced routes through a mutable table steered by the
	// paper's own A_M(d) allocator running over a virtual machine whose
	// PEs are the shards; periodic rebalance passes move hot tenants off
	// crowded shards, at most d·shards moves per pass. Requires a
	// power-of-two shard count. See docs/ENGINE.md.
	PlacementBalanced = engine.PlacementBalanced
)

// EngineShardStats is a point-in-time load snapshot for one shard:
// resident tenants, queued events, the high-water queue depth, and
// cumulative applied events and apply time (Engine.ShardStats).
type EngineShardStats = engine.ShardStats

// RebalanceStats aggregates the engine's placement rebalancing:
// passes run, moves planned and performed, the per-pass budget, and any
// invariant violations the post-pass audit found (Engine.RebalanceStats).
type RebalanceStats = engine.RebalanceStats

// JournalSyncPolicy selects when a journaling engine fsyncs its log.
type JournalSyncPolicy = wal.SyncPolicy

// Journal sync policies for WithJournalSync; docs/ENGINE.md discusses
// the durability trade-offs.
const (
	// JournalSyncNever leaves flushing to the OS: survives process
	// crashes (SIGKILL included), not power loss. The default.
	JournalSyncNever = wal.SyncNever
	// JournalSyncBatched fsyncs every few appends — bounded loss.
	JournalSyncBatched = wal.SyncBatched
	// JournalSyncAlways fsyncs every append — full durability.
	JournalSyncAlways = wal.SyncAlways
)

// Engine sentinel errors, recognizable with errors.Is. Allocator-side
// sentinels (ErrMachineFull, ErrDuplicateTask, ...) appear on the same
// chains when an apply fails.
var (
	// ErrUnknownTenant reports an operation on an unregistered tenant.
	ErrUnknownTenant = engine.ErrUnknownTenant
	// ErrDuplicateTenant reports AddTenant on an existing tenant ID.
	ErrDuplicateTenant = engine.ErrDuplicateTenant
	// ErrTenantPoisoned reports an operation on a tenant whose allocator
	// already failed; the chain includes the original cause. On a
	// journaling engine the circuit breaker makes this transient: after a
	// backoff the tenant is rebuilt from its journaled safe prefix.
	ErrTenantPoisoned = engine.ErrTenantPoisoned
	// ErrOverloaded reports a submission rejected whole by the
	// OverloadShed policy; none of its events were queued.
	ErrOverloaded = engine.ErrOverloaded
)

// engineOptions accumulates EngineOptions. Options validate eagerly; the
// first invalid one wins and fails construction with ErrBadOption on the
// error chain, naming the offending option.
type engineOptions struct {
	shards      int
	shardsSet   bool
	batch       int
	batchSet    bool
	audit       bool
	maxQueue    int
	maxQueueSet bool
	policy      OverloadPolicy
	policySet   bool
	budget      time.Duration
	watchdog    time.Duration
	breaker     BreakerConfig
	breakerSet  bool
	journalDir  string
	sync        JournalSyncPolicy
	syncSet     bool
	segBytes    int64
	snapEvery   int
	metrics     *Metrics
	flightN     int
	poisonDump  io.Writer
	placement   PlacementPolicy
	placeSet    bool
	rebalD      int
	rebalEvery  int
	err         error
}

// fail records the first invalid option; later errors are dropped so the
// constructor reports the earliest mistake in the option list.
func (o *engineOptions) fail(err error) {
	if o.err == nil {
		o.err = err
	}
}

// EngineOption configures NewEngine and RecoverEngine: sharding, batch
// size, auditing, queue bounds, overload policy, the write-ahead journal,
// and the observability layer (metrics, flight recorder).
type EngineOption func(*engineOptions)

// WithShards sets the number of lock stripes tenants are hash-partitioned
// across (default min(GOMAXPROCS, 8); at least 1).
func WithShards(n int) EngineOption {
	return func(o *engineOptions) {
		if n < 1 {
			o.fail(fmt.Errorf("%w: WithShards(%d): want at least 1 shard", ErrBadOption, n))
			return
		}
		o.shards, o.shardsSet = n, true
	}
}

// WithBatchSize sets the ingestion batch: Submit queues events per tenant
// and applies them whenever the queue reaches this size (default 256).
// Larger batches amortize loadtree maintenance further but delay
// load/latency samples, which are taken at batch boundaries.
func WithBatchSize(n int) EngineOption {
	return func(o *engineOptions) {
		if n < 1 {
			o.fail(fmt.Errorf("%w: WithBatchSize(%d): want at least 1 event per batch", ErrBadOption, n))
			return
		}
		o.batch, o.batchSet = n, true
	}
}

// WithAudit attaches an invariant checker to every tenant and applies
// events one at a time so the checker sees each placement. This trades
// away all batching throughput for per-event validation; use it in tests
// and canary runs, not in benchmarks.
func WithAudit() EngineOption {
	return func(o *engineOptions) { o.audit = true }
}

// WithMaxQueue bounds each tenant's ingestion queue to n events
// (0 = unbounded). What happens past the bound is WithOverloadPolicy's
// call.
func WithMaxQueue(n int) EngineOption {
	return func(o *engineOptions) {
		if n < 0 {
			o.fail(fmt.Errorf("%w: WithMaxQueue(%d): negative bound (0 means unbounded)", ErrBadOption, n))
			return
		}
		o.maxQueue, o.maxQueueSet = n, true
	}
}

// WithOverloadPolicy selects the over-bound behavior: OverloadBlock
// (default), OverloadShed, or OverloadDegrade.
func WithOverloadPolicy(p OverloadPolicy) EngineOption {
	return func(o *engineOptions) {
		switch p {
		case OverloadBlock, OverloadShed, OverloadDegrade:
			o.policy, o.policySet = p, true
		default:
			o.fail(fmt.Errorf("%w: WithOverloadPolicy(%v): unknown policy", ErrBadOption, p))
		}
	}
}

// WithDegradeBudget sets the per-tenant batch apply-latency budget the
// OverloadDegrade controller steers by (default 5ms).
func WithDegradeBudget(d time.Duration) EngineOption {
	return func(o *engineOptions) {
		if d <= 0 {
			o.fail(fmt.Errorf("%w: WithDegradeBudget(%v): want a positive budget", ErrBadOption, d))
			return
		}
		o.budget = d
	}
}

// WithReplayWatchdog bounds each Replay shard worker's wall time: a
// stalled allocator fails its shard with a timeout error instead of
// hanging the whole replay.
func WithReplayWatchdog(d time.Duration) EngineOption {
	return func(o *engineOptions) {
		if d <= 0 {
			o.fail(fmt.Errorf("%w: WithReplayWatchdog(%v): want a positive timeout", ErrBadOption, d))
			return
		}
		o.watchdog = d
	}
}

// WithBreaker tunes the poisoned-tenant circuit breaker's backoff
// (zero-valued fields keep their defaults).
func WithBreaker(b BreakerConfig) EngineOption {
	return func(o *engineOptions) {
		if b.Base < 0 || b.Max < 0 {
			o.fail(fmt.Errorf("%w: WithBreaker: negative backoff (base %v, max %v)", ErrBadOption, b.Base, b.Max))
			return
		}
		o.breaker, o.breakerSet = b, true
	}
}

// WithJournal turns on write-ahead journaling in dir: every ingestion
// call is appended to a segmented log before tenant state changes, the
// engine becomes recoverable with RecoverEngine, and poisoned tenants
// heal through the circuit breaker instead of staying down. Close the
// engine when done.
func WithJournal(dir string) EngineOption {
	return func(o *engineOptions) {
		if dir == "" {
			o.fail(fmt.Errorf("%w: WithJournal(\"\"): want a journal directory", ErrBadOption))
			return
		}
		o.journalDir = dir
	}
}

// WithSnapshotEvery checkpoints each tenant's full state into the
// journal every k applied batches. Snapshots buy two things: recovery
// becomes O(tail) — RecoverEngine restores each tenant from its latest
// snapshot and replays only the records after it — and the journal
// stays bounded, because segments older than every tenant's latest
// snapshot are deleted. The circuit breaker's half-open probe also
// restores from the last pre-poison snapshot instead of replaying the
// tenant's whole safe prefix. Requires WithJournal.
func WithSnapshotEvery(k int) EngineOption {
	return func(o *engineOptions) {
		if k < 1 {
			o.fail(fmt.Errorf("%w: WithSnapshotEvery(%d): want at least 1 batch between snapshots", ErrBadOption, k))
			return
		}
		o.snapEvery = k
	}
}

// WithJournalSegmentBytes sets the journal's segment rotation threshold
// (default 4 MiB). Snapshot retention deletes whole sealed segments, so
// smaller segments mean tighter journal bounds and less to scan on
// recovery — at the cost of more files. A record larger than the
// threshold still lands whole in its own segment. Requires WithJournal.
func WithJournalSegmentBytes(n int64) EngineOption {
	return func(o *engineOptions) {
		if n < 1 {
			o.fail(fmt.Errorf("%w: WithJournalSegmentBytes(%d): want a positive threshold", ErrBadOption, n))
			return
		}
		o.segBytes = n
	}
}

// WithJournalSync selects the journal's fsync policy (default
// JournalSyncNever).
func WithJournalSync(p JournalSyncPolicy) EngineOption {
	return func(o *engineOptions) {
		switch p {
		case JournalSyncNever, JournalSyncBatched, JournalSyncAlways:
			o.sync, o.syncSet = p, true
		default:
			o.fail(fmt.Errorf("%w: WithJournalSync(%v): unknown policy", ErrBadOption, p))
		}
	}
}

// WithPlacement selects the tenant→shard routing policy (default
// PlacementHash). PlacementBalanced requires a power-of-two shard
// count: combine with WithShards(2^k), or omit WithShards and the
// engine rounds its default down to a power of two.
func WithPlacement(p PlacementPolicy) EngineOption {
	return func(o *engineOptions) {
		switch p {
		case PlacementHash, PlacementBalanced:
			o.placement, o.placeSet = p, true
		default:
			o.fail(fmt.Errorf("%w: WithPlacement(%v): unknown policy", ErrBadOption, p))
		}
	}
}

// WithRebalanceD sets the paper's d knob for PlacementBalanced routing:
// the virtual A_M(d) allocator repacks after d·shards units of tenant
// load arrive, and each rebalance pass moves at most d·shards tenants.
// Smaller d keeps shards tightly balanced at the cost of more moves
// (default 1; at least 1). Requires WithPlacement(PlacementBalanced).
func WithRebalanceD(d int) EngineOption {
	return func(o *engineOptions) {
		if d < 1 {
			o.fail(fmt.Errorf("%w: WithRebalanceD(%d): want d of at least 1", ErrBadOption, d))
			return
		}
		o.rebalD = d
	}
}

// WithRebalanceEvery sets how many applied batches elapse between
// rebalance passes (default 32; at least 1). Requires
// WithPlacement(PlacementBalanced).
func WithRebalanceEvery(k int) EngineOption {
	return func(o *engineOptions) {
		if k < 1 {
			o.fail(fmt.Errorf("%w: WithRebalanceEvery(%d): want a cadence of at least 1 batch", ErrBadOption, k))
			return
		}
		o.rebalEvery = k
	}
}

// WithMetrics attaches a metrics registry: the engine (and its journal)
// record per-tenant ledger gauges, apply/fsync latency histograms, and
// overload/breaker counters into m, renderable with
// Metrics.WritePrometheus. Share one registry across engines to scrape
// them from one endpoint. Without this option the engine records nothing
// and pays nothing.
func WithMetrics(m *Metrics) EngineOption {
	return func(o *engineOptions) {
		if m == nil {
			o.fail(fmt.Errorf("%w: WithMetrics(nil): want a registry from NewMetrics", ErrBadOption))
			return
		}
		o.metrics = m
	}
}

// WithFlightRecorder keeps the last n structured engine events (batch
// applies, sheds, degrade transitions, breaker trips/probes/heals, forced
// fault migrations, journal lifecycle) in a fixed-size ring, dumpable as
// JSONL via Engine.FlightRecorder — the post-incident "what just
// happened" record.
func WithFlightRecorder(n int) EngineOption {
	return func(o *engineOptions) {
		if n < 1 {
			o.fail(fmt.Errorf("%w: WithFlightRecorder(%d): want capacity for at least 1 event", ErrBadOption, n))
			return
		}
		o.flightN = n
	}
}

// WithPoisonDump writes the flight recorder's contents to w as JSONL the
// moment any tenant is poisoned, so the events leading up to a failure
// are captured even if the process dies before anyone scrapes them.
// Requires WithFlightRecorder.
func WithPoisonDump(w io.Writer) EngineOption {
	return func(o *engineOptions) {
		if w == nil {
			o.fail(fmt.Errorf("%w: WithPoisonDump(nil): want a writer", ErrBadOption))
			return
		}
		o.poisonDump = w
	}
}

// config folds the options into an engine.Config and builds the
// observability sink.
func (o *engineOptions) config() (EngineConfig, *obs.Sink, error) {
	if o.err != nil {
		return EngineConfig{}, nil, o.err
	}
	if o.poisonDump != nil && o.flightN == 0 {
		return EngineConfig{}, nil, fmt.Errorf("%w: WithPoisonDump requires WithFlightRecorder", ErrBadOption)
	}
	if o.snapEvery > 0 && o.journalDir == "" {
		return EngineConfig{}, nil, fmt.Errorf("%w: WithSnapshotEvery requires WithJournal", ErrBadOption)
	}
	if o.segBytes > 0 && o.journalDir == "" {
		return EngineConfig{}, nil, fmt.Errorf("%w: WithJournalSegmentBytes requires WithJournal", ErrBadOption)
	}
	balanced := o.placeSet && o.placement == PlacementBalanced
	if o.rebalD > 0 && !balanced {
		return EngineConfig{}, nil, fmt.Errorf("%w: WithRebalanceD requires WithPlacement(PlacementBalanced)", ErrBadOption)
	}
	if o.rebalEvery > 0 && !balanced {
		return EngineConfig{}, nil, fmt.Errorf("%w: WithRebalanceEvery requires WithPlacement(PlacementBalanced)", ErrBadOption)
	}
	if balanced && o.shardsSet && o.shards != mathx.FloorPow2(o.shards) {
		return EngineConfig{}, nil, fmt.Errorf("%w: WithPlacement(PlacementBalanced) requires a power-of-two shard count, got WithShards(%d)", ErrBadOption, o.shards)
	}
	var fr *obs.FlightRecorder
	if o.flightN > 0 {
		fr = obs.NewFlightRecorder(o.flightN)
	}
	sink := obs.NewSink(o.metrics, fr)
	if sink != nil && o.poisonDump != nil {
		sink.SetPoisonDump(o.poisonDump)
	}
	cfg := EngineConfig{
		Shards:         o.shards,
		BatchSize:      o.batch,
		Audit:          o.audit,
		DegradeBudget:  o.budget,
		ReplayWatchdog: o.watchdog,
		Rebuild:        rebuildSpec,
		SnapshotEvery:  o.snapEvery,
		Sink:           sink,
		Placement:      o.placement,
		RebalanceD:     o.rebalD,
		RebalanceEvery: o.rebalEvery,
	}
	if o.maxQueueSet {
		cfg.MaxQueue = o.maxQueue
	}
	if o.policySet {
		cfg.Overload = o.policy
	}
	if o.breakerSet {
		cfg.Breaker = o.breaker
	}
	return cfg, sink, nil
}

// Engine multiplexes many independent tenant machines behind one
// concurrent ingestion API: tenants are hash-partitioned across
// lock-striped shards, events are applied in batches through the
// allocators' batch fast path, and Replay fans out one worker per shard.
// Allocator panics (capacity exhaustion under faults, stream misuse) are
// converted into returned errors that poison the offending tenant and
// leave the rest of the fleet running. With WithMaxQueue the ingestion
// queues are bounded, and with WithJournal the engine survives crashes
// and heals poisoned tenants; see docs/ENGINE.md.
type Engine struct {
	eng  *engine.Engine
	sink *obs.Sink
}

// collect runs opts over a fresh engineOptions, catching nil options.
func collect(caller string, opts []EngineOption) (*engineOptions, error) {
	o := &engineOptions{}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("partalloc: %s: %w: nil EngineOption", caller, ErrBadOption)
		}
		opt(o)
	}
	return o, nil
}

// NewEngine builds an engine from options alone; the zero-option call
// selects the defaults (min(GOMAXPROCS, 8) shards, 256-event batches, no
// audit, no queue bound, no journal, no observability). Construction
// fails with ErrBadOption on the chain when an option is invalid, and
// with the journal's error when WithJournal cannot open its directory.
func NewEngine(opts ...EngineOption) (*Engine, error) {
	o, err := collect("NewEngine", opts)
	if err != nil {
		return nil, err
	}
	cfg, sink, err := o.config()
	if err != nil {
		return nil, fmt.Errorf("partalloc: NewEngine: %w", err)
	}
	if o.journalDir != "" {
		log, err := wal.Open(o.journalDir, wal.Options{Sync: o.sync, SegmentBytes: o.segBytes, Sink: sink})
		if err != nil {
			return nil, fmt.Errorf("partalloc: NewEngine: %w", err)
		}
		cfg.Journal = log
	}
	return &Engine{eng: engine.New(cfg), sink: sink}, nil
}

// NewEngineFromConfig builds an engine from the legacy EngineConfig
// struct plus options; non-zero struct fields are mapped onto the
// corresponding options, and explicit options win over struct fields.
//
// Deprecated: use NewEngine with WithShards, WithBatchSize, WithAudit,
// WithMaxQueue, WithOverloadPolicy, WithDegradeBudget,
// WithReplayWatchdog and WithBreaker instead.
func NewEngineFromConfig(cfg EngineConfig, opts ...EngineOption) (*Engine, error) {
	return NewEngine(append(optionsFromConfig(cfg), opts...)...)
}

// optionsFromConfig maps the legacy struct's non-zero fields onto the
// equivalent options, so the deprecated wrappers share the options-only
// construction path. Internal plumbing fields (Journal, Rebuild, Sink)
// are engine-owned and ignored.
func optionsFromConfig(cfg EngineConfig) []EngineOption {
	var opts []EngineOption
	if cfg.Shards > 0 {
		opts = append(opts, WithShards(cfg.Shards))
	}
	if cfg.BatchSize > 0 {
		opts = append(opts, WithBatchSize(cfg.BatchSize))
	}
	if cfg.Audit {
		opts = append(opts, WithAudit())
	}
	if cfg.MaxQueue > 0 {
		opts = append(opts, WithMaxQueue(cfg.MaxQueue))
	}
	if cfg.Overload != OverloadBlock {
		opts = append(opts, WithOverloadPolicy(cfg.Overload))
	}
	if cfg.DegradeBudget > 0 {
		opts = append(opts, WithDegradeBudget(cfg.DegradeBudget))
	}
	if cfg.ReplayWatchdog > 0 {
		opts = append(opts, WithReplayWatchdog(cfg.ReplayWatchdog))
	}
	if cfg.Breaker != (BreakerConfig{}) {
		opts = append(opts, WithBreaker(cfg.Breaker))
	}
	if cfg.Placement != PlacementHash {
		opts = append(opts, WithPlacement(cfg.Placement))
	}
	if cfg.RebalanceD > 0 {
		opts = append(opts, WithRebalanceD(cfg.RebalanceD))
	}
	if cfg.RebalanceEvery > 0 {
		opts = append(opts, WithRebalanceEvery(cfg.RebalanceEvery))
	}
	return opts
}

// RecoverEngine reconstructs a journaling engine from the log a crashed
// (or closed) engine left in dir: tenants are rebuilt from their
// registration records and every journaled ingestion call is re-applied,
// reproducing ledgers and queue contents exactly — including tenants the
// crash left poisoned. The recovered engine journals onward in the same
// directory. Pass the same options the original engine ran with;
// WithJournal is implied by dir.
func RecoverEngine(dir string, opts ...EngineOption) (*Engine, error) {
	o, err := collect("RecoverEngine", opts)
	if err != nil {
		return nil, err
	}
	if o.journalDir != "" && o.journalDir != dir {
		return nil, fmt.Errorf("partalloc: RecoverEngine: WithJournal(%q) conflicts with recovery directory %q", o.journalDir, dir)
	}
	o.journalDir = dir // WithJournal is implied; WithSnapshotEvery may rely on it
	cfg, sink, err := o.config()
	if err != nil {
		return nil, fmt.Errorf("partalloc: RecoverEngine: %w", err)
	}
	eng, err := engine.Recover(cfg, dir, wal.Options{Sync: o.sync, SegmentBytes: o.segBytes, Sink: sink})
	if err != nil {
		return nil, fmt.Errorf("partalloc: RecoverEngine: %w", err)
	}
	return &Engine{eng: eng, sink: sink}, nil
}

// RecoverEngineFromConfig is RecoverEngine taking the legacy
// EngineConfig struct; non-zero fields map onto options as in
// NewEngineFromConfig.
//
// Deprecated: use RecoverEngine(dir, opts...) instead.
func RecoverEngineFromConfig(cfg EngineConfig, dir string, opts ...EngineOption) (*Engine, error) {
	return RecoverEngine(dir, append(optionsFromConfig(cfg), opts...)...)
}

// Metrics returns the registry attached with WithMetrics (nil without
// it).
func (e *Engine) Metrics() *Metrics {
	if e.sink == nil {
		return nil
	}
	return e.sink.Metrics()
}

// FlightRecorder returns the event ring attached with WithFlightRecorder
// (nil without it).
func (e *Engine) FlightRecorder() *FlightRecorder {
	if e.sink == nil {
		return nil
	}
	return e.sink.FlightRecorder()
}

// Close releases the engine's journal, if any. Queued events are NOT
// flushed: they are journaled, and RecoverEngine restores them.
func (e *Engine) Close() error {
	if j := e.eng.Journal(); j != nil {
		return j.Close()
	}
	return nil
}

// AddTenant registers a tenant backed by a fresh allocator built exactly
// as New(algo, m, opts...) would, including WithFaults schedules, which
// the engine injects at the event indexes of the tenant's own stream, and
// WithTopology hosts, which price the tenant's migrations in network hops
// (EngineTenantStats.Topology/MigHops/ForcedHops). The same options are
// captured as the tenant's rebuild recipe, so on a journaling engine the
// tenant is recoverable and breaker-protected with no extra wiring.
func (e *Engine) AddTenant(id string, algo Algorithm, m *Machine, opts ...Option) error {
	a, err := New(algo, m, opts...)
	if err != nil {
		return err
	}
	ua, sched, host := unwrapRun(a)
	spec, err := tenantSpec(id, algo, m, opts)
	if err != nil {
		return err
	}
	topts := []engine.TenantOption{engine.WithTenantSpec(spec)}
	if sched != nil {
		topts = append(topts, engine.WithTenantFaults(sched))
	}
	if host != nil {
		topts = append(topts, engine.WithTenantHost(host))
	}
	return e.eng.AddTenant(id, ua, topts...)
}

// Submit queues events for a tenant, applying a batch whenever the
// queue reaches the configured batch size. Past a WithMaxQueue bound the
// overload policy takes over: OverloadBlock and OverloadDegrade admit in
// bound-sized chunks, OverloadShed fails with ErrOverloaded.
func (e *Engine) Submit(id string, evs ...Event) error {
	return e.eng.Submit(id, evs...)
}

// Flush applies a tenant's queued events immediately.
func (e *Engine) Flush(id string) error { return e.eng.Flush(id) }

// FlushAll flushes every tenant and returns the first error.
func (e *Engine) FlushAll() error { return e.eng.FlushAll() }

// Replay feeds each tenant its stream in batches, one parallel worker
// per shard. Cancelling ctx drains the batches in flight and returns
// ctx.Err(), like every other context-aware entry point.
func (e *Engine) Replay(ctx context.Context, streams map[string][]Event) error {
	return e.eng.Replay(ctx, streams)
}

// Tenants returns all tenant IDs in sorted order.
func (e *Engine) Tenants() []string { return e.eng.Tenants() }

// TenantStats snapshots one tenant's ledger.
func (e *Engine) TenantStats(id string) (EngineTenantStats, error) {
	return e.eng.TenantStats(id)
}

// Stats snapshots every tenant's ledger in sorted ID order.
func (e *Engine) Stats() []EngineTenantStats { return e.eng.Stats() }

// Err returns the tenant's poisoning error (nil while healthy).
func (e *Engine) Err(id string) error { return e.eng.Err(id) }

// RecoveryStats reports how this engine was reconstructed from its
// journal; all-zero for an engine built with NewEngine.
func (e *Engine) RecoveryStats() RecoveryStats { return e.eng.RecoveryStats() }

// ShardStats snapshots every shard's load ledger in index order.
func (e *Engine) ShardStats() []EngineShardStats { return e.eng.ShardStats() }

// ResetShardPeaks restarts every shard's peak-backlog high-water
// (EngineShardStats.PeakQueued) from its current backlog, scoping the
// peak to a measurement window instead of the engine's lifetime.
func (e *Engine) ResetShardPeaks() { e.eng.ResetShardPeaks() }

// Routes snapshots the tenant→shard routing table. Under PlacementHash
// every tenant maps to fnv32a(id) mod shards; under PlacementBalanced
// the table reflects rebalance moves.
func (e *Engine) Routes() map[string]int { return e.eng.Routes() }

// RebalanceStats reports the engine's placement rebalancing ledger;
// all-zero under PlacementHash.
func (e *Engine) RebalanceStats() RebalanceStats { return e.eng.RebalanceStats() }

// Rebalance forces one placement rebalance pass now, regardless of the
// WithRebalanceEvery cadence, and reports how many tenants moved. A
// no-op under PlacementHash. A move that fails leaves its tenant where
// it was; the first such error is returned after the pass completes.
func (e *Engine) Rebalance() (int, error) { return e.eng.Rebalance() }

// MoveTenant rebalances tenant id onto dst with no event replay: the
// tenant travels as one snapshot (allocator state, queued events,
// ledger, audit state). An explicit admin call — the engine never moves
// tenants on its own. The tenant must be healthy; dst journals the
// snapshot (when journaling) and the source journals the removal, so
// each engine's log recovers its own post-move view. A crash between
// the two journal writes can leave the tenant on both engines
// (at-least-once); it is never lost.
func (e *Engine) MoveTenant(id string, dst *Engine) error {
	if dst == nil {
		return fmt.Errorf("partalloc: MoveTenant(%q): nil destination engine", id)
	}
	return e.eng.MoveTenant(id, dst.eng)
}

// CanonicalEngineStats renders a tenant snapshot as deterministic JSON
// with every wall-clock-derived field cleared, for byte-for-byte
// comparison across runs — the form in which a recovered engine's
// ledgers equal an uninterrupted run's.
func CanonicalEngineStats(st EngineTenantStats) []byte {
	return engine.CanonicalStats(st)
}

// tenantSpec captures an AddTenant call as a serializable rebuild
// recipe: the exact algorithm, machine size, and options, with the fault
// schedule in its text format and the topology by name. rebuildSpec
// inverts it through the same New constructor, so the pair cannot drift
// from what AddTenant actually built.
func tenantSpec(id string, algo Algorithm, m *Machine, opts []Option) (engine.TenantSpec, error) {
	c := config{order: DecreasingSize, seed: 1}
	for _, o := range opts {
		o(&c)
	}
	spec := engine.TenantSpec{
		ID:        id,
		Algorithm: algo.String(),
		N:         m.N(),
		D:         c.d,
		DSet:      c.dSet,
		Seed:      c.seed,
		SeedSet:   c.seedSet,
	}
	if c.orderSet {
		spec.Order = c.order.String()
	}
	if c.top != nil {
		spec.Topology = c.top.Name()
	}
	if c.faults != nil {
		// The raw schedule names physical PEs; serialize it untranslated
		// so rebuilding re-runs the same topology mapping New did.
		var b strings.Builder
		if err := fault.WriteText(&b, *c.faults); err != nil {
			return engine.TenantSpec{}, fmt.Errorf("partalloc: AddTenant(%q): %w", id, err)
		}
		spec.Faults = b.String()
	}
	return spec, nil
}

// rebuildSpec is the engine.RebuildFunc the facade installs: it turns a
// tenantSpec recipe back into options and rebuilds the allocator through
// New, exactly as the original AddTenant did.
func rebuildSpec(spec engine.TenantSpec) (core.Allocator, *fault.Schedule, *topology.Host, error) {
	algo, err := ParseAlgorithm(spec.Algorithm)
	if err != nil {
		return nil, nil, nil, err
	}
	m, err := NewMachine(spec.N)
	if err != nil {
		return nil, nil, nil, err
	}
	var opts []Option
	if spec.DSet {
		opts = append(opts, WithD(spec.D))
	}
	if spec.Order != "" {
		order, err := parseReallocOrder(spec.Order)
		if err != nil {
			return nil, nil, nil, err
		}
		opts = append(opts, WithOrder(order))
	}
	if spec.SeedSet {
		opts = append(opts, WithSeed(spec.Seed))
	}
	if spec.Topology != "" {
		top, err := NewTopology(spec.Topology, spec.N)
		if err != nil {
			return nil, nil, nil, err
		}
		opts = append(opts, WithTopology(top))
	}
	if spec.Faults != "" {
		sched, err := fault.ParseText(strings.NewReader(spec.Faults), spec.N)
		if err != nil {
			return nil, nil, nil, err
		}
		opts = append(opts, WithFaults(sched))
	}
	a, err := New(algo, m, opts...)
	if err != nil {
		return nil, nil, nil, err
	}
	ua, sched, host := unwrapRun(a)
	return ua, sched, host, nil
}

// parseReallocOrder inverts ReallocOrder.String.
func parseReallocOrder(s string) (ReallocOrder, error) {
	switch s {
	case DecreasingSize.String():
		return DecreasingSize, nil
	case ArrivalOrder.String():
		return ArrivalOrder, nil
	}
	return 0, fmt.Errorf("partalloc: unknown reallocation order %q", s)
}
