# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short test-race test-fault test-topology test-chaos test-snapshot test-placement obs-smoke lint lint-json bench experiments experiments-quick cover golden clean

all: build lint test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# Skips the multi-second stress tests; suitable for fast CI.
test-short:
	go test -short ./...

# Race-detector run over the short suite (the stress tests that matter
# for races are not short-gated, so this still exercises them).
test-race:
	go test -short -race ./...

# Fault-injection smoke: deterministic replay under faults, kill+resume
# byte-identity, and panicking-cell isolation (see docs/FAULTS.md).
test-fault:
	./scripts/fault-smoke.sh

# Topology suite under the race detector (docs/TOPOLOGIES.md): host
# construction and O(1) migration pricing vs brute force, the tree-host
# byte-identity golden, and the cross-topology trajectory equivalence of
# all six algorithms through Simulate and the engine.
test-topology:
	go test -race ./internal/topology/
	go test -race -run 'TestTreeHostGolden|TestCrossTopology' .

# Crash-recovery and chaos smoke: SIGKILL mid-ingest recovery
# byte-identity, the seeded chaos soak under -race, and the journaled
# benchmark pass (see docs/ENGINE.md).
test-chaos:
	./scripts/chaos-smoke.sh

# Snapshot & compaction suite under the race detector (docs/ENGINE.md,
# "Snapshots & compaction"): snapshot recovery byte-identity, O(tail)
# scan accounting, retention bounding the journal, idle tenants pinning
# it, breaker probes rebuilt from snapshots, MoveTenant, the snapshot
# SIGKILL crash test, and the facade-level three-way recovery
# equivalence gate.
test-snapshot:
	go test -race -run 'TestSnapshot|TestRecoveryReadsOnlyTail|TestBreakerProbeRestoresFromSnapshot|TestMoveTenant|TestSIGKILLSnapshotRecovery' -count=1 ./internal/engine/
	go test -race -run 'TestSnapshotRecoveryEquivalence' -count=1 .

# Placement suite under the race detector (docs/ENGINE.md, "Placement
# and rebalancing"): HashPlacer byte-identity goldens, BalancedPlacer
# plan determinism, the MoveTenant-through-placer regression, concurrent
# Submit during rebalance passes, and the SIGKILL mid-rebalance crash
# test that gates recovery on routing-table consistency.
test-placement:
	go test -race -run 'TestHashPlacementGolden|TestBalancedPlacer|TestMoveTenantRoutesThroughPlacer|TestConcurrentSubmitDuringRebalance|TestSIGKILLRebalanceRecovery' -count=1 ./internal/engine/

# Observability smoke (docs/OBSERVABILITY.md): boots `engined -listen`
# on a random port, scrapes /metrics, asserts the required series exist
# and the exposition parses, and checks the flight-recorder dump.
obs-smoke:
	./scripts/obs-smoke.sh

# Run the project's own analyzer suite (docs/LINTS.md): standalone over
# every package, then again through go vet's vettool protocol so both
# entry points stay healthy.
lint:
	go run ./cmd/partlint ./...
	go build -o /tmp/partlint ./cmd/partlint
	go vet -vettool=/tmp/partlint ./...

# Machine-readable findings for CI annotations and editors; exits 2 on
# findings like the plain run, with the JSON already written.
lint-json:
	go run ./cmd/partlint -json ./... > partlint.json

# Micro-benchmarks (batched vs serial apply, engine replay) plus the
# engined load driver, which refreshes the committed benchmark ledger —
# including the journal-on vs journal-off headline comparison, the
# observability-on slowdown (obs_slowdown), and the full-replay vs
# snapshot+tail recovery comparison (recovery.speedup).
bench:
	go test -bench=. -benchmem ./internal/core/ ./internal/engine/
	go run ./cmd/engined -journal -obs -recovery -out BENCH_3.json

# Engine benchmark smoke for CI: a -race engined run on a small fleet,
# plus the engine-level batched-vs-serial equivalence gate.
bench-smoke:
	go run -race ./cmd/engined -quick -out /dev/null
	go test -run 'TestReplayMatchesSerialSimulate|TestSubmitMatchesReplay' -count=1 ./internal/engine/

# Regenerate every experiment artifact (E1–E14) at paper scale.
experiments:
	go run ./cmd/experiments -run all

experiments-quick:
	go run ./cmd/experiments -run all -quick

cover:
	go test -cover ./...

# Refresh the golden snapshots after an intentional behavior change.
golden:
	go test ./internal/experiments -run Golden -update-golden

clean:
	go clean ./...
