# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short bench experiments experiments-quick cover golden clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# Skips the multi-second stress tests; suitable for fast CI.
test-short:
	go test -short ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every experiment artifact (E1–E14) at paper scale.
experiments:
	go run ./cmd/experiments -run all

experiments-quick:
	go run ./cmd/experiments -run all -quick

cover:
	go test -cover ./...

# Refresh the golden snapshots after an intentional behavior change.
golden:
	go test ./internal/experiments -run Golden -update-golden

clean:
	go clean ./...
