package partalloc_test

import (
	"fmt"

	"partalloc"
)

// ExampleSimulate runs the paper's worked example (Figure 1) through the
// greedy algorithm and through a 1-reallocation algorithm.
func ExampleSimulate() {
	seq := partalloc.Figure1Sequence()

	greedy := partalloc.NewGreedy(partalloc.MustNewMachine(4))
	g := partalloc.Simulate(greedy, seq, partalloc.SimOptions{})

	lazy := partalloc.NewLazy(partalloc.MustNewMachine(4), 1, partalloc.DecreasingSize)
	l := partalloc.Simulate(lazy, seq, partalloc.SimOptions{})

	fmt.Printf("greedy: load %d (optimal %d)\n", g.MaxLoad, g.LStar)
	fmt.Printf("1-reallocation: load %d after %d reallocation\n", l.MaxLoad, l.Realloc.Reallocations)
	// Output:
	// greedy: load 2 (optimal 1)
	// 1-reallocation: load 1 after 1 reallocation
}

// ExampleNewPeriodic shows the d-reallocation algorithm A_M meeting its
// Theorem 4.2 bound on a random workload.
func ExampleNewPeriodic() {
	const n, d = 64, 2
	m := partalloc.MustNewMachine(n)
	a := partalloc.NewPeriodic(m, d, partalloc.DecreasingSize)
	seq := partalloc.SaturationWorkload(partalloc.SaturationConfig{N: n, Events: 2000, Seed: 1})
	res := partalloc.Simulate(a, seq, partalloc.SimOptions{})

	bound := partalloc.UpperBound(n, d) * res.LStar
	fmt.Printf("load %d within bound %d: %v\n", res.MaxLoad, bound, res.MaxLoad <= bound)
	// Output:
	// load 3 within bound 6: true
}

// ExampleRunAdversary demonstrates the Theorem 4.3 lower-bound
// construction forcing the greedy algorithm to its bound while the
// optimal load stays 1.
func ExampleRunAdversary() {
	m := partalloc.MustNewMachine(1024)
	res := partalloc.RunAdversary(partalloc.NewGreedy(m), -1)
	fmt.Printf("forced load %d, optimal %d, promised ≥ %d\n",
		res.FinalLoad, res.OptimalLoad, res.LowerBound)
	// Output:
	// forced load 6, optimal 1, promised ≥ 6
}

// ExampleNewSequenceBuilder builds a custom arrival/departure sequence.
func ExampleNewSequenceBuilder() {
	b := partalloc.NewSequenceBuilder()
	web := b.At(0).Arrive(8)
	b.At(1).Arrive(4)
	b.At(5).Depart(web)
	seq := b.Sequence()
	fmt.Printf("events %d, s(σ) = %d, L* on N=16: %d\n",
		len(seq.Events), seq.Size(), seq.OptimalLoad(16))
	// Output:
	// events 3, s(σ) = 12, L* on N=16: 1
}
