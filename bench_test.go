// Benchmark harness: one benchmark per experiment artifact (E1–E14, see
// DESIGN.md's experiment index) plus micro-benchmarks of the allocator hot
// paths. Run with:
//
//	go test -bench=. -benchmem
//
// The E-benchmarks (E1–E14) execute the corresponding experiment in Quick mode per
// iteration; their purpose is regeneration and regression-tracking of each
// artifact, not nanosecond shaving. The per-op benchmarks at the bottom
// measure the data-structure costs that make paper-scale simulation cheap.
package partalloc_test

import (
	"testing"

	"partalloc"
	"partalloc/internal/experiments"
)

var benchCfg = experiments.Config{Quick: true, Seeds: 2}

func benchArtifact(b *testing.B, run func(experiments.Config) experiments.Artifact) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		art := run(benchCfg)
		if len(art.Tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

func BenchmarkE1Figure1(b *testing.B) {
	benchArtifact(b, func(experiments.Config) experiments.Artifact { return experiments.Figure1() })
}

func BenchmarkE2Optimal0Realloc(b *testing.B) { benchArtifact(b, experiments.E2Optimal0Realloc) }

func BenchmarkE3GreedyUpper(b *testing.B) { benchArtifact(b, experiments.E3GreedyUpper) }

func BenchmarkE4Tradeoff(b *testing.B) { benchArtifact(b, experiments.E4Tradeoff) }

func BenchmarkE5DetLowerBound(b *testing.B) { benchArtifact(b, experiments.E5DetLowerBound) }

func BenchmarkE6RandUpper(b *testing.B) { benchArtifact(b, experiments.E6RandUpper) }

func BenchmarkE7RandLowerBound(b *testing.B) { benchArtifact(b, experiments.E7RandLowerBound) }

func BenchmarkE8ReallocCost(b *testing.B) { benchArtifact(b, experiments.E8ReallocCost) }

func BenchmarkE9Topologies(b *testing.B) { benchArtifact(b, experiments.E9Topologies) }

func BenchmarkE10Slowdown(b *testing.B) { benchArtifact(b, experiments.E10Slowdown) }

func BenchmarkE11ClosedLoop(b *testing.B) { benchArtifact(b, experiments.E11ClosedLoop) }

func BenchmarkE12SpaceVsTime(b *testing.B) { benchArtifact(b, experiments.E12SpaceVsTime) }

func BenchmarkE13TreeRestriction(b *testing.B) { benchArtifact(b, experiments.E13TreeRestriction) }

func BenchmarkE14WorkloadSensitivity(b *testing.B) {
	benchArtifact(b, experiments.E14WorkloadSensitivity)
}

// --- Allocator micro-benchmarks -------------------------------------------

// benchWorkload is a shared churn sequence sized so every algorithm stays
// busy: near-saturation with steady arrivals and departures.
func benchWorkload(n, events int, seed int64) partalloc.Sequence {
	return partalloc.SaturationWorkload(partalloc.SaturationConfig{
		N: n, Events: events, Seed: seed, Churn: 0.25,
	})
}

func benchAllocator(b *testing.B, mk func(m *partalloc.Machine) partalloc.Allocator) {
	const n = 1024
	const events = 4096
	seq := benchWorkload(n, events, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := partalloc.MustNewMachine(n)
		res := partalloc.Simulate(mk(m), seq, partalloc.SimOptions{})
		if res.MaxLoad < res.LStar {
			b.Fatal("impossible load")
		}
	}
	b.SetBytes(int64(events))
}

func BenchmarkAllocGreedy(b *testing.B) {
	benchAllocator(b, func(m *partalloc.Machine) partalloc.Allocator {
		return partalloc.NewGreedy(m)
	})
}

func BenchmarkAllocBasic(b *testing.B) {
	benchAllocator(b, func(m *partalloc.Machine) partalloc.Allocator {
		return partalloc.NewBasic(m)
	})
}

func BenchmarkAllocConstant(b *testing.B) {
	benchAllocator(b, func(m *partalloc.Machine) partalloc.Allocator {
		return partalloc.NewConstant(m)
	})
}

func BenchmarkAllocPeriodicD2(b *testing.B) {
	benchAllocator(b, func(m *partalloc.Machine) partalloc.Allocator {
		return partalloc.NewPeriodic(m, 2, partalloc.DecreasingSize)
	})
}

func BenchmarkAllocLazyD2(b *testing.B) {
	benchAllocator(b, func(m *partalloc.Machine) partalloc.Allocator {
		return partalloc.NewLazy(m, 2, partalloc.DecreasingSize)
	})
}

func BenchmarkAllocRandom(b *testing.B) {
	benchAllocator(b, func(m *partalloc.Machine) partalloc.Allocator {
		return partalloc.NewRandom(m, 3)
	})
}

// BenchmarkAdversaryGreedy measures the interactive lower-bound
// construction itself (E5's engine).
func BenchmarkAdversaryGreedy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := partalloc.MustNewMachine(256)
		res := partalloc.RunAdversary(partalloc.NewGreedy(m), -1)
		if res.FinalLoad < res.LowerBound {
			b.Fatal("bound not met")
		}
	}
}

// BenchmarkSigmaR measures σ_r generation (E7's engine).
func BenchmarkSigmaR(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seq, _ := partalloc.SigmaR(partalloc.SigmaRConfig{N: 1 << 16, Seed: int64(i)})
		if len(seq.Events) == 0 {
			b.Fatal("empty sequence")
		}
	}
}
