package partalloc_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"partalloc"
)

// obsFleet is the six-algorithm fleet the equivalence gate runs: every
// paper algorithm the engine benchmarks, with the options each requires.
func obsFleet() []struct {
	id   string
	algo partalloc.Algorithm
	opts []partalloc.Option
} {
	return []struct {
		id   string
		algo partalloc.Algorithm
		opts []partalloc.Option
	}{
		{"greedy", partalloc.AlgoGreedy, nil},
		{"basic", partalloc.AlgoBasic, nil},
		{"constant", partalloc.AlgoConstant, nil},
		{"periodic", partalloc.AlgoPeriodic, []partalloc.Option{partalloc.WithD(4)}},
		{"lazy", partalloc.AlgoLazy, []partalloc.Option{partalloc.WithD(2)}},
		{"random", partalloc.AlgoRandom, []partalloc.Option{partalloc.WithSeed(11)}},
	}
}

// TestObservedEngineMatchesUninstrumented is the observability
// equivalence gate: an engine with metrics and a flight recorder attached
// must produce byte-identical canonical ledgers to an uninstrumented
// engine for every algorithm — instrumentation observes, never steers.
func TestObservedEngineMatchesUninstrumented(t *testing.T) {
	fleet := obsFleet()
	streams := make(map[string][]partalloc.Event, len(fleet))
	for i, tc := range fleet {
		seq := partalloc.PoissonWorkload(partalloc.WorkloadConfig{N: 64, Arrivals: 700, Seed: int64(i + 1)})
		streams[tc.id] = seq.Events
	}
	build := func(opts ...partalloc.EngineOption) *partalloc.Engine {
		t.Helper()
		eng, err := partalloc.NewEngine(append([]partalloc.EngineOption{partalloc.WithBatchSize(128)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		m := partalloc.MustNewMachine(64)
		for _, tc := range fleet {
			if err := eng.AddTenant(tc.id, tc.algo, m, tc.opts...); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Replay(context.Background(), streams); err != nil {
			t.Fatal(err)
		}
		return eng
	}

	plain := build()
	observed := build(partalloc.WithMetrics(partalloc.NewMetrics()), partalloc.WithFlightRecorder(512))
	for _, tc := range fleet {
		ps, err := plain.TenantStats(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		os_, err := observed.TenantStats(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		got, want := partalloc.CanonicalEngineStats(os_), partalloc.CanonicalEngineStats(ps)
		if !bytes.Equal(got, want) {
			t.Errorf("%s (%v): observed ledger diverged:\n--- observed ---\n%s--- plain ---\n%s",
				tc.id, tc.algo, got, want)
		}
	}

	// And the instrumented run actually recorded: series exist with the
	// names docs/OBSERVABILITY.md and scripts/obs-smoke.sh rely on.
	var scrape strings.Builder
	if err := observed.Metrics().WritePrometheus(&scrape); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"partalloc_tenant_events_total",
		"partalloc_tenant_max_load",
		"partalloc_tenant_peak_load",
		"partalloc_tenant_lstar",
		"partalloc_tenant_queue_depth",
		"partalloc_tenant_breaker_state",
		"partalloc_tenant_apply_latency_seconds_bucket",
		"partalloc_shard_apply_latency_seconds_bucket",
	} {
		if !strings.Contains(scrape.String(), series) {
			t.Errorf("scrape missing series %s", series)
		}
	}
	if fr := observed.FlightRecorder(); fr == nil || fr.Len() == 0 {
		t.Error("flight recorder empty after an observed replay")
	}
	if plain.Metrics() != nil || plain.FlightRecorder() != nil {
		t.Error("uninstrumented engine reports observability accessors")
	}
}

// TestEngineOptionValidation is the ErrBadOption table: every invalid
// option fails construction with the sentinel on the chain and the
// option's name in the message.
func TestEngineOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []partalloc.EngineOption
	}{
		{"WithShards", []partalloc.EngineOption{partalloc.WithShards(0)}},
		{"WithBatchSize", []partalloc.EngineOption{partalloc.WithBatchSize(0)}},
		{"WithMaxQueue", []partalloc.EngineOption{partalloc.WithMaxQueue(-1)}},
		{"WithOverloadPolicy", []partalloc.EngineOption{partalloc.WithOverloadPolicy(partalloc.OverloadPolicy(99))}},
		{"WithDegradeBudget", []partalloc.EngineOption{partalloc.WithDegradeBudget(0)}},
		{"WithReplayWatchdog", []partalloc.EngineOption{partalloc.WithReplayWatchdog(-time.Second)}},
		{"WithBreaker", []partalloc.EngineOption{partalloc.WithBreaker(partalloc.BreakerConfig{Base: -time.Second})}},
		{"WithJournal", []partalloc.EngineOption{partalloc.WithJournal("")}},
		{"WithJournalSync", []partalloc.EngineOption{partalloc.WithJournalSync(partalloc.JournalSyncPolicy(99))}},
		{"WithMetrics", []partalloc.EngineOption{partalloc.WithMetrics(nil)}},
		{"WithFlightRecorder", []partalloc.EngineOption{partalloc.WithFlightRecorder(0)}},
		{"WithPoisonDump", []partalloc.EngineOption{partalloc.WithPoisonDump(nil)}},
		{"WithPoisonDump", []partalloc.EngineOption{partalloc.WithPoisonDump(&bytes.Buffer{})}}, // requires WithFlightRecorder
		{"WithPlacement", []partalloc.EngineOption{partalloc.WithPlacement(partalloc.PlacementPolicy(99))}},
		{"WithPlacement", []partalloc.EngineOption{partalloc.WithPlacement(partalloc.PlacementBalanced), partalloc.WithShards(6)}}, // balanced wants pow2 shards
		{"WithRebalanceD", []partalloc.EngineOption{partalloc.WithRebalanceD(0)}},
		{"WithRebalanceD", []partalloc.EngineOption{partalloc.WithRebalanceD(2)}}, // requires PlacementBalanced
		{"WithRebalanceEvery", []partalloc.EngineOption{partalloc.WithRebalanceEvery(0)}},
		{"WithRebalanceEvery", []partalloc.EngineOption{partalloc.WithRebalanceEvery(8)}}, // requires PlacementBalanced
		{"EngineOption", []partalloc.EngineOption{nil}},
	}
	for _, tc := range cases {
		if _, err := partalloc.NewEngine(tc.opts...); !errors.Is(err, partalloc.ErrBadOption) {
			t.Errorf("%s: error %v is not ErrBadOption", tc.name, err)
		} else if !strings.Contains(err.Error(), tc.name) {
			t.Errorf("%s: error %q does not name the option", tc.name, err)
		}
		if _, err := partalloc.RecoverEngine(t.TempDir(), tc.opts...); !errors.Is(err, partalloc.ErrBadOption) {
			t.Errorf("RecoverEngine %s: error %v is not ErrBadOption", tc.name, err)
		}
	}
	// The first invalid option wins when several are wrong.
	_, err := partalloc.NewEngine(partalloc.WithShards(-1), partalloc.WithBatchSize(0))
	if err == nil || !strings.Contains(err.Error(), "WithShards") {
		t.Errorf("accumulated error %v does not report the first bad option", err)
	}
}

// TestAllocatorOptionsWrapErrBadOption pins the New-side half of the
// sentinel: option/algorithm mismatches are ErrBadOption too.
func TestAllocatorOptionsWrapErrBadOption(t *testing.T) {
	m := partalloc.MustNewMachine(16)
	cases := []struct {
		name string
		algo partalloc.Algorithm
		opts []partalloc.Option
	}{
		{"WithD on non-reallocating", partalloc.AlgoGreedy, []partalloc.Option{partalloc.WithD(2)}},
		{"WithD missing", partalloc.AlgoPeriodic, nil},
		{"WithOrder on non-reallocating", partalloc.AlgoBasic, []partalloc.Option{partalloc.WithOrder(partalloc.ArrivalOrder)}},
		{"WithSeed on deterministic", partalloc.AlgoGreedy, []partalloc.Option{partalloc.WithSeed(3)}},
		{"WithFaults on randomized", partalloc.AlgoRandom, []partalloc.Option{partalloc.WithFaults(partalloc.FaultSchedule{})}},
	}
	for _, tc := range cases {
		if _, err := partalloc.New(tc.algo, m, tc.opts...); !errors.Is(err, partalloc.ErrBadOption) {
			t.Errorf("%s: error %v is not ErrBadOption", tc.name, err)
		}
	}
	top, err := partalloc.NewTopology("hypercube", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partalloc.New(partalloc.AlgoGreedy, m, partalloc.WithTopology(top)); !errors.Is(err, partalloc.ErrBadOption) {
		t.Errorf("mismatched topology size: %v is not ErrBadOption", err)
	}
}

// TestNewEngineFromConfig exercises the deprecated struct wrapper: its
// fields must map onto the same options, observable through the Shed
// overload behavior and a journaled recovery round trip.
func TestNewEngineFromConfig(t *testing.T) {
	eng, err := partalloc.NewEngineFromConfig(partalloc.EngineConfig{
		Shards:   2,
		MaxQueue: 1,
		Overload: partalloc.OverloadShed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddTenant("t", partalloc.AlgoBasic, partalloc.MustNewMachine(4)); err != nil {
		t.Fatal(err)
	}
	err = eng.Submit("t",
		partalloc.Event{Kind: partalloc.EventArrive, Task: 1, Size: 1},
		partalloc.Event{Kind: partalloc.EventArrive, Task: 2, Size: 1})
	if !errors.Is(err, partalloc.ErrOverloaded) {
		t.Errorf("config-mapped Shed policy: %v is not ErrOverloaded", err)
	}
	// Explicit options win over struct fields: a larger bound admits both.
	eng2, err := partalloc.NewEngineFromConfig(partalloc.EngineConfig{MaxQueue: 1, Overload: partalloc.OverloadShed},
		partalloc.WithMaxQueue(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.AddTenant("t", partalloc.AlgoBasic, partalloc.MustNewMachine(4)); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Submit("t",
		partalloc.Event{Kind: partalloc.EventArrive, Task: 1, Size: 1},
		partalloc.Event{Kind: partalloc.EventArrive, Task: 2, Size: 1}); err != nil {
		t.Errorf("option-overridden bound shed anyway: %v", err)
	}
}

// TestRecoverEngineFromConfig exercises the deprecated recovery wrapper
// end to end: run journaled, close, recover through the struct form, and
// compare canonical ledgers.
func TestRecoverEngineFromConfig(t *testing.T) {
	dir := t.TempDir()
	eng, err := partalloc.NewEngineFromConfig(partalloc.EngineConfig{BatchSize: 16}, partalloc.WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	m := partalloc.MustNewMachine(32)
	if err := eng.AddTenant("t", partalloc.AlgoGreedy, m); err != nil {
		t.Fatal(err)
	}
	seq := partalloc.PoissonWorkload(partalloc.WorkloadConfig{N: 32, Arrivals: 300, Seed: 3})
	if err := eng.Replay(context.Background(), map[string][]partalloc.Event{"t": seq.Events}); err != nil {
		t.Fatal(err)
	}
	before, err := eng.TenantStats("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := partalloc.RecoverEngineFromConfig(partalloc.EngineConfig{BatchSize: 16}, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	after, err := rec.TenantStats("t")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(partalloc.CanonicalEngineStats(before), partalloc.CanonicalEngineStats(after)) {
		t.Error("recovered ledger diverged from the original")
	}
}

// TestPoisonDumpThroughFacade checks the WithPoisonDump plumbing: a
// poisoned tenant flushes the flight recorder to the configured writer.
func TestPoisonDumpThroughFacade(t *testing.T) {
	var dump bytes.Buffer
	eng, err := partalloc.NewEngine(
		partalloc.WithMetrics(partalloc.NewMetrics()),
		partalloc.WithFlightRecorder(128),
		partalloc.WithPoisonDump(&dump))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddTenant("t", partalloc.AlgoBasic, partalloc.MustNewMachine(4)); err != nil {
		t.Fatal(err)
	}
	// A duplicate arrival in one batch poisons the tenant.
	err = eng.Replay(context.Background(), map[string][]partalloc.Event{"t": {
		{Kind: partalloc.EventArrive, Task: 1, Size: 1},
		{Kind: partalloc.EventArrive, Task: 1, Size: 1},
	}})
	if !errors.Is(err, partalloc.ErrTenantPoisoned) {
		t.Fatalf("Replay error %v is not ErrTenantPoisoned", err)
	}
	if !strings.Contains(dump.String(), `"kind":"breaker-trip"`) {
		t.Errorf("poison dump missing the breaker-trip event:\n%s", dump.String())
	}
	// The dump is valid JSONL: every line is a JSON object.
	for i, line := range strings.Split(strings.TrimSpace(dump.String()), "\n") {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Errorf("dump line %d is not a JSON object: %q", i, line)
		}
	}
	var breakerState string
	var scrape strings.Builder
	if err := eng.Metrics().WritePrometheus(&scrape); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(scrape.String(), "\n") {
		if strings.HasPrefix(line, "partalloc_tenant_breaker_state") {
			breakerState = line
		}
	}
	if want := fmt.Sprintf("partalloc_tenant_breaker_state{tenant=%q} 1", "t"); breakerState != want {
		t.Errorf("breaker state gauge = %q, want %q", breakerState, want)
	}
}
