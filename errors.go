package partalloc

import "partalloc/internal/errs"

// Typed sentinel errors surfaced by the facade. The model packages wrap
// them with fmt.Errorf("...: %w", ...), so errors.Is works through every
// layer: machine construction (NewMachine), sequence validation
// (Sequence.Validate), allocator construction (New), and the engine's
// ingest/fault paths (Engine).
var (
	// ErrNotPowerOfTwo reports a machine or task size that is not a power
	// of two.
	ErrNotPowerOfTwo = errs.ErrNotPowerOfTwo
	// ErrTaskTooLarge reports a task larger than the machine.
	ErrTaskTooLarge = errs.ErrTaskTooLarge
	// ErrDuplicateTask reports an arrival for an already-active task ID.
	ErrDuplicateTask = errs.ErrDuplicateTask
	// ErrMachineFull reports that no healthy submachine of the requested
	// size exists (every candidate covers a failed PE).
	ErrMachineFull = errs.ErrMachineFull
	// ErrBadOption reports an invalid or inapplicable functional option,
	// anywhere options are taken: New (WithD on a non-reallocating
	// algorithm, say), NewEngine (WithShards(0)), or AddTenant. The
	// message names the offending option.
	ErrBadOption = errs.ErrBadOption
)
