package partalloc_test

import (
	"testing"

	"partalloc"
)

// Stress tests exercise the theorem bounds at machine and sequence scales
// well beyond the unit tests. They are skipped under -short.

func TestStressBoundsAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const n = 1 << 14
	seq := partalloc.SaturationWorkload(partalloc.SaturationConfig{
		N: n, Events: 60000, Seed: 1, Churn: 0.25, Target: 2.0,
	})
	lstar := seq.OptimalLoad(n)
	if lstar < 2 {
		t.Fatalf("workload too light: L* = %d", lstar)
	}

	constant := partalloc.Simulate(partalloc.NewConstant(partalloc.MustNewMachine(n)), seq, partalloc.SimOptions{})
	if constant.MaxLoad != lstar {
		t.Errorf("A_C at N=%d: load %d != L* %d", n, constant.MaxLoad, lstar)
	}

	greedy := partalloc.Simulate(partalloc.NewGreedy(partalloc.MustNewMachine(n)), seq, partalloc.SimOptions{})
	if greedy.MaxLoad > partalloc.GreedyBound(n)*lstar {
		t.Errorf("A_G at N=%d: load %d exceeds bound", n, greedy.MaxLoad)
	}

	for _, d := range []int{1, 3, 6} {
		am := partalloc.Simulate(
			partalloc.NewPeriodic(partalloc.MustNewMachine(n), d, partalloc.DecreasingSize),
			seq, partalloc.SimOptions{})
		if am.MaxLoad > partalloc.UpperBound(n, d)*lstar {
			t.Errorf("A_M(d=%d) at N=%d: load %d exceeds bound %d·%d",
				d, n, am.MaxLoad, partalloc.UpperBound(n, d), lstar)
		}
	}
}

func TestStressAdversaryAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const n = 1 << 20 // 20 phases against greedy
	res := partalloc.RunAdversary(partalloc.NewGreedy(partalloc.MustNewMachine(n)), -1)
	if res.OptimalLoad != 1 {
		t.Fatalf("L* = %d", res.OptimalLoad)
	}
	if res.FinalLoad < res.LowerBound {
		t.Errorf("forced load %d below bound %d", res.FinalLoad, res.LowerBound)
	}
	// At d=∞ the adversary should meet the greedy cap exactly, as it does
	// at small N (observed: the bounds are tight for A_G).
	if res.FinalLoad != partalloc.GreedyBound(n) {
		t.Errorf("forced load %d, greedy cap %d — tightness regressed",
			res.FinalLoad, partalloc.GreedyBound(n))
	}
}

func TestStressClosedLoopAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const n = 1 << 10
	w := partalloc.RandomSchedWorkload(partalloc.SchedWorkloadConfig{N: n, Jobs: 3000, Seed: 2})
	res := partalloc.Execute(partalloc.NewLazy(partalloc.MustNewMachine(n), 2, partalloc.DecreasingSize), w)
	if len(res.Jobs) != 3000 {
		t.Fatalf("finished %d jobs", len(res.Jobs))
	}
	if res.MeanSlowdown < 1 {
		t.Fatalf("mean slowdown %g < 1", res.MeanSlowdown)
	}
}
