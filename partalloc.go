// Package partalloc is a library for on-line processor allocation in
// partitionable (hierarchically decomposable) multiprocessors, reproducing
// "On Trading Task Reallocation for Thread Management in Partitionable
// Multiprocessors" (Gao, Rosenberg, Sitaraman; SPAA 1996).
//
// The model: an N-PE machine shaped as an N-leaf complete binary tree is
// time-shared by users who arrive at unpredictable times, request
// power-of-two submachines, and depart at unpredictable times. Several
// users' tasks may occupy the same PE; a PE's load is the number of
// threads (active tasks) it manages, and the allocator's quality is its
// maximum load relative to the optimal load L* = ⌈s(σ)/N⌉. A
// d-reallocation algorithm may globally migrate tasks once d·N units of
// work have arrived since the last migration — d trades migration traffic
// against thread-management load.
//
// # Algorithms
//
//   - NewGreedy — A_G: leftmost minimum-load placement, never reallocates;
//     load ≤ ⌈½(log N+1)⌉·L* (Theorem 4.1).
//   - NewBasic — A_B: first-fit over copies of the machine; load ≤ ⌈S/N⌉
//     for total arrived size S (Lemma 2).
//   - NewConstant — A_C: reallocates on every arrival; load = L* exactly
//     (Theorem 3.1).
//   - NewPeriodic — A_M(d): A_B plus a reallocation (first-fit-decreasing
//     repacking) every d·N arrived units; load ≤ min{d+1,⌈½(log N+1)⌉}·L*
//     (Theorem 4.2). No deterministic algorithm beats
//     ⌈½(min{d,log N}+1)⌉·L* (Theorem 4.3).
//   - NewLazy — A_M with on-demand reallocation timing: same guarantee,
//     far less traffic (and it realizes the paper's §2 example exactly).
//   - NewRandom — A_Rand: oblivious uniform placement; expected load ≤
//     (3·log N/log log N + 1)·L* (Theorem 5.1), and no randomized
//     no-reallocation algorithm beats Ω((log N/log log N)^{1/3}) (Theorem
//     5.2).
//
// # Quick start
//
//	m := partalloc.MustNewMachine(64)
//	a := partalloc.NewPeriodic(m, 2, partalloc.DecreasingSize)
//	seq := partalloc.PoissonWorkload(partalloc.WorkloadConfig{N: 64, Arrivals: 500, Seed: 1})
//	res := partalloc.Simulate(a, seq, partalloc.SimOptions{})
//	fmt.Printf("max load %d vs optimal %d (ratio %.2f)\n", res.MaxLoad, res.LStar, res.Ratio)
//
// The subpackages under internal/ hold the implementation; this package is
// the stable surface. Experiment runners that regenerate every artifact in
// the paper live in internal/experiments and are exposed through
// cmd/experiments.
package partalloc

import (
	"context"
	"io"

	"partalloc/internal/adversary"
	"partalloc/internal/core"
	"partalloc/internal/fault"
	"partalloc/internal/mathx"
	"partalloc/internal/sched"
	"partalloc/internal/sim"
	"partalloc/internal/subcube"
	"partalloc/internal/task"
	"partalloc/internal/topology"
	"partalloc/internal/trace"
	"partalloc/internal/tree"
	"partalloc/internal/workload"
)

// Machine is an N-PE tree machine description (immutable).
type Machine = tree.Machine

// Node identifies a submachine by the heap index of its root.
type Node = tree.Node

// NewMachine builds an N-PE machine; N must be a power of two.
func NewMachine(n int) (*Machine, error) { return tree.New(n) }

// MustNewMachine is NewMachine, panicking on error.
func MustNewMachine(n int) *Machine { return tree.MustNew(n) }

// Task is a user request for a power-of-two submachine.
type Task = task.Task

// TaskID identifies a task.
type TaskID = task.ID

// Sequence is a time-ordered series of arrival/departure events.
type Sequence = task.Sequence

// SequenceBuilder builds valid sequences incrementally.
type SequenceBuilder = task.Builder

// NewSequenceBuilder returns an empty builder.
func NewSequenceBuilder() *SequenceBuilder { return task.NewBuilder() }

// Figure1Sequence returns the paper's worked example σ*.
func Figure1Sequence() Sequence { return task.Figure1Sequence() }

// Allocator is the interface all allocation algorithms implement.
type Allocator = core.Allocator

// Reallocator is implemented by allocators that migrate tasks.
type Reallocator = core.Reallocator

// FaultTolerant is implemented by allocators that survive PE failures and
// recoveries (all deterministic algorithms here; the randomized ones are
// oblivious and do not).
type FaultTolerant = core.FaultTolerant

// Migration records one task moved between submachines.
type Migration = core.Migration

// ForcedStats accounts migrations forced by PE failures, separate from the
// voluntary d-reallocation budget.
type ForcedStats = core.ForcedStats

// ReallocStats counts reallocations, migrated tasks and moved PE-units.
type ReallocStats = core.ReallocStats

// ReallocOrder selects the reallocation procedure's packing order.
type ReallocOrder = core.ReallocOrder

// Packing orders for the reallocation procedure A_R.
const (
	// DecreasingSize is the paper's first-fit-decreasing order.
	DecreasingSize = core.DecreasingSize
	// ArrivalOrder packs in task-arrival order (observed to be equally
	// tight on fresh sets; see internal/core tests).
	ArrivalOrder = core.ArrivalOrder
)

// NewGreedy returns the greedy algorithm A_G.
//
// Deprecated: use New(AlgoGreedy, m).
func NewGreedy(m *Machine) Allocator { return core.NewGreedy(m) }

// NewBasic returns the first-fit-over-copies algorithm A_B.
//
// Deprecated: use New(AlgoBasic, m).
func NewBasic(m *Machine) Allocator { return core.NewBasic(m) }

// NewConstant returns the constantly-reallocating algorithm A_C.
//
// Deprecated: use New(AlgoConstant, m).
func NewConstant(m *Machine) Reallocator { return core.NewConstant(m) }

// NewPeriodic returns the d-reallocation algorithm A_M. d < 0 encodes ∞.
//
// Deprecated: use New(AlgoPeriodic, m, WithD(d), WithOrder(order)).
func NewPeriodic(m *Machine, d int, order ReallocOrder) Reallocator {
	return core.NewPeriodic(m, d, order)
}

// NewLazy returns the lazy d-reallocation variant.
//
// Deprecated: use New(AlgoLazy, m, WithD(d), WithOrder(order)).
func NewLazy(m *Machine, d int, order ReallocOrder) Reallocator {
	return core.NewLazy(m, d, order)
}

// NewRandom returns the oblivious randomized algorithm A_Rand.
//
// Deprecated: use New(AlgoRandom, m, WithSeed(seed)).
func NewRandom(m *Machine, seed int64) Allocator { return core.NewRandom(m, seed) }

// NewTwoChoice returns the balanced-allocations baseline (Azar et al., the
// paper's related work [2]): place each task on the less loaded of two
// uniformly random submachines of its size.
func NewTwoChoice(m *Machine, seed int64) Allocator { return core.NewTwoChoice(m, seed) }

// NewGreedyRandomTie returns the A_G tie-breaking ablation: minimum-load
// placement with uniform-random tie-breaking instead of leftmost. Same
// Theorem 4.1 worst case; measurably worse average-case packing (see
// DESIGN.md §4 and experiment E3).
func NewGreedyRandomTie(m *Machine, seed int64) Allocator { return core.NewGreedyRandomTie(m, seed) }

// SimOptions controls what Simulate records.
type SimOptions = sim.Options

// SimResult is a simulation outcome.
type SimResult = sim.Result

// Simulate drives an allocator through a sequence and measures loads,
// competitive ratio and reallocation cost. An allocator built with
// WithFaults has its schedule injected automatically (unless opt.Faults is
// already set, which wins), and one built with WithTopology runs
// host-aware: SimResult.Topology names the network and
// MigHops/ForcedHops price the migration traffic in physical hops.
func Simulate(a Allocator, seq Sequence, opt SimOptions) SimResult {
	a, opt = resolveRun(a, opt)
	return sim.Run(a, seq, opt)
}

// SimulateContext is Simulate with cooperative cancellation: once ctx is
// cancelled the run stops at the next event boundary and returns the
// measurements accumulated so far (SimResult.Events holds the processed
// count) together with ctx.Err() — the same partial-result shape the sweep
// harness checkpoints on SIGINT.
func SimulateContext(ctx context.Context, a Allocator, seq Sequence, opt SimOptions) (SimResult, error) {
	a, opt = resolveRun(a, opt)
	return sim.RunContext(ctx, a, seq, opt)
}

// resolveRun unwraps a WithFaults/WithTopology allocator into (inner
// allocator, options with the schedule's source and the host attached).
func resolveRun(a Allocator, opt SimOptions) (Allocator, SimOptions) {
	inner, sched, host := unwrapRun(a)
	if sched != nil && opt.Faults == nil {
		opt.Faults = sched.Source()
	}
	if host != nil && opt.Host == nil {
		opt.Host = host
	}
	return inner, opt
}

// WorkloadConfig parameterizes PoissonWorkload.
type WorkloadConfig = workload.Config

// SaturationConfig parameterizes SaturationWorkload.
type SaturationConfig = workload.SaturationConfig

// SessionConfig parameterizes SessionWorkload.
type SessionConfig = workload.SessionConfig

// PoissonWorkload generates Poisson arrivals with i.i.d. service times.
func PoissonWorkload(cfg WorkloadConfig) Sequence { return workload.Poisson(cfg) }

// SaturationWorkload generates a closed-loop near-full workload.
func SaturationWorkload(cfg SaturationConfig) Sequence { return workload.Saturation(cfg) }

// SessionWorkload generates a CM-5-style multi-user session workload.
func SessionWorkload(cfg SessionConfig) Sequence { return workload.Sessions(cfg) }

// AdversaryResult reports a deterministic lower-bound construction run.
type AdversaryResult = adversary.DetResult

// RunAdversary runs the Theorem 4.3 adversary against allocator a assuming
// reallocation parameter d (d < 0 for ∞) and returns the forced loads and
// the constructed sequence.
func RunAdversary(a Allocator, d int) AdversaryResult {
	return adversary.RunDeterministic(a, d)
}

// SigmaRConfig parameterizes the Theorem 5.2 random sequence.
type SigmaRConfig = adversary.SigmaRConfig

// SigmaRStats describes a generated σ_r draw.
type SigmaRStats = adversary.SigmaRStats

// SigmaR generates one draw of the randomized lower-bound sequence σ_r.
func SigmaR(cfg SigmaRConfig) (Sequence, SigmaRStats) { return adversary.SigmaR(cfg) }

// Topology is a physical network with hierarchical decomposition.
type Topology = topology.Machine

// NewTopology builds a named topology: "tree", "hypercube", "mesh",
// "butterfly" or "fattree".
func NewTopology(name string, n int) (Topology, error) { return topology.New(name, n) }

// TopologyNames lists supported topologies.
func TopologyNames() []string { return topology.Names() }

// Host pairs a physical network with its canonical hierarchical binary
// decomposition: allocators run on the decomposition tree (Host.Tree),
// and the host prices migrations in physical hops and translates fault
// targets. WithTopology builds one implicitly; construct one directly to
// inspect a decomposition (PE sets, per-level sibling distances, level
// widths) or to share a tree across allocators. See docs/TOPOLOGIES.md.
type Host = topology.Host

// NewHost builds the decomposition host for a named topology.
func NewHost(name string, n int) (*Host, error) { return topology.NewHostNamed(name, n) }

// MigrationCost prices moving a task between two equal-size submachines on
// a physical topology, in per-PE routed hops.
func MigrationCost(top Topology, m *Machine, from, to Node) int64 {
	return topology.MigrationCost(top, m, from, to)
}

// SchedJob is one unit of executable work for the closed-loop scheduler.
type SchedJob = sched.Job

// SchedWorkload is an arrival-ordered job stream for the scheduler.
type SchedWorkload = sched.Workload

// SchedResult reports a closed-loop execution.
type SchedResult = sched.Result

// SchedWorkloadConfig parameterizes RandomSchedWorkload.
type SchedWorkloadConfig = sched.WorkloadConfig

// RandomSchedWorkload draws a Poisson job stream with exponential work
// requirements for the closed-loop scheduler.
func RandomSchedWorkload(cfg SchedWorkloadConfig) SchedWorkload {
	return sched.RandomWorkload(cfg)
}

// Execute runs jobs to completion under gang-scheduled round-robin
// time-sharing: each job advances at 1/(max load in its submachine), so
// departures — and therefore response times — are determined by the
// allocator's balance. This is the paper's §2 slowdown model, executed.
// An allocator built with WithFaults has its schedule injected, and one
// built with WithTopology reports hop-weighted migration costs
// (SchedResult's Topology/MigHops/ForcedHops fields).
func Execute(a Allocator, w SchedWorkload) SchedResult {
	inner, schedF, host := unwrapRun(a)
	var src FaultSource
	if schedF != nil {
		src = schedF.Source()
	}
	if schedF == nil && host == nil {
		return sched.Run(inner, w)
	}
	return sched.RunHosted(inner, w, nil, src, host)
}

// ExecuteContext is Execute with cooperative cancellation: once ctx is
// cancelled the run stops at the next event boundary and returns the jobs
// completed so far together with ctx.Err().
func ExecuteContext(ctx context.Context, a Allocator, w SchedWorkload) (SchedResult, error) {
	inner, schedF, host := unwrapRun(a)
	var src FaultSource
	if schedF != nil {
		src = schedF.Source()
	}
	return sched.RunHostedContext(ctx, inner, w, nil, src, host)
}

// FaultSource feeds fault events into a run; FaultSchedule.Source returns
// one.
type FaultSource = fault.Source

// SubcubeStrategy selects an exclusive (space-shared) subcube recognition
// scheme on a hypercube: SubcubeBuddy, SubcubeGrayCode (Chen/Shin) or
// SubcubeExhaustive.
type SubcubeStrategy = subcube.Strategy

// Subcube recognition strategies for space-shared allocation.
const (
	SubcubeBuddy      = subcube.Buddy
	SubcubeGrayCode   = subcube.GrayCode
	SubcubeExhaustive = subcube.Exhaustive
)

// SpaceShareJob is one exclusive-use request.
type SpaceShareJob = subcube.Job

// SpaceShareResult reports a space-shared (FCFS-queued) run.
type SpaceShareResult = subcube.QueueResult

// SpaceShare simulates exclusive FCFS subcube allocation on a dim-cube —
// the related-work regime the paper's time-sharing model is contrasted
// against (jobs wait when fragmentation blocks them).
func SpaceShare(dim int, st SubcubeStrategy, jobs []SpaceShareJob) SpaceShareResult {
	return subcube.RunQueue(dim, st, jobs)
}

// RandomSpaceShareJobs draws a Poisson stream of exclusive-use jobs.
func RandomSpaceShareJobs(dim, count int, rate, meanDuration float64, seed int64) []SpaceShareJob {
	return subcube.RandomJobs(dim, count, rate, meanDuration, seed)
}

// SaveSequence writes a sequence as a JSON trace (see internal/trace for
// the schema). label is free-form; n records the machine size the
// sequence was generated for (0 if unknown).
func SaveSequence(w io.Writer, seq Sequence, label string, n int) error {
	return trace.WriteJSON(w, seq, label, n)
}

// LoadSequence reads a JSON trace written by SaveSequence and validates
// it, returning the sequence with its label and machine size.
func LoadSequence(r io.Reader) (Sequence, string, int, error) {
	return trace.ReadJSON(r)
}

// GreedyBound returns ⌈½(log N+1)⌉, the Theorem 4.1 factor.
func GreedyBound(n int) int { return mathx.GreedyBound(n) }

// UpperBound returns min{d+1, ⌈½(log N+1)⌉}, the Theorem 4.2 factor.
func UpperBound(n, d int) int { return mathx.DetUpperFactor(n, d) }

// LowerBound returns ⌈½(min{d, log N}+1)⌉, the Theorem 4.3 factor.
func LowerBound(n, d int) int { return mathx.DetLowerFactor(n, d) }
