package partalloc_test

import (
	"testing"

	"partalloc"
)

// The facade must expose a working end-to-end path: build machine, build
// workload, run every algorithm, check the paper's bounds through the
// public API only.
func TestPublicAPIEndToEnd(t *testing.T) {
	const n = 64
	m := partalloc.MustNewMachine(n)
	seq := partalloc.PoissonWorkload(partalloc.WorkloadConfig{N: n, Arrivals: 400, Seed: 42})
	lstar := seq.OptimalLoad(n)

	algos := map[string]partalloc.Allocator{
		"greedy":   partalloc.NewGreedy(m),
		"basic":    partalloc.NewBasic(partalloc.MustNewMachine(n)),
		"constant": partalloc.NewConstant(partalloc.MustNewMachine(n)),
		"periodic": partalloc.NewPeriodic(partalloc.MustNewMachine(n), 2, partalloc.DecreasingSize),
		"lazy":     partalloc.NewLazy(partalloc.MustNewMachine(n), 2, partalloc.DecreasingSize),
		"random":   partalloc.NewRandom(partalloc.MustNewMachine(n), 7),
	}
	for name, a := range algos {
		res := partalloc.Simulate(a, seq, partalloc.SimOptions{})
		if res.LStar != lstar {
			t.Errorf("%s: LStar %d, want %d", name, res.LStar, lstar)
		}
		if res.MaxLoad < lstar {
			t.Errorf("%s: load %d below optimal %d", name, res.MaxLoad, lstar)
		}
		switch name {
		case "constant":
			if res.MaxLoad != lstar {
				t.Errorf("constant: load %d, want optimal %d", res.MaxLoad, lstar)
			}
		case "greedy":
			if res.MaxLoad > partalloc.GreedyBound(n)*lstar {
				t.Errorf("greedy exceeded Theorem 4.1 bound")
			}
		case "periodic", "lazy":
			if res.MaxLoad > partalloc.UpperBound(n, 2)*lstar {
				t.Errorf("%s exceeded Theorem 4.2 bound", name)
			}
		}
	}
}

func TestPublicBounds(t *testing.T) {
	if partalloc.GreedyBound(1024) != 6 {
		t.Error("GreedyBound(1024) != 6")
	}
	if partalloc.UpperBound(1024, 2) != 3 || partalloc.LowerBound(1024, 2) != 2 {
		t.Error("bounds for d=2 wrong")
	}
	if partalloc.UpperBound(1024, -1) != 6 || partalloc.LowerBound(1024, -1) != 6 {
		t.Error("bounds for d=inf wrong")
	}
}

func TestPublicAdversary(t *testing.T) {
	m := partalloc.MustNewMachine(256)
	res := partalloc.RunAdversary(partalloc.NewGreedy(m), -1)
	if res.OptimalLoad != 1 {
		t.Fatalf("adversary L* = %d", res.OptimalLoad)
	}
	if res.FinalLoad < res.LowerBound {
		t.Fatalf("adversary failed to force bound: %d < %d", res.FinalLoad, res.LowerBound)
	}
}

func TestPublicSigmaR(t *testing.T) {
	seq, stats := partalloc.SigmaR(partalloc.SigmaRConfig{N: 1 << 12, Seed: 3})
	if err := seq.Validate(1 << 12); err != nil {
		t.Fatal(err)
	}
	if stats.OptimalLoad != 1 {
		t.Fatalf("σ_r L* = %d", stats.OptimalLoad)
	}
}

func TestPublicTopologies(t *testing.T) {
	m := partalloc.MustNewMachine(16)
	for _, name := range partalloc.TopologyNames() {
		top, err := partalloc.NewTopology(name, 16)
		if err != nil {
			t.Fatal(err)
		}
		if c := partalloc.MigrationCost(top, m, 8, 9); c <= 0 {
			t.Errorf("%s: migration cost %d", name, c)
		}
	}
}

func TestPublicSequenceBuilder(t *testing.T) {
	b := partalloc.NewSequenceBuilder()
	id := b.Arrive(4)
	b.At(2).Depart(id)
	seq := b.Sequence()
	if err := seq.Validate(8); err != nil {
		t.Fatal(err)
	}
	if seq.OptimalLoad(8) != 1 {
		t.Fatal("builder round trip broken")
	}
}

func TestPublicExecute(t *testing.T) {
	const n = 32
	w := partalloc.RandomSchedWorkload(partalloc.SchedWorkloadConfig{N: n, Jobs: 100, Seed: 2})
	res := partalloc.Execute(partalloc.NewConstant(partalloc.MustNewMachine(n)), w)
	if len(res.Jobs) != 100 {
		t.Fatalf("finished %d jobs", len(res.Jobs))
	}
	if res.MeanSlowdown < 1 || res.Makespan <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.Realloc.Reallocations == 0 {
		t.Fatal("A_C never reallocated during execution")
	}
}

func TestPublicSpaceShare(t *testing.T) {
	jobs := partalloc.RandomSpaceShareJobs(5, 100, 2.0, 8.0, 1)
	for _, st := range []partalloc.SubcubeStrategy{
		partalloc.SubcubeBuddy, partalloc.SubcubeGrayCode, partalloc.SubcubeExhaustive,
	} {
		res := partalloc.SpaceShare(5, st, jobs)
		if res.Completed != 100 {
			t.Fatalf("%v: completed %d", st, res.Completed)
		}
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Fatalf("%v: utilization %g", st, res.Utilization)
		}
	}
}

func TestPublicFigure1(t *testing.T) {
	seq := partalloc.Figure1Sequence()
	g := partalloc.NewGreedy(partalloc.MustNewMachine(4))
	res := partalloc.Simulate(g, seq, partalloc.SimOptions{})
	if res.MaxLoad != 2 {
		t.Fatalf("greedy on σ*: %d", res.MaxLoad)
	}
	lz := partalloc.NewLazy(partalloc.MustNewMachine(4), 1, partalloc.DecreasingSize)
	res = partalloc.Simulate(lz, seq, partalloc.SimOptions{})
	if res.MaxLoad != 1 {
		t.Fatalf("lazy(1) on σ*: %d", res.MaxLoad)
	}
	if res.Realloc.Reallocations != 1 {
		t.Fatalf("lazy reallocations: %d", res.Realloc.Reallocations)
	}
}
