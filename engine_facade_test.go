package partalloc_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"partalloc"
)

// TestEngineFacadeMatchesSimulate drives the public Engine with
// option-built tenants and checks the ledgers agree with serial Simulate.
func TestEngineFacadeMatchesSimulate(t *testing.T) {
	eng, err := partalloc.NewEngine(partalloc.WithBatchSize(128))
	if err != nil {
		t.Fatal(err)
	}
	type tenantCfg struct {
		id   string
		algo partalloc.Algorithm
		opts []partalloc.Option
	}
	tenants := []tenantCfg{
		{"alpha", partalloc.AlgoBasic, nil},
		{"bravo", partalloc.AlgoPeriodic, []partalloc.Option{partalloc.WithD(2)}},
		{"charlie", partalloc.AlgoRandom, []partalloc.Option{partalloc.WithSeed(7)}},
		{"delta", partalloc.AlgoLazy, []partalloc.Option{partalloc.WithD(1)}},
	}
	m := partalloc.MustNewMachine(64)
	streams := make(map[string][]partalloc.Event)
	for i, tc := range tenants {
		if err := eng.AddTenant(tc.id, tc.algo, m, tc.opts...); err != nil {
			t.Fatal(err)
		}
		seq := partalloc.PoissonWorkload(partalloc.WorkloadConfig{N: 64, Arrivals: 500, Seed: int64(i + 1)})
		streams[tc.id] = seq.Events
	}
	if err := eng.Replay(context.Background(), streams); err != nil {
		t.Fatal(err)
	}
	for _, tc := range tenants {
		want := partalloc.Simulate(partalloc.MustNew(tc.algo, m, tc.opts...),
			partalloc.Sequence{Events: streams[tc.id]}, partalloc.SimOptions{})
		st, err := eng.TenantStats(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		if st.MaxLoad != want.FinalLoad || st.LStar != want.LStar {
			t.Errorf("%s: engine (MaxLoad=%d, LStar=%d) vs Simulate (FinalLoad=%d, LStar=%d)",
				tc.id, st.MaxLoad, st.LStar, want.FinalLoad, want.LStar)
		}
		if !reflect.DeepEqual(st.Realloc, want.Realloc) {
			t.Errorf("%s: ReallocStats %+v, want %+v", tc.id, st.Realloc, want.Realloc)
		}
	}
}

// TestEngineFaultOptionAndSentinel is the engine-path sentinel check: a
// WithFaults tenant whose machine loses every PE returns (not panics) an
// error chain that errors.Is recognizes as both ErrTenantPoisoned and
// ErrMachineFull.
func TestEngineFaultOptionAndSentinel(t *testing.T) {
	eng, err := partalloc.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	m := partalloc.MustNewMachine(2)
	err = eng.AddTenant("doomed", partalloc.AlgoBasic, m, partalloc.WithFaults(partalloc.FaultSchedule{
		Events: []partalloc.FaultEvent{
			{At: 0, Kind: partalloc.FailPE, PE: 0},
			{At: 0, Kind: partalloc.FailPE, PE: 1},
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	err = eng.Replay(context.Background(), map[string][]partalloc.Event{
		"doomed": {{Kind: partalloc.EventArrive, Task: 1, Size: 1}},
	})
	if !errors.Is(err, partalloc.ErrTenantPoisoned) {
		t.Fatalf("Replay error %v is not ErrTenantPoisoned", err)
	}
	if !errors.Is(err, partalloc.ErrMachineFull) {
		t.Fatalf("Replay error %v does not wrap ErrMachineFull", err)
	}
	if err := eng.Err("doomed"); !errors.Is(err, partalloc.ErrMachineFull) {
		t.Errorf("Err(doomed) = %v", err)
	}

	// Invalid tenant configurations are rejected at AddTenant.
	if err := eng.AddTenant("bad", partalloc.AlgoPeriodic, m); err == nil {
		t.Error("AddTenant accepted AlgoPeriodic without WithD")
	}
	if err := eng.AddTenant("", 0, nil); err == nil {
		t.Error("AddTenant accepted a zero algorithm and nil machine")
	}
	if err := eng.AddTenant("doomed", partalloc.AlgoBasic, m); !errors.Is(err, partalloc.ErrDuplicateTenant) {
		t.Errorf("duplicate AddTenant = %v", err)
	}
	if err := eng.Submit("ghost"); !errors.Is(err, partalloc.ErrUnknownTenant) {
		t.Errorf("Submit to unknown tenant = %v", err)
	}
}
