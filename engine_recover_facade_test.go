package partalloc_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"partalloc"
)

// TestEngineJournalRecoverRoundTrip is the facade-level crash-recovery
// gate: a journaling engine with option-built tenants (reallocation
// knobs, seeds, topology, faults) is closed mid-state — queued events
// and a poisoned tenant included — and RecoverEngine must reproduce
// every tenant ledger byte-for-byte under CanonicalEngineStats.
func TestEngineJournalRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	eng, err := partalloc.NewEngine(partalloc.WithBatchSize(32),
		partalloc.WithJournal(dir), partalloc.WithMaxQueue(64))
	if err != nil {
		t.Fatal(err)
	}

	m := partalloc.MustNewMachine(64)
	top, err := partalloc.NewTopology("mesh", 64)
	if err != nil {
		t.Fatal(err)
	}
	sched := partalloc.FaultSchedule{Events: []partalloc.FaultEvent{
		{At: 10, Kind: partalloc.FailPE, PE: 3},
		{At: 200, Kind: partalloc.RecoverPE, PE: 3},
	}}
	type tenantCfg struct {
		id   string
		algo partalloc.Algorithm
		opts []partalloc.Option
	}
	tenants := []tenantCfg{
		{"mesh-faulty", partalloc.AlgoBasic, []partalloc.Option{partalloc.WithTopology(top), partalloc.WithFaults(sched)}},
		{"periodic", partalloc.AlgoPeriodic, []partalloc.Option{partalloc.WithD(2), partalloc.WithOrder(partalloc.ArrivalOrder)}},
		{"random", partalloc.AlgoRandom, []partalloc.Option{partalloc.WithSeed(7)}},
		{"lazy", partalloc.AlgoLazy, []partalloc.Option{partalloc.WithD(1)}},
	}
	for i, tc := range tenants {
		if err := eng.AddTenant(tc.id, tc.algo, m, tc.opts...); err != nil {
			t.Fatal(err)
		}
		seq := partalloc.PoissonWorkload(partalloc.WorkloadConfig{N: 64, Arrivals: 400, Seed: int64(i + 1)})
		if err := eng.Submit(tc.id, seq.Events...); err != nil {
			t.Fatal(err)
		}
	}
	// One tenant flushed clean, the rest keep their queued remainders.
	if err := eng.Flush("random"); err != nil {
		t.Fatal(err)
	}
	// A poisoned tenant must survive recovery poisoned, cause intact.
	if err := eng.AddTenant("doomed", partalloc.AlgoGreedy, partalloc.MustNewMachine(4)); err != nil {
		t.Fatal(err)
	}
	dup := []partalloc.Event{
		{Kind: partalloc.EventArrive, Task: 1, Size: 2},
		{Kind: partalloc.EventArrive, Task: 1, Size: 2},
	}
	if err := eng.Submit("doomed", dup...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush("doomed"); !errors.Is(err, partalloc.ErrTenantPoisoned) || !errors.Is(err, partalloc.ErrDuplicateTask) {
		t.Fatalf("poisoning flush: %v", err)
	}

	want := eng.Stats()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := partalloc.RecoverEngine(dir, partalloc.WithBatchSize(32), partalloc.WithMaxQueue(64))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	got := rec.Stats()
	if len(got) != len(want) {
		t.Fatalf("recovered %d tenants, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := partalloc.CanonicalEngineStats(want[i]), partalloc.CanonicalEngineStats(got[i])
		if !bytes.Equal(w, g) {
			t.Errorf("%s: recovered ledger diverges:\n  live: %s\n  rec:  %s", want[i].Tenant, w, g)
		}
	}
	if err := rec.Err("doomed"); !errors.Is(err, partalloc.ErrDuplicateTask) {
		t.Errorf("recovered poisoning cause: %v", err)
	}

	// The recovered engine ingests and journals onward.
	if err := rec.Submit("periodic", partalloc.Event{Kind: partalloc.EventArrive, Task: 1 << 30, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := rec.FlushAll(); !errors.Is(err, partalloc.ErrTenantPoisoned) {
		// FlushAll hits doomed first alphabetically? Either way the only
		// acceptable failure is the reproduced poisoning.
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineOverloadOptions exercises the overload surface through the
// facade: Shed rejects whole with ErrOverloaded, Block admits chunked.
func TestEngineOverloadOptions(t *testing.T) {
	shed, err := partalloc.NewEngine(partalloc.WithBatchSize(4),
		partalloc.WithMaxQueue(8), partalloc.WithOverloadPolicy(partalloc.OverloadShed))
	if err != nil {
		t.Fatal(err)
	}
	m := partalloc.MustNewMachine(16)
	if err := shed.AddTenant("t", partalloc.AlgoBasic, m); err != nil {
		t.Fatal(err)
	}
	big := make([]partalloc.Event, 10)
	for i := range big {
		big[i] = partalloc.Event{Kind: partalloc.EventArrive, Task: partalloc.TaskID(i + 1), Size: 1}
	}
	if err := shed.Submit("t", big...); !errors.Is(err, partalloc.ErrOverloaded) {
		t.Fatalf("Shed over bound: %v", err)
	}
	st, _ := shed.TenantStats("t")
	if st.ShedEvents != 10 || st.Events != 0 {
		t.Errorf("after shed: ShedEvents=%d Events=%d, want 10/0", st.ShedEvents, st.Events)
	}

	block, err := partalloc.NewEngine(partalloc.WithBatchSize(4),
		partalloc.WithMaxQueue(8), partalloc.WithOverloadPolicy(partalloc.OverloadBlock))
	if err != nil {
		t.Fatal(err)
	}
	if err := block.AddTenant("t", partalloc.AlgoBasic, m); err != nil {
		t.Fatal(err)
	}
	if err := block.Submit("t", big...); err != nil {
		t.Fatalf("Block over bound: %v", err)
	}
	if err := block.FlushAll(); err != nil {
		t.Fatal(err)
	}
	st, _ = block.TenantStats("t")
	if st.Events != 10 || st.ShedEvents != 0 {
		t.Errorf("Block applied %d events, shed %d; want 10/0", st.Events, st.ShedEvents)
	}
}

// TestEngineDegradeOptionThroughFacade checks OverloadDegrade end to end
// on a degradable tenant: a sub-nanosecond budget forces the controller
// up the ladder, and the transition ledger surfaces in the stats.
func TestEngineDegradeOptionThroughFacade(t *testing.T) {
	eng, err := partalloc.NewEngine(partalloc.WithBatchSize(64),
		partalloc.WithOverloadPolicy(partalloc.OverloadDegrade), partalloc.WithDegradeBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	m := partalloc.MustNewMachine(64)
	if err := eng.AddTenant("t", partalloc.AlgoPeriodic, m, partalloc.WithD(1)); err != nil {
		t.Fatal(err)
	}
	seq := partalloc.PoissonWorkload(partalloc.WorkloadConfig{N: 64, Arrivals: 2000, Seed: 3})
	if err := eng.Replay(context.Background(), map[string][]partalloc.Event{"t": seq.Events}); err != nil {
		t.Fatal(err)
	}
	st, _ := eng.TenantStats("t")
	if st.DegradeLevel == 0 || len(st.Degrades) == 0 {
		t.Errorf("1ns budget never degraded: level=%d transitions=%d", st.DegradeLevel, len(st.Degrades))
	}
	if st.EffectiveD < 1 {
		t.Errorf("EffectiveD = %d on a degraded A_M tenant", st.EffectiveD)
	}
	if st.Events != int64(len(seq.Events)) {
		t.Errorf("degraded tenant applied %d of %d events", st.Events, len(seq.Events))
	}
}

// TestRecoverEngineRejectsConflictingJournal pins the strictness rule:
// WithJournal inside RecoverEngine may only repeat the directory.
func TestRecoverEngineRejectsConflictingJournal(t *testing.T) {
	if _, err := partalloc.RecoverEngine(t.TempDir(), partalloc.WithJournal("elsewhere")); err == nil {
		t.Fatal("conflicting WithJournal accepted")
	}
}
