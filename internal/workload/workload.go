// Package workload generates synthetic task sequences for the experiments.
//
// The paper's model has users arriving at unpredictable times, requesting
// power-of-two submachines, and departing at unpredictable times. The
// generators here produce such sequences from explicit, seeded random
// processes so every experiment is reproducible:
//
//   - Poisson arrivals with exponential, Pareto (heavy-tailed) or uniform
//     service times — the classic multiprogrammed-machine model;
//   - size distributions over powers of two: uniform-exponent, geometric
//     (small tasks dominate), fixed, and a "mixed" profile with occasional
//     full-machine jobs;
//   - a multi-user session model in the spirit of the paper's CM-5/SP2
//     motivation: users come and go in sessions, each submitting a burst
//     of jobs sized to their partition;
//   - saturation loads that keep the active size near a target fraction of
//     N, the regime where thread-management pressure is highest.
package workload

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"partalloc/internal/mathx"
	"partalloc/internal/task"
)

// SizeDist selects how task sizes (exponents of two) are drawn.
type SizeDist int

const (
	// UniformSizes draws the exponent uniformly from [0, MaxExp].
	UniformSizes SizeDist = iota
	// GeometricSizes halves the probability per exponent step: small tasks
	// dominate, as in most real job logs.
	GeometricSizes
	// FixedSize always uses MaxExp.
	FixedSize
	// MixedSizes mostly draws geometric small tasks but with probability
	// 1/16 submits a half- or full-machine job.
	MixedSizes
)

func (d SizeDist) String() string {
	switch d {
	case UniformSizes:
		return "uniform"
	case GeometricSizes:
		return "geometric"
	case FixedSize:
		return "fixed"
	case MixedSizes:
		return "mixed"
	}
	return fmt.Sprintf("SizeDist(%d)", int(d))
}

// DurationDist selects the service-time law.
type DurationDist int

const (
	// ExpDurations draws exponential service times (memoryless).
	ExpDurations DurationDist = iota
	// ParetoDurations draws Pareto(α=1.5) service times: heavy-tailed, a
	// few jobs run very long — the worst case for never-reallocating
	// allocators because fragmentation persists.
	ParetoDurations
	// UniformDurations draws uniformly from (0, 2·MeanDuration).
	UniformDurations
)

func (d DurationDist) String() string {
	switch d {
	case ExpDurations:
		return "exponential"
	case ParetoDurations:
		return "pareto"
	case UniformDurations:
		return "uniform"
	}
	return fmt.Sprintf("DurationDist(%d)", int(d))
}

// Config parameterizes the Poisson generator.
type Config struct {
	// N is the machine size; task sizes never exceed it.
	N int
	// MaxExp caps task sizes at 2^MaxExp; 0 means log2(N)-1 (the paper's
	// interesting regime: tasks of size N cause no imbalance).
	MaxExp int
	// Arrivals is the number of task arrivals to generate.
	Arrivals int
	// ArrivalRate is the Poisson rate λ (arrivals per unit time).
	ArrivalRate float64
	// MeanDuration is the mean service time.
	MeanDuration float64
	// Sizes selects the size distribution.
	Sizes SizeDist
	// Durations selects the service-time distribution.
	Durations DurationDist
	// Seed drives all randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxExp == 0 {
		c.MaxExp = mathx.Max(mathx.Log2(c.N)-1, 0)
	}
	if c.ArrivalRate == 0 {
		c.ArrivalRate = 1
	}
	if c.MeanDuration == 0 {
		c.MeanDuration = 10
	}
	if c.Arrivals == 0 {
		c.Arrivals = 1000
	}
	return c
}

// drawSize returns a power-of-two size per the configured distribution.
func drawSize(rng *rand.Rand, dist SizeDist, maxExp int) int {
	switch dist {
	case UniformSizes:
		return 1 << rng.Intn(maxExp+1)
	case GeometricSizes:
		e := 0
		for e < maxExp && rng.Intn(2) == 0 {
			e++
		}
		return 1 << e
	case FixedSize:
		return 1 << maxExp
	case MixedSizes:
		if rng.Intn(16) == 0 {
			if rng.Intn(2) == 0 && maxExp > 0 {
				return 1 << (maxExp - 1)
			}
			return 1 << maxExp
		}
		e := 0
		for e < maxExp && rng.Intn(2) == 0 {
			e++
		}
		return 1 << e
	}
	panic(fmt.Sprintf("workload: unknown size distribution %d", dist))
}

// drawDuration returns a service time per the configured distribution.
func drawDuration(rng *rand.Rand, dist DurationDist, mean float64) float64 {
	switch dist {
	case ExpDurations:
		return rng.ExpFloat64() * mean
	case ParetoDurations:
		// Pareto with α = 1.5 and x_min chosen so the mean is `mean`:
		// E[X] = α·x_min/(α−1) = 3·x_min, so x_min = mean/3.
		const alpha = 1.5
		xmin := mean / 3
		return xmin / math.Pow(1-rng.Float64(), 1/alpha)
	case UniformDurations:
		return rng.Float64() * 2 * mean
	}
	panic(fmt.Sprintf("workload: unknown duration distribution %d", dist))
}

// depHeap is a min-heap of scheduled departures ordered by (time, id).
type depItem struct {
	at float64
	id task.ID
}

type depHeap []depItem

func (h depHeap) Len() int { return len(h) }
func (h depHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h depHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *depHeap) Push(x any)     { *h = append(*h, x.(depItem)) }
func (h *depHeap) Pop() any       { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h depHeap) peek() depItem   { return h[0] }
func (h *depHeap) pop() depItem   { return heap.Pop(h).(depItem) }
func (h *depHeap) push(d depItem) { heap.Push(h, d) }

// Poisson generates a sequence with Poisson task arrivals and i.i.d.
// service times.
func Poisson(cfg Config) task.Sequence {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := task.NewBuilder()
	now := 0.0
	var deps depHeap
	for i := 0; i < cfg.Arrivals; i++ {
		now += rng.ExpFloat64() / cfg.ArrivalRate
		for deps.Len() > 0 && deps.peek().at < now {
			d := deps.pop()
			b.At(d.at).Depart(d.id)
		}
		b.At(now)
		size := drawSize(rng, cfg.Sizes, cfg.MaxExp)
		id := b.Arrive(size)
		deps.push(depItem{at: now + drawDuration(rng, cfg.Durations, cfg.MeanDuration), id: id})
	}
	for deps.Len() > 0 {
		d := deps.pop()
		b.At(d.at).Depart(d.id)
	}
	return b.Sequence()
}

// SaturationConfig parameterizes a closed-loop generator that holds the
// active size near a target fraction of N — the regime where every
// allocation decision matters because the machine is near-full.
type SaturationConfig struct {
	N        int
	MaxExp   int     // 0 → log2(N)-1
	Target   float64 // target active fraction of N, e.g. 0.9
	Events   int     // total events to generate
	Sizes    SizeDist
	Seed     int64
	Churn    float64 // probability that a step retires a task even under target
	TimeStep float64 // clock advance per event; 0 → 1
}

// Saturation generates a closed-loop sequence: below the target fill level
// it arrives tasks, above it departs random active tasks, with churn mixing
// the two so fragmentation opportunities appear continuously.
func Saturation(cfg SaturationConfig) task.Sequence {
	if cfg.MaxExp == 0 {
		cfg.MaxExp = mathx.Max(mathx.Log2(cfg.N)-1, 0)
	}
	if cfg.Target == 0 {
		cfg.Target = 0.9
	}
	if cfg.Events == 0 {
		cfg.Events = 1000
	}
	if cfg.TimeStep == 0 {
		cfg.TimeStep = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := task.NewBuilder()
	now := 0.0
	targetSize := int64(cfg.Target * float64(cfg.N))
	for i := 0; i < cfg.Events; i++ {
		now += cfg.TimeStep
		b.At(now)
		act := b.Active()
		if len(act) > 0 && (b.ActiveSize() >= targetSize || rng.Float64() < cfg.Churn) {
			b.Depart(act[rng.Intn(len(act))])
		} else {
			b.Arrive(drawSize(rng, cfg.Sizes, cfg.MaxExp))
		}
	}
	return b.Sequence()
}

// SessionConfig parameterizes the multi-user session generator — the
// paper's CM-5-style motivation, where each user owns a virtual partition
// for a while and submits work into it.
type SessionConfig struct {
	N            int
	Sessions     int     // number of user sessions
	MeanJobs     int     // mean jobs submitted per session (geometric, ≥1)
	SessionRate  float64 // Poisson rate of session starts
	MeanLifetime float64 // mean session duration (exponential)
	Seed         int64
}

// sessionEv is a pending arrival/departure of one session job.
type sessionEv struct {
	at     float64
	arrive bool
	size   int
	key    int64
}

// Sessions generates a sequence in which each user session requests a
// power-of-two partition size (geometrically distributed) and submits a
// burst of jobs of that size over the session's lifetime; all of the
// session's jobs depart by the session end.
func Sessions(cfg SessionConfig) task.Sequence {
	if cfg.Sessions == 0 {
		cfg.Sessions = 50
	}
	if cfg.MeanJobs == 0 {
		cfg.MeanJobs = 4
	}
	if cfg.SessionRate == 0 {
		cfg.SessionRate = 0.5
	}
	if cfg.MeanLifetime == 0 {
		cfg.MeanLifetime = 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxExp := mathx.Max(mathx.Log2(cfg.N)-1, 0)

	var evs []sessionEv
	now := 0.0
	key := int64(0)
	for s := 0; s < cfg.Sessions; s++ {
		now += rng.ExpFloat64() / cfg.SessionRate
		end := now + rng.ExpFloat64()*cfg.MeanLifetime
		// Partition size for this user.
		e := 0
		for e < maxExp && rng.Intn(2) == 0 {
			e++
		}
		size := 1 << e
		jobs := 1
		for rng.Float64() > 1/float64(cfg.MeanJobs) {
			jobs++
		}
		for j := 0; j < jobs; j++ {
			start := now + rng.Float64()*(end-now)
			stop := start + rng.Float64()*(end-start)
			k := key
			key++
			evs = append(evs, sessionEv{at: start, arrive: true, size: size, key: k})
			evs = append(evs, sessionEv{at: stop, arrive: false, size: size, key: k})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		if evs[i].key != evs[j].key {
			return evs[i].key < evs[j].key
		}
		return evs[i].arrive && !evs[j].arrive
	})
	b := task.NewBuilder()
	open := make(map[int64]task.ID)
	for _, e := range evs {
		b.At(e.at)
		if e.arrive {
			open[e.key] = b.Arrive(e.size)
		} else {
			b.Depart(open[e.key])
			delete(open, e.key)
		}
	}
	return b.Sequence()
}
