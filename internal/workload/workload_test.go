package workload

import (
	"math"
	"math/rand"
	"testing"

	"partalloc/internal/task"
)

func TestPoissonValid(t *testing.T) {
	for _, sizes := range []SizeDist{UniformSizes, GeometricSizes, FixedSize, MixedSizes} {
		for _, durs := range []DurationDist{ExpDurations, ParetoDurations, UniformDurations} {
			seq := Poisson(Config{N: 64, Arrivals: 500, Sizes: sizes, Durations: durs, Seed: 3})
			if err := seq.Validate(64); err != nil {
				t.Fatalf("sizes=%v durs=%v: %v", sizes, durs, err)
			}
			if got := seq.NumArrivals(); got != 500 {
				t.Fatalf("sizes=%v durs=%v: %d arrivals", sizes, durs, got)
			}
			// Every arrival eventually departs.
			if got := len(seq.Events); got != 1000 {
				t.Fatalf("sizes=%v durs=%v: %d events, want 1000", sizes, durs, got)
			}
			if final := seq.ActiveSizeAfter(len(seq.Events) - 1); final != 0 {
				t.Fatalf("sizes=%v durs=%v: final active size %d", sizes, durs, final)
			}
		}
	}
}

func TestPoissonDeterministicPerSeed(t *testing.T) {
	a := Poisson(Config{N: 32, Arrivals: 200, Seed: 5})
	b := Poisson(Config{N: 32, Arrivals: 200, Seed: 5})
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same seed diverges at event %d", i)
		}
	}
	c := Poisson(Config{N: 32, Arrivals: 200, Seed: 6})
	same := len(a.Events) == len(c.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestPoissonMaxExpRespected(t *testing.T) {
	seq := Poisson(Config{N: 64, MaxExp: 2, Arrivals: 300, Sizes: UniformSizes, Seed: 1})
	for _, e := range seq.Events {
		if e.Kind == task.Arrive && e.Size > 4 {
			t.Fatalf("size %d exceeds 2^2", e.Size)
		}
	}
}

func TestFixedSizeDist(t *testing.T) {
	seq := Poisson(Config{N: 64, MaxExp: 3, Arrivals: 50, Sizes: FixedSize, Seed: 1})
	for _, e := range seq.Events {
		if e.Kind == task.Arrive && e.Size != 8 {
			t.Fatalf("FixedSize produced size %d", e.Size)
		}
	}
}

func TestDrawSizeDistributionShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	// Geometric: exponent 0 should be about half.
	count0 := 0
	for i := 0; i < n; i++ {
		if drawSize(rng, GeometricSizes, 5) == 1 {
			count0++
		}
	}
	frac := float64(count0) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("geometric P(size=1) = %.3f, want ≈0.5", frac)
	}
	// Uniform: each exponent about 1/6.
	counts := make(map[int]int)
	for i := 0; i < n; i++ {
		counts[drawSize(rng, UniformSizes, 5)]++
	}
	for e := 0; e <= 5; e++ {
		f := float64(counts[1<<e]) / n
		if f < 0.12 || f > 0.22 {
			t.Errorf("uniform P(size=%d) = %.3f, want ≈1/6", 1<<e, f)
		}
	}
}

func TestDrawDurationMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 200000
	for _, d := range []DurationDist{ExpDurations, UniformDurations, ParetoDurations} {
		sum := 0.0
		for i := 0; i < n; i++ {
			v := drawDuration(rng, d, 10)
			if v < 0 {
				t.Fatalf("%v produced negative duration", d)
			}
			sum += v
		}
		mean := sum / n
		// Pareto α=1.5 has infinite variance; allow a wide band.
		lo, hi := 9.0, 11.0
		if d == ParetoDurations {
			lo, hi = 7.0, 16.0
		}
		if mean < lo || mean > hi {
			t.Errorf("%v mean = %.2f, want ≈10", d, mean)
		}
	}
}

func TestSaturationHoldsTarget(t *testing.T) {
	cfg := SaturationConfig{N: 256, Target: 0.75, Events: 5000, Seed: 4, Churn: 0.1}
	seq := Saturation(cfg)
	if err := seq.Validate(256); err != nil {
		t.Fatal(err)
	}
	// After warmup, active size should hover near target.
	var cur int64
	maxSeen := int64(0)
	for i, e := range seq.Events {
		if e.Kind == task.Arrive {
			cur += int64(e.Size)
		} else {
			cur -= int64(e.Size)
		}
		if i > 1000 && cur > maxSeen {
			maxSeen = cur
		}
	}
	target := int64(0.75 * 256)
	if maxSeen < target/2 {
		t.Errorf("saturation never approached target: max %d vs target %d", maxSeen, target)
	}
	// And s(σ) must not wildly exceed the target (one oversized task may).
	if seq.Size() > target+128 {
		t.Errorf("s(σ) = %d far above target %d", seq.Size(), target)
	}
}

func TestSessionsValid(t *testing.T) {
	seq := Sessions(SessionConfig{N: 128, Sessions: 80, Seed: 11})
	if err := seq.Validate(128); err != nil {
		t.Fatal(err)
	}
	if seq.NumArrivals() < 80 {
		t.Fatalf("only %d arrivals from 80 sessions", seq.NumArrivals())
	}
	// Sequence times must be non-decreasing (Validate checks, but assert
	// explicitly for the generator contract).
	last := math.Inf(-1)
	for _, e := range seq.Events {
		if e.Time < last {
			t.Fatal("time went backwards")
		}
		last = e.Time
	}
	// Everything departs in the end.
	if final := seq.ActiveSizeAfter(len(seq.Events) - 1); final != 0 {
		t.Fatalf("final active size %d", final)
	}
}

func TestSessionsDeterministic(t *testing.T) {
	a := Sessions(SessionConfig{N: 64, Sessions: 40, Seed: 7})
	b := Sessions(SessionConfig{N: 64, Sessions: 40, Seed: 7})
	if len(a.Events) != len(b.Events) {
		t.Fatal("nondeterministic")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("diverges at %d", i)
		}
	}
}
