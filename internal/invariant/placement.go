// Placement-layer invariants: standalone checks the engine's rebalance
// pass runs after moving tenants. Unlike the per-event Checker, these
// audit a point-in-time snapshot — the routing table against the shard
// membership, and the pass's move count against the paper's budget —
// so they are plain functions, not stateful checkers.
package invariant

import (
	"fmt"
	"sort"
)

// CheckRouting verifies the routing table is a bijection onto shard
// membership: every routed tenant is resident on exactly the shard its
// route names, and every resident tenant has a route. routes and
// members both map tenant ID → shard index; the caller snapshots them
// under whatever locks make the pair consistent.
func CheckRouting(routes, members map[string]int) []Violation {
	var out []Violation
	ids := make([]string, 0, len(routes))
	for id := range routes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		shard, resident := members[id]
		switch {
		case !resident:
			out = append(out, Violation{
				Rule:   "routing-bijection",
				Detail: fmt.Sprintf("tenant %q routed to shard %d but resident on none", id, routes[id]),
			})
		case shard != routes[id]:
			out = append(out, Violation{
				Rule:   "routing-bijection",
				Detail: fmt.Sprintf("tenant %q routed to shard %d but resident on shard %d", id, routes[id], shard),
			})
		}
	}
	ids = ids[:0]
	for id := range members {
		if _, routed := routes[id]; !routed {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		out = append(out, Violation{
			Rule:   "routing-bijection",
			Detail: fmt.Sprintf("tenant %q resident on shard %d but has no route", id, members[id]),
		})
	}
	return out
}

// CheckMoveBudget verifies one rebalance pass's move count against the
// paper's reallocation budget transposed to shards: a pass over an
// engine with `shards` stripes and rebalance parameter d may move at
// most d·shards tenants.
func CheckMoveBudget(moved, d, shards int) []Violation {
	if budget := d * shards; moved > budget {
		return []Violation{{
			Rule:   "rebalance-move-budget",
			Detail: fmt.Sprintf("pass moved %d tenants, budget is d*shards = %d*%d = %d", moved, d, shards, budget),
		}}
	}
	return nil
}
