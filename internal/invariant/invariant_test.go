package invariant

import (
	"math/rand"
	"strings"
	"testing"

	"partalloc/internal/core"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// drive feeds a random-but-reproducible event sequence through a and the
// checker, mirroring the simulator's event loop.
func drive(t *testing.T, a core.Allocator, c *Checker, seed int64, events int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := a.Machine().N()
	b := task.NewBuilder()
	for i := 0; i < events; i++ {
		act := b.Active()
		if len(act) > 0 && rng.Intn(3) == 0 {
			id := act[rng.Intn(len(act))]
			b.Depart(id)
			a.Depart(id)
			c.OnDepart(a, id)
		} else {
			size := 1 << rng.Intn(a.Machine().Levels()+1)
			if size > n {
				size = n
			}
			id := b.Arrive(size)
			tk := task.Task{ID: id, Size: size}
			v := a.Arrive(tk)
			c.OnArrive(a, tk, v)
		}
	}
}

func TestCleanAllocators(t *testing.T) {
	m := tree.MustNew(16)
	cases := []struct {
		name string
		mk   func() core.Allocator
		d    int // realloc budget to arm; <1 = off
	}{
		{"A_B", func() core.Allocator { return core.NewBasic(m) }, -1},
		{"A_G", func() core.Allocator { return core.NewGreedy(m) }, -1},
		{"A_C", func() core.Allocator { return core.NewConstant(m) }, -1},
		{"A_M d=2 lazy", func() core.Allocator { return core.NewLazy(m, 2, core.DecreasingSize) }, 2},
		{"A_M d=2 periodic", func() core.Allocator { return core.NewPeriodic(m, 2, core.DecreasingSize) }, 2},
		{"A_Rand", func() core.Allocator { return core.NewRandom(m, 7) }, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.mk()
			c := New(m)
			c.SetReallocBudget(tc.d)
			drive(t, a, c, 42, 400)
			if err := c.Err(); err != nil {
				t.Fatalf("%s violates invariants:\n%v", a.Name(), err)
			}
			if c.Events() != 400 {
				t.Fatalf("Events() = %d, want 400", c.Events())
			}
		})
	}
}

// lying wraps an allocator and corrupts one observable at a time.
type lying struct {
	core.Allocator
	extraLoad   bool // inflate one PE in the snapshot
	wrongMax    bool // misreport MaxLoad
	dropActive  bool // under-count Active
	noPlacement bool // deny all placements
}

func (l *lying) PELoads() []int {
	loads := l.Allocator.PELoads()
	if l.extraLoad {
		loads[0] += 3
	}
	return loads
}

func (l *lying) MaxLoad() int {
	v := l.Allocator.MaxLoad()
	if l.wrongMax {
		return v + 1
	}
	if l.extraLoad {
		// Keep MaxLoad consistent with the corrupted snapshot so only
		// load-conservation fires.
		loads := l.PELoads()
		max := 0
		for _, x := range loads {
			if x > max {
				max = x
			}
		}
		return max
	}
	return v
}

func (l *lying) Active() int {
	v := l.Allocator.Active()
	if l.dropActive {
		return v - 1
	}
	return v
}

func (l *lying) Placement(id task.ID) (tree.Node, bool) {
	if l.noPlacement {
		return 0, false
	}
	return l.Allocator.Placement(id)
}

func arriveOne(a core.Allocator, c *Checker, id task.ID, size int) {
	tk := task.Task{ID: id, Size: size}
	v := a.Arrive(tk)
	c.OnArrive(a, tk, v)
}

func hasRule(c *Checker, rule string) bool {
	for _, v := range c.Violations() {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func TestDetectsCorruption(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*lying)
		rule string
	}{
		{"load conservation", func(l *lying) { l.extraLoad = true }, "load-conservation"},
		{"maxload snapshot", func(l *lying) { l.wrongMax = true }, "maxload-snapshot"},
		{"active count", func(l *lying) { l.dropActive = true }, "active-count"},
		{"missing placement", func(l *lying) { l.noPlacement = true }, "placement-valid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tree.MustNew(8)
			l := &lying{Allocator: core.NewBasic(m)}
			tc.mut(l)
			c := New(m)
			arriveOne(l, c, 1, 2)
			arriveOne(l, c, 2, 4)
			if !hasRule(c, tc.rule) {
				t.Fatalf("rule %q not triggered; got %v", tc.rule, c.Violations())
			}
			if err := c.Err(); err == nil || !strings.Contains(err.Error(), tc.rule) {
				t.Fatalf("Err() = %v, want mention of %q", err, tc.rule)
			}
		})
	}
}

func TestDetectsWrongPlacementSize(t *testing.T) {
	m := tree.MustNew(8)
	a := core.NewBasic(m)
	c := New(m)
	// Report the arrival at the root (size 8) for a size-2 task.
	tk := task.Task{ID: 1, Size: 2}
	a.Arrive(tk)
	c.OnArrive(a, tk, m.Root())
	if !hasRule(c, "placement-size") {
		t.Fatalf("placement-size not triggered; got %v", c.Violations())
	}
}

func TestDetectsUnknownDeparture(t *testing.T) {
	m := tree.MustNew(8)
	a := core.NewBasic(m)
	c := New(m)
	arriveOne(a, c, 1, 2)
	a.Depart(1)
	c.OnDepart(a, 99) // checker never saw 99 arrive
	if !hasRule(c, "event-ledger") {
		t.Fatalf("event-ledger not triggered; got %v", c.Violations())
	}
}

func TestReallocBudget(t *testing.T) {
	m := tree.MustNew(4)
	// A_C reallocates on every arrival; arming a d=2 budget against it
	// must trip after arrivals totalling < d·N = 8 PEs.
	a := core.NewConstant(m)
	c := New(m)
	c.SetReallocBudget(2)
	arriveOne(a, c, 1, 1)
	arriveOne(a, c, 2, 1)
	if !hasRule(c, "realloc-budget") {
		t.Fatalf("realloc-budget not triggered; got %v", c.Violations())
	}
}

func TestNilCheckerIsNoop(t *testing.T) {
	var c *Checker
	m := tree.MustNew(4)
	a := core.NewBasic(m)
	tk := task.Task{ID: 1, Size: 2}
	v := a.Arrive(tk)
	c.OnArrive(a, tk, v) // must not panic
	c.OnDepart(a, 1)
	if c.Err() != nil || c.Violations() != nil || c.Events() != 0 {
		t.Fatal("nil checker must report nothing")
	}
}

func TestPanicMode(t *testing.T) {
	m := tree.MustNew(8)
	l := &lying{Allocator: core.NewBasic(m), wrongMax: true}
	c := New(m)
	c.SetPanic(true)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic mode did not panic on violation")
		}
		if msg, ok := r.(string); !ok || !strings.HasPrefix(msg, "invariant: ") {
			t.Fatalf("panic value %v does not follow the panic-message convention", r)
		}
	}()
	arriveOne(l, c, 1, 2)
}

func TestQueueBound(t *testing.T) {
	m := tree.MustNew(4)
	c := New(m)
	c.OnQueue(8, 16)  // within bound
	c.OnQueue(16, 16) // exactly at the bound is allowed
	c.OnQueue(500, 0) // unbounded: rule disabled
	if hasRule(c, "queue-bound") {
		t.Fatalf("spurious queue-bound violation: %v", c.Violations())
	}
	c.OnQueue(17, 16)
	if !hasRule(c, "queue-bound") {
		t.Fatal("queue overshoot not reported")
	}
	c.violations = nil
	c.OnQueue(-1, 16)
	if !hasRule(c, "queue-bound") {
		t.Fatal("negative queue length not reported")
	}
	var nilC *Checker
	nilC.OnQueue(100, 1) // must not panic
}

func TestDegradeLedger(t *testing.T) {
	m := tree.MustNew(4)
	c := New(m)
	// A well-formed escalation chain: eager d=1 → lazy d=1 → lazy d=2,
	// then a restoration back down.
	c.OnDegrade(1, 1, false, true, "ewma over budget")
	c.OnDegrade(1, 2, true, true, "ewma over budget")
	c.OnDegrade(2, 1, true, true, "healthy again")
	if len(c.Violations()) != 0 {
		t.Fatalf("clean chain reported %v", c.Violations())
	}

	// A transition without a cause.
	c2 := New(m)
	c2.OnDegrade(1, 2, false, true, "  ")
	if !hasRule(c2, "degrade-ledger") {
		t.Fatal("missing cause not reported")
	}

	// A no-op transition.
	c3 := New(m)
	c3.OnDegrade(2, 2, true, true, "nothing changed")
	if !hasRule(c3, "degrade-ledger") {
		t.Fatal("no-op transition not reported")
	}

	// A broken chain: second transition leaves from a state the first
	// never arrived at.
	c4 := New(m)
	c4.OnDegrade(1, 2, false, true, "ewma over budget")
	c4.OnDegrade(4, 8, true, true, "ewma over budget")
	if !hasRule(c4, "degrade-ledger") {
		t.Fatal("broken chain not reported")
	}

	var nilC *Checker
	nilC.OnDegrade(1, 2, false, true, "x") // must not panic
}
