//go:build !invariantdebug

package invariant

// Debug reports whether the build carries the `invariantdebug` tag.
// It is a constant, so `if invariant.Debug { ... }` blocks compile away
// entirely in ordinary builds — hot paths pay nothing.
const Debug = false
