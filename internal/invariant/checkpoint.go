// Checker checkpointing. The checker's audit power comes from an
// *independent* event ledger — its own task-size map, fault set, and
// budget counters, deliberately not derivable from the allocator under
// audit. That independence means a snapshot-restored tenant cannot
// simply start a fresh checker (it would flag every pre-snapshot task as
// unknown); the ledger must be checkpointed alongside the allocator and
// restored with it. JSON keeps the format debuggable; the engine wraps
// it in the WAL's CRC-framed snapshot record, so integrity is covered a
// layer down.
package invariant

import (
	"encoding/json"
	"fmt"
	"sort"

	"partalloc/internal/core"
	"partalloc/internal/task"
)

// checkerState is the serialized ledger. Machine, host, budget d, and
// panic mode are construction-time configuration, re-derived from the
// tenant spec on restore, and deliberately absent here.
type checkerState struct {
	Events           int               `json:"events"`
	ActiveSize       int64             `json:"active_size"`
	ArrivedSize      int64             `json:"arrived_size"`
	ArrivedAtRealloc int64             `json:"arrived_at_realloc"`
	LastRealloc      core.ReallocStats `json:"last_realloc"`
	Tasks            [][2]int64        `json:"tasks,omitempty"` // (id, size) pairs, ascending id
	Failed           []int             `json:"failed,omitempty"`
	VolMovedPEs      int64             `json:"vol_moved_pes,omitempty"`
	VolHops          int64             `json:"vol_hops,omitempty"`
	ForcedMovedPEs   int64             `json:"forced_moved_pes,omitempty"`
	ForcedHops       int64             `json:"forced_hops,omitempty"`
	DegSeen          bool              `json:"deg_seen,omitempty"`
	LastToD          int               `json:"last_to_d,omitempty"`
	LastToLazy       bool              `json:"last_to_lazy,omitempty"`
	Violations       []Violation       `json:"violations,omitempty"`
}

// Checkpoint serializes the checker's ledger deterministically (tasks
// and failed PEs in ascending order), so equal ledgers produce equal
// bytes and tenant snapshots stay canonical.
func (c *Checker) Checkpoint() []byte {
	if c == nil {
		return nil
	}
	st := checkerState{
		Events:           c.events,
		ActiveSize:       c.activeSize,
		ArrivedSize:      c.arrivedSize,
		ArrivedAtRealloc: c.arrivedAtRealloc,
		LastRealloc:      c.lastRealloc,
		VolMovedPEs:      c.volMovedPEs,
		VolHops:          c.volHops,
		ForcedMovedPEs:   c.forcedMovedPEs,
		ForcedHops:       c.forcedHops,
		DegSeen:          c.degSeen,
		LastToD:          c.lastToD,
		LastToLazy:       c.lastToLazy,
		Violations:       c.violations,
	}
	for id, size := range c.sizes {
		st.Tasks = append(st.Tasks, [2]int64{int64(id), int64(size)})
	}
	sort.Slice(st.Tasks, func(i, j int) bool { return st.Tasks[i][0] < st.Tasks[j][0] })
	for pe := range c.failed {
		st.Failed = append(st.Failed, pe)
	}
	sort.Ints(st.Failed)
	data, err := json.Marshal(st)
	if err != nil {
		// Every field is a plain value; marshal cannot fail.
		panic(fmt.Sprintf("invariant: checkpoint marshal: %v", err))
	}
	return data
}

// RestoreCheckpoint replaces the checker's ledger with a checkpointed
// one. Configuration (machine, host, budget, panic mode) is untouched —
// the caller constructs the checker from the tenant spec first, exactly
// as at AddTenant time, then restores the ledger into it.
func (c *Checker) RestoreCheckpoint(data []byte) error {
	if c == nil {
		return nil
	}
	var st checkerState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("invariant: restore checkpoint: %w", err)
	}
	sizes := make(map[task.ID]int, len(st.Tasks))
	for _, pair := range st.Tasks {
		sizes[task.ID(pair[0])] = int(pair[1])
	}
	failed := make(map[int]bool, len(st.Failed))
	for _, pe := range st.Failed {
		failed[pe] = true
	}
	c.events = st.Events
	c.activeSize = st.ActiveSize
	c.arrivedSize = st.ArrivedSize
	c.arrivedAtRealloc = st.ArrivedAtRealloc
	c.lastRealloc = st.LastRealloc
	c.sizes = sizes
	c.failed = failed
	c.volMovedPEs = st.VolMovedPEs
	c.volHops = st.VolHops
	c.forcedMovedPEs = st.ForcedMovedPEs
	c.forcedHops = st.ForcedHops
	c.degSeen = st.DegSeen
	c.lastToD = st.LastToD
	c.lastToLazy = st.LastToLazy
	c.violations = st.Violations
	return nil
}
