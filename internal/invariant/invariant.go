// Package invariant is the dynamic counterpart of the partlint static
// suite (docs/LINTS.md): a pluggable checker that audits allocator state
// at event boundaries against the paper's correctness conditions.
//
// The static analyzers prove what the compiler can see; everything else —
// that the allocator's incremental load bookkeeping matches reality —
// must be checked at run time. The Checker validates, after every arrival
// and departure:
//
//   - load conservation: the sum of all PE loads equals the cumulative
//     size of active tasks (each task contributes exactly one thread to
//     each of its Size PEs — the load model of §2);
//   - MaxLoad consistency: the allocator's O(1)/O(log N) MaxLoad answer
//     agrees with a from-scratch maximum over the full PELoads snapshot
//     (generalizing the simulator's old paranoid check);
//   - the pigeonhole lower bound: MaxLoad ≥ ⌈S(σ;τ)/N⌉ — no allocator
//     can beat the optimal load L* of the current active set;
//   - placement validity: every active task sits on a valid node whose
//     submachine size equals the task's size, and the allocator's Active
//     count matches the checker's independent event ledger;
//   - reallocation budget: for a d-reallocation algorithm (§4.1), at
//     least d·N PEs' worth of arrivals separate consecutive
//     reallocations, and at most one reallocation happens per event;
//   - fault safety (OnFail/OnRecover, internal/fault): no active task
//     covers a failed PE, failed PEs carry zero load, load conservation
//     holds across forced migrations, and the pigeonhole bound
//     strengthens to ⌈S/healthy⌉ over the surviving PEs.
//
// Checks cost O(N + active) per event, so they are opt-in: the simulator
// and scheduler call through a nil-guarded pointer (nil in production
// runs), and the scheduler additionally auto-attaches a checker in
// builds with the `invariantdebug` tag, where the constant Debug lets the
// compiler delete the branch entirely otherwise.
package invariant

import (
	"fmt"
	"strings"

	"partalloc/internal/core"
	"partalloc/internal/mathx"
	"partalloc/internal/task"
	"partalloc/internal/topology"
	"partalloc/internal/tree"
)

// Violation is one failed invariant at one event.
type Violation struct {
	// Event is the 0-indexed event ordinal (checker's own count).
	Event int
	// Rule names the violated invariant, e.g. "load-conservation".
	Rule string
	// Detail is a human-readable explanation with the numbers involved.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("event %d: %s: %s", v.Event, v.Rule, v.Detail)
}

// Checker audits one allocator through one event sequence. The zero value
// is not usable; construct with New. A nil *Checker is a valid no-op
// receiver for OnArrive/OnDepart, so call sites need no branching.
type Checker struct {
	m     *tree.Machine
	n     int64
	d     int  // realloc budget parameter; <1 disables the budget rule
	panic bool // panic on first violation instead of recording

	events           int
	activeSize       int64
	arrivedSize      int64
	arrivedAtRealloc int64
	lastRealloc      core.ReallocStats
	sizes            map[task.ID]int
	failed           map[int]bool // PEs the checker believes are down

	// Host-aware migration audit (SetHost/OnMigration). The load and
	// budget rules above need no per-topology variants — allocation runs
	// on the decomposition tree, identical across hosts — but the hop
	// ledger does: it ties the observed migration traffic to the
	// allocator's own MovedPEs counters and to the network diameter.
	host           *topology.Host
	volMovedPEs    int64
	volHops        int64
	forcedMovedPEs int64
	forcedHops     int64

	// Degradation-ledger chain (OnDegrade): each transition must leave
	// from the state the previous one arrived at.
	degSeen    bool
	lastToD    int
	lastToLazy bool

	violations []Violation
}

// New returns a checker for machine m that records violations.
func New(m *tree.Machine) *Checker {
	return &Checker{m: m, n: int64(m.N()), d: -1, sizes: make(map[task.ID]int), failed: make(map[int]bool)}
}

// SetReallocBudget arms the reallocation-budget rule for a d-reallocation
// algorithm: consecutive reallocations must be at least d·N arrived size
// apart. d < 1 (the default) disables the rule — d=0 algorithms (A_C) may
// reallocate on every arrival, and non-reallocating algorithms never
// trip it either way.
func (c *Checker) SetReallocBudget(d int) { c.d = d }

// SetPanic makes the checker panic on the first violation instead of
// recording it; this is what the simulator's Paranoid option uses.
func (c *Checker) SetPanic(p bool) { c.panic = p }

// SetHost arms the host-aware migration rules: every migration reported
// through OnMigration is priced in physical hops on h's network, and the
// per-event audit cross-checks the observed traffic against the
// allocator's MovedPEs ledgers and the network diameter. The host's
// decomposition must describe the checker's machine.
func (c *Checker) SetHost(h *topology.Host) {
	if c == nil || h == nil {
		return
	}
	if h.N() != c.m.N() {
		c.report("host-decomposition",
			fmt.Sprintf("host %s has %d PEs but the machine has %d", h.Name(), h.N(), c.m.N()))
		return
	}
	c.host = h
}

// OnMigration records one task move between the equal-size submachines
// rooted at from and to (forced marks failure-driven moves, which charge
// the fault ledger rather than the voluntary d·N budget). The simulator
// feeds it from the allocator's migration observer and from the forced
// migrations FailPE returns; it does not advance the event count — the
// enclosing OnArrive/OnFail does.
func (c *Checker) OnMigration(from, to tree.Node, forced bool) {
	if c == nil || c.host == nil {
		return
	}
	if !c.m.Valid(from) || !c.m.Valid(to) {
		c.report("migration-valid", fmt.Sprintf("migration between invalid nodes %d -> %d", from, to))
		return
	}
	if fs, ts := c.m.Size(from), c.m.Size(to); fs != ts {
		c.report("migration-valid",
			fmt.Sprintf("migration between different sizes %d (node %d) and %d (node %d)", fs, from, ts, to))
		return
	}
	size := int64(c.m.Size(from))
	hops := c.host.MigrationCost(from, to)
	if forced {
		c.forcedMovedPEs += size
		c.forcedHops += hops
	} else {
		c.volMovedPEs += size
		c.volHops += hops
	}
}

// OnArrive audits the allocator just after it placed task t at node v.
func (c *Checker) OnArrive(a core.Allocator, t task.Task, v tree.Node) {
	if c == nil {
		return
	}
	if !c.m.Valid(v) {
		c.report("placement-valid", fmt.Sprintf("task %d placed at invalid node %d", t.ID, v))
	} else if got := c.m.Size(v); got != t.Size {
		c.report("placement-size", fmt.Sprintf("task %d (size %d) placed on a size-%d submachine (node %d)", t.ID, t.Size, got, v))
	}
	c.sizes[t.ID] = t.Size
	c.activeSize += int64(t.Size)
	c.arrivedSize += int64(t.Size)
	c.check(a)
	c.events++
}

// OnDepart audits the allocator just after it released task id.
func (c *Checker) OnDepart(a core.Allocator, id task.ID) {
	if c == nil {
		return
	}
	size, ok := c.sizes[id]
	if !ok {
		c.report("event-ledger", fmt.Sprintf("departure of task %d the checker never saw arrive", id))
	} else {
		c.activeSize -= int64(size)
		delete(c.sizes, id)
	}
	c.check(a)
	c.events++
}

// OnFail audits the allocator just after it processed the failure of pe
// (forced migrations included). Load conservation must hold across the
// migration — failing a PE moves threads, it never creates or destroys
// them — and afterwards no active task may cover the failed PE.
func (c *Checker) OnFail(a core.Allocator, pe int) {
	if c == nil {
		return
	}
	if c.failed[pe] {
		c.report("fault-ledger", fmt.Sprintf("PE %d failed while already failed", pe))
	}
	c.failed[pe] = true
	c.check(a)
	c.events++
}

// OnRecover audits the allocator just after pe returned to service.
func (c *Checker) OnRecover(a core.Allocator, pe int) {
	if c == nil {
		return
	}
	if !c.failed[pe] {
		c.report("fault-ledger", fmt.Sprintf("PE %d recovered while not failed", pe))
	}
	delete(c.failed, pe)
	c.check(a)
	c.events++
}

// check runs the per-event invariants.
func (c *Checker) check(a core.Allocator) {
	loads := a.PELoads()

	// Load conservation: Σ_p load(p) = Σ_{active t} size(t).
	var sum int64
	max := 0
	for _, l := range loads {
		sum += int64(l)
		if l > max {
			max = l
		}
	}
	if sum != c.activeSize {
		c.report("load-conservation",
			fmt.Sprintf("PE loads sum to %d but active tasks total %d PEs", sum, c.activeSize))
	}

	// MaxLoad consistency against the full snapshot.
	if got := a.MaxLoad(); got != max {
		c.report("maxload-snapshot",
			fmt.Sprintf("MaxLoad()=%d but the PE snapshot maximum is %d", got, max))
	}

	// Pigeonhole: some PE carries at least ⌈S/healthy⌉ threads. With PEs
	// down the bound strengthens — active threads squeeze into the healthy
	// PEs only.
	if healthy := c.n - int64(len(c.failed)); c.activeSize > 0 && healthy > 0 {
		if lb := int(mathx.CeilDiv64(c.activeSize, healthy)); max < lb {
			c.report("optimal-lower-bound",
				fmt.Sprintf("snapshot max load %d is below the pigeonhole bound ⌈%d/%d⌉=%d — loads are underreported", max, c.activeSize, healthy, lb))
		}
	}

	// Failed PEs carry no threads: every task that covered them was
	// forcibly migrated away, and nothing may be placed there since.
	for pe := range c.failed {
		if pe >= 0 && pe < len(loads) && loads[pe] != 0 {
			c.report("failed-pe-load",
				fmt.Sprintf("failed PE %d carries load %d, want 0", pe, loads[pe]))
		}
	}

	// Placement validity for every task in the independent ledger.
	if got := a.Active(); got != len(c.sizes) {
		c.report("active-count",
			fmt.Sprintf("allocator reports %d active tasks, event ledger has %d", got, len(c.sizes)))
	}
	for id, size := range c.sizes {
		v, ok := a.Placement(id)
		if !ok {
			c.report("placement-valid", fmt.Sprintf("active task %d has no placement", id))
			continue
		}
		if !c.m.Valid(v) {
			c.report("placement-valid", fmt.Sprintf("active task %d placed at invalid node %d", id, v))
			continue
		}
		if got := c.m.Size(v); got != size {
			c.report("placement-size",
				fmt.Sprintf("active task %d (size %d) sits on a size-%d submachine (node %d)", id, size, got, v))
		}
		for pe := range c.failed {
			if c.m.Contains(v, c.m.LeafOf(pe)) {
				c.report("failed-pe-coverage",
					fmt.Sprintf("active task %d (node %d) covers failed PE %d", id, v, pe))
			}
		}
	}

	// Reallocation budget accounting.
	if r, ok := a.(core.Reallocator); ok {
		stats := r.ReallocStats()
		if delta := stats.Reallocations - c.lastRealloc.Reallocations; delta > 0 {
			if delta > 1 {
				c.report("realloc-budget",
					fmt.Sprintf("%d reallocations within a single event", delta))
			}
			if c.d >= 1 {
				if spent := c.arrivedSize - c.arrivedAtRealloc; spent < int64(c.d)*c.n {
					c.report("realloc-budget",
						fmt.Sprintf("reallocation after only %d arrived PEs; budget requires d·N = %d·%d = %d",
							spent, c.d, c.n, int64(c.d)*c.n))
				}
			}
			c.arrivedAtRealloc = c.arrivedSize
		}
		if stats.Migrations < c.lastRealloc.Migrations || stats.MovedPEs < c.lastRealloc.MovedPEs {
			c.report("realloc-budget", "reallocation statistics decreased")
		}
		c.lastRealloc = stats
	}

	// Host-aware migration ledger: the traffic observed through
	// OnMigration must match the allocator's own counters, and the hop
	// total must be achievable on the network — at least one hop per
	// moved PE (distinct aligned ranges are at distance ≥ 1) and at most
	// the diameter per moved PE.
	if c.host != nil {
		if r, ok := a.(core.Reallocator); ok {
			if got := r.ReallocStats().MovedPEs; got != c.volMovedPEs {
				c.report("migration-ledger",
					fmt.Sprintf("allocator reports %d voluntarily moved PEs, observer saw %d", got, c.volMovedPEs))
			}
		}
		if ft, ok := a.(core.FaultTolerant); ok {
			if got := ft.ForcedStats().MovedPEs; got != c.forcedMovedPEs {
				c.report("migration-ledger",
					fmt.Sprintf("allocator reports %d forcibly moved PEs, observer saw %d", got, c.forcedMovedPEs))
			}
		}
		diam := int64(c.host.Diameter())
		for _, b := range []struct {
			kind  string
			moved int64
			hops  int64
		}{{"voluntary", c.volMovedPEs, c.volHops}, {"forced", c.forcedMovedPEs, c.forcedHops}} {
			if b.hops < b.moved || b.hops > b.moved*diam {
				c.report("migration-hops",
					fmt.Sprintf("%s migration traffic of %d hops for %d moved PEs is outside [%d, %d·%d] on %s",
						b.kind, b.hops, b.moved, b.moved, b.moved, diam, c.host.Name()))
			}
		}
	}
}

// OnQueue audits the engine's per-tenant ingestion bound after a queue
// mutation: under Config.MaxQueue no queue may ever exceed it — neither
// Block's chunked admission nor Shed's rejection is allowed to overshoot.
// maxQueue ≤ 0 (unbounded) disables the rule. Queue audits do not advance
// the event count; they sit between allocator events.
func (c *Checker) OnQueue(queued, maxQueue int) {
	if c == nil || maxQueue <= 0 {
		return
	}
	if queued > maxQueue {
		c.report("queue-bound",
			fmt.Sprintf("ingestion queue holds %d events, bound is %d", queued, maxQueue))
	}
	if queued < 0 {
		c.report("queue-bound", fmt.Sprintf("ingestion queue length %d is negative", queued))
	}
}

// OnDegrade audits one effective-d transition of the engine's Degrade
// overload policy: every transition must carry a recorded cause, actually
// change the knob, and chain from the state the previous transition
// arrived at — so TenantStats.Degrades is a complete, gap-free history.
func (c *Checker) OnDegrade(fromD, toD int, fromLazy, toLazy bool, cause string) {
	if c == nil {
		return
	}
	if strings.TrimSpace(cause) == "" {
		c.report("degrade-ledger",
			fmt.Sprintf("transition d=%d→%d lazy=%v→%v has no recorded cause", fromD, toD, fromLazy, toLazy))
	}
	if fromD == toD && fromLazy == toLazy {
		c.report("degrade-ledger",
			fmt.Sprintf("no-op transition recorded at d=%d lazy=%v", fromD, fromLazy))
	}
	if c.degSeen && (fromD != c.lastToD || fromLazy != c.lastToLazy) {
		c.report("degrade-ledger",
			fmt.Sprintf("transition leaves d=%d lazy=%v but the previous one arrived at d=%d lazy=%v",
				fromD, fromLazy, c.lastToD, c.lastToLazy))
	}
	c.degSeen, c.lastToD, c.lastToLazy = true, toD, toLazy
}

func (c *Checker) report(rule, detail string) {
	v := Violation{Event: c.events, Rule: rule, Detail: detail}
	if c.panic {
		panic(fmt.Sprintf("invariant: %s", v))
	}
	c.violations = append(c.violations, v)
}

// Events returns how many events the checker has audited.
func (c *Checker) Events() int {
	if c == nil {
		return 0
	}
	return c.events
}

// Violations returns every recorded violation in event order.
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	return c.violations
}

// Err returns nil if no invariant was violated, or an error summarizing
// every violation.
func (c *Checker) Err() error {
	if c == nil || len(c.violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invariant: %d violation(s) in %d events:", len(c.violations), c.events)
	for _, v := range c.violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return fmt.Errorf("%s", b.String())
}
