//go:build invariantdebug

package invariant

// Debug reports whether the build carries the `invariantdebug` tag.
// With the tag set, callers that gate on Debug attach a Checker to every
// run; use `go test -tags invariantdebug ./...` to audit the whole suite.
const Debug = true
