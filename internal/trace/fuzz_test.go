package trace

import (
	"strings"
	"testing"

	"partalloc/internal/task"
)

// FuzzReadCSV: arbitrary input must never panic, and anything accepted
// must round-trip through WriteCSV and validate.
func FuzzReadCSV(f *testing.F) {
	f.Add("kind,task,size,time\narrive,1,2,0.5\ndepart,1,2,1.5\n")
	f.Add("arrive,1,1,0\n")
	f.Add("")
	f.Add("kind,task,size,time\n")
	f.Add("depart,1,1,0\n")
	f.Add("arrive,1,3,0\n")
	f.Add("arrive,-1,1,0\n")
	f.Add("arrive,1,1,nan\narrive,2,1,0\n")
	f.Add(strings.Repeat("arrive,1,1,0\n", 3))
	f.Fuzz(func(t *testing.T, in string) {
		seq, err := ReadCSV(strings.NewReader(in), 0)
		if err != nil {
			return
		}
		// Accepted sequences must be valid and re-serializable.
		if verr := seq.Validate(0); verr != nil {
			t.Fatalf("ReadCSV accepted invalid sequence: %v", verr)
		}
		var b strings.Builder
		if werr := WriteCSV(&b, seq); werr != nil {
			t.Fatalf("WriteCSV failed on accepted sequence: %v", werr)
		}
		back, rerr := ReadCSV(strings.NewReader(b.String()), 0)
		if rerr != nil {
			t.Fatalf("round trip failed: %v", rerr)
		}
		if len(back.Events) != len(seq.Events) {
			t.Fatalf("round trip changed length: %d vs %d", len(back.Events), len(seq.Events))
		}
	})
}

// FuzzReadJSON: arbitrary input must never panic; accepted sequences must
// validate.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"format":1,"events":[{"kind":"arrive","task":1,"size":2},{"kind":"depart","task":1,"size":2}]}`)
	f.Add(`{"format":1,"events":[]}`)
	f.Add(`{}`)
	f.Add(`{"format":2,"events":[]}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"format":1,"label":"x","n":8,"events":[{"kind":"arrive","task":1,"size":8}]}`)
	f.Fuzz(func(t *testing.T, in string) {
		seq, _, n, err := ReadJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := seq.Validate(n); verr != nil {
			t.Fatalf("ReadJSON accepted invalid sequence: %v", verr)
		}
	})
}

// FuzzValidate: Validate must never panic on arbitrary event streams built
// from fuzzer-chosen fields.
func FuzzValidate(f *testing.F) {
	f.Add(int64(1), 2, uint8(0), 4)
	f.Add(int64(-5), 0, uint8(1), 0)
	f.Add(int64(1), 1<<30, uint8(7), 2)
	f.Fuzz(func(t *testing.T, id int64, size int, kind uint8, n int) {
		seq := task.Sequence{Events: []task.Event{
			{Kind: task.Kind(kind % 3), Task: task.ID(id), Size: size},
			{Kind: task.Kind((kind + 1) % 3), Task: task.ID(id), Size: size},
		}}
		_ = seq.Validate(n % (1 << 20))
	})
}
