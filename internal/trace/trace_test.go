package trace

import (
	"strings"
	"testing"

	"partalloc/internal/task"
	"partalloc/internal/workload"
)

func TestJSONRoundTrip(t *testing.T) {
	seq := workload.Poisson(workload.Config{N: 32, Arrivals: 100, Seed: 1})
	var b strings.Builder
	if err := WriteJSON(&b, seq, "poisson-test", 32); err != nil {
		t.Fatal(err)
	}
	got, label, n, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if label != "poisson-test" || n != 32 {
		t.Fatalf("metadata: %q %d", label, n)
	}
	if len(got.Events) != len(seq.Events) {
		t.Fatalf("length %d vs %d", len(got.Events), len(seq.Events))
	}
	for i := range got.Events {
		if got.Events[i] != seq.Events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got.Events[i], seq.Events[i])
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	seq := task.Figure1Sequence()
	var b strings.Builder
	if err := WriteCSV(&b, seq); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(seq.Events) {
		t.Fatalf("length %d vs %d", len(got.Events), len(seq.Events))
	}
	for i := range got.Events {
		if got.Events[i] != seq.Events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got.Events[i], seq.Events[i])
		}
	}
}

func TestReadJSONRejectsBadFormat(t *testing.T) {
	if _, _, _, err := ReadJSON(strings.NewReader(`{"format":99,"events":[]}`)); err == nil {
		t.Fatal("accepted bad format version")
	}
	if _, _, _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("accepted garbage")
	}
	bad := `{"format":1,"events":[{"kind":"explode","task":1,"size":1}]}`
	if _, _, _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("accepted unknown kind")
	}
}

func TestReadJSONValidates(t *testing.T) {
	// Departure of never-arrived task must be rejected at load time.
	bad := `{"format":1,"events":[{"kind":"depart","task":5,"size":1}]}`
	if _, _, _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("accepted invalid sequence")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"kind,task,size,time\nbogus,1,1,0\n",
		"kind,task,size,time\narrive,x,1,0\n",
		"kind,task,size,time\narrive,1,x,0\n",
		"kind,task,size,time\narrive,1,1,x\n",
		"kind,task,size,time\narrive,1,1\n",
		"kind,task,size,time\ndepart,9,1,0\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), 8); err == nil {
			t.Errorf("case %d accepted invalid CSV", i)
		}
	}
}

func TestReadCSVSkipsBlankLinesAndHeader(t *testing.T) {
	in := "kind,task,size,time\n\narrive,1,2,0.5\n\ndepart,1,2,1.5\n"
	seq, err := ReadCSV(strings.NewReader(in), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Events) != 2 || seq.Events[0].Size != 2 || seq.Events[1].Kind != task.Depart {
		t.Fatalf("parsed %+v", seq.Events)
	}
}
