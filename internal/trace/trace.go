// Package trace serializes task sequences and run results so experiments
// are replayable: a sequence generated once (including adversarial
// constructions, which are expensive to regenerate against a specific
// algorithm) can be saved as JSON or CSV, reloaded, and replayed against
// any allocator.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"partalloc/internal/task"
)

// fileFormat is bumped when the on-disk schema changes.
const fileFormat = 1

// sequenceFile is the JSON schema for a serialized sequence.
type sequenceFile struct {
	Format int         `json:"format"`
	Label  string      `json:"label,omitempty"`
	N      int         `json:"n,omitempty"`
	Events []eventJSON `json:"events"`
}

type eventJSON struct {
	Kind string  `json:"kind"`
	Task int64   `json:"task"`
	Size int     `json:"size,omitempty"`
	Time float64 `json:"time,omitempty"`
}

// WriteJSON serializes a sequence. Label and n are free-form metadata (n
// is the machine size the sequence was generated for; 0 if unknown).
func WriteJSON(w io.Writer, seq task.Sequence, label string, n int) error {
	f := sequenceFile{Format: fileFormat, Label: label, N: n}
	f.Events = make([]eventJSON, len(seq.Events))
	for i, e := range seq.Events {
		f.Events[i] = eventJSON{
			Kind: e.Kind.String(),
			Task: int64(e.Task),
			Size: e.Size,
			Time: e.Time,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// ReadJSON deserializes a sequence written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (task.Sequence, string, int, error) {
	var f sequenceFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return task.Sequence{}, "", 0, fmt.Errorf("trace: decoding: %w", err)
	}
	if f.Format != fileFormat {
		return task.Sequence{}, "", 0, fmt.Errorf("trace: unsupported format %d", f.Format)
	}
	seq := task.Sequence{Events: make([]task.Event, len(f.Events))}
	for i, e := range f.Events {
		var kind task.Kind
		switch e.Kind {
		case "arrive":
			kind = task.Arrive
		case "depart":
			kind = task.Depart
		default:
			return task.Sequence{}, "", 0, fmt.Errorf("trace: event %d has unknown kind %q", i, e.Kind)
		}
		seq.Events[i] = task.Event{Kind: kind, Task: task.ID(e.Task), Size: e.Size, Time: e.Time}
	}
	if err := seq.Validate(f.N); err != nil {
		return task.Sequence{}, "", 0, fmt.Errorf("trace: invalid sequence: %w", err)
	}
	return seq, f.Label, f.N, nil
}

// WriteCSV serializes a sequence as "kind,task,size,time" records with a
// header row.
func WriteCSV(w io.Writer, seq task.Sequence) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("kind,task,size,time\n"); err != nil {
		return err
	}
	for _, e := range seq.Events {
		if _, err := fmt.Fprintf(bw, "%s,%d,%d,%g\n", e.Kind, e.Task, e.Size, e.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV deserializes a sequence written by WriteCSV and validates it
// against machine size n (pass 0 to skip the size cap check).
func ReadCSV(r io.Reader, n int) (task.Sequence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var seq task.Sequence
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 && strings.HasPrefix(text, "kind,") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return task.Sequence{}, fmt.Errorf("trace: line %d: %d fields, want 4", line, len(parts))
		}
		var kind task.Kind
		switch parts[0] {
		case "arrive":
			kind = task.Arrive
		case "depart":
			kind = task.Depart
		default:
			return task.Sequence{}, fmt.Errorf("trace: line %d: unknown kind %q", line, parts[0])
		}
		id, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return task.Sequence{}, fmt.Errorf("trace: line %d: task id: %w", line, err)
		}
		size, err := strconv.Atoi(parts[2])
		if err != nil {
			return task.Sequence{}, fmt.Errorf("trace: line %d: size: %w", line, err)
		}
		tm, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return task.Sequence{}, fmt.Errorf("trace: line %d: time: %w", line, err)
		}
		seq.Events = append(seq.Events, task.Event{Kind: kind, Task: task.ID(id), Size: size, Time: tm})
	}
	if err := sc.Err(); err != nil {
		return task.Sequence{}, err
	}
	if err := seq.Validate(n); err != nil {
		return task.Sequence{}, fmt.Errorf("trace: invalid sequence: %w", err)
	}
	return seq, nil
}
