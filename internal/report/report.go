// Package report renders the experiment artifacts: aligned ASCII tables,
// Markdown tables, CSV, and ASCII line plots for the paper-style figures
// (load ratio vs. reallocation parameter d, cost-of-reallocation curves).
// Everything writes to an io.Writer so CLI tools, tests and benchmarks
// share the same renderers.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a rectangular report with a caption.
type Table struct {
	Caption string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; cells beyond the header width are rejected.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, header has %d", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v except float64, rendered with %.3g.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = formatFloat(x)
		case string:
			cells[i] = x
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// FormatFloat renders a float the way AddRowf does: integers as "%.1f",
// other values with three decimals.
func FormatFloat(x float64) string { return formatFloat(x) }

func formatFloat(x float64) string {
	if math.IsNaN(x) {
		return "NaN"
	}
	if x == math.Trunc(x) && math.Abs(x) < 1e6 {
		return fmt.Sprintf("%.1f", x)
	}
	return fmt.Sprintf("%.3f", x)
}

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if l := len([]rune(c)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := len(t.Headers)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMarkdown renders the table as GitHub-flavored Markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Caption)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (simple quoting: cells containing
// commas or quotes are double-quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRec := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRec(t.Headers)
	for _, row := range t.Rows {
		writeRec(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// heatRamp maps intensities 0..9+ to characters of increasing visual
// weight.
var heatRamp = []rune(" .:-=+*#%@")

// HeatStrip renders integer intensities (e.g. per-PE loads) as one line of
// heat characters, downsampling to at most width cells by taking the max
// within each cell (the max is what the paper's load metric cares about).
// Pass width ≤ 0 for one character per value.
func HeatStrip(values []int, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width <= 0 || width > len(values) {
		width = len(values)
	}
	out := make([]rune, width)
	for c := 0; c < width; c++ {
		lo := c * len(values) / width
		hi := (c + 1) * len(values) / width
		if hi == lo {
			hi = lo + 1
		}
		max := 0
		for i := lo; i < hi; i++ {
			if values[i] > max {
				max = values[i]
			}
		}
		if max >= len(heatRamp) {
			max = len(heatRamp) - 1
		}
		out[c] = heatRamp[max]
	}
	return string(out)
}

// SeriesPoint is one (x, y) of a plot series.
type SeriesPoint struct{ X, Y float64 }

// PlotSeries is a named line of a Plot.
type PlotSeries struct {
	Name   string
	Marker rune
	Points []SeriesPoint
}

// Plot is an ASCII line chart: the terminal rendition of the paper-style
// figures.
type Plot struct {
	Caption string
	XLabel  string
	YLabel  string
	Width   int // plot area columns; 0 → 60
	Height  int // plot area rows; 0 → 20
	Series  []PlotSeries
}

// Add appends a series with the given marker.
func (p *Plot) Add(name string, marker rune, pts []SeriesPoint) {
	p.Series = append(p.Series, PlotSeries{Name: name, Marker: marker, Points: pts})
}

// WriteASCII renders the plot on a character grid with axis labels and a
// legend.
func (p *Plot) WriteASCII(w io.Writer) error {
	width, height := p.Width, p.Height
	if width == 0 {
		width = 60
	}
	if height == 0 {
		height = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for _, pt := range s.Points {
			minX, maxX = math.Min(minX, pt.X), math.Max(maxX, pt.X)
			minY, maxY = math.Min(minY, pt.Y), math.Max(maxY, pt.Y)
		}
	}
	var b strings.Builder
	if p.Caption != "" {
		fmt.Fprintf(&b, "%s\n", p.Caption)
	}
	if math.IsInf(minX, 1) {
		fmt.Fprintln(&b, "(no data)")
		_, err := io.WriteString(w, b.String())
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for _, s := range p.Series {
		for _, pt := range s.Points {
			c := int(math.Round((pt.X - minX) / (maxX - minX) * float64(width-1)))
			r := height - 1 - int(math.Round((pt.Y-minY)/(maxY-minY)*float64(height-1)))
			if grid[r][c] == ' ' || grid[r][c] == s.Marker {
				grid[r][c] = s.Marker
			} else {
				grid[r][c] = '#' // overlap
			}
		}
	}
	yTop := fmt.Sprintf("%.3g", maxY)
	yBot := fmt.Sprintf("%.3g", minY)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", margin)
		if r == 0 {
			label = fmt.Sprintf("%*s", margin, yTop)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", margin, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.3g%*.3g\n", strings.Repeat(" ", margin), width/2, minX, width-width/2, maxX)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "x: %s    y: %s\n", p.XLabel, p.YLabel)
	}
	for _, s := range p.Series {
		fmt.Fprintf(&b, "  %c %s\n", s.Marker, s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
