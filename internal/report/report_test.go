package report

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		Caption: "E2: A_C optimality",
		Headers: []string{"N", "ratio", "algo"},
	}
	t.AddRow("4", "1.0", "A_C")
	t.AddRowf(1024, 1.25, "A_G")
	return t
}

func TestTableASCII(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().WriteASCII(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"E2: A_C optimality", "N", "ratio", "algo", "1024", "1.250", "A_G", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: header line and row lines have the same prefix width
	// for column 2.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestTableMarkdown(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "| N | ratio | algo |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Errorf("markdown separator missing:\n%s", out)
	}
	if !strings.Contains(out, "**E2: A_C optimality**") {
		t.Errorf("caption missing:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRow("x,y", `say "hi"`)
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestAddRowPanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRow("only-one")
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:      "1.0",
		2.5:    "2.500",
		0.3333: "0.333",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPlotRendersSeries(t *testing.T) {
	p := &Plot{Caption: "tradeoff", XLabel: "d", YLabel: "ratio", Width: 40, Height: 10}
	p.Add("measured", '*', []SeriesPoint{{0, 1}, {1, 2}, {2, 3}, {3, 3}})
	p.Add("bound", 'o', []SeriesPoint{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	var b strings.Builder
	if err := p.WriteASCII(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"tradeoff", "*", "o", "measured", "bound", "x: d", "y: ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Overlapping points render '#': (0,1) and (1,2),(2,3) overlap between
	// the series.
	if !strings.Contains(out, "#") {
		t.Errorf("expected overlap marker:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	var b strings.Builder
	if err := (&Plot{}).WriteASCII(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "(no data)") {
		t.Errorf("empty plot output: %q", b.String())
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	p := &Plot{Width: 20, Height: 5}
	p.Add("flat", '*', []SeriesPoint{{1, 2}, {1, 2}})
	var b strings.Builder
	if err := p.WriteASCII(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Errorf("degenerate plot lost its point:\n%s", b.String())
	}
}

func TestHeatStrip(t *testing.T) {
	if got := HeatStrip(nil, 10); got != "" {
		t.Errorf("empty input: %q", got)
	}
	// One char per value, ramp order.
	got := HeatStrip([]int{0, 1, 2, 9, 42}, 0)
	if len([]rune(got)) != 5 {
		t.Fatalf("width: %q", got)
	}
	r := []rune(got)
	if r[0] != ' ' || r[1] != '.' || r[4] != '@' || r[3] != '@' {
		t.Errorf("ramp wrong: %q", got)
	}
	// Downsampling takes the max per cell.
	got = HeatStrip([]int{0, 9, 0, 0}, 2)
	if []rune(got)[0] != '@' {
		t.Errorf("downsample should keep the max: %q", got)
	}
	if len([]rune(got)) != 2 {
		t.Errorf("downsampled width: %q", got)
	}
}
