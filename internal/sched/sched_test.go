package sched

import (
	"math"
	"testing"

	"partalloc/internal/core"
	"partalloc/internal/task"
	"partalloc/internal/tree"
	"partalloc/internal/workload"
)

func job(id task.ID, size int, at, work float64) Job {
	return Job{ID: id, Size: size, Arrival: at, Work: work}
}

func TestValidate(t *testing.T) {
	good := Workload{Jobs: []Job{job(1, 2, 0, 5), job(2, 4, 1, 5)}}
	if err := good.Validate(8); err != nil {
		t.Fatal(err)
	}
	bad := []Workload{
		{Jobs: []Job{job(1, 2, 5, 5), job(2, 2, 1, 5)}}, // time order
		{Jobs: []Job{job(1, 3, 0, 5)}},                  // size not pow2
		{Jobs: []Job{job(1, 16, 0, 5)}},                 // too large
		{Jobs: []Job{job(1, 2, 0, 0)}},                  // no work
		{Jobs: []Job{job(0, 2, 0, 5)}},                  // bad id
	}
	for i, w := range bad {
		if err := w.Validate(8); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// A single job alone runs at rate 1: response = work, slowdown = 1.
func TestSingleJobRunsAtFullSpeed(t *testing.T) {
	m := tree.MustNew(8)
	w := Workload{Jobs: []Job{job(1, 4, 2.0, 7.5)}}
	res := Run(core.NewGreedy(m), w)
	if len(res.Jobs) != 1 {
		t.Fatalf("finished %d jobs", len(res.Jobs))
	}
	j := res.Jobs[0]
	if math.Abs(j.Completion-9.5) > 1e-9 || math.Abs(j.Slowdown-1) > 1e-9 {
		t.Fatalf("job timing %+v", j)
	}
	if res.Makespan != j.Completion || res.MaxLoad != 1 {
		t.Fatalf("result %+v", res)
	}
}

// Two full-machine jobs time-share: each runs at rate 1/2 while both are
// active. Job A (work 10) and job B (work 10) arriving together finish at
// 20 and 20 — processor sharing: both at rate 1/2 until one finishes...
// with equal work they finish together at t=20.
func TestTwoJobsTimeShare(t *testing.T) {
	m := tree.MustNew(4)
	w := Workload{Jobs: []Job{job(1, 4, 0, 10), job(2, 4, 0, 10)}}
	res := Run(core.NewGreedy(m), w)
	for _, j := range res.Jobs {
		if math.Abs(j.Completion-20) > 1e-9 {
			t.Fatalf("job %d completed at %g, want 20", j.ID, j.Completion)
		}
		if math.Abs(j.Slowdown-2) > 1e-9 {
			t.Fatalf("job %d slowdown %g, want 2", j.ID, j.Slowdown)
		}
	}
}

// Unequal work with shared PEs: A(work 5) and B(work 10) share the whole
// machine. Both at rate 1/2; A finishes at t=10; B then runs alone:
// remaining 10-5=5 at rate 1 → finishes at 15.
func TestRateRecoveryAfterCompletion(t *testing.T) {
	m := tree.MustNew(4)
	w := Workload{Jobs: []Job{job(1, 4, 0, 5), job(2, 4, 0, 10)}}
	res := Run(core.NewGreedy(m), w)
	byID := map[task.ID]JobResult{}
	for _, j := range res.Jobs {
		byID[j.ID] = j
	}
	if math.Abs(byID[1].Completion-10) > 1e-9 {
		t.Fatalf("A completed at %g, want 10", byID[1].Completion)
	}
	if math.Abs(byID[2].Completion-15) > 1e-9 {
		t.Fatalf("B completed at %g, want 15", byID[2].Completion)
	}
}

// Disjoint placements don't interfere: two size-2 jobs on a 4-PE machine
// run concurrently at full speed under greedy (which separates them).
func TestDisjointJobsFullSpeed(t *testing.T) {
	m := tree.MustNew(4)
	w := Workload{Jobs: []Job{job(1, 2, 0, 10), job(2, 2, 0, 10)}}
	res := Run(core.NewGreedy(m), w)
	for _, j := range res.Jobs {
		if math.Abs(j.Slowdown-1) > 1e-9 {
			t.Fatalf("job %d slowdown %g, want 1", j.ID, j.Slowdown)
		}
	}
}

// A gang stalls at its most-loaded PE: size-2 job overlapping one PE with
// a size-1 job advances at 1/2 even though its other PE is idle-ish.
func TestGangRateIsSlowestPE(t *testing.T) {
	m := tree.MustNew(2)
	// Job 1 takes both PEs; job 2 takes one PE. Greedy places job 2 at PE0.
	w := Workload{Jobs: []Job{job(1, 2, 0, 10), job(2, 1, 0, 10)}}
	res := Run(core.NewGreedy(m), w)
	byID := map[task.ID]JobResult{}
	for _, j := range res.Jobs {
		byID[j.ID] = j
	}
	// Both at rate 1/2 (PE0 has load 2; job1's max-loaded PE is PE0).
	// Both finish at 20.
	if math.Abs(byID[1].Completion-20) > 1e-9 || math.Abs(byID[2].Completion-20) > 1e-9 {
		t.Fatalf("completions %g %g, want 20 20", byID[1].Completion, byID[2].Completion)
	}
}

// Work conservation-ish sanity: total completed work is invariant across
// allocators; makespan and slowdowns differ.
func TestRandomWorkloadAcrossAllocators(t *testing.T) {
	const n = 64
	w := RandomWorkload(WorkloadConfig{N: n, Jobs: 150, Seed: 3, Sizes: workload.GeometricSizes})
	if err := w.Validate(n); err != nil {
		t.Fatal(err)
	}
	var totalWork float64
	for _, j := range w.Jobs {
		totalWork += j.Work
	}
	for _, f := range []core.Factory{
		core.GreedyFactory(),
		core.ConstantFactory(),
		core.PeriodicFactory(2),
		core.LazyFactory(2),
		core.RandomFactory(5),
	} {
		res := Run(f.New(tree.MustNew(n)), w)
		if len(res.Jobs) != len(w.Jobs) {
			t.Fatalf("%s: finished %d of %d jobs", f.Name, len(res.Jobs), len(w.Jobs))
		}
		var got float64
		for _, j := range res.Jobs {
			got += j.Work
			if j.Slowdown < 1-1e-9 {
				t.Fatalf("%s: slowdown %g < 1 (faster than dedicated!)", f.Name, j.Slowdown)
			}
			if j.Response < j.Work-1e-9 {
				t.Fatalf("%s: response %g below work %g", f.Name, j.Response, j.Work)
			}
		}
		if math.Abs(got-totalWork) > 1e-6 {
			t.Fatalf("%s: work mismatch", f.Name)
		}
		if res.MeanSlowdown < 1 || res.P95Slowdown < res.MeanSlowdown/2 || res.MaxSlowdown < res.P95Slowdown {
			t.Fatalf("%s: slowdown summary inconsistent %+v", f.Name,
				[]float64{res.MeanSlowdown, res.P95Slowdown, res.MaxSlowdown})
		}
	}
}

// The paper's thesis in closed loop: on an oversubscribed machine the
// constantly balancing A_C yields better (or equal) mean slowdown than the
// oblivious A_Rand, which concentrates threads.
func TestBalancingHelpsSlowdowns(t *testing.T) {
	const n = 64
	const seeds = 5
	var constSum, randSum float64
	for s := int64(0); s < seeds; s++ {
		w := RandomWorkload(WorkloadConfig{N: n, Jobs: 300, Seed: s})
		cRes := Run(core.NewConstant(tree.MustNew(n)), w)
		rRes := Run(core.NewRandom(tree.MustNew(n), s+99), w)
		constSum += cRes.MeanSlowdown
		randSum += rRes.MeanSlowdown
	}
	if constSum > randSum {
		t.Errorf("A_C mean slowdown %.3f worse than A_Rand %.3f over %d seeds",
			constSum/seeds, randSum/seeds, seeds)
	}
}

func TestRunPanicsOnInvalidWorkload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Run(core.NewGreedy(tree.MustNew(4)), Workload{Jobs: []Job{job(1, 8, 0, 1)}})
}
