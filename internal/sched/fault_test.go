package sched

import (
	"strings"
	"testing"

	"partalloc/internal/core"
	"partalloc/internal/fault"
	"partalloc/internal/invariant"
	"partalloc/internal/tree"
)

// Satellite edge case: zero- and negative-work jobs must be rejected up
// front — a zero-work job would complete instantly at an undefined rate.
func TestValidateRejectsZeroWork(t *testing.T) {
	for _, work := range []float64{0, -1} {
		w := Workload{Jobs: []Job{job(1, 2, 0, work)}}
		if err := w.Validate(8); err == nil {
			t.Errorf("work=%g accepted", work)
		}
	}
}

// Satellite edge case: simultaneous completions must resolve in a fixed
// order (lowest ID first) so runs are replayable despite map iteration.
func TestSimultaneousCompletionsDeterministic(t *testing.T) {
	w := Workload{Jobs: []Job{
		job(1, 2, 0, 5), job(2, 2, 0, 5), // disjoint on N=4, identical work
	}}
	for trial := 0; trial < 20; trial++ {
		res := Run(core.NewGreedy(tree.MustNew(4)), w)
		if len(res.Jobs) != 2 {
			t.Fatalf("trial %d: %d jobs completed", trial, len(res.Jobs))
		}
		if res.Jobs[0].ID != 1 || res.Jobs[1].ID != 2 {
			t.Fatalf("trial %d: completion order %d,%d; want 1,2",
				trial, res.Jobs[0].ID, res.Jobs[1].ID)
		}
		if res.Jobs[0].Completion != 5 || res.Jobs[1].Completion != 5 {
			t.Fatalf("trial %d: completions %g,%g; want 5,5",
				trial, res.Jobs[0].Completion, res.Jobs[1].Completion)
		}
	}
}

// Satellite edge case: a job in flight when its PE fails is forcibly
// migrated and completes at its new placement's (slower) rate.
func TestCompletionDuringForcedMigration(t *testing.T) {
	m := tree.MustNew(4)
	check := invariant.New(m)
	w := Workload{Jobs: []Job{
		job(1, 2, 0, 4), // left half (PEs 0-1) under A_G
		job(2, 2, 0, 4), // right half (PEs 2-3)
	}}
	s := fault.Schedule{Events: []fault.Event{{At: 2, Kind: fault.FailPE, PE: 0}}}
	if err := s.Validate(4); err != nil {
		t.Fatal(err)
	}
	res := RunFaulted(core.NewGreedy(m), w, check, s.Source())
	if err := check.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Forced.Failures != 1 || res.Forced.Migrations != 1 || res.Forced.MovedPEs != 2 {
		t.Fatalf("forced stats %+v; want 1 failure, 1 migration, 2 moved PEs", res.Forced)
	}
	// After the failure both jobs share PEs 2-3: load 2, rate 1/2, so the
	// 4 units of work finish at t=8 instead of t=4.
	if len(res.Jobs) != 2 {
		t.Fatalf("%d jobs completed, want 2", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Completion != 8 {
			t.Fatalf("job %d completed at %g, want 8 (res %+v)", j.ID, j.Completion, res)
		}
	}
	if res.MaxLoad != 2 {
		t.Fatalf("MaxLoad %d, want 2", res.MaxLoad)
	}
}

func TestRunFaultedDeterministicReplay(t *testing.T) {
	w := RandomWorkload(WorkloadConfig{N: 16, Jobs: 120, Seed: 11})
	s := fault.Random(fault.RandomConfig{
		N: 16, Events: 2 * len(w.Jobs), Failures: 4, Down: 40, Seed: 11,
	})
	run := func() Result {
		m := tree.MustNew(16)
		check := invariant.New(m)
		res := RunFaulted(core.LazyFactory(2).New(m), w, check, s.Source())
		if err := check.Err(); err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.FaultEvents == 0 {
		t.Fatal("no fault events applied")
	}
	if len(r1.Jobs) != len(w.Jobs) || len(r2.Jobs) != len(w.Jobs) {
		t.Fatalf("completed %d/%d jobs, want %d", len(r1.Jobs), len(r2.Jobs), len(w.Jobs))
	}
	for i := range r1.Jobs {
		if r1.Jobs[i] != r2.Jobs[i] {
			t.Fatalf("job %d diverged: %+v vs %+v", i, r1.Jobs[i], r2.Jobs[i])
		}
	}
	if r1.Makespan != r2.Makespan || r1.MaxLoad != r2.MaxLoad || r1.Forced != r2.Forced {
		t.Fatalf("summary diverged:\n%+v\n%+v", r1, r2)
	}
}

func TestRunFaultedRejectsUnsupportedAllocator(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic for a fault-oblivious allocator")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "does not support fault injection") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	w := Workload{Jobs: []Job{job(1, 2, 0, 5)}}
	s := fault.Schedule{Events: []fault.Event{{At: 0, Kind: fault.FailPE, PE: 0}}}
	RunFaulted(core.NewRandom(tree.MustNew(8), 1), w, nil, s.Source())
}
