// Package sched closes the loop the paper's §2 remark opens: "When tasks
// allocated to a single PE are time-shared in a round-robin fashion, the
// worst slowdown ever experienced by a user is proportional to the maximum
// load of any PE in the submachine allocated to it."
//
// Where internal/sim replays open-loop sequences (departure times fixed in
// advance), this package executes tasks: each task brings a work
// requirement (PE-seconds per PE of its gang), every PE round-robins among
// the threads covering it, and a gang task advances at the rate of its
// slowest PE — 1/(max load within its submachine). Departures are
// therefore *endogenous*: a badly balanced allocator slows its tenants
// down, which keeps them resident longer, which keeps the load high — the
// feedback loop that makes thread management a first-order concern on
// time-shared machines. Response time and slowdown are the outputs.
//
// The simulation is event-driven over piecewise-constant progress rates:
// between events (an arrival, a completion) every active task's rate is
// constant, so the next completion time is exact, not time-stepped.
package sched

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"partalloc/internal/core"
	"partalloc/internal/fault"
	"partalloc/internal/invariant"
	"partalloc/internal/mathx"
	"partalloc/internal/task"
	"partalloc/internal/topology"
	"partalloc/internal/tree"
	"partalloc/internal/workload"
)

// Job is one unit of user work: a submachine request plus a work
// requirement in PE-seconds-per-PE (i.e. seconds of dedicated execution).
type Job struct {
	ID      task.ID
	Size    int
	Arrival float64
	Work    float64
}

// JobResult records a completed job's timing.
type JobResult struct {
	Job
	Completion float64
	// Response is Completion − Arrival.
	Response float64
	// Slowdown is Response/Work: 1.0 means the job ran as if alone.
	Slowdown float64
}

// Result summarizes one closed-loop run.
type Result struct {
	Algorithm    string
	N            int
	Jobs         []JobResult
	Makespan     float64
	MeanSlowdown float64
	P95Slowdown  float64
	MaxSlowdown  float64
	MaxLoad      int
	Realloc      core.ReallocStats
	// FaultEvents is the number of fault events applied during the run.
	FaultEvents int
	// Forced accounts forced migrations caused by PE failures, separate
	// from the voluntary reallocation budget in Realloc.
	Forced core.ForcedStats
	// Topology names the physical network when the run was host-aware
	// (RunHosted/RunHostedContext); empty otherwise.
	Topology string
	// MigHops is the hop-distance-weighted cost of voluntary migrations on
	// the host network (see sim.Result.MigHops); host-aware runs only.
	MigHops int64
	// ForcedHops prices the failure-forced migrations the same way;
	// host-aware runs only.
	ForcedHops int64
}

// Workload is a set of jobs ordered by arrival time.
type Workload struct {
	Jobs []Job
}

// Validate checks job ordering and parameters against machine size n.
func (w *Workload) Validate(n int) error {
	last := math.Inf(-1)
	for i, j := range w.Jobs {
		if j.Arrival < last {
			return fmt.Errorf("sched: job %d arrives at %g before predecessor %g", i, j.Arrival, last)
		}
		last = j.Arrival
		if !mathx.IsPow2(j.Size) || j.Size > n {
			return fmt.Errorf("sched: job %d size %d invalid for N=%d", i, j.Size, n)
		}
		if j.Work <= 0 {
			return fmt.Errorf("sched: job %d has non-positive work %g", i, j.Work)
		}
		if j.ID <= 0 {
			return fmt.Errorf("sched: job %d has invalid id %d", i, j.ID)
		}
	}
	return nil
}

// WorkloadConfig parameterizes RandomWorkload.
type WorkloadConfig struct {
	N           int
	Jobs        int
	ArrivalRate float64 // Poisson rate; 0 → chosen to oversubscribe ~2×
	MeanWork    float64 // exponential mean; 0 → 10
	Sizes       workload.SizeDist
	MaxExp      int // 0 → log2(N)-1
	Seed        int64
}

// RandomWorkload draws a Poisson-arrival job stream with exponential work
// requirements.
func RandomWorkload(cfg WorkloadConfig) Workload {
	if cfg.MeanWork == 0 {
		cfg.MeanWork = 10
	}
	if cfg.MaxExp == 0 {
		cfg.MaxExp = mathx.Max(mathx.Log2(cfg.N)-1, 0)
	}
	if cfg.Jobs == 0 {
		cfg.Jobs = 200
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Mean offered PE-load per unit time = rate · E[size] · meanWork. For
	// geometric sizes E[size] ≈ 2; target 2·N offered load by default.
	if cfg.ArrivalRate == 0 {
		cfg.ArrivalRate = 2 * float64(cfg.N) / (2 * cfg.MeanWork)
	}
	w := Workload{Jobs: make([]Job, 0, cfg.Jobs)}
	now := 0.0
	for i := 0; i < cfg.Jobs; i++ {
		now += rng.ExpFloat64() / cfg.ArrivalRate
		w.Jobs = append(w.Jobs, Job{
			ID:      task.ID(i + 1),
			Size:    drawSize(rng, cfg.Sizes, cfg.MaxExp),
			Arrival: now,
			Work:    rng.ExpFloat64()*cfg.MeanWork + 1e-3,
		})
	}
	return w
}

// drawSize mirrors workload's distributions without exporting them there.
func drawSize(rng *rand.Rand, dist workload.SizeDist, maxExp int) int {
	switch dist {
	case workload.UniformSizes:
		return 1 << rng.Intn(maxExp+1)
	case workload.FixedSize:
		return 1 << maxExp
	default: // geometric & mixed default to geometric here
		e := 0
		for e < maxExp && rng.Intn(2) == 0 {
			e++
		}
		return 1 << e
	}
}

// runner state per active job.
type activeJob struct {
	job       Job
	remaining float64
	rate      float64 // progress per unit time; recomputed at every event
}

// Run executes the workload on allocator a (which must be fresh) and
// returns timings. Placement happens at arrival exactly as in the paper's
// model; departures are generated when jobs finish executing under
// round-robin gang scheduling.
//
// In builds with the `invariantdebug` tag, every Run is audited by a
// panicking invariant.Checker; the branch below compiles away otherwise.
func Run(a core.Allocator, w Workload) Result {
	var check *invariant.Checker
	if invariant.Debug {
		check = invariant.New(a.Machine())
		check.SetPanic(true)
	}
	return RunChecked(a, w, check)
}

// RunChecked is Run with an explicit invariant checker auditing the
// allocator at every arrival and completion. check may be nil.
func RunChecked(a core.Allocator, w Workload, check *invariant.Checker) Result {
	return RunFaulted(a, w, check, nil)
}

// RunContext is Run with cooperative cancellation; see RunFaultedContext.
func RunContext(ctx context.Context, a core.Allocator, w Workload) (Result, error) {
	var check *invariant.Checker
	if invariant.Debug {
		check = invariant.New(a.Machine())
		check.SetPanic(true)
	}
	return runFaultedCtx(ctx, a, w, check, nil, nil)
}

// RunCheckedContext is RunChecked with cooperative cancellation.
func RunCheckedContext(ctx context.Context, a core.Allocator, w Workload, check *invariant.Checker) (Result, error) {
	return runFaultedCtx(ctx, a, w, check, nil, nil)
}

// RunFaultedContext is RunFaulted with cooperative cancellation: the
// context is polled periodically and, once cancelled, the run stops at the
// next event boundary and returns the partially summarized Result (jobs
// completed so far, makespan = simulated time reached) with ctx.Err() —
// the same shape a SIGINT checkpoint records.
func RunFaultedContext(ctx context.Context, a core.Allocator, w Workload, check *invariant.Checker, faults fault.Source) (Result, error) {
	return runFaultedCtx(ctx, a, w, check, faults, nil)
}

// RunHosted is RunFaulted on a physical topology host: migrations —
// voluntary and failure-forced — are additionally priced in network hops
// (Result.MigHops, Result.ForcedHops), and a non-nil checker audits the
// migration ledgers against the host. The allocator must run on a machine
// the host's decomposition describes. faults and check may be nil.
func RunHosted(a core.Allocator, w Workload, check *invariant.Checker, faults fault.Source, host *topology.Host) Result {
	res, _ := runFaultedCtx(nil, a, w, check, faults, host)
	return res
}

// RunHostedContext is RunHosted with cooperative cancellation.
func RunHostedContext(ctx context.Context, a core.Allocator, w Workload, check *invariant.Checker, faults fault.Source, host *topology.Host) (Result, error) {
	return runFaultedCtx(ctx, a, w, check, faults, host)
}

// RunFaulted is RunChecked with PE-failure injection. Fault events for
// index i fire immediately before the i-th processed event (arrivals and
// completions both count), matching internal/sim's event-indexed
// semantics — in wall-clock terms the failure lands at the instant the
// previous event finished. Jobs whose submachine loses a PE are forcibly
// migrated by the allocator (which must implement core.FaultTolerant;
// RunFaulted panics otherwise) and keep executing at their new
// placement's rate. faults may be nil.
func RunFaulted(a core.Allocator, w Workload, check *invariant.Checker, faults fault.Source) Result {
	res, _ := runFaultedCtx(nil, a, w, check, faults, nil)
	return res
}

// cancelCheckStride is how many events runFaultedCtx processes between
// context polls.
const cancelCheckStride = 64

// runFaultedCtx is the shared implementation; ctx == nil skips
// cancellation checks entirely.
func runFaultedCtx(ctx context.Context, a core.Allocator, w Workload, check *invariant.Checker, faults fault.Source, host *topology.Host) (Result, error) {
	m := a.Machine()
	n := m.N()
	if err := w.Validate(n); err != nil {
		panic(err)
	}
	res := Result{Algorithm: a.Name(), N: n}

	var ft core.FaultTolerant
	if faults != nil {
		var ok bool
		if ft, ok = a.(core.FaultTolerant); !ok {
			panic(fmt.Sprintf("sched: allocator %s does not support fault injection", a.Name()))
		}
	}

	// Host accounting mirrors internal/sim: voluntary hops through the
	// migration observer (muted while a fault is applied, since
	// failInCopies fires it for forced moves too), forced hops from the
	// FailPE return value.
	var migHops, forcedHops int64
	inFault := false
	if host != nil {
		if host.N() != n {
			panic(fmt.Sprintf("sched: host %s has %d PEs but allocator %s runs on %d", host.Name(), host.N(), a.Name(), n))
		}
		res.Topology = host.Name()
		check.SetHost(host)
		if obs, ok := a.(core.Observable); ok {
			obs.SetMigrationObserver(func(_ task.ID, from, to tree.Node) {
				if inFault {
					return
				}
				migHops += host.MigrationCost(from, to)
				check.OnMigration(from, to, false)
			})
		}
	}

	active := make(map[task.ID]*activeJob)
	now := 0.0
	next := 0 // next arrival index
	events := 0

	// recomputeRates refreshes every active job's progress rate from the
	// allocator's current PE loads; rate = 1 / (max load in the job's
	// submachine).
	loads := make([]int, n)
	recomputeRates := func() {
		if len(active) == 0 {
			return
		}
		copy(loads, a.PELoads())
		for id, aj := range active {
			v, ok := a.Placement(id)
			if !ok {
				panic(fmt.Sprintf("sched: active job %d has no placement", id))
			}
			lo, hi := m.PERange(v)
			maxLoad := 0
			for p := lo; p < hi; p++ {
				if loads[p] > maxLoad {
					maxLoad = loads[p]
				}
			}
			if maxLoad < 1 {
				panic(fmt.Sprintf("sched: job %d occupies idle PEs", id))
			}
			aj.rate = 1 / float64(maxLoad)
		}
	}

	// advance progresses all active jobs to time t.
	advance := func(t float64) {
		dt := t - now
		if dt < 0 {
			panic("sched: time went backwards")
		}
		for _, aj := range active {
			aj.remaining -= dt * aj.rate
		}
		now = t
	}

	finishJob := func(aj *activeJob) {
		a.Depart(aj.job.ID)
		check.OnDepart(a, aj.job.ID)
		delete(active, aj.job.ID)
		r := JobResult{
			Job:        aj.job,
			Completion: now,
			Response:   now - aj.job.Arrival,
		}
		r.Slowdown = r.Response / aj.job.Work
		res.Jobs = append(res.Jobs, r)
	}

	var runErr error
	for next < len(w.Jobs) || len(active) > 0 {
		if ctx != nil && events%cancelCheckStride == 0 {
			select {
			case <-ctx.Done():
				runErr = ctx.Err()
			default:
			}
			if runErr != nil {
				break
			}
		}
		if ft != nil {
			applied := false
			for _, fe := range faults.Next(events, a) {
				switch fe.Kind {
				case fault.FailPE:
					inFault = true
					migs := ft.FailPE(fe.PE)
					inFault = false
					if host != nil {
						for _, mg := range migs {
							forcedHops += host.MigrationCost(mg.From, mg.To)
							check.OnMigration(mg.From, mg.To, true)
						}
					}
					check.OnFail(a, fe.PE)
				case fault.RecoverPE:
					ft.RecoverPE(fe.PE)
					check.OnRecover(a, fe.PE)
				default:
					panic(fmt.Sprintf("sched: unknown fault kind %d before event %d", fe.Kind, events))
				}
				res.FaultEvents++
				applied = true
				if l := a.MaxLoad(); l > res.MaxLoad {
					res.MaxLoad = l
				}
			}
			if applied {
				// Forced migrations moved jobs and changed loads; every
				// in-flight job's rate must reflect its new placement.
				recomputeRates()
			}
		}
		// Projected next completion under current rates.
		var soonest *activeJob
		soonestAt := math.Inf(1)
		for _, aj := range active {
			at := now + aj.remaining/aj.rate
			if at < soonestAt || (at == soonestAt && soonest != nil && aj.job.ID < soonest.job.ID) {
				soonest, soonestAt = aj, at
			}
		}
		arrivalAt := math.Inf(1)
		if next < len(w.Jobs) {
			arrivalAt = w.Jobs[next].Arrival
		}

		if arrivalAt <= soonestAt {
			// Next event: arrival.
			advance(arrivalAt)
			j := w.Jobs[next]
			next++
			t := task.Task{ID: j.ID, Size: j.Size}
			v := a.Arrive(t)
			check.OnArrive(a, t, v)
			active[j.ID] = &activeJob{job: j, remaining: j.Work}
			if l := a.MaxLoad(); l > res.MaxLoad {
				res.MaxLoad = l
			}
		} else {
			// Next event: completion.
			advance(soonestAt)
			// Numerical cleanliness: clamp the finishing job's remainder.
			soonest.remaining = 0
			finishJob(soonest)
		}
		// Any event changes loads (and reallocation may move everything),
		// so refresh every rate.
		events++
		recomputeRates()
	}

	res.Makespan = now
	summarize(&res)
	if r, ok := a.(core.Reallocator); ok {
		res.Realloc = r.ReallocStats()
	}
	if ft != nil {
		res.Forced = ft.ForcedStats()
	}
	res.MigHops = migHops
	res.ForcedHops = forcedHops
	return res, runErr
}

func summarize(res *Result) {
	if len(res.Jobs) == 0 {
		return
	}
	xs := make([]float64, len(res.Jobs))
	var sum float64
	for i, j := range res.Jobs {
		xs[i] = j.Slowdown
		sum += j.Slowdown
		if j.Slowdown > res.MaxSlowdown {
			res.MaxSlowdown = j.Slowdown
		}
	}
	res.MeanSlowdown = sum / float64(len(xs))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	res.P95Slowdown = sorted[(len(sorted)-1)*95/100]
}
