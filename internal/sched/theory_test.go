package sched

import (
	"math"
	"math/rand"
	"testing"

	"partalloc/internal/core"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// When every job requests the whole machine, gang round-robin is exactly
// M/M/1 processor sharing: with Poisson arrivals at rate λ and exponential
// work with mean w (offered load ρ = λ·w < 1), queueing theory gives
// E[slowdown] = E[T]/E[S] = 1/(1−ρ). Validating the simulator against the
// closed form checks the whole event loop: rate recomputation, advance,
// endogenous departures.
func TestSchedMatchesMM1ProcessorSharing(t *testing.T) {
	const n = 8
	const meanWork = 1.0
	for _, rho := range []float64{0.3, 0.6} {
		lambda := rho / meanWork
		rng := rand.New(rand.NewSource(42))
		var sumSlow float64
		var jobs int
		const trials = 4
		for trial := 0; trial < trials; trial++ {
			w := Workload{}
			now := 0.0
			const count = 2500
			for i := 1; i <= count; i++ {
				now += rng.ExpFloat64() / lambda
				w.Jobs = append(w.Jobs, Job{
					ID:      task.ID(i),
					Size:    n, // whole machine: pure processor sharing
					Arrival: now,
					Work:    rng.ExpFloat64() * meanWork,
				})
			}
			// Zero-work jobs are invalid; clamp.
			for i := range w.Jobs {
				if w.Jobs[i].Work <= 0 {
					w.Jobs[i].Work = 1e-6
				}
			}
			res := Run(core.NewGreedy(tree.MustNew(n)), w)
			// Discard warmup and drain tails: keep the middle half by
			// completion order.
			for _, j := range res.Jobs[len(res.Jobs)/4 : 3*len(res.Jobs)/4] {
				sumSlow += j.Slowdown
				jobs++
			}
		}
		got := sumSlow / float64(jobs)
		want := 1 / (1 - rho)
		// The PS slowdown estimator E[T/S] differs from E[T]/E[S]: for
		// M/M/1-PS, E[T|S=s] = s/(1−ρ) exactly, so E[T/S] = 1/(1−ρ) too —
		// the conditional linearity makes both estimators agree.
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("ρ=%.1f: mean slowdown %.3f, M/M/1-PS predicts %.3f (±10%%)",
				rho, got, want)
		}
	}
}

// With two independent half-machine streams, each half behaves as its own
// PS queue under greedy (it separates the halves); sanity that slowdowns
// match the same closed form per half.
func TestSchedTwoIndependentHalves(t *testing.T) {
	const n = 8
	const meanWork = 1.0
	const rho = 0.5
	lambda := 2 * rho / meanWork // two streams share the arrival process
	rng := rand.New(rand.NewSource(7))
	w := Workload{}
	now := 0.0
	const count = 4000
	for i := 1; i <= count; i++ {
		now += rng.ExpFloat64() / lambda
		work := rng.ExpFloat64() * meanWork
		if work <= 0 {
			work = 1e-6
		}
		w.Jobs = append(w.Jobs, Job{ID: task.ID(i), Size: n / 2, Arrival: now, Work: work})
	}
	res := Run(core.NewGreedy(tree.MustNew(n)), w)
	var sum float64
	var cnt int
	for _, j := range res.Jobs[len(res.Jobs)/4 : 3*len(res.Jobs)/4] {
		sum += j.Slowdown
		cnt++
	}
	got := sum / float64(cnt)
	want := 1 / (1 - rho)
	// Greedy's placement isn't a perfect splitter (it balances loads, which
	// at times co-locates), so allow a generous band above the lower bound.
	if got < 1 || got > want*1.4 {
		t.Errorf("two-stream slowdown %.3f outside [1, %.3f]", got, want*1.4)
	}
}
