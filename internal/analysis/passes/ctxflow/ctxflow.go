// Package ctxflow enforces the context-propagation discipline behind the
// *Context API family (sim.RunContext, sched.Run*Context,
// partalloc.SimulateContext/ExecuteContext, cli.WithInterrupt): a
// cancellation signal must flow from main() down to the event loop
// without any layer silently re-rooting it.
//
// Three families of findings:
//
//   - context.Background()/context.TODO() in library code — root contexts
//     belong in main packages (cmd/, examples/) and tests only;
//   - context.Background()/context.TODO() inside a function that already
//     receives a Context, anywhere — the received ctx must be used;
//   - a function holding a ctx calling a callee that ignores it: either
//     the callee has a *Context sibling that should be called instead, or
//     (via cross-package CreatesRoot facts) the callee transitively
//     manufactures its own context.Background, severing cancellation.
//
// The facts make the last check compositional: when cmd/engined is
// analyzed, the analyzer already knows which helpers deep in the library
// re-root the context, without whole-program analysis.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"partalloc/internal/analysis"
)

// CreatesRoot is the fact exported for a function that calls
// context.Background or context.TODO, directly or via a callee. Via is a
// short human-readable chain for diagnostics.
type CreatesRoot struct {
	Via string
}

// AFact marks CreatesRoot as a fact type.
func (*CreatesRoot) AFact() {}

func (f *CreatesRoot) String() string { return "creates-root: " + f.Via }

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbids context.Background()/TODO() outside main packages and, in functions " +
		"that receive a ctx, flags callees that drop it (*Context sibling available, or " +
		"the callee re-roots the context — transitively, via CreatesRoot facts)",
	Run:       run,
	FactTypes: []analysis.Fact{(*CreatesRoot)(nil)},
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	a := &analyzer{pass: pass, closures: make(map[types.Object]*ast.FuncLit)}
	a.indexClosures()
	a.computeFacts()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				a.walkFunc(fd.Body, a.declSig(fd), a.declObj(fd))
			}
		}
	}
	return nil
}

// inScope restricts the check to this module plus the ctxflow fixtures.
func inScope(pkgPath string) bool {
	return pkgPath == "partalloc" || strings.HasPrefix(pkgPath, "partalloc/") ||
		strings.Contains(pkgPath, "ctxflow_fixture")
}

// rootExempt reports whether pkg may call context.Background()/TODO() at
// the top of its call trees: main packages (cmd/, examples/) own the
// process lifetime and are where root contexts are created.
func rootExempt(pkg *types.Package) bool {
	return pkg.Name() == "main" || strings.HasPrefix(pkg.Path(), "partalloc/cmd/")
}

type analyzer struct {
	pass *analysis.Pass
	// closures maps a local variable to the function literal assigned to
	// it, so `mkCtx()` resolves to its body for root-creation analysis.
	closures map[types.Object]*ast.FuncLit
	// local caches the root-creation chain of this package's functions and
	// closures during the fixpoint ("" = does not create a root context).
	local map[ast.Node]string
}

// indexClosures records `f := func(...){...}` bindings (and var f = ...).
func (a *analyzer) indexClosures() {
	a.pass.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.ValueSpec)(nil)}, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return
			}
			for i, rhs := range st.Rhs {
				if lit, ok := rhs.(*ast.FuncLit); ok {
					if id, ok := st.Lhs[i].(*ast.Ident); ok {
						if obj := a.pass.TypesInfo.Defs[id]; obj != nil {
							a.closures[obj] = lit
						} else if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
							a.closures[obj] = lit
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range st.Values {
				if lit, ok := rhs.(*ast.FuncLit); ok && i < len(st.Names) {
					if obj := a.pass.TypesInfo.Defs[st.Names[i]]; obj != nil {
						a.closures[obj] = lit
					}
				}
			}
		}
	})
}

// functions returns every function declaration and function literal.
func (a *analyzer) functions() []ast.Node {
	var out []ast.Node
	a.pass.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		if fd, ok := n.(*ast.FuncDecl); ok && fd.Body == nil {
			return
		}
		out = append(out, n)
	})
	return out
}

func body(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}

// computeFacts finds each declared function's root-creation chain,
// iterating to a fixpoint so same-package call chains resolve regardless
// of declaration order, then exports CreatesRoot facts.
func (a *analyzer) computeFacts() {
	a.local = make(map[ast.Node]string)
	fns := a.functions()
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if a.local[fn] != "" {
				continue
			}
			if via := a.rootVia(body(fn), 0); via != "" {
				a.local[fn] = via
				changed = true
			}
		}
	}
	for _, fn := range fns {
		fd, ok := fn.(*ast.FuncDecl)
		if !ok || a.local[fn] == "" {
			continue
		}
		obj := a.pass.TypesInfo.Defs[fd.Name]
		if obj == nil {
			continue
		}
		_ = a.pass.ExportObjectFact(obj, &CreatesRoot{Via: a.local[fn]})
	}
}

// maxDepth bounds closure-chain recursion in rootVia.
const maxDepth = 8

// rootVia scans a function body (skipping nested function literals,
// which re-root only when called — resolved at their call sites) for the
// first context.Background/TODO and returns the call chain, or "".
func (a *analyzer) rootVia(block *ast.BlockStmt, depth int) string {
	if block == nil || depth > maxDepth {
		return ""
	}
	via := ""
	ast.Inspect(block, func(n ast.Node) bool {
		if via != "" || n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if v := a.callVia(call, depth); v != "" {
				via = v
				return false
			}
		}
		return true
	})
	return via
}

// callVia reports the chain through which a call creates a root context,
// or "".
func (a *analyzer) callVia(call *ast.CallExpr, depth int) string {
	// Immediately invoked literal: (func(){...})().
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return a.rootVia(lit.Body, depth+1)
	}
	// Local closure called by name: analyze its literal's body.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
			if lit, ok := a.closures[obj]; ok {
				if v := a.rootVia(lit.Body, depth+1); v != "" {
					return id.Name + " (" + truncate(v) + ")"
				}
				return ""
			}
		}
	}
	name := a.pass.FuncNameOf(call)
	if name == "context.Background" || name == "context.TODO" {
		return name
	}
	fn, ok := calleeObject(a.pass, call)
	if !ok {
		return ""
	}
	// Same-package functions resolve through the fixpoint cache; imported
	// ones through their exported CreatesRoot fact.
	if fn.Pkg() == a.pass.Pkg {
		for node, via := range a.local {
			if fd, ok := node.(*ast.FuncDecl); ok && a.pass.TypesInfo.Defs[fd.Name] == fn && via != "" {
				return shortName(fn) + " (" + truncate(via) + ")"
			}
		}
		return ""
	}
	var fact CreatesRoot
	if a.pass.ImportObjectFact(fn, &fact) {
		return shortName(fn) + " (" + truncate(fact.Via) + ")"
	}
	return ""
}

// ---- call-site checks ----

// walkFunc checks one function body. ctx is the innermost
// context.Context parameter lexically in scope (nil if none); encl is the
// function's own object, used to avoid suggesting a *Context sibling to
// itself. Nested literals are walked here, not as separate roots, so the
// enclosing ctx stays visible inside them.
func (a *analyzer) walkFunc(block *ast.BlockStmt, sig *types.Signature, encl types.Object) {
	ctx := ctxParam(sig)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			litSig, _ := a.pass.TypesInfo.Types[lit].Type.(*types.Signature)
			if ctxParam(litSig) == nil {
				litSig = sig // keep the enclosing ctx in scope
			}
			a.walkFunc(lit.Body, litSig, encl)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		a.checkCall(call, ctx, encl)
		return true
	}
	ast.Inspect(block, walk)
}

// checkCall applies the three call-site rules to one call expression.
func (a *analyzer) checkCall(call *ast.CallExpr, ctx *types.Var, encl types.Object) {
	name := a.pass.FuncNameOf(call)
	if name == "context.Background" || name == "context.TODO" {
		if ctx != nil {
			a.pass.Reportf(call.Pos(), "function receives %s; use it instead of %s()", ctx.Name(), name)
		} else if !rootExempt(a.pass.Pkg) && !a.pass.InTestFile(call.Pos()) {
			// Tests, like main packages, own their run's lifetime and may
			// create root contexts.
			a.pass.Reportf(call.Pos(), "%s() outside a main package: accept a Context from the caller", name)
		}
		return
	}
	if ctx == nil {
		return
	}
	fn, ok := calleeObject(a.pass, call)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || ctxParam(sig) != nil {
		return // callee accepts a ctx; propagation is the caller's argument choice
	}
	if sib := contextSibling(fn); sib != nil && sib != encl {
		a.pass.Reportf(call.Pos(), "%s drops %s: call %s instead", shortName(fn), ctx.Name(), shortName(sib))
		return
	}
	if via := a.calleeRootVia(fn); via != "" {
		a.pass.Reportf(call.Pos(), "%s creates its own root context (%s) while %s is in scope; thread the ctx through",
			shortName(fn), truncate(via), ctx.Name())
	}
}

// calleeRootVia resolves a callee's root-creation chain from the local
// fixpoint cache (same package) or its imported fact.
func (a *analyzer) calleeRootVia(fn *types.Func) string {
	if fn.Pkg() == a.pass.Pkg {
		for node, via := range a.local {
			if fd, ok := node.(*ast.FuncDecl); ok && a.pass.TypesInfo.Defs[fd.Name] == fn {
				return via
			}
		}
		return ""
	}
	var fact CreatesRoot
	if a.pass.ImportObjectFact(fn, &fact) {
		return fact.Via
	}
	return ""
}

// contextSibling returns the *Context variant of fn — a function or
// method named fn.Name()+"Context" in the same scope that accepts a
// context.Context — or nil.
func contextSibling(fn *types.Func) *types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	want := fn.Name() + "Context"
	if recv := sig.Recv(); recv != nil {
		named := namedRecv(recv.Type())
		if named == nil {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Name() == want && acceptsCtx(m) {
				return m
			}
		}
		return nil
	}
	if fn.Pkg() == nil {
		return nil
	}
	if sib, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok && acceptsCtx(sib) {
		return sib
	}
	return nil
}

func acceptsCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && ctxParam(sig) != nil
}

// ctxParam returns the first context.Context parameter of sig, or nil.
func ctxParam(sig *types.Signature) *types.Var {
	if sig == nil {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isCtxType(p.Type()) {
			return p
		}
	}
	return nil
}

func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func namedRecv(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func (a *analyzer) declSig(fd *ast.FuncDecl) *types.Signature {
	if obj := a.declObj(fd); obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

func (a *analyzer) declObj(fd *ast.FuncDecl) types.Object {
	if obj := a.pass.TypesInfo.Defs[fd.Name]; obj != nil {
		return obj
	}
	return nil
}

// calleeObject resolves the called *types.Func.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return fn, ok
}

// shortName renders a function as "pkg.Func" or "pkg.Type.Method".
func shortName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return obj.Name()
	}
	s := strings.NewReplacer("(", "", ")", "", "*", "").Replace(fn.FullName())
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// truncate keeps nested chains readable.
func truncate(s string) string {
	if len(s) > 80 {
		return s[:77] + "..."
	}
	return s
}
