package ctxflow_test

import (
	"testing"

	"partalloc/internal/analysis/analysistest"
	"partalloc/internal/analysis/passes/ctxflow"
)

func TestCtxflow(t *testing.T) {
	if testing.Short() {
		t.Skip("loads export data via go list")
	}
	analysistest.Run(t, ctxflow.Analyzer, analysistest.Fixture(t, "ctxflow_fixture"))
}
