// Package loadmutation confines PE-load mutation to the audited allocator
// packages.
//
// The paper's central quantity is load — the number of threads resident
// on a PE (§2). Every theorem this repo reproduces (Theorems 3.1, 4.1,
// 4.2, 5.1) bounds allocator load against L* = ⌈s(σ)/N⌉, and every bound
// is checked dynamically by tests and internal/invariant under the
// assumption that load state changes only through the allocator entry
// points in internal/core and the state structures they own
// (internal/copies, internal/loadtree). A stray Place/Occupy/Vacate call
// from a driver, experiment, or report would desynchronize load state
// from task placements without tripping any runtime panic — exactly the
// silent drift this analyzer forbids.
package loadmutation

import (
	"go/ast"
	"strings"

	"partalloc/internal/analysis"
)

// Analyzer is the loadmutation pass.
var Analyzer = &analysis.Analyzer{
	Name: "loadmutation",
	Doc: "forbids PE-load mutation (loadtree/copies state changes) outside the " +
		"audited allocator packages internal/core, internal/copies, internal/loadtree",
	Run: run,
}

// mutators are the load-state-changing methods. Calling any of them
// outside allowedPkgs bypasses the allocator bookkeeping.
var mutators = map[string]string{
	"(*partalloc/internal/loadtree.Tree).Place":  "loadtree.Tree.Place",
	"(*partalloc/internal/loadtree.Tree).Remove": "loadtree.Tree.Remove",
	"(*partalloc/internal/copies.Copy).Occupy":   "copies.Copy.Occupy",
	"(*partalloc/internal/copies.Copy).Vacate":   "copies.Copy.Vacate",
	"(*partalloc/internal/copies.List).Place":    "copies.List.Place",
	"(*partalloc/internal/copies.List).Vacate":   "copies.List.Vacate",
	"(*partalloc/internal/copies.List).Reset":    "copies.List.Reset",
}

// allowedPkgs may mutate load state: the allocators themselves and the
// state packages they own. Everyone else — including the runtime
// invariant checker — observes loads through read-only snapshots.
var allowedPkgs = map[string]bool{
	"partalloc/internal/core":     true,
	"partalloc/internal/copies":   true,
	"partalloc/internal/loadtree": true,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if allowedPkgs[path] || strings.Contains(path, "loadmutation_fixture_allowed") {
		return nil
	}
	pass.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if human, ok := mutators[pass.FuncNameOf(call)]; ok {
			pass.Reportf(call.Pos(),
				"%s mutates PE-load state outside the audited allocator packages; route this through a core.Allocator",
				human)
		}
	})
	return nil
}
