package loadmutation_test

import (
	"testing"

	"partalloc/internal/analysis/analysistest"
	"partalloc/internal/analysis/passes/loadmutation"
)

func TestLoadmutation(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture type-checking shells out to go list")
	}
	analysistest.Run(t, loadmutation.Analyzer, analysistest.Fixture(t, "loadmutation_fixture"))
}

// TestLoadmutationAllowlist checks the negative side: a package on the
// audited allowlist may mutate load state freely.
func TestLoadmutationAllowlist(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture type-checking shells out to go list")
	}
	analysistest.Run(t, loadmutation.Analyzer, analysistest.Fixture(t, "loadmutation_fixture_allowed"))
}
