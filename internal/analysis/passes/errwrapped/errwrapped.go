// Package errwrapped enforces the wrapped-sentinel discipline of
// internal/errs and internal/engine: sentinel errors (exported
// package-level Err* variables) travel wrapped in %w chains, so callers
// must match them with errors.Is, and wrapping layers must not flatten
// the chain with %v.
//
// Two families of findings:
//
//   - == / != / switch-case comparisons against a sentinel — correct only
//     until any layer wraps the error, which the allocator facade and the
//     engine both do;
//   - fmt.Errorf formatting a sentinel-carrying error with a non-%w verb,
//     which severs the chain errors.Is depends on.
//
// "Sentinel-carrying" is compositional: WrapsSentinels facts record, per
// function, which sentinels its error results may transitively wrap, so
// when cmd/sweep is analyzed the analyzer already knows
// partalloc.Simulate's errors can carry errs.ErrTaskTooLarge.
package errwrapped

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"partalloc/internal/analysis"
)

// WrapsSentinels is the fact exported for a function whose error results
// may (transitively) wrap the named sentinels. Names are short
// "pkg.ErrFoo" forms, sorted.
type WrapsSentinels struct {
	Names []string
}

// AFact marks WrapsSentinels as a fact type.
func (*WrapsSentinels) AFact() {}

func (f *WrapsSentinels) String() string { return "wraps: " + strings.Join(f.Names, ", ") }

// Analyzer is the errwrapped pass.
var Analyzer = &analysis.Analyzer{
	Name: "errwrapped",
	Doc: "forbids ==/switch comparisons against sentinel errors (use errors.Is) and " +
		"fmt.Errorf verbs other than %w on sentinel-carrying errors — transitively, " +
		"via WrapsSentinels facts",
	Run:       run,
	FactTypes: []analysis.Fact{(*WrapsSentinels)(nil)},
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	a := &analyzer{
		pass:      pass,
		funcWraps: make(map[*types.Func]map[string]bool),
		varWraps:  make(map[types.Object]map[string]bool),
	}
	a.computeFacts()
	a.checkComparisons()
	a.checkErrorf()
	return nil
}

// inScope restricts the check to this module plus the errwrapped fixtures.
func inScope(pkgPath string) bool {
	return pkgPath == "partalloc" || strings.HasPrefix(pkgPath, "partalloc/") ||
		strings.Contains(pkgPath, "errwrapped_fixture")
}

type analyzer struct {
	pass *analysis.Pass
	// funcWraps and varWraps accumulate, per function object and per local
	// error variable, the sentinels their values may wrap. Both grow
	// monotonically across the fixpoint.
	funcWraps map[*types.Func]map[string]bool
	varWraps  map[types.Object]map[string]bool
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// isSentinel reports whether obj is a sentinel: an exported package-level
// error variable named Err* in a module package.
func isSentinel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !v.Exported() || !strings.HasPrefix(v.Name(), "Err") {
		return false
	}
	if v.Parent() != v.Pkg().Scope() {
		return false
	}
	return inScope(v.Pkg().Path()) && isErrorType(v.Type())
}

func sentinelName(obj types.Object) string {
	return obj.Pkg().Name() + "." + obj.Name()
}

// ---- fact computation ----

// computeFacts runs the package-wide fixpoint: assignments feed varWraps,
// returns feed funcWraps, and both consult each other plus imported
// facts, so same-package chains resolve regardless of declaration order.
func (a *analyzer) computeFacts() {
	var decls []*ast.FuncDecl
	for _, file := range a.pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			if a.scanFunc(fd) {
				changed = true
			}
		}
	}
	for _, fd := range decls {
		fn, ok := a.pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		set := a.funcWraps[fn]
		if len(set) == 0 {
			continue
		}
		_ = a.pass.ExportObjectFact(fn, &WrapsSentinels{Names: sortedNames(set)})
	}
}

// scanFunc folds one function's assignments and returns into the
// fixpoint state; reports whether anything grew.
func (a *analyzer) scanFunc(fd *ast.FuncDecl) bool {
	fn, ok := a.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	grew := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if a.foldAssign(st.Lhs, st.Rhs) {
				grew = true
			}
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(st.Names))
			for i, id := range st.Names {
				lhs[i] = id
			}
			if a.foldAssign(lhs, st.Values) {
				grew = true
			}
		case *ast.ReturnStmt:
			before := len(a.funcWraps[fn])
			set := a.funcWraps[fn]
			if len(st.Results) == 0 {
				// Bare return: named error results carry whatever was
				// assigned to them.
				for i := 0; i < sig.Results().Len(); i++ {
					r := sig.Results().At(i)
					if isErrorType(r.Type()) {
						set = unionInto(set, a.varWraps[r])
					}
				}
			} else {
				for _, res := range st.Results {
					if tv, ok := a.pass.TypesInfo.Types[res]; ok && isErrorType(tv.Type) {
						set = unionInto(set, a.sentinelsOf(res))
					}
				}
				// A single call returning (T, error) has one result expr
				// whose type is a tuple, skipped above.
				if len(st.Results) == 1 && sig.Results().Len() > 1 && hasErrorResult(sig) {
					set = unionInto(set, a.sentinelsOf(st.Results[0]))
				}
			}
			if set != nil {
				a.funcWraps[fn] = set
			}
			if len(set) > before {
				grew = true
			}
		}
		return true
	})
	return grew
}

func hasErrorResult(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// foldAssign merges the sentinels each RHS may carry into the error-typed
// LHS variables.
func (a *analyzer) foldAssign(lhs, rhs []ast.Expr) bool {
	grew := false
	merge := func(target ast.Expr, set map[string]bool) {
		if len(set) == 0 {
			return
		}
		id, ok := ast.Unparen(target).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := a.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = a.pass.TypesInfo.Uses[id]
		}
		if obj == nil || !isErrorType(obj.Type()) {
			return
		}
		before := len(a.varWraps[obj])
		a.varWraps[obj] = unionInto(a.varWraps[obj], set)
		if len(a.varWraps[obj]) > before {
			grew = true
		}
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		// v, err := call(): every error-typed LHS conservatively gets the
		// callee's whole set.
		set := a.sentinelsOf(rhs[0])
		for _, l := range lhs {
			merge(l, set)
		}
		return grew
	}
	for i, r := range rhs {
		if i < len(lhs) {
			merge(lhs[i], a.sentinelsOf(r))
		}
	}
	return grew
}

// sentinelsOf returns the sentinels expr's value may wrap: a sentinel
// itself, a tracked local variable, a call into the fact graph, or a
// fmt.Errorf/errors.Join chain over those.
func (a *analyzer) sentinelsOf(expr ast.Expr) map[string]bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return a.objSentinels(a.pass.TypesInfo.Uses[e])
	case *ast.SelectorExpr:
		return a.objSentinels(a.pass.TypesInfo.Uses[e.Sel])
	case *ast.CallExpr:
		name := a.pass.FuncNameOf(e)
		switch name {
		case "fmt.Errorf":
			out := map[string]bool{}
			for _, arg := range wrapArgs(e) {
				out = unionInto(out, a.sentinelsOf(arg))
			}
			return out
		case "errors.Join":
			out := map[string]bool{}
			for _, arg := range e.Args {
				out = unionInto(out, a.sentinelsOf(arg))
			}
			return out
		}
		fn, ok := calleeObject(a.pass, e)
		if !ok {
			return nil
		}
		return a.calleeWraps(fn)
	}
	return nil
}

func (a *analyzer) objSentinels(obj types.Object) map[string]bool {
	if obj == nil {
		return nil
	}
	if isSentinel(obj) {
		return map[string]bool{sentinelName(obj): true}
	}
	return a.varWraps[obj]
}

// calleeWraps resolves a callee's sentinel set from the local fixpoint
// (same package) or its imported fact.
func (a *analyzer) calleeWraps(fn *types.Func) map[string]bool {
	if fn.Pkg() == a.pass.Pkg {
		return a.funcWraps[fn]
	}
	var fact WrapsSentinels
	if a.pass.ImportObjectFact(fn, &fact) {
		out := make(map[string]bool, len(fact.Names))
		for _, n := range fact.Names {
			out[n] = true
		}
		return out
	}
	return nil
}

// ---- comparison checks ----

func (a *analyzer) checkComparisons() {
	a.pass.Preorder([]ast.Node{(*ast.BinaryExpr)(nil), (*ast.SwitchStmt)(nil)}, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.BinaryExpr:
			if st.Op != token.EQL && st.Op != token.NEQ {
				return
			}
			xObj, yObj := a.exprSentinel(st.X), a.exprSentinel(st.Y)
			if xObj != nil && yObj != nil {
				return // comparing two sentinels to each other is exact
			}
			obj, other := xObj, st.Y
			if obj == nil {
				obj, other = yObj, st.X
			}
			if obj == nil {
				return
			}
			a.pass.Reportf(st.Pos(), "%s comparison with sentinel %s misses wrapped errors; use errors.Is(%s, %s)",
				st.Op, sentinelName(obj), types.ExprString(other), sentinelName(obj))
		case *ast.SwitchStmt:
			if st.Tag == nil {
				return
			}
			tv, ok := a.pass.TypesInfo.Types[st.Tag]
			if !ok || !isErrorType(tv.Type) {
				return
			}
			for _, cl := range st.Body.List {
				cc, ok := cl.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if obj := a.exprSentinel(e); obj != nil {
						a.pass.Reportf(e.Pos(), "switch case on sentinel %s misses wrapped errors; use errors.Is",
							sentinelName(obj))
					}
				}
			}
		}
	})
}

func (a *analyzer) exprSentinel(e ast.Expr) types.Object {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = a.pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		obj = a.pass.TypesInfo.Uses[x.Sel]
	}
	if obj != nil && isSentinel(obj) {
		return obj
	}
	return nil
}

// ---- fmt.Errorf verb checks ----

func (a *analyzer) checkErrorf() {
	a.pass.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if a.pass.FuncNameOf(call) != "fmt.Errorf" {
			return
		}
		verbs, ok := verbArgs(call)
		if !ok {
			return
		}
		for i, verb := range verbs {
			argIdx := i + 1
			if verb == 'w' || argIdx >= len(call.Args) {
				continue
			}
			arg := call.Args[argIdx]
			tv, ok := a.pass.TypesInfo.Types[arg]
			if !ok || !isErrorType(tv.Type) {
				continue
			}
			if set := a.sentinelsOf(arg); len(set) > 0 {
				a.pass.Reportf(arg.Pos(), "error wrapping %s formatted with %%%c severs the chain; use %%w so errors.Is keeps working",
					strings.Join(sortedNames(set), ", "), verb)
			}
		}
	})
}

// verbArgs parses a fmt.Errorf call's literal format string and returns
// one verb per consumed argument, in argument order. ok is false when the
// format is not a string literal.
func verbArgs(call *ast.CallExpr) ([]rune, bool) {
	if len(call.Args) == 0 {
		return nil, false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil, false
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return nil, false
	}
	var verbs []rune
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision; '*' consumes an argument of its own.
		for i < len(runes) && strings.ContainsRune("+-# 0123456789.*", runes[i]) {
			if runes[i] == '*' {
				verbs = append(verbs, '*')
			}
			i++
		}
		if i >= len(runes) || runes[i] == '%' {
			continue
		}
		verbs = append(verbs, runes[i])
	}
	return verbs, true
}

// wrapArgs returns the arguments a fmt.Errorf call formats with %w.
func wrapArgs(call *ast.CallExpr) []ast.Expr {
	verbs, ok := verbArgs(call)
	if !ok {
		return nil
	}
	var out []ast.Expr
	for i, v := range verbs {
		if v == 'w' && i+1 < len(call.Args) {
			out = append(out, call.Args[i+1])
		}
	}
	return out
}

// ---- small helpers ----

func unionInto(dst, src map[string]bool) map[string]bool {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]bool, len(src))
	}
	for k := range src {
		dst[k] = true
	}
	return dst
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// calleeObject resolves the called *types.Func.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return fn, ok
}
