package errwrapped_test

import (
	"testing"

	"partalloc/internal/analysis/analysistest"
	"partalloc/internal/analysis/passes/errwrapped"
)

func TestErrWrapped(t *testing.T) {
	if testing.Short() {
		t.Skip("loads export data via go list")
	}
	analysistest.Run(t, errwrapped.Analyzer, analysistest.Fixture(t, "errwrapped_fixture"))
}
