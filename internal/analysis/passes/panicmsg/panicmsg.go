// Package panicmsg enforces the repo's "pkg: message" panic convention.
//
// The allocators encode the paper's preconditions as panics (a task size
// that is not a power of two, a departure of an unknown task, an Occupy
// of a non-vacant submachine, ...). Those messages are the first — often
// only — forensic artifact when an invariant trips deep inside a
// million-event simulation, and the whole tree greps by package prefix:
// `panic("copies: ...")`, `panic(fmt.Sprintf("loadtree: ..."))`. panicmsg
// keeps new panics greppable by requiring the leading string literal of
// every panic argument to start with a lowercase package tag followed by
// ": ". Panics that rethrow an error value are exempt — there is no
// literal to check.
//
// The tag must be the panicking package's own: the package name, or for
// package main the command's directory name (cmd/sweep panics "sweep:
// ..."). A panic tagged with another package's name sends whoever is
// debugging a fault-injection run to the wrong file. Test files are
// exempt from the tag-match (they simulate other packages' failures) but
// still need the "pkg: message" shape.
package panicmsg

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"partalloc/internal/analysis"
)

// Analyzer is the panicmsg pass.
var Analyzer = &analysis.Analyzer{
	Name: "panicmsg",
	Doc:  `enforces the "pkg: message" prefix convention on panic string literals`,
	Run:  run,
}

// msgPattern is the required shape of a panic message's leading literal.
var msgPattern = regexp.MustCompile(`^[a-z][a-zA-Z0-9_./-]*: .`)

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	pass.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" || len(call.Args) != 1 {
			return
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			return // a shadowing declaration, not the builtin
		}
		lit, found := leadingLiteral(pass, call.Args[0])
		if !found {
			return // panic(err) and friends: nothing checkable
		}
		if strings.HasPrefix(lit, "%w") {
			// panic(fmt.Errorf("%w: ...", ErrSentinel, ...)): the prefix is
			// carried by the wrapped sentinel error, which this analyzer
			// cannot inspect statically. Sentinel messages are themselves
			// string literals checked wherever they are panicked directly.
			return
		}
		if !msgPattern.MatchString(lit) {
			pass.Reportf(call.Args[0].Pos(),
				"panic message %q does not follow the \"pkg: message\" convention (greppable prefix, lowercase package tag)",
				truncate(lit, 40))
			return
		}
		if isTestFile(pass, call.Pos()) {
			return // tests may simulate other packages' panics
		}
		want := expectedTag(pass)
		if tag := lit[:strings.Index(lit, ":")]; want != "" && tag != want {
			pass.Reportf(call.Args[0].Pos(),
				"panic tag %q does not match this package's tag %q (\"pkg: message\" convention)",
				tag, want)
		}
	})
	return nil
}

// expectedTag is the tag a package's panics must carry: the package name,
// or the command directory's base name for package main.
func expectedTag(pass *analysis.Pass) string {
	name := pass.Pkg.Name()
	if name != "main" {
		return name
	}
	path := pass.Pkg.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isTestFile reports whether pos sits in a _test.go file.
func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// leadingLiteral extracts the leading string literal of a panic argument:
// a plain literal, the left edge of a string concatenation, or the format
// string of fmt.Sprintf / fmt.Errorf.
func leadingLiteral(pass *analysis.Pass, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if x.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(x.Value)
		if err != nil {
			return "", false
		}
		return s, true
	case *ast.BinaryExpr:
		if x.Op != token.ADD {
			return "", false
		}
		return leadingLiteral(pass, x.X)
	case *ast.CallExpr:
		switch pass.FuncNameOf(x) {
		case "fmt.Sprintf", "fmt.Errorf", "fmt.Sprint", "fmt.Sprintln":
			if len(x.Args) > 0 {
				return leadingLiteral(pass, x.Args[0])
			}
		}
	}
	return "", false
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// inScope restricts the check to this module's internal/ and cmd/ trees
// (and fixture packages, by naming convention).
func inScope(pkgPath string) bool {
	for _, prefix := range []string{"partalloc/internal/", "partalloc/cmd/"} {
		if strings.HasPrefix(pkgPath, prefix) {
			return true
		}
	}
	return strings.Contains(pkgPath, "panicmsg_fixture")
}
