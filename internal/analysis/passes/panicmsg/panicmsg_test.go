package panicmsg_test

import (
	"testing"

	"partalloc/internal/analysis/analysistest"
	"partalloc/internal/analysis/passes/panicmsg"
)

func TestPanicmsg(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture type-checking shells out to go list")
	}
	analysistest.Run(t, panicmsg.Analyzer, analysistest.Fixture(t, "panicmsg_fixture"))
}
