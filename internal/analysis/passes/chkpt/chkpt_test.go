package chkpt_test

import (
	"testing"

	"partalloc/internal/analysis/analysistest"
	"partalloc/internal/analysis/passes/chkpt"
)

func TestChkpt(t *testing.T) {
	if testing.Short() {
		t.Skip("loads export data via go list")
	}
	analysistest.Run(t, chkpt.Analyzer, analysistest.Fixture(t, "chkpt_fixture"))
}
