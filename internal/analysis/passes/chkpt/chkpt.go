// Package chkpt guards the snapshot contract behind O(tail) recovery.
// Two rules, both cross-package:
//
//  1. Every Allocator implementation must also implement Checkpointable
//     (Snapshot/Restore). The engine's periodic checkpoints, the WAL
//     retention that compacts covered segments, and MoveTenant all
//     assert the interface at runtime; an allocator without it turns
//     into a crash the first time a snapshot cadence fires.
//
//  2. Restore must not retain its input slice. The caller owns the
//     snapshot buffer (the WAL reuses read buffers between records), so
//     an aliased byte slice becomes silent state corruption on the next
//     record. Retention is compositional: any function that stores a
//     []byte parameter into its receiver or a package variable exports a
//     Retains fact, and a Restore passing its input to such a function —
//     any number of packages away — is convicted with the chain.
package chkpt

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"partalloc/internal/analysis"
)

// Retains is the fact exported for a function that stores one of its
// []byte parameters somewhere that outlives the call (its receiver or a
// package variable), directly or through a callee.
type Retains struct {
	// Params holds the retained parameter indexes (flattened, ascending).
	Params []int
	// Reason is a short human-readable chain, one clause per index.
	Reason string
}

// AFact marks Retains as a fact type.
func (*Retains) AFact() {}

func (f *Retains) String() string { return "retains: " + f.Reason }

// Analyzer is the chkpt pass.
var Analyzer = &analysis.Analyzer{
	Name: "chkpt",
	Doc: "enforces the snapshot contract: every Allocator implements Checkpointable, " +
		"and Restore never retains its input slice — transitively, via Retains facts",
	Run:       run,
	FactTypes: []analysis.Fact{(*Retains)(nil)},
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	a := &analyzer{
		pass:  pass,
		local: make(map[*ast.FuncDecl]map[int]string),
		decls: make(map[*types.Func]*ast.FuncDecl),
	}
	a.computeFacts()
	a.checkCheckpointable()
	a.checkRestore()
	return nil
}

// inScope restricts the check to this module plus the chkpt fixtures.
func inScope(pkgPath string) bool {
	return pkgPath == "partalloc" || strings.HasPrefix(pkgPath, "partalloc/") ||
		strings.Contains(pkgPath, "chkpt_fixture")
}

type analyzer struct {
	pass *analysis.Pass
	// local caches, per function declaration, the retention reason for
	// each retained []byte parameter index ("" entries never stored).
	local map[*ast.FuncDecl]map[int]string
	// decls indexes declarations by their function object.
	decls map[*types.Func]*ast.FuncDecl
}

// byteSliceParams maps each []byte parameter object of fd to its
// flattened parameter index.
func (a *analyzer) byteSliceParams(fd *ast.FuncDecl) map[types.Object]int {
	if fd.Type.Params == nil {
		return nil
	}
	out := make(map[types.Object]int)
	idx := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			idx++ // unnamed parameter still occupies an index
			continue
		}
		for _, name := range field.Names {
			obj := a.pass.TypesInfo.Defs[name]
			if obj != nil && isByteSlice(obj.Type()) {
				out[obj] = idx
			}
			idx++
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// computeFacts finds each function's retained parameters, iterating to a
// fixpoint so same-package call chains resolve regardless of declaration
// order, then exports Retains facts.
func (a *analyzer) computeFacts() {
	var fns []*ast.FuncDecl
	a.pass.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		fns = append(fns, fd)
		if obj, ok := a.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			a.decls[obj] = fd
		}
	})
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			for obj, idx := range a.byteSliceParams(fd) {
				if a.local[fd][idx] != "" {
					continue
				}
				if reason := a.retainReason(fd, obj); reason != "" {
					if a.local[fd] == nil {
						a.local[fd] = make(map[int]string)
					}
					a.local[fd][idx] = reason
					changed = true
				}
			}
		}
	}
	for fd, m := range a.local {
		obj, ok := a.pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok || len(m) == 0 {
			continue
		}
		idxs := make([]int, 0, len(m))
		for i := range m {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		clauses := make([]string, len(idxs))
		for i, p := range idxs {
			clauses[i] = fmt.Sprintf("param %d %s", p, m[p])
		}
		_ = a.pass.ExportObjectFact(obj, &Retains{Params: idxs, Reason: strings.Join(clauses, "; ")})
	}
}

// retainReason scans fd's body for the first place param escapes the
// call (stored into the receiver or a package variable, or handed to a
// callee that retains that position) and describes it, or returns "".
func (a *analyzer) retainReason(fd *ast.FuncDecl, param types.Object) string {
	recv := a.receiverObject(fd)
	reason := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if reason != "" || n == nil {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				if !a.aliasesParam(rhs, param) {
					continue
				}
				if target := a.escapingTarget(st.Lhs[i], recv); target != "" {
					reason = "stored in " + target
					return false
				}
			}
		case *ast.CallExpr:
			if r := a.callRetains(st, param); r != "" {
				reason = r
				return false
			}
		}
		return true
	})
	return reason
}

// receiverObject returns fd's receiver variable, or nil for plain funcs.
func (a *analyzer) receiverObject(fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return a.pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// aliasesParam reports whether e evaluates to a view of param's backing
// array: the parameter itself or any re-slice of it.
func (a *analyzer) aliasesParam(e ast.Expr, param types.Object) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return a.pass.TypesInfo.Uses[x] == param
		case *ast.SliceExpr:
			e = x.X
		default:
			return false
		}
	}
}

// escapingTarget reports where an assignment target outlives the call:
// "receiver field x" or "package variable p.V", or "" for locals.
func (a *analyzer) escapingTarget(lhs ast.Expr, recv types.Object) string {
	e := lhs
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			// Qualified package variable (pkg.Var) resolves on Sel.
			if obj := a.pass.TypesInfo.Uses[x.Sel]; obj != nil && isPackageVar(obj) {
				return "package variable " + obj.Pkg().Name() + "." + obj.Name()
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := a.pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = a.pass.TypesInfo.Defs[x]
			}
			switch {
			case obj == nil:
				return ""
			case recv != nil && obj == recv:
				return "receiver field"
			case isPackageVar(obj):
				return "package variable " + obj.Pkg().Name() + "." + obj.Name()
			}
			return ""
		default:
			return ""
		}
	}
}

func isPackageVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// callRetains reports why handing param to this call retains it, or "".
func (a *analyzer) callRetains(call *ast.CallExpr, param types.Object) string {
	fn, ok := calleeObject(a.pass, call)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	for argPos, arg := range call.Args {
		if !a.aliasesParam(arg, param) {
			continue
		}
		if reason := a.calleeRetains(fn, argPos); reason != "" {
			return shortName(fn) + " (" + truncate(reason) + ")"
		}
	}
	return ""
}

// calleeRetains resolves whether fn retains its argPos-th parameter —
// through the same-package fixpoint cache or an imported Retains fact.
func (a *analyzer) calleeRetains(fn *types.Func, argPos int) string {
	if fn.Pkg() == a.pass.Pkg {
		if fd, ok := a.decls[fn]; ok {
			return a.local[fd][argPos]
		}
		return ""
	}
	var fact Retains
	if !a.pass.ImportObjectFact(fn, &fact) {
		return ""
	}
	for _, p := range fact.Params {
		if p == argPos {
			return fact.Reason
		}
	}
	return ""
}

// ---- interface checks ----

// checkCheckpointable reports every concrete Allocator implementation
// that does not also implement Checkpointable.
func (a *analyzer) checkCheckpointable() {
	allocs := a.ifacesNamed("Allocator")
	ckpts := a.ifacesNamed("Checkpointable")
	if len(allocs) == 0 || len(ckpts) == 0 {
		return
	}
	scope := a.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		// Test doubles (panicking, stalling, lying allocators) are exempt:
		// they exist to violate contracts, and none is ever journaled.
		if f := a.pass.Fset.File(tn.Pos()); f != nil && strings.HasSuffix(f.Name(), "_test.go") {
			continue
		}
		if implementsAny(named, allocs) && !implementsAny(named, ckpts) {
			a.pass.Reportf(tn.Pos(),
				"allocator %s.%s does not implement Checkpointable — engine snapshots, WAL compaction and MoveTenant all require Snapshot/Restore on every allocator",
				a.pass.Pkg.Name(), tn.Name())
		}
	}
}

// checkRestore reports Restore methods of Checkpointable implementations
// that retain their input slice.
func (a *analyzer) checkRestore() {
	ckpts := a.ifacesNamed("Checkpointable")
	if len(ckpts) == 0 {
		return
	}
	scope := a.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || !implementsAny(named, ckpts) {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Name() != "Restore" || m.Pkg() != a.pass.Pkg {
				continue
			}
			fd, ok := a.decls[m]
			if !ok {
				continue
			}
			if reason := a.local[fd][0]; reason != "" {
				a.pass.Reportf(m.Pos(),
					"%s retains its input: %s — the snapshot buffer belongs to the caller and may be reused; copy the bytes you keep",
					shortName(m), truncate(reason))
			}
		}
	}
}

// ifacesNamed collects every non-empty interface with the given name
// defined in this package or an in-scope import.
func (a *analyzer) ifacesNamed(name string) []*types.Interface {
	var out []*types.Interface
	add := func(pkg *types.Package) {
		if pkg == nil || !inScope(pkg.Path()) {
			return
		}
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			return
		}
		if iface, ok := tn.Type().Underlying().(*types.Interface); ok && !iface.Empty() {
			out = append(out, iface)
		}
	}
	add(a.pass.Pkg)
	for _, imp := range a.pass.Pkg.Imports() {
		add(imp)
	}
	return out
}

func implementsAny(named *types.Named, ifaces []*types.Interface) bool {
	ptr := types.NewPointer(named)
	for _, iface := range ifaces {
		if types.Implements(named, iface) || types.Implements(ptr, iface) {
			return true
		}
	}
	return false
}

// ---- small helpers ----

// calleeObject resolves the called *types.Func.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return fn, ok
}

// shortName renders a function as "pkg.Func" or "pkg.Type.Method".
func shortName(fn *types.Func) string {
	s := strings.NewReplacer("(", "", ")", "", "*", "").Replace(fn.FullName())
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// truncate keeps nested reason chains readable.
func truncate(s string) string {
	if len(s) > 80 {
		return s[:77] + "..."
	}
	return s
}
