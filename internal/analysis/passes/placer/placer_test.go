package placer_test

import (
	"testing"

	"partalloc/internal/analysis/analysistest"
	"partalloc/internal/analysis/passes/placer"
)

func TestPlacer(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture type-checking shells out to go list")
	}
	analysistest.Run(t, placer.Analyzer, analysistest.Fixture(t, "placer_fixture"))
}
