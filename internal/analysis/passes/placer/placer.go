// Package placer keeps tenant routing behind the engine's placement
// layer.
//
// PR 9 made tenant→shard routing dynamic: a rebalance pass can rewrite
// any tenant's route between two batches, so the only correct way to
// reach a tenant's shard is through the Placer (route/shardAt/shardFor
// in placement.go), which reads the mutable routing table. Code that
// indexes e.shards[...] directly with its own arithmetic, or re-derives
// a route by fnv-hashing the tenant ID, resurrects the pre-placement
// wiring: it is right until the first move, then silently reads or
// locks the wrong stripe. placer flags both outside placement.go. The
// fnv check targets New32a alone — fnv-32a over the tenant ID is the
// routing hash; other fnv widths (the overload path fingerprints queue
// snapshots with New64a) are not routes.
package placer

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"

	"partalloc/internal/analysis"
)

// Analyzer is the placer pass.
var Analyzer = &analysis.Analyzer{
	Name: "placer",
	Doc: "flags direct e.shards[...] indexing and fnv.New32a tenant-hashing in the engine " +
		"outside placement.go; routes are dynamic (a rebalance pass may rewrite them at any " +
		"batch boundary), so shard access must go through the placement layer " +
		"(route/shardAt/shardFor)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	pass.Preorder([]ast.Node{(*ast.IndexExpr)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		// The placement layer itself, and tests (which probe stripes
		// directly on purpose), are exempt.
		if inPlacementLayer(pass, n.Pos()) || pass.InTestFile(n.Pos()) {
			return
		}
		switch n := n.(type) {
		case *ast.IndexExpr:
			sel, ok := n.X.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "shards" {
				return
			}
			pass.Reportf(n.Pos(),
				"direct shards[...] indexing bypasses the placement layer; routes are dynamic "+
					"(a rebalance pass may rewrite them between batches) — go through "+
					"route/shardAt/shardFor in placement.go")
		case *ast.CallExpr:
			if pass.FuncNameOf(n) != "hash/fnv.New32a" {
				return
			}
			pass.Reportf(n.Pos(),
				"fnv.New32a re-derives a tenant route the placer may have moved away from; "+
					"hashShard in placement.go is the single tenant-hashing site — "+
					"look routes up through the Placer instead")
		}
	})
	return nil
}

// inPlacementLayer reports whether pos sits in placement.go — the one
// file allowed to index stripes and hash tenant IDs.
func inPlacementLayer(pass *analysis.Pass, pos token.Pos) bool {
	return filepath.Base(pass.Fset.Position(pos).Filename) == "placement.go"
}

// inScope restricts the check to the engine package, where the shard
// stripes and the routing hash live. Other packages never see e.shards,
// and fnv use elsewhere (checksums, fingerprints) has nothing to do
// with routing.
func inScope(pkgPath string) bool {
	// Fixture packages opt in by naming convention so the analyzer is
	// testable outside the real module tree.
	if strings.Contains(pkgPath, "placer_fixture") {
		return true
	}
	return pkgPath == "partalloc/internal/engine"
}
