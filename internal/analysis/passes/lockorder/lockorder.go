// Package lockorder enforces the mutex discipline the sharded engine's
// throughput argument rests on: shard and ledger mutexes are held for
// short, CPU-bound critical sections only.
//
// Three families of findings:
//
//   - a sync lock (Mutex, RWMutex, WaitGroup, Cond, Once) copied by value
//     — parameters, assignments, call arguments, returns, range values;
//   - Lock without a matching Unlock: a return while a mutex is held with
//     no deferred unlock, a re-Lock of an already-held mutex, or a
//     function that locks and never unlocks at all;
//   - a blocking (goroutine-parking) operation while a mutex is held:
//     channel sends/receives, selects without default, time.Sleep,
//     WaitGroup.Wait, Cond.Wait, file I/O — and, through cross-package
//     Blocks facts, any call whose callee transitively does one of those
//     (parallel.RunCells parks on its WaitGroup, cli.SaveCheckpoint
//     writes files, ...).
//
// The facts make the third check compositional: when the engine package
// is analyzed, the analyzer already knows which helpers in parallel, cli,
// and the allocator layers may park, without whole-program analysis.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"partalloc/internal/analysis"
)

// Blocks is the fact exported for a function that may park the calling
// goroutine (directly or via a callee). Reason is a short human-readable
// chain for diagnostics.
type Blocks struct {
	Reason string
}

// AFact marks Blocks as a fact type.
func (*Blocks) AFact() {}

func (f *Blocks) String() string { return "blocks: " + f.Reason }

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "forbids lock copies, missed unlocks on return paths, and blocking calls " +
		"(channel ops, waits, file I/O — transitively, via Blocks facts) while a mutex is held",
	Run:       run,
	FactTypes: []analysis.Fact{(*Blocks)(nil)},
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	a := &analyzer{pass: pass, closures: make(map[types.Object]*ast.FuncLit)}
	a.indexClosures()
	a.computeFacts()
	a.checkCopies()
	for _, fn := range a.functions() {
		a.checkHeldRegions(fn)
	}
	return nil
}

// inScope restricts the check to this module plus the lockorder fixtures.
func inScope(pkgPath string) bool {
	return pkgPath == "partalloc" || strings.HasPrefix(pkgPath, "partalloc/") ||
		strings.Contains(pkgPath, "lockorder_fixture")
}

type analyzer struct {
	pass *analysis.Pass
	// closures maps a local variable to the function literal assigned to
	// it, so `saveLocked()` resolves to its body for blocking analysis.
	closures map[types.Object]*ast.FuncLit
	// local caches the blocking reason of this package's functions and
	// closures during the fixpoint ("" = not blocking).
	local map[ast.Node]string
}

// indexClosures records `f := func(...){...}` bindings (and var f = ...).
func (a *analyzer) indexClosures() {
	a.pass.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.ValueSpec)(nil)}, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return
			}
			for i, rhs := range st.Rhs {
				if lit, ok := rhs.(*ast.FuncLit); ok {
					if id, ok := st.Lhs[i].(*ast.Ident); ok {
						if obj := a.pass.TypesInfo.Defs[id]; obj != nil {
							a.closures[obj] = lit
						} else if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
							a.closures[obj] = lit
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range st.Values {
				if lit, ok := rhs.(*ast.FuncLit); ok && i < len(st.Names) {
					if obj := a.pass.TypesInfo.Defs[st.Names[i]]; obj != nil {
						a.closures[obj] = lit
					}
				}
			}
		}
	})
}

// functions returns every function declaration and standalone function
// literal in the package, each analyzed as an independent scope.
func (a *analyzer) functions() []ast.Node {
	var out []ast.Node
	a.pass.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		if fd, ok := n.(*ast.FuncDecl); ok && fd.Body == nil {
			return
		}
		out = append(out, n)
	})
	return out
}

// computeFacts finds each declared function's blocking reason, iterating
// to a fixpoint so same-package call chains resolve regardless of
// declaration order, then exports Blocks facts for other packages.
func (a *analyzer) computeFacts() {
	a.local = make(map[ast.Node]string)
	fns := a.functions()
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if a.local[fn] != "" {
				continue
			}
			if reason := a.blockingReason(body(fn), 0); reason != "" {
				a.local[fn] = reason
				changed = true
			}
		}
	}
	for _, fn := range fns {
		fd, ok := fn.(*ast.FuncDecl)
		if !ok || a.local[fn] == "" {
			continue
		}
		obj := a.pass.TypesInfo.Defs[fd.Name]
		if obj == nil {
			continue
		}
		// Unsupported shapes (generic instantiations of local types) are
		// simply not exported; same-package analysis already has a.local.
		_ = a.pass.ExportObjectFact(obj, &Blocks{Reason: a.local[fn]})
	}
}

func body(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}

// maxBlockDepth bounds closure-chain recursion in blockingReason.
const maxBlockDepth = 8

// blockingReason scans a function body (skipping nested function
// literals and goroutine launches) for the first goroutine-parking
// operation and returns a short description, or "".
func (a *analyzer) blockingReason(block *ast.BlockStmt, depth int) string {
	if block == nil || depth > maxBlockDepth {
		return ""
	}
	reason := ""
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if reason != "" || n == nil {
			return false
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			return false // separate scope; blocks only if called, handled at call sites
		case *ast.GoStmt:
			return false // launching a goroutine never parks the launcher
		case *ast.SendStmt:
			reason = "channel send"
			return false
		case *ast.UnaryExpr:
			if st.Op == token.ARROW {
				reason = "channel receive"
				return false
			}
		case *ast.RangeStmt:
			if _, ok := a.pass.TypesInfo.Types[st.X].Type.Underlying().(*types.Chan); ok {
				reason = "range over channel"
				return false
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range st.Body.List {
				if cl.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				reason = "select without default"
				return false
			}
			// Non-blocking select: scan only the clause bodies (the comm
			// operations themselves cannot park).
			for _, cl := range st.Body.List {
				for _, s := range cl.(*ast.CommClause).Body {
					ast.Inspect(s, walk)
				}
			}
			return false
		case *ast.CallExpr:
			if r := a.callBlocks(st, depth); r != "" {
				reason = r
				return false
			}
		}
		return true
	}
	ast.Inspect(block, walk)
	return reason
}

// blockingStdlib maps fully qualified callees to their parking reason.
var blockingStdlib = map[string]string{
	"time.Sleep":                  "time.Sleep",
	"(*sync.WaitGroup).Wait":      "WaitGroup.Wait",
	"(*sync.Cond).Wait":           "Cond.Wait",
	"os.ReadFile":                 "file I/O",
	"os.WriteFile":                "file I/O",
	"os.Open":                     "file I/O",
	"os.OpenFile":                 "file I/O",
	"os.Create":                   "file I/O",
	"os.CreateTemp":               "file I/O",
	"os.Remove":                   "file I/O",
	"os.RemoveAll":                "file I/O",
	"os.Rename":                   "file I/O",
	"os.MkdirAll":                 "file I/O",
	"os.ReadDir":                  "file I/O",
	"(*os.File).Read":             "file I/O",
	"(*os.File).Write":            "file I/O",
	"(*os.File).Close":            "file I/O",
	"(*os.File).Sync":             "file I/O",
	"(*os/exec.Cmd).Run":          "subprocess wait",
	"(*os/exec.Cmd).Wait":         "subprocess wait",
	"(*os/exec.Cmd).Output":       "subprocess wait",
	"(*os/exec.Cmd).CombinedOutput": "subprocess wait",
}

// callBlocks reports why a call expression may park, or "".
func (a *analyzer) callBlocks(call *ast.CallExpr, depth int) string {
	// Local closure called by name: analyze its literal's body.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
			if lit, ok := a.closures[obj]; ok {
				if r := a.blockingReason(lit.Body, depth+1); r != "" {
					return "calls " + id.Name + " (" + r + ")"
				}
				return ""
			}
		}
	}
	name := a.pass.FuncNameOf(call)
	if name == "" {
		return ""
	}
	if r, ok := blockingStdlib[name]; ok {
		if r == "file I/O" || r == "subprocess wait" {
			return r + " (" + shortCallee(name) + ")"
		}
		return r
	}
	fn, ok := calleeObject(a.pass, call)
	if !ok {
		return ""
	}
	// Same-package functions resolve through the fixpoint cache; imported
	// ones through their exported Blocks fact.
	if fn.Pkg() == a.pass.Pkg {
		for node, reason := range a.local {
			if fd, ok := node.(*ast.FuncDecl); ok && a.pass.TypesInfo.Defs[fd.Name] == fn && reason != "" {
				return "calls " + shortCallee(name) + " (" + truncate(reason) + ")"
			}
		}
		return ""
	}
	var fact Blocks
	if a.pass.ImportObjectFact(fn, &fact) {
		return "calls " + shortCallee(name) + " (" + truncate(fact.Reason) + ")"
	}
	return ""
}

// calleeObject resolves the called *types.Func, like FuncNameOf but
// returning the object.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return fn, ok
}

// shortCallee strips the package path, keeping "pkg.Func" / "Type.Method".
func shortCallee(full string) string {
	s := strings.TrimPrefix(strings.TrimSuffix(strings.TrimPrefix(full, "("), ")"), "*")
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// truncate keeps nested reason chains readable.
func truncate(s string) string {
	if len(s) > 80 {
		return s[:77] + "..."
	}
	return s
}

// ---- held-region analysis ----

// lockEvent is one lexical event inside a function body.
type lockEvent struct {
	pos  token.Pos
	kind int // eLock, eUnlock, eDeferUnlock, eBlocking, eReturn
	expr string
	what string // blocking reason
}

const (
	eLock = iota
	eUnlock
	eDeferUnlock
	eBlocking
	eReturn
)

// lockMethods classifies sync lock method names.
var lockMethods = map[string]int{
	"Lock": eLock, "RLock": eLock,
	"Unlock": eUnlock, "RUnlock": eUnlock,
}

// checkHeldRegions walks one function scope lexically, tracking which
// mutexes are held, and reports blocking operations and returns inside
// held regions plus locks that are never released.
func (a *analyzer) checkHeldRegions(fn ast.Node) {
	block := body(fn)
	if block == nil {
		return
	}
	var events []lockEvent
	var collect func(n ast.Node) bool
	collect = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			if st != fn {
				return false // nested scopes analyzed independently
			}
		case *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			if expr, kind, ok := a.lockCall(st.Call); ok && kind == eUnlock {
				events = append(events, lockEvent{pos: st.Pos(), kind: eDeferUnlock, expr: expr})
				return false
			}
		case *ast.ReturnStmt:
			events = append(events, lockEvent{pos: st.Pos(), kind: eReturn})
		case *ast.SendStmt:
			events = append(events, lockEvent{pos: st.Pos(), kind: eBlocking, what: "channel send"})
		case *ast.UnaryExpr:
			if st.Op == token.ARROW {
				events = append(events, lockEvent{pos: st.Pos(), kind: eBlocking, what: "channel receive"})
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range st.Body.List {
				if cl.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				events = append(events, lockEvent{pos: st.Pos(), kind: eBlocking, what: "select without default"})
			}
			for _, cl := range st.Body.List {
				for _, s := range cl.(*ast.CommClause).Body {
					ast.Inspect(s, collect)
				}
			}
			return false
		case *ast.RangeStmt:
			if tv, ok := a.pass.TypesInfo.Types[st.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					events = append(events, lockEvent{pos: st.Pos(), kind: eBlocking, what: "range over channel"})
				}
			}
		case *ast.CallExpr:
			if expr, kind, ok := a.lockCall(st); ok {
				events = append(events, lockEvent{pos: st.Pos(), kind: kind, expr: expr})
				return true
			}
			if r := a.callBlocks(st, 0); r != "" {
				events = append(events, lockEvent{pos: st.Pos(), kind: eBlocking, what: r})
			}
		}
		return true
	}
	ast.Inspect(block, collect)

	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	type heldLock struct {
		pos      token.Pos
		deferred bool
		released bool
	}
	held := make(map[string]*heldLock)
	anyHeld := func() (string, bool) {
		// Deterministic pick for the diagnostic message.
		var names []string
		for name, h := range held {
			if !h.released {
				names = append(names, name)
			}
		}
		if len(names) == 0 {
			return "", false
		}
		sort.Strings(names)
		return names[0], true
	}
	for _, ev := range events {
		switch ev.kind {
		case eLock:
			if h, ok := held[ev.expr]; ok && !h.released {
				a.pass.Reportf(ev.pos, "%s locked again while already held (deadlock)", ev.expr)
				continue
			}
			held[ev.expr] = &heldLock{pos: ev.pos}
		case eDeferUnlock:
			if h, ok := held[ev.expr]; ok {
				h.deferred = true
			} else {
				// defer before the Lock (idiomatic only in the reverse
				// order, but harmless): treat as covering a later lock.
				held[ev.expr] = &heldLock{pos: ev.pos, deferred: true, released: true}
			}
		case eUnlock:
			if h, ok := held[ev.expr]; ok {
				h.released = true
			}
		case eBlocking:
			if name, ok := anyHeld(); ok {
				a.pass.Reportf(ev.pos, "blocking operation (%s) while %s is held", ev.what, name)
			}
		case eReturn:
			for name, h := range held {
				if !h.released && !h.deferred {
					a.pass.Reportf(ev.pos, "return while %s is held (no deferred Unlock on this path)", name)
					h.released = true // one report per lock
				}
			}
		}
	}
	for name, h := range held {
		if !h.released && !h.deferred {
			a.pass.Reportf(h.pos, "%s.Lock without a matching Unlock in this function", name)
		}
	}
}

// lockCall classifies a call as Lock/Unlock on a sync primitive and
// returns the receiver's source expression.
func (a *analyzer) lockCall(call *ast.CallExpr) (expr string, kind int, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	kind, isLockName := lockMethods[sel.Sel.Name]
	if !isLockName {
		return "", 0, false
	}
	fn, isFn := a.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", 0, false
	}
	full := fn.FullName()
	if !strings.Contains(full, "sync.Mutex") && !strings.Contains(full, "sync.RWMutex") &&
		!strings.Contains(full, "sync.Locker") {
		return "", 0, false
	}
	return types.ExprString(sel.X), kind, true
}

// ---- lock-copy analysis ----

// checkCopies flags sync primitives copied by value.
func (a *analyzer) checkCopies() {
	info := a.pass.TypesInfo
	reportIfCopy := func(e ast.Expr, what string) {
		if e == nil {
			return
		}
		switch ast.Unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			return // fresh values (composite literals, calls) carry no held state
		}
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return
		}
		if name := lockerIn(tv.Type); name != "" {
			a.pass.Reportf(e.Pos(), "%s copies %s by value; use a pointer", what, name)
		}
	}

	a.pass.Preorder([]ast.Node{
		(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil),
		(*ast.AssignStmt)(nil), (*ast.CallExpr)(nil),
		(*ast.ReturnStmt)(nil), (*ast.RangeStmt)(nil),
	}, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.FuncDecl:
			a.checkFuncSig(st.Recv, st.Type)
		case *ast.FuncLit:
			a.checkFuncSig(nil, st.Type)
		case *ast.AssignStmt:
			if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
				return // multi-value call; covered at the callee's returns
			}
			for i, rhs := range st.Rhs {
				// Discarding to _ stores nothing, so nothing is copied.
				if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				reportIfCopy(rhs, "assignment")
			}
		case *ast.CallExpr:
			if _, _, isLock := a.lockCall(st); isLock {
				return
			}
			for _, arg := range st.Args {
				reportIfCopy(arg, "call argument")
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				reportIfCopy(res, "return")
			}
		case *ast.RangeStmt:
			if st.Value != nil {
				if tv, ok := info.Types[st.Value]; ok && tv.Type != nil {
					if name := lockerIn(tv.Type); name != "" {
						a.pass.Reportf(st.Value.Pos(), "range value copies %s by value; iterate by index or pointer", name)
					}
				}
			}
		}
	})
}

// checkFuncSig flags lock-containing value parameters, receivers, and
// results in a function signature.
func (a *analyzer) checkFuncSig(recv *ast.FieldList, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			tv, ok := a.pass.TypesInfo.Types[f.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if name := lockerIn(tv.Type); name != "" {
				a.pass.Reportf(f.Type.Pos(), "%s passes %s by value; use a pointer", what, name)
			}
		}
	}
	check(recv, "receiver")
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// lockerIn reports the name of the sync primitive contained by value in
// t, or "". Pointers, maps, slices, and channels do not copy their
// referents, so they pass.
func lockerIn(t types.Type) string {
	return lockerInDepth(t, make(map[types.Type]bool))
}

func lockerInDepth(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once":
				return "sync." + obj.Name()
			}
			return "" // other sync types (Map, Pool) manage their own state
		}
		if name := lockerInDepth(named.Underlying(), seen); name != "" {
			return name
		}
		return ""
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockerInDepth(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockerInDepth(u.Elem(), seen)
	}
	return ""
}
