package lockorder_test

import (
	"testing"

	"partalloc/internal/analysis/analysistest"
	"partalloc/internal/analysis/passes/lockorder"
)

func TestLockOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("loads export data via go list")
	}
	analysistest.Run(t, lockorder.Analyzer, analysistest.Fixture(t, "lockorder_fixture"))
}
