package obsbless_test

import (
	"testing"

	"partalloc/internal/analysis/analysistest"
	"partalloc/internal/analysis/passes/obsbless"
)

func TestObsbless(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture type-checking shells out to go list")
	}
	analysistest.Run(t, obsbless.Analyzer, analysistest.Fixture(t, "obsbless_fixture"))
}
