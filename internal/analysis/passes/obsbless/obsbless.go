// Package obsbless keeps observability wiring behind the engine facade.
//
// The metrics registry, flight recorder, and Sink in internal/obs are
// deliberately constructed in exactly one place: the partalloc facade's
// EngineOptions (WithMetrics, WithFlightRecorder), which hand a fully
// wired *obs.Sink to the engine. A stray obs.NewMetrics or obs.NewSink
// call elsewhere mints a second registry the /metrics endpoint never
// sees — series silently land in a shadow registry and dashboards read
// zeros. obsbless flags direct construction outside the blessed
// packages and points at the facade options. Test files are exempt:
// they wire private registries on purpose to assert counter values.
package obsbless

import (
	"go/ast"
	"go/token"
	"strings"

	"partalloc/internal/analysis"
)

// Analyzer is the obsbless pass.
var Analyzer = &analysis.Analyzer{
	Name: "obsbless",
	Doc: "flags direct internal/obs registry construction (obs.NewMetrics/NewFlightRecorder/NewSink) " +
		"outside the partalloc facade and the engine; wire observability through " +
		"partalloc.NewMetrics + WithMetrics/WithFlightRecorder so every series lands in the " +
		"registry that /metrics serves",
	Run: run,
}

// constructors are the partalloc/internal/obs entry points that mint a
// registry, recorder, or sink.
var constructors = map[string]string{
	"partalloc/internal/obs.NewMetrics":        "NewMetrics",
	"partalloc/internal/obs.NewFlightRecorder": "NewFlightRecorder",
	"partalloc/internal/obs.NewSink":           "NewSink",
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	pass.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		short, ok := constructors[pass.FuncNameOf(call)]
		if !ok {
			return
		}
		// Tests construct private registries on purpose, to assert exact
		// counter values without cross-test interference.
		if isTestFile(pass, call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(),
			"direct obs.%s builds a shadow registry the /metrics endpoint never serves; "+
				"construct observability through the partalloc facade "+
				"(partalloc.NewMetrics, WithMetrics, WithFlightRecorder)", short)
	})
	return nil
}

// isTestFile reports whether pos sits in a _test.go file.
func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// inScope restricts the check to this module's internal/ and cmd/ trees,
// excluding the packages blessed to construct observability state: the
// obs package itself, the engine that consumes the wired Sink, and the
// facade whose options are the public constructors.
func inScope(pkgPath string) bool {
	// Fixture packages opt in by naming convention so the analyzer is
	// testable outside the real module tree.
	if strings.Contains(pkgPath, "obsbless_fixture") {
		return true
	}
	switch pkgPath {
	case "partalloc", "partalloc/internal/obs", "partalloc/internal/engine":
		return false
	}
	for _, prefix := range []string{"partalloc/internal/", "partalloc/cmd/"} {
		if strings.HasPrefix(pkgPath, prefix) {
			return true
		}
	}
	return false
}
