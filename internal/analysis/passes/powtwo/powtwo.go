// Package powtwo flags compile-time constant arguments to size-typed
// parameters that are not powers of two.
//
// The paper's machine model (§2) is built on powers of two: the machine
// has N = 2^L PEs, every task requests a power-of-two submachine, and
// submachines of size 2^x are exactly the depth-(L-x) subtrees. Every
// size-accepting API in this repo panics at runtime on a non-power —
// powtwo moves that failure to lint time for the cases the compiler can
// already see. Non-constant arguments are never flagged: the analyzer only
// reports values it can prove wrong, so it stays false-positive-free.
package powtwo

import (
	"go/ast"

	"partalloc/internal/analysis"
)

// Analyzer is the powtwo pass.
var Analyzer = &analysis.Analyzer{
	Name: "powtwo",
	Doc: "flags constant non-power-of-two arguments to size-typed parameters " +
		"(machine sizes, task sizes, submachine sizes)",
	Run: run,
}

// sizeParams maps fully qualified function names (types.Func.FullName
// form) to the indices of their power-of-two-sized parameters.
var sizeParams = map[string][]int{
	// Machine construction and submachine geometry.
	"partalloc/internal/tree.New":                       {0},
	"partalloc/internal/tree.MustNew":                   {0},
	"(*partalloc/internal/tree.Machine).DepthForSize":   {0},
	"(*partalloc/internal/tree.Machine).NumSubmachines": {0},
	"(*partalloc/internal/tree.Machine).SubmachineAt":   {0},
	"(*partalloc/internal/tree.Machine).Submachines":    {0},
	// Task sizes.
	"(*partalloc/internal/task.Builder).Arrive": {0},
	// Copy-of-T placement.
	"(*partalloc/internal/copies.Copy).FindVacant": {0},
	"(*partalloc/internal/copies.List).Place":      {0},
	// Load-tree queries.
	"(*partalloc/internal/loadtree.Tree).LeftmostMinLoad": {0},
	// Hypercube variant: subcube side lengths are powers of two as well.
	"(*partalloc/internal/subcube.Cube).Find":      {0},
	"(*partalloc/internal/subcube.Cube).CountFree": {0},
}

func run(pass *analysis.Pass) error {
	pass.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		params, ok := sizeParams[pass.FuncNameOf(call)]
		if !ok {
			return
		}
		for _, idx := range params {
			if idx >= len(call.Args) {
				continue
			}
			arg := call.Args[idx]
			v, isConst := pass.ConstIntValue(arg)
			if !isConst {
				continue // can't prove anything about run-time values
			}
			if v < 1 || v&(v-1) != 0 {
				pass.Reportf(arg.Pos(),
					"size argument %d is not a power of two (submachines are complete subtrees; see tree.Machine)", v)
			}
		}
	})
	return nil
}
