package powtwo_test

import (
	"testing"

	"partalloc/internal/analysis/analysistest"
	"partalloc/internal/analysis/passes/powtwo"
)

func TestPowtwo(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture type-checking shells out to go list")
	}
	analysistest.Run(t, powtwo.Analyzer, analysistest.Fixture(t, "powtwo"))
}
