// Package passes registers the project's analyzers. cmd/partlint, the
// Makefile lint target, and the self-lint test all consume this single
// list, so adding an analyzer here enrolls it everywhere at once.
package passes

import (
	"partalloc/internal/analysis"
	"partalloc/internal/analysis/passes/chkpt"
	"partalloc/internal/analysis/passes/ctxflow"
	"partalloc/internal/analysis/passes/detorder"
	"partalloc/internal/analysis/passes/errwrapped"
	"partalloc/internal/analysis/passes/hosttopo"
	"partalloc/internal/analysis/passes/loadmutation"
	"partalloc/internal/analysis/passes/lockorder"
	"partalloc/internal/analysis/passes/obsbless"
	"partalloc/internal/analysis/passes/panicmsg"
	"partalloc/internal/analysis/passes/placer"
	"partalloc/internal/analysis/passes/powtwo"
	"partalloc/internal/analysis/passes/purealloc"
	"partalloc/internal/analysis/passes/seedrand"
)

// All returns every registered analyzer, in stable name order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		chkpt.Analyzer,
		ctxflow.Analyzer,
		detorder.Analyzer,
		errwrapped.Analyzer,
		hosttopo.Analyzer,
		loadmutation.Analyzer,
		lockorder.Analyzer,
		obsbless.Analyzer,
		panicmsg.Analyzer,
		placer.Analyzer,
		powtwo.Analyzer,
		purealloc.Analyzer,
		seedrand.Analyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
