// Package seedrand forbids the global math/rand generator under internal/
// and cmd/.
//
// Every experiment in this repo is keyed by an explicit seed so that any
// table, golden file, or adversarial counterexample can be reproduced
// bit-for-bit from its command line (EXPERIMENTS.md). A single call to
// rand.Intn — which draws from the process-global, potentially
// auto-seeded source — breaks that property invisibly. seedrand requires
// all randomness to flow through an injected *rand.Rand built with
// rand.New(rand.NewSource(seed)); constructing sources is allowed, using
// the global source is not.
package seedrand

import (
	"go/ast"
	"go/types"
	"strings"

	"partalloc/internal/analysis"
)

// Analyzer is the seedrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "seedrand",
	Doc: "forbids the global math/rand source (rand.Intn etc.) in internal/ and cmd/; " +
		"inject a seeded *rand.Rand instead",
	Run: run,
}

// allowed are the package-level math/rand names that do not touch the
// global source: constructors for injectable generators.
var allowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	pass.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		path := fn.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			return // method on an injected *rand.Rand / Source — fine
		}
		if allowed[fn.Name()] {
			return
		}
		pass.Reportf(sel.Pos(),
			"global math/rand source via rand.%s breaks run reproducibility; inject a *rand.Rand seeded with rand.NewSource",
			fn.Name())
	})
	return nil
}

// inScope restricts the check to this module's internal/ and cmd/ trees.
func inScope(pkgPath string) bool {
	for _, prefix := range []string{"partalloc/internal/", "partalloc/cmd/"} {
		if strings.HasPrefix(pkgPath, prefix) {
			return true
		}
	}
	// Fixture packages opt in by naming convention so the analyzer is
	// testable outside the real module tree.
	return strings.Contains(pkgPath, "seedrand_fixture")
}
