package seedrand_test

import (
	"testing"

	"partalloc/internal/analysis/analysistest"
	"partalloc/internal/analysis/passes/seedrand"
)

func TestSeedrand(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture type-checking shells out to go list")
	}
	analysistest.Run(t, seedrand.Analyzer, analysistest.Fixture(t, "seedrand_fixture"))
}
