package detorder_test

import (
	"testing"

	"partalloc/internal/analysis/analysistest"
	"partalloc/internal/analysis/passes/detorder"
)

func TestDetorder(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture type-checking shells out to go list")
	}
	analysistest.Run(t, detorder.Analyzer, analysistest.Fixture(t, "detorder"))
}
