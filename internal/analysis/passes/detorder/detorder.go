// Package detorder flags map iteration that feeds order-sensitive sinks.
//
// Go randomizes map iteration order on purpose. Everything this repo
// publishes — report tables, golden experiment files, trace dumps,
// parallel.Map result slices — is compared byte-for-byte across runs and
// platforms (the golden tests exist precisely to catch behavioral drift),
// so a `for k := range m` whose body appends to an output slice or writes
// to a stream is a latent nondeterminism bug even when today's consumers
// happen to sort. The mechanical fix — collect the keys, sort, range over
// the sorted slice — is recognized and not flagged: an append into a
// slice that a later statement of the same block visibly sorts is
// order-safe. Anything subtler (sorting behind a call boundary, loads
// that commute) needs an explanatory //lint:ignore detorder directive.
package detorder

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"partalloc/internal/analysis"
)

// Analyzer is the detorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc: "flags map-range loops that append to outer slices or write to streams; " +
		"map order is randomized and breaks golden-file determinism",
	Run: run,
}

func run(pass *analysis.Pass) error {
	seen := make(map[*ast.RangeStmt]bool)
	// Walk statement lists so each range loop can be checked against the
	// statements that follow it (the sort-after-collect exemption).
	pass.Preorder([]ast.Node{(*ast.BlockStmt)(nil), (*ast.CaseClause)(nil), (*ast.CommClause)(nil)}, func(n ast.Node) {
		var stmts []ast.Stmt
		switch s := n.(type) {
		case *ast.BlockStmt:
			stmts = s.List
		case *ast.CaseClause:
			stmts = s.Body
		case *ast.CommClause:
			stmts = s.Body
		}
		for i, stmt := range stmts {
			rng, ok := stmt.(*ast.RangeStmt)
			if !ok || seen[rng] {
				continue
			}
			seen[rng] = true
			checkRange(pass, rng, stmts[i+1:])
		}
	})
	// Range statements not directly in a statement list (e.g. the body of
	// an if with no block — impossible in Go; but ranges nested as the
	// direct body of labeled statements) are covered by the walk above via
	// their enclosing blocks.
	return nil
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	sink, obj := findOrderSink(pass, rng)
	if sink == "" {
		return
	}
	if obj != nil && sortedLater(pass, obj, rest) {
		return // collect-then-sort idiom: order launders out
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is randomized, and this loop %s; sort the keys first (or //lint:ignore detorder with the reason order cannot matter)",
		sink)
}

// findOrderSink scans the range body for operations whose result depends
// on iteration order. For slice appends it also returns the appended
// slice's object so the caller can apply the sort-after exemption.
func findOrderSink(pass *analysis.Pass, rng *ast.RangeStmt) (string, types.Object) {
	var sink string
	var sinkObj types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append(outer, ...) — element order in the result follows map order.
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "append" {
			if len(call.Args) > 0 {
				if obj, outside := rootObject(pass, call.Args[0], rng); outside {
					sink, sinkObj = "appends to a slice declared outside it", obj
				}
			}
			return true
		}
		switch pass.FuncNameOf(call) {
		case "fmt.Print", "fmt.Printf", "fmt.Println",
			"fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
			sink = "writes formatted output"
			return true
		}
		// Stream-writer methods: Write/WriteString/... on receivers living
		// outside the loop (strings.Builder, bytes.Buffer, io.Writer, ...).
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			switch sel.Sel.Name {
			case "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo":
				if _, outside := rootObject(pass, sel.X, rng); outside {
					sink = "writes to a stream"
				}
			}
		}
		return true
	})
	return sink, sinkObj
}

// rootObject resolves the root identifier of e and reports whether it is
// declared outside the range statement. Unresolvable expressions count as
// outside (conservative: better a suppressible report than silent
// nondeterminism).
func rootObject(pass *analysis.Pass, e ast.Expr, rng *ast.RangeStmt) (types.Object, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			if obj == nil {
				return nil, true
			}
			return obj, obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, true
		}
	}
}

// sortish matches callee names that establish a total order.
var sortish = regexp.MustCompile(`(?i)sort`)

// sortedLater reports whether any statement in rest calls a sort-like
// function (sort.Slice, sort.Ints, slices.Sort, a local sortX helper...)
// with obj among its arguments — the visible half of the
// collect-keys-then-sort idiom.
func sortedLater(pass *analysis.Pass, obj types.Object, rest []ast.Stmt) bool {
	found := false
	for _, stmt := range rest {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := pass.FuncNameOf(call)
			if name == "" {
				if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent {
					name = id.Name
				}
			}
			if !sortish.MatchString(name) && !strings.Contains(name, "slices.") {
				return true
			}
			for _, arg := range call.Args {
				if refersTo(pass, arg, obj) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// refersTo reports whether any identifier within e resolves to obj.
func refersTo(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			hit = true
		}
		return !hit
	})
	return hit
}
