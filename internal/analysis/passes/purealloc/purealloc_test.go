package purealloc_test

import (
	"testing"

	"partalloc/internal/analysis/analysistest"
	"partalloc/internal/analysis/passes/purealloc"
)

func TestPureAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("loads export data via go list")
	}
	analysistest.Run(t, purealloc.Analyzer, analysistest.Fixture(t, "purealloc_fixture"))
}
