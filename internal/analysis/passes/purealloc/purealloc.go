// Package purealloc proves allocators pure: the paper's competitive
// bounds (and every golden table in this repo) assume an allocator's
// decisions are a deterministic function of the event sequence and its
// seed. A method of an Allocator implementation must therefore never
// mutate package-level state, read the wall clock, or draw from the
// global math/rand source — directly or through any callee.
//
// Impurity is compositional: every function that mutates a package
// variable or touches time.Now / global rand exports an Impure fact, and
// callers inherit it, so an allocator method calling a helper three
// packages away is still convicted with the full chain in the message.
package purealloc

import (
	"go/ast"
	"go/types"
	"strings"

	"partalloc/internal/analysis"
)

// Impure is the fact exported for a function that (transitively) mutates
// package-level state, reads the wall clock, or uses the global
// math/rand source. Reason is a short human-readable chain.
type Impure struct {
	Reason string
}

// AFact marks Impure as a fact type.
func (*Impure) AFact() {}

func (f *Impure) String() string { return "impure: " + f.Reason }

// Analyzer is the purealloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "purealloc",
	Doc: "forbids impurity in Allocator implementations: no package-level state " +
		"mutation, wall-clock reads, or global math/rand — transitively, via Impure facts",
	Run:       run,
	FactTypes: []analysis.Fact{(*Impure)(nil)},
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	a := &analyzer{pass: pass, closures: make(map[types.Object]*ast.FuncLit)}
	a.indexClosures()
	a.computeFacts()
	a.checkAllocators()
	return nil
}

// inScope restricts the check to this module plus the purealloc fixtures.
func inScope(pkgPath string) bool {
	return pkgPath == "partalloc" || strings.HasPrefix(pkgPath, "partalloc/") ||
		strings.Contains(pkgPath, "purealloc_fixture")
}

type analyzer struct {
	pass *analysis.Pass
	// closures maps a local variable to the function literal assigned to
	// it, so helper closures resolve at their call sites.
	closures map[types.Object]*ast.FuncLit
	// local caches each function's impurity reason during the fixpoint
	// ("" = pure).
	local map[ast.Node]string
	// objReason indexes the same reasons by function object after the
	// fixpoint settles.
	objReason map[*types.Func]string
}

// indexClosures records `f := func(...){...}` bindings (and var f = ...).
func (a *analyzer) indexClosures() {
	a.pass.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.ValueSpec)(nil)}, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return
			}
			for i, rhs := range st.Rhs {
				if lit, ok := rhs.(*ast.FuncLit); ok {
					if id, ok := st.Lhs[i].(*ast.Ident); ok {
						if obj := a.pass.TypesInfo.Defs[id]; obj != nil {
							a.closures[obj] = lit
						} else if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
							a.closures[obj] = lit
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range st.Values {
				if lit, ok := rhs.(*ast.FuncLit); ok && i < len(st.Names) {
					if obj := a.pass.TypesInfo.Defs[st.Names[i]]; obj != nil {
						a.closures[obj] = lit
					}
				}
			}
		}
	})
}

// functions returns every function declaration and function literal.
func (a *analyzer) functions() []ast.Node {
	var out []ast.Node
	a.pass.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		if fd, ok := n.(*ast.FuncDecl); ok && fd.Body == nil {
			return
		}
		out = append(out, n)
	})
	return out
}

func body(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}

// computeFacts finds each function's impurity reason, iterating to a
// fixpoint so same-package call chains resolve regardless of declaration
// order, then exports Impure facts.
func (a *analyzer) computeFacts() {
	a.local = make(map[ast.Node]string)
	a.objReason = make(map[*types.Func]string)
	fns := a.functions()
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if a.local[fn] != "" {
				continue
			}
			if reason := a.impureReason(body(fn), 0); reason != "" {
				a.local[fn] = reason
				changed = true
			}
		}
	}
	for _, fn := range fns {
		fd, ok := fn.(*ast.FuncDecl)
		if !ok || a.local[fn] == "" {
			continue
		}
		obj, ok := a.pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		a.objReason[obj] = a.local[fn]
		_ = a.pass.ExportObjectFact(obj, &Impure{Reason: a.local[fn]})
	}
}

// maxDepth bounds closure-chain recursion in impureReason.
const maxDepth = 8

// impureReason scans a function body (skipping nested function literals,
// which taint only when called — resolved at their call sites) for the
// first impure operation and returns a short description, or "".
func (a *analyzer) impureReason(block *ast.BlockStmt, depth int) string {
	if block == nil || depth > maxDepth {
		return ""
	}
	reason := ""
	ast.Inspect(block, func(n ast.Node) bool {
		if reason != "" || n == nil {
			return false
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if name := a.packageVarTarget(lhs); name != "" {
					reason = "mutates package variable " + name
					return false
				}
			}
		case *ast.IncDecStmt:
			if name := a.packageVarTarget(st.X); name != "" {
				reason = "mutates package variable " + name
				return false
			}
		case *ast.CallExpr:
			if r := a.callImpure(st, depth); r != "" {
				reason = r
				return false
			}
		}
		return true
	})
	return reason
}

// packageVarTarget reports the name of the package-level variable an
// assignment target (possibly a field, index, or dereference chain)
// roots in, or "".
func (a *analyzer) packageVarTarget(e ast.Expr) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			// Either pkg.Var (qualified identifier) or expr.Field; both
			// root in X unless Sel itself is the package-level var.
			if obj := a.pass.TypesInfo.Uses[x.Sel]; obj != nil && isPackageVar(obj) {
				return packageVarName(obj)
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := a.pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = a.pass.TypesInfo.Defs[x]
			}
			if obj != nil && isPackageVar(obj) {
				return packageVarName(obj)
			}
			return ""
		default:
			return ""
		}
	}
}

func isPackageVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func packageVarName(obj types.Object) string {
	return obj.Pkg().Name() + "." + obj.Name()
}

// timeImpure are the time functions that read the wall clock or arm
// wall-clock timers.
var timeImpure = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
	"Sleep": true,
}

// randAllowed mirrors seedrand's allowed-list: constructors for
// injectable generators do not touch the global source.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// callImpure reports why a call taints its caller, or "".
func (a *analyzer) callImpure(call *ast.CallExpr, depth int) string {
	// Immediately invoked literal: (func(){...})().
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return a.impureReason(lit.Body, depth+1)
	}
	// Local closure called by name: analyze its literal's body.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
			if lit, ok := a.closures[obj]; ok {
				if r := a.impureReason(lit.Body, depth+1); r != "" {
					return id.Name + " (" + truncate(r) + ")"
				}
				return ""
			}
		}
	}
	fn, ok := calleeObject(a.pass, call)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	switch fn.Pkg().Path() {
	case "time":
		if timeImpure[fn.Name()] {
			return "wall clock (time." + fn.Name() + ")"
		}
		return ""
	case "math/rand", "math/rand/v2":
		if sig != nil && sig.Recv() != nil {
			return "" // method on an injected *rand.Rand — seeded, fine
		}
		if !randAllowed[fn.Name()] {
			return "global math/rand (rand." + fn.Name() + ")"
		}
		return ""
	}
	// Same-package functions resolve through the fixpoint cache; imported
	// ones through their exported Impure fact.
	if fn.Pkg() == a.pass.Pkg {
		for node, reason := range a.local {
			if fd, ok := node.(*ast.FuncDecl); ok && a.pass.TypesInfo.Defs[fd.Name] == fn && reason != "" {
				return shortName(fn) + " (" + truncate(reason) + ")"
			}
		}
		return ""
	}
	var fact Impure
	if a.pass.ImportObjectFact(fn, &fact) {
		return shortName(fn) + " (" + truncate(fact.Reason) + ")"
	}
	return ""
}

// ---- allocator check ----

// checkAllocators reports every impure method of a type implementing an
// in-scope Allocator interface.
func (a *analyzer) checkAllocators() {
	ifaces := a.allocatorIfaces()
	if len(ifaces) == 0 {
		return
	}
	scope := a.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || !implementsAny(named, ifaces) {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Pkg() != a.pass.Pkg {
				continue
			}
			reason, ok := a.objReason[m]
			if !ok {
				continue
			}
			a.pass.Reportf(m.Pos(),
				"allocator method %s is impure: %s — allocator decisions must be a pure function of events and seed",
				shortName(m), truncate(reason))
		}
	}
}

// allocatorIfaces collects every interface named "Allocator" defined in
// this package or an in-scope import.
func (a *analyzer) allocatorIfaces() []*types.Interface {
	var out []*types.Interface
	add := func(pkg *types.Package) {
		if pkg == nil || !inScope(pkg.Path()) {
			return
		}
		tn, ok := pkg.Scope().Lookup("Allocator").(*types.TypeName)
		if !ok {
			return
		}
		if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
			out = append(out, iface)
		}
	}
	add(a.pass.Pkg)
	for _, imp := range a.pass.Pkg.Imports() {
		add(imp)
	}
	return out
}

func implementsAny(named *types.Named, ifaces []*types.Interface) bool {
	ptr := types.NewPointer(named)
	for _, iface := range ifaces {
		if iface.Empty() {
			continue
		}
		if types.Implements(named, iface) || types.Implements(ptr, iface) {
			return true
		}
	}
	return false
}

// ---- small helpers ----

// calleeObject resolves the called *types.Func.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return fn, ok
}

// shortName renders a function as "pkg.Func" or "pkg.Type.Method".
func shortName(fn *types.Func) string {
	s := strings.NewReplacer("(", "", ")", "", "*", "").Replace(fn.FullName())
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// truncate keeps nested reason chains readable.
func truncate(s string) string {
	if len(s) > 80 {
		return s[:77] + "..."
	}
	return s
}
