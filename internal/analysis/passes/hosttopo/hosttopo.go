// Package hosttopo keeps machine construction behind the topology layer.
//
// Since the topology-generic refactor, every run pairs the abstract tree
// machine with a physical network through topology.Host: the host owns the
// decomposition tree, translates physical PEs, and prices migrations in
// network hops. A bare tree.New/tree.MustNew call under internal/ or cmd/
// silently produces a machine no host knows about — its runs cannot be
// re-targeted to a hypercube, mesh, butterfly or fat tree, and its
// migration costs are unpriceable. hosttopo flags such construction and
// points at the sanctioned paths (topology.NewHost, cli.MakeHost, or the
// partalloc facade's WithTopology). Deliberately tree-only code documents
// itself with //lint:ignore hosttopo and a reason.
package hosttopo

import (
	"go/ast"
	"go/token"
	"strings"

	"partalloc/internal/analysis"
)

// Analyzer is the hosttopo pass.
var Analyzer = &analysis.Analyzer{
	Name: "hosttopo",
	Doc: "flags direct tree machine construction (tree.New/MustNew/NewDecomposition) outside " +
		"internal/tree and internal/topology; build machines through a topology host so runs " +
		"stay portable across physical networks",
	Run: run,
}

// constructors are the partalloc/internal/tree entry points that mint a
// *tree.Machine.
var constructors = map[string]string{
	"partalloc/internal/tree.New":              "New",
	"partalloc/internal/tree.MustNew":          "MustNew",
	"partalloc/internal/tree.NewDecomposition": "NewDecomposition",
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	pass.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		short, ok := constructors[pass.FuncNameOf(call)]
		if !ok {
			return
		}
		// Tests pin behavior on the abstract tree model by design; only
		// shipped code must stay host-portable (the vettool path sees
		// _test.go files, the standalone driver does not).
		if isTestFile(pass, call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(),
			"direct tree.%s bypasses the topology layer; build the machine through a host "+
				"(topology.NewHost, cli.MakeHost or partalloc.WithTopology) so the run stays "+
				"portable across physical networks", short)
	})
	return nil
}

// isTestFile reports whether pos sits in a _test.go file.
func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// inScope restricts the check to this module's internal/ and cmd/ trees,
// excluding the two packages that legitimately construct machines: the
// tree package itself and the topology layer built directly on it.
func inScope(pkgPath string) bool {
	// Fixture packages opt in by naming convention so the analyzer is
	// testable outside the real module tree.
	if strings.Contains(pkgPath, "hosttopo_fixture") {
		return true
	}
	switch pkgPath {
	case "partalloc/internal/tree", "partalloc/internal/topology":
		return false
	}
	for _, prefix := range []string{"partalloc/internal/", "partalloc/cmd/"} {
		if strings.HasPrefix(pkgPath, prefix) {
			return true
		}
	}
	return false
}
