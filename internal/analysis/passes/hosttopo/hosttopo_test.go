package hosttopo_test

import (
	"testing"

	"partalloc/internal/analysis/analysistest"
	"partalloc/internal/analysis/passes/hosttopo"
)

func TestHosttopo(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture type-checking shells out to go list")
	}
	analysistest.Run(t, hosttopo.Analyzer, analysistest.Fixture(t, "hosttopo_fixture"))
}
