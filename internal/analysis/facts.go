package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// Fact is a piece of information an analyzer learns about an object or a
// package and wants to make visible to later analysis of *other*
// packages: "this function may block", "errors returned here wrap
// ErrMachineFull", "this method mutates package state". The mechanism
// mirrors golang.org/x/tools/go/analysis facts:
//
//   - while analyzing package P, an analyzer calls
//     Pass.ExportObjectFact(obj, fact) for objects declared in P;
//   - while analyzing a package that imports P, the same analyzer calls
//     Pass.ImportObjectFact(obj, fact) to retrieve what it exported,
//     where obj is P's object as seen through the importer.
//
// Fact types must be pointers to gob-encodable structs and must be
// declared in Analyzer.FactTypes. Facts flow strictly along the import
// graph: the checker analyzes packages in dependency order, and in `go
// vet -vettool` mode facts are serialized into the .vetx file cmd/go
// passes between compilation units (see FactSet.Encode/Decode).
type Fact interface {
	// AFact is a marker method; it does nothing.
	AFact()
}

// factKey addresses one fact: the declaring package's import path, the
// object's path within it ("" for package-level facts), and the dynamic
// fact type.
type factKey struct {
	pkg string
	obj string
	typ reflect.Type
}

// FactSet is the cross-package fact store one checker run threads through
// every pass. It is safe for concurrent use (the vet-tool driver is
// single-threaded, but the standalone driver may parallelize per-package
// runs in the future).
type FactSet struct {
	mu    sync.Mutex
	facts map[factKey]Fact
}

// NewFactSet returns an empty fact store.
func NewFactSet() *FactSet {
	return &FactSet{facts: make(map[factKey]Fact)}
}

// ObjectPath encodes a types.Object as a stable, export-data-independent
// path within its package, resolvable on the importing side by
// ResolveObjectPath. Supported shapes — the ones facts attach to in this
// suite — are package-level objects ("Name") and methods of package-level
// named types ("Recv.Method", receiver pointer stripped). ok is false for
// anything else (locals, struct fields, interface methods of unnamed
// types).
func ObjectPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, isFunc := obj.(*types.Func); isFunc {
		sig := fn.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			named, isNamed := t.(*types.Named)
			if !isNamed {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Name(), true
}

// ResolveObjectPath finds the object named by an ObjectPath string in pkg,
// or nil if it no longer resolves.
func ResolveObjectPath(pkg *types.Package, path string) types.Object {
	recv, method, isMethod := strings.Cut(path, ".")
	if !isMethod {
		return pkg.Scope().Lookup(path)
	}
	tn, ok := pkg.Scope().Lookup(recv).(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == method {
			return m
		}
	}
	return nil
}

// exportObject stores fact for obj, which must belong to some package.
func (s *FactSet) exportObject(obj types.Object, fact Fact) error {
	path, ok := ObjectPath(obj)
	if !ok {
		return fmt.Errorf("analysis: cannot export fact %T on %v: unsupported object shape", fact, obj)
	}
	s.put(factKey{pkg: obj.Pkg().Path(), obj: path, typ: reflect.TypeOf(fact)}, fact)
	return nil
}

// importObject copies the stored fact for obj into fact (a pointer),
// reporting whether one existed.
func (s *FactSet) importObject(obj types.Object, fact Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path, ok := ObjectPath(obj)
	if !ok {
		return false
	}
	return s.get(factKey{pkg: obj.Pkg().Path(), obj: path, typ: reflect.TypeOf(fact)}, fact)
}

// exportPackage stores a package-level fact for pkgPath.
func (s *FactSet) exportPackage(pkgPath string, fact Fact) {
	s.put(factKey{pkg: pkgPath, typ: reflect.TypeOf(fact)}, fact)
}

// importPackage copies the package-level fact for pkgPath into fact.
func (s *FactSet) importPackage(pkgPath string, fact Fact) bool {
	return s.get(factKey{pkg: pkgPath, typ: reflect.TypeOf(fact)}, fact)
}

func (s *FactSet) put(k factKey, fact Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.facts[k] = fact
}

// get copies the stored fact (if any) into dst via reflection, so callers
// own an independent value and cannot mutate the store through it.
func (s *FactSet) get(k factKey, dst Fact) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	stored, ok := s.facts[k]
	if !ok {
		return false
	}
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(stored)
	if dv.Kind() != reflect.Ptr || sv.Kind() != reflect.Ptr || dv.Type() != sv.Type() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// ObjectFact is one exported object fact, as surfaced to tests and the
// serializer.
type ObjectFact struct {
	// Object is the ObjectPath of the fact's object.
	Object string
	// Fact is the fact value.
	Fact Fact
}

// PackageFacts returns every object fact exported for pkgPath, sorted by
// object path then fact type name (deterministic for tests and encoding).
func (s *FactSet) PackageFacts(pkgPath string) []ObjectFact {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ObjectFact
	for k, f := range s.facts {
		if k.pkg == pkgPath && k.obj != "" {
			out = append(out, ObjectFact{Object: k.obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return fmt.Sprintf("%T", out[i].Fact) < fmt.Sprintf("%T", out[j].Fact)
	})
	return out
}

// gobFactFile is the serialized shape of one package's facts.
type gobFactFile struct {
	Objects  []ObjectFact
	Packages []Fact
}

// RegisterFactTypes makes the concrete fact types of the analyzers known
// to gob, so Encode/Decode can round-trip them. Safe to call repeatedly
// with the same types.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// Encode serializes every fact belonging to pkgPath — the channel through
// which `go vet -vettool` mode persists facts into the unit's .vetx file.
func (s *FactSet) Encode(pkgPath string) ([]byte, error) {
	file := gobFactFile{Objects: s.PackageFacts(pkgPath)}
	s.mu.Lock()
	for k, f := range s.facts {
		if k.pkg == pkgPath && k.obj == "" {
			file.Packages = append(file.Packages, f)
		}
	}
	s.mu.Unlock()
	sort.Slice(file.Packages, func(i, j int) bool {
		return fmt.Sprintf("%T", file.Packages[i]) < fmt.Sprintf("%T", file.Packages[j])
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&file); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts for %s: %w", pkgPath, err)
	}
	return buf.Bytes(), nil
}

// Decode merges a fact file produced by Encode back into the store under
// pkgPath. Empty input (a facts-free dependency) is a no-op.
func (s *FactSet) Decode(pkgPath string, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var file gobFactFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&file); err != nil {
		return fmt.Errorf("analysis: decoding facts for %s: %w", pkgPath, err)
	}
	for _, of := range file.Objects {
		s.put(factKey{pkg: pkgPath, obj: of.Object, typ: reflect.TypeOf(of.Fact)}, of.Fact)
	}
	for _, pf := range file.Packages {
		s.put(factKey{pkg: pkgPath, typ: reflect.TypeOf(pf)}, pf)
	}
	return nil
}
