// Package analysistest runs one analyzer over a fixture package and
// compares its diagnostics against // want annotations, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory under internal/analysis/testdata/src containing
// ordinary Go files. A line expecting a diagnostic carries a trailing
// comment:
//
//	tree.MustNew(12) // want `not a power of two`
//
// The backquoted string is a regular expression matched against the
// diagnostic message; several `want` clauses on one line expect several
// diagnostics. Lines without annotations must produce none (the negative
// cases). Fixtures may import the real module packages — the loader
// resolves partalloc/... and stdlib imports from compiled export data, so
// fixtures exercise analyzers against the genuine API signatures instead
// of hand-maintained stubs.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"partalloc/internal/analysis"
	"partalloc/internal/analysis/checker"
	"partalloc/internal/analysis/load"
)

// wantRe matches one `...` clause of a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

// expectation is one expected diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture directory (relative to the test's working
// directory, conventionally "testdata/src/<name>"), applies the analyzer,
// and reports mismatches on t.
func Run(t *testing.T, a *analysis.Analyzer, fixtureDir string) {
	t.Helper()
	moduleDir := moduleRoot(t)
	ctx, _, err := load.NewContext(moduleDir, "./...")
	if err != nil {
		t.Fatalf("analysistest: priming loader: %v", err)
	}
	abs, err := filepath.Abs(fixtureDir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(abs, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", abs)
	}
	importPath := "fixtures/" + filepath.Base(abs)
	pkg, err := ctx.LoadFiles(importPath, files)
	if err != nil {
		t.Fatalf("analysistest: loading fixture: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("analysistest: fixture type error: %v", terr)
	}
	if t.Failed() {
		return
	}

	wants := collectWants(t, ctx.Fset, files)
	diags, err := checker.Run([]*load.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	for _, d := range diags {
		pos := ctx.Fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s",
				filepath.Base(pos.Filename), pos.Line, d.Analyzer.Name, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				filepath.Base(w.file), w.line, w.re.String())
		}
	}
}

// claim marks the first unhit expectation matching the diagnostic.
func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants scans fixture sources for // want comments.
func collectWants(t *testing.T, fset *token.FileSet, files []string) []*expectation {
	t.Helper()
	var out []*expectation
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, comment, found := strings.Cut(line, "// want ")
			if !found {
				continue
			}
			ms := wantRe.FindAllStringSubmatch(comment, -1)
			if len(ms) == 0 {
				t.Fatalf("analysistest: %s:%d: malformed want comment (need `re` clauses)", name, i+1)
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("analysistest: %s:%d: bad want regexp: %v", name, i+1, err)
				}
				out = append(out, &expectation{file: name, line: i + 1, re: re})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("analysistest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Fixture returns the conventional fixture path for a named suite:
// <module>/internal/analysis/testdata/src/<name>. Tests in analyzer
// packages use it so they are independent of their own working directory.
func Fixture(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(moduleRoot(t), "internal", "analysis", "testdata", "src", name)
}
