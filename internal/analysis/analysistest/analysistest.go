// Package analysistest runs one analyzer over a fixture package and
// compares its diagnostics against // want annotations, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory under internal/analysis/testdata/src containing
// ordinary Go files. A line expecting a diagnostic carries a trailing
// comment:
//
//	tree.MustNew(12) // want `not a power of two`
//
// The backquoted string is a regular expression matched against the
// diagnostic message; several `want` clauses on one line expect several
// diagnostics. Lines without annotations must produce none (the negative
// cases). Fixtures may import the real module packages — the loader
// resolves partalloc/... and stdlib imports from compiled export data, so
// fixtures exercise analyzers against the genuine API signatures instead
// of hand-maintained stubs.
//
// # Multi-package fixtures and facts
//
// A fixture directory may instead contain subdirectories, each one a
// package with import path "fixtures/<fixture>/<subdir>". Subdirectory
// packages can import each other, and are analyzed in dependency order —
// the harness for cross-package facts. A want comment can also assert an
// exported object fact, naming the object before the clause:
//
//	func Park() { // want Park:`blocks: channel receive`
//
// The named object must be declared on the comment's line (methods are
// named "Recv.Method"), and the regexp is matched against the fact's
// String(). Fact assertions are exact: every exported fact must be
// claimed by an annotation and vice versa, so an analyzer cannot leak
// facts a fixture does not document.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"partalloc/internal/analysis"
	"partalloc/internal/analysis/checker"
	"partalloc/internal/analysis/load"
)

// wantRe matches one clause of a want comment: an optional "Object:"
// prefix (fact assertion) followed by a backquoted regexp.
var wantRe = regexp.MustCompile("(?:([A-Za-z_][A-Za-z0-9_.]*):)?`([^`]*)`")

// expectation is one expected diagnostic or fact.
type expectation struct {
	file string
	line int
	obj  string // non-empty: fact assertion on this object
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture directory (relative to the test's working
// directory, conventionally "testdata/src/<name>"), applies the analyzer,
// and reports mismatches on t.
func Run(t *testing.T, a *analysis.Analyzer, fixtureDir string) {
	t.Helper()
	moduleDir := moduleRoot(t)
	ctx, _, err := load.NewContext(moduleDir, "./...")
	if err != nil {
		t.Fatalf("analysistest: priming loader: %v", err)
	}
	abs, err := filepath.Abs(fixtureDir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkgDirs := fixturePackages(t, abs)
	var pkgs []*load.Package
	var allFiles []string
	for _, dir := range pkgDirs {
		importPath := "fixtures/" + filepath.Base(abs)
		if dir != abs {
			importPath += "/" + filepath.Base(dir)
		}
		files := goFiles(t, dir)
		pkg, err := ctx.LoadFiles(importPath, files)
		if err != nil {
			t.Fatalf("analysistest: loading fixture %s: %v", importPath, err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("analysistest: fixture type error: %v", terr)
		}
		pkgs = append(pkgs, pkg)
		allFiles = append(allFiles, files...)
	}
	if t.Failed() {
		return
	}

	wants := collectWants(t, allFiles)
	diags, facts, err := checker.RunWithFacts(pkgs, []*analysis.Analyzer{a}, analysis.NewFactSet())
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	for _, d := range diags {
		pos := ctx.Fset.Position(d.Pos)
		if !claim(wants, "", pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s",
				filepath.Base(pos.Filename), pos.Line, d.Analyzer.Name, d.Message)
		}
	}
	for _, pkg := range pkgs {
		for _, of := range facts.PackageFacts(pkg.ImportPath) {
			obj := analysis.ResolveObjectPath(pkg.Types, of.Object)
			if obj == nil {
				t.Errorf("%s: exported fact on unresolvable object %q", pkg.ImportPath, of.Object)
				continue
			}
			pos := ctx.Fset.Position(obj.Pos())
			if !claim(wants, of.Object, pos.Filename, pos.Line, fmt.Sprint(of.Fact)) {
				t.Errorf("%s:%d: unexpected fact: %s:%v",
					filepath.Base(pos.Filename), pos.Line, of.Object, of.Fact)
			}
		}
	}
	for _, w := range wants {
		if !w.hit {
			kind := "diagnostic"
			if w.obj != "" {
				kind = "fact on " + w.obj
			}
			t.Errorf("%s:%d: expected %s matching %q, got none",
				filepath.Base(w.file), w.line, kind, w.re.String())
		}
	}
}

// fixturePackages returns the package directories of a fixture in
// dependency order: the root itself when it holds Go files, otherwise its
// subdirectories ordered so imported fixture packages come first.
func fixturePackages(t *testing.T, abs string) []string {
	t.Helper()
	if len(goFilesOrNil(abs)) > 0 {
		return []string{abs}
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() && len(goFilesOrNil(filepath.Join(abs, e.Name()))) > 0 {
			dirs = append(dirs, filepath.Join(abs, e.Name()))
		}
	}
	if len(dirs) == 0 {
		t.Fatalf("analysistest: no Go files in %s", abs)
	}
	sort.Strings(dirs)
	// Topologically order by fixture-internal imports (parsed headers
	// only); N is tiny, so repeated passes are fine.
	importPathOf := func(dir string) string {
		return "fixtures/" + filepath.Base(abs) + "/" + filepath.Base(dir)
	}
	deps := make(map[string][]string) // dir -> fixture dirs it imports
	for _, dir := range dirs {
		fset := token.NewFileSet()
		for _, f := range goFilesOrNil(dir) {
			parsed, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("analysistest: %v", err)
			}
			for _, imp := range parsed.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				for _, other := range dirs {
					if other != dir && importPathOf(other) == path {
						deps[dir] = append(deps[dir], other)
					}
				}
			}
		}
	}
	visited := make(map[string]bool)
	var out []string
	var visit func(string)
	visit = func(dir string) {
		if visited[dir] {
			return
		}
		visited[dir] = true
		for _, d := range deps[dir] {
			visit(d)
		}
		out = append(out, dir)
	}
	for _, dir := range dirs {
		visit(dir)
	}
	return out
}

func goFilesOrNil(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	return files
}

func goFiles(t *testing.T, dir string) []string {
	t.Helper()
	files := goFilesOrNil(dir)
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}
	return files
}

// claim marks the first unhit expectation matching a diagnostic (obj ==
// "") or fact (obj names the fact's object).
func claim(wants []*expectation, obj, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.obj == obj && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants scans fixture sources for // want comments.
func collectWants(t *testing.T, files []string) []*expectation {
	t.Helper()
	var out []*expectation
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, comment, found := strings.Cut(line, "// want ")
			if !found {
				continue
			}
			ms := wantRe.FindAllStringSubmatch(comment, -1)
			if len(ms) == 0 {
				t.Fatalf("analysistest: %s:%d: malformed want comment (need `re` clauses)", name, i+1)
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("analysistest: %s:%d: bad want regexp: %v", name, i+1, err)
				}
				out = append(out, &expectation{file: name, line: i + 1, obj: m[1], re: re})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("analysistest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Fixture returns the conventional fixture path for a named suite:
// <module>/internal/analysis/testdata/src/<name>. Tests in analyzer
// packages use it so they are independent of their own working directory.
func Fixture(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(moduleRoot(t), "internal", "analysis", "testdata", "src", name)
}
