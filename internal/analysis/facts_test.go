package analysis

import (
	"go/token"
	"go/types"
	"testing"
)

// The fixture-driven analyzer tests exercise facts in-process, where the
// exporting and importing sides share one types universe. These tests
// cover the part only `go vet -vettool` mode hits: gob serialization of
// a package's facts and their re-resolution against a *different* types
// universe, the situation every compilation unit is in when it decodes
// its dependencies' .vetx files.

type blocksTestFact struct{ Reason string }

func (*blocksTestFact) AFact() {}

type pkgTestFact struct{ Analyzed bool }

func (*pkgTestFact) AFact() {}

func init() {
	RegisterFactTypes([]*Analyzer{{
		Name:      "factstest",
		FactTypes: []Fact{(*blocksTestFact)(nil), (*pkgTestFact)(nil)},
	}})
}

// buildPkg constructs a synthetic package with a top-level function Do, a
// named type T with pointer method M, and returns (pkg, Do, T.M). Each
// call yields an independent types universe.
func buildPkg(t *testing.T) (*types.Package, *types.Func, *types.Func) {
	t.Helper()
	pkg := types.NewPackage("example.com/p", "p")
	do := types.NewFunc(token.NoPos, pkg, "Do",
		types.NewSignatureType(nil, nil, nil, nil, nil, false))
	pkg.Scope().Insert(do)
	tn := types.NewTypeName(token.NoPos, pkg, "T", nil)
	named := types.NewNamed(tn, types.NewStruct(nil, nil), nil)
	pkg.Scope().Insert(tn)
	recv := types.NewVar(token.NoPos, pkg, "t", types.NewPointer(named))
	m := types.NewFunc(token.NoPos, pkg, "M",
		types.NewSignatureType(recv, nil, nil, nil, nil, false))
	named.AddMethod(m)
	return pkg, do, m
}

func TestObjectPathShapes(t *testing.T) {
	pkg, do, m := buildPkg(t)
	if p, ok := ObjectPath(do); !ok || p != "Do" {
		t.Errorf("ObjectPath(Do) = %q, %v; want \"Do\", true", p, ok)
	}
	if p, ok := ObjectPath(m); !ok || p != "T.M" {
		t.Errorf("ObjectPath(T.M) = %q, %v; want \"T.M\", true", p, ok)
	}
	// A var never entered into the package scope models a local: no path.
	local := types.NewVar(token.NoPos, pkg, "x", types.Typ[types.Int])
	if p, ok := ObjectPath(local); ok {
		t.Errorf("ObjectPath(local) = %q, ok; want not ok", p)
	}
}

func TestResolveObjectPath(t *testing.T) {
	pkg, do, m := buildPkg(t)
	if got := ResolveObjectPath(pkg, "Do"); got != do {
		t.Errorf("ResolveObjectPath(Do) = %v; want the Do func", got)
	}
	if got := ResolveObjectPath(pkg, "T.M"); got != m {
		t.Errorf("ResolveObjectPath(T.M) = %v; want the M method", got)
	}
	if got := ResolveObjectPath(pkg, "T.Missing"); got != nil {
		t.Errorf("ResolveObjectPath(T.Missing) = %v; want nil", got)
	}
	if got := ResolveObjectPath(pkg, "Missing"); got != nil {
		t.Errorf("ResolveObjectPath(Missing) = %v; want nil", got)
	}
}

func TestFactGobRoundTrip(t *testing.T) {
	pkg, do, m := buildPkg(t)
	src := NewFactSet()
	if err := src.exportObject(do, &blocksTestFact{Reason: "file I/O"}); err != nil {
		t.Fatal(err)
	}
	if err := src.exportObject(m, &blocksTestFact{Reason: "channel receive"}); err != nil {
		t.Fatal(err)
	}
	src.exportPackage(pkg.Path(), &pkgTestFact{Analyzed: true})

	blob, err := src.Encode(pkg.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Fatal("Encode produced no bytes for a non-empty fact set")
	}

	// The importing side: a fresh FactSet and a fresh types universe, as
	// in a separate go vet compilation unit.
	dst := NewFactSet()
	if err := dst.Decode(pkg.Path(), blob); err != nil {
		t.Fatal(err)
	}
	pkg2, do2, m2 := buildPkg(t)

	var bf blocksTestFact
	if !dst.importObject(do2, &bf) || bf.Reason != "file I/O" {
		t.Errorf("Do fact after round trip = %+v; want Reason \"file I/O\"", bf)
	}
	if !dst.importObject(m2, &bf) || bf.Reason != "channel receive" {
		t.Errorf("T.M fact after round trip = %+v; want Reason \"channel receive\"", bf)
	}
	var pf pkgTestFact
	if !dst.importPackage(pkg2.Path(), &pf) || !pf.Analyzed {
		t.Errorf("package fact after round trip = %+v; want Analyzed", pf)
	}

	// Imports hand out copies: mutating one must not corrupt the store.
	bf.Reason = "mutated by caller"
	var again blocksTestFact
	if !dst.importObject(do2, &again) || again.Reason != "file I/O" {
		t.Errorf("second import = %+v; store was mutated through a copy", again)
	}
}

func TestFactSetEdgeCases(t *testing.T) {
	pkg, do, _ := buildPkg(t)
	s := NewFactSet()

	// Decoding an empty blob (a facts-free dependency) is a silent no-op.
	if err := s.Decode("example.com/empty", nil); err != nil {
		t.Errorf("Decode(empty) = %v; want nil", err)
	}

	// Unsupported object shapes are an export error, not silent loss.
	local := types.NewVar(token.NoPos, pkg, "x", types.Typ[types.Int])
	if err := s.exportObject(local, &blocksTestFact{Reason: "r"}); err == nil {
		t.Error("exportObject(local) succeeded; want unsupported-shape error")
	}

	// Missing facts report false and leave the destination untouched.
	probe := blocksTestFact{Reason: "sentinel"}
	if s.importObject(do, &probe) {
		t.Error("importObject on empty set = true; want false")
	}
	if probe.Reason != "sentinel" {
		t.Errorf("failed import overwrote destination: %+v", probe)
	}

	// PackageFacts is sorted by object path for deterministic encoding.
	_, do2, m2 := buildPkg(t)
	if err := s.exportObject(m2, &blocksTestFact{Reason: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := s.exportObject(do2, &blocksTestFact{Reason: "a"}); err != nil {
		t.Fatal(err)
	}
	facts := s.PackageFacts("example.com/p")
	if len(facts) != 2 || facts[0].Object != "Do" || facts[1].Object != "T.M" {
		t.Errorf("PackageFacts order = %+v; want Do before T.M", facts)
	}
}
