// Package checker runs analyzers over loaded packages and applies the
// //lint:ignore suppression protocol. It is the shared engine behind
// cmd/partlint (standalone and vet-tool modes) and the analysistest
// fixture harness.
package checker

import (
	"fmt"
	"sort"

	"partalloc/internal/analysis"
	"partalloc/internal/analysis/load"
)

// directiveAnalyzer attributes diagnostics about the directives
// themselves (malformed or dangling //lint:ignore comments).
var directiveAnalyzer = &analysis.Analyzer{
	Name: "directive",
	Doc:  "validates //lint:ignore suppression directives",
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics in file/position order. Packages are processed in
// dependency order so cross-package facts flow along the import graph
// within the run; a fresh fact store is used. Suppressed findings are
// dropped; a directive that is malformed (no reason) or matches nothing
// yields its own diagnostic, so stale exceptions cannot accumulate
// silently.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	diags, _, err := RunWithFacts(pkgs, analyzers, analysis.NewFactSet())
	return diags, err
}

// RunWithFacts is Run with an explicit fact store: facts already in the
// store (decoded from .vetx files of dependencies, say) are visible to
// every pass, and facts the analyzers export accumulate into it. The
// store is returned for drivers that serialize or inspect it.
func RunWithFacts(pkgs []*load.Package, analyzers []*analysis.Analyzer, facts *analysis.FactSet) ([]analysis.Diagnostic, *analysis.FactSet, error) {
	if facts == nil {
		facts = analysis.NewFactSet()
	}
	analysis.RegisterFactTypes(analyzers)
	var out []analysis.Diagnostic
	for _, pkg := range dependencyOrder(pkgs) {
		diags, err := runPackage(pkg, analyzers, facts)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, diags...)
	}
	sortDiagnostics(pkgs, out)
	return out, facts, nil
}

// dependencyOrder sorts pkgs so every package follows the packages it
// imports (among those present in the slice). `go list -deps` already
// yields this order, but manually assembled sets — fixture suites, single
// packages plus dependencies — get the same guarantee here. Ties keep the
// input order, so diagnostics stay stable.
func dependencyOrder(pkgs []*load.Package) []*load.Package {
	index := make(map[string]int, len(pkgs)) // import path -> input position
	for i, p := range pkgs {
		index[p.ImportPath] = i
	}
	visited := make(map[string]bool, len(pkgs))
	out := make([]*load.Package, 0, len(pkgs))
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		if visited[p.ImportPath] {
			return
		}
		visited[p.ImportPath] = true
		if p.Types != nil {
			for _, imp := range p.Types.Imports() {
				if j, ok := index[imp.Path()]; ok {
					visit(pkgs[j])
				}
			}
		}
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

func runPackage(pkg *load.Package, analyzers []*analysis.Analyzer, facts *analysis.FactSet) ([]analysis.Diagnostic, error) {
	if len(pkg.TypeErrors) > 0 {
		return nil, fmt.Errorf("checker: %s: type error: %v", pkg.ImportPath, pkg.TypeErrors[0])
	}
	directives := analysis.ParseDirectives(pkg.Fset, pkg.Files)
	var raw []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { raw = append(raw, d) },
			Facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("checker: %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	kept := analysis.FilterIgnored(pkg.Fset, directives, raw)
	// Surface directive problems: missing reasons and directives that
	// suppressed nothing in this run.
	for _, d := range directives {
		switch {
		case d.Reason() == "":
			kept = append(kept, analysis.Diagnostic{
				Pos:      d.Pos(),
				Message:  "//lint:ignore directive is missing a reason",
				Analyzer: directiveAnalyzer,
			})
		case !d.Used():
			kept = append(kept, analysis.Diagnostic{
				Pos:      d.Pos(),
				Message:  fmt.Sprintf("//lint:ignore %s directive matched no diagnostic", d.Analyzers()),
				Analyzer: directiveAnalyzer,
			})
		}
	}
	return kept, nil
}

func sortDiagnostics(pkgs []*load.Package, diags []analysis.Diagnostic) {
	if len(pkgs) == 0 {
		return
	}
	fset := pkgs[0].Fset
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
