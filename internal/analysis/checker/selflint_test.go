package checker_test

import (
	"os"
	"path/filepath"
	"testing"

	"partalloc/internal/analysis/checker"
	"partalloc/internal/analysis/load"
	"partalloc/internal/analysis/passes"
)

// TestSelfLint runs the full analyzer suite over the whole module, making
// lint cleanliness a tier-1 test property: a PR that introduces a
// violation fails `go test ./...` even if it never runs `make lint`.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module via go list")
	}
	root := moduleRoot(t)
	_, pkgs, err := load.Targets(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	diags, err := checker.Run(pkgs, passes.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		t.Errorf("%s: [%s] %s", pos, d.Analyzer.Name, d.Message)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}
