package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //lint:ignore comment.
//
// The accepted forms follow staticcheck's convention:
//
//	//lint:ignore powtwo reason for the exception
//	//lint:ignore powtwo,detorder reason covering both
//	//lint:ignore all reason silencing every analyzer
//
// A directive suppresses matching diagnostics reported on the same line
// (inline comment), or — when the comment stands alone on its line — on
// the next line. A reason is mandatory, and a directive that suppresses
// nothing is itself reported, so exceptions stay documented and current.
type Directive struct {
	file      string
	line      int    // line the directive is written on
	analyzers string // comma-separated names, or "all"
	reason    string
	pos       token.Pos
	ownLine   bool // comment is the only thing on its line
	used      bool
}

// Pos returns the directive's source position.
func (d *Directive) Pos() token.Pos { return d.pos }

// Reason returns the justification text (may be empty — malformed).
func (d *Directive) Reason() string { return d.reason }

// Analyzers returns the raw analyzer list ("powtwo", "a,b", or "all").
func (d *Directive) Analyzers() string { return d.analyzers }

// Used reports whether the directive suppressed at least one diagnostic.
func (d *Directive) Used() bool { return d.used }

const ignorePrefix = "//lint:ignore "

// ParseDirectives extracts every //lint:ignore directive from the files.
func ParseDirectives(fset *token.FileSet, files []*ast.File) []*Directive {
	var out []*Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				out = append(out, &Directive{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: name,
					reason:    strings.TrimSpace(reason),
					pos:       c.Pos(),
					ownLine:   standaloneComment(fset, f, c),
				})
			}
		}
	}
	return out
}

// standaloneComment reports whether comment c is the only token on its
// line (a standalone directive applies to the next line; an inline one to
// its own).
func standaloneComment(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cl := fset.Position(c.Pos()).Line
	standalone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !standalone {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		}
		// Any non-comment node that *starts* on the directive's line makes
		// the comment inline (trailing a statement or declaration).
		if fset.Position(n.Pos()).Line == cl {
			standalone = false
			return false
		}
		return true
	})
	return standalone
}

// matches reports whether the directive silences analyzer name for a
// diagnostic at the given file and line.
func (d *Directive) matches(name, file string, line int) bool {
	if file != d.file {
		return false
	}
	target := d.line
	if d.ownLine {
		target = d.line + 1
	}
	if line != target {
		return false
	}
	if d.analyzers == "all" {
		return true
	}
	for _, a := range strings.Split(d.analyzers, ",") {
		if strings.TrimSpace(a) == name {
			return true
		}
	}
	return false
}

// FilterIgnored drops diagnostics matched by a directive, marking the
// directives that fired.
func FilterIgnored(fset *token.FileSet, directives []*Directive, diags []Diagnostic) []Diagnostic {
	if len(directives) == 0 {
		return diags
	}
	var kept []Diagnostic
	for _, diag := range diags {
		pos := fset.Position(diag.Pos)
		suppressed := false
		for _, d := range directives {
			if d.matches(diag.Analyzer.Name, pos.Filename, pos.Line) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}
	return kept
}
