package analysis

import (
	"go/constant"
	"go/types"
)

// constInt64 extracts an int64 from a constant type-and-value, if the
// constant is integral and in range.
func constInt64(tv types.TypeAndValue) (int64, bool) {
	val := constant.ToInt(tv.Value)
	if val.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(val)
}
