// Package analysis is a self-contained, stdlib-only modular static
// analysis framework modeled on golang.org/x/tools/go/analysis. The repo
// vendors no third-party modules (experiments must build offline and
// hermetically), so the few pieces of the x/tools API the lint suite needs
// — Analyzer, Pass, Diagnostic, a preorder inspector, and suppression
// directives — are reimplemented here on top of go/ast and go/types.
//
// An Analyzer is a named check with a Run function. The driver
// (internal/analysis/checker, used by cmd/partlint and the analysistest
// harness) type-checks each package, builds a Pass, invokes every
// analyzer, filters diagnostics through //lint:ignore directives, and
// reports what survives. Analyzers in this tree are pure functions of the
// Pass: no facts, no cross-package state, no mutation of the AST.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks and
	// which invariant of the paper it protects.
	Doc string
	// Run applies the check to a single type-checked package, reporting
	// findings through pass.Report. A non-nil error aborts the whole lint
	// run (reserved for internal failures, not findings).
	Run func(*Pass) error
	// FactTypes declares the fact types this analyzer exports and imports
	// (pointers to gob-encodable structs). An analyzer with no FactTypes
	// is purely local; the driver skips it when a package is analyzed only
	// for its facts (vet-tool VetxOnly units).
	FactTypes []Fact
}

func (a *Analyzer) String() string { return a.Name }

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The checker wires this to the
	// suppression filter and the output sink.
	Report func(Diagnostic)
	// Facts is the cross-package fact store for this run, shared by every
	// analyzer and package (see Fact). Nil when the driver runs without
	// facts; the Pass fact methods then degrade to no-ops.
	Facts *FactSet
}

// ExportObjectFact associates fact with obj, which must be declared in
// the package under analysis, for later ImportObjectFact calls from
// packages that import it. Unsupported object shapes (see ObjectPath)
// return an error.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) error {
	if p.Facts == nil {
		return nil
	}
	return p.Facts.exportObject(obj, fact)
}

// ImportObjectFact copies the fact of fact's type previously exported for
// obj into fact, reporting whether one existed. It works uniformly for
// objects of the package under analysis (exported earlier in the same
// run) and for imported objects (exported when their package was
// analyzed, or decoded from a .vetx fact file).
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.Facts == nil {
		return false
	}
	return p.Facts.importObject(obj, fact)
}

// ExportPackageFact associates fact with the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.Facts == nil {
		return
	}
	p.Facts.exportPackage(p.Pkg.Path(), fact)
}

// ImportPackageFact copies the package-level fact previously exported for
// pkg into fact.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.Facts == nil || pkg == nil {
		return false
	}
	return p.Facts.importPackage(pkg.Path(), fact)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer})
}

// Preorder walks every file of the pass in depth-first preorder, invoking
// fn for each node whose concrete type matches one of the example nodes in
// match (an empty match list visits every node). It is the working subset
// of x/tools' ast/inspector used by this repo's analyzers.
func (p *Pass) Preorder(match []ast.Node, fn func(ast.Node)) {
	want := make(map[string]bool, len(match))
	for _, m := range match {
		want[fmt.Sprintf("%T", m)] = true
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if len(want) == 0 || want[fmt.Sprintf("%T", n)] {
				fn(n)
			}
			return true
		})
	}
}

// InTestFile reports whether pos lies in a _test.go file. Standalone
// loading never sees test sources, but `go vet -vettool` units include
// them; analyzers whose rules target production code use this to relax
// them in tests.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// FuncNameOf resolves the fully qualified name of the function or method
// called by call, in the form "pkg/path.Func" for package-level functions
// and "(pkg/path.Recv).Method" / "(*pkg/path.Recv).Method" for methods —
// the same shape types.Func.FullName produces. It returns "" when the
// callee is not a statically resolvable named function (builtin calls,
// calls of function values, type conversions).
func (p *Pass) FuncNameOf(call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	fn, ok := p.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return ""
	}
	return fn.FullName()
}

// ConstIntValue evaluates e as a compile-time integer constant using the
// type-checker's constant folding. ok is false for non-constant
// expressions and for constants that do not fit in int64.
func (p *Pass) ConstIntValue(e ast.Expr) (v int64, ok bool) {
	tv, found := p.TypesInfo.Types[e]
	if !found || tv.Value == nil {
		return 0, false
	}
	return constInt64(tv)
}
