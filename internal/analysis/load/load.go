// Package load type-checks Go packages for the lint suite without any
// dependency outside the standard library.
//
// The strategy mirrors what real analysis drivers do, using only tools the
// container already has: `go list -deps -export -json` produces, entirely
// offline, a compiled export-data file for every package in the build
// graph (stdlib included, via the build cache). Each target package is
// then parsed from source and type-checked with go/types, resolving every
// import through those export files via go/importer's gc importer. No
// network, no GOPATH tricks, no re-implementation of the spec's import
// resolution.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors holds soft type-checking failures. Analyzers still run on
	// partially checked packages, but drivers should surface these.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Context owns the export-data map and the shared file set and importer,
// so type identity is consistent across every package loaded through it.
type Context struct {
	ModuleDir string
	Fset      *token.FileSet
	exports   map[string]string // import path -> export data file
	importMap map[string]string // source import path -> resolved path
	imp       types.ImporterFrom
	// source holds packages already type-checked from source through this
	// context. Imports resolve here before falling back to export data,
	// which is what lets multi-package fixture suites (a fact-exporting
	// package and a fact-importing one) reference each other without
	// compiled export files.
	source map[string]*types.Package
}

// Import implements types.Importer.
func (c *Context) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: source-loaded packages first,
// then the gc export-data importer.
func (c *Context) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := c.source[path]; ok {
		return pkg, nil
	}
	return c.imp.ImportFrom(path, dir, mode)
}

// NewContext builds a loading context rooted at the module directory,
// priming export data for the packages matching patterns and all their
// dependencies.
func NewContext(moduleDir string, patterns ...string) (*Context, []*listedPackage, error) {
	c := &Context{
		ModuleDir: moduleDir,
		Fset:      token.NewFileSet(),
		exports:   make(map[string]string),
		importMap: make(map[string]string),
		source:    make(map[string]*types.Package),
	}
	c.imp = importer.ForCompiler(c.Fset, "gc", c.lookup).(types.ImporterFrom)
	pkgs, err := c.goList(append([]string{"-deps", "-export"}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}
	return c, pkgs, nil
}

// NewExportContext returns a context that resolves imports purely through
// the supplied export-data file map, with no `go list` fallback. This is
// the loader for `go vet -vettool` mode, where cmd/go hands partlint a
// ready-made map of compiled dependencies in the unit config.
func NewExportContext(exports, importMap map[string]string) *Context {
	c := &Context{
		Fset:      token.NewFileSet(),
		exports:   exports,
		importMap: importMap,
		source:    make(map[string]*types.Package),
	}
	if c.exports == nil {
		c.exports = make(map[string]string)
	}
	if c.importMap == nil {
		c.importMap = make(map[string]string)
	}
	c.imp = importer.ForCompiler(c.Fset, "gc", c.lookupStatic).(types.ImporterFrom)
	return c
}

// lookupStatic resolves exclusively from the primed map.
func (c *Context) lookupStatic(path string) (io.ReadCloser, error) {
	if mapped, ok := c.importMap[path]; ok {
		path = mapped
	}
	file, ok := c.exports[path]
	if !ok {
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
	return os.Open(file)
}

// goList runs `go list -json` with the given extra arguments and records
// export data for every listed package.
func (c *Context) goList(args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = c.ModuleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if p.Export != "" {
			c.exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			c.importMap[from] = to
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// lookup feeds export data to the gc importer.
func (c *Context) lookup(path string) (io.ReadCloser, error) {
	if mapped, ok := c.importMap[path]; ok {
		path = mapped
	}
	file, ok := c.exports[path]
	if !ok {
		// On-demand resolution for imports outside the primed graph (e.g. a
		// test fixture importing a stdlib package the module never uses).
		pkgs, err := c.goList("-export", path)
		if err != nil || len(pkgs) == 0 || pkgs[0].Export == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		file = pkgs[0].Export
	}
	return os.Open(file)
}

// Targets loads every non-standard module package matching patterns.
func Targets(moduleDir string, patterns ...string) (*Context, []*Package, error) {
	c, listed, err := NewContext(moduleDir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	// `go list -deps` includes the dependency closure; analyze only the
	// packages belonging to this module.
	var out []*Package
	for _, lp := range listed {
		if lp.Standard || lp.Module == nil {
			continue
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := c.LoadFiles(lp.ImportPath, files)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, pkg)
	}
	return c, out, nil
}

// LoadFiles parses and type-checks one package from explicit source files.
// Imports resolve through the context's export-data map.
func (c *Context) LoadFiles(importPath string, filenames []string) (*Package, error) {
	pkg := &Package{ImportPath: importPath, Fset: c.Fset}
	if len(filenames) > 0 {
		pkg.Dir = filepath.Dir(filenames[0])
	}
	for _, name := range filenames {
		f, err := parser.ParseFile(c.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: c,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, c.Fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	if tpkg != nil && len(pkg.TypeErrors) == 0 {
		c.source[importPath] = tpkg
	}
	return pkg, nil
}
