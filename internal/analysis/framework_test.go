package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"partalloc/internal/analysis"
)

// checkSource type-checks a single import-free source file, so framework
// behavior is testable without shelling out to the go tool.
func checkSource(t *testing.T, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}, pkg, info
}

// litAnalyzer reports every integer literal; enough to drive the
// directive machinery.
var litAnalyzer = &analysis.Analyzer{
	Name: "lit",
	Doc:  "test analyzer reporting every int literal",
	Run: func(pass *analysis.Pass) error {
		pass.Preorder([]ast.Node{(*ast.BasicLit)(nil)}, func(n ast.Node) {
			if n.(*ast.BasicLit).Kind == token.INT {
				pass.Reportf(n.Pos(), "int literal")
			}
		})
		return nil
	},
}

func runLit(t *testing.T, src string) ([]analysis.Diagnostic, []*analysis.Directive, *token.FileSet) {
	t.Helper()
	fset, files, pkg, info := checkSource(t, src)
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  litAnalyzer,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := litAnalyzer.Run(pass); err != nil {
		t.Fatal(err)
	}
	directives := analysis.ParseDirectives(fset, files)
	return analysis.FilterIgnored(fset, directives, diags), directives, fset
}

func TestDirectiveSuppression(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want int // surviving diagnostics
	}{
		{"no directive", "package p\nvar x = 1\n", 1},
		{"inline", "package p\nvar x = 1 //lint:ignore lit test reason\n", 0},
		{"standalone covers next line", "package p\n//lint:ignore lit test reason\nvar x = 1\n", 0},
		{"standalone does not cover later lines", "package p\n//lint:ignore lit test reason\nvar y = true\nvar x = 1\n", 1},
		{"wrong analyzer name", "package p\nvar x = 1 //lint:ignore other test reason\n", 1},
		{"all silences everything", "package p\nvar x = 1 //lint:ignore all test reason\n", 0},
		{"comma list", "package p\nvar x = 1 //lint:ignore other,lit test reason\n", 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, _, _ := runLit(t, tc.src)
			if len(got) != tc.want {
				t.Errorf("got %d surviving diagnostics, want %d: %+v", len(got), tc.want, got)
			}
		})
	}
}

func TestDirectiveBookkeeping(t *testing.T) {
	_, directives, _ := runLit(t, "package p\nvar x = 1 //lint:ignore lit covered\nvar y = true //lint:ignore lit dangling\n")
	if len(directives) != 2 {
		t.Fatalf("parsed %d directives, want 2", len(directives))
	}
	if !directives[0].Used() {
		t.Error("directive covering a diagnostic not marked used")
	}
	if directives[1].Used() {
		t.Error("dangling directive incorrectly marked used")
	}
}

func TestDirectiveReason(t *testing.T) {
	_, directives, _ := runLit(t, "package p\nvar x = 1 //lint:ignore lit\n")
	if len(directives) != 1 {
		t.Fatalf("parsed %d directives, want 1", len(directives))
	}
	if directives[0].Reason() != "" {
		t.Errorf("reason = %q, want empty (malformed directive)", directives[0].Reason())
	}
}

func TestConstIntValue(t *testing.T) {
	fset, files, pkg, info := checkSource(t, `package p
const k = 3 * 4
var a = k
var b = 1 << 5
func f(n int) int { return n }
`)
	_ = fset
	pass := &analysis.Pass{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	found := map[int64]bool{}
	pass.Preorder([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		if v, ok := pass.ConstIntValue(n.(ast.Expr)); ok {
			found[v] = true
		}
	})
	if !found[12] || !found[32] {
		t.Errorf("constant folding missed values: got %v, want 12 and 32", found)
	}
}
