// Fixture for the powtwo analyzer: constant size arguments must be
// powers of two; run-time values are never flagged.
package powtwo_fixture

import (
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

func bad() {
	tree.MustNew(12) // want `not a power of two`
	m := tree.MustNew(8)
	m.DepthForSize(3)    // want `not a power of two`
	m.SubmachineAt(5, 0) // want `not a power of two`
	m.NumSubmachines(0)  // want `not a power of two`
	b := task.NewBuilder()
	b.Arrive(6)  // want `not a power of two`
	b.Arrive(-4) // want `not a power of two`
}

func good(n int) {
	m := tree.MustNew(16)
	_ = m.Submachines(4)
	b := task.NewBuilder()
	b.Arrive(1)
	b.Arrive(8)
	const k = 32
	tree.MustNew(k)
	// A run-time value may be wrong, but it is not provably wrong, so the
	// allocator's own panic keeps the responsibility.
	tree.MustNew(n)
}
