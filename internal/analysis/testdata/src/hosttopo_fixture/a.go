// Fixture for the hosttopo analyzer: bare tree machine construction is
// flagged; going through a topology host, or documenting a deliberate
// tree-only call site with //lint:ignore, is fine.
package hosttopo_fixture

import (
	"partalloc/internal/topology"
	"partalloc/internal/tree"
)

func bad() *tree.Machine {
	return tree.MustNew(8) // want `bypasses the topology layer`
}

func alsoBad() (*tree.Machine, error) {
	if m, err := tree.New(16); err == nil { // want `bypasses the topology layer`
		return m, nil
	}
	return tree.NewDecomposition(8, nil) // want `bypasses the topology layer`
}

func good() (*tree.Machine, error) {
	host, err := topology.NewHostNamed("hypercube", 16)
	if err != nil {
		return nil, err
	}
	return host.Tree(), nil
}

func documented() *tree.Machine {
	//lint:ignore hosttopo this fixture exercises the suppression path
	return tree.MustNew(4)
}
