// Fixture for the loadmutation analyzer: this package is *not* in the
// audited allowlist, so every load-state mutation is flagged. Read-only
// queries and construction are fine.
package loadmutation_fixture

import (
	"partalloc/internal/copies"
	"partalloc/internal/loadtree"
	"partalloc/internal/tree"
)

func bad(m *tree.Machine) {
	lt := loadtree.New(m)
	lt.Place(m.Root())  // want `mutates PE-load state`
	lt.Remove(m.Root()) // want `mutates PE-load state`
	c := copies.NewCopy(m)
	c.Occupy(m.Root()) // want `mutates PE-load state`
	c.Vacate(m.Root()) // want `mutates PE-load state`
	l := copies.NewList(m)
	l.Place(1) // want `mutates PE-load state`
	l.Reset()  // want `mutates PE-load state`
}

func good(m *tree.Machine) int {
	lt := loadtree.New(m) // constructing state is fine; mutating it is not
	c := copies.NewCopy(m)
	_ = c.Vacant(m.Root())
	_, _ = c.FindVacant(1)
	return lt.MaxLoad()
}
