// placement.go is the placement layer by the analyzer's file-name
// convention: the one file allowed to index stripes and hash tenant
// IDs, because this is where the routing table is maintained.
package placer_fixture

import "hash/fnv"

func hashShard(id string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32()) % shards
}

func shardAt(e *engine, idx int) *shard {
	return e.shards[idx]
}
