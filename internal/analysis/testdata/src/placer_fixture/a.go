// Fixture for the placer analyzer: direct shard-stripe indexing and
// fnv-32a tenant hashing outside placement.go are flagged; the same
// code inside placement.go (the placement layer) is fine, as are other
// fnv widths and //lint:ignore-documented exceptions.
package placer_fixture

import (
	"hash/fnv"
)

type shard struct{ queued int }

type engine struct {
	shards []*shard
}

func bad(e *engine, idx int) *shard {
	return e.shards[idx] // want `bypasses the placement layer`
}

func alsoBad(e *engine, id string) int {
	h := fnv.New32a() // want `single tenant-hashing site`
	h.Write([]byte(id))
	return int(h.Sum32()) % len(e.shards)
}

// good ranges over the stripes without picking one by index — sweeps
// that visit every shard are not routing decisions.
func good(e *engine) int {
	total := 0
	for _, s := range e.shards {
		total += s.queued
	}
	return total
}

// otherWidths is allowed: only fnv-32a is the tenant-routing hash;
// 64-bit fnv fingerprints (the overload path's queue checksums) have
// nothing to do with routes.
func otherWidths(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

func documented(e *engine, idx int) *shard {
	//lint:ignore placer this fixture exercises the suppression path
	return e.shards[idx]
}
