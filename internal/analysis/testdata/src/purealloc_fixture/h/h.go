package h

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock; callers inherit the Impure fact.
func Stamp() int64 { // want Stamp:`impure: wall clock \(time\.Now\)`
	return time.Now().UnixNano()
}

// Indirect is impure only transitively.
func Indirect() int64 { // want Indirect:`impure: h\.Stamp \(wall clock \(time\.Now\)\)`
	return Stamp()
}

// Roll draws from the global math/rand source.
func Roll(n int) int { // want Roll:`impure: global math/rand \(rand\.Intn\)`
	return rand.Intn(n)
}

// Seeded randomness through an injected generator is pure.
func Pick(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

// Double is pure: arithmetic on its arguments only.
func Double(x int) int { return 2 * x }
