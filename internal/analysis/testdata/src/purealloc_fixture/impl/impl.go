package impl

import (
	"math/rand"
	"time"

	"fixtures/purealloc_fixture/core"
	"fixtures/purealloc_fixture/h"
)

// hits is package-level state; allocator methods must not touch it.
var hits int

// Good mutates only its receiver and uses an injected seeded generator.
type Good struct {
	n   int
	rng *rand.Rand
}

func NewGood(seed int64) *Good {
	return &Good{rng: rand.New(rand.NewSource(seed))}
}

func (g *Good) Name() string { return "good" }

func (g *Good) Arrive(t core.Task) int {
	g.n++
	return h.Double(h.Pick(g.rng, t.Size+1))
}

func (g *Good) Depart(id int) { g.n-- }

// Clocky reads the wall clock through a helper two hops away.
type Clocky struct{}

func (Clocky) Name() string { return "clocky" }

func (Clocky) Arrive(t core.Task) int { // want `allocator method impl\.Clocky\.Arrive is impure: h\.Indirect \(h\.Stamp \(wall clock \(time\.Now\)\)\) — allocator decisions must be a pure function of events and seed` Clocky.Arrive:`impure: h\.Indirect \(h\.Stamp \(wall clock \(time\.Now\)\)\)`
	return int(h.Indirect()) % (t.Size + 1)
}

func (Clocky) Depart(id int) {}

// Racy counts arrivals in package state.
type Racy struct{}

func (Racy) Name() string { return "racy" }

func (Racy) Arrive(t core.Task) int { // want `allocator method impl\.Racy\.Arrive is impure: mutates package variable impl\.hits` Racy.Arrive:`impure: mutates package variable impl\.hits`
	hits++
	return t.Size
}

func (Racy) Depart(id int) {}

// Randy draws from the global source directly.
type Randy struct{}

func (Randy) Name() string { return "randy" }

func (Randy) Arrive(t core.Task) int { // want `allocator method impl\.Randy\.Arrive is impure: global math/rand \(rand\.Intn\)` Randy.Arrive:`impure: global math/rand \(rand\.Intn\)`
	return rand.Intn(t.Size + 1)
}

func (Randy) Depart(id int) {}

// Sleepy arms a wall-clock wait.
type Sleepy struct{}

func (Sleepy) Name() string { return "sleepy" }

func (Sleepy) Arrive(t core.Task) int { // want `allocator method impl\.Sleepy\.Arrive is impure: wall clock \(time\.Sleep\)` Sleepy.Arrive:`impure: wall clock \(time\.Sleep\)`
	time.Sleep(time.Millisecond)
	return t.Size
}

func (Sleepy) Depart(id int) {}

// record is NOT an allocator: impure helpers outside implementations get
// facts but no diagnostics.
func record() { // want record:`impure: mutates package variable impl\.hits`
	hits++
}
