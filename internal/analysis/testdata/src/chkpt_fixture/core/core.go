package core

// Task mirrors the module's task shape closely enough for the fixture.
type Task struct {
	ID   int
	Size int
}

// Allocator is the fixture's stand-in for partalloc/internal/core's
// interface; chkpt picks it up by name from any in-scope package.
type Allocator interface {
	Name() string
	Arrive(t Task) int
	Depart(id int)
}

// Checkpointable is the snapshot contract under test.
type Checkpointable interface {
	Snapshot() []byte
	Restore(data []byte) error
}
