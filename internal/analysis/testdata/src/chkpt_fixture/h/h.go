package h

// stash is package-level state; retaining a caller's buffer here is the
// cross-package channel the Retains fact tracks.
var stash []byte

// Keep retains its argument; callers handing it a buffer inherit the
// fact.
func Keep(p []byte) { // want Keep:`retains: param 0 stored in package variable h\.stash`
	stash = p
}

// Fill copies into dst without retaining either slice.
func Fill(dst, src []byte) int {
	return copy(dst, src)
}

// Sum only reads; no fact.
func Sum(p []byte) int {
	s := 0
	for _, b := range p {
		s += int(b)
	}
	return s
}
