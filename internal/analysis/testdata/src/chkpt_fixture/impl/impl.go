package impl

import (
	"fixtures/chkpt_fixture/core"
	"fixtures/chkpt_fixture/h"
)

// Good implements the full snapshot contract: Restore copies its input.
type Good struct {
	n   int
	buf []byte
}

func (g *Good) Name() string           { return "good" }
func (g *Good) Arrive(t core.Task) int { g.n++; return t.Size }
func (g *Good) Depart(id int)          { g.n-- }
func (g *Good) Snapshot() []byte       { return append([]byte(nil), g.buf...) }

func (g *Good) Restore(data []byte) error {
	g.buf = append(g.buf[:0], data...)
	_ = h.Sum(data)         // reads only; no chain
	_ = h.Fill(g.buf, data) // copies without retaining; no chain
	return nil
}

// Naked is an allocator with no snapshot support at all.
type Naked struct{ n int } // want `allocator impl\.Naked does not implement Checkpointable — engine snapshots, WAL compaction and MoveTenant all require Snapshot/Restore on every allocator`

func (n *Naked) Name() string           { return "naked" }
func (n *Naked) Arrive(t core.Task) int { n.n++; return t.Size }
func (n *Naked) Depart(id int)          { n.n-- }

// Keeper aliases the snapshot buffer straight into its receiver.
type Keeper struct {
	n   int
	buf []byte
}

func (k *Keeper) Name() string           { return "keeper" }
func (k *Keeper) Arrive(t core.Task) int { k.n++; return t.Size }
func (k *Keeper) Depart(id int)          { k.n-- }
func (k *Keeper) Snapshot() []byte       { return append([]byte(nil), k.buf...) }

func (k *Keeper) Restore(data []byte) error { // want Keeper.Restore:`retains: param 0 stored in receiver field` `impl\.Keeper\.Restore retains its input: stored in receiver field — the snapshot buffer belongs to the caller and may be reused; copy the bytes you keep`
	k.buf = data
	return nil
}

// Sneaky retains a re-slice through a helper one package away.
type Sneaky struct {
	n int
}

func (s *Sneaky) Name() string           { return "sneaky" }
func (s *Sneaky) Arrive(t core.Task) int { s.n++; return t.Size }
func (s *Sneaky) Depart(id int)          { s.n-- }
func (s *Sneaky) Snapshot() []byte       { return nil }

func (s *Sneaky) Restore(data []byte) error { // want Sneaky.Restore:`retains: param 0 h\.Keep \(param 0 stored in package variable h\.stash\)` `impl\.Sneaky\.Restore retains its input: h\.Keep \(param 0 stored in package variable h\.stash\) — the snapshot buffer belongs to the caller and may be reused; copy the bytes you keep`
	h.Keep(data[8:])
	return nil
}

// NotAnAllocator retains a buffer but implements neither interface, so
// only the fact is exported — no diagnostic.
type NotAnAllocator struct {
	raw []byte
}

func (n *NotAnAllocator) Load(data []byte) { // want NotAnAllocator.Load:`retains: param 0 stored in receiver field`
	n.raw = data
}

// Interface compliance pins for the fixture itself.
var (
	_ core.Allocator      = (*Good)(nil)
	_ core.Checkpointable = (*Good)(nil)
	_ core.Allocator      = (*Naked)(nil)
	_ core.Allocator      = (*Keeper)(nil)
	_ core.Checkpointable = (*Keeper)(nil)
	_ core.Allocator      = (*Sneaky)(nil)
	_ core.Checkpointable = (*Sneaky)(nil)
)
