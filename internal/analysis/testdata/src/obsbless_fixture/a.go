// Fixture for the obsbless analyzer: direct construction of the obs
// registry, recorder, or sink is flagged; holding and calling through an
// injected *obs.Sink, or documenting a deliberate private registry with
// //lint:ignore, is fine.
package obsbless_fixture

import (
	"partalloc/internal/obs"
)

func bad() *obs.Metrics {
	return obs.NewMetrics() // want `shadow registry`
}

func alsoBad() *obs.Sink {
	fr := obs.NewFlightRecorder(256)         // want `shadow registry`
	return obs.NewSink(obs.NewMetrics(), fr) // want `shadow registry` `shadow registry`
}

// good holds an injected sink and calls through it — consuming
// observability is always allowed; only minting it is gated.
func good(sink *obs.Sink) {
	sink.QueueDepth("t", 3)
	_ = sink.Metrics()
}

func documented() *obs.Metrics {
	//lint:ignore obsbless this fixture exercises the suppression path
	return obs.NewMetrics()
}
