package a

import (
	"errors"
	"fmt"
)

// ErrBoom and ErrMinor are sentinels: exported package-level Err* error
// variables.
var (
	ErrBoom  = errors.New("boom")
	ErrMinor = errors.New("minor")
)

// errLocal is unexported, so it is not a sentinel.
var errLocal = errors.New("local")

func Fail() error { // want Fail:`wraps: a\.ErrBoom`
	return ErrBoom
}

func Wrap() error { // want Wrap:`wraps: a\.ErrBoom`
	return fmt.Errorf("wrap: %w", ErrBoom)
}

// Chain wraps through a local variable and a same-package call.
func Chain() error { // want Chain:`wraps: a\.ErrBoom`
	err := Wrap()
	if err != nil {
		return fmt.Errorf("chain: %w", err)
	}
	return nil
}

func Both(flag bool) (int, error) { // want Both:`wraps: a\.ErrBoom, a\.ErrMinor`
	if flag {
		return 0, ErrMinor
	}
	return 0, fmt.Errorf("both: %w", Fail())
}

// Joined carries every joined sentinel.
func Joined() error { // want Joined:`wraps: a\.ErrBoom, a\.ErrMinor`
	return errors.Join(ErrBoom, ErrMinor)
}

// Opaque flattens the sentinel with %v: flagged, and no fact — the chain
// really is severed.
func Opaque() error {
	return fmt.Errorf("opaque: %v", ErrBoom) // want `error wrapping a\.ErrBoom formatted with %v severs the chain; use %w`
}

// Named returns through a named result.
func Named() (err error) { // want Named:`wraps: a\.ErrMinor`
	err = ErrMinor
	return
}

// Clean carries no sentinel: fresh and unexported errors do not count.
func Clean(flag bool) error {
	if flag {
		return errLocal
	}
	return errors.New("fresh")
}
