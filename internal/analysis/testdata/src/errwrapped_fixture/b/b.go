package b

import (
	"errors"
	"fmt"

	"fixtures/errwrapped_fixture/a"
)

func Handle() error { // want Handle:`wraps: a\.ErrBoom`
	err := a.Chain()
	if err == a.ErrBoom { // want `== comparison with sentinel a\.ErrBoom misses wrapped errors; use errors\.Is\(err, a\.ErrBoom\)`
		return nil
	}
	if a.ErrMinor != err { // want `!= comparison with sentinel a\.ErrMinor misses wrapped errors`
		return nil
	}
	switch err {
	case a.ErrBoom: // want `switch case on sentinel a\.ErrBoom misses wrapped errors; use errors\.Is`
		return nil
	case nil:
		return nil
	}
	if errors.Is(err, a.ErrBoom) { // correct idiom, no finding
		return nil
	}
	return err
}

// Flatten formats a fact-carrying error with %v: the imported
// WrapsSentinels fact for a.Chain convicts it.
func Flatten() error {
	err := a.Chain()
	return fmt.Errorf("flatten: %v", err) // want `error wrapping a\.ErrBoom formatted with %v severs the chain; use %w`
}

// FlattenCall needs no local variable: the call's fact applies directly.
func FlattenCall() error {
	return fmt.Errorf("run: %s", a.Both) // no finding: a function value, not an error
}

func FlattenBoth() error {
	_, err := a.Both(true)
	return fmt.Errorf("both: %v", err) // want `error wrapping a\.ErrBoom, a\.ErrMinor formatted with %v severs the chain`
}

// Rewrap keeps the chain intact and inherits the sentinel set.
func Rewrap() error { // want Rewrap:`wraps: a\.ErrBoom`
	return fmt.Errorf("rewrap: %w", a.Fail())
}

// SentinelPair comparisons are exact and allowed.
func SentinelPair() bool {
	return a.ErrBoom == a.ErrMinor
}

// Fresh errors carry no sentinel; %v is fine.
func Fresh() error {
	return fmt.Errorf("fresh: %v", errors.New("untracked"))
}
