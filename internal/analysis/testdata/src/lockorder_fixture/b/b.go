// Package b is the fact-importing half of the lockorder fixture: it
// holds mutexes across calls into package a, and the analyzer must see
// a's Blocks facts to convict the cross-package cases.
package b

import (
	"sync"

	"fixtures/lockorder_fixture/a"
)

type S struct {
	mu sync.Mutex
	n  int
}

// Good is the disciplined pattern: short CPU-only critical section.
func (s *S) Good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n += a.Fine()
	return s.n
}

func (s *S) BlockUnderLock() { // want S.BlockUnderLock:`blocks: calls a.Park \(channel receive\)`
	s.mu.Lock()
	defer s.mu.Unlock()
	a.Park() // want `blocking operation \(calls a.Park \(channel receive\)\) while s.mu is held`
}

func (s *S) ChanUnderLock(ch chan int) { // want S.ChanUnderLock:`blocks: channel receive`
	s.mu.Lock()
	defer s.mu.Unlock()
	<-ch // want `blocking operation \(channel receive\) while s.mu is held`
}

func (s *S) EarlyReturn(cond bool) int {
	s.mu.Lock()
	if cond {
		return 0 // want `return while s.mu is held \(no deferred Unlock on this path\)`
	}
	s.mu.Unlock()
	return s.n
}

func (s *S) Relock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want `s.mu locked again while already held \(deadlock\)`
}

func (s *S) NeverUnlocked() {
	s.mu.Lock() // want `s.mu.Lock without a matching Unlock in this function`
	s.n++
}

// AfterUnlock must produce no held-region diagnostic: the blocking call
// happens outside the critical section (it still earns a Blocks fact).
func (s *S) AfterUnlock() { // want S.AfterUnlock:`blocks: calls a.Park \(channel receive\)`
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	a.Park()
}

func Copy(s S) { // want `parameter passes sync.Mutex by value; use a pointer`
	_ = s
}

func CopyAssign(s *S) {
	t := *s // want `assignment copies sync.Mutex by value; use a pointer`
	_ = t.n
}

// PointerUse is fine: no lock value is copied.
func PointerUse(s *S) *S { return s }
