// Package a is the fact-exporting half of the lockorder fixture: its
// blocking helpers must be visible to package b through Blocks facts.
package a

import "sync"

var ch = make(chan int)

func Park() { // want Park:`blocks: channel receive`
	<-ch
}

func Send(v int) { // want Send:`blocks: channel send`
	ch <- v
}

// Fine is CPU-only; it must not receive a fact.
func Fine() int { return 1 }

func WaitAll(wg *sync.WaitGroup) { // want WaitAll:`blocks: WaitGroup.Wait`
	wg.Wait()
}

// Indirect blocks only through a same-package callee: the fixpoint must
// propagate Park's reason before the fact is exported.
func Indirect() { // want Indirect:`blocks: calls a.Park \(channel receive\)`
	Park()
}

// Spawn launches a goroutine that parks; the launcher itself never does.
func Spawn() {
	go func() { <-ch }()
}

// Poll uses a select with default, which cannot park.
func Poll() bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}
