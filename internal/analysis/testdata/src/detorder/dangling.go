package detorder_fixture

// A directive that suppresses nothing is itself an error, so stale
// exceptions cannot linger after the code beneath them is fixed.
func danglingDirective(xs []int) int {
	n := 0
	//lint:ignore detorder nothing below actually iterates a map // want `matched no diagnostic`
	for range xs {
		n++
	}
	return n
}
