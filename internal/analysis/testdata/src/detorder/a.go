// Fixture for the detorder analyzer: map iteration feeding
// order-sensitive sinks is flagged; aggregation, the
// collect-keys-then-sort idiom, and documented suppressions are not.
package detorder_fixture

import (
	"fmt"
	"sort"
	"strings"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order`
		out = append(out, k)
	}
	return out
}

func badPrint(m map[string]int) {
	for k, v := range m { // want `map iteration order`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `map iteration order`
		b.WriteString(k)
	}
	return b.String()
}

func goodSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodAggregate(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func goodSliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func goodSuppressed(m map[string]int) []string {
	var out []string
	//lint:ignore detorder fixture exercises the suppression path
	for k := range m {
		out = append(out, k)
	}
	return out
}
