// Negative fixture for the loadmutation analyzer: this package name
// marks it as part of the audited allowlist, so the same mutations that
// are flagged in loadmutation_fixture produce no diagnostics here.
package loadmutation_fixture_allowed

import (
	"partalloc/internal/copies"
	"partalloc/internal/loadtree"
	"partalloc/internal/tree"
)

func allowed(m *tree.Machine) {
	lt := loadtree.New(m)
	lt.Place(m.Root())
	lt.Remove(m.Root())
	l := copies.NewList(m)
	l.Place(1)
	l.Reset()
}
