package main

import "context"

// main packages own the process lifetime: creating the root context here
// is the whole point of the rule.
func main() { // want main:`creates-root: context\.Background`
	helper(context.Background())
}

// helper already received a ctx, so re-rooting inside it is flagged even
// in a main package.
func helper(ctx context.Context) { // want helper:`creates-root: context\.TODO`
	_ = context.TODO() // want `function receives ctx; use it instead of context\.TODO\(\)`
}
