package b

import (
	"context"

	"fixtures/ctxflow_fixture/a"
)

// Good propagates its ctx everywhere a callee accepts one.
func Good(ctx context.Context) {
	a.WorkContext(ctx)
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	a.WorkContext(sub)
	_ = a.Plain()
}

func DropsToSibling(ctx context.Context) {
	a.Work() // want `a\.Work drops ctx: call a\.WorkContext instead`
}

func MethodSibling(ctx context.Context, r a.Runner) {
	r.Go() // want `a\.Runner\.Go drops ctx: call a\.Runner\.GoContext instead`
}

func FreshRoot(ctx context.Context) context.Context { // want FreshRoot:`creates-root: context\.Background`
	return context.Background() // want `function receives ctx; use it instead of context\.Background\(\)`
}

// CallsFactFn trips over the CreatesRoot fact imported from package a.
func CallsFactFn(ctx context.Context) { // want CallsFactFn:`creates-root: a\.MakeRoot \(context\.Background\)`
	_ = a.MakeRoot() // want `a\.MakeRoot creates its own root context \(context\.Background\) while ctx is in scope`
}

// Transitive sees through one more hop via package a's fixpoint.
func Transitive(ctx context.Context) { // want Transitive:`creates-root: a\.Wrap \(a\.MakeRoot \(context\.Background\)\)`
	_ = a.Wrap() // want `a\.Wrap creates its own root context \(a\.MakeRoot \(context\.Background\)\)`
}

// Nested still sees the enclosing ctx inside a closure.
func Nested(ctx context.Context) { // want Nested:`creates-root: f \(a\.Wrap \(a\.MakeRoot \(context\.Background\)\)\)`
	f := func() {
		_ = a.Wrap() // want `a\.Wrap creates its own root context`
	}
	f()
}

// root is a same-package re-rooting helper.
func root() context.Context { // want root:`creates-root: context\.Background`
	return context.Background() // want `context\.Background\(\) outside a main package`
}

// SamePkg resolves root through the local fixpoint, not facts.
func SamePkg(ctx context.Context) { // want SamePkg:`creates-root: b\.root \(context\.Background\)`
	_ = root() // want `b\.root creates its own root context \(context\.Background\)`
}

// NoCtx has no ctx in scope, so calling fact-marked helpers is allowed —
// it merely inherits the fact itself.
func NoCtx() context.Context { // want NoCtx:`creates-root: a\.MakeRoot \(context\.Background\)`
	return a.MakeRoot()
}

// Base / BaseContext: the Context variant may delegate to its own base
// without being told to call itself.
func Base() {}

func BaseContext(ctx context.Context) {
	Base()
}
