package a

import "context"

// MakeRoot re-roots the context; importers holding a ctx that call it get
// flagged through the exported CreatesRoot fact.
func MakeRoot() context.Context { // want MakeRoot:`creates-root: context.Background`
	return context.Background() // want `context\.Background\(\) outside a main package: accept a Context from the caller`
}

func Todo() context.Context { // want Todo:`creates-root: context.TODO`
	return context.TODO() // want `context\.TODO\(\) outside a main package`
}

// Wrap creates a root only transitively.
func Wrap() context.Context { // want Wrap:`creates-root: a\.MakeRoot \(context\.Background\)`
	return MakeRoot()
}

// Work / WorkContext is a sibling pair like Run / RunContext.
func Work() {}

func WorkContext(ctx context.Context) {
	select {
	case <-ctx.Done():
	default:
	}
}

type Runner struct{}

func (Runner) Go() {}

func (Runner) GoContext(ctx context.Context) { _ = ctx.Err() }

// Plain neither creates a root nor has a sibling; calling it with a ctx
// in hand is fine.
func Plain() int { return 1 }
