// Fixture for the panicmsg analyzer: panic string literals must follow
// the "pkg: message" convention — and the tag must be this package's own
// name — so invariant failures stay greppable and point at the right file.
package panicmsg_fixture

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("panicmsg_fixture: boom")

func bad() {
	panic("something went wrong") // want `does not follow`
}

func badSprintf(n int) {
	panic(fmt.Sprintf("bad size %d", n)) // want `does not follow`
}

func badConcat(kind string) {
	panic("unknown workload " + kind) // want `does not follow`
}

func badCase() {
	panic("Fixture: capitalized tag") // want `does not follow`
}

func badTag() {
	panic("copies: some other package's tag") // want `does not match this package's tag`
}

func badTagSprintf(n int) {
	panic(fmt.Sprintf("fault: wrong tag for %d", n)) // want `does not match this package's tag`
}

func good() {
	panic("panicmsg_fixture: something broke")
}

func goodSprintf(n int) {
	panic(fmt.Sprintf("panicmsg_fixture: bad size %d", n))
}

func goodWrap() {
	// The prefix rides in on the wrapped sentinel; not statically checkable.
	panic(fmt.Errorf("%w: extra context", errSentinel))
}

func goodErr(err error) {
	panic(err) // no literal to check
}
