// Fixture for the panicmsg analyzer: panic string literals must follow
// the "pkg: message" convention so invariant failures stay greppable.
package panicmsg_fixture

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("fixture: boom")

func bad() {
	panic("something went wrong") // want `does not follow`
}

func badSprintf(n int) {
	panic(fmt.Sprintf("bad size %d", n)) // want `does not follow`
}

func badConcat(kind string) {
	panic("unknown workload " + kind) // want `does not follow`
}

func badCase() {
	panic("Fixture: capitalized tag") // want `does not follow`
}

func good() {
	panic("fixture: something broke")
}

func goodSprintf(n int) {
	panic(fmt.Sprintf("fixture: bad size %d", n))
}

func goodWrap() {
	// The prefix rides in on the wrapped sentinel; not statically checkable.
	panic(fmt.Errorf("%w: extra context", errSentinel))
}

func goodErr(err error) {
	panic(err) // no literal to check
}
