// Fixture for the seedrand analyzer: the global math/rand source is
// forbidden; injected, explicitly seeded generators are fine.
package seedrand_fixture

import "math/rand"

func bad() int {
	return rand.Intn(10) // want `global math/rand`
}

func alsoBad() (float64, []int) {
	return rand.Float64(), rand.Perm(4) // want `global math/rand` `global math/rand`
}

func good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) // method on the injected generator: allowed
}
