// Package copies implements the paper's "copies of T" abstraction used by
// the basic algorithm A_B, the reallocation procedure A_R, and therefore
// the 0-reallocation algorithm A_C and the d-reallocation algorithm A_M
// (§3, §4.1).
//
// The allocator conceptually maintains a list of identical copies of the
// machine T, ordered by creation time. Within a copy each PE may be
// assigned to at most one task; a submachine of a copy is vacant if none of
// its PEs is assigned. Each copy is emulated as a distinct thread layer on
// the real machine, so the real load of a PE is the number of copies in
// which it is occupied, and the machine's maximum load is at most the
// number of copies.
//
// A Copy is a buddy allocator over the machine tree: it tracks, per node,
// the number of occupied PEs in the subtree and the size of the largest
// vacant submachine in the subtree, giving O(log N) leftmost-vacant search
// and O(log N) occupy/vacate.
package copies

import (
	"fmt"
	"sort"

	"partalloc/internal/errs"
	"partalloc/internal/tree"
)

// Copy is one copy of the machine: a buddy allocator whose units are
// complete subtrees. The zero value is unusable; use NewCopy.
type Copy struct {
	m         *tree.Machine
	occupied  []int32 // occupied[v]: count of occupied PEs in v's subtree
	maxVacant []int32 // maxVacant[v]: PE count of the largest vacant submachine within v's subtree
	assigned  []bool  // assigned[v]: a task is assigned exactly at v
	tasks     int     // number of assigned tasks
	// blocked[v] counts blocked (failed) PEs in v's subtree; a blocked PE
	// is not occupied by any task but is excluded from vacancy, so
	// FindVacant never returns a submachine covering it. Allocated lazily
	// on the first Block so fault-free runs pay nothing.
	blocked []int32
}

// NewCopy returns a fresh, fully vacant copy of machine m.
func NewCopy(m *tree.Machine) *Copy {
	nn := m.NumNodes() + 1
	c := &Copy{
		m:         m,
		occupied:  make([]int32, nn),
		maxVacant: make([]int32, nn),
		assigned:  make([]bool, nn),
	}
	// Depth-d nodes occupy heap indices [2^d, 2^(d+1)) and all have size
	// N/2^d; filling per level avoids a Size call per node.
	for d, size := 0, int32(m.N()); size >= 1; d, size = d+1, size/2 {
		lo, hi := 1<<d, 1<<(d+1)
		if hi > m.NumNodes()+1 {
			hi = m.NumNodes() + 1
		}
		for v := lo; v < hi; v++ {
			c.maxVacant[v] = size
		}
	}
	return c
}

// Machine returns the machine this copy mirrors.
func (c *Copy) Machine() *tree.Machine { return c.m }

// Tasks returns the number of tasks currently assigned in this copy.
func (c *Copy) Tasks() int { return c.tasks }

// Empty reports whether no task is assigned in this copy.
func (c *Copy) Empty() bool { return c.tasks == 0 }

// OccupiedPEs returns the number of occupied PEs in the whole copy.
func (c *Copy) OccupiedPEs() int { return int(c.occupied[1]) }

// Vacant reports whether the submachine rooted at v is vacant (no PE under
// v is assigned to any task).
func (c *Copy) Vacant(v tree.Node) bool { return c.occupied[v] == 0 }

// Assigned reports whether a task is assigned exactly at v.
func (c *Copy) Assigned(v tree.Node) bool { return c.assigned[v] }

// FindVacant returns the leftmost vacant submachine of exactly the given
// size (a power of two ≤ N), or ok=false if none exists. O(log N): descend
// left-first, pruning subtrees whose maxVacant is too small.
func (c *Copy) FindVacant(size int) (v tree.Node, ok bool) {
	d := c.m.DepthForSize(size) // validates size
	if c.maxVacant[1] < int32(size) {
		return 0, false
	}
	u := tree.Node(1)
	for depth := 0; depth < d; depth++ {
		l, r := c.m.Left(u), c.m.Right(u)
		if c.maxVacant[l] >= int32(size) {
			u = l
		} else {
			u = r
		}
	}
	return u, true
}

// blockedAt returns the blocked-PE count of v's subtree (0 when no PE was
// ever blocked in this copy).
func (c *Copy) blockedAt(v tree.Node) int32 {
	if c.blocked == nil {
		return 0
	}
	return c.blocked[v]
}

// Blocked reports whether v's subtree contains a blocked (failed) PE.
func (c *Copy) Blocked(v tree.Node) bool { return c.blockedAt(v) > 0 }

// Block marks the leaf v as failed: it stays unassigned but is excluded
// from vacancy, so no future placement covers it. The leaf must not lie
// inside an assigned submachine — the caller migrates affected tasks away
// first.
func (c *Copy) Block(v tree.Node) {
	if !c.m.IsLeaf(v) {
		panic(fmt.Sprintf("copies: Block(%d) of non-leaf node", v))
	}
	if c.blockedAt(v) != 0 {
		panic(fmt.Sprintf("copies: Block(%d) of already-blocked leaf", v))
	}
	if c.occupied[v] != 0 {
		panic(fmt.Sprintf("copies: Block(%d) of occupied leaf", v))
	}
	c.m.Ancestors(v, func(u tree.Node) bool {
		if c.assigned[u] {
			panic(fmt.Sprintf("copies: Block(%d) inside occupied submachine %d", v, u))
		}
		return true
	})
	if c.blocked == nil {
		c.blocked = make([]int32, len(c.occupied))
	}
	c.blocked[v] = 1
	c.maxVacant[v] = 0
	for u := c.m.Parent(v); u >= 1; u = c.m.Parent(u) {
		c.blocked[u]++
		c.recomputeVacant(u)
		if u == 1 {
			break
		}
	}
}

// Unblock reverses Block on a recovered leaf.
func (c *Copy) Unblock(v tree.Node) {
	if !c.m.IsLeaf(v) {
		panic(fmt.Sprintf("copies: Unblock(%d) of non-leaf node", v))
	}
	if c.blockedAt(v) == 0 {
		panic(fmt.Sprintf("copies: Unblock(%d) of non-blocked leaf", v))
	}
	c.blocked[v] = 0
	c.maxVacant[v] = 1
	for u := c.m.Parent(v); u >= 1; u = c.m.Parent(u) {
		c.blocked[u]--
		c.recomputeVacant(u)
		if u == 1 {
			break
		}
	}
}

// Occupy assigns a task to the submachine rooted at v, which must be
// vacant. All PEs under v become occupied.
func (c *Copy) Occupy(v tree.Node) {
	if !c.m.Valid(v) {
		panic(fmt.Sprintf("copies: invalid node %d", v))
	}
	if c.occupied[v] != 0 {
		panic(fmt.Sprintf("copies: Occupy(%d) of non-vacant submachine", v))
	}
	if c.blockedAt(v) != 0 {
		panic(fmt.Sprintf("copies: Occupy(%d) of submachine with a blocked (failed) PE", v))
	}
	c.m.Ancestors(v, func(u tree.Node) bool {
		if c.assigned[u] {
			panic(fmt.Sprintf("copies: Occupy(%d) inside occupied submachine %d", v, u))
		}
		return true
	})
	size := int32(c.m.Size(v))
	c.assigned[v] = true
	c.tasks++
	c.occupied[v] = size
	c.maxVacant[v] = 0
	for u := c.m.Parent(v); u >= 1; u = c.m.Parent(u) {
		c.occupied[u] += size
		c.recomputeVacant(u)
		if u == 1 {
			break
		}
	}
}

// Vacate releases the task assigned exactly at v.
func (c *Copy) Vacate(v tree.Node) {
	if !c.assigned[v] {
		panic(fmt.Sprintf("copies: Vacate(%d) with no task assigned there", v))
	}
	size := int32(c.m.Size(v))
	c.assigned[v] = false
	c.tasks--
	c.occupied[v] = 0
	c.maxVacant[v] = size
	for u := c.m.Parent(v); u >= 1; u = c.m.Parent(u) {
		c.occupied[u] -= size
		c.recomputeVacant(u)
		if u == 1 {
			break
		}
	}
}

func (c *Copy) recomputeVacant(u tree.Node) {
	if c.occupied[u] == 0 && c.blockedAt(u) == 0 {
		c.maxVacant[u] = int32(c.m.Size(u))
		return
	}
	l, r := c.maxVacant[c.m.Left(u)], c.maxVacant[c.m.Right(u)]
	if l < r {
		l = r
	}
	c.maxVacant[u] = l
}

// MaximalVacant returns the roots of all maximal vacant submachines — the
// vacant submachines not properly contained in any other vacant submachine
// — in leftmost order. Used to check the paper's Claim 1 of Lemma 2
// (A_B never creates two maximal vacant submachines of the same size).
func (c *Copy) MaximalVacant() []tree.Node {
	var out []tree.Node
	var walk func(v tree.Node)
	walk = func(v tree.Node) {
		if c.occupied[v] == 0 && c.blockedAt(v) == 0 {
			out = append(out, v)
			return
		}
		if c.m.IsLeaf(v) {
			return
		}
		walk(c.m.Left(v))
		walk(c.m.Right(v))
	}
	if c.occupied[1] == 0 && c.blockedAt(1) == 0 {
		// Whole copy vacant: the root is the single maximal vacant submachine.
		return []tree.Node{1}
	}
	walk(1)
	return out
}

// AssignedNodes returns the nodes with tasks assigned, leftmost-first by
// heap index order per depth via simple in-order scan of all nodes.
func (c *Copy) AssignedNodes() []tree.Node {
	var out []tree.Node
	for v := 1; v <= c.m.NumNodes(); v++ {
		if c.assigned[v] {
			out = append(out, tree.Node(v))
		}
	}
	return out
}

// CheckInvariants recomputes aggregates from scratch and panics on
// mismatch; used in tests.
func (c *Copy) CheckInvariants() {
	var rec func(v tree.Node) (occ, blk, vac int32)
	rec = func(v tree.Node) (int32, int32, int32) {
		var occ, blk, vac int32
		if c.assigned[v] {
			occ = int32(c.m.Size(v))
			vac = 0
		} else if c.m.IsLeaf(v) {
			occ = 0
			blk = c.blockedAt(v)
			if blk == 0 {
				vac = 1
			}
		} else {
			lo, lb, lv := rec(c.m.Left(v))
			ro, rb, rv := rec(c.m.Right(v))
			occ = lo + ro
			blk = lb + rb
			if occ == 0 && blk == 0 {
				vac = int32(c.m.Size(v))
			} else {
				vac = lv
				if rv > vac {
					vac = rv
				}
			}
		}
		if occ != c.occupied[v] {
			panic(fmt.Sprintf("copies: occupied[%d]=%d recomputed %d", v, c.occupied[v], occ))
		}
		if blk != c.blockedAt(v) {
			panic(fmt.Sprintf("copies: blocked[%d]=%d recomputed %d", v, c.blockedAt(v), blk))
		}
		if vac != c.maxVacant[v] {
			panic(fmt.Sprintf("copies: maxVacant[%d]=%d recomputed %d", v, c.maxVacant[v], vac))
		}
		return occ, blk, vac
	}
	rec(1)
	// Nested assignment check: no assigned node may have an assigned
	// ancestor (a task inside a region occupied by another task).
	for v := 2; v <= c.m.NumNodes(); v++ {
		if !c.assigned[v] {
			continue
		}
		c.m.Ancestors(tree.Node(v), func(u tree.Node) bool {
			if c.assigned[u] {
				panic(fmt.Sprintf("copies: nested assignment %d under %d", v, u))
			}
			return true
		})
	}
}

// List is an ordered collection of copies, searched in creation order as
// A_B and A_R require. The zero value is ready to use.
type List struct {
	m      *tree.Machine
	copies []*Copy
	// blockedLeaves records the currently failed leaves, sorted by node
	// index. Every existing copy has them blocked, and copies created by
	// Place are pre-blocked before placement, so no assignment ever covers
	// a failed PE. The registry survives Reset: a rebuild after a failure
	// must still avoid the failed PEs.
	blockedLeaves []tree.Node
	// firstFit[d] is a lower bound on the index of the first copy that can
	// hold a task of depth-d size (size = N/2^d): every earlier copy is
	// known to hold no vacant submachine of that size. Occupying only
	// removes vacancies, so placements keep the bound valid; Vacate,
	// Unblock, and Reset create vacancies and rewind it. This turns A_B's
	// first-fit scan from O(copies) per arrival into amortized O(1).
	firstFit []int
}

// NewList returns an empty copy list for machine m.
func NewList(m *tree.Machine) *List { return &List{m: m} }

// LevelWidth returns the number of distinct physical switch blocks at
// depth d of the machine's decomposition (see tree.NewDecomposition):
// first-fit packing is identical across hosts, but host-aware consumers
// use the widths to report per-physical-level capacity on non-binary
// hierarchies such as the fat tree.
func (l *List) LevelWidth(d int) int { return l.m.LevelWidth(d) }

// Len returns the number of copies ever created and still held.
func (l *List) Len() int { return len(l.copies) }

// At returns the i-th copy (creation order).
func (l *List) At(i int) *Copy { return l.copies[i] }

// Grow appends n fresh copies (with every currently failed leaf
// pre-blocked), without placing anything in them. Checkpoint restore uses
// it to recreate a list whose copy indices — including trailing empty
// copies — match the snapshotted layout exactly.
func (l *List) Grow(n int) {
	for i := 0; i < n; i++ {
		l.copies = append(l.copies, l.newCopy())
	}
}

// OccupyAt occupies submachine v in the copyIdx-th copy directly, bypassing
// the first-fit scan. Checkpoint restore uses it to replay a snapshotted
// placement verbatim; Copy.Occupy still validates vacancy, blocking, and
// nesting, so corrupt snapshots fail loudly instead of silently packing
// wrong. First-fit hints are left untouched — they are lower bounds, so a
// conservative (zeroed) hint table stays behavior-identical.
func (l *List) OccupyAt(copyIdx int, v tree.Node) {
	l.copies[copyIdx].Occupy(v)
}

// NonEmpty returns the number of copies currently holding at least one
// task. Because copies are only appended, the machine's maximum real load
// is at most this number... and at most Len().
func (l *List) NonEmpty() int {
	k := 0
	for _, c := range l.copies {
		if !c.Empty() {
			k++
		}
	}
	return k
}

// Place implements the shared placement rule of A_B and A_R: search the
// copies in creation order for the first with a vacant submachine of the
// given size, creating a new copy if none has one, and occupy the leftmost
// such submachine. It returns the copy index and the node.
func (l *List) Place(size int) (copyIdx int, v tree.Node) {
	d := l.hintFor(size)
	for i := l.firstFit[d]; i < len(l.copies); i++ {
		c := l.copies[i]
		if u, ok := c.FindVacant(size); ok {
			c.Occupy(u)
			l.firstFit[d] = i
			return i, u
		}
		l.firstFit[d] = i + 1
	}
	c := l.newCopy()
	l.copies = append(l.copies, c)
	u, ok := c.FindVacant(size)
	if !ok {
		// A fresh copy always has vacancies unless every size-`size`
		// submachine of T contains a failed PE: the machine can no longer
		// host tasks of this size at all.
		panic(fmt.Errorf("copies: no size-%d submachine avoids the %d failed PE(s): %w", size, len(l.blockedLeaves), errs.ErrMachineFull))
	}
	c.Occupy(u)
	l.firstFit[d] = len(l.copies) - 1
	return len(l.copies) - 1, u
}

// HasVacant reports whether some existing copy has a vacant submachine of
// the given size — i.e. whether Place would reuse a copy rather than
// create one. It advances the same first-fit hint Place uses.
func (l *List) HasVacant(size int) bool {
	d := l.hintFor(size)
	for i := l.firstFit[d]; i < len(l.copies); i++ {
		if _, ok := l.copies[i].FindVacant(size); ok {
			l.firstFit[d] = i
			return true
		}
		l.firstFit[d] = i + 1
	}
	return false
}

// hintFor validates size, lazily allocates the hint table, and returns the
// depth index for the size.
func (l *List) hintFor(size int) int {
	d := l.m.DepthForSize(size)
	if l.firstFit == nil {
		l.firstFit = make([]int, l.m.Levels()+1)
	}
	return d
}

// rewind lowers every first-fit hint to at most ci after a vacancy appeared
// in copy ci.
func (l *List) rewind(ci int) {
	for d := range l.firstFit {
		if l.firstFit[d] > ci {
			l.firstFit[d] = ci
		}
	}
}

// newCopy builds a copy with every currently failed leaf pre-blocked.
func (l *List) newCopy() *Copy {
	c := NewCopy(l.m)
	for _, leaf := range l.blockedLeaves {
		c.Block(leaf)
	}
	return c
}

// Block marks the leaf as failed in every copy (current and future). The
// leaf must not be inside any assigned submachine in any copy — the
// allocator migrates affected tasks away first.
func (l *List) Block(leaf tree.Node) {
	for _, b := range l.blockedLeaves {
		if b == leaf {
			panic(fmt.Sprintf("copies: Block(%d) of already-blocked leaf", leaf))
		}
	}
	for _, c := range l.copies {
		c.Block(leaf)
	}
	l.blockedLeaves = append(l.blockedLeaves, leaf)
	sort.Slice(l.blockedLeaves, func(i, j int) bool { return l.blockedLeaves[i] < l.blockedLeaves[j] })
}

// Unblock reverses Block on a recovered leaf in every copy.
func (l *List) Unblock(leaf tree.Node) {
	idx := -1
	for i, b := range l.blockedLeaves {
		if b == leaf {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("copies: Unblock(%d) of non-blocked leaf", leaf))
	}
	for _, c := range l.copies {
		c.Unblock(leaf)
	}
	l.blockedLeaves = append(l.blockedLeaves[:idx], l.blockedLeaves[idx+1:]...)
	l.rewind(0) // recovery creates vacancies in every copy
}

// BlockedLeaves returns the currently failed leaves in node order.
func (l *List) BlockedLeaves() []tree.Node {
	return append([]tree.Node(nil), l.blockedLeaves...)
}

// Vacate releases the task at (copyIdx, v). Empty copies are retained so
// copy indices stay stable; the load metric counts per-PE occupancy, so
// retained empty copies do not distort measurements.
func (l *List) Vacate(copyIdx int, v tree.Node) {
	c := l.copies[copyIdx]
	c.Vacate(v)
	// Only sizes up to the copy's (post-merge) largest vacancy can have
	// gained a vacancy here; hints for larger sizes stay valid.
	if l.firstFit != nil {
		minDepth := l.m.DepthForSize(int(c.maxVacant[1]))
		for d := minDepth; d < len(l.firstFit); d++ {
			if l.firstFit[d] > copyIdx {
				l.firstFit[d] = copyIdx
			}
		}
	}
}

// Reset drops all copies (used when a reallocation rebuilds the layout).
func (l *List) Reset() {
	l.copies = l.copies[:0]
	l.rewind(0)
}

// PELoad returns the real load of PE p: the number of copies in which p is
// occupied.
func (l *List) PELoad(p int) int {
	k := 0
	leaf := l.m.LeafOf(p)
	for _, c := range l.copies {
		// PE p is occupied iff some ancestor-or-self of its leaf is assigned.
		if c.assigned[leaf] {
			k++
			continue
		}
		occ := false
		l.m.Ancestors(leaf, func(u tree.Node) bool {
			if c.assigned[u] {
				occ = true
				return false
			}
			return true
		})
		if occ {
			k++
		}
	}
	return k
}
