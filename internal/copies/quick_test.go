package copies

import (
	"math/rand"
	"testing"
	"testing/quick"

	"partalloc/internal/tree"
)

// Property: for any op sequence driven from a seed, every copy's occupied
// PE count equals the sum of its assigned submachine sizes, FindVacant
// never returns an overlapping region, and vacating everything returns the
// copy to pristine state.
func TestCopyOpSequenceProperties(t *testing.T) {
	f := func(seed int64, levelsRaw uint8, steps uint8) bool {
		levels := int(levelsRaw)%6 + 1
		m := tree.MustNew(1 << levels)
		rng := rand.New(rand.NewSource(seed))
		c := NewCopy(m)
		var live []tree.Node
		for i := 0; i < int(steps); i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				j := rng.Intn(len(live))
				c.Vacate(live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				size := 1 << rng.Intn(levels+1)
				v, ok := c.FindVacant(size)
				if !ok {
					continue
				}
				// No overlap with anything live.
				for _, u := range live {
					if m.Contains(u, v) || m.Contains(v, u) {
						return false
					}
				}
				c.Occupy(v)
				live = append(live, v)
			}
			// Occupancy accounting.
			want := 0
			for _, u := range live {
				want += m.Size(u)
			}
			if c.OccupiedPEs() != want || c.Tasks() != len(live) {
				return false
			}
		}
		// Drain and verify pristine.
		for _, u := range live {
			c.Vacate(u)
		}
		if !c.Empty() || c.OccupiedPEs() != 0 {
			return false
		}
		for size := 1; size <= m.N(); size *= 2 {
			v, ok := c.FindVacant(size)
			if !ok || m.SubmachineIndex(v) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: List.Place never returns an overlapping placement within a
// copy and always uses the first copy that fits.
func TestListPlaceProperties(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		m := tree.MustNew(16)
		rng := rand.New(rand.NewSource(seed))
		l := NewList(m)
		type rec struct {
			ci int
			v  tree.Node
		}
		var live []rec
		for i := 0; i < int(steps); i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				j := rng.Intn(len(live))
				l.Vacate(live[j].ci, live[j].v)
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			size := 1 << rng.Intn(5)
			ci, v := l.Place(size)
			// First-fit over copies: no earlier copy may have had room.
			for k := 0; k < ci; k++ {
				if _, ok := l.At(k).FindVacant(size); ok {
					return false
				}
			}
			// No overlap within the copy.
			for _, r := range live {
				if r.ci == ci && (m.Contains(r.v, v) || m.Contains(v, r.v)) {
					return false
				}
			}
			live = append(live, rec{ci, v})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
