package copies

import (
	"math/rand"
	"testing"

	"partalloc/internal/tree"
)

// naiveFirstFit is the reference first-fit rule: scan every copy from the
// front. The hinted Place must pick the same copy and node.
func naiveFirstFit(l *List, size int) (int, tree.Node, bool) {
	for i := 0; i < l.Len(); i++ {
		if v, ok := l.At(i).FindVacant(size); ok {
			return i, v, true
		}
	}
	return 0, 0, false
}

// TestFirstFitHintMatchesNaiveScan drives a list through random placements,
// vacates, failures, and recoveries, checking before each placement that
// the hinted search agrees with a full scan.
func TestFirstFitHintMatchesNaiveScan(t *testing.T) {
	m := tree.MustNew(32)
	l := NewList(m)
	rng := rand.New(rand.NewSource(5))

	type rec struct {
		ci   int
		node tree.Node
	}
	var live []rec
	var blocked []tree.Node

	for step := 0; step < 4000; step++ {
		switch {
		case len(live) > 0 && rng.Intn(3) == 0:
			i := rng.Intn(len(live))
			l.Vacate(live[i].ci, live[i].node)
			live = append(live[:i], live[i+1:]...)
		case rng.Intn(40) == 0 && len(blocked) < m.N()-1:
			// Fail a random leaf not inside any assigned submachine.
			leaf := m.LeafOf(rng.Intn(m.N()))
			ok := true
			for _, b := range blocked {
				if b == leaf {
					ok = false
					break
				}
			}
			for _, r := range live {
				if m.Contains(r.node, leaf) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			l.Block(leaf)
			blocked = append(blocked, leaf)
		case rng.Intn(40) == 0 && len(blocked) > 0:
			i := rng.Intn(len(blocked))
			l.Unblock(blocked[i])
			blocked = append(blocked[:i], blocked[i+1:]...)
		default:
			size := 1 << rng.Intn(m.Levels()+1)
			wantCi, wantV, inExisting := naiveFirstFit(l, size)
			gotHas := l.HasVacant(size)
			if gotHas != inExisting {
				t.Fatalf("step %d: HasVacant(%d) = %v, naive scan %v", step, size, gotHas, inExisting)
			}
			ci, v := l.Place(size)
			if inExisting && (ci != wantCi || v != wantV) {
				t.Fatalf("step %d: Place(%d) = (%d,%d), naive first-fit (%d,%d)", step, size, ci, v, wantCi, wantV)
			}
			if !inExisting && ci != l.Len()-1 {
				t.Fatalf("step %d: Place(%d) used copy %d but naive scan says a new copy was needed", step, size, ci)
			}
			live = append(live, rec{ci, v})
		}
		if step%500 == 0 {
			for i := 0; i < l.Len(); i++ {
				l.At(i).CheckInvariants()
			}
		}
	}
}
