package copies

import (
	"math/rand"
	"testing"

	"partalloc/internal/tree"
)

func TestFreshCopy(t *testing.T) {
	m := tree.MustNew(8)
	c := NewCopy(m)
	if !c.Empty() || c.OccupiedPEs() != 0 {
		t.Fatal("fresh copy not empty")
	}
	for size := 1; size <= 8; size *= 2 {
		v, ok := c.FindVacant(size)
		if !ok {
			t.Fatalf("FindVacant(%d) failed on empty copy", size)
		}
		if m.Size(v) != size || m.SubmachineIndex(v) != 0 {
			t.Fatalf("FindVacant(%d) = %d, not leftmost of right size", size, v)
		}
	}
	mv := c.MaximalVacant()
	if len(mv) != 1 || mv[0] != 1 {
		t.Fatalf("MaximalVacant of empty copy = %v", mv)
	}
}

func TestOccupyVacate(t *testing.T) {
	m := tree.MustNew(8)
	c := NewCopy(m)
	c.Occupy(4) // PEs 0-1
	c.CheckInvariants()
	if c.OccupiedPEs() != 2 || c.Tasks() != 1 {
		t.Fatal("occupy bookkeeping wrong")
	}
	// Leftmost vacant of size 2 is now node 5.
	if v, ok := c.FindVacant(2); !ok || v != 5 {
		t.Fatalf("FindVacant(2) = %v", v)
	}
	// Size-4 vacant must be node 3 (right half).
	if v, ok := c.FindVacant(4); !ok || v != 3 {
		t.Fatalf("FindVacant(4) = %v", v)
	}
	// No size-8 vacancy.
	if _, ok := c.FindVacant(8); ok {
		t.Fatal("FindVacant(8) should fail")
	}
	c.Occupy(3) // right half
	c.CheckInvariants()
	if v, ok := c.FindVacant(2); !ok || v != 5 {
		t.Fatalf("FindVacant(2) after = %v", v)
	}
	if _, ok := c.FindVacant(4); ok {
		t.Fatal("FindVacant(4) should fail now")
	}
	c.Vacate(4)
	c.CheckInvariants()
	if v, ok := c.FindVacant(4); !ok || v != 2 {
		t.Fatalf("FindVacant(4) after vacate = %v", v)
	}
	c.Vacate(3)
	c.CheckInvariants()
	if !c.Empty() {
		t.Fatal("copy should be empty")
	}
}

func TestOccupyPanics(t *testing.T) {
	m := tree.MustNew(8)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	c := NewCopy(m)
	c.Occupy(2)
	mustPanic("double occupy", func() { c.Occupy(2) })
	mustPanic("occupy ancestor", func() { c.Occupy(1) })
	mustPanic("occupy descendant", func() { c.Occupy(8) })
	mustPanic("vacate unassigned", func() { c.Vacate(3) })
	mustPanic("vacate descendant", func() { c.Vacate(4) })
}

func TestMaximalVacant(t *testing.T) {
	m := tree.MustNew(8)
	c := NewCopy(m)
	c.Occupy(8)  // PE 0
	c.Occupy(10) // PE 2
	c.CheckInvariants()
	// Vacant leaves: 9 (PE 1), 11 (PE 3); right half node 3 fully vacant.
	mv := c.MaximalVacant()
	want := []tree.Node{9, 11, 3}
	if len(mv) != len(want) {
		t.Fatalf("MaximalVacant = %v, want %v", mv, want)
	}
	for i := range want {
		if mv[i] != want[i] {
			t.Fatalf("MaximalVacant = %v, want %v", mv, want)
		}
	}
}

func TestListPlaceFirstFit(t *testing.T) {
	m := tree.MustNew(4)
	l := NewList(m)
	// Fill copy 0 with two size-2 tasks.
	ci, v := l.Place(2)
	if ci != 0 || v != 2 {
		t.Fatalf("first place = %d,%d", ci, v)
	}
	ci, v = l.Place(2)
	if ci != 0 || v != 3 {
		t.Fatalf("second place = %d,%d", ci, v)
	}
	// Next task must open a new copy.
	ci, v = l.Place(1)
	if ci != 1 || v != 4 {
		t.Fatalf("third place = %d,%d", ci, v)
	}
	if l.Len() != 2 || l.NonEmpty() != 2 {
		t.Fatalf("Len=%d NonEmpty=%d", l.Len(), l.NonEmpty())
	}
	// Vacate a task in copy 0; next size-2 goes back to copy 0 (first fit).
	l.Vacate(0, 2)
	ci, v = l.Place(2)
	if ci != 0 || v != 2 {
		t.Fatalf("refill place = %d,%d", ci, v)
	}
}

func TestListPELoad(t *testing.T) {
	m := tree.MustNew(4)
	l := NewList(m)
	l.Place(4) // copy 0, whole machine
	l.Place(2) // copy 1, node 2 -> PEs 0,1
	l.Place(1) // copy 1, node... leftmost vacant size 1 in copy 1 = PE 2 (node 6)
	want := []int{2, 2, 2, 1}
	for p, w := range want {
		if got := l.PELoad(p); got != w {
			t.Errorf("PELoad(%d) = %d, want %d", p, got, w)
		}
	}
}

func TestListReset(t *testing.T) {
	m := tree.MustNew(4)
	l := NewList(m)
	l.Place(2)
	l.Place(4)
	l.Reset()
	if l.Len() != 0 || l.NonEmpty() != 0 {
		t.Fatal("Reset did not clear")
	}
	ci, _ := l.Place(1)
	if ci != 0 {
		t.Fatal("post-reset placement not in copy 0")
	}
}

// Randomized differential test: FindVacant always returns the leftmost
// vacant submachine per a brute-force scan, and invariants hold throughout.
func TestCopyAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		levels := 1 + rng.Intn(6)
		m := tree.MustNew(1 << levels)
		c := NewCopy(m)
		var placed []tree.Node
		bruteVacant := func(size int) (tree.Node, bool) {
			for _, v := range m.Submachines(size) {
				vac := true
				for _, p := range placed {
					lo1, hi1 := m.PERange(v)
					lo2, hi2 := m.PERange(p)
					if lo1 < hi2 && lo2 < hi1 {
						vac = false
						break
					}
				}
				if vac {
					return v, true
				}
			}
			return 0, false
		}
		for step := 0; step < 300; step++ {
			size := 1 << rng.Intn(levels+1)
			wantV, wantOK := bruteVacant(size)
			gotV, gotOK := c.FindVacant(size)
			if gotOK != wantOK || (gotOK && gotV != wantV) {
				t.Fatalf("trial %d step %d: FindVacant(%d) = %v,%v; want %v,%v",
					trial, step, size, gotV, gotOK, wantV, wantOK)
			}
			if gotOK && (len(placed) == 0 || rng.Intn(3) != 0) {
				c.Occupy(gotV)
				placed = append(placed, gotV)
			} else if len(placed) > 0 {
				i := rng.Intn(len(placed))
				c.Vacate(placed[i])
				placed[i] = placed[len(placed)-1]
				placed = placed[:len(placed)-1]
			}
			c.CheckInvariants()
			occ := 0
			for _, p := range placed {
				occ += m.Size(p)
			}
			if c.OccupiedPEs() != occ || c.Tasks() != len(placed) {
				t.Fatalf("occupancy bookkeeping off: %d PEs %d tasks, want %d %d",
					c.OccupiedPEs(), c.Tasks(), occ, len(placed))
			}
		}
	}
}

// The paper's Claim 1 of Lemma 2: under first-fit placement with no
// intervening compaction, no copy ever holds two maximal vacant submachines
// of the same size. We exercise it on the List as A_B drives it
// (placements via Place, arbitrary departures).
func TestNoDuplicateMaximalVacantSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := tree.MustNew(64)
	l := NewList(m)
	type rec struct {
		ci int
		v  tree.Node
	}
	var live []rec
	for step := 0; step < 2000; step++ {
		if len(live) == 0 || rng.Intn(5) != 0 {
			size := 1 << rng.Intn(7)
			ci, v := l.Place(size)
			live = append(live, rec{ci, v})
		} else {
			i := rng.Intn(len(live))
			l.Vacate(live[i].ci, live[i].v)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	// Note: the claim in the paper concerns the run of A_B between
	// reallocations in which arrivals monotonically fill copies; with
	// departures the per-copy claim need not hold for every copy, but the
	// invariant machinery must still agree with a from-scratch recompute.
	for i := 0; i < l.Len(); i++ {
		l.At(i).CheckInvariants()
	}
}

func BenchmarkFindVacantOccupyVacate(b *testing.B) {
	m := tree.MustNew(1 << 16)
	c := NewCopy(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		size := 1 << (i % 8)
		v, ok := c.FindVacant(size)
		if !ok {
			b.Fatal("no vacancy")
		}
		c.Occupy(v)
		c.Vacate(v)
	}
}
