package engine

import (
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"sync"
	"testing"
	"time"

	"partalloc/internal/invariant"
	"partalloc/internal/task"
	"partalloc/internal/wal"
)

// placementMembers snapshots tenant→shard membership under every shard
// lock (index order, reverse release), the same way auditPlacement does.
func placementMembers(e *Engine) map[string]int {
	for _, s := range e.shards {
		s.mu.Lock()
	}
	members := make(map[string]int)
	for i, s := range e.shards {
		for id := range s.tenants {
			members[id] = i
		}
	}
	for i := len(e.shards) - 1; i >= 0; i-- {
		e.shards[i].mu.Unlock()
	}
	//lint:ignore lockorder every shard lock taken by the loop above is released by the reverse loop; the analyzer cannot pair loop-acquired locks
	return members
}

// TestBalancedPlacerDeterminism is the placement twin of the engine's
// replay gate: two placers built the same way and fed the same Place
// calls and load histories must plan the exact same move sequences and
// end with identical routing tables. Recovery depends on this — replay
// reproduces routes from journaled moves, so a nondeterministic planner
// would make the journal's moves meaningless on the next process.
func TestBalancedPlacerDeterminism(t *testing.T) {
	const shards, d, tenants = 8, 1, 12
	mk := func() *BalancedPlacer {
		p := NewBalancedPlacer(shards, d)
		for i := 0; i < tenants; i++ {
			p.Place(fmt.Sprintf("t%02d", i))
		}
		return p
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a.Routes(), b.Routes()) {
		t.Fatalf("initial routes diverge:\n  a: %v\n  b: %v", a.Routes(), b.Routes())
	}

	budget := d * shards
	for pass := 0; pass < 12; pass++ {
		// A deterministic, skewed, drifting load history: quadratic skew
		// across tenants, the skew direction flipping halfway so the
		// planner has to both grow and shrink widths through the
		// hysteresis window.
		loads := make(map[string]float64)
		for i := 0; i < tenants; i++ {
			rank := i
			if pass >= 6 {
				rank = tenants - 1 - i
			}
			loads[fmt.Sprintf("t%02d", i)] = float64((rank+1)*(rank+1)) * float64(pass+1)
		}
		ma, mb := a.Plan(loads, budget), b.Plan(loads, budget)
		if !reflect.DeepEqual(ma, mb) {
			t.Fatalf("pass %d: plans diverge:\n  a: %v\n  b: %v", pass, ma, mb)
		}
		if len(ma) > budget {
			t.Fatalf("pass %d: %d moves planned, budget is %d", pass, len(ma), budget)
		}
		for _, mv := range ma {
			if mv.To < 0 || mv.To >= shards || mv.To == mv.From {
				t.Fatalf("pass %d: malformed move %+v", pass, mv)
			}
			// Apply the plan the way rebalancePass does, so the next
			// pass sees the moved routing table.
			a.Reroute(mv.Tenant, mv.To)
			b.Reroute(mv.Tenant, mv.To)
		}
	}
	if !reflect.DeepEqual(a.Routes(), b.Routes()) {
		t.Fatalf("final routes diverge:\n  a: %v\n  b: %v", a.Routes(), b.Routes())
	}
}

// TestMoveTenantRoutesThroughPlacer is the regression gate for the
// cross-engine move path: MoveTenant must retire the source route via
// Placer.Remove and assign the destination route via Placer.Place, so
// neither engine's routing table can disagree with its shard membership
// after the move.
func TestMoveTenantRoutesThroughPlacer(t *testing.T) {
	cfg := Config{Shards: 4, BatchSize: 4, Placement: PlacementBalanced,
		RebalanceD: 1, RebalanceEvery: 1 << 30, Rebuild: testRebuild}
	src, dst := New(cfg), New(cfg)
	for i := 0; i < 3; i++ {
		addSpecTenant(t, src, TenantSpec{ID: fmt.Sprintf("src%d", i), Algorithm: "basic", N: 16})
		addSpecTenant(t, dst, TenantSpec{ID: fmt.Sprintf("dst%d", i), Algorithm: "basic", N: 16})
	}
	addSpecTenant(t, src, TenantSpec{ID: "mover", Algorithm: "basic", N: 16})
	if _, ok := src.placer.Lookup("mover"); !ok {
		t.Fatal("tenant not routed at the source before the move")
	}
	if err := src.Submit("mover", arrivals(1, 6, 1)...); err != nil {
		t.Fatal(err)
	}

	if err := src.MoveTenant("mover", dst); err != nil {
		t.Fatalf("MoveTenant: %v", err)
	}

	if _, ok := src.placer.Lookup("mover"); ok {
		t.Error("source routing table still routes the tenant after the move")
	}
	idx, ok := dst.Routes()["mover"]
	if !ok {
		t.Fatal("destination routing table has no route for the moved tenant")
	}
	members := placementMembers(dst)
	if got, ok := members["mover"]; !ok || got != idx {
		t.Errorf("destination routes the tenant to shard %d but membership says shard %d (present=%v)", idx, got, ok)
	}
	// Both tables must stay bijections to their shard membership.
	if v := invariant.CheckRouting(src.Routes(), placementMembers(src)); len(v) > 0 {
		t.Errorf("source routing inconsistent after move: %v", v)
	}
	if v := invariant.CheckRouting(dst.Routes(), members); len(v) > 0 {
		t.Errorf("destination routing inconsistent after move: %v", v)
	}
	// The moved tenant still ingests at its new home.
	if err := dst.Submit("mover", arrivals(100, 3, 1)...); err != nil {
		t.Fatal(err)
	}
	if err := dst.Flush("mover"); err != nil {
		t.Fatal(err)
	}
}

// rebalCrashEnv points the rebalance crash child at its journal
// directory; doubles as the guard that keeps TestRebalanceCrashChild
// inert in normal runs. The child drops a "<dir>.moved" marker file
// once its engine has performed at least one rebalance move, so the
// parent's SIGKILL is guaranteed to land after a TypeMove record hit
// the journal.
const rebalCrashEnv = "PARTALLOC_REBAL_CRASH_DIR"

func rebalCrashFleet() []TenantSpec {
	specs := make([]TenantSpec, 6)
	for i := range specs {
		specs[i] = TenantSpec{ID: fmt.Sprintf("rt%d", i), Algorithm: "basic", N: 16}
	}
	return specs
}

func rebalCrashConfig(log *wal.Log) Config {
	return Config{Shards: 4, BatchSize: 8, MaxQueue: 64, Overload: Block,
		Placement: PlacementBalanced, RebalanceD: 1, RebalanceEvery: 4,
		Journal: log, Rebuild: testRebuild}
}

// TestRebalanceCrashChild is the helper body for
// TestSIGKILLRebalanceRecovery, not a test: a balanced-placement
// journaled engine ingesting a skewed fleet until the parent kills it.
func TestRebalanceCrashChild(t *testing.T) {
	dir := os.Getenv(rebalCrashEnv)
	if dir == "" {
		t.Skip("rebalance crash-child helper; driven by TestSIGKILLRebalanceRecovery")
	}
	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(rebalCrashConfig(log))
	fleet := rebalCrashFleet()
	// Skewed per-round chunk sizes: tenant 0 is 8× the tail, so the load
	// estimates diverge immediately and the placer resizes and moves.
	weights := []int{8, 4, 2, 1, 1, 1}
	streams := make([][]task.Event, len(fleet))
	for i, spec := range fleet {
		addSpecTenant(t, eng, spec)
		streams[i] = testStream(spec.N, 500_000, int64(i+1))
	}
	offs := make([]int, len(fleet))
	marked := false
	for {
		for i, spec := range fleet {
			evs, off := streams[i], offs[i]
			if off >= len(evs) {
				t.Fatal("crash child exhausted its stream before being killed")
			}
			end := off + weights[i]
			if end > len(evs) {
				end = len(evs)
			}
			if err := eng.Submit(spec.ID, evs[off:end]...); err != nil {
				t.Fatalf("child submit %s: %v", spec.ID, err)
			}
			offs[i] = end
		}
		if !marked && eng.RebalanceStats().Moves > 0 {
			if err := os.WriteFile(dir+".moved", []byte("moved\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			marked = true
		}
	}
}

// TestSIGKILLRebalanceRecovery crash-tests the placement layer: the
// child journals skewed ingestion and intra-engine rebalance moves,
// gets SIGKILLed mid-stream after at least one move committed, and the
// recovered engine must replay those TypeMove records into a routing
// table that is an exact bijection to shard membership — no tenant
// lost, duplicated, or routed to a shard it does not live on — and
// keep ingesting and rebalancing afterwards.
func TestSIGKILLRebalanceRecovery(t *testing.T) {
	if os.Getenv(rebalCrashEnv) != "" {
		t.Skip("already inside the rebalance crash child")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe, "-test.run=^TestRebalanceCrashChild$")
	cmd.Env = append(os.Environ(), rebalCrashEnv+"="+dir)
	out, err := os.CreateTemp(t.TempDir(), "childout")
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	childOutput := func() string {
		b, _ := os.ReadFile(out.Name())
		return string(b)
	}

	// Kill only after the child reported a committed rebalance move (the
	// marker file) AND the journal grew another chunk past it, so the
	// SIGKILL lands mid-ingest with TypeMove records already durable.
	journalSize := func() int64 {
		var total int64
		ents, _ := os.ReadDir(dir)
		for _, ent := range ents {
			if info, err := ent.Info(); err == nil {
				total += info.Size()
			}
		}
		return total
	}
	deadline := time.Now().Add(120 * time.Second)
	var sizeAtMove int64 = -1
	for {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("child never committed a rebalance move; output:\n%s", childOutput())
		}
		if sizeAtMove < 0 {
			if _, err := os.Stat(dir + ".moved"); err == nil {
				sizeAtMove = journalSize()
			}
		} else if journalSize() >= sizeAtMove+(16<<10) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err == nil {
		t.Fatalf("child exited cleanly instead of dying to SIGKILL; output:\n%s", childOutput())
	}

	rec, err := Recover(rebalCrashConfig(nil), dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rec.cfg.Journal.Close()

	if got := rec.RecoveryStats().MovesReplayed; got < 1 {
		t.Errorf("MovesReplayed = %d, want >= 1: the child committed a move before dying", got)
	}
	fleet := rebalCrashFleet()
	routes := rec.Routes()
	if len(routes) != len(fleet) {
		t.Errorf("recovered %d routes, fleet has %d tenants: %v", len(routes), len(fleet), routes)
	}
	for _, spec := range fleet {
		if _, ok := routes[spec.ID]; !ok {
			t.Errorf("tenant %s lost its route across the crash", spec.ID)
		}
	}
	if v := invariant.CheckRouting(routes, placementMembers(rec)); len(v) > 0 {
		t.Errorf("recovered routing table inconsistent with shard membership: %v", v)
	}

	// Life goes on: the recovered engine ingests, flushes, and runs
	// rebalance passes against the replayed routing table.
	for i, spec := range fleet {
		// Task IDs far above anything the child's streams used, so the
		// arrivals cannot collide with tasks still resident in the
		// recovered allocators.
		if err := rec.Submit(spec.ID, arrivals(9_000_000+i*100, 3, 1)...); err != nil {
			t.Fatalf("post-recovery submit %s: %v", spec.ID, err)
		}
	}
	if err := rec.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Rebalance(); err != nil {
		t.Fatalf("post-recovery rebalance: %v", err)
	}
	if st := rec.RebalanceStats(); len(st.Violations) > 0 {
		t.Errorf("post-recovery rebalance violations: %v", st.Violations)
	}
}

// TestConcurrentSubmitDuringRebalance hammers forced rebalance passes
// while every tenant's stream is being submitted from its own
// goroutine. Run under -race this is the placement layer's memory-model
// gate; the assertions close the loop on conservation (no event lost or
// duplicated by a mid-ingest move) and routing consistency.
func TestConcurrentSubmitDuringRebalance(t *testing.T) {
	eng := New(Config{Shards: 4, BatchSize: 16, MaxQueue: 256, Overload: Block,
		Placement: PlacementBalanced, RebalanceD: 2, RebalanceEvery: 2, Rebuild: testRebuild})
	const tenants = 8
	streams := make([][]task.Event, tenants)
	for i := 0; i < tenants; i++ {
		spec := TenantSpec{ID: fmt.Sprintf("c%d", i), Algorithm: "basic", N: 16}
		addSpecTenant(t, eng, spec)
		// Skewed volumes so passes actually plan moves mid-flight.
		streams[i] = testStream(spec.N, 400*(i+1), int64(i+1))
	}

	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, evs := fmt.Sprintf("c%d", i), streams[i]
			chunk := i + 1
			for off := 0; off < len(evs); off += chunk {
				end := off + chunk
				if end > len(evs) {
					end = len(evs)
				}
				if err := eng.Submit(id, evs[off:end]...); err != nil {
					t.Errorf("submit %s: %v", id, err)
					return
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 64; i++ {
			if _, err := eng.Rebalance(); err != nil {
				t.Errorf("rebalance: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Conservation: every submitted event was applied exactly once,
	// moves notwithstanding.
	byID := make(map[string]TenantStats)
	for _, st := range eng.Stats() {
		byID[st.Tenant] = st
	}
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("c%d", i)
		st, ok := byID[id]
		if !ok {
			t.Errorf("tenant %s vanished during concurrent rebalancing", id)
			continue
		}
		if st.Events != int64(len(streams[i])) {
			t.Errorf("%s: %d events applied, submitted %d", id, st.Events, len(streams[i]))
		}
	}
	if v := invariant.CheckRouting(eng.Routes(), placementMembers(eng)); len(v) > 0 {
		t.Errorf("routing inconsistent after concurrent rebalancing: %v", v)
	}
	if st := eng.RebalanceStats(); len(st.Violations) > 0 {
		t.Errorf("rebalance audit violations: %v", st.Violations)
	}
}
