package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"partalloc/internal/core"
	"partalloc/internal/errs"
	"partalloc/internal/fault"
	"partalloc/internal/sim"
	"partalloc/internal/task"
	"partalloc/internal/tree"
	"partalloc/internal/workload"
)

// tenantOpts converts a possibly-nil schedule into the options-form
// AddTenant arguments used throughout the tables below.
func tenantOpts(s *fault.Schedule) []TenantOption {
	if s == nil {
		return nil
	}
	return []TenantOption{WithTenantFaults(s)}
}

// testTenant pairs a tenant ID with a factory so the engine and the
// serial reference each get a fresh allocator of the same configuration.
type testTenant struct {
	id     string
	make   func(m *tree.Machine) core.Allocator
	n      int
	faults *fault.Schedule
}

func testFleet(t *testing.T) []testTenant {
	t.Helper()
	sched := fault.Random(fault.RandomConfig{N: 64, Events: 1500, Failures: 3, Seed: 7})
	return []testTenant{
		{id: "acme", n: 64, make: func(m *tree.Machine) core.Allocator { return core.NewBasic(m) }},
		{id: "burrow", n: 64, make: func(m *tree.Machine) core.Allocator { return core.NewPeriodic(m, 2, core.DecreasingSize) }},
		{id: "corvid", n: 32, make: func(m *tree.Machine) core.Allocator { return core.NewLazy(m, 1, core.DecreasingSize) }},
		{id: "dynamo", n: 128, make: func(m *tree.Machine) core.Allocator { return core.NewRandom(m, 42) }},
		{id: "ember", n: 64, make: func(m *tree.Machine) core.Allocator { return core.NewGreedy(m) }},
		{id: "fjord", n: 64, make: func(m *tree.Machine) core.Allocator { return core.NewPeriodic(m, 3, core.DecreasingSize) }, faults: &sched},
	}
}

func testStream(n, arrivals int, seed int64) []task.Event {
	return workload.Poisson(workload.Config{N: n, Arrivals: arrivals, Seed: seed}).Events
}

// TestReplayMatchesSerialSimulate is the engine-level equivalence gate:
// batched, sharded ingestion must leave every tenant's allocator in the
// exact state a serial sim.Run pass produces — same PE loads, same
// MaxLoad, same active set, same ReallocStats, same fault count.
func TestReplayMatchesSerialSimulate(t *testing.T) {
	for _, batch := range []int{1, 97, 256} {
		fleet := testFleet(t)
		eng := New(Config{Shards: 3, BatchSize: batch})
		streams := make(map[string][]task.Event)
		engAllocs := make(map[string]core.Allocator)
		for i, tt := range fleet {
			m := tree.MustNew(tt.n)
			a := tt.make(m)
			engAllocs[tt.id] = a
			if err := eng.AddTenant(tt.id, a, tenantOpts(tt.faults)...); err != nil {
				t.Fatal(err)
			}
			streams[tt.id] = testStream(tt.n, 700+50*i, int64(i+1))
		}

		if err := eng.Replay(context.Background(), streams); err != nil {
			t.Fatalf("batch %d: Replay: %v", batch, err)
		}

		for _, tt := range fleet {
			ref := tt.make(tree.MustNew(tt.n))
			var opt sim.Options
			if tt.faults != nil {
				opt.Faults = tt.faults.Source()
			}
			want := sim.Run(ref, task.Sequence{Events: streams[tt.id]}, opt)

			st, err := eng.TenantStats(tt.id)
			if err != nil {
				t.Fatal(err)
			}
			if st.Events != int64(len(streams[tt.id])) {
				t.Errorf("batch %d, %s: applied %d of %d events", batch, tt.id, st.Events, len(streams[tt.id]))
			}
			if got := engAllocs[tt.id].PELoads(); !reflect.DeepEqual(got, ref.PELoads()) {
				t.Errorf("batch %d, %s: engine PE loads diverge from serial run", batch, tt.id)
			}
			if st.MaxLoad != want.FinalLoad {
				t.Errorf("batch %d, %s: MaxLoad = %d, serial FinalLoad = %d", batch, tt.id, st.MaxLoad, want.FinalLoad)
			}
			if st.LStar != want.LStar {
				t.Errorf("batch %d, %s: LStar = %d, want %d", batch, tt.id, st.LStar, want.LStar)
			}
			if st.Active != ref.Active() {
				t.Errorf("batch %d, %s: Active = %d, want %d", batch, tt.id, st.Active, ref.Active())
			}
			if !reflect.DeepEqual(st.Realloc, want.Realloc) {
				t.Errorf("batch %d, %s: ReallocStats = %+v, want %+v", batch, tt.id, st.Realloc, want.Realloc)
			}
			if st.FaultEvents != want.FaultEvents {
				t.Errorf("batch %d, %s: FaultEvents = %d, want %d", batch, tt.id, st.FaultEvents, want.FaultEvents)
			}
			// With single-event batches the boundary samples see every
			// state, so the engine's peak must equal the serial peak.
			if batch == 1 && st.PeakLoad != want.MaxLoad {
				t.Errorf("%s: per-event PeakLoad = %d, serial MaxLoad = %d", tt.id, st.PeakLoad, want.MaxLoad)
			}
		}
	}
}

// TestSubmitMatchesReplay feeds the same streams through the incremental
// Submit path (odd-sized chunks, so queue boundaries and batch boundaries
// disagree) and requires the same final state as a one-shot Replay.
func TestSubmitMatchesReplay(t *testing.T) {
	fleet := testFleet(t)
	a := New(Config{Shards: 2, BatchSize: 64})
	b := New(Config{Shards: 5, BatchSize: 256})
	streams := make(map[string][]task.Event)
	aAllocs := make(map[string]core.Allocator)
	bAllocs := make(map[string]core.Allocator)
	for i, tt := range fleet {
		aAllocs[tt.id] = tt.make(tree.MustNew(tt.n))
		bAllocs[tt.id] = tt.make(tree.MustNew(tt.n))
		if err := a.AddTenant(tt.id, aAllocs[tt.id], tenantOpts(tt.faults)...); err != nil {
			t.Fatal(err)
		}
		if err := b.AddTenant(tt.id, bAllocs[tt.id], tenantOpts(tt.faults)...); err != nil {
			t.Fatal(err)
		}
		streams[tt.id] = testStream(tt.n, 600, int64(i+10))
	}

	for _, tt := range fleet {
		evs := streams[tt.id]
		for off := 0; off < len(evs); off += 17 {
			end := off + 17
			if end > len(evs) {
				end = len(evs)
			}
			if err := a.Submit(tt.id, evs[off:end]...); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := a.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := b.Replay(context.Background(), streams); err != nil {
		t.Fatal(err)
	}

	for _, tt := range fleet {
		if !reflect.DeepEqual(aAllocs[tt.id].PELoads(), bAllocs[tt.id].PELoads()) {
			t.Errorf("%s: Submit path and Replay path disagree on PE loads", tt.id)
		}
		sa, _ := a.TenantStats(tt.id)
		sb, _ := b.TenantStats(tt.id)
		if sa.Events != sb.Events || sa.MaxLoad != sb.MaxLoad || !reflect.DeepEqual(sa.Realloc, sb.Realloc) {
			t.Errorf("%s: Submit stats %+v disagree with Replay stats %+v", tt.id, sa, sb)
		}
	}
}

// TestAuditModeCleanRun checks that the per-shard invariant audit passes
// on healthy algorithms and still matches the serial reference.
func TestAuditModeCleanRun(t *testing.T) {
	fleet := testFleet(t)
	eng := New(Config{Shards: 2, BatchSize: 128, Audit: true})
	streams := make(map[string][]task.Event)
	for i, tt := range fleet {
		if err := eng.AddTenant(tt.id, tt.make(tree.MustNew(tt.n)), tenantOpts(tt.faults)...); err != nil {
			t.Fatal(err)
		}
		streams[tt.id] = testStream(tt.n, 400, int64(i+20))
	}
	if err := eng.Replay(context.Background(), streams); err != nil {
		t.Fatal(err)
	}
	for _, st := range eng.Stats() {
		if len(st.Violations) != 0 {
			t.Errorf("%s: audit found %d violations; first: %v", st.Tenant, len(st.Violations), st.Violations[0])
		}
		if st.Events == 0 {
			t.Errorf("%s: no events applied under audit", st.Tenant)
		}
	}
}

// TestPoisoningSurfacesSentinels drives a tenant into capacity exhaustion
// and checks that the allocator's ErrMachineFull panic comes back as a
// returned error chain — ErrTenantPoisoned wrapping the sentinel — and
// that the tenant stays poisoned afterwards.
func TestPoisoningSurfacesSentinels(t *testing.T) {
	eng := New(Config{BatchSize: 4})
	m := tree.MustNew(2)
	sched := &fault.Schedule{Events: []fault.Event{
		{At: 0, Kind: fault.FailPE, PE: 0},
		{At: 0, Kind: fault.FailPE, PE: 1},
	}}
	if err := eng.AddTenant("doomed", core.NewBasic(m), WithTenantFaults(sched)); err != nil {
		t.Fatal(err)
	}

	err := eng.Replay(context.Background(), map[string][]task.Event{
		"doomed": {{Kind: task.Arrive, Task: 1, Size: 1}},
	})
	if !errors.Is(err, ErrTenantPoisoned) {
		t.Fatalf("Replay error %v is not ErrTenantPoisoned", err)
	}
	if !errors.Is(err, errs.ErrMachineFull) {
		t.Fatalf("Replay error %v does not wrap ErrMachineFull", err)
	}

	// Every later operation reports the same poisoned state and cause.
	if err := eng.Submit("doomed", task.Event{Kind: task.Arrive, Task: 2, Size: 1}); !errors.Is(err, ErrTenantPoisoned) || !errors.Is(err, errs.ErrMachineFull) {
		t.Errorf("Submit after poisoning: %v", err)
	}
	if err := eng.Err("doomed"); !errors.Is(err, errs.ErrMachineFull) {
		t.Errorf("Err after poisoning: %v", err)
	}
	// The rest of the engine keeps working.
	if err := eng.AddTenant("healthy", core.NewBasic(tree.MustNew(8))); err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit("healthy", task.Event{Kind: task.Arrive, Task: 1, Size: 2}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush("healthy"); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicateArrivalPoisons checks the misuse path: a duplicate task ID
// panic becomes ErrDuplicateTask on the error chain.
func TestDuplicateArrivalPoisons(t *testing.T) {
	eng := New(Config{BatchSize: 8})
	if err := eng.AddTenant("t", core.NewGreedy(tree.MustNew(8))); err != nil {
		t.Fatal(err)
	}
	err := eng.Replay(context.Background(), map[string][]task.Event{"t": {
		{Kind: task.Arrive, Task: 1, Size: 2},
		{Kind: task.Arrive, Task: 1, Size: 2},
	}})
	if !errors.Is(err, ErrTenantPoisoned) || !errors.Is(err, errs.ErrDuplicateTask) {
		t.Errorf("duplicate arrival error chain = %v", err)
	}
}

func TestTenantRegistry(t *testing.T) {
	eng := New(Config{})
	m := tree.MustNew(4)
	if err := eng.AddTenant("a", core.NewBasic(m)); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddTenant("a", core.NewBasic(m)); !errors.Is(err, ErrDuplicateTenant) {
		t.Errorf("duplicate AddTenant: %v", err)
	}
	if err := eng.Submit("ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("Submit to unknown tenant: %v", err)
	}
	if _, err := eng.TenantStats("ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("TenantStats of unknown tenant: %v", err)
	}
	if err := eng.Replay(context.Background(), map[string][]task.Event{"ghost": nil}); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("Replay of unknown tenant: %v", err)
	}
	if err := eng.AddTenant("nil", nil); err == nil {
		t.Error("nil allocator accepted")
	}
	sched := &fault.Schedule{Events: []fault.Event{{At: 0, Kind: fault.FailPE, PE: 0}}}
	if err := eng.AddTenant("rand", core.NewRandom(m, 1), WithTenantFaults(sched)); err == nil {
		t.Error("fault schedule accepted on a non-fault-tolerant allocator")
	}
	want := []string{"a"}
	if got := eng.Tenants(); !reflect.DeepEqual(got, want) {
		t.Errorf("Tenants() = %v, want %v", got, want)
	}
}

// TestReplayContextCancellation checks that a pre-cancelled context stops
// the replay before any event is applied and reports ctx.Err().
func TestReplayContextCancellation(t *testing.T) {
	eng := New(Config{BatchSize: 32})
	if err := eng.AddTenant("t", core.NewBasic(tree.MustNew(16))); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := eng.Replay(ctx, map[string][]task.Event{"t": testStream(16, 500, 1)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Replay with cancelled context: %v", err)
	}
	st, _ := eng.TenantStats("t")
	if st.Events != 0 {
		t.Errorf("applied %d events under a pre-cancelled context", st.Events)
	}
}

func TestQuantile(t *testing.T) {
	ns := []int64{50, 10, 40, 30, 20}
	if got := Quantile(ns, 0.5); got != 30 {
		t.Errorf("p50 = %d, want 30", got)
	}
	if got := Quantile(ns, 0.99); got != 50 {
		t.Errorf("p99 = %d, want 50", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
	if got := ns[0]; got != 50 {
		t.Errorf("Quantile mutated its input: %v", ns)
	}
}
