package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"partalloc/internal/core"
	"partalloc/internal/errs"
	"partalloc/internal/fault"
	"partalloc/internal/task"
	"partalloc/internal/topology"
	"partalloc/internal/tree"
	"partalloc/internal/wal"
)

// testRebuild is the RebuildFunc the engine tests install: it understands
// the spec fields the partalloc facade fills, minus topology (engine
// tests run on plain tree machines).
func testRebuild(spec TenantSpec) (core.Allocator, *fault.Schedule, *topology.Host, error) {
	m := tree.MustNew(spec.N)
	var a core.Allocator
	switch spec.Algorithm {
	case "basic":
		a = core.NewBasic(m)
	case "greedy":
		a = core.NewGreedy(m)
	case "periodic":
		a = core.NewPeriodic(m, spec.D, core.DecreasingSize)
	case "constant":
		a = core.NewConstant(m)
	case "lazy":
		a = core.NewLazy(m, spec.D, core.DecreasingSize)
	case "random":
		a = core.NewRandom(m, spec.Seed)
	default:
		return nil, nil, nil, fmt.Errorf("test rebuild: unknown algorithm %q", spec.Algorithm)
	}
	var sched *fault.Schedule
	if spec.Faults != "" {
		s, err := fault.ParseText(strings.NewReader(spec.Faults), spec.N)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("test rebuild: faults: %w", err)
		}
		sched = &s
	}
	return a, sched, nil, nil
}

// addSpecTenant registers a tenant built by testRebuild from spec, so the
// live allocator and the rebuild recipe cannot diverge.
func addSpecTenant(t *testing.T, e *Engine, spec TenantSpec) {
	t.Helper()
	a, sched, host, err := testRebuild(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddTenantSpec(spec, a, sched, host); err != nil {
		t.Fatal(err)
	}
}

// fakeClock is a deterministic e.now hook: every reading advances the
// clock by step, so an apply's measured latency equals step exactly.
type fakeClock struct {
	mu   sync.Mutex
	now  int64
	step int64
}

func (c *fakeClock) tick() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += c.step
	return c.now
}

func (c *fakeClock) setStep(step int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.step = step
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += int64(d)
}

func arrivals(from, n, size int) []task.Event {
	evs := make([]task.Event, n)
	for i := range evs {
		evs[i] = task.Event{Kind: task.Arrive, Task: task.ID(from + i), Size: size}
	}
	return evs
}

// TestBlockPolicyBoundsQueue submits far more events than MaxQueue in one
// call: Block must admit them in bound-sized chunks — the audit checker's
// queue-bound invariant sees every admission — and end in exactly the
// state an unbounded engine reaches.
func TestBlockPolicyBoundsQueue(t *testing.T) {
	bounded := New(Config{Shards: 1, BatchSize: 256, MaxQueue: 8, Overload: Block, Audit: true})
	free := New(Config{Shards: 1, BatchSize: 256, Audit: true})
	ba := core.NewBasic(tree.MustNew(16))
	fa := core.NewBasic(tree.MustNew(16))
	if err := bounded.AddTenant("t", ba); err != nil {
		t.Fatal(err)
	}
	if err := free.AddTenant("t", fa); err != nil {
		t.Fatal(err)
	}

	stream := testStream(16, 150, 3)
	if err := bounded.Submit("t", stream...); err != nil {
		t.Fatalf("Block Submit: %v", err)
	}
	if err := free.Submit("t", stream...); err != nil {
		t.Fatal(err)
	}

	st, _ := bounded.TenantStats("t")
	// With MaxQueue below BatchSize the batch trigger shrinks to the
	// bound, so the queue drains to the remainder mod 8.
	if want := len(stream) % 8; st.Queued != want {
		t.Errorf("Queued = %d, want %d (stream %d mod bound 8)", st.Queued, want, len(stream))
	}
	if st.Events != int64(len(stream)-st.Queued) {
		t.Errorf("Events = %d with %d queued of %d", st.Events, st.Queued, len(stream))
	}
	if st.ShedEvents != 0 {
		t.Errorf("Block shed %d events", st.ShedEvents)
	}
	if len(st.Violations) != 0 {
		t.Errorf("audit: %v", st.Violations[0])
	}

	if err := bounded.Flush("t"); err != nil {
		t.Fatal(err)
	}
	if err := free.Flush("t"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ba.PELoads(), fa.PELoads()) {
		t.Error("bounded and unbounded engines disagree on final PE loads")
	}
	st, _ = bounded.TenantStats("t")
	if st.Queued != 0 || st.Events != int64(len(stream)) {
		t.Errorf("after Flush: Events=%d Queued=%d, want %d/0", st.Events, st.Queued, len(stream))
	}
}

// TestShedPolicyRejectsWhole checks Shed's all-or-nothing contract: an
// over-bound submission is rejected with ErrOverloaded (both sentinel
// spellings), nothing of it is queued or applied, and fitting
// submissions keep flowing afterwards.
func TestShedPolicyRejectsWhole(t *testing.T) {
	eng := New(Config{Shards: 1, BatchSize: 4, MaxQueue: 8, Overload: Shed, Audit: true})
	if err := eng.AddTenant("t", core.NewBasic(tree.MustNew(16))); err != nil {
		t.Fatal(err)
	}

	err := eng.Submit("t", arrivals(1, 10, 1)...)
	if !errors.Is(err, ErrOverloaded) || !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("oversized submission: %v", err)
	}
	st, _ := eng.TenantStats("t")
	if st.ShedEvents != 10 || st.Queued != 0 || st.Events != 0 {
		t.Fatalf("after shed: ShedEvents=%d Queued=%d Events=%d, want 10/0/0", st.ShedEvents, st.Queued, st.Events)
	}

	// 3 fit (below the batch trigger of 4, so they stay queued).
	if err := eng.Submit("t", arrivals(100, 3, 1)...); err != nil {
		t.Fatal(err)
	}
	// 3 queued + 6 would exceed the bound of 8: shed as a whole.
	if err := eng.Submit("t", arrivals(200, 6, 1)...); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued+submitted over bound: %v", err)
	}
	// 3 queued + 5 = 8 fits exactly; two full batches of 4 apply.
	if err := eng.Submit("t", arrivals(300, 5, 1)...); err != nil {
		t.Fatal(err)
	}
	st, _ = eng.TenantStats("t")
	if st.Events != 8 || st.Queued != 0 || st.ShedEvents != 16 {
		t.Errorf("Events=%d Queued=%d ShedEvents=%d, want 8/0/16", st.Events, st.Queued, st.ShedEvents)
	}
	if len(st.Violations) != 0 {
		t.Errorf("audit: %v", st.Violations[0])
	}
}

// TestDegradeClimbsAndRestores drives the Degrade controller with a fake
// clock: over-budget batches climb the ladder (lazy trigger first, then
// doubled d), healthy batches walk it back down to the configured rung.
// The audit checker's degrade-ledger invariant validates every
// transition's chaining as it happens.
func TestDegradeClimbsAndRestores(t *testing.T) {
	eng := New(Config{Shards: 1, BatchSize: 8, Overload: Degrade, DegradeBudget: time.Millisecond, Audit: true})
	clk := &fakeClock{step: int64(2 * time.Millisecond)}
	eng.now = clk.tick
	p := core.NewPeriodic(tree.MustNew(64), 1, core.DecreasingSize)
	if err := eng.AddTenant("t", p); err != nil {
		t.Fatal(err)
	}

	// Two 2ms batches against a 1ms budget: the EWMA seeds at 2ms and
	// stays there, climbing one rung per batch.
	next := 1
	batch := func() {
		t.Helper()
		if err := eng.Submit("t", arrivals(next, 8, 1)...); err != nil {
			t.Fatal(err)
		}
		next += 8
	}
	batch()
	st, _ := eng.TenantStats("t")
	if st.DegradeLevel != 1 || st.EffectiveD != 1 || !p.LazyRealloc() {
		t.Fatalf("after 1 slow batch: level=%d d=%d lazy=%v, want rung 1 (lazy trigger)", st.DegradeLevel, st.EffectiveD, p.LazyRealloc())
	}
	batch()
	st, _ = eng.TenantStats("t")
	if st.DegradeLevel != 2 || st.EffectiveD != 2 {
		t.Fatalf("after 2 slow batches: level=%d d=%d, want rung 2 (d doubled)", st.DegradeLevel, st.EffectiveD)
	}
	if len(st.Degrades) != 2 {
		t.Fatalf("Degrades = %d transitions, want 2", len(st.Degrades))
	}
	if tr := st.Degrades[0]; tr.FromD != 1 || tr.ToD != 1 || tr.FromLazy || !tr.ToLazy || tr.Cause == "" {
		t.Errorf("first transition %+v is not eager→lazy with a cause", tr)
	}

	// Instant batches: the EWMA decays by 3/4 per batch; once under half
	// the budget for three straight batches, the controller steps down a
	// rung, eventually restoring the configured allocator.
	clk.setStep(0)
	for i := 0; i < 40; i++ {
		batch()
	}
	st, _ = eng.TenantStats("t")
	if st.DegradeLevel != 0 || st.EffectiveD != 1 || p.LazyRealloc() {
		t.Errorf("after healthy batches: level=%d d=%d lazy=%v, want configured rung restored", st.DegradeLevel, st.EffectiveD, p.LazyRealloc())
	}
	if len(st.Degrades) < 4 {
		t.Errorf("Degrades = %d transitions, want the climb and the walk back", len(st.Degrades))
	}
	if len(st.Violations) != 0 {
		t.Errorf("degrade-ledger audit: %v", st.Violations[0])
	}
}

// TestDegradePolicyInertOnNonDegradable checks that Degrade quietly
// behaves like Block for allocators without the knob (A_G here): no
// ladder, no transitions, EffectiveD stays the -1 sentinel.
func TestDegradePolicyInertOnNonDegradable(t *testing.T) {
	eng := New(Config{Shards: 1, BatchSize: 4, MaxQueue: 8, Overload: Degrade, DegradeBudget: time.Nanosecond})
	if err := eng.AddTenant("t", core.NewGreedy(tree.MustNew(16))); err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit("t", arrivals(1, 20, 1)...); err != nil {
		t.Fatal(err)
	}
	st, _ := eng.TenantStats("t")
	if st.EffectiveD != -1 || st.DegradeLevel != 0 || len(st.Degrades) != 0 {
		t.Errorf("non-degradable tenant degraded: %+v", st)
	}
	if st.Events != 20 {
		t.Errorf("Events = %d, want 20 (Degrade admits like Block)", st.Events)
	}
}

// TestBreakerRebuildsFromJournal walks the circuit breaker's whole state
// machine: poisoning opens it, in-backoff operations fail fast, a failed
// half-open probe re-opens it with a doubled backoff, and a successful
// probe rebuilds the tenant from the journaled safe prefix — dropping
// exactly the poisonous suffix — so no tenant is poisoned forever.
func TestBreakerRebuildsFromJournal(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()

	var failProbe bool
	rebuild := func(spec TenantSpec) (core.Allocator, *fault.Schedule, *topology.Host, error) {
		if failProbe {
			return nil, nil, nil, errors.New("rebuild recipe unavailable")
		}
		return testRebuild(spec)
	}
	eng := New(Config{Shards: 1, BatchSize: 4, Journal: log, Rebuild: rebuild})
	clk := &fakeClock{step: 1}
	eng.now = clk.tick

	// A journaled engine must refuse tenants without a rebuild recipe.
	if err := eng.AddTenant("nospec", core.NewBasic(tree.MustNew(4))); err == nil {
		t.Fatal("journaled engine accepted a spec-less tenant")
	}
	addSpecTenant(t, eng, TenantSpec{ID: "t", Algorithm: "greedy", N: 8})

	if err := eng.Submit("t", arrivals(1, 4, 1)...); err != nil {
		t.Fatal(err)
	}
	// A duplicate task ID mid-batch panics the allocator: the whole
	// 4-event submission is the poisonous suffix.
	poison := []task.Event{
		{Kind: task.Arrive, Task: 5, Size: 1},
		{Kind: task.Arrive, Task: 5, Size: 1},
		{Kind: task.Arrive, Task: 6, Size: 1},
		{Kind: task.Arrive, Task: 7, Size: 1},
	}
	if err := eng.Submit("t", poison...); !errors.Is(err, ErrTenantPoisoned) || !errors.Is(err, errs.ErrDuplicateTask) {
		t.Fatalf("poisonous submit: %v", err)
	}
	st, _ := eng.TenantStats("t")
	if st.BreakerState != "open" || st.BreakerTrips != 1 || st.Events != 4 {
		t.Fatalf("after poisoning: state=%s trips=%d events=%d", st.BreakerState, st.BreakerTrips, st.Events)
	}

	// Inside the backoff window the breaker fails fast, no probe.
	if err := eng.Submit("t", arrivals(8, 1, 1)...); !errors.Is(err, errs.ErrTenantPoisoned) {
		t.Fatalf("submit during backoff: %v", err)
	}

	// Past the deadline, the half-open probe runs — and fails, because
	// the rebuild recipe errors. The breaker re-opens with trip 2.
	clk.advance(time.Hour)
	failProbe = true
	if err := eng.Submit("t", arrivals(8, 1, 1)...); !errors.Is(err, ErrTenantPoisoned) {
		t.Fatalf("failed probe: %v", err)
	}
	st, _ = eng.TenantStats("t")
	if st.BreakerState != "open" || st.BreakerTrips != 2 {
		t.Fatalf("after failed probe: state=%s trips=%d", st.BreakerState, st.BreakerTrips)
	}

	// Next window: the probe succeeds, the tenant is rebuilt from the 4
	// journaled good events, the 4 poisonous ones are dropped, and the
	// new submission applies.
	clk.advance(time.Hour)
	failProbe = false
	if err := eng.Submit("t", arrivals(8, 4, 1)...); err != nil {
		t.Fatalf("submit after recovery window: %v", err)
	}
	st, _ = eng.TenantStats("t")
	if st.BreakerState != "closed" || st.DroppedEvents != 4 || st.Events != 8 {
		t.Fatalf("after rebuild: state=%s dropped=%d events=%d, want closed/4/8", st.BreakerState, st.DroppedEvents, st.Events)
	}
	if err := eng.Err("t"); err != nil {
		t.Fatalf("Err after rebuild: %v", err)
	}

	// The rebuilt tenant's state equals a never-poisoned run of the kept
	// events.
	ref := core.NewGreedy(tree.MustNew(8))
	core.ApplyEvents(ref, arrivals(1, 4, 1))
	core.ApplyEvents(ref, arrivals(8, 4, 1))
	s := eng.shardFor("t")
	s.mu.Lock()
	got := s.tenants["t"].alloc.PELoads()
	s.mu.Unlock()
	if !reflect.DeepEqual(got, ref.PELoads()) {
		t.Errorf("rebuilt PE loads %v, reference %v", got, ref.PELoads())
	}
}

// TestRecoverMatchesUninterrupted is the crash-recovery equivalence gate
// for the clean-shutdown case: an engine journaling Submit, Flush, Replay
// batches, a poisoning, and a breaker rebuild is reconstructed by Recover
// with byte-identical CanonicalStats for every tenant — including queued
// counts, batch structure, fault injection, and the poisoned tenant's
// open breaker.
func TestRecoverMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Shards: 3, BatchSize: 16, MaxQueue: 64, Journal: log, Rebuild: testRebuild}
	eng := New(cfg)
	clk := &fakeClock{step: 1}
	eng.now = clk.tick

	var sched bytes.Buffer
	fs := fault.Random(fault.RandomConfig{N: 64, Events: 300, Failures: 2, Seed: 5})
	if err := fault.WriteText(&sched, fs); err != nil {
		t.Fatal(err)
	}
	addSpecTenant(t, eng, TenantSpec{ID: "alpha", Algorithm: "basic", N: 16})
	addSpecTenant(t, eng, TenantSpec{ID: "perry", Algorithm: "periodic", N: 64, D: 2, DSet: true, Faults: sched.String()})
	addSpecTenant(t, eng, TenantSpec{ID: "lazy1", Algorithm: "lazy", N: 32, D: 1, DSet: true})
	addSpecTenant(t, eng, TenantSpec{ID: "doomed", Algorithm: "greedy", N: 8})
	addSpecTenant(t, eng, TenantSpec{ID: "phoenix", Algorithm: "greedy", N: 8})

	// alpha: incremental submits, remainder left queued (unflushed).
	for _, ev := range testStream(16, 300, 1) {
		if err := eng.Submit("alpha", ev); err != nil {
			t.Fatal(err)
		}
	}
	// perry: queued submits flushed by a Replay (TypeApply records with
	// flushFirst), faults riding at their scheduled event indexes.
	if err := eng.Submit("perry", arrivals(1_000_000, 10, 1)...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Replay(context.Background(), map[string][]task.Event{"perry": testStream(64, 300, 2)}); err != nil {
		t.Fatal(err)
	}
	// lazy1: submits plus an explicit Flush record.
	if err := eng.Submit("lazy1", testStream(32, 100, 3)...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush("lazy1"); err != nil {
		t.Fatal(err)
	}
	// doomed: poisoned and left that way — recovery must reproduce the
	// open breaker, not fail on it. The duplicate pair sits below the
	// batch trigger, so the explicit Flush is what detonates it.
	bad := []task.Event{{Kind: task.Arrive, Task: 1, Size: 2}, {Kind: task.Arrive, Task: 1, Size: 2}}
	if err := eng.Submit("doomed", bad...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush("doomed"); !errors.Is(err, ErrTenantPoisoned) {
		t.Fatalf("doomed flush: %v", err)
	}
	// phoenix: poisoned, then rebuilt through the breaker (TypeRebuild
	// record), then ingesting again.
	if err := eng.Submit("phoenix", arrivals(1, 4, 1)...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush("phoenix"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit("phoenix", bad...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush("phoenix"); !errors.Is(err, ErrTenantPoisoned) {
		t.Fatalf("phoenix flush: %v", err)
	}
	clk.advance(time.Hour)
	if err := eng.Submit("phoenix", arrivals(10, 5, 1)...); err != nil {
		t.Fatalf("phoenix post-rebuild submit: %v", err)
	}

	want := eng.Stats()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(Config{Shards: 3, BatchSize: 16, MaxQueue: 64, Rebuild: testRebuild}, dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rec.cfg.Journal.Close()
	got := rec.Stats()
	if len(got) != len(want) {
		t.Fatalf("recovered %d tenants, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := CanonicalStats(want[i]), CanonicalStats(got[i])
		if !bytes.Equal(w, g) {
			t.Errorf("%s: recovered stats diverge:\n  live: %s\n  rec:  %s", want[i].Tenant, w, g)
		}
	}
	if err := rec.Err("doomed"); !errors.Is(err, errs.ErrDuplicateTask) {
		t.Errorf("recovered doomed cause: %v", err)
	}

	// The recovered engine keeps journaling and ingesting where the old
	// one stopped.
	if err := rec.Submit("alpha", arrivals(9000, 3, 1)...); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush("alpha"); err != nil {
		t.Fatal(err)
	}
}

// cancelOnArrive cancels a context at its n-th arrival, from inside the
// apply path — a deterministic mid-replay cancellation trigger. The
// interface embedding hides any BatchApplier, so the engine applies
// per-event and the count is exact.
type cancelOnArrive struct {
	core.Allocator
	n      int
	count  int
	cancel context.CancelFunc
}

func (c *cancelOnArrive) Arrive(tk task.Task) tree.Node {
	c.count++
	if c.count == c.n {
		c.cancel()
	}
	return c.Allocator.Arrive(tk)
}

// TestReplayCancelMidRunThenResume cancels a Replay partway through:
// the in-flight batch must drain (no half-applied batches), the ledger
// must be consistent at the cut, and replaying the unapplied suffix must
// converge to the uninterrupted run's state.
func TestReplayCancelMidRunThenResume(t *testing.T) {
	const batch = 8
	stream := testStream(16, 400, 9)
	ctx, cancel := context.WithCancel(context.Background())
	eng := New(Config{Shards: 1, BatchSize: batch})
	wrapped := &cancelOnArrive{Allocator: core.NewBasic(tree.MustNew(16)), n: 100, cancel: cancel}
	if err := eng.AddTenant("t", wrapped); err != nil {
		t.Fatal(err)
	}

	if err := eng.Replay(ctx, map[string][]task.Event{"t": stream}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Replay: %v", err)
	}
	st, _ := eng.TenantStats("t")
	if st.Events == 0 || st.Events >= int64(len(stream)) {
		t.Fatalf("applied %d of %d events; cancellation should stop partway", st.Events, len(stream))
	}
	if st.Events%batch != 0 {
		t.Errorf("Events = %d is not batch-aligned: a batch was half-applied", st.Events)
	}
	if st.Queued != 0 {
		t.Errorf("Replay left %d events queued", st.Queued)
	}
	if int64(st.Batches)*batch != st.Events {
		t.Errorf("ledger: %d batches × %d ≠ %d events", st.Batches, batch, st.Events)
	}

	// Resume with the unapplied suffix and converge on the reference.
	if err := eng.Replay(context.Background(), map[string][]task.Event{"t": stream[st.Events:]}); err != nil {
		t.Fatalf("resumed Replay: %v", err)
	}
	ref := core.NewBasic(tree.MustNew(16))
	refEng := New(Config{Shards: 1, BatchSize: batch})
	if err := refEng.AddTenant("t", ref); err != nil {
		t.Fatal(err)
	}
	if err := refEng.Replay(context.Background(), map[string][]task.Event{"t": stream}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wrapped.Allocator.PELoads(), ref.PELoads()) {
		t.Error("resumed run and uninterrupted run disagree on PE loads")
	}
	fin, _ := eng.TenantStats("t")
	if fin.Events != int64(len(stream)) {
		t.Errorf("resumed Events = %d, want %d", fin.Events, len(stream))
	}
}
