// Overload handling: the MaxQueue admission policies and the Degrade
// policy's latency controller, which drives the paper's reallocation
// parameter d as a graceful-degradation knob (core.Degradable).
package engine

import (
	"fmt"
	"hash/fnv"
	"time"

	"partalloc/internal/core"
	"partalloc/internal/mathx"
)

// OverloadPolicy selects what Submit does when a submission would push a
// tenant's queue past Config.MaxQueue.
type OverloadPolicy int

const (
	// Block (the default) applies backpressure: the submission is
	// admitted in bound-sized chunks, applying batches between chunks,
	// so the call runs longer but nothing is lost and the queue never
	// exceeds the bound.
	Block OverloadPolicy = iota
	// Shed rejects the whole submission with ErrOverloaded; nothing is
	// queued or journaled. The caller owns the retry.
	Shed
	// Degrade admits like Block, but additionally trades placement
	// quality for ingestion speed: when the tenant's batch apply-latency
	// EWMA exceeds Config.DegradeBudget, the engine climbs the tenant's
	// degradation ladder — first switching A_M's trigger to lazy, then
	// doubling the effective d — and steps back down once the EWMA holds
	// under half the budget. Allocators that are not core.Degradable
	// behave exactly as under Block.
	Degrade
)

func (p OverloadPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case Shed:
		return "shed"
	case Degrade:
		return "degrade"
	default:
		return fmt.Sprintf("OverloadPolicy(%d)", int(p))
	}
}

// rung is one step on a tenant's degradation ladder.
type rung struct {
	d    int
	lazy bool
}

// degradeState is the per-tenant latency controller for the Degrade
// policy. Escalation is immediate (one rung per over-budget batch);
// de-escalation needs degradeHealthyStreak consecutive batches under
// half the budget — the factor-two hysteresis keeps the knob from
// flapping right at the boundary.
type degradeState struct {
	da      core.Degradable
	ladder  []rung
	level   int
	ewma    float64
	healthy int
	trans   []DegradeTransition
}

const (
	// degradeEWMAAlpha weights the newest batch latency in the EWMA.
	degradeEWMAAlpha = 0.25
	// degradeHealthyStreak is the de-escalation hysteresis, in batches.
	degradeHealthyStreak = 3
	// degradeMaxRungs caps the ladder length.
	degradeMaxRungs = 8
)

// newDegradeState builds the tenant's ladder, or returns nil when the
// allocator exposes no usable knob (not Degradable, delegating to A_G,
// or running with d = ∞). Rung 0 is the configured state; rung 1 turns
// on the lazy trigger (a free win: same Theorem 4.2 bound, far fewer
// reallocations); later rungs double d, stopping at the greedy bound
// ⌈½(log N+1)⌉ — beyond it reallocation cannot beat greedy anyway, so
// climbing further would spend migrations for nothing.
func newDegradeState(a core.Allocator) *degradeState {
	da, ok := a.(core.Degradable)
	if !ok {
		return nil
	}
	baseD, baseLazy := da.EffectiveD(), da.LazyRealloc()
	if baseD < 0 || !da.SetEffectiveD(baseD) {
		return nil // ∞ or greedy delegation: no machinery to retune
	}
	ladder := []rung{{baseD, baseLazy}}
	if !baseLazy {
		ladder = append(ladder, rung{baseD, true})
	}
	bound := mathx.GreedyBound(a.Machine().N())
	d := baseD * 2
	if d < 1 {
		d = 1
	}
	for len(ladder) < degradeMaxRungs && ladder[len(ladder)-1].d < bound {
		ladder = append(ladder, rung{d, true})
		d *= 2
	}
	return &degradeState{da: da, ladder: ladder}
}

// degradeStep feeds one batch's apply latency into the tenant's
// controller. Callers hold the shard lock.
func (e *Engine) degradeStep(t *tenant, ns int64) {
	d := t.deg
	if d == nil {
		return
	}
	if t.batches == 1 {
		d.ewma = float64(ns)
	} else {
		d.ewma += degradeEWMAAlpha * (float64(ns) - d.ewma)
	}
	budget := float64(e.cfg.DegradeBudget.Nanoseconds())
	switch {
	case d.ewma > budget && d.level < len(d.ladder)-1:
		d.healthy = 0
		e.shiftDegrade(t, d.level+1, fmt.Sprintf(
			"apply-latency ewma %v over budget %v",
			time.Duration(d.ewma).Round(time.Microsecond), e.cfg.DegradeBudget))
	case d.ewma <= budget/2 && d.level > 0:
		d.healthy++
		if d.healthy >= degradeHealthyStreak {
			d.healthy = 0
			e.shiftDegrade(t, d.level-1, fmt.Sprintf(
				"apply-latency ewma %v under half budget for %d batches",
				time.Duration(d.ewma).Round(time.Microsecond), degradeHealthyStreak))
		}
	case d.ewma > budget/2:
		// Between half budget and budget (or pinned at a ladder end):
		// not healthy enough to de-escalate, so the streak resets.
		d.healthy = 0
	}
}

// shiftDegrade moves the tenant to ladder rung level, records the
// transition, and reports it to the audit checker.
func (e *Engine) shiftDegrade(t *tenant, level int, cause string) {
	d := t.deg
	from, to := d.ladder[d.level], d.ladder[level]
	d.da.SetLazyRealloc(to.lazy)
	d.da.SetEffectiveD(to.d)
	d.level = level
	tr := DegradeTransition{
		Batch: t.batches,
		FromD: from.d, ToD: to.d,
		FromLazy: from.lazy, ToLazy: to.lazy,
		Cause: cause,
	}
	d.trans = append(d.trans, tr)
	t.sink.Degrade(t.id, level, int64(to.d), to.lazy)
	t.check.OnDegrade(tr.FromD, tr.ToD, tr.FromLazy, tr.ToLazy, tr.Cause)
}

// breakerArmed reports whether a poisoned tenant can ever be rebuilt:
// the engine needs the journal (the tenant's history), a rebuild recipe
// constructor, and the tenant's spec.
func (e *Engine) breakerArmed(t *tenant) bool {
	return e.cfg.Journal != nil && e.cfg.Rebuild != nil && t.hasSpec
}

// backoff computes the open interval after the tenant's latest trip:
// Base·2^(trips-1) capped at Max, plus a deterministic jitter of up to a
// quarter of that, hashed from (tenant, trips, seed).
func (e *Engine) backoff(t *tenant) int64 {
	b := e.cfg.Breaker
	d := b.Base
	for i := 1; i < t.trips && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d", t.id, t.trips, b.Seed)
	jitter := int64(h.Sum64() % uint64(d/4+1))
	return int64(d) + jitter
}
