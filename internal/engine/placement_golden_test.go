package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"partalloc/internal/fault"
	"partalloc/internal/task"
	"partalloc/internal/wal"
)

// The placement golden gate pins the HashPlacer routing to the exact
// ledger bytes the pre-placement-layer engine produced. The golden file
// was generated against the hard-wired fnv shardFor (before Placer
// existed) and must never be regenerated casually: byte-identity here
// is the proof that extracting the placement layer changed no observable
// tenant state for the default hash routing.
var updatePlacementGolden = flag.Bool("update-placement-golden", false,
	"rewrite testdata/hash_placement_golden.json from the current engine")

const placementGoldenPath = "testdata/hash_placement_golden.json"

// placementGoldenFleet covers all six algorithms, each with and without
// a fault schedule, so the gate exercises every allocator family through
// sharded ingestion, fault interleaving, and recovery.
func placementGoldenFleet(t *testing.T) []TenantSpec {
	t.Helper()
	algos := []struct {
		name string
		n    int
	}{
		{"basic", 32},
		{"greedy", 32},
		{"periodic", 64},
		{"lazy", 32},
		{"random", 64},
		{"constant", 32},
	}
	specs := make([]TenantSpec, 0, 2*len(algos))
	for i, al := range algos {
		variants := []bool{false, true}
		if al.name == "random" {
			// A_Rand rejects fault schedules (no FaultTolerant hook), so
			// it rides the gate fault-free.
			variants = variants[:1]
		}
		for _, faulty := range variants {
			spec := TenantSpec{
				ID:        fmt.Sprintf("%s-%d", al.name, boolInt(faulty)),
				Algorithm: al.name,
				N:         al.n,
			}
			switch al.name {
			case "periodic", "lazy":
				spec.D, spec.DSet = 2, true
			case "random":
				spec.Seed, spec.SeedSet = int64(40+i), true
			}
			if faulty {
				var buf bytes.Buffer
				fs := fault.Random(fault.RandomConfig{N: al.n, Events: 400, Failures: 2, Seed: int64(11 + i)})
				if err := fault.WriteText(&buf, fs); err != nil {
					t.Fatal(err)
				}
				spec.Faults = buf.String()
			}
			specs = append(specs, spec)
		}
	}
	return specs
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func placementGoldenConfig(log *wal.Log) Config {
	return Config{Shards: 4, BatchSize: 32, MaxQueue: 128, Overload: Block, Journal: log, Rebuild: testRebuild}
}

func placementGoldenStreams(fleet []TenantSpec) map[string][]task.Event {
	streams := make(map[string][]task.Event, len(fleet))
	for i, spec := range fleet {
		streams[spec.ID] = testStream(spec.N, 600+37*i, int64(i+1))
	}
	return streams
}

// canonicalByTenant flattens an engine's fleet into tenant→canonical
// ledger bytes, the unit of comparison for every path below.
func canonicalByTenant(e *Engine) map[string]json.RawMessage {
	out := make(map[string]json.RawMessage)
	for _, st := range e.Stats() {
		out[st.Tenant] = json.RawMessage(CanonicalStats(st))
	}
	return out
}

// TestHashPlacementGolden drives the golden fleet through all three
// ingestion paths — journaled Submit, batched Replay, and Recover from
// the Submit path's journal — and requires every tenant's CanonicalStats
// to match the committed pre-refactor golden byte for byte.
func TestHashPlacementGolden(t *testing.T) {
	fleet := placementGoldenFleet(t)
	streams := placementGoldenStreams(fleet)

	// Path 1: journaled Submit, round-robin chunks across tenants so
	// shard interleaving mirrors production ingestion.
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(placementGoldenConfig(log))
	for _, spec := range fleet {
		addSpecTenant(t, eng, spec)
	}
	const chunk = 7
	for off := 0; ; off += chunk {
		busy := false
		for _, spec := range fleet {
			evs := streams[spec.ID]
			if off >= len(evs) {
				continue
			}
			busy = true
			end := off + chunk
			if end > len(evs) {
				end = len(evs)
			}
			if err := eng.Submit(spec.ID, evs[off:end]...); err != nil {
				t.Fatalf("submit %s: %v", spec.ID, err)
			}
		}
		if !busy {
			break
		}
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got := canonicalByTenant(eng)

	if *updatePlacementGolden {
		if err := os.MkdirAll(filepath.Dir(placementGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]json.RawMessage, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(placementGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d tenants)", placementGoldenPath, len(got))
		return
	}

	raw, err := os.ReadFile(placementGoldenPath)
	if err != nil {
		t.Fatalf("golden missing (run with -update-placement-golden against the pre-refactor engine): %v", err)
	}
	var want map[string]json.RawMessage
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	compareCanonical(t, "submit", want, got)

	// Path 2: batched Replay on a journal-less engine.
	rep := New(placementGoldenConfig(nil))
	for _, spec := range fleet {
		addSpecTenant(t, rep, spec)
	}
	if err := rep.Replay(context.Background(), streams); err != nil {
		t.Fatal(err)
	}
	compareCanonical(t, "replay", want, canonicalByTenant(rep))

	// Path 3: Recover from the Submit path's journal.
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(placementGoldenConfig(nil), dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.cfg.Journal.Close()
	compareCanonical(t, "recover", want, canonicalByTenant(rec))
}

// compactJSON strips formatting so the indented golden file and the
// engine's compact CanonicalStats bytes compare on content alone.
func compactJSON(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func compareCanonical(t *testing.T, path string, want, got map[string]json.RawMessage) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d tenants, golden has %d", path, len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Errorf("%s: tenant %s missing", path, id)
			continue
		}
		if !bytes.Equal(compactJSON(t, w), compactJSON(t, g)) {
			t.Errorf("%s: %s diverges from pre-refactor golden:\n  want: %s\n  got:  %s", path, id, w, g)
		}
	}
}
