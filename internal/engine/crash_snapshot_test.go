package engine

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"

	"partalloc/internal/task"
	"partalloc/internal/wal"
)

// Environment for the snapshot crash child: the engine journal directory
// and the sidecar directory holding the uninterrupted reference stream.
const (
	snapCrashDirEnv  = "PARTALLOC_SNAPCRASH_DIR"
	snapCrashSideEnv = "PARTALLOC_SNAPCRASH_SIDECAR"
)

// snapCrashChunk is the child's submission granularity. The parent's
// acked-events accounting depends on it: the child's loop is sequential,
// so at most one chunk is in flight when the SIGKILL lands.
const snapCrashChunk = 5

func snapCrashConfig(log *wal.Log) Config {
	return Config{Shards: 2, BatchSize: 8, MaxQueue: 32, Overload: Block,
		Journal: log, Rebuild: testRebuild, SnapshotEvery: 2}
}

// TestSnapshotCrashChild is the helper body for
// TestSIGKILLSnapshotRecovery, not a test. It ingests through a
// snapshotting, continuously compacting journal (4KiB segments force
// rotation, SnapshotEvery 2 keeps retention busy), so the parent's
// SIGKILL lands inside the snapshot/truncate machinery: between a
// snapshot append and the truncation it triggers, or mid-truncation with
// some segments already unlinked. Before each Submit, the chunk is
// appended to a sidecar log that is never truncated — the parent replays
// it to reconstruct the uninterrupted reference.
func TestSnapshotCrashChild(t *testing.T) {
	dir := os.Getenv(snapCrashDirEnv)
	if dir == "" {
		t.Skip("crash-child helper; driven by TestSIGKILLSnapshotRecovery")
	}
	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	side, err := wal.Open(os.Getenv(snapCrashSideEnv), wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(snapCrashConfig(log))
	fleet := crashFleet()
	streams := make([][]task.Event, len(fleet))
	for i, spec := range fleet {
		addSpecTenant(t, eng, spec)
		streams[i] = testStream(spec.N, 500_000, int64(i+1))
	}
	for off := 0; ; off += snapCrashChunk {
		for i, spec := range fleet {
			evs := streams[i]
			if off >= len(evs) {
				t.Fatal("crash child exhausted its stream before being killed")
			}
			end := off + snapCrashChunk
			if end > len(evs) {
				end = len(evs)
			}
			chunk := evs[off:end]
			// Sidecar first: everything the engine journal acknowledges is
			// guaranteed to be in the sidecar, so sidecar ⊇ engine holds at
			// every instant the kill can land.
			if err := side.Append(wal.Record{Type: wal.TypeSubmit, Tenant: spec.ID,
				Data: wal.AppendEvents(nil, chunk)}); err != nil {
				t.Fatalf("child sidecar append %s: %v", spec.ID, err)
			}
			if err := eng.Submit(spec.ID, chunk...); err != nil {
				t.Fatalf("child submit %s: %v", spec.ID, err)
			}
		}
	}
}

// TestSIGKILLSnapshotRecovery is the crash gate for the snapshot
// subsystem: a child ingesting through a snapshotting, compacting
// journal is SIGKILLed once retention has already truncated segments, so
// the kill lands somewhere inside the append-snapshot → truncate window
// (or mid-truncation). The surviving journal must be a contiguous
// segment suffix, must recover, and the recovered engine must be
// byte-identical to an uninterrupted engine fed exactly the events the
// journal acknowledged — no acknowledged event lost, none double-applied.
func TestSIGKILLSnapshotRecovery(t *testing.T) {
	if os.Getenv(snapCrashDirEnv) != "" || os.Getenv(crashChildEnv) != "" {
		t.Skip("already inside a crash child")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir, sideDir := t.TempDir(), t.TempDir()
	cmd := exec.Command(exe, "-test.run=^TestSnapshotCrashChild$")
	cmd.Env = append(os.Environ(), snapCrashDirEnv+"="+dir, snapCrashSideEnv+"="+sideDir)
	var childOut bytes.Buffer
	cmd.Stdout = &childOut
	cmd.Stderr = &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Kill only once the earliest surviving segment is well past 1 —
	// proof that retention has truncated at least twice, so the kill
	// lands amid live snapshot/compaction traffic rather than before it.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("retention never truncated; child output:\n%s", childOut.String())
		}
		if segs := walSegments(t, dir); len(segs) > 0 && segs[0] >= 3 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err == nil {
		t.Fatalf("child exited cleanly instead of dying to SIGKILL; output:\n%s", childOut.String())
	}

	// Ascending truncation must leave a contiguous suffix whatever the
	// kill interrupted — a hole would mean out-of-order deletion.
	segs := walSegments(t, dir)
	if len(segs) == 0 {
		t.Fatal("no journal segments survived the kill")
	}
	for i := 1; i < len(segs); i++ {
		if segs[i] != segs[i-1]+1 {
			t.Fatalf("segment hole after crash: %v", segs)
		}
	}

	rec, err := Recover(snapCrashConfig(nil), dir, wal.Options{Sync: wal.SyncNever, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rec.cfg.Journal.Close()
	rs := rec.RecoveryStats()
	if rs.SnapshotsRestored == 0 {
		t.Errorf("recovery restored no snapshots despite SnapshotEvery=2 (stats %+v)", rs)
	}

	// Reconstruct the uninterrupted stream from the sidecar.
	sideEvents := map[string][]task.Event{}
	err = wal.Replay(sideDir, func(ord int, wrec wal.Record) error {
		if wrec.Type != wal.TypeSubmit {
			return fmt.Errorf("sidecar record %d has type %d", ord, wrec.Type)
		}
		evs, err := wal.DecodeEvents(wrec.Data)
		if err != nil {
			return err
		}
		sideEvents[wrec.Tenant] = append(sideEvents[wrec.Tenant], evs...)
		return nil
	})
	if err != nil {
		t.Fatalf("sidecar replay: %v", err)
	}

	// Acked-events accounting: the engine journal can only trail the
	// sidecar by the single chunk in flight at the kill.
	ingested := map[string]int{}
	var lag int
	for _, st := range rec.Stats() {
		n := int(st.Events) + st.Queued
		ingested[st.Tenant] = n
		if n == 0 {
			t.Errorf("%s: recovered zero events; the kill landed before ingestion", st.Tenant)
		}
		d := len(sideEvents[st.Tenant]) - n
		if d < 0 {
			t.Fatalf("%s: recovered %d events but sidecar only recorded %d — events invented from nowhere",
				st.Tenant, n, len(sideEvents[st.Tenant]))
		}
		lag += d
	}
	if lag > snapCrashChunk {
		t.Fatalf("engine journal trails the sidecar by %d events across tenants; "+
			"the sequential child can only have one %d-event chunk in flight", lag, snapCrashChunk)
	}

	// The equivalence gate: an uninterrupted, journal-less engine fed the
	// acknowledged prefix in the child's exact chunking must match the
	// recovered engine byte for byte.
	ref := New(Config{Shards: 2, BatchSize: 8, MaxQueue: 32, Overload: Block})
	for _, spec := range crashFleet() {
		addSpecTenant(t, ref, spec)
		evs := sideEvents[spec.ID][:ingested[spec.ID]]
		for off := 0; off < len(evs); off += snapCrashChunk {
			end := off + snapCrashChunk
			if end > len(evs) {
				end = len(evs)
			}
			if err := ref.Submit(spec.ID, evs[off:end]...); err != nil {
				t.Fatalf("reference submit %s: %v", spec.ID, err)
			}
		}
	}
	want, got := ref.Stats(), rec.Stats()
	if len(got) != len(want) {
		t.Fatalf("recovered %d tenants, reference %d", len(got), len(want))
	}
	for i := range want {
		w, g := CanonicalStats(want[i]), CanonicalStats(got[i])
		if !bytes.Equal(w, g) {
			t.Errorf("%s: recovered stats diverge from uninterrupted run:\n  ref: %s\n  rec: %s",
				want[i].Tenant, w, g)
		}
	}

	// Life goes on: the recovered engine keeps snapshotting and serving.
	if err := rec.Submit("basic", arrivals(9_000_000, 3, 1)...); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush("basic"); err != nil {
		t.Fatal(err)
	}
}
