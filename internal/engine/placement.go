// The placement layer: tenant→shard routing as a first-class, mutable
// concern. Every shard addressing decision in the engine flows through
// a Placer's routing table — this file owns the only code allowed to
// index e.shards or hash tenant IDs (enforced by the placer lint).
//
// Two placers ship:
//
//   - HashPlacer: the historical behavior — fnv-32a(id) mod shards —
//     behind the routing table. Routes never change, so the engine is
//     byte-identical to the pre-placement-layer code (gated by
//     TestHashPlacementGolden).
//   - BalancedPlacer: the engine eating the paper's own cooking. An
//     internal core A_M(d) instance runs over a virtual tree machine
//     whose PEs are the shards and whose tasks are the tenants, each
//     sized by a power-of-two quantization of its measured apply-cost
//     EWMA. Every Config.RebalanceEvery applied batches, the engine
//     diffs the virtual placement against the routing table and moves
//     at most d·shards tenants (moveTenantLocal), journaling each move
//     as a wal.TypeMove record so Recover replays routing exactly.
//
// Routing changes and shard membership are kept consistent by lock
// discipline: moves hold the rebalance mutex plus both shard locks, and
// lookups re-verify the route after acquiring the shard lock
// (lockTenantShard), so a tenant can never be operated on through a
// stale stripe.
package engine

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"partalloc/internal/core"
	"partalloc/internal/invariant"
	"partalloc/internal/mathx"
	"partalloc/internal/task"
	"partalloc/internal/tree"
	"partalloc/internal/wal"
)

// PlacementPolicy selects the engine's tenant→shard placer.
type PlacementPolicy int

const (
	// PlacementHash routes tenants by fnv-32a hash (the default and the
	// historical behavior).
	PlacementHash PlacementPolicy = iota
	// PlacementBalanced routes tenants through an internal A_M(d)
	// rebalancer over the shards (see BalancedPlacer).
	PlacementBalanced
)

// String names the policy for flags and reports.
func (p PlacementPolicy) String() string {
	switch p {
	case PlacementHash:
		return "hash"
	case PlacementBalanced:
		return "balanced"
	}
	return fmt.Sprintf("PlacementPolicy(%d)", int(p))
}

// Placer is the engine's tenant→shard routing table. Implementations
// must be safe for concurrent use: ingestion looks routes up while a
// rebalance pass rewrites them.
type Placer interface {
	// Place assigns a shard to a tenant and records the route. Placing
	// an already-routed tenant returns its existing route unchanged.
	Place(id string) int
	// Lookup returns the tenant's current route. For an unrouted tenant
	// it reports ok=false along with the deterministic hash default, so
	// callers always have a shard to address.
	Lookup(id string) (shard int, ok bool)
	// Remove forgets the tenant's route (tenant moved away or removed).
	Remove(id string)
	// Reroute overwrites the tenant's route: intra-engine moves and
	// recovery's TypeMove replay.
	Reroute(id string, shard int)
	// Routes snapshots the routing table (tenant → shard index).
	Routes() map[string]int
}

// hashShard is the deterministic default route: fnv-32a(id) mod shards.
// It is the single tenant-hashing site in the engine (placer lint).
func hashShard(id string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32()) % shards
}

// routeTable is the mutable routing table both placers share.
type routeTable struct {
	mu     sync.RWMutex
	routes map[string]int
	shards int
}

func (rt *routeTable) Lookup(id string) (int, bool) {
	rt.mu.RLock()
	idx, ok := rt.routes[id]
	rt.mu.RUnlock()
	if !ok {
		return hashShard(id, rt.shards), false
	}
	return idx, true
}

func (rt *routeTable) Remove(id string) {
	rt.mu.Lock()
	delete(rt.routes, id)
	rt.mu.Unlock()
}

func (rt *routeTable) Reroute(id string, shard int) {
	rt.mu.Lock()
	rt.routes[id] = shard
	rt.mu.Unlock()
}

func (rt *routeTable) Routes() map[string]int {
	rt.mu.RLock()
	out := make(map[string]int, len(rt.routes))
	for id, idx := range rt.routes {
		out[id] = idx
	}
	rt.mu.RUnlock()
	return out
}

// HashPlacer routes every tenant to its hash default. The routing table
// exists only so membership audits and recovery have one source of
// truth; a route, once placed, never changes on its own.
type HashPlacer struct {
	routeTable
}

// NewHashPlacer returns the default placer for an engine with the given
// shard count.
func NewHashPlacer(shards int) *HashPlacer {
	p := &HashPlacer{}
	p.routes = make(map[string]int)
	p.shards = shards
	return p
}

// Place implements Placer: the hash default, recorded.
func (p *HashPlacer) Place(id string) int {
	if idx, ok := p.Lookup(id); ok {
		return idx
	}
	idx := hashShard(id, p.shards)
	p.Reroute(id, idx)
	return idx
}

// vtask is one tenant's task in the BalancedPlacer's virtual machine.
// want/wantN debounce resizes: the direction (+1 grow, -1 shrink) of a
// pending size change and how many consecutive Plan passes have asked
// for it. Direction, not the exact size — estimates drifting across a
// quantization boundary may ask for 2 one pass and 4 the next, and a
// growth demand that persistent should still land.
type vtask struct {
	tid   task.ID
	size  int
	want  int
	wantN int
}

// resizePersist is how many consecutive passes a size change must
// survive before the virtual task is re-packed. One pass of whiplash in
// the load estimates (a client bursting, another idling through a
// window) must not trigger an A_M reallocation, because reallocation
// shifts submachine ranges fleet-wide and every shifted tenant becomes
// a candidate move.
const resizePersist = 3

// BalancedPlacer routes tenants through the paper's own A_M(d): the
// shards are the PEs of a virtual tree machine, each tenant is a task
// sized by the power-of-two quantization of its load estimate, and a
// multi-shard tenant may run on any PE of its assigned submachine — the
// wide submachine reserves headroom around the heavy tenants, which is
// where the paper's isolation guarantee lives. Singleton tasks carry no
// such guarantee (their quantized width is one PE), so Plan levels them
// across the whole machine. Within those ranges a constrained greedy
// assigns each tenant, heaviest first, to the least-loaded admissible
// shard, with enough stickiness that a converged fleet plans no moves.
// The virtual allocator is a heuristic advisor only: the routing table
// remains the source of truth and is recovered from the journal (hash
// defaults plus TypeMove records plus snapshot Shard fields), never
// from the advisor.
type BalancedPlacer struct {
	routeTable
	d int

	vmu    sync.Mutex
	vm     *core.Periodic
	tasks  map[string]vtask
	nextID task.ID
}

// NewBalancedPlacer returns an A_M(d)-backed placer over a power-of-two
// shard count (Config.withDefaults guarantees it).
func NewBalancedPlacer(shards, d int) *BalancedPlacer {
	p := &BalancedPlacer{
		d: d,
		//lint:ignore hosttopo the virtual machine's PEs are this engine's shards, not physical processors — no host topology exists for them
		vm:    core.NewPeriodic(tree.MustNew(shards), d, core.DecreasingSize),
		tasks: make(map[string]vtask),
	}
	p.routes = make(map[string]int)
	p.shards = shards
	return p
}

// shardOf maps a virtual submachine to the shard index a tenant placed
// there is routed to: the first PE the submachine covers.
func (p *BalancedPlacer) shardOf(v tree.Node) int {
	lo, _ := p.vm.Machine().PERange(v)
	return lo
}

// Place implements Placer: a new tenant arrives in the virtual machine
// as a size-1 task and is routed to its assigned shard. The caller
// (addTenant) journals the divergence from the hash default as a
// TypeMove record so recovery reproduces the route.
func (p *BalancedPlacer) Place(id string) int {
	if idx, ok := p.Lookup(id); ok {
		return idx
	}
	p.vmu.Lock()
	idx := p.shardOf(p.arriveLocked(id, 1))
	p.vmu.Unlock()
	p.Reroute(id, idx)
	return idx
}

// arriveLocked adds a virtual task for id. Callers hold vmu.
func (p *BalancedPlacer) arriveLocked(id string, size int) tree.Node {
	p.nextID++
	tid := p.nextID
	v := p.vm.Arrive(task.Task{ID: tid, Size: size})
	p.tasks[id] = vtask{tid: tid, size: size}
	return v
}

// Remove implements Placer, retiring the virtual task too.
func (p *BalancedPlacer) Remove(id string) {
	p.vmu.Lock()
	if vt, ok := p.tasks[id]; ok {
		p.vm.Depart(vt.tid)
		delete(p.tasks, id)
	}
	p.vmu.Unlock()
	p.routeTable.Remove(id)
}

// Move is one planned intra-engine tenant move.
type Move struct {
	Tenant   string
	From, To int
}

// Plan re-sizes the virtual tasks from the per-tenant load estimates,
// lets A_M(d) repack as its own trigger dictates, and returns at most
// budget moves that would bring the routing table toward the virtual
// placement. A tenant routed anywhere inside its assigned submachine
// stays put (so plans do not oscillate between equivalent PEs); one
// routed outside it moves to the least-loaded in-range shard, heaviest
// tenants first, since moving them repairs the most imbalance per
// move. Tenants in the table but absent from loads (mid-move, poisoned
// at scan time) keep their routes.
func (p *BalancedPlacer) Plan(loads map[string]float64, budget int) []Move {
	if budget <= 0 {
		return nil
	}
	ids := make([]string, 0, len(loads))
	for id := range loads {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	p.vmu.Lock()
	// Retire virtual tasks for tenants that left the engine entirely.
	current := p.Routes()
	for id, vt := range p.tasks {
		if _, ok := current[id]; !ok {
			p.vm.Depart(vt.tid)
			delete(p.tasks, id)
		}
	}
	// Quantize load estimates to power-of-two task sizes relative to the
	// heaviest tenant, who always gets the maximum width (half the
	// machine, so no tenant can reserve every shard); each halving of
	// load drops one notch, floor 1. The heaviest tenant's estimate is
	// the stablest statistic the ledger has — sizing against it, rather
	// than against the lightest (which decays toward zero the moment a
	// tenant goes quiet), keeps the tail from inflating every width when
	// the fleet idles. Keeping width roughly proportional to load is
	// what makes the virtual packing track real load: every copy of the
	// virtual machine holds ~shards units of width, so each PE column
	// accumulates a near-equal load share.
	maxLoad := 0.0
	for _, id := range ids {
		if l := loads[id]; l > maxLoad {
			maxLoad = l
		}
	}
	maxSize := p.shards / 2
	if maxSize < 1 {
		maxSize = 1
	}
	sizeFor := func(load float64) int {
		if maxLoad <= 0 || load <= 0 {
			return 1
		}
		r := int(maxLoad / load)
		if r < 1 {
			r = 1
		}
		size := maxSize >> mathx.Log2Floor(r)
		if size < 1 {
			size = 1
		}
		return size
	}
	for _, id := range ids {
		size := sizeFor(loads[id])
		vt, ok := p.tasks[id]
		if !ok {
			p.arriveLocked(id, size)
			continue
		}
		// Hysteresis: a resize must survive a full-octave (2×) load
		// discount (going up) or markup (going down). Size classes are
		// powers of two, so anything less lets a tenant sitting near a
		// quantization boundary flap the virtual packing — and, through
		// A_M's reallocation, the whole fleet's placements — every pass.
		dir := 0
		switch {
		case size > vt.size && sizeFor(loads[id]/2) > vt.size:
			dir = 1
		case size < vt.size && sizeFor(loads[id]*2) < vt.size:
			dir = -1
		}
		if dir == 0 {
			if vt.wantN != 0 {
				vt.want, vt.wantN = 0, 0
				p.tasks[id] = vt
			}
			continue
		}
		if vt.want == dir {
			vt.wantN++
		} else {
			vt.want, vt.wantN = dir, 1
		}
		if vt.wantN >= resizePersist {
			p.vm.Depart(vt.tid)
			p.arriveLocked(id, size)
		} else {
			p.tasks[id] = vt
		}
	}
	// Collect every tenant's admissible shard range — the PE span of the
	// submachine A_M assigned its virtual task.
	type slot struct {
		id     string
		lo, hi int // admissible shard range [lo, hi)
		have   int
		routed bool
		load   float64
	}
	slots := make([]slot, 0, len(ids))
	for _, id := range ids {
		vt, ok := p.tasks[id]
		if !ok {
			continue
		}
		node, ok := p.vm.Placement(vt.tid)
		if !ok {
			continue
		}
		lo, hi := p.vm.Machine().PERange(node)
		if hi-lo == 1 {
			// A singleton has no submachine to preserve — its quantized
			// width is a single PE, so A_M's placement of it carries no
			// isolation guarantee, only packing-order bias (DecreasingSize
			// fills each copy's PEs heaviest-first, so high columns
			// systematically collect the lightest tasks). Let the greedy
			// level the light tail across the whole machine; the reserved
			// ranges protect the wide tenants, which is where the paper's
			// guarantee lives.
			lo, hi = 0, p.shards
		}
		have, routed := p.Lookup(id)
		slots = append(slots, slot{id: id, lo: lo, hi: hi, have: have, routed: routed, load: loads[id]})
	}
	p.vmu.Unlock()

	// Constrained greedy target assignment: every tenant, heaviest
	// first, goes to the least-loaded shard its submachine covers — A_M
	// reserves the neighborhood, the measured load picks the seat
	// inside it. A tenant already routed in-range stays unless moving
	// improves its shard's running load by more than the tenant's own
	// contribution: a move that cheap is within estimate noise, and
	// holding still keeps converged plans empty instead of shuffling
	// near-equal tenants between near-equal shards every pass.
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].load != slots[j].load {
			return slots[i].load > slots[j].load
		}
		return slots[i].id < slots[j].id
	})
	running := make([]float64, p.shards)
	var moves []Move
	for _, sl := range slots {
		best := sl.lo
		for s := sl.lo + 1; s < sl.hi; s++ {
			if running[s] < running[best] {
				best = s
			}
		}
		if sl.routed && sl.have >= sl.lo && sl.have < sl.hi &&
			running[sl.have] <= running[best]+sl.load {
			best = sl.have
		}
		running[best] += sl.load
		if sl.routed && best != sl.have {
			moves = append(moves, Move{Tenant: sl.id, From: sl.have, To: best})
		}
	}
	// Heaviest-first truncation: the emission order above already is.
	if len(moves) > budget {
		moves = moves[:budget]
	}
	return moves
}

// newPlacer builds the configured placer; called by New.
func newPlacer(cfg Config) Placer {
	if cfg.Placement == PlacementBalanced {
		return NewBalancedPlacer(cfg.Shards, cfg.RebalanceD)
	}
	return NewHashPlacer(cfg.Shards)
}

// newShards allocates the lock stripes; the only shard-slice
// construction site.
func newShards(n int) []*shard {
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = &shard{tenants: make(map[string]*tenant)}
	}
	return shards
}

// route resolves a tenant to its shard index through the placer.
func (e *Engine) route(id string) int {
	idx, _ := e.placer.Lookup(id)
	return idx
}

// shardAt returns the stripe at index idx; the only e.shards indexing
// site outside construction.
func (e *Engine) shardAt(idx int) *shard {
	return e.shards[idx]
}

// shardIdx resolves a tenant ID to its stripe index via the routing
// table (hash default for unrouted tenants).
func (e *Engine) shardIdx(id string) int { return e.route(id) }

// shardFor resolves a tenant ID to its stripe. The returned shard is a
// point-in-time answer: a concurrent rebalance can reroute the tenant
// before the caller locks it. Paths that operate on the tenant must use
// lockTenantShard instead; shardFor remains for single-threaded paths
// (recovery) and callers that only need a default stripe.
func (e *Engine) shardFor(id string) *shard {
	return e.shardAt(e.route(id))
}

// lockTenantShard locks the shard currently routing id, re-verifying
// the route after acquisition: moveTenantLocal rewrites the route while
// holding both shard locks, so a route that still matches under the
// lock cannot be mid-move.
func (e *Engine) lockTenantShard(id string) *shard {
	for {
		idx := e.route(id)
		s := e.shardAt(idx)
		s.mu.Lock()
		if e.route(id) == idx {
			//lint:ignore lockorder lockTenantShard transfers s.mu to the caller by contract; every caller unlocks it
			return s
		}
		s.mu.Unlock()
	}
}

// ShardStats is a point-in-time ledger for one lock stripe.
type ShardStats struct {
	// Shard is the stripe index.
	Shard int
	// Tenants is the number of tenants currently routed here.
	Tenants int
	// Queued is the current sum of resident tenants' queue depths.
	Queued int
	// PeakQueued is the highest backlog observed at an ingestion
	// boundary: Queued plus events in submissions still waiting for the
	// stripe lock. It is the hot-shard pressure measure the skew
	// benchmark reports — a stripe loaded beyond its drain rate shows
	// up here as submitters stacking behind it.
	PeakQueued int
	// Events counts events applied on this stripe (cumulative; a moved
	// tenant's future events count toward its new stripe).
	Events int64
	// ApplyNs is cumulative wall time spent applying on this stripe.
	ApplyNs int64
}

// ShardStats snapshots every stripe's ledger in index order.
func (e *Engine) ShardStats() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	for i, s := range e.shards {
		s.mu.Lock()
		q := 0
		for _, t := range s.tenants {
			q += len(t.queue)
		}
		out[i] = ShardStats{
			Shard:      i,
			Tenants:    len(s.tenants),
			Queued:     q,
			PeakQueued: s.peakQueued,
			Events:     s.events,
			ApplyNs:    s.applyNs,
		}
		s.mu.Unlock()
	}
	return out
}

// ResetShardPeaks starts a fresh peak-backlog measurement window:
// every stripe's PeakQueued high-water restarts from its current
// backlog. Benchmarks and monitors use this to scope the peak to a
// phase (say, after a fleet's routing has converged) instead of the
// engine's whole lifetime.
func (e *Engine) ResetShardPeaks() {
	for _, s := range e.shards {
		s.mu.Lock()
		q := 0
		for _, t := range s.tenants {
			q += len(t.queue)
		}
		s.queued = q
		s.peakQueued = q + int(s.inbound.Load())
		s.mu.Unlock()
	}
}

// Routes snapshots the routing table (tenant → shard index).
func (e *Engine) Routes() map[string]int { return e.placer.Routes() }

// RebalanceStats is the cumulative ledger of the balanced placer's
// rebalance passes.
type RebalanceStats struct {
	// Passes counts completed rebalance passes.
	Passes int64
	// Planned counts moves the placer proposed (within budget).
	Planned int64
	// Moves counts moves actually performed.
	Moves int64
	// LastPassMoves is the move count of the most recent pass.
	LastPassMoves int
	// Violations holds routing-consistency and move-budget findings
	// from the per-pass invariant audit; empty on a healthy engine.
	Violations []invariant.Violation
}

// RebalanceStats snapshots the rebalance ledger.
func (e *Engine) RebalanceStats() RebalanceStats {
	e.rsMu.Lock()
	defer e.rsMu.Unlock()
	st := e.rebalStats
	st.Violations = append([]invariant.Violation(nil), e.rebalStats.Violations...)
	return st
}

// maybeRebalance runs a rebalance pass when the engine-wide batch
// counter has crossed the RebalanceEvery cadence. Called from ingestion
// paths after the shard lock is released; TryLock keeps ingestion
// non-blocking when a pass is already running.
func (e *Engine) maybeRebalance() {
	bp, ok := e.placer.(*BalancedPlacer)
	if !ok {
		return
	}
	if e.batchesTotal.Load() < e.nextRebal.Load() {
		return
	}
	if !e.rebalMu.TryLock() {
		return
	}
	defer e.rebalMu.Unlock()
	if e.batchesTotal.Load() < e.nextRebal.Load() {
		return // another pass got here first
	}
	e.rebalancePass(bp)
	e.nextRebal.Store(e.batchesTotal.Load() + int64(e.cfg.RebalanceEvery))
}

// Rebalance forces a rebalance pass now, returning the number of
// tenants moved. A no-op (0, nil) on hash-placed engines.
func (e *Engine) Rebalance() (int, error) {
	bp, ok := e.placer.(*BalancedPlacer)
	if !ok {
		return 0, nil
	}
	e.rebalMu.Lock()
	defer e.rebalMu.Unlock()
	//lint:ignore lockorder a pass journals its moves while rebalMu serializes it — append-before-apply needs the move frozen, and rebalMu is what freezes routing
	moved, err := e.rebalancePass(bp)
	e.nextRebal.Store(e.batchesTotal.Load() + int64(e.cfg.RebalanceEvery))
	return moved, err
}

// rebalancePass measures, plans, moves, and audits. Callers hold
// rebalMu.
func (e *Engine) rebalancePass(bp *BalancedPlacer) (int, error) {
	// Measure: fold each tenant's events applied since the last pass
	// into its load accumulator. Events, not wall time — the cost unit
	// is deterministic (wall-time windows whiplash with scheduler noise
	// and GC pauses, and two engines fed the same streams then place
	// differently), and queue pressure follows event volume. Healthy
	// tenants only — a poisoned tenant's route is frozen until it heals.
	loads := make(map[string]float64)
	for _, s := range e.shards {
		s.mu.Lock()
		for id, t := range s.tenants {
			if t.err != nil {
				continue
			}
			window := float64(t.events - t.rebalMark)
			t.rebalMark = t.events
			t.rebalEst = rebalDecay*t.rebalEst + window
			loads[id] = t.rebalEst
		}
		s.mu.Unlock()
	}

	budget := e.cfg.RebalanceD * len(e.shards)
	moves := bp.Plan(loads, budget)

	moved := 0
	var firstErr error
	for _, mv := range moves {
		ok, err := e.moveTenantLocal(mv.Tenant, mv.From, mv.To)
		if err != nil {
			firstErr = err
			break
		}
		if ok {
			moved++
		}
	}

	// Audit only passes that changed routing: the sweep takes every shard
	// lock at once, and paying that pause on no-op steady-state passes
	// would stall ingestion to re-verify a table nothing touched.
	var viol []invariant.Violation
	if moved > 0 {
		viol = e.auditPlacement(moved, budget)
	}
	e.rsMu.Lock()
	e.rebalStats.Passes++
	e.rebalStats.Planned += int64(len(moves))
	e.rebalStats.Moves += int64(moved)
	e.rebalStats.LastPassMoves = moved
	if len(viol) > 0 && len(e.rebalStats.Violations) < 64 {
		e.rebalStats.Violations = append(e.rebalStats.Violations, viol...)
	}
	e.rsMu.Unlock()
	e.cfg.Sink.RebalancePass(len(moves), moved, budget, len(viol))
	return moved, firstErr
}

// rebalDecay ages the per-tenant load accumulator each pass. A decayed
// accumulator — not an EWMA toward the current window — because when
// the fleet goes quiet every estimate shrinks by the same factor and
// the load RATIOS the packing is built from hold still; an EWMA would
// collapse idle tenants toward zero absolutely, move the fleet maximum,
// and re-quantize every width each pass. Slow enough to be stable, low
// enough that a workload shift overtakes history within a few dozen
// passes.
const rebalDecay = 0.95

// auditPlacement checks the two placement invariants under all shard
// locks (acquired in index order): the routing table is a bijection to
// shard membership, and the pass's move count respected the d·shards
// budget. Membership writers (addTenant, MoveTenant, installSnapshot)
// hold rebalMu, which the caller holds, so the snapshot is exact.
func (e *Engine) auditPlacement(moved, budget int) []invariant.Violation {
	for _, s := range e.shards {
		s.mu.Lock()
	}
	members := make(map[string]int)
	for i, s := range e.shards {
		for id := range s.tenants {
			members[id] = i
		}
	}
	routes := e.placer.Routes()
	for i := len(e.shards) - 1; i >= 0; i-- {
		e.shards[i].mu.Unlock()
	}
	viol := invariant.CheckRouting(routes, members)
	viol = append(viol, invariant.CheckMoveBudget(moved, e.cfg.RebalanceD, len(e.shards))...)
	//lint:ignore lockorder every shard lock taken by the loop above is released by the reverse loop; the analyzer cannot pair loop-acquired locks
	return viol
}

// journalMove appends the TypeMove record that commits an intra-engine
// move; replayed by Recover to reproduce the routing table.
func (e *Engine) journalMove(id string, from, to int) error {
	if e.cfg.Journal == nil {
		return nil
	}
	return e.journalAppend(wal.Record{Type: wal.TypeMove, Tenant: id, Data: wal.AppendMove(nil, from, to)})
}

// moveTenantLocal moves one tenant between stripes of this engine:
// journal the TypeMove (the commit point — a crash before it recovers
// the old route, after it the new one), ship the tenant through the
// snapshot codec exactly as a cross-engine MoveTenant would, install it
// on the destination stripe, and swap the route. Wall-clock ledger
// fields the envelope deliberately omits (latency samples, the breaker
// deadline, the snapshot cadence position) are carried over — a local
// move is a relocation, not a rebuild.
//
// Skipped moves (tenant vanished, poisoned, or not snapshotable) return
// (false, nil). Callers hold rebalMu.
func (e *Engine) moveTenantLocal(id string, from, to int) (bool, error) {
	if from == to || from < 0 || to < 0 || from >= len(e.shards) || to >= len(e.shards) {
		return false, nil
	}
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	e.shards[lo].mu.Lock()
	defer e.shards[lo].mu.Unlock()
	e.shards[hi].mu.Lock()
	defer e.shards[hi].mu.Unlock()

	src, dst := e.shards[from], e.shards[to]
	t, ok := src.tenants[id]
	if !ok || t.err != nil {
		return false, nil
	}
	if _, dup := dst.tenants[id]; dup {
		return false, fmt.Errorf("engine: move %q: already on shard %d", id, to)
	}
	//lint:ignore lockorder append-before-apply: the move record is the commit point and must land while both shard locks freeze the tenant (see Submit)
	if err := e.journalMove(id, from, to); err != nil {
		return false, err
	}
	if t.hasSpec && e.cfg.Rebuild != nil {
		if _, ck := t.alloc.(core.Checkpointable); ck {
			if err := e.reboxTenant(t); err != nil {
				// The move record is already durable; recovery will redo
				// the reroute, and the live engine must match it, so fall
				// through to the re-home below rather than abandoning.
				return false, err
			}
		}
	}
	delete(src.tenants, id)
	t.shardIdx = to
	dst.tenants[id] = t
	e.placer.Reroute(id, to)
	src.noteQueued()
	dst.noteQueued()
	e.cfg.Sink.RebalanceMove(id, from, to)
	return true, nil
}

// reboxTenant runs t through the snapshot codec in place: encode,
// rebuild a fresh allocator from the spec, restore, and carry over the
// wall-clock state the envelope drops. Callers hold the shard locks.
func (e *Engine) reboxTenant(t *tenant) error {
	data, err := e.encodeTenantSnapshot(t)
	if err != nil {
		return err
	}
	var env tenantSnapshot
	if err := json.Unmarshal(data, &env); err != nil {
		return err
	}
	a, faults, host, err := e.cfg.Rebuild(t.spec)
	if err != nil {
		return err
	}
	nt, err := e.restoreTenant(&env, a, faults, host)
	if err != nil {
		return err
	}
	nt.applyNs = t.applyNs
	nt.batchNs = t.batchNs
	nt.deadline = t.deadline
	nt.lastSnapBatch = t.lastSnapBatch
	nt.rebalMark = t.rebalMark
	nt.rebalEst = t.rebalEst
	*t = *nt
	wireObserver(t)
	return nil
}

// redoMove re-applies a journaled TypeMove during Recover: re-home the
// tenant and rewrite the route. Recovery is single-threaded, so the
// shard locks are uncontended formality.
func (e *Engine) redoMove(id string, ord, from, to int) error {
	if to < 0 || to >= len(e.shards) {
		return fmt.Errorf("engine: recover record %d: move %q to shard %d of %d", ord, id, to, len(e.shards))
	}
	cur := e.route(id)
	if cur != from {
		// The journal's from-shard disagrees with the replayed route —
		// tolerated (the record's To is authoritative) but worth the
		// stricter read: it means records before this one were skipped
		// by a snapshot that already carried a newer route.
		from = cur
	}
	src := e.shardAt(from)
	src.mu.Lock()
	t, ok := src.tenants[id]
	if !ok {
		src.mu.Unlock()
		return fmt.Errorf("engine: recover record %d: %w: %q", ord, ErrUnknownTenant, id)
	}
	delete(src.tenants, id)
	src.mu.Unlock()
	dst := e.shardAt(to)
	dst.mu.Lock()
	t.shardIdx = to
	dst.tenants[id] = t
	dst.mu.Unlock()
	e.placer.Reroute(id, to)
	return nil
}
