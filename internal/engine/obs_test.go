package engine

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/pprof"
	"testing"

	"partalloc/internal/core"
	"partalloc/internal/errs"
	"partalloc/internal/obs"
	"partalloc/internal/task"
	"partalloc/internal/topology"
	"partalloc/internal/tree"
)

// TestTenantOptionValidation is the AddTenant half of the ErrBadOption
// table: nil and inapplicable tenant options fail with the sentinel.
func TestTenantOptionValidation(t *testing.T) {
	a := func() core.Allocator { return core.NewBasic(tree.MustNew(8)) }
	cases := []struct {
		name string
		err  error
	}{
		{"nil option", New(Config{}).AddTenant("t", a(), nil)},
		{"WithTenantFaults(nil)", New(Config{}).AddTenant("t", a(), WithTenantFaults(nil))},
		{"WithTenantHost(nil)", New(Config{}).AddTenant("t", a(), WithTenantHost(nil))},
		{"WithTenantSpec empty ID", New(Config{}).AddTenant("t", a(), WithTenantSpec(TenantSpec{}))},
		{"WithTenantSpec ID mismatch", New(Config{}).AddTenant("t", a(), WithTenantSpec(TenantSpec{ID: "other", Algorithm: "basic", N: 8}))},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, errs.ErrBadOption) {
			t.Errorf("%s: error %v is not errs.ErrBadOption", tc.name, tc.err)
		}
	}
	// A valid spec with a matching ID is accepted.
	if err := New(Config{}).AddTenant("t", a(), WithTenantSpec(TenantSpec{ID: "t", Algorithm: "basic", N: 8})); err != nil {
		t.Errorf("matching spec rejected: %v", err)
	}
}

// TestDeprecatedAddTenantHosted pins the wrapper: the old 4-arg hosted
// form and the options form must register identical tenants, ledgers
// included.
func TestDeprecatedAddTenantHosted(t *testing.T) {
	stream := testStream(16, 500, 21)
	build := func(add func(e *Engine, a core.Allocator, h *topology.Host) error) *Engine {
		t.Helper()
		host, err := topology.NewHostNamed("hypercube", 16)
		if err != nil {
			t.Fatal(err)
		}
		e := New(Config{Shards: 1, BatchSize: 32})
		if err := add(e, core.NewConstant(host.Tree()), host); err != nil {
			t.Fatal(err)
		}
		if err := e.Replay(context.Background(), map[string][]task.Event{"t": stream}); err != nil {
			t.Fatal(err)
		}
		return e
	}
	old := build(func(e *Engine, a core.Allocator, h *topology.Host) error {
		return e.AddTenantHosted("t", a, nil, h)
	})
	opt := build(func(e *Engine, a core.Allocator, h *topology.Host) error {
		return e.AddTenant("t", a, WithTenantHost(h))
	})
	ost, _ := old.TenantStats("t")
	nst, _ := opt.TenantStats("t")
	if !bytes.Equal(CanonicalStats(ost), CanonicalStats(nst)) {
		t.Errorf("hosted wrapper diverged:\n--- old ---\n%s--- options ---\n%s", CanonicalStats(ost), CanonicalStats(nst))
	}
	if ost.MigHops == 0 {
		t.Error("hosted A_C tenant recorded no migration hops; host not attached?")
	}
}

// burnOnArrive spends CPU inside the apply path so a profile taken
// around Replay has samples to label.
type burnOnArrive struct {
	core.Allocator
	burnt int
}

func (b *burnOnArrive) Arrive(tk task.Task) tree.Node {
	x := 0
	for i := 0; i < 50_000; i++ {
		x += i * i
	}
	b.burnt = x
	return b.Allocator.Arrive(tk)
}

// TestReplayProfileCarriesTenantLabels takes a CPU profile around an
// instrumented Replay and checks the pprof label keys and values reach
// the profile's string table — the contract cmd/engined's
// /debug/pprof/profile endpoint relies on.
func TestReplayProfileCarriesTenantLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU profiling run; skipped in -short")
	}
	sink := obs.NewSink(obs.NewMetrics(), nil)
	e := New(Config{Shards: 1, BatchSize: 64, Sink: sink})
	burner := &burnOnArrive{Allocator: core.NewBasic(tree.MustNew(16))}
	if err := e.AddTenant("labeled-tenant", burner); err != nil {
		t.Fatal(err)
	}
	stream := testStream(16, 2000, 5)

	var prof bytes.Buffer
	if err := pprof.StartCPUProfile(&prof); err != nil {
		t.Fatal(err)
	}
	err := e.Replay(context.Background(), map[string][]task.Event{"labeled-tenant": stream})
	pprof.StopCPUProfile()
	if err != nil {
		t.Fatal(err)
	}
	runtime.KeepAlive(burner.burnt)

	// The profile is a gzipped protobuf whose string table holds label
	// keys and values verbatim.
	zr, err := gzip.NewReader(&prof)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tenant", "labeled-tenant", "shard", "algo"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("profile missing label string %q", want)
		}
	}
}

// TestSinkLedgerAgreement cross-checks the metrics registry against the
// engine's own ledger after a replay: the counters must be derived from,
// never drift from, TenantStats.
func TestSinkLedgerAgreement(t *testing.T) {
	m := obs.NewMetrics()
	sink := obs.NewSink(m, obs.NewFlightRecorder(64))
	e := New(Config{Shards: 2, BatchSize: 32, Sink: sink})
	if err := e.AddTenant("t", core.NewGreedy(tree.MustNew(16))); err != nil {
		t.Fatal(err)
	}
	stream := testStream(16, 600, 3)
	if err := e.Replay(context.Background(), map[string][]task.Event{"t": stream}); err != nil {
		t.Fatal(err)
	}
	st, err := e.TenantStats("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counter(obs.MetricTenantEvents, "", obs.L("tenant", "t")).Value(); got != st.Events {
		t.Errorf("events counter = %d, ledger says %d", got, st.Events)
	}
	if got := m.Counter(obs.MetricTenantBatches, "", obs.L("tenant", "t")).Value(); got != st.Batches {
		t.Errorf("batches counter = %d, ledger says %d", got, st.Batches)
	}
	if got := m.Gauge(obs.MetricTenantPeakLoad, "", obs.L("tenant", "t")).Value(); got != int64(st.PeakLoad) {
		t.Errorf("peak-load gauge = %d, ledger says %d", got, st.PeakLoad)
	}
	if got := m.Gauge(obs.MetricTenantLStar, "", obs.L("tenant", "t")).Value(); got != int64(st.LStar) {
		t.Errorf("lstar gauge = %d, ledger says %d", got, st.LStar)
	}
	h := m.Histogram(obs.MetricTenantApplyLatency, "", obs.L("tenant", "t"))
	if got := h.Count(); got != st.Batches {
		t.Errorf("apply-latency histogram count = %d, ledger says %d batches", got, st.Batches)
	}
	if fr := sink.FlightRecorder(); fr.Len() == 0 {
		t.Error("flight recorder recorded nothing")
	}
}

// TestSinkRecordsRebalancePasses is the placement arm of the sink/ledger
// agreement gate: the rebalance counters must be derived from, never
// drift from, RebalanceStats, and every pass must land in the flight
// recorder with attrs that sum back to the ledger.
func TestSinkRecordsRebalancePasses(t *testing.T) {
	m := obs.NewMetrics()
	sink := obs.NewSink(m, obs.NewFlightRecorder(256))
	e := New(Config{Shards: 4, BatchSize: 8, Placement: PlacementBalanced,
		RebalanceD: 1, RebalanceEvery: 1 << 30, Rebuild: testRebuild, Sink: sink})
	weights := []int{8, 4, 2, 1, 1, 1}
	for i, w := range weights {
		id := fmt.Sprintf("t%d", i)
		addSpecTenant(t, e, TenantSpec{ID: id, Algorithm: "basic", N: 16})
		if err := e.Submit(id, arrivals(1+i*1000, 8*w, 1)...); err != nil {
			t.Fatal(err)
		}
	}
	for pass := 0; pass < 6; pass++ {
		if _, err := e.Rebalance(); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
	}

	st := e.RebalanceStats()
	if st.Passes != 6 {
		t.Fatalf("ledger counted %d passes, forced 6", st.Passes)
	}
	if len(st.Violations) != 0 {
		t.Fatalf("rebalance audit found violations: %v", st.Violations)
	}
	if got := m.Counter(obs.MetricRebalancePasses, "").Value(); got != st.Passes {
		t.Errorf("passes counter = %d, ledger says %d", got, st.Passes)
	}
	if got := m.Counter(obs.MetricRebalancePlanned, "").Value(); got != st.Planned {
		t.Errorf("planned counter = %d, ledger says %d", got, st.Planned)
	}
	if got := m.Counter(obs.MetricRebalanceMoves, "").Value(); got != st.Moves {
		t.Errorf("moves counter = %d, ledger says %d", got, st.Moves)
	}
	if got := m.Gauge(obs.MetricRebalanceBudget, "").Value(); got != int64(e.cfg.RebalanceD*e.cfg.Shards) {
		t.Errorf("budget gauge = %d, want d*shards = %d", got, e.cfg.RebalanceD*e.cfg.Shards)
	}

	var passEvents int64
	var movedSum, moveEvents int64
	for _, ev := range sink.FlightRecorder().Events() {
		switch ev.Kind {
		case obs.EventRebalancePass:
			passEvents++
			movedSum += ev.Attrs["moved"]
		case obs.EventRebalanceMove:
			moveEvents++
		}
	}
	if passEvents != st.Passes {
		t.Errorf("flight recorder holds %d pass events, ledger says %d", passEvents, st.Passes)
	}
	if movedSum != st.Moves {
		t.Errorf("pass events sum to %d moves, ledger says %d", movedSum, st.Moves)
	}
	if moveEvents != st.Moves {
		t.Errorf("flight recorder holds %d move events, ledger says %d moves", moveEvents, st.Moves)
	}
}
