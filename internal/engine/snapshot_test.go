package engine

import (
	"bytes"
	"context"
	"errors"
	"os"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"partalloc/internal/core"
	"partalloc/internal/fault"
	"partalloc/internal/task"
	"partalloc/internal/tree"
	"partalloc/internal/wal"
)

// walSegments lists the journal's segment indexes in dir, ascending.
func walSegments(t *testing.T, dir string) []int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var idx []int
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), ".wal") {
			i, err := strconv.Atoi(strings.TrimSuffix(ent.Name(), ".wal"))
			if err != nil {
				t.Fatalf("unexpected journal file %q", ent.Name())
			}
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	return idx
}

// TestSnapshotRecoverMatchesUninterrupted is the snapshot analogue of
// TestRecoverMatchesUninterrupted: an engine snapshotting every 2
// batches — mixed algorithms, fault schedules, audit on, queued
// remainders — must recover with byte-identical CanonicalStats, while
// actually restoring from snapshots rather than replaying history.
func TestSnapshotRecoverMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Shards: 3, BatchSize: 16, Audit: true, Journal: log, Rebuild: testRebuild, SnapshotEvery: 2}
	eng := New(cfg)

	var sched bytes.Buffer
	fs := fault.Random(fault.RandomConfig{N: 64, Events: 300, Failures: 2, Seed: 5})
	if err := fault.WriteText(&sched, fs); err != nil {
		t.Fatal(err)
	}
	addSpecTenant(t, eng, TenantSpec{ID: "alpha", Algorithm: "basic", N: 16})
	addSpecTenant(t, eng, TenantSpec{ID: "perry", Algorithm: "periodic", N: 64, D: 2, DSet: true, Faults: sched.String()})
	addSpecTenant(t, eng, TenantSpec{ID: "rand", Algorithm: "random", N: 32, Seed: 42, SeedSet: true})
	addSpecTenant(t, eng, TenantSpec{ID: "lazy1", Algorithm: "lazy", N: 32, D: 1, DSet: true})

	for _, ev := range testStream(16, 300, 1) {
		if err := eng.Submit("alpha", ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Replay(context.Background(), map[string][]task.Event{"perry": testStream(64, 300, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit("rand", testStream(32, 200, 7)...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit("lazy1", testStream(32, 100, 3)...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush("lazy1"); err != nil {
		t.Fatal(err)
	}

	want := eng.Stats()
	for _, st := range want {
		if len(st.Violations) != 0 {
			t.Fatalf("%s: live audit violations: %v", st.Tenant, st.Violations)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(Config{Shards: 3, BatchSize: 16, Audit: true, Rebuild: testRebuild, SnapshotEvery: 2}, dir, wal.Options{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rec.cfg.Journal.Close()
	got := rec.Stats()
	if len(got) != len(want) {
		t.Fatalf("recovered %d tenants, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := CanonicalStats(want[i]), CanonicalStats(got[i])
		if !bytes.Equal(w, g) {
			t.Errorf("%s: recovered stats diverge:\n  live: %s\n  rec:  %s", want[i].Tenant, w, g)
		}
	}
	rs := rec.RecoveryStats()
	if rs.SnapshotsRestored != 4 {
		t.Errorf("SnapshotsRestored = %d, want 4 (one per tenant)", rs.SnapshotsRestored)
	}
	if rs.RecordsSkipped == 0 {
		t.Error("RecordsSkipped = 0: recovery replayed history a snapshot already covers")
	}
	if rs.RecordsReplayed >= rs.RecordsSkipped {
		t.Errorf("RecordsReplayed = %d ≥ RecordsSkipped = %d: recovery is not O(tail)", rs.RecordsReplayed, rs.RecordsSkipped)
	}
}

// TestRecoveryReadsOnlyTail pins the O(tail) claim to exact counts: with
// a snapshot as the journal's last per-tenant record, recovery replays
// zero records; two trailing submits later, it replays exactly those two.
func TestRecoveryReadsOnlyTail(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Shards: 1, BatchSize: 4, Journal: log, Rebuild: testRebuild, SnapshotEvery: 1}
	eng := New(cfg)
	addSpecTenant(t, eng, TenantSpec{ID: "t", Algorithm: "greedy", N: 16})

	// 20 single-event submits: every 4th triggers a batch apply followed
	// by a snapshot, so the journal ends ... S S S S Snap.
	for _, ev := range arrivals(1, 20, 1) {
		if err := eng.Submit("t", ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(Config{Shards: 1, BatchSize: 4, Rebuild: testRebuild}, dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs := rec.RecoveryStats()
	// 1 AddTenant + 20 Submits + 5 Snapshots = 26 records; the snapshot
	// at ordinal 25 covers the other 25.
	if rs.RecordsScanned != 26 || rs.RecordsReplayed != 0 || rs.RecordsSkipped != 25 || rs.SnapshotsRestored != 1 {
		t.Fatalf("RecoveryStats = %+v, want scanned 26, replayed 0, skipped 25, restored 1", rs)
	}

	// Two more submits after the snapshot: exactly those two replay.
	for _, ev := range arrivals(1_000, 2, 1) {
		if err := rec.Submit("t", ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.cfg.Journal.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := Recover(Config{Shards: 1, BatchSize: 4, Rebuild: testRebuild}, dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.cfg.Journal.Close()
	rs = rec2.RecoveryStats()
	if rs.RecordsReplayed != 2 || rs.SnapshotsRestored != 1 {
		t.Fatalf("after tail submits: RecoveryStats = %+v, want replayed 2, restored 1", rs)
	}
	w, _ := rec.TenantStats("t")
	g, _ := rec2.TenantStats("t")
	if !bytes.Equal(CanonicalStats(w), CanonicalStats(g)) {
		t.Errorf("tail recovery diverges:\n  live: %s\n  rec:  %s", CanonicalStats(w), CanonicalStats(g))
	}
}

// TestSnapshotCompactionBoundsLog drives a snapshotting engine across
// many small segments: old segments must be deleted as snapshots make
// them redundant, the directory must not grow without bound, and the
// compacted log must still recover to the live state.
func TestSnapshotCompactionBoundsLog(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Shards: 2, BatchSize: 8, Journal: log, Rebuild: testRebuild, SnapshotEvery: 2}
	eng := New(cfg)
	addSpecTenant(t, eng, TenantSpec{ID: "a", Algorithm: "greedy", N: 16})
	addSpecTenant(t, eng, TenantSpec{ID: "b", Algorithm: "basic", N: 16})

	maxSegs := 0
	for i := 0; i < 40; i++ {
		if err := eng.Submit("a", testStream(16, 16, int64(i))...); err != nil {
			t.Fatal(err)
		}
		if err := eng.Submit("b", testStream(16, 16, int64(100+i))...); err != nil {
			t.Fatal(err)
		}
		if n := len(walSegments(t, dir)); n > maxSegs {
			maxSegs = n
		}
	}
	segs := walSegments(t, dir)
	if segs[0] == 1 {
		t.Errorf("segment 1 still present after %d snapshots: compaction never ran", 40)
	}
	// Each round appends ~2 snapshots + 2 submit records across 1KiB
	// segments; without truncation the directory would hold dozens of
	// segments. The bound is loose on purpose — the claim is "bounded",
	// not an exact count.
	if maxSegs > 12 {
		t.Errorf("journal grew to %d segments despite compaction", maxSegs)
	}

	want := eng.Stats()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(Config{Shards: 2, BatchSize: 8, Rebuild: testRebuild}, dir, wal.Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("Recover from compacted log: %v", err)
	}
	defer rec.cfg.Journal.Close()
	got := rec.Stats()
	for i := range want {
		if w, g := CanonicalStats(want[i]), CanonicalStats(got[i]); !bytes.Equal(w, g) {
			t.Errorf("%s: recovered stats diverge after compaction:\n  live: %s\n  rec:  %s", want[i].Tenant, w, g)
		}
	}
}

// TestSnapshotPinsLogUntilEveryTenantSnapshots: a tenant that has never
// snapshotted still needs its full history, so compaction must hold.
func TestSnapshotPinsLogUntilEveryTenantSnapshots(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	cfg := Config{Shards: 2, BatchSize: 8, Journal: log, Rebuild: testRebuild, SnapshotEvery: 2}
	eng := New(cfg)
	addSpecTenant(t, eng, TenantSpec{ID: "busy", Algorithm: "greedy", N: 16})
	addSpecTenant(t, eng, TenantSpec{ID: "idle", Algorithm: "basic", N: 16})

	for i := 0; i < 20; i++ {
		if err := eng.Submit("busy", testStream(16, 16, int64(i))...); err != nil {
			t.Fatal(err)
		}
	}
	if segs := walSegments(t, dir); segs[0] != 1 {
		t.Fatalf("segment 1 deleted while tenant %q has no snapshot", "idle")
	}
	// One batch for the idle tenant reaches its cadence; the pin lifts.
	if err := eng.Submit("idle", testStream(16, 32, 99)...); err != nil {
		t.Fatal(err)
	}
	if segs := walSegments(t, dir); segs[0] == 1 {
		t.Errorf("compaction still pinned after every tenant snapshotted (segments %v)", segs)
	}
}

// TestBreakerProbeRestoresFromSnapshot poisons a tenant that has
// journaled snapshots: the half-open probe must restore the last
// pre-poison snapshot, replay the tail, append a healing snapshot, and
// leave the tenant byte-identical to a never-poisoned reference — and a
// crash right after must recover the healed ledger exactly.
func TestBreakerProbeRestoresFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Shards: 1, BatchSize: 4, Journal: log, Rebuild: testRebuild, SnapshotEvery: 2}
	eng := New(cfg)
	clk := &fakeClock{step: 1}
	eng.now = clk.tick
	addSpecTenant(t, eng, TenantSpec{ID: "t", Algorithm: "greedy", N: 8})

	// 8 events = 2 batches: a snapshot lands at the cadence.
	if err := eng.Submit("t", arrivals(1, 8, 1)...); err != nil {
		t.Fatal(err)
	}
	// Two more applied events after the snapshot — the probe must replay
	// this tail on top of the restored snapshot, not lose it.
	if err := eng.Submit("t", arrivals(9, 2, 1)...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush("t"); err != nil {
		t.Fatal(err)
	}
	bad := []task.Event{{Kind: task.Arrive, Task: 5, Size: 1}} // duplicate ID
	if err := eng.Submit("t", bad...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush("t"); !errors.Is(err, ErrTenantPoisoned) {
		t.Fatalf("poisoning flush: %v", err)
	}

	clk.advance(time.Hour)
	if err := eng.Submit("t", arrivals(11, 4, 1)...); err != nil {
		t.Fatalf("submit after backoff (probe): %v", err)
	}
	st, _ := eng.TenantStats("t")
	if st.BreakerState != "closed" || st.Events != 14 || st.DroppedEvents != 1 {
		t.Fatalf("after snapshot probe: state=%s events=%d dropped=%d, want closed/14/1",
			st.BreakerState, st.Events, st.DroppedEvents)
	}

	// The healed allocator equals a never-poisoned run of the kept events.
	ref := core.NewGreedy(tree.MustNew(8))
	core.ApplyEvents(ref, arrivals(1, 8, 1))
	core.ApplyEvents(ref, arrivals(9, 2, 1))
	core.ApplyEvents(ref, arrivals(11, 4, 1))
	s := eng.shardFor("t")
	s.mu.Lock()
	got := s.tenants["t"].alloc.PELoads()
	s.mu.Unlock()
	if !reflect.DeepEqual(got, ref.PELoads()) {
		t.Errorf("healed PE loads %v, reference %v", got, ref.PELoads())
	}

	// Crash now: recovery restores the healing snapshot (skipping the
	// poisonous suffix and the rebuild), matching the live ledger.
	want := eng.Stats()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(Config{Shards: 1, BatchSize: 4, Rebuild: testRebuild, SnapshotEvery: 2}, dir, wal.Options{})
	if err != nil {
		t.Fatalf("Recover after heal: %v", err)
	}
	defer rec.cfg.Journal.Close()
	gotStats := rec.Stats()
	if w, g := CanonicalStats(want[0]), CanonicalStats(gotStats[0]); !bytes.Equal(w, g) {
		t.Errorf("post-heal recovery diverges:\n  live: %s\n  rec:  %s", w, g)
	}
}

// TestMoveTenant rebalances a tenant (with a queued remainder) onto a
// second engine: the ledger survives byte-for-byte, the source forgets
// it, and each engine's journal recovers its own post-move view.
func TestMoveTenant(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	srcLog, err := wal.Open(srcDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dstLog, err := wal.Open(dstDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := New(Config{Shards: 2, BatchSize: 8, Journal: srcLog, Rebuild: testRebuild, SnapshotEvery: 4})
	dst := New(Config{Shards: 2, BatchSize: 8, Journal: dstLog, Rebuild: testRebuild, SnapshotEvery: 4})
	addSpecTenant(t, src, TenantSpec{ID: "mover", Algorithm: "periodic", N: 16, D: 1, DSet: true})
	addSpecTenant(t, src, TenantSpec{ID: "stayer", Algorithm: "basic", N: 16})

	if err := src.Submit("mover", testStream(16, 100, 4)...); err != nil {
		t.Fatal(err)
	}
	if err := src.Submit("stayer", testStream(16, 50, 5)...); err != nil {
		t.Fatal(err)
	}
	before, _ := src.TenantStats("mover")

	if err := src.MoveTenant("mover", dst); err != nil {
		t.Fatalf("MoveTenant: %v", err)
	}
	if err := src.Submit("mover", arrivals(1, 1, 1)...); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("source still knows the moved tenant: %v", err)
	}
	after, _ := dst.TenantStats("mover")
	if w, g := CanonicalStats(before), CanonicalStats(after); !bytes.Equal(w, g) {
		t.Fatalf("move changed the ledger:\n  before: %s\n  after:  %s", w, g)
	}
	// The moved tenant keeps ingesting at its new home.
	if err := dst.Submit("mover", testStream(16, 40, 6)...); err != nil {
		t.Fatalf("submit at destination: %v", err)
	}

	srcWant := src.Stats()
	dstWant := dst.Stats()
	if err := srcLog.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dstLog.Close(); err != nil {
		t.Fatal(err)
	}

	srcRec, err := Recover(Config{Shards: 2, BatchSize: 8, Rebuild: testRebuild}, srcDir, wal.Options{})
	if err != nil {
		t.Fatalf("source recover: %v", err)
	}
	defer srcRec.cfg.Journal.Close()
	if ids := srcRec.Tenants(); len(ids) != 1 || ids[0] != "stayer" {
		t.Fatalf("source recovered tenants %v, want [stayer]", ids)
	}
	for i, st := range srcRec.Stats() {
		if w, g := CanonicalStats(srcWant[i]), CanonicalStats(st); !bytes.Equal(w, g) {
			t.Errorf("source %s: recovered stats diverge", st.Tenant)
		}
	}

	dstRec, err := Recover(Config{Shards: 2, BatchSize: 8, Rebuild: testRebuild}, dstDir, wal.Options{})
	if err != nil {
		t.Fatalf("destination recover: %v", err)
	}
	defer dstRec.cfg.Journal.Close()
	if ids := dstRec.Tenants(); len(ids) != 1 || ids[0] != "mover" {
		t.Fatalf("destination recovered tenants %v, want [mover]", ids)
	}
	for i, st := range dstRec.Stats() {
		if w, g := CanonicalStats(dstWant[i]), CanonicalStats(st); !bytes.Equal(w, g) {
			t.Errorf("destination %s: recovered stats diverge:\n  live: %s\n  rec:  %s", st.Tenant, w, g)
		}
	}

	// Misuse surfaces as errors, not corruption.
	if err := src.MoveTenant("stayer", src); err == nil {
		t.Error("MoveTenant onto the source engine succeeded")
	}
	if err := src.MoveTenant("ghost", dst); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("MoveTenant(ghost) = %v, want ErrUnknownTenant", err)
	}
}
