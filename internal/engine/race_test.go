package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"partalloc/internal/core"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// TestConcurrentMultiTenantIngestion hammers the engine from many
// goroutines at once — per-tenant producers, a stats poller, and a
// replaying goroutine on disjoint tenants — and then verifies every
// tenant absorbed exactly its stream. Run under -race this is the
// engine's thread-safety gate.
func TestConcurrentMultiTenantIngestion(t *testing.T) {
	const tenants = 10
	const events = 2000
	eng := New(Config{Shards: 4, BatchSize: 64})

	ids := make([]string, tenants)
	streams := make(map[string][]task.Event, tenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("tenant-%02d", i)
		var a core.Allocator
		switch i % 4 {
		case 0:
			a = core.NewBasic(tree.MustNew(64))
		case 1:
			a = core.NewPeriodic(tree.MustNew(64), 2, core.DecreasingSize)
		case 2:
			a = core.NewLazy(tree.MustNew(32), 1, core.DecreasingSize)
		default:
			a = core.NewRandom(tree.MustNew(128), int64(i))
		}
		if err := eng.AddTenant(ids[i], a); err != nil {
			t.Fatal(err)
		}
		n := a.Machine().N()
		streams[ids[i]] = testStream(n, events/2, int64(i+1))
	}

	var wg sync.WaitGroup
	errCh := make(chan error, tenants+2)

	// Half the tenants ingest via concurrent Submit producers...
	for i := 0; i < tenants/2; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			evs := streams[id]
			for off := 0; off < len(evs); off += 13 {
				end := off + 13
				if end > len(evs) {
					end = len(evs)
				}
				if err := eng.Submit(id, evs[off:end]...); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- eng.Flush(id)
		}(ids[i])
	}

	// ...the other half via one Replay fanning out over the shards.
	replayStreams := make(map[string][]task.Event)
	for i := tenants / 2; i < tenants; i++ {
		replayStreams[ids[i]] = streams[ids[i]]
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errCh <- eng.Replay(context.Background(), replayStreams)
	}()

	// A poller reads ledgers while ingestion is in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			for _, st := range eng.Stats() {
				if st.Events < 0 {
					errCh <- fmt.Errorf("%s: negative event count", st.Tenant)
					return
				}
			}
		}
		errCh <- nil
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, id := range ids {
		st, err := eng.TenantStats(id)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(len(streams[id])); st.Events != want {
			t.Errorf("%s: applied %d events, want %d", id, st.Events, want)
		}
		if st.Queued != 0 {
			t.Errorf("%s: %d events still queued after flush", id, st.Queued)
		}
	}
}
