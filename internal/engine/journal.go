// Write-ahead journaling and crash recovery. The journal mirrors
// ingestion *calls*, not abstract event streams: a TypeSubmit record is
// one accepted Submit, a TypeApply record is one Replay batch (bypassing
// the queue), a TypeFlush is an explicit flush, and a TypeRebuild is a
// circuit-breaker rebuild. Replaying the records therefore reproduces
// the engine's queue and batch structure exactly — Recover yields the
// same Events/Queued/Batches/PeakLoad ledger an uninterrupted run has,
// not merely the same final placements.
//
// Every record is appended before the state change it describes
// (append-before-apply), so the journal can only ever be ahead of the
// in-memory state, never behind; a record whose apply was cut short by
// the crash is simply re-applied.
package engine

import (
	"encoding/json"
	"errors"
	"fmt"

	"partalloc/internal/core"
	"partalloc/internal/errs"
	"partalloc/internal/fault"
	"partalloc/internal/task"
	"partalloc/internal/topology"
	"partalloc/internal/wal"
)

// TenantSpec is a tenant's serializable rebuild recipe: everything
// Config.Rebuild needs to reconstruct the allocator, fault schedule, and
// topology host from scratch. The engine treats all fields except ID as
// opaque; the partalloc facade fills them from the same options it
// builds the live allocator with.
type TenantSpec struct {
	// ID is the tenant ID.
	ID string
	// Algorithm is the parseable algorithm name (partalloc.ParseAlgorithm).
	Algorithm string `json:",omitempty"`
	// N is the machine size in PEs.
	N int `json:",omitempty"`
	// D is the reallocation parameter; DSet distinguishes an explicit 0.
	D    int  `json:",omitempty"`
	DSet bool `json:",omitempty"`
	// Order is the reallocation order ("", "decreasing", "arrival").
	Order string `json:",omitempty"`
	// Seed is the A_Rand seed; SeedSet distinguishes an explicit 0.
	Seed    int64 `json:",omitempty"`
	SeedSet bool  `json:",omitempty"`
	// Topology names the physical network ("" = plain tree machine).
	Topology string `json:",omitempty"`
	// Faults is the fault schedule in internal/fault text format.
	Faults string `json:",omitempty"`
}

// journalAppend serializes appends across shards. The wal.Log is not
// concurrency-safe, and interleaved partial frames would corrupt the
// log for every tenant at once.
func (e *Engine) journalAppend(rec wal.Record) error {
	e.jmu.Lock()
	defer e.jmu.Unlock()
	//lint:ignore lockorder jmu exists precisely to serialize this write: wal.Log is single-writer, and an interleaved frame would corrupt the log for every tenant
	if err := e.cfg.Journal.Append(rec); err != nil {
		return fmt.Errorf("engine: journal: %w", err)
	}
	return nil
}

func (e *Engine) journalAddTenant(t *tenant) error {
	if e.cfg.Journal == nil {
		return nil
	}
	data, err := json.Marshal(t.spec)
	if err != nil {
		return fmt.Errorf("engine: journal: marshal spec %q: %w", t.id, err)
	}
	return e.journalAppend(wal.Record{Type: wal.TypeAddTenant, Tenant: t.id, Data: data})
}

func (e *Engine) journalSubmit(t *tenant, evs []task.Event) error {
	if e.cfg.Journal == nil || len(evs) == 0 {
		return nil
	}
	return e.journalAppend(wal.Record{Type: wal.TypeSubmit, Tenant: t.id, Data: wal.AppendEvents(nil, evs)})
}

func (e *Engine) journalApply(t *tenant, flushFirst bool, evs []task.Event) error {
	if e.cfg.Journal == nil {
		return nil
	}
	return e.journalAppend(wal.Record{Type: wal.TypeApply, Tenant: t.id, Data: wal.AppendApply(nil, flushFirst, evs)})
}

func (e *Engine) journalFlush(t *tenant) error {
	if e.cfg.Journal == nil {
		return nil
	}
	return e.journalAppend(wal.Record{Type: wal.TypeFlush, Tenant: t.id})
}

// timeline reconstructs a tenant's *valid* event timeline from the
// journal: the concatenation of its Submit/Apply record events, with
// every TypeRebuild record applied as a truncation (a rebuild keeps the
// first keep events and drops the rest, so previously dropped poisonous
// suffixes never resurface). stopBefore ≥ 0 bounds the scan to records
// strictly before that ordinal — the recovery path uses it to rebuild
// "as of" a journaled rebuild record; -1 scans everything.
//
// Reading the journal directory while other shards append is safe: a
// frame is written with one write(2), so a concurrent reader sees only
// whole frames plus possibly a torn tail, which Replay tolerates — and
// every record of *this* tenant is already fully written, because its
// shard lock (held by the caller) serializes them.
func (e *Engine) timeline(id string, stopBefore int) ([]task.Event, error) {
	var tl []task.Event
	err := wal.Replay(e.cfg.Journal.Dir(), func(ord int, rec wal.Record) error {
		if stopBefore >= 0 && ord >= stopBefore {
			return wal.ErrStop
		}
		if rec.Tenant != id {
			return nil
		}
		switch rec.Type {
		case wal.TypeSubmit:
			evs, err := wal.DecodeEvents(rec.Data)
			if err != nil {
				return fmt.Errorf("engine: journal record %d: %w", ord, err)
			}
			tl = append(tl, evs...)
		case wal.TypeApply:
			_, evs, err := wal.DecodeApply(rec.Data)
			if err != nil {
				return fmt.Errorf("engine: journal record %d: %w", ord, err)
			}
			tl = append(tl, evs...)
		case wal.TypeRebuild:
			keep, _, err := wal.DecodeRebuild(rec.Data)
			if err != nil {
				return fmt.Errorf("engine: journal record %d: %w", ord, err)
			}
			if keep > int64(len(tl)) {
				return fmt.Errorf("engine: journal record %d: rebuild keeps %d of %d events", ord, keep, len(tl))
			}
			tl = tl[:keep]
		case wal.TypeRemove:
			// The tenant left this engine (MoveTenant); a tenant with the
			// same ID registered later starts a fresh stream.
			tl = nil
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tl, nil
}

// probe is the circuit breaker's half-open transition: rebuild the
// poisoned tenant from its journaled safe prefix — the t.events events
// that were applied successfully — and drop the poisonous suffix. When
// the tenant has a journaled snapshot, the rebuild restores it and
// replays only the post-snapshot tail (probeFromSnapshot); otherwise
// the whole safe prefix is replayed from the timeline. On success the
// tenant is healthy again (t.err == nil); on failure the breaker
// re-opens with a doubled backoff. Callers hold the shard lock.
func (e *Engine) probe(s *shard, t *tenant) error {
	snapOrd, env, ok, err := e.lastSnapshot(t.id)
	if err != nil {
		e.rearm(t)
		return err
	}
	if ok {
		return e.probeFromSnapshot(t, snapOrd, env)
	}
	tl, err := e.timeline(t.id, -1)
	if err != nil {
		e.rearm(t)
		return err
	}
	keep := t.events
	if keep > int64(len(tl)) {
		e.rearm(t)
		return fmt.Errorf("engine: rebuild %q: journal holds %d events but %d were applied", t.id, len(tl), keep)
	}
	drop := int64(len(tl)) - keep
	// Build the fresh allocator before journaling the rebuild: if the
	// recipe fails, no record is written and recovery stays consistent.
	a, faults, host, err := e.cfg.Rebuild(t.spec)
	if err != nil {
		e.rearm(t)
		return err
	}
	if err := e.journalAppend(wal.Record{Type: wal.TypeRebuild, Tenant: t.id, Data: wal.AppendRebuild(nil, keep, drop)}); err != nil {
		e.rearm(t)
		return err
	}
	if err := e.rebuild(t, a, faults, host, tl[:keep], drop); err != nil {
		return err
	}
	t.sink.BreakerHeal(t.id, drop)
	return nil
}

// rearm re-opens the breaker after a failed probe: the trip count rises,
// doubling the next backoff.
func (e *Engine) rearm(t *tenant) {
	t.trips++
	t.deadline = e.now() + e.backoff(t)
}

// rebuild replaces the tenant's state with a fresh allocator and replays
// prefix through it in batch-sized chunks (the same chunking an
// uninterrupted ingestion of exactly these events would have used, so
// rebuilt ledgers match recovery's). ShedEvents, DroppedEvents, and the
// trip count survive; the degradation ladder and its ledger restart —
// the fresh allocator is back at its configured rung. Callers hold the
// shard lock.
func (e *Engine) rebuild(t *tenant, a core.Allocator, faults *fault.Schedule, host *topology.Host, prefix []task.Event, drop int64) error {
	nt, err := e.buildTenant(t.spec, true, a, faults, host)
	if err != nil {
		e.rearm(t)
		return err
	}
	nt.shed = t.shed
	nt.dropped = t.dropped + drop
	nt.trips = t.trips
	nt.deadline = t.deadline
	*t = *nt
	wireObserver(t)
	return e.replayChunks(t, prefix)
}

// Recover reconstructs an engine from the journal in dir: the log is
// opened (repairing any torn tail), then every record is re-applied in
// order through the same code paths live ingestion uses. cfg.Rebuild is
// required; cfg.Journal is replaced by the reopened log, so the
// recovered engine keeps journaling where the crashed one stopped.
//
// With snapshots in the log (Config.SnapshotEvery on the crashed
// engine), recovery is O(tail): a first pass finds each tenant's last
// snapshot, the second pass skips every record older than it, restores
// the snapshot, and replays only what follows. RecoveryStats reports
// the split.
//
// Recovery is deterministic for everything the ingestion history
// determines: TenantStats of a recovered engine match an uninterrupted
// run byte-for-byte under CanonicalStats. (Under the Degrade policy the
// knob itself is driven by wall-clock latency, so placements may differ
// across runs — that is true of two uninterrupted runs too.)
func Recover(cfg Config, dir string, wopt wal.Options) (*Engine, error) {
	if cfg.Rebuild == nil {
		return nil, errors.New("engine: Recover requires Config.Rebuild")
	}
	log, err := wal.Open(dir, wopt)
	if err != nil {
		return nil, err
	}
	cfg.Journal = log
	e := New(cfg)
	e.resetOrd = make(map[string]int)
	e.recSnapOrd = make(map[string]int)
	e.recSnapData = make(map[string][]byte)
	// Pass 1: find each tenant's reset point — its last snapshot (restore
	// from there) or removal (forget everything before).
	if err := wal.Replay(dir, func(ord int, rec wal.Record) error {
		e.recStats.RecordsScanned++
		switch rec.Type {
		case wal.TypeSnapshot:
			e.resetOrd[rec.Tenant] = ord
			e.recSnapOrd[rec.Tenant] = ord
			e.recSnapData[rec.Tenant] = rec.Data
		case wal.TypeRemove:
			e.resetOrd[rec.Tenant] = ord
			delete(e.recSnapOrd, rec.Tenant)
			delete(e.recSnapData, rec.Tenant)
		}
		return nil
	}); err != nil {
		log.Close()
		return nil, err
	}
	if err := wal.Replay(dir, e.dispatch); err != nil {
		log.Close()
		return nil, err
	}
	e.resetOrd, e.recSnapOrd, e.recSnapData = nil, nil, nil
	cfg.Sink.Recovery(e.recStats.SnapshotsRestored, e.recStats.RecordsReplayed, e.recStats.RecordsSkipped)
	return e, nil
}

// dispatch re-applies one journal record during Recover. Records older
// than the tenant's reset point (its last snapshot or removal) are
// skipped — the snapshot already summarizes them.
func (e *Engine) dispatch(ord int, rec wal.Record) error {
	if ro, ok := e.resetOrd[rec.Tenant]; ok {
		if ord < ro {
			e.recStats.RecordsSkipped++
			return nil
		}
		if ord == ro {
			if rec.Type == wal.TypeSnapshot {
				e.recStats.SnapshotsRestored++
				return e.restoreSnapshot(ord, rec)
			}
			// TypeRemove: every earlier record was skipped, so there is
			// nothing to forget.
			e.recStats.RecordsSkipped++
			return nil
		}
	}
	e.recStats.RecordsReplayed++
	switch rec.Type {
	case wal.TypeAddTenant:
		var spec TenantSpec
		if err := json.Unmarshal(rec.Data, &spec); err != nil {
			return fmt.Errorf("engine: recover record %d: %w", ord, err)
		}
		a, faults, host, err := e.cfg.Rebuild(spec)
		if err != nil {
			return fmt.Errorf("engine: recover %q: %w", spec.ID, err)
		}
		return e.addTenant(spec, true, a, faults, host, false)
	case wal.TypeSubmit:
		evs, err := wal.DecodeEvents(rec.Data)
		if err != nil {
			return fmt.Errorf("engine: recover record %d: %w", ord, err)
		}
		return e.redo(rec.Tenant, ord, func(t *tenant) error { return e.ingest(t, evs) })
	case wal.TypeApply:
		flushFirst, evs, err := wal.DecodeApply(rec.Data)
		if err != nil {
			return fmt.Errorf("engine: recover record %d: %w", ord, err)
		}
		return e.redo(rec.Tenant, ord, func(t *tenant) error {
			if flushFirst {
				if err := e.flushTenant(t); err != nil {
					return err
				}
			}
			return e.apply(t, evs)
		})
	case wal.TypeFlush:
		return e.redo(rec.Tenant, ord, func(t *tenant) error { return e.flushTenant(t) })
	case wal.TypeRebuild:
		keep, drop, err := wal.DecodeRebuild(rec.Data)
		if err != nil {
			return fmt.Errorf("engine: recover record %d: %w", ord, err)
		}
		return e.redoRebuild(rec.Tenant, ord, keep, drop)
	case wal.TypeSnapshot:
		// Unreachable in practice — pass 1 makes the last snapshot the
		// reset point — but a restore is always a faithful re-application.
		e.recStats.RecordsReplayed--
		e.recStats.SnapshotsRestored++
		return e.restoreSnapshot(ord, rec)
	case wal.TypeRemove:
		return e.removeTenantLocal(rec.Tenant)
	case wal.TypeMove:
		from, to, err := wal.DecodeMove(rec.Data)
		if err != nil {
			return fmt.Errorf("engine: recover record %d: %w", ord, err)
		}
		if err := e.redoMove(rec.Tenant, ord, from, to); err != nil {
			return err
		}
		e.recStats.MovesReplayed++
		return nil
	default:
		return fmt.Errorf("engine: recover record %d: unknown record type %d", ord, rec.Type)
	}
}

// redo runs fn against the named tenant, swallowing poisoning errors: a
// record whose application poisons the tenant is the journal faithfully
// reproducing the original failure — the tenant ends up poisoned exactly
// as the crashed engine had it — not a recovery failure. No breaker
// probing happens here; rebuilds exist in the journal as records of
// their own.
func (e *Engine) redo(id string, ord int, fn func(*tenant) error) error {
	s := e.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[id]
	if !ok {
		return fmt.Errorf("engine: recover record %d: %w: %q", ord, ErrUnknownTenant, id)
	}
	if t.err != nil {
		// The live engine never journals for a poisoned tenant, so a
		// record here means journal and state diverged.
		return fmt.Errorf("engine: recover record %d: tenant %q is poisoned but has later records", ord, id)
	}
	if err := fn(t); err != nil {
		if errors.Is(err, errs.ErrTenantPoisoned) {
			return nil
		}
		return err
	}
	return nil
}

// redoRebuild re-applies a journaled circuit-breaker rebuild: the
// tenant's timeline as of this record (strictly earlier records only),
// truncated to the kept prefix, replayed into a fresh allocator. When
// the tenant has an earlier snapshot, the rebuild is re-derived from it
// instead — the full timeline may start in segments compaction deleted.
func (e *Engine) redoRebuild(id string, ord int, keep, drop int64) error {
	s := e.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[id]
	if !ok {
		return fmt.Errorf("engine: recover record %d: %w: %q", ord, ErrUnknownTenant, id)
	}
	if data, ok := e.recSnapData[id]; ok && e.recSnapOrd[id] < ord {
		//lint:ignore lockorder recovery is single-threaded and the rebuild must read the journal under the shard lock it mutates under, same as the live probe
		return e.redoRebuildFromSnapshot(t, ord, keep, drop, e.recSnapOrd[id], data)
	}
	//lint:ignore lockorder recovery is single-threaded and the rebuild must read the journal under the shard lock it mutates under, same as the live probe
	tl, err := e.timeline(id, ord)
	if err != nil {
		return err
	}
	if keep > int64(len(tl)) || drop != int64(len(tl))-keep {
		return fmt.Errorf("engine: recover record %d: rebuild keep=%d drop=%d against a %d-event timeline",
			ord, keep, drop, len(tl))
	}
	a, faults, host, err := e.cfg.Rebuild(t.spec)
	if err != nil {
		return fmt.Errorf("engine: recover %q: %w", id, err)
	}
	if err := e.rebuild(t, a, faults, host, tl[:keep], drop); err != nil && !errors.Is(err, errs.ErrTenantPoisoned) {
		return err
	}
	return nil
}

// CanonicalStats renders st as deterministic JSON for byte-for-byte
// comparison across runs: wall-clock-derived fields are cleared —
// ApplyNs and BatchNs (latency samples), the Degrade controller's
// outputs (EffectiveD, DegradeLevel, Degrades), which those latencies
// drive, and BreakerTrips (a failed half-open probe re-trips the
// breaker without leaving a journal record, so the count depends on
// probe timing). Everything else is a pure function of the ingestion
// history, so an uninterrupted run and a crash-recovered one must
// agree exactly.
func CanonicalStats(st TenantStats) []byte {
	st.ApplyNs = 0
	st.BatchNs = nil
	st.EffectiveD = 0
	st.DegradeLevel = 0
	st.Degrades = nil
	st.BreakerTrips = 0
	b, err := json.Marshal(st)
	if err != nil {
		// TenantStats holds only marshalable fields; this cannot fail.
		panic(fmt.Errorf("engine: canonical stats: %w", err))
	}
	return b
}
