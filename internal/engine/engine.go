// Package engine multiplexes many independent tenant allocators — one
// paper-model tree machine each — behind a single concurrent ingestion
// API. The paper's algorithms are strictly sequential per machine, so the
// engine gets its throughput from two orthogonal levers:
//
//   - batching: per-tenant event queues are applied through
//     core.BatchApplier when the allocator supports it, amortizing the
//     loadtree's aggregate maintenance over whole batches instead of
//     paying O(log² N) per event;
//   - sharding: tenants are hash-partitioned across lock-striped shards,
//     so ingestion for tenants on different shards never contends, and
//     Replay fans out one worker per shard via parallel.RunCells.
//
// Within a shard, application is serialized by the shard mutex — the
// allocators themselves are not safe for concurrent use, and per-shard
// serialization is exactly the isolation they need.
//
// Allocator misuse surfaces as panics carrying typed sentinel errors
// (internal/errs). The engine converts such panics into returned errors
// and poisons the tenant: every later operation on it fails with
// ErrTenantPoisoned wrapping the original cause, so errors.Is still
// recognizes the sentinel (partalloc.ErrMachineFull, say) at the top of
// the stack instead of a crash at the bottom.
//
// Three robustness layers sit on top (docs/ENGINE.md):
//
//   - bounded ingestion: Config.MaxQueue caps each tenant's queue, with
//     an overload policy — Block (backpressure: oversized submissions are
//     applied in bound-sized chunks), Shed (reject with ErrOverloaded),
//     or Degrade (turn the paper's own d knob: when a tenant's batch
//     apply-latency EWMA crosses Config.DegradeBudget, the engine raises
//     the allocator's effective d / switches A_M to its lazy trigger via
//     core.Degradable, restoring the configured rung once healthy; every
//     transition is recorded in TenantStats.Degrades);
//   - write-ahead journal: with Config.Journal set, every ingestion call
//     is appended to an internal/wal log *before* tenant state changes,
//     and Recover rebuilds the whole engine from the log after a crash;
//   - circuit breaker: with a journal and Config.Rebuild, poisoning is no
//     longer forever — the tenant goes open, and after a seeded-jitter
//     exponential backoff the next ingestion attempt (half-open) rebuilds
//     it from the journaled safe prefix, dropping the poisonous suffix.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"runtime/pprof"
	"strconv"

	"partalloc/internal/core"
	"partalloc/internal/errs"
	"partalloc/internal/fault"
	"partalloc/internal/invariant"
	"partalloc/internal/mathx"
	"partalloc/internal/obs"
	"partalloc/internal/parallel"
	"partalloc/internal/task"
	"partalloc/internal/topology"
	"partalloc/internal/tree"
	"partalloc/internal/wal"
)

// Sentinel errors for engine misuse. Apply-time failures are returned as
// ErrTenantPoisoned wrapping the underlying cause. ErrTenantPoisoned and
// ErrOverloaded wrap the cross-layer sentinels in internal/errs, so
// errors.Is recognizes either spelling anywhere in the stack.
var (
	// ErrUnknownTenant reports an operation on a tenant never registered.
	ErrUnknownTenant = errors.New("engine: unknown tenant")
	// ErrDuplicateTenant reports AddTenant on an existing tenant ID.
	ErrDuplicateTenant = errors.New("engine: tenant already registered")
	// ErrTenantPoisoned reports an operation on a tenant whose allocator
	// already failed; the wrapped chain includes the original cause. With
	// a journal and Config.Rebuild the breaker makes this transient.
	ErrTenantPoisoned = fmt.Errorf("engine: %w", errs.ErrTenantPoisoned)
	// ErrOverloaded reports a submission rejected by the Shed overload
	// policy; the events were not queued.
	ErrOverloaded = fmt.Errorf("engine: %w", errs.ErrOverloaded)
)

// Config parameterizes an Engine. The zero value selects the defaults.
type Config struct {
	// Shards is the number of lock stripes (default min(GOMAXPROCS, 8),
	// at least 1). Tenants are assigned to shards by ID hash.
	Shards int
	// BatchSize is the ingestion batch: Submit queues events per tenant
	// and applies them whenever the queue reaches this size (default 256).
	// Larger batches amortize loadtree maintenance further but delay
	// load/latency samples, which are taken at batch boundaries.
	BatchSize int
	// Audit attaches an invariant.Checker to every tenant and applies
	// events one at a time so the checker sees each placement. This trades
	// away all batching throughput for per-event validation; use it in
	// tests and canary runs, not in benchmarks.
	Audit bool
	// MaxQueue bounds each tenant's ingestion queue (0 = unbounded, the
	// historical behavior). With a bound below BatchSize, batches shrink
	// to the bound — the queue must still be able to fill a batch.
	MaxQueue int
	// Overload selects what happens when a submission would exceed
	// MaxQueue: Block (default), Shed, or Degrade.
	Overload OverloadPolicy
	// DegradeBudget is the per-tenant batch apply-latency budget for the
	// Degrade policy (default 5ms): when a tenant's latency EWMA exceeds
	// it, the engine climbs that tenant's degradation ladder; when the
	// EWMA stays under half of it, the engine steps back down.
	DegradeBudget time.Duration
	// ReplayWatchdog, when positive, bounds each Replay shard worker's
	// wall time via the parallel.RunCells watchdog. A stalled allocator
	// fails its shard with a TimeoutError instead of hanging Replay.
	ReplayWatchdog time.Duration
	// Journal, when non-nil, is the write-ahead log: every ingestion call
	// is appended before tenant state changes, making the engine
	// recoverable (Recover) and the circuit breaker possible. Journaled
	// engines require tenants registered with a serializable TenantSpec
	// (AddTenantSpec; the partalloc facade does this automatically).
	Journal *wal.Log
	// Rebuild turns a TenantSpec back into a live allocator (plus its
	// fault schedule and topology host). Required by Recover and by the
	// circuit breaker's half-open probe; without it, poisoning is final.
	Rebuild RebuildFunc
	// Breaker tunes the circuit breaker's backoff (zero value = defaults).
	Breaker BreakerConfig
	// SnapshotEvery, when positive, checkpoints a tenant's full state into
	// the journal (wal.TypeSnapshot) every SnapshotEvery applied batches.
	// A snapshot makes every earlier record of that tenant redundant: once
	// all tenants' latest snapshots live in segment ≥ s, segments before s
	// are deleted (wal.Log.TruncateBefore), bounding the journal, and
	// Recover restores each tenant from its last snapshot and replays only
	// the tail after it — O(tail), not O(history). Requires Journal and
	// allocators implementing core.Checkpointable (all partalloc
	// allocators do). 0 disables snapshotting (full-replay recovery, the
	// historical behavior).
	SnapshotEvery int
	// Sink, when non-nil, receives metrics and flight-recorder events
	// from the hot paths (batch applies, sheds, degrade transitions,
	// breaker trips/probes/heals, forced fault migrations) and turns on
	// pprof tenant/shard/algo labels for Replay workers. A nil Sink costs
	// nothing: every obs.Sink method no-ops on a nil receiver, and the
	// engine takes no clock readings beyond its own ledger's.
	Sink *obs.Sink
	// Placement selects the tenant→shard placer (placement.go):
	// PlacementHash (default, the historical fnv routing) or
	// PlacementBalanced, which runs the paper's own A_M(d) over the
	// shards and periodically moves tenants to even out measured load.
	Placement PlacementPolicy
	// RebalanceD is the balanced placer's reallocation parameter d: the
	// virtual A_M instance repacks when arrived task size since its last
	// reallocation reaches d·shards, and each rebalance pass moves at
	// most d·shards tenants (default 1). Ignored under PlacementHash.
	RebalanceD int
	// RebalanceEvery is the number of engine-wide applied batches
	// between rebalance passes (default 32). Ignored under
	// PlacementHash.
	RebalanceEvery int
}

// RebuildFunc constructs a fresh allocator for a tenant spec. The
// partalloc facade installs one backed by partalloc.New.
type RebuildFunc func(spec TenantSpec) (core.Allocator, *fault.Schedule, *topology.Host, error)

// BreakerConfig tunes the poisoned-tenant circuit breaker: after the
// k-th poisoning a tenant stays open for Base·2^(k-1) (capped at Max)
// plus a deterministic jitter of up to a quarter of that, derived from
// the tenant ID, trip count, and Seed — so a fleet of tenants poisoned
// together does not probe in lockstep, yet runs reproduce exactly.
type BreakerConfig struct {
	Base time.Duration // default 100ms
	Max  time.Duration // default 30s
	Seed int64         // jitter seed (default 1)
}

func (b BreakerConfig) withDefaults() BreakerConfig {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 30 * time.Second
	}
	if b.Seed == 0 {
		b.Seed = 1
	}
	return b
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.DegradeBudget <= 0 {
		c.DegradeBudget = 5 * time.Millisecond
	}
	if c.Placement == PlacementBalanced {
		// The virtual machine's PEs are the shards, and tree machines are
		// power-of-two; round down rather than reject — the facade
		// validates explicit shard counts strictly (ErrBadOption).
		c.Shards = mathx.FloorPow2(c.Shards)
		if c.RebalanceD <= 0 {
			c.RebalanceD = 1
		}
		if c.RebalanceEvery <= 0 {
			c.RebalanceEvery = 32
		}
	}
	c.Breaker = c.Breaker.withDefaults()
	return c
}

// TenantStats is a point-in-time ledger snapshot for one tenant.
type TenantStats struct {
	// Tenant is the tenant ID.
	Tenant string
	// Algorithm is the allocator's paper name (core.Allocator.Name).
	Algorithm string
	// Events is the number of applied (not merely queued) events.
	Events int64
	// Queued is the number of events waiting in the ingestion queue.
	Queued int
	// Batches is the number of apply calls the events were grouped into.
	Batches int64
	// ApplyNs is the cumulative wall time spent applying, in nanoseconds.
	ApplyNs int64
	// BatchNs holds one entry per apply call (its duration in
	// nanoseconds); quantiles over it give p50/p99 apply latency.
	BatchNs []int64
	// MaxLoad is the allocator's current maximum PE load.
	MaxLoad int
	// PeakLoad is the highest MaxLoad observed at a batch boundary (exact
	// per-event under Config.Audit, since batches are then single events).
	PeakLoad int
	// LStar is the running optimal bound ⌈max_τ S(σ;τ)/N⌉ over the
	// applied prefix.
	LStar int
	// Active is the allocator's current active task count.
	Active int
	// Realloc is the allocator's reallocation ledger (zero when the
	// algorithm never reallocates).
	Realloc core.ReallocStats
	// FaultEvents is the number of injected fault-schedule events.
	FaultEvents int
	// Topology names the tenant's physical network when it was registered
	// with a topology host (AddTenantHosted); empty otherwise.
	Topology string
	// MigHops is the hop-distance-weighted cost of the tenant's voluntary
	// migrations on its host network; host-aware tenants only.
	MigHops int64
	// ForcedHops prices the tenant's failure-forced migrations the same
	// way; host-aware tenants only.
	ForcedHops int64
	// Violations holds the invariant checker's findings under
	// Config.Audit; always empty otherwise.
	Violations []invariant.Violation
	// ShedEvents counts events rejected by the Shed overload policy.
	ShedEvents int64
	// DroppedEvents counts journaled events dropped by circuit-breaker
	// rebuilds (the poisonous suffix of the tenant's timeline).
	DroppedEvents int64
	// EffectiveD is the allocator's live reallocation parameter when it
	// is core.Degradable and the Degrade policy is active; -1 otherwise.
	EffectiveD int
	// DegradeLevel is the tenant's current rung on its degradation
	// ladder (0 = the configured allocator).
	DegradeLevel int
	// Degrades is the full transition history of the Degrade policy for
	// this tenant, in order.
	Degrades []DegradeTransition
	// BreakerState is "closed" for a healthy tenant and "open" for a
	// poisoned one (the half-open probe happens inside a single lock
	// hold, so it is never observable here).
	BreakerState string
	// BreakerTrips counts how many times this tenant has been poisoned.
	BreakerTrips int
}

// DegradeTransition records one move on a tenant's degradation ladder.
type DegradeTransition struct {
	// Batch is the tenant's batch ordinal at the transition.
	Batch int64
	// FromD/ToD are the effective reallocation parameters.
	FromD, ToD int
	// FromLazy/ToLazy report the on-demand-trigger state.
	FromLazy, ToLazy bool
	// Cause is the human-readable reason (EWMA numbers included).
	Cause string
}

// tenant is one machine's worth of state, owned by its shard.
type tenant struct {
	id    string
	alloc core.Allocator
	batch core.BatchApplier // nil → per-event application
	ft    core.FaultTolerant
	check *invariant.Checker // non-nil only under Config.Audit

	faults   []fault.Event
	faultPos int
	faultHit int

	// Host-aware migration pricing (AddTenantHosted). inFault mutes the
	// observer while a fault is applied: failInCopies fires it for forced
	// moves too, and those are charged once, from the FailPE return.
	host       *topology.Host
	migHops    int64
	forcedHops int64
	inFault    bool

	queue []task.Event
	err   error // poisoned; cleared only by a successful breaker rebuild

	// algoName is the allocator's Name at registration: degradation can
	// change the live Name (A_M's includes d), but the ledger keeps the
	// configured identity.
	algoName string
	// spec is the serializable rebuild recipe (AddTenantSpec); hasSpec
	// gates the journal and circuit breaker.
	spec    TenantSpec
	hasSpec bool

	// Overload ledger.
	deg     *degradeState // non-nil only under the Degrade policy
	shed    int64
	dropped int64

	// Circuit breaker: trips counts poisonings; deadline is the e.now()
	// timestamp after which a half-open probe may run.
	trips    int
	deadline int64

	// lastSnapBatch is t.batches at the tenant's last journaled snapshot;
	// the Config.SnapshotEvery cadence counts batches from here.
	lastSnapBatch int64

	n             int64 // machine size, for L*
	events        int64
	activeSize    int64
	maxActiveSize int64
	peakLoad      int
	batches       int64
	applyNs       int64
	batchNs       []int64

	// Rebalance load estimate: rebalMark is t.events at the last pass,
	// rebalEst the decayed accumulator of applied-event windows (see
	// rebalDecay). Owned by the shard lock.
	rebalMark int64
	rebalEst  float64

	// sink mirrors Config.Sink and shardIdx the tenant's stripe, kept on
	// the tenant so the hot paths (apply, injectFaults) reach them with
	// no engine pointer.
	sink     *obs.Sink
	shardIdx int
}

// shard is one lock stripe.
type shard struct {
	mu      sync.Mutex
	tenants map[string]*tenant

	// Shard-level ledger (ShardStats), owned by mu except inbound.
	// peakQueued is the highest backlog seen at an ingestion boundary:
	// resident queue depths plus submissions in flight against the
	// stripe (counted in inbound while their events wait for the
	// stripe lock — a hot stripe shows up as submitters piling behind
	// it, not just as resident queues). events/applyNs accumulate
	// per-batch apply work, credited to the stripe the tenant occupied
	// when the batch ran.
	queued     int
	peakQueued int
	events     int64
	applyNs    int64
	inbound    atomic.Int64
}

// noteQueued recomputes the shard's resident queue depth and advances
// its backlog peak (resident plus in-flight inbound). Callers hold s.mu.
func (s *shard) noteQueued() {
	q := 0
	for _, t := range s.tenants {
		q += len(t.queue)
	}
	s.queued = q
	if hw := q + int(s.inbound.Load()); hw > s.peakQueued {
		s.peakQueued = hw
	}
}

// Engine ingests task events for many tenants concurrently. Methods are
// safe for concurrent use; per-tenant event order is the caller's
// responsibility (events for one tenant submitted from multiple
// goroutines are applied in lock-acquisition order).
type Engine struct {
	cfg    Config
	shards []*shard

	// placer owns the tenant→shard routing table; every shard lookup
	// goes through it (placement.go). rebalMu serializes rebalance
	// passes, intra-engine moves, and membership changes (addTenant,
	// MoveTenant), so the per-pass bijection audit sees an exact
	// snapshot. rsMu guards the rebalance ledger, and
	// batchesTotal/nextRebal implement the RebalanceEvery cadence.
	placer       Placer
	rebalMu      sync.Mutex
	rsMu         sync.Mutex
	rebalStats   RebalanceStats
	batchesTotal atomic.Int64
	nextRebal    atomic.Int64

	// jmu serializes journal appends across shards (the wal.Log is not
	// concurrency-safe; appends from different shards would interleave
	// frames otherwise).
	jmu sync.Mutex

	// smu guards snapSeg, the per-tenant snapshot watermark: the journal
	// segment holding each tenant's latest snapshot (-1 = none yet). The
	// compaction rule reads the minimum over all tracked tenants; a
	// tenant that has never snapshotted pins the whole log.
	smu     sync.Mutex
	snapSeg map[string]int

	// recStats is filled by Recover; resetOrd/recSnapOrd/recSnapData are
	// its pass-1 scratch (the last snapshot/remove ordinal per tenant),
	// cleared when recovery finishes.
	recStats    RecoveryStats
	resetOrd    map[string]int
	recSnapOrd  map[string]int
	recSnapData map[string][]byte

	// now is the clock, in nanoseconds; a test hook.
	now func() int64
}

// New builds an engine from cfg (zero value = defaults).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, shards: newShards(cfg.Shards), snapSeg: make(map[string]int)}
	e.placer = newPlacer(cfg)
	e.nextRebal.Store(int64(cfg.RebalanceEvery))
	e.now = func() int64 { return time.Now().UnixNano() }
	return e
}

// Journal returns the engine's write-ahead log, nil when the engine is
// not journaling. Callers own closing it when the engine is done.
func (e *Engine) Journal() *wal.Log { return e.cfg.Journal }

// tenantAlgo names the tenant's allocator type for pprof labels.
func (e *Engine) tenantAlgo(id string) string {
	s := e.lockTenantShard(id)
	t, ok := s.tenants[id]
	s.mu.Unlock()
	if !ok || t.alloc == nil {
		return "unknown"
	}
	return fmt.Sprintf("%T", t.alloc)
}

// tenantOptions accumulates TenantOptions; the first invalid option
// wins and fails AddTenant with errs.ErrBadOption on the chain.
type tenantOptions struct {
	faults  *fault.Schedule
	host    *topology.Host
	spec    TenantSpec
	hasSpec bool
	err     error
}

func (o *tenantOptions) fail(err error) {
	if o.err == nil {
		o.err = err
	}
}

// TenantOption configures AddTenant.
type TenantOption func(*tenantOptions)

// WithTenantFaults attaches a validated fault schedule, injected at the
// event indexes of the tenant's own stream. The allocator must be
// core.FaultTolerant — the partalloc facade guarantees this for
// WithFaults allocators. The schedule must be non-nil: to register a
// tenant without faults, pass no option at all.
func WithTenantFaults(s *fault.Schedule) TenantOption {
	return func(o *tenantOptions) {
		if s == nil {
			o.fail(fmt.Errorf("%w: WithTenantFaults(nil): omit the option instead", errs.ErrBadOption))
			return
		}
		o.faults = s
	}
}

// WithTenantHost runs the tenant on a physical topology host: its
// migrations — voluntary and failure-forced — are additionally priced in
// network hops (TenantStats.MigHops/ForcedHops), claiming the
// allocator's migration observer when it has one. The allocator must run
// on a machine the host's decomposition describes; the partalloc facade
// builds both from one WithTopology option. The host must be non-nil: to
// register an unhosted tenant, pass no option at all.
func WithTenantHost(h *topology.Host) TenantOption {
	return func(o *tenantOptions) {
		if h == nil {
			o.fail(fmt.Errorf("%w: WithTenantHost(nil): omit the option instead", errs.ErrBadOption))
			return
		}
		o.host = h
	}
}

// WithTenantSpec attaches the tenant's serializable rebuild recipe.
// Journaled engines require it: the spec is what Recover and the circuit
// breaker hand to Config.Rebuild to reconstruct the allocator. The
// caller is responsible for the allocator and other options actually
// matching what Config.Rebuild would produce from spec — the partalloc
// facade builds both sides from the same options, so they cannot
// diverge. The spec's ID must match the AddTenant id.
func WithTenantSpec(spec TenantSpec) TenantOption {
	return func(o *tenantOptions) {
		if spec.ID == "" {
			o.fail(fmt.Errorf("%w: WithTenantSpec: empty tenant ID", errs.ErrBadOption))
			return
		}
		o.spec = spec
		o.hasSpec = true
	}
}

// AddTenant registers a tenant backed by allocator a, configured by
// options: WithTenantFaults for a fault schedule, WithTenantHost for
// hop-priced migrations on a physical network, WithTenantSpec for a
// rebuild recipe (required on journaled engines).
//
// This constructor supersedes AddTenantHosted and AddTenantSpec.
func (e *Engine) AddTenant(id string, a core.Allocator, topts ...TenantOption) error {
	o := tenantOptions{spec: TenantSpec{ID: id}}
	for _, opt := range topts {
		if opt == nil {
			return fmt.Errorf("engine: AddTenant(%q): %w: nil TenantOption", id, errs.ErrBadOption)
		}
		opt(&o)
	}
	if o.err != nil {
		return fmt.Errorf("engine: AddTenant(%q): %w", id, o.err)
	}
	if o.hasSpec && o.spec.ID != id {
		return fmt.Errorf("engine: AddTenant(%q): %w: WithTenantSpec ID %q does not match", id, errs.ErrBadOption, o.spec.ID)
	}
	return e.addTenant(o.spec, o.hasSpec, a, o.faults, o.host, true)
}

// AddTenantHosted is AddTenant on a physical topology host; faults and
// host may each be nil (plain AddTenant).
//
// Deprecated: use AddTenant(id, a, WithTenantFaults(faults),
// WithTenantHost(host)), omitting the options that would be nil here.
func (e *Engine) AddTenantHosted(id string, a core.Allocator, faults *fault.Schedule, host *topology.Host) error {
	var topts []TenantOption
	if faults != nil {
		topts = append(topts, WithTenantFaults(faults))
	}
	if host != nil {
		topts = append(topts, WithTenantHost(host))
	}
	return e.AddTenant(id, a, topts...)
}

// AddTenantSpec registers a tenant along with its serializable rebuild
// recipe; faults and host may each be nil.
//
// Deprecated: use AddTenant(spec.ID, a, WithTenantSpec(spec), ...).
func (e *Engine) AddTenantSpec(spec TenantSpec, a core.Allocator, faults *fault.Schedule, host *topology.Host) error {
	if spec.ID == "" {
		return fmt.Errorf("engine: AddTenantSpec: empty tenant ID")
	}
	topts := []TenantOption{WithTenantSpec(spec)}
	if faults != nil {
		topts = append(topts, WithTenantFaults(faults))
	}
	if host != nil {
		topts = append(topts, WithTenantHost(host))
	}
	return e.AddTenant(spec.ID, a, topts...)
}

// addTenant is the shared registration path. journal=false is the
// recovery path, which reconstructs tenants from AddTenant records
// without re-journaling them.
func (e *Engine) addTenant(spec TenantSpec, hasSpec bool, a core.Allocator, faults *fault.Schedule, host *topology.Host, journal bool) error {
	id := spec.ID
	if a == nil {
		return fmt.Errorf("engine: AddTenant(%q): nil allocator", id)
	}
	if e.cfg.Journal != nil && !hasSpec {
		return fmt.Errorf("engine: AddTenant(%q): a journaled engine needs a rebuild recipe; use AddTenantSpec", id)
	}
	// Registration changes routing and membership together; holding the
	// rebalance mutex keeps the pair atomic with respect to passes and
	// their bijection audit.
	e.rebalMu.Lock()
	defer e.rebalMu.Unlock()
	// Live registrations route through the placer. Recovery routes to
	// the hash default and lets the replayed TypeMove records reproduce
	// the live routing — the balanced advisor is a heuristic, never a
	// recovery input, so recovered routing is deterministic.
	_, routed := e.placer.Lookup(id)
	var idx int
	if journal {
		idx = e.placer.Place(id)
	} else {
		idx = hashShard(id, len(e.shards))
		e.placer.Reroute(id, idx)
	}
	dropRoute := func() {
		if !routed {
			e.placer.Remove(id)
		}
	}
	t, err := e.buildTenant(spec, hasSpec, a, faults, host)
	if err != nil {
		dropRoute()
		return err
	}
	wireObserver(t)
	s := e.shardAt(idx)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[id]; ok {
		// The route predates this call and belongs to the live tenant.
		return fmt.Errorf("%w: %q", ErrDuplicateTenant, id)
	}
	if journal {
		//lint:ignore lockorder append-before-apply: the registration record must land in the journal inside the same critical section that installs the tenant, or a crash between the two would orphan its Submit records
		if err := e.journalAddTenant(t); err != nil {
			dropRoute()
			return err
		}
		if hash := hashShard(id, len(e.shards)); idx != hash {
			// The placer diverged from the hash default at registration;
			// the move record is what reproduces that route on recovery.
			//lint:ignore lockorder append-before-apply: the move record pairs with the registration record under the same critical section (see above)
			if err := e.journalMove(id, hash, idx); err != nil {
				dropRoute()
				return err
			}
		}
	}
	s.tenants[id] = t
	e.trackTenant(id)
	// Pre-creates every per-tenant series so gauges (breaker state, queue
	// depth) are scrapeable as 0 before the first batch.
	e.cfg.Sink.TenantRegistered(id)
	return nil
}

// buildTenant constructs a tenant's state (everything except the
// migration-observer wiring, which must capture the final pointer — see
// wireObserver). Shared by registration and circuit-breaker rebuilds.
func (e *Engine) buildTenant(spec TenantSpec, hasSpec bool, a core.Allocator, faults *fault.Schedule, host *topology.Host) (*tenant, error) {
	id := spec.ID
	t := &tenant{
		id:       id,
		alloc:    a,
		algoName: a.Name(),
		spec:     spec,
		hasSpec:  hasSpec,
		n:        int64(a.Machine().N()),
		sink:     e.cfg.Sink,
		shardIdx: e.shardIdx(id),
	}
	if ba, ok := a.(core.BatchApplier); ok {
		t.batch = ba
	}
	if ft, ok := a.(core.FaultTolerant); ok {
		t.ft = ft
	}
	if faults != nil {
		if t.ft == nil {
			return nil, fmt.Errorf("engine: AddTenant(%q): allocator %s does not support fault injection", id, a.Name())
		}
		t.faults = append([]fault.Event(nil), faults.Events...)
	}
	if e.cfg.Audit {
		t.check = invariant.New(a.Machine())
	}
	if host != nil {
		if host.N() != a.Machine().N() {
			return nil, fmt.Errorf("engine: AddTenant(%q): host %s has %d PEs but allocator %s runs on %d",
				id, host.Name(), host.N(), a.Name(), a.Machine().N())
		}
		t.host = host
		t.check.SetHost(host)
	}
	if e.cfg.Overload == Degrade {
		t.deg = newDegradeState(a)
	}
	return t, nil
}

// wireObserver claims the allocator's migration observer for host-aware
// hop pricing. Separate from buildTenant so the closure captures the
// tenant pointer that actually lives in the shard map — a breaker
// rebuild copies the built state into the existing tenant struct, and
// the observer must follow it.
func wireObserver(t *tenant) {
	if t.host == nil {
		return
	}
	if ob, ok := t.alloc.(core.Observable); ok {
		host := t.host
		ob.SetMigrationObserver(func(_ task.ID, from, to tree.Node) {
			if t.inFault {
				return
			}
			t.migHops += host.MigrationCost(from, to)
			t.check.OnMigration(from, to, false)
		})
	}
}

// Submit queues events for a tenant, applying a batch whenever the queue
// reaches Config.BatchSize (or MaxQueue, whichever is smaller). A
// returned apply error poisons the tenant. Under MaxQueue the overload
// policy decides what an over-bound submission does: Block and Degrade
// admit it in bound-sized chunks (applying batches in between, so the
// bound never overshoots), Shed rejects it whole with ErrOverloaded.
func (e *Engine) Submit(id string, evs ...task.Event) error {
	err := e.submitLocked(id, evs)
	// Outside the shard lock: a due rebalance pass takes many locks and
	// must not nest under this tenant's.
	e.maybeRebalance()
	return err
}

func (e *Engine) submitLocked(id string, evs []task.Event) error {
	// Count the submission against its stripe's inbound backlog while it
	// waits for the lock. The route may move concurrently; crediting the
	// stripe read here keeps the accounting symmetric either way, and the
	// gauge is a pressure sample, not a ledger.
	in := e.shardAt(e.route(id))
	in.inbound.Add(int64(len(evs)))
	s := e.lockTenantShard(id)
	// Admitted: from here the events are the queue's to count, not the
	// backlog's.
	in.inbound.Add(-int64(len(evs)))
	defer s.mu.Unlock()
	// The half-open probe inside get scans the journal under the shard
	// lock by design: rebuild must see a frozen view of this tenant's
	// records, and the lock is what freezes them.
	t, err := e.get(s, id)
	if err != nil {
		return err
	}
	if e.cfg.Overload == Shed && e.cfg.MaxQueue > 0 && len(t.queue)+len(evs) > e.cfg.MaxQueue {
		t.shed += int64(len(evs))
		t.sink.Shed(id, len(evs), len(t.queue))
		return fmt.Errorf("%w: tenant %q: %d queued + %d submitted exceeds MaxQueue %d",
			ErrOverloaded, id, len(t.queue), len(evs), e.cfg.MaxQueue)
	}
	// Append-before-apply: shed events are gone, accepted events are
	// journaled before any state they touch changes.
	// Append-before-apply requires the journal write inside the critical
	// section — record and state change must be atomic under the shard
	// lock, and that single write(2) is the durability cost accepted.
	if err := e.journalSubmit(t, evs); err != nil {
		return err
	}
	if err := e.ingest(t, evs); err != nil {
		return err
	}
	// The snapshot must capture the tenant frozen by this shard lock, and
	// append-before-release keeps the record ordered with the tenant's
	// other records.
	return e.maybeSnapshot(t)
}

// ingest admits evs into the tenant's queue and applies full batches.
// The batch trigger is min(BatchSize, MaxQueue): a bound below the batch
// size must still let the queue fill a (smaller) batch, or Block would
// deadlock waiting for room that draining alone can create.
func (e *Engine) ingest(t *tenant, evs []task.Event) error {
	maxQ := e.cfg.MaxQueue
	trigger := e.cfg.BatchSize
	if maxQ > 0 && trigger > maxQ {
		trigger = maxQ
	}
	for {
		take := len(evs)
		if maxQ > 0 {
			if room := maxQ - len(t.queue); take > room {
				take = room
			}
		}
		t.queue = append(t.queue, evs[:take]...)
		evs = evs[take:]
		t.check.OnQueue(len(t.queue), maxQ)
		// Sample the shard backlog at its pre-drain high-water mark.
		e.shardAt(t.shardIdx).noteQueued()
		for len(t.queue) >= trigger {
			b := t.queue[:trigger]
			t.queue = t.queue[trigger:]
			if err := e.apply(t, b); err != nil {
				return err
			}
			t.check.OnQueue(len(t.queue), maxQ)
		}
		if len(evs) == 0 {
			t.sink.QueueDepth(t.id, len(t.queue))
			return nil
		}
	}
}

// Flush applies a tenant's queued events immediately.
func (e *Engine) Flush(id string) error {
	err := e.flushLocked(id)
	e.maybeRebalance()
	return err
}

func (e *Engine) flushLocked(id string) error {
	s := e.lockTenantShard(id)
	defer s.mu.Unlock()
	// The half-open probe inside get scans the journal under the shard
	// lock by design (see Submit).
	t, err := e.get(s, id)
	if err != nil {
		return err
	}
	if len(t.queue) == 0 {
		return nil
	}
	// Append-before-apply: the flush record and the flush itself must be
	// atomic under the shard lock (see Submit).
	if err := e.journalFlush(t); err != nil {
		return err
	}
	if err := e.flushTenant(t); err != nil {
		return err
	}
	// The snapshot must capture the tenant frozen by this shard lock
	// (see Submit).
	return e.maybeSnapshot(t)
}

// FlushAll flushes every tenant (in sorted ID order) and returns the
// first error.
func (e *Engine) FlushAll() error {
	for _, id := range e.Tenants() {
		if err := e.Flush(id); err != nil {
			return err
		}
	}
	return nil
}

// Tenants returns all tenant IDs in sorted order.
func (e *Engine) Tenants() []string {
	var ids []string
	for _, s := range e.shards {
		s.mu.Lock()
		shardIDs := make([]string, 0, len(s.tenants))
		for id := range s.tenants {
			shardIDs = append(shardIDs, id)
		}
		sort.Strings(shardIDs)
		s.mu.Unlock()
		ids = append(ids, shardIDs...)
	}
	sort.Strings(ids)
	return ids
}

// TenantStats snapshots one tenant's ledger. MaxLoad/Active query the
// live allocator, so a poisoned tenant still reports its last state.
func (e *Engine) TenantStats(id string) (TenantStats, error) {
	s := e.lockTenantShard(id)
	defer s.mu.Unlock()
	t, ok := s.tenants[id]
	if !ok {
		return TenantStats{}, fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	return s.stats(t), nil
}

// Stats snapshots every tenant's ledger in sorted ID order.
func (e *Engine) Stats() []TenantStats {
	var out []TenantStats
	for _, s := range e.shards {
		s.mu.Lock()
		ids := make([]string, 0, len(s.tenants))
		for id := range s.tenants {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			out = append(out, s.stats(s.tenants[id]))
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Err returns the tenant's poisoning error (nil while healthy).
func (e *Engine) Err(id string) error {
	s := e.lockTenantShard(id)
	defer s.mu.Unlock()
	t, ok := s.tenants[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	if t.err != nil {
		return fmt.Errorf("%w: %q: %w", ErrTenantPoisoned, id, t.err)
	}
	return nil
}

// Replay feeds each tenant its stream in Config.BatchSize batches, one
// parallel worker per shard, honoring ctx between batches (cancellation
// drains the batch in flight and returns ctx.Err(), the same contract as
// the sweep harness). Pending Submit queues are flushed first so replayed
// events land after anything already ingested. Tenants within a shard are
// processed in sorted ID order; an apply error stops that shard's worker
// but not the others.
func (e *Engine) Replay(ctx context.Context, streams map[string][]task.Event) error {
	ids := make([]string, 0, len(streams))
	for id := range streams {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Validate up front: an unknown tenant fails the whole replay before
	// any event is applied, not halfway through one shard. The grouping
	// by current route is a parallelism heuristic only — a rebalance can
	// move a tenant mid-replay, so each batch re-resolves its shard.
	byShard := make(map[int][]string)
	for _, id := range ids {
		s := e.lockTenantShard(id)
		_, ok := s.tenants[id]
		s.mu.Unlock()
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownTenant, id)
		}
		idx := e.route(id)
		byShard[idx] = append(byShard[idx], id)
	}
	var cells [][]string
	for i := range e.shards { // deterministic order, no map iteration
		if len(byShard[i]) > 0 {
			cells = append(cells, byShard[i])
		}
	}

	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	// ReplayWatchdog arms the RunCells per-cell timeout so a stalled
	// allocator fails its shard instead of hanging the whole replay.
	// Retries must stay 0: a retried worker would restart its loop and
	// apply events twice.
	opts := parallel.RunOptions{Cancel: cancel, Timeout: e.cfg.ReplayWatchdog, Sink: e.cfg.Sink}
	cellErrs := parallel.RunCells(len(cells), opts, func(ci int) error {
		for _, id := range cells[ci] {
			evs := streams[id]
			runTenant := func() error {
				for off := 0; off < len(evs); off += e.cfg.BatchSize {
					if ctx != nil {
						select {
						case <-ctx.Done():
							return ctx.Err()
						default:
						}
					}
					end := off + e.cfg.BatchSize
					if end > len(evs) {
						end = len(evs)
					}
					s := e.lockTenantShard(id)
					// The half-open probe inside get scans the journal under the shard
					// lock by design (see Submit).
					t, err := e.get(s, id)
					if err == nil {
						// Append-before-apply under the shard lock (see Submit).
						err = e.journalApply(t, off == 0, evs[off:end])
					}
					if err == nil {
						if off == 0 {
							err = e.flushTenant(t)
						}
						if err == nil {
							err = e.apply(t, evs[off:end])
						}
						if err == nil {
							// The snapshot must capture the tenant frozen by this shard lock
							// (see Submit).
							err = e.maybeSnapshot(t)
						}
					}
					s.mu.Unlock()
					if err != nil {
						return err
					}
				}
				return nil
			}
			var err error
			if e.cfg.Sink != nil {
				// Label the worker's samples so CPU profiles attribute
				// time to the tenant/shard/algorithm being replayed.
				lctx := ctx
				if lctx == nil {
					//lint:ignore ctxflow Replay documents ctx == nil as valid; pprof.Do requires a non-nil context
					lctx = context.Background()
				}
				labels := pprof.Labels(
					"tenant", id,
					"shard", strconv.Itoa(e.shardIdx(id)),
					"algo", e.tenantAlgo(id),
				)
				pprof.Do(lctx, labels, func(context.Context) { err = runTenant() })
			} else {
				err = runTenant()
			}
			if err != nil {
				return err
			}
		}
		return nil
	})

	for _, err := range cellErrs {
		if err == nil {
			continue
		}
		if errors.Is(err, parallel.ErrCanceled) && ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

// get looks up a live tenant; poisoned tenants report their cause. When
// the circuit breaker is armed (journal + rebuild recipe) and the
// tenant's backoff deadline has passed, get runs the half-open probe: it
// rebuilds the tenant from the journal and, on success, returns it
// healthy. Callers hold the shard lock.
func (e *Engine) get(s *shard, id string) (*tenant, error) {
	t, ok := s.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	if t.err == nil {
		return t, nil
	}
	if !e.breakerArmed(t) {
		return nil, fmt.Errorf("%w: %q: %w", ErrTenantPoisoned, id, t.err)
	}
	if wait := t.deadline - e.now(); wait > 0 {
		return nil, fmt.Errorf("%w: %q (circuit open, probe in %v): %w",
			ErrTenantPoisoned, id, time.Duration(wait), t.err)
	}
	t.sink.BreakerProbe(id, int64(t.trips))
	if err := e.probe(s, t); err != nil {
		return nil, fmt.Errorf("%w: %q (half-open probe failed): %w", ErrTenantPoisoned, id, err)
	}
	return t, nil
}

// flushTenant applies the tenant's queued events. Callers hold the shard
// lock and have already journaled the flush when it changes state.
func (e *Engine) flushTenant(t *tenant) error {
	if len(t.queue) == 0 {
		return nil
	}
	b := t.queue
	t.queue = nil
	return e.apply(t, b)
}

// poison marks the tenant failed, drops its queue, and arms the circuit
// breaker's backoff. Callers hold the shard lock.
func (e *Engine) poison(t *tenant, cause error) {
	t.err = cause
	t.queue = nil
	t.trips++
	t.deadline = e.now() + e.backoff(t)
	// Opens the breaker gauge and, when a poison-dump writer is wired,
	// flushes the flight recorder so the events leading here survive.
	t.sink.BreakerTrip(t.id, int64(t.trips), cause.Error())
}

// apply runs one batch through the allocator, interleaving scheduled
// faults at their event indexes exactly as internal/sim does (faults with
// At ≤ i fire immediately before event i of the tenant's stream). A panic
// poisons the tenant and is returned as ErrTenantPoisoned wrapping the
// recovered cause. Callers hold the shard lock.
func (e *Engine) apply(t *tenant, evs []task.Event) (err error) {
	defer func() {
		if r := recover(); r != nil {
			cause, ok := r.(error)
			if !ok {
				cause = fmt.Errorf("panic: %v", r)
			}
			e.poison(t, cause)
			err = fmt.Errorf("%w: %q: %w", ErrTenantPoisoned, t.id, cause)
		}
	}()

	start := e.now()
	base := int(t.events)
	for i := 0; i < len(evs); {
		t.injectFaults(base + i)
		// Run uninterrupted until the next scheduled fault (or the end).
		j := len(evs)
		if t.faultPos < len(t.faults) {
			if at := t.faults[t.faultPos].At - base; at < j {
				j = at
			}
		}
		t.applyRun(evs[i:j])
		i = j
	}
	ns := e.now() - start

	t.events += int64(len(evs))
	t.batches++
	t.applyNs += ns
	t.batchNs = append(t.batchNs, ns)
	e.batchesTotal.Add(1)
	sh := e.shardAt(t.shardIdx)
	sh.events += int64(len(evs))
	sh.applyNs += ns
	load := t.alloc.MaxLoad()
	if load > t.peakLoad {
		t.peakLoad = load
	}
	if t.sink != nil {
		var lstar int64
		if t.maxActiveSize > 0 {
			lstar = mathx.CeilDiv64(t.maxActiveSize, t.n)
		}
		t.sink.BatchApplied(t.id, t.shardIdx, len(evs), ns,
			int64(load), int64(t.peakLoad), lstar, len(t.queue), t.migHops, t.forcedHops)
	}
	e.degradeStep(t, ns)
	return nil
}

// injectFaults applies every scheduled fault with At ≤ i (but not beyond
// the stream position i itself — fault At values index the tenant's event
// stream, so a fault at index k fires before event k is applied).
func (t *tenant) injectFaults(i int) {
	for t.faultPos < len(t.faults) && t.faults[t.faultPos].At <= i {
		fe := t.faults[t.faultPos]
		t.faultPos++
		t.faultHit++
		switch fe.Kind {
		case fault.FailPE:
			t.inFault = true
			migs := t.ft.FailPE(fe.PE)
			t.inFault = false
			var hops int64
			if t.host != nil {
				for _, mg := range migs {
					cost := t.host.MigrationCost(mg.From, mg.To)
					t.forcedHops += cost
					hops += cost
					t.check.OnMigration(mg.From, mg.To, true)
				}
			}
			t.sink.ForcedFault(t.id, fe.PE, len(migs), hops)
			t.check.OnFail(t.alloc, fe.PE)
		case fault.RecoverPE:
			t.ft.RecoverPE(fe.PE)
			t.check.OnRecover(t.alloc, fe.PE)
		default:
			panic(fmt.Errorf("engine: tenant %q: unknown fault kind %d", t.id, fe.Kind))
		}
		if load := t.alloc.MaxLoad(); load > t.peakLoad {
			t.peakLoad = load
		}
	}
}

// applyRun applies a fault-free run of events. Audit mode goes one event
// at a time through the invariant checker; otherwise the allocator's
// BatchApplier (when present) amortizes the whole run.
func (t *tenant) applyRun(evs []task.Event) {
	switch {
	case t.check != nil:
		for _, e := range evs {
			switch e.Kind {
			case task.Arrive:
				tk := task.Task{ID: e.Task, Size: e.Size}
				v := t.alloc.Arrive(tk)
				t.check.OnArrive(t.alloc, tk, v)
			case task.Depart:
				t.alloc.Depart(e.Task)
				t.check.OnDepart(t.alloc, e.Task)
			}
		}
	case t.batch != nil:
		t.batch.ApplyBatch(evs)
	default:
		core.ApplyEvents(t.alloc, evs)
	}
	for _, e := range evs {
		if e.Kind == task.Arrive {
			t.activeSize += int64(e.Size)
			if t.activeSize > t.maxActiveSize {
				t.maxActiveSize = t.activeSize
			}
		} else {
			t.activeSize -= int64(e.Size)
		}
	}
}

// stats snapshots one tenant. Callers hold the shard lock.
func (s *shard) stats(t *tenant) TenantStats {
	st := TenantStats{
		Tenant:        t.id,
		Algorithm:     t.algoName,
		Events:        t.events,
		Queued:        len(t.queue),
		Batches:       t.batches,
		ApplyNs:       t.applyNs,
		BatchNs:       append([]int64(nil), t.batchNs...),
		MaxLoad:       t.alloc.MaxLoad(),
		PeakLoad:      t.peakLoad,
		Active:        t.alloc.Active(),
		FaultEvents:   t.faultHit,
		MigHops:       t.migHops,
		ForcedHops:    t.forcedHops,
		ShedEvents:    t.shed,
		DroppedEvents: t.dropped,
		EffectiveD:    -1,
		BreakerState:  "closed",
		BreakerTrips:  t.trips,
	}
	if t.err != nil {
		st.BreakerState = "open"
	}
	if t.deg != nil {
		st.EffectiveD = t.deg.da.EffectiveD()
		st.DegradeLevel = t.deg.level
		st.Degrades = append([]DegradeTransition(nil), t.deg.trans...)
	}
	if t.host != nil {
		st.Topology = t.host.Name()
	}
	if t.maxActiveSize > 0 {
		st.LStar = int(mathx.CeilDiv64(t.maxActiveSize, t.n))
	}
	if r, ok := t.alloc.(core.Reallocator); ok {
		st.Realloc = r.ReallocStats()
	}
	if t.check != nil {
		st.Violations = t.check.Violations()
	}
	return st
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1, nearest-rank) of ns,
// without mutating it; 0 when empty. Engined uses it for p50/p99 apply
// latency.
func Quantile(ns []int64, q float64) int64 {
	if len(ns) == 0 {
		return 0
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
