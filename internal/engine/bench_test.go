package engine

import (
	"context"
	"testing"

	"partalloc/internal/core"
	"partalloc/internal/sim"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// benchFleet builds the benchmark tenant mix: the batching-friendly
// algorithms the engined load driver also uses.
func benchFleet(b *testing.B, tenants int) (map[string]func() core.Allocator, map[string][]task.Event) {
	b.Helper()
	factories := make(map[string]func() core.Allocator, tenants)
	streams := make(map[string][]task.Event, tenants)
	ids := benchIDs(tenants)
	for i, id := range ids {
		i := i
		switch i % 3 {
		case 0:
			factories[id] = func() core.Allocator { return core.NewRandom(tree.MustNew(256), int64(i+1)) }
		case 1:
			factories[id] = func() core.Allocator { return core.NewBasic(tree.MustNew(256)) }
		default:
			factories[id] = func() core.Allocator { return core.NewLazy(tree.MustNew(256), 4, core.DecreasingSize) }
		}
		streams[id] = testStream(256, 2500, int64(i+1))
	}
	return factories, streams
}

func benchIDs(tenants int) []string {
	ids := make([]string, tenants)
	for i := range ids {
		ids[i] = string(rune('a'+i%26)) + "-tenant"
		if i >= 26 {
			ids[i] = ids[i] + "x"
		}
	}
	return ids
}

// BenchmarkEngineReplay measures batched, sharded ingestion end to end.
func BenchmarkEngineReplay(b *testing.B) {
	factories, streams := benchFleet(b, 8)
	var events int64
	for _, evs := range streams {
		events += int64(len(evs))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New(Config{BatchSize: 256})
		for _, id := range benchIDs(8) {
			if err := eng.AddTenant(id, factories[id]()); err != nil {
				b.Fatal(err)
			}
		}
		if err := eng.Replay(context.Background(), streams); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSerialSimulate is the baseline the engine is judged against:
// one sim.Run per tenant, sequentially, as a pre-engine caller would.
func BenchmarkSerialSimulate(b *testing.B) {
	factories, streams := benchFleet(b, 8)
	var events int64
	for _, evs := range streams {
		events += int64(len(evs))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range benchIDs(8) {
			sim.Run(factories[id](), task.Sequence{Events: streams[id]}, sim.Options{})
		}
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
