// Tenant snapshotting, journal compaction, and O(tail) recovery.
//
// A snapshot (wal.TypeSnapshot) is one self-contained checkpoint of a
// tenant: its rebuild spec, its engine ledger, its queued events, the
// allocator's core.Checkpointable bytes, and — under Config.Audit — the
// invariant checker's own ledger. Self-containment is the point: a
// restored tenant needs nothing from the journal before the snapshot
// record, which yields the two payoffs layered here.
//
//   - Compaction: the engine tracks, per tenant, the segment holding its
//     latest snapshot. Once every tenant's latest snapshot lives in
//     segment ≥ s, segments before s contain only history the snapshots
//     already summarize and are deleted (wal.Log.TruncateBefore). A
//     tenant that has never snapshotted pins the whole log — safety
//     before space.
//
//   - O(tail) recovery: Recover scans the log once to find each tenant's
//     last snapshot (pass 1), then replays (pass 2) skipping every record
//     older than it; the tenant is restored from the snapshot and only
//     the post-snapshot tail is re-applied. RecoveryStats counts the
//     skipped/replayed split so tests can assert the O(tail) claim.
//
// The circuit breaker's half-open probe reuses the same machinery:
// instead of replaying the tenant's full journaled safe prefix, it
// restores the last (necessarily pre-poison — snapshots are only taken
// at healthy moments) snapshot and replays the tail up to the safe
// prefix. A successful probe appends a fresh "healing" snapshot right
// after its TypeRebuild record, so a later recovery restores the healed
// state directly instead of re-deriving it.
//
// MoveTenant rounds the feature out: a snapshot is, operationally, a
// tenant in a box, so rebalancing a tenant onto another engine is
// encode → install → journal a TypeRemove at the source.
package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"partalloc/internal/core"
	"partalloc/internal/errs"
	"partalloc/internal/fault"
	"partalloc/internal/task"
	"partalloc/internal/topology"
	"partalloc/internal/wal"
)

// tenantSnapshot is the JSON envelope inside a wal.TypeSnapshot record.
// It carries everything Recover needs to rebuild the tenant without
// reading any earlier record: the spec re-creates allocator/faults/host,
// Alloc restores the allocator's exact state, Checker the audit ledger,
// Queue the pending events, and the scalar fields the engine ledger.
// Wall-clock-derived state (ApplyNs, BatchNs, the Degrade ladder) is
// deliberately absent — CanonicalStats clears it, and the breaker's
// rebuild precedent restarts the ladder too.
type tenantSnapshot struct {
	Spec          TenantSpec
	Events        int64
	Batches       int64
	ActiveSize    int64
	MaxActiveSize int64
	PeakLoad      int
	FaultPos      int
	FaultHit      int
	MigHops       int64 `json:",omitempty"`
	ForcedHops    int64 `json:",omitempty"`
	Shed          int64 `json:",omitempty"`
	Dropped       int64 `json:",omitempty"`
	Trips         int   `json:",omitempty"`
	// Shard is the tenant's shard route when the snapshot was taken.
	// Always written (no omitempty — shard 0 is a real route): once
	// compaction deletes the TypeMove records a snapshot supersedes, the
	// envelope is the only surviving carrier of the tenant's route.
	Shard   int
	Queue   []byte // wal.AppendEvents encoding; never empty (count prefix)
	Alloc   []byte // core.Checkpointable bytes
	Checker []byte `json:",omitempty"` // invariant.Checker ledger, Audit only
}

// RecoveryStats reports how Recover reconstructed the engine: how many
// journal records it scanned, how many it skipped because a later
// snapshot already covered them, how many it re-applied, and how many
// snapshots it restored. RecordsSkipped + RecordsReplayed ≤
// RecordsScanned (snapshot records restored at their own ordinal are
// counted in SnapshotsRestored, not RecordsReplayed).
type RecoveryStats struct {
	RecordsScanned    int64
	RecordsSkipped    int64
	RecordsReplayed   int64
	SnapshotsRestored int64
	// MovesReplayed counts TypeMove records re-applied: each one rewrote
	// the recovered routing table (and re-homed the tenant) exactly as
	// the live engine's rebalance did.
	MovesReplayed int64
}

// RecoveryStats returns the ledger of the Recover call that built this
// engine; all-zero for an engine built with New.
func (e *Engine) RecoveryStats() RecoveryStats { return e.recStats }

// trackTenant registers a tenant in the compaction watermark with "no
// snapshot yet", pinning truncation until its first snapshot lands.
func (e *Engine) trackTenant(id string) {
	if e.cfg.Journal == nil {
		return
	}
	e.smu.Lock()
	if _, ok := e.snapSeg[id]; !ok {
		e.snapSeg[id] = -1
	}
	e.smu.Unlock()
}

// untrackTenant drops a tenant from the compaction watermark (MoveTenant).
func (e *Engine) untrackTenant(id string) {
	e.smu.Lock()
	delete(e.snapSeg, id)
	e.smu.Unlock()
}

// encodeTenantSnapshot serializes t's full state. Callers hold the shard
// lock, so the allocator and ledger are frozen.
func (e *Engine) encodeTenantSnapshot(t *tenant) ([]byte, error) {
	if !t.hasSpec {
		return nil, fmt.Errorf("engine: snapshot %q: tenant has no rebuild recipe", t.id)
	}
	ck, ok := t.alloc.(core.Checkpointable)
	if !ok {
		return nil, fmt.Errorf("engine: snapshot %q: allocator %s is not checkpointable", t.id, t.alloc.Name())
	}
	env := tenantSnapshot{
		Spec:          t.spec,
		Events:        t.events,
		Batches:       t.batches,
		ActiveSize:    t.activeSize,
		MaxActiveSize: t.maxActiveSize,
		PeakLoad:      t.peakLoad,
		FaultPos:      t.faultPos,
		FaultHit:      t.faultHit,
		MigHops:       t.migHops,
		ForcedHops:    t.forcedHops,
		Shed:          t.shed,
		Dropped:       t.dropped,
		Trips:         t.trips,
		Shard:         t.shardIdx,
		Queue:         wal.AppendEvents(nil, t.queue),
		Alloc:         ck.Snapshot(),
		Checker:       t.check.Checkpoint(),
	}
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot %q: %w", t.id, err)
	}
	return data, nil
}

// restoreTenant builds a tenant from a snapshot envelope: fresh
// allocator from the spec, allocator state restored from the snapshot
// bytes, checker ledger restored when auditing, engine ledger installed.
// The caller wires the migration observer (wireObserver) once the
// returned struct has reached its final address.
func (e *Engine) restoreTenant(env *tenantSnapshot, a core.Allocator, faults *fault.Schedule, host *topology.Host) (*tenant, error) {
	id := env.Spec.ID
	t, err := e.buildTenant(env.Spec, true, a, faults, host)
	if err != nil {
		return nil, err
	}
	ck, ok := a.(core.Checkpointable)
	if !ok {
		return nil, fmt.Errorf("engine: restore %q: allocator %s is not checkpointable", id, a.Name())
	}
	if err := ck.Restore(env.Alloc); err != nil {
		return nil, fmt.Errorf("engine: restore %q: allocator: %w", id, err)
	}
	if t.check != nil {
		if len(env.Checker) == 0 {
			return nil, fmt.Errorf("engine: restore %q: snapshot has no audit ledger but Config.Audit is on", id)
		}
		if err := t.check.RestoreCheckpoint(env.Checker); err != nil {
			return nil, fmt.Errorf("engine: restore %q: %w", id, err)
		}
	}
	queue, err := wal.DecodeEvents(env.Queue)
	if err != nil {
		return nil, fmt.Errorf("engine: restore %q: queue: %w", id, err)
	}
	if len(queue) > 0 {
		t.queue = queue
	}
	if env.Events < 0 || env.Batches < 0 || env.FaultPos < 0 || env.FaultPos > len(t.faults) {
		return nil, fmt.Errorf("engine: restore %q: inconsistent snapshot ledger", id)
	}
	t.events = env.Events
	t.batches = env.Batches
	t.activeSize = env.ActiveSize
	t.maxActiveSize = env.MaxActiveSize
	t.peakLoad = env.PeakLoad
	t.faultPos = env.FaultPos
	t.faultHit = env.FaultHit
	t.migHops = env.MigHops
	t.forcedHops = env.ForcedHops
	t.shed = env.Shed
	t.dropped = env.Dropped
	t.trips = env.Trips
	t.lastSnapBatch = env.Batches
	return t, nil
}

// maybeSnapshot checkpoints t when the Config.SnapshotEvery cadence is
// due. Called on the live ingestion paths (Submit, Flush, Replay) after
// a successful apply, under the shard lock; never during recovery or a
// breaker rebuild, whose replays go through other entry points.
func (e *Engine) maybeSnapshot(t *tenant) error {
	k := int64(e.cfg.SnapshotEvery)
	if k <= 0 || e.cfg.Journal == nil || !t.hasSpec || t.err != nil {
		return nil
	}
	if t.batches-t.lastSnapBatch < k {
		return nil
	}
	return e.snapshotTenant(t)
}

// snapshotTenant appends a snapshot record for t unconditionally,
// records the segment it landed in, and runs the compaction rule.
// Callers hold the shard lock.
func (e *Engine) snapshotTenant(t *tenant) error {
	data, err := e.encodeTenantSnapshot(t)
	if err != nil {
		return err
	}
	e.jmu.Lock()
	//lint:ignore lockorder jmu serializes all journal writes (see journalAppend); Seg must be read under the same hold, or a rotation from another shard could misattribute the snapshot's segment
	err = e.cfg.Journal.Append(wal.Record{Type: wal.TypeSnapshot, Tenant: t.id, Data: data})
	seg := e.cfg.Journal.Seg()
	e.jmu.Unlock()
	if err != nil {
		return fmt.Errorf("engine: snapshot %q: %w", t.id, err)
	}
	t.lastSnapBatch = t.batches
	t.sink.Snapshot(t.id, len(data), seg)
	e.smu.Lock()
	e.snapSeg[t.id] = seg
	e.smu.Unlock()
	return e.compact()
}

// compact applies the retention rule: delete every segment older than
// all tenants' latest snapshots. A tenant with no snapshot yet (-1)
// blocks truncation entirely — deleting history it still needs would
// make it unrecoverable.
func (e *Engine) compact() error {
	e.smu.Lock()
	min := -1
	for _, seg := range e.snapSeg {
		if seg < 0 {
			e.smu.Unlock()
			return nil
		}
		if min < 0 || seg < min {
			min = seg
		}
	}
	e.smu.Unlock()
	if min <= 1 {
		return nil // nothing older than the first segment
	}
	e.jmu.Lock()
	defer e.jmu.Unlock()
	//lint:ignore lockorder jmu serializes every journal mutation; truncation races with rotation otherwise
	if err := e.cfg.Journal.TruncateBefore(min); err != nil {
		return fmt.Errorf("engine: compact: %w", err)
	}
	return nil
}

// lastSnapshot scans the journal for id's latest snapshot record,
// returning its ordinal and decoded envelope, or ok=false when the
// tenant has none (or a TypeRemove supersedes them all). The caller
// holds the tenant's shard lock, freezing its records (see timeline).
func (e *Engine) lastSnapshot(id string) (ord int, env *tenantSnapshot, ok bool, err error) {
	ord = -1
	var data []byte
	rerr := wal.Replay(e.cfg.Journal.Dir(), func(o int, rec wal.Record) error {
		if rec.Tenant != id {
			return nil
		}
		switch rec.Type {
		case wal.TypeSnapshot:
			ord, data = o, rec.Data
		case wal.TypeRemove:
			// The tenant was moved away and re-added; snapshots from its
			// previous life describe state this stream never had.
			ord, data = -1, nil
		}
		return nil
	})
	if rerr != nil {
		return -1, nil, false, rerr
	}
	if ord < 0 {
		return -1, nil, false, nil
	}
	env = new(tenantSnapshot)
	if uerr := json.Unmarshal(data, env); uerr != nil {
		return -1, nil, false, fmt.Errorf("engine: snapshot record for %q: %w", id, uerr)
	}
	return ord, env, true, nil
}

// snapTail reconstructs the tenant's valid event timeline *after* a
// snapshot: the snapshot's queued events followed by every later
// Submit/Apply record's events, with later TypeRebuild records applied
// as truncations (their keep counts index the full stream, so they
// translate by env.Events). stopBefore ≥ 0 bounds the scan as in
// timeline; -1 scans everything. Position p of the returned slice is
// stream event env.Events+p.
func (e *Engine) snapTail(id string, snapOrd, stopBefore int, env *tenantSnapshot) ([]task.Event, error) {
	tail, err := wal.DecodeEvents(env.Queue)
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot queue for %q: %w", id, err)
	}
	err = wal.Replay(e.cfg.Journal.Dir(), func(ord int, rec wal.Record) error {
		if stopBefore >= 0 && ord >= stopBefore {
			return wal.ErrStop
		}
		if ord <= snapOrd || rec.Tenant != id {
			return nil
		}
		switch rec.Type {
		case wal.TypeSubmit:
			evs, err := wal.DecodeEvents(rec.Data)
			if err != nil {
				return fmt.Errorf("engine: journal record %d: %w", ord, err)
			}
			tail = append(tail, evs...)
		case wal.TypeApply:
			_, evs, err := wal.DecodeApply(rec.Data)
			if err != nil {
				return fmt.Errorf("engine: journal record %d: %w", ord, err)
			}
			tail = append(tail, evs...)
		case wal.TypeRebuild:
			keep, _, err := wal.DecodeRebuild(rec.Data)
			if err != nil {
				return fmt.Errorf("engine: journal record %d: %w", ord, err)
			}
			rel := keep - env.Events
			if rel < 0 || rel > int64(len(tail)) {
				return fmt.Errorf("engine: journal record %d: rebuild keeps %d events but snapshot covers %d+%d",
					ord, keep, env.Events, len(tail))
			}
			tail = tail[:rel]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tail, nil
}

// replayChunks applies evs through t in min(BatchSize, MaxQueue)-sized
// chunks — the same chunking rebuild and redoRebuild use, so every path
// that re-derives a tenant from events produces the same batch ledger.
func (e *Engine) replayChunks(t *tenant, evs []task.Event) error {
	trigger := e.cfg.BatchSize
	if e.cfg.MaxQueue > 0 && trigger > e.cfg.MaxQueue {
		trigger = e.cfg.MaxQueue
	}
	for off := 0; off < len(evs); off += trigger {
		end := off + trigger
		if end > len(evs) {
			end = len(evs)
		}
		if err := e.apply(t, evs[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// probeFromSnapshot is the snapshot-powered half of the breaker's
// half-open probe: restore the tenant's last pre-poison snapshot and
// replay only the tail up to the safe prefix (t.events), instead of
// replaying the whole journaled prefix from scratch. On success a
// healing snapshot of the recovered state is appended right after the
// TypeRebuild record, so a crash after the probe recovers the healed
// ledger directly. Callers hold the shard lock.
func (e *Engine) probeFromSnapshot(t *tenant, snapOrd int, env *tenantSnapshot) error {
	keep := t.events
	if env.Events > keep {
		e.rearm(t)
		return fmt.Errorf("engine: rebuild %q: snapshot covers %d events but only %d were applied", t.id, env.Events, keep)
	}
	tail, err := e.snapTail(t.id, snapOrd, -1, env)
	if err != nil {
		e.rearm(t)
		return err
	}
	need := keep - env.Events
	if need > int64(len(tail)) {
		e.rearm(t)
		return fmt.Errorf("engine: rebuild %q: journal holds %d tail events but %d are needed", t.id, len(tail), need)
	}
	drop := int64(len(tail)) - need
	a, faults, host, err := e.cfg.Rebuild(t.spec)
	if err != nil {
		e.rearm(t)
		return err
	}
	nt, err := e.restoreTenant(env, a, faults, host)
	if err != nil {
		e.rearm(t)
		return err
	}
	// The snapshot's queued events are tail[0:...]; applying them from the
	// tail AND leaving them queued would double them.
	nt.queue = nil
	nt.shed = t.shed
	nt.dropped = t.dropped + drop
	nt.trips = t.trips
	nt.deadline = t.deadline
	if err := e.journalAppend(wal.Record{Type: wal.TypeRebuild, Tenant: t.id, Data: wal.AppendRebuild(nil, keep, drop)}); err != nil {
		e.rearm(t)
		return err
	}
	*t = *nt
	wireObserver(t)
	if err := e.replayChunks(t, tail[:need]); err != nil {
		return err
	}
	// Healing snapshot: recovery restores this state directly, matching
	// the probe's ledger (snapshot batches + tail chunks) byte for byte.
	if err := e.snapshotTenant(t); err != nil {
		return err
	}
	t.sink.BreakerHeal(t.id, drop)
	return nil
}

// redoRebuildFromSnapshot re-applies a journaled TypeRebuild during
// recovery when the tenant has an earlier snapshot: the legacy path
// (timeline from the log's beginning) would read records compaction may
// have deleted, so the rebuild is re-derived exactly as the live probe
// derived it — restore the snapshot, replay the tail up to keep.
func (e *Engine) redoRebuildFromSnapshot(t *tenant, ord int, keep, drop int64, snapOrd int, data []byte) error {
	var env tenantSnapshot
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("engine: recover record %d: snapshot: %w", ord, err)
	}
	tail, err := e.snapTail(t.id, snapOrd, ord, &env)
	if err != nil {
		return err
	}
	need := keep - env.Events
	if need < 0 || need > int64(len(tail)) || drop != int64(len(tail))-need {
		return fmt.Errorf("engine: recover record %d: rebuild keep=%d drop=%d against snapshot %d + %d tail events",
			ord, keep, drop, env.Events, len(tail))
	}
	a, faults, host, err := e.cfg.Rebuild(t.spec)
	if err != nil {
		return fmt.Errorf("engine: recover %q: %w", t.id, err)
	}
	nt, err := e.restoreTenant(&env, a, faults, host)
	if err != nil {
		return fmt.Errorf("engine: recover record %d: %w", ord, err)
	}
	nt.queue = nil
	nt.shed = t.shed
	nt.dropped = t.dropped + drop
	nt.trips = t.trips
	nt.deadline = t.deadline
	*t = *nt
	wireObserver(t)
	if err := e.replayChunks(t, tail[:need]); err != nil && !errors.Is(err, errs.ErrTenantPoisoned) {
		return err
	}
	return nil
}

// restoreSnapshot installs a tenant from a TypeSnapshot record during
// recovery. Earlier records of this tenant were skipped (including its
// TypeAddTenant), so the envelope's spec is the registration.
func (e *Engine) restoreSnapshot(ord int, rec wal.Record) error {
	var env tenantSnapshot
	if err := json.Unmarshal(rec.Data, &env); err != nil {
		return fmt.Errorf("engine: recover record %d: snapshot: %w", ord, err)
	}
	if env.Spec.ID != rec.Tenant {
		return fmt.Errorf("engine: recover record %d: snapshot spec ID %q does not match tenant %q", ord, env.Spec.ID, rec.Tenant)
	}
	a, faults, host, err := e.cfg.Rebuild(env.Spec)
	if err != nil {
		return fmt.Errorf("engine: recover %q: %w", rec.Tenant, err)
	}
	t, err := e.restoreTenant(&env, a, faults, host)
	if err != nil {
		return fmt.Errorf("engine: recover record %d: %w", ord, err)
	}
	// The envelope carries the tenant's route: compaction may have
	// deleted the TypeMove records that produced it. Out-of-range routes
	// (a journal recovered into a smaller engine) fall back to the hash
	// default.
	idx := env.Shard
	if idx < 0 || idx >= len(e.shards) {
		idx = hashShard(t.id, len(e.shards))
	}
	// A re-restored tenant (two snapshots survive compaction) may have
	// moved between them; drop it from its old stripe first.
	existed := false
	if old := e.route(t.id); old != idx {
		os := e.shardAt(old)
		os.mu.Lock()
		if _, ok := os.tenants[t.id]; ok {
			existed = true
			delete(os.tenants, t.id)
		}
		os.mu.Unlock()
	}
	e.placer.Reroute(t.id, idx)
	t.shardIdx = idx
	s := e.shardAt(idx)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[t.id]; ok {
		existed = true
	}
	s.tenants[t.id] = t
	wireObserver(t)
	e.trackTenant(t.id)
	if !existed {
		e.cfg.Sink.TenantRegistered(t.id)
	}
	return nil
}

// removeTenantLocal forgets a tenant (TypeRemove during recovery; a
// no-op when earlier records were already skipped).
func (e *Engine) removeTenantLocal(id string) error {
	s := e.shardFor(id)
	s.mu.Lock()
	delete(s.tenants, id)
	s.mu.Unlock()
	e.placer.Remove(id)
	e.untrackTenant(id)
	return nil
}

// moveMu serializes MoveTenant calls process-wide. A move holds shard
// locks on two engines at once (source while encoding, destination
// while installing); serializing moves is what keeps two concurrent
// opposite-direction moves from deadlocking on each other's shards.
var moveMu sync.Mutex

// MoveTenant extracts tenant id from e and installs it in dst — a
// rebalance with no event replay: the tenant travels as one snapshot.
// The destination journals the snapshot (when it has a journal), then
// the source journals a TypeRemove and forgets the tenant, so each
// engine's log recovers its own post-move view. The tenant must be
// healthy, have a rebuild recipe, and dst must have Config.Rebuild.
//
// The two journals cannot be updated atomically: a crash after the
// destination's append but before the source's leaves the tenant on
// both engines after recovery (at-least-once, never lost). The same
// window is reported as an error when the source append fails.
func (e *Engine) MoveTenant(id string, dst *Engine) error {
	if dst == nil {
		return fmt.Errorf("engine: MoveTenant(%q): nil destination", id)
	}
	if dst == e {
		return fmt.Errorf("engine: MoveTenant(%q): destination is the source engine", id)
	}
	if dst.cfg.Rebuild == nil {
		return fmt.Errorf("engine: MoveTenant(%q): destination has no Config.Rebuild", id)
	}
	moveMu.Lock()
	defer moveMu.Unlock()
	// The source's routing and membership change together; the rebalance
	// mutex keeps the pair atomic with respect to the source's own
	// passes (and freezes the route, so shardFor cannot go stale here).
	e.rebalMu.Lock()
	defer e.rebalMu.Unlock()
	s := e.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	if t.err != nil {
		return fmt.Errorf("engine: MoveTenant(%q): %w: move healthy tenants only: %w", id, ErrTenantPoisoned, t.err)
	}
	data, err := e.encodeTenantSnapshot(t)
	if err != nil {
		return err
	}
	//lint:ignore lockorder the move is a two-journal transaction: the destination's install and the source's removal must happen with the tenant frozen under this shard lock, and moveMu serializes moves so the cross-engine lock pair cannot deadlock
	if err := dst.installSnapshot(data); err != nil {
		return fmt.Errorf("engine: MoveTenant(%q): %w", id, err)
	}
	if e.cfg.Journal != nil {
		//lint:ignore lockorder append-before-apply: the removal record must land before the tenant disappears from this engine (see Submit)
		if err := e.journalAppend(wal.Record{Type: wal.TypeRemove, Tenant: id}); err != nil {
			return fmt.Errorf("engine: MoveTenant(%q): installed at destination but source removal failed (tenant now on both): %w", id, err)
		}
	}
	delete(s.tenants, id)
	e.placer.Remove(id)
	e.untrackTenant(id)
	e.cfg.Sink.TenantMoved(id, "out")
	return nil
}

// installSnapshot decodes a tenant snapshot and registers the tenant on
// this engine, journaling the snapshot first when journaled (so a crash
// right after the move still recovers the tenant here). The tenant is
// placed through this engine's placer — the envelope's Shard field
// describes the source engine's layout — and the envelope is re-sealed
// with the new route before journaling, so this journal recovers the
// tenant onto the shard it actually landed on.
func (e *Engine) installSnapshot(data []byte) error {
	var env tenantSnapshot
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("engine: install snapshot: %w", err)
	}
	id := env.Spec.ID
	a, faults, host, err := e.cfg.Rebuild(env.Spec)
	if err != nil {
		return fmt.Errorf("engine: install %q: %w", id, err)
	}
	e.rebalMu.Lock()
	defer e.rebalMu.Unlock()
	_, routed := e.placer.Lookup(id)
	idx := e.placer.Place(id)
	env.Shard = idx
	data, err = json.Marshal(env)
	if err != nil {
		return fmt.Errorf("engine: install %q: %w", id, err)
	}
	t, err := e.restoreTenant(&env, a, faults, host)
	if err != nil {
		if !routed {
			e.placer.Remove(id)
		}
		return fmt.Errorf("engine: install %q: %w", id, err)
	}
	t.shardIdx = idx
	s := e.shardAt(idx)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[id]; ok {
		// The pre-existing route belongs to the live tenant; keep it.
		return fmt.Errorf("%w: %q", ErrDuplicateTenant, id)
	}
	if e.cfg.Journal != nil {
		e.jmu.Lock()
		//lint:ignore lockorder jmu serializes all journal writes; Seg is read under the same hold (see snapshotTenant)
		err = e.cfg.Journal.Append(wal.Record{Type: wal.TypeSnapshot, Tenant: id, Data: data})
		seg := e.cfg.Journal.Seg()
		e.jmu.Unlock()
		if err != nil {
			if !routed {
				e.placer.Remove(id)
			}
			return fmt.Errorf("engine: install %q: %w", id, err)
		}
		e.smu.Lock()
		e.snapSeg[id] = seg
		e.smu.Unlock()
		t.sink.Snapshot(id, len(data), seg)
	}
	s.tenants[id] = t
	wireObserver(t)
	e.cfg.Sink.TenantRegistered(id)
	e.cfg.Sink.TenantMoved(id, "in")
	return nil
}
