package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"partalloc/internal/errs"
	"partalloc/internal/task"
	"partalloc/internal/wal"
)

// crashChildEnv points the helper process at its journal directory; the
// variable doubles as the guard that keeps TestCrashChild inert in
// normal test runs.
const crashChildEnv = "PARTALLOC_CRASH_DIR"

// crashFleet is the tenant fleet the crash child runs and the parent
// rebuilds. Block policy only: Degrade retunes d from wall-clock
// latency, which no two runs share, so placement determinism — the
// whole point of the test — holds for Block (and Shed) alone.
func crashFleet() []TenantSpec {
	return []TenantSpec{
		{ID: "basic", Algorithm: "basic", N: 16},
		{ID: "perry", Algorithm: "periodic", N: 32, D: 2, DSet: true},
		{ID: "lz", Algorithm: "lazy", N: 16, D: 1, DSet: true},
	}
}

func crashConfig(log *wal.Log) Config {
	return Config{Shards: 2, BatchSize: 8, MaxQueue: 32, Overload: Block, Journal: log, Rebuild: testRebuild}
}

// TestCrashChild is the helper body for TestSIGKILLRecovery, not a test:
// it journals submissions as fast as it can until the parent kills it
// with SIGKILL mid-ingest.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("crash-child helper; driven by TestSIGKILLRecovery")
	}
	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(crashConfig(log))
	fleet := crashFleet()
	streams := make([][]task.Event, len(fleet))
	for i, spec := range fleet {
		addSpecTenant(t, eng, spec)
		streams[i] = testStream(spec.N, 500_000, int64(i+1))
	}
	// Round-robin 5-event chunks across tenants, forever by test
	// standards — the parent's SIGKILL is the only way out.
	for off := 0; ; off += 5 {
		for i, spec := range fleet {
			evs := streams[i]
			if off >= len(evs) {
				t.Fatal("crash child exhausted its stream before being killed")
			}
			end := off + 5
			if end > len(evs) {
				end = len(evs)
			}
			if err := eng.Submit(spec.ID, evs[off:end]...); err != nil {
				t.Fatalf("child submit %s: %v", spec.ID, err)
			}
		}
	}
}

// TestSIGKILLRecovery is the crash-recovery gate: a child process
// ingesting through the journal is SIGKILLed mid-stream, the parent
// Recovers an engine from the surviving journal, and every tenant's
// CanonicalStats must be byte-identical to an uninterrupted engine fed
// exactly the journaled submissions. SIGKILL (not a clean close) proves
// the append-before-apply write path itself: whatever write(2) calls
// completed are the state, torn tail included.
func TestSIGKILLRecovery(t *testing.T) {
	if os.Getenv(crashChildEnv) != "" {
		t.Skip("already inside the crash child")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe, "-test.run=^TestCrashChild$")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	var childOut bytes.Buffer
	cmd.Stdout = &childOut
	cmd.Stderr = &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Kill only after the journal has grown well past the first few
	// records, so the SIGKILL lands mid-ingest, not before it. 64KiB is
	// on the order of a thousand Submit records — far enough to be mid
	// stream, small enough that even a race-instrumented child gets
	// there quickly.
	const killAfter = 64 << 10
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("journal never reached %d bytes; child output:\n%s", killAfter, childOut.String())
		}
		var total int64
		ents, _ := os.ReadDir(dir)
		for _, ent := range ents {
			if info, err := ent.Info(); err == nil {
				total += info.Size()
			}
		}
		if total >= killAfter {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err == nil {
		t.Fatalf("child exited cleanly instead of dying to SIGKILL; output:\n%s", childOut.String())
	}

	// Recover from the journal the kill left behind (Open repairs any
	// torn tail before Replay).
	rec, err := Recover(crashConfig(nil), dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rec.cfg.Journal.Close()

	// The uninterrupted reference: a journal-less engine fed the exact
	// journaled calls. Recovery already repaired the log, so this replay
	// sees precisely the records Recover saw.
	ref := New(Config{Shards: 2, BatchSize: 8, MaxQueue: 32, Overload: Block})
	err = wal.Replay(dir, func(ord int, wrec wal.Record) error {
		switch wrec.Type {
		case wal.TypeAddTenant:
			var spec TenantSpec
			if err := json.Unmarshal(wrec.Data, &spec); err != nil {
				return err
			}
			a, sched, host, err := testRebuild(spec)
			if err != nil {
				return err
			}
			return ref.AddTenantSpec(spec, a, sched, host)
		case wal.TypeSubmit:
			evs, err := wal.DecodeEvents(wrec.Data)
			if err != nil {
				return err
			}
			return ref.Submit(wrec.Tenant, evs...)
		default:
			return fmt.Errorf("record %d: the crash child only submits, got type %d", ord, wrec.Type)
		}
	})
	if err != nil {
		t.Fatalf("reference replay: %v", err)
	}

	want, got := ref.Stats(), rec.Stats()
	if len(got) != len(crashFleet()) || len(got) != len(want) {
		t.Fatalf("recovered %d tenants, reference %d, fleet %d", len(got), len(want), len(crashFleet()))
	}
	for i := range want {
		w, g := CanonicalStats(want[i]), CanonicalStats(got[i])
		if !bytes.Equal(w, g) {
			t.Errorf("%s: recovered stats diverge from uninterrupted run:\n  ref: %s\n  rec: %s", want[i].Tenant, w, g)
		}
		if got[i].Events == 0 {
			t.Errorf("%s: recovered zero events; the kill landed before ingestion", got[i].Tenant)
		}
	}

	// Life goes on: the recovered engine ingests and journals further.
	if err := rec.Submit("basic", arrivals(9_000_000, 3, 1)...); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush("basic"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "00000001.wal")); err != nil {
		t.Errorf("journal first segment missing after recovery: %v", err)
	}
	if err := rec.Err("basic"); err != nil && !errors.Is(err, errs.ErrTenantPoisoned) {
		t.Fatal(err)
	}
}
