package core

import (
	"testing"

	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// TestPeriodicLazyModeMatchesLazy pins the degradation knob's core
// guarantee: A_M(d) with the on-demand trigger enabled is step-for-step
// identical to A_M-lazy(d) — same placements, loads, and reallocation
// ledger on the same stream. The engine's Degrade policy relies on this
// when it flips a tenant's eager A_M to lazy under load.
func TestPeriodicLazyModeMatchesLazy(t *testing.T) {
	m := tree.MustNew(64)
	seq := randomEventStream(m.N(), 2000, 7)
	for _, d := range []int{0, 1, 2} {
		p := NewPeriodic(m, d, DecreasingSize)
		if !p.SetLazyRealloc(true) {
			t.Fatalf("d=%d: SetLazyRealloc refused", d)
		}
		l := NewLazy(m, d, DecreasingSize)
		for i, e := range seq {
			switch e.Kind {
			case task.Arrive:
				tk := task.Task{ID: e.Task, Size: e.Size}
				pv, lv := p.Arrive(tk), l.Arrive(tk)
				if pv != lv {
					t.Fatalf("d=%d event %d: lazy-mode A_M placed at %d, A_M-lazy at %d", d, i, pv, lv)
				}
			case task.Depart:
				p.Depart(e.Task)
				l.Depart(e.Task)
			}
			if p.MaxLoad() != l.MaxLoad() {
				t.Fatalf("d=%d event %d: MaxLoad %d vs %d", d, i, p.MaxLoad(), l.MaxLoad())
			}
		}
		if p.ReallocStats() != l.ReallocStats() {
			t.Fatalf("d=%d: ReallocStats %+v vs %+v", d, p.ReallocStats(), l.ReallocStats())
		}
	}
}

// TestDegradableKnobs covers the knob contract: live retuning applies
// from the next arrival, greedy-delegation instances refuse, and an
// A_M-lazy cannot leave its on-demand trigger.
func TestDegradableKnobs(t *testing.T) {
	m := tree.MustNew(64)

	p := NewPeriodic(m, 1, DecreasingSize)
	var _ Degradable = p
	if p.EffectiveD() != 1 || p.LazyRealloc() {
		t.Fatalf("fresh A_M(1): d=%d lazy=%v", p.EffectiveD(), p.LazyRealloc())
	}
	if !p.SetEffectiveD(4) || p.EffectiveD() != 4 {
		t.Fatal("SetEffectiveD(4) refused on copy-mode A_M")
	}
	if p.SetEffectiveD(-1) {
		t.Fatal("SetEffectiveD(-1) must refuse: ∞ is a construction-time mode")
	}
	// Raising d cuts reallocations: with d beyond the stream's total
	// arrived size, no further reallocation can fire.
	seq := randomEventStream(m.N(), 500, 11)
	if !p.SetEffectiveD(1 << 20) {
		t.Fatal("SetEffectiveD(big) refused")
	}
	before := p.ReallocStats().Reallocations
	ApplyEvents(p, seq)
	if got := p.ReallocStats().Reallocations; got != before {
		t.Fatalf("d=2^20 still reallocated: %d → %d", before, got)
	}

	// Greedy-delegation instances have nothing to retune.
	g := NewPeriodic(m, -1, DecreasingSize)
	if g.SetEffectiveD(2) || g.SetLazyRealloc(true) {
		t.Fatal("greedy-delegation A_M accepted a knob change")
	}
	lg := NewLazy(m, -1, DecreasingSize)
	if lg.SetEffectiveD(2) || lg.SetLazyRealloc(true) {
		t.Fatal("greedy-delegation A_M-lazy accepted a knob change")
	}

	l := NewLazy(m, 2, DecreasingSize)
	var _ Degradable = l
	if !l.LazyRealloc() || !l.SetLazyRealloc(true) {
		t.Fatal("A_M-lazy should report and accept lazy=true")
	}
	if l.SetLazyRealloc(false) {
		t.Fatal("A_M-lazy cannot leave its on-demand trigger")
	}
	if !l.SetEffectiveD(5) || l.EffectiveD() != 5 {
		t.Fatal("SetEffectiveD refused on copy-mode A_M-lazy")
	}
}
