package core

import (
	"math/rand"
	"testing"

	"partalloc/internal/mathx"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

func lazyFactories() []Factory {
	return []Factory{LazyFactory(0), LazyFactory(1), LazyFactory(2), LazyFactory(5)}
}

func TestLazyAllocatorContract(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, f := range lazyFactories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			n := 1 << (2 + rng.Intn(5))
			m := tree.MustNew(n)
			a := f.New(m)
			seq := randomSequence(rng, n, 400)
			active := make(map[task.ID]int)
			for _, e := range seq.Events {
				switch e.Kind {
				case task.Arrive:
					v := a.Arrive(task.Task{ID: e.Task, Size: e.Size})
					if m.Size(v) != e.Size {
						t.Fatalf("placed size-%d task on size-%d submachine", e.Size, m.Size(v))
					}
					active[e.Task] = e.Size
				case task.Depart:
					a.Depart(e.Task)
					delete(active, e.Task)
				}
				loads := make([]int, n)
				for id := range active {
					v, ok := a.Placement(id)
					if !ok {
						t.Fatalf("lost placement of %d", id)
					}
					lo, hi := m.PERange(v)
					for p := lo; p < hi; p++ {
						loads[p]++
					}
				}
				got := a.PELoads()
				for p := range loads {
					if loads[p] != got[p] {
						t.Fatalf("PE %d load %d, want %d", p, got[p], loads[p])
					}
				}
			}
		})
	}
}

// Lazy satisfies the same additive bound L* + d as eager A_M (see the
// type's doc comment for why), hence the Theorem 4.2 multiplicative bound.
func TestLazyAdditiveBound(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 25; trial++ {
		n := 1 << (3 + rng.Intn(5))
		m := tree.MustNew(n)
		seq := randomSequence(rng, n, 300)
		lstar := seq.OptimalLoad(n)
		for d := 0; d <= mathx.GreedyBound(n); d++ {
			a := NewLazy(m, d, DecreasingSize)
			got := runSequence(a, seq)
			if got > lstar+d {
				t.Fatalf("trial %d N=%d d=%d: lazy load %d > L*+d = %d",
					trial, n, d, got, lstar+d)
			}
		}
	}
}

// Lazy with d = 0 can always reallocate, so like A_C it achieves L*.
func TestLazyZeroAchievesOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 25; trial++ {
		n := 1 << (1 + rng.Intn(7))
		m := tree.MustNew(n)
		a := NewLazy(m, 0, DecreasingSize)
		seq := randomSequence(rng, n, 300)
		got := runSequence(a, seq)
		want := seq.OptimalLoad(n)
		if got != want {
			t.Fatalf("trial %d N=%d: lazy(0) load %d, optimal %d", trial, n, got, want)
		}
	}
}

// Lazy never reallocates more often than it is entitled to: consecutive
// reallocations are at least d·N arrived size apart.
func TestLazyRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	n := 64
	m := tree.MustNew(n)
	for _, d := range []int{1, 2, 3} {
		a := NewLazy(m, d, DecreasingSize)
		b := task.NewBuilder()
		var arrivedSinceRealloc int64
		prevReallocs := 0
		for i := 0; i < 3000; i++ {
			act := b.Active()
			if len(act) > 0 && rng.Intn(2) == 0 {
				id := act[rng.Intn(len(act))]
				b.Depart(id)
				a.Depart(id)
			} else {
				size := 1 << rng.Intn(7)
				id := b.Arrive(size)
				arrivedSinceRealloc += int64(size)
				a.Arrive(task.Task{ID: id, Size: size})
				if r := a.ReallocStats().Reallocations; r > prevReallocs {
					if r != prevReallocs+1 {
						t.Fatalf("two reallocations in one arrival")
					}
					if arrivedSinceRealloc < int64(d)*int64(n) {
						t.Fatalf("d=%d: reallocated after only %d arrived size (< %d)",
							d, arrivedSinceRealloc, d*n)
					}
					arrivedSinceRealloc = 0
					prevReallocs = r
				}
			}
		}
		if prevReallocs == 0 {
			t.Fatalf("d=%d: lazy never reallocated in 3000 events; test vacuous", d)
		}
	}
}

// Lazy reallocates no more often than eager A_M on identical input.
func TestLazyReallocatesAtMostAsOftenAsEager(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 10; trial++ {
		n := 128
		m := tree.MustNew(n)
		seq := randomSequence(rng, n, 2000)
		for _, d := range []int{1, 2, 3} {
			lazy := NewLazy(m, d, DecreasingSize)
			eager := NewPeriodic(m, d, DecreasingSize)
			runSequence(lazy, seq)
			runSequence(eager, seq)
			lr := lazy.ReallocStats().Reallocations
			er := eager.ReallocStats().Reallocations
			if lr > er {
				t.Errorf("trial %d d=%d: lazy reallocated %d > eager %d", trial, d, lr, er)
			}
		}
	}
}
