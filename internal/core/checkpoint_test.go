package core

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"partalloc/internal/mathx"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// chkConfig is one checkpointable allocator configuration under test.
// build constructs the instance that lives the trajectory; fresh
// constructs the restore target, deliberately differing where the codec
// must win (different PRNG seed, lazy flag off) to prove Restore imposes
// the snapshotted state rather than inheriting the constructor's.
type chkConfig struct {
	name   string
	build  func(m *tree.Machine) Allocator
	fresh  func(m *tree.Machine) Allocator
	faulty bool // include FailPE/RecoverPE ops in the script
}

func chkConfigs() []chkConfig {
	lazyPeriodic := func(m *tree.Machine) Allocator {
		p := NewPeriodic(m, 2, ArrivalOrder)
		p.SetLazyRealloc(true)
		return p
	}
	return []chkConfig{
		{"greedy", mk(NewGreedy), mk(NewGreedy), true},
		{"basic", mk(NewBasic), mk(NewBasic), true},
		{"constant", mk(NewConstant), mk(NewConstant), true},
		{"periodic-d2", mkD(NewPeriodic, 2), mkD(NewPeriodic, 2), true},
		{"periodic-dinf", mkD(NewPeriodic, -1), mkD(NewPeriodic, -1), true},
		{"periodic-lazy", lazyPeriodic, mkD(NewPeriodic, 2), true},
		{"lazy-d1", mkD(NewLazy, 1), mkD(NewLazy, 1), true},
		{"lazy-dinf", mkD(NewLazy, -1), mkD(NewLazy, -1), true},
		{"random", mkSeed(NewRandom, 42), mkSeed(NewRandom, 999), false},
		{"twochoice", mkSeed(NewTwoChoice, 42), mkSeed(NewTwoChoice, 999), false},
		{"greedytie", mkSeed(NewGreedyRandomTie, 42), mkSeed(NewGreedyRandomTie, 999), false},
	}
}

func mk[A Allocator](f func(*tree.Machine) A) func(*tree.Machine) Allocator {
	return func(m *tree.Machine) Allocator { return f(m) }
}

func mkD[A Allocator](f func(*tree.Machine, int, ReallocOrder) A, d int) func(*tree.Machine) Allocator {
	return func(m *tree.Machine) Allocator { return f(m, d, DecreasingSize) }
}

func mkSeed[A Allocator](f func(*tree.Machine, int64) A, seed int64) func(*tree.Machine) Allocator {
	return func(m *tree.Machine) Allocator { return f(m, seed) }
}

// chkOp is one scripted event: arrive, depart, fail, or recover.
type chkOp struct {
	kind byte // 'a', 'd', 'f', 'r'
	t    task.Task
	id   task.ID
	pe   int
}

// chkScript generates a deterministic mixed trajectory. Sizes stay ≤ n/2
// so a single concurrent failed PE never strands a victim with no
// healthy same-size submachine.
func chkScript(seed int64, n, steps int, faults bool) []chkOp {
	rng := rand.New(rand.NewSource(seed))
	var (
		ops    []chkOp
		active []task.ID
		nextID task.ID = 1
		failed         = -1
	)
	maxExp := mathx.Log2(n) - 1
	for i := 0; i < steps; i++ {
		switch {
		case len(active) > 0 && rng.Intn(4) == 0:
			j := rng.Intn(len(active))
			ops = append(ops, chkOp{kind: 'd', id: active[j]})
			active = append(active[:j], active[j+1:]...)
		case faults && failed < 0 && rng.Intn(8) == 0:
			failed = rng.Intn(n)
			ops = append(ops, chkOp{kind: 'f', pe: failed})
		case faults && failed >= 0 && rng.Intn(6) == 0:
			ops = append(ops, chkOp{kind: 'r', pe: failed})
			failed = -1
		default:
			size := 1 << rng.Intn(maxExp+1)
			ops = append(ops, chkOp{kind: 'a', t: task.Task{ID: nextID, Size: size}})
			active = append(active, nextID)
			nextID++
		}
	}
	return ops
}

func applyChkOp(a Allocator, op chkOp) tree.Node {
	switch op.kind {
	case 'a':
		return a.Arrive(op.t)
	case 'd':
		a.Depart(op.id)
	case 'f':
		a.(FaultTolerant).FailPE(op.pe)
	case 'r':
		a.(FaultTolerant).RecoverPE(op.pe)
	}
	return 0
}

// TestSnapshotRoundTripTrajectory is the codec's headline gate: snapshot
// a live mid-run allocator, restore into a fresh (differently seeded)
// instance, and drive both through the identical tail. Every placement
// decision, every load, and the final snapshots must be byte-identical —
// i.e. restoring is indistinguishable from never having snapshotted.
func TestSnapshotRoundTripTrajectory(t *testing.T) {
	const n, steps, cut = 16, 400, 250
	for _, tc := range chkConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			script := chkScript(7, n, steps, tc.faulty)
			orig := tc.build(tree.MustNew(n))
			for _, op := range script[:cut] {
				applyChkOp(orig, op)
			}
			snap := orig.(Checkpointable).Snapshot()
			if again := orig.(Checkpointable).Snapshot(); !bytes.Equal(snap, again) {
				t.Fatal("Snapshot is not deterministic: two calls on the same state differ")
			}
			rest := tc.fresh(tree.MustNew(n))
			if err := rest.(Checkpointable).Restore(snap); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if got := rest.(Checkpointable).Snapshot(); !bytes.Equal(got, snap) {
				t.Fatalf("snapshot(restore(snapshot)) differs: %d vs %d bytes", len(got), len(snap))
			}
			for i, op := range script[cut:] {
				va := applyChkOp(orig, op)
				vb := applyChkOp(rest, op)
				if va != vb {
					t.Fatalf("tail op %d (%c): original placed at %d, restored at %d", i, op.kind, va, vb)
				}
				if la, lb := orig.MaxLoad(), rest.MaxLoad(); la != lb {
					t.Fatalf("tail op %d: MaxLoad diverged %d vs %d", i, la, lb)
				}
			}
			if !reflect.DeepEqual(orig.PELoads(), rest.PELoads()) {
				t.Fatal("final PE loads diverged")
			}
			sa := orig.(Checkpointable).Snapshot()
			sb := rest.(Checkpointable).Snapshot()
			if !bytes.Equal(sa, sb) {
				t.Fatal("final snapshots diverged after identical tails")
			}
		})
	}
}

// TestSnapshotRestoreErrors exercises the rejection paths: every
// truncation and every single-byte corruption of a real snapshot must
// return an error wrapping ErrBadSnapshot (CRC-32C detects all
// single-byte damage), never panic — and a failed Restore must leave the
// receiver untouched.
func TestSnapshotRestoreErrors(t *testing.T) {
	const n = 16
	for _, tc := range chkConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			script := chkScript(11, n, 200, tc.faulty)
			a := tc.build(tree.MustNew(n))
			for _, op := range script {
				applyChkOp(a, op)
			}
			c := a.(Checkpointable)
			snap := c.Snapshot()
			before := append([]byte(nil), snap...)
			for cut := 0; cut < len(snap); cut++ {
				if err := c.Restore(snap[:cut]); !errors.Is(err, ErrBadSnapshot) {
					t.Fatalf("truncation to %d bytes: got %v, want ErrBadSnapshot", cut, err)
				}
			}
			for i := range snap {
				mut := append([]byte(nil), snap...)
				mut[i] ^= 0x5a
				if err := c.Restore(mut); !errors.Is(err, ErrBadSnapshot) {
					t.Fatalf("corrupt byte %d: got %v, want ErrBadSnapshot", i, err)
				}
			}
			if got := c.Snapshot(); !bytes.Equal(got, before) {
				t.Fatal("failed Restore mutated the receiver")
			}
		})
	}
}

// TestSnapshotCrossAlgorithm verifies the algorithm tag: a snapshot of
// one allocator must be rejected by every other.
func TestSnapshotCrossAlgorithm(t *testing.T) {
	const n = 16
	cfgs := chkConfigs()
	snaps := make([][]byte, len(cfgs))
	tags := make([]byte, len(cfgs))
	for i, tc := range cfgs {
		a := tc.build(tree.MustNew(n))
		for _, op := range chkScript(3, n, 100, tc.faulty) {
			applyChkOp(a, op)
		}
		snaps[i] = a.(Checkpointable).Snapshot()
		tags[i] = snaps[i][3]
	}
	for i, tc := range cfgs {
		target := tc.fresh(tree.MustNew(n)).(Checkpointable)
		for j := range cfgs {
			if tags[j] == tags[i] {
				continue // periodic-* share a codec tag by design
			}
			if err := target.Restore(snaps[j]); !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("%s accepted a %s snapshot: %v", tc.name, cfgs[j].name, err)
			}
		}
	}
}

// TestSnapshotWrongMachine verifies the machine-size check.
func TestSnapshotWrongMachine(t *testing.T) {
	for _, tc := range chkConfigs() {
		a := tc.build(tree.MustNew(16))
		for _, op := range chkScript(5, 16, 80, tc.faulty) {
			applyChkOp(a, op)
		}
		snap := a.(Checkpointable).Snapshot()
		small := tc.fresh(tree.MustNew(8)).(Checkpointable)
		if err := small.Restore(snap); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("%s: N=8 instance accepted an N=16 snapshot: %v", tc.name, err)
		}
	}
}
