package core

import (
	"fmt"
	"sort"

	"partalloc/internal/copies"
	"partalloc/internal/loadtree"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// faultSet tracks failed PEs and forced-migration accounting; embedded by
// every fault-tolerant allocator so the bookkeeping cannot drift apart.
type faultSet struct {
	failed []int // sorted PE numbers
	forced ForcedStats
}

// isFailed reports whether pe is currently failed.
func (f *faultSet) isFailed(pe int) bool {
	i := sort.SearchInts(f.failed, pe)
	return i < len(f.failed) && f.failed[i] == pe
}

// markFailed validates and records a new failure.
func (f *faultSet) markFailed(m *tree.Machine, pe int) {
	if pe < 0 || pe >= m.N() {
		panic(fmt.Sprintf("core: FailPE(%d) out of range for N=%d", pe, m.N()))
	}
	if f.isFailed(pe) {
		panic(fmt.Sprintf("core: FailPE(%d): PE already failed", pe))
	}
	f.failed = append(f.failed, pe)
	sort.Ints(f.failed)
	f.forced.Failures++
}

// markRecovered validates and records a recovery.
func (f *faultSet) markRecovered(m *tree.Machine, pe int) {
	if pe < 0 || pe >= m.N() {
		panic(fmt.Sprintf("core: RecoverPE(%d) out of range for N=%d", pe, m.N()))
	}
	i := sort.SearchInts(f.failed, pe)
	if i >= len(f.failed) || f.failed[i] != pe {
		panic(fmt.Sprintf("core: RecoverPE(%d): PE is not failed", pe))
	}
	f.failed = append(f.failed[:i], f.failed[i+1:]...)
	f.forced.Recoveries++
}

// FailedPEs implements FaultTolerant.
func (f *faultSet) FailedPEs() []int { return append([]int(nil), f.failed...) }

// ForcedStats implements FaultTolerant.
func (f *faultSet) ForcedStats() ForcedStats { return f.forced }

// recordMigrations charges forced moves to the fault ledger.
func (f *faultSet) recordMigrations(migs []Migration, m *tree.Machine) {
	for _, mg := range migs {
		f.forced.Migrations++
		f.forced.MovedPEs += int64(m.Size(mg.To))
	}
}

// affectedTasks returns the active tasks whose submachine covers leaf,
// ordered by decreasing size then increasing ID (the A_R first-fit order,
// so forced re-placement packs as tightly as the reallocation procedure).
func affectedTasks(m *tree.Machine, placed map[task.ID]placementRec, leaf tree.Node) []task.Task {
	var out []task.Task
	for id, rec := range placed {
		if m.Contains(rec.node, leaf) {
			out = append(out, task.Task{ID: id, Size: rec.size})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// failInCopies implements FailPE for the copies-based allocators (A_B,
// A_M, A_C, lazy): vacate every task covering the failed leaf, block the
// leaf in every copy (and all future ones), then re-place the evicted
// tasks first-fit-decreasing through the existing list — the same
// machinery procedure A_R uses, so the post-failure layout obeys the same
// packing discipline.
func failInCopies(m *tree.Machine, list *copies.List, loads *loadtree.Tree, placed map[task.ID]placementRec, pe int, observer MigrationObserver) []Migration {
	leaf := m.LeafOf(pe)
	victims := affectedTasks(m, placed, leaf)
	for _, t := range victims {
		rec := placed[t.ID]
		list.Vacate(rec.copyIdx, rec.node)
		loads.Remove(rec.node)
	}
	list.Block(leaf)
	migs := make([]Migration, 0, len(victims))
	for _, t := range victims {
		old := placed[t.ID]
		ci, v := list.Place(t.Size)
		loads.Place(v)
		placed[t.ID] = placementRec{copyIdx: ci, node: v, size: t.Size}
		migs = append(migs, Migration{ID: t.ID, From: old.node, To: v})
		if observer != nil {
			observer(t.ID, old.node, v)
		}
	}
	return migs
}
