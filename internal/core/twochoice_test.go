package core

import (
	"math"
	"math/rand"
	"testing"

	"partalloc/internal/mathx"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

func TestTwoChoiceContract(t *testing.T) {
	m := tree.MustNew(16)
	a := NewTwoChoice(m, 1)
	v := a.Arrive(task.Task{ID: 1, Size: 4})
	if m.Size(v) != 4 || a.Active() != 1 {
		t.Fatal("placement wrong")
	}
	if got, ok := a.Placement(1); !ok || got != v {
		t.Fatal("placement lookup wrong")
	}
	a.Depart(1)
	if a.Active() != 0 || a.MaxLoad() != 0 {
		t.Fatal("departure wrong")
	}
}

func TestTwoChoicePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	m := tree.MustNew(8)
	mustPanic("unknown depart", func() { NewTwoChoice(m, 1).Depart(9) })
	mustPanic("dup arrive", func() {
		a := NewTwoChoice(m, 1)
		a.Arrive(task.Task{ID: 1, Size: 1})
		a.Arrive(task.Task{ID: 1, Size: 1})
	})
	mustPanic("bad size", func() { NewTwoChoice(m, 1).Arrive(task.Task{ID: 1, Size: 16}) })
}

// The power-of-two-choices effect: on the balls-into-bins workload
// (N size-1 tasks, L* = 1) the two-choice max load must be well below the
// one-choice (A_Rand) max load, on average.
func TestTwoChoiceBeatsOneChoice(t *testing.T) {
	const n = 1 << 12
	b := task.NewBuilder()
	for i := 0; i < n; i++ {
		b.Arrive(1)
	}
	seq := b.Sequence()
	const seeds = 20
	var one, two float64
	for s := int64(0); s < seeds; s++ {
		one += float64(runSequence(NewRandom(tree.MustNew(n), s), seq))
		two += float64(runSequence(NewTwoChoice(tree.MustNew(n), s), seq))
	}
	one /= seeds
	two /= seeds
	if two >= one {
		t.Fatalf("two-choice mean %g not below one-choice %g", two, one)
	}
	// Expected scales: one-choice ≈ ln n/ln ln n ≈ 3.4; two-choice ≈
	// log2 ln n ≈ 3. Allow wide but meaningful margins.
	logN := float64(mathx.Log2(n))
	if two > math.Log2(logN)+3 {
		t.Errorf("two-choice mean %g far above Θ(log log N) ≈ %g", two, math.Log2(logN))
	}
}

// Under churn the allocator must stay consistent (exercised via the shared
// contract machinery).
func TestTwoChoiceChurnConsistency(t *testing.T) {
	m := tree.MustNew(32)
	a := NewTwoChoice(m, 3)
	seqRng := rand.New(rand.NewSource(17))
	active := map[task.ID]tree.Node{}
	nextID := task.ID(1)
	for step := 0; step < 2000; step++ {
		if len(active) > 0 && seqRng.Intn(3) == 0 {
			for id := range active {
				a.Depart(id)
				delete(active, id)
				break
			}
		} else {
			id := nextID
			nextID++
			active[id] = a.Arrive(task.Task{ID: id, Size: 1 << seqRng.Intn(6)})
		}
		// Spot-check loads.
		loads := a.PELoads()
		want := make([]int, 32)
		for _, v := range active {
			lo, hi := m.PERange(v)
			for p := lo; p < hi; p++ {
				want[p]++
			}
		}
		for p := range want {
			if want[p] != loads[p] {
				t.Fatalf("step %d: PE %d load %d want %d", step, p, loads[p], want[p])
			}
		}
	}
}
