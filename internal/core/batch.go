package core

import "partalloc/internal/task"

// BatchApplier is implemented by allocators that can apply a slice of
// events more cheaply than calling Arrive/Depart once per event. The
// semantics are identical to the per-event loop — same placements, same
// reallocation triggers, same final loads and ReallocStats — only the
// aggregate bookkeeping is amortized: the load tree runs in deferred mode
// for the duration of the batch, so k events cost O(k) cover updates plus
// one O(N) rebuild instead of k · O(log²N) eager updates.
//
// A_G (and A_M/Lazy in greedy mode) cannot implement this profitably:
// greedy placement queries LeftmostMinLoad on every arrival, which would
// force a rebuild per event anyway.
type BatchApplier interface {
	ApplyBatch(evs []task.Event)
}

// ApplyEvents applies a slice of events through the plain per-event
// Arrive/Depart path. It is the serial fallback for allocators that do not
// implement BatchApplier, and the reference behaviour batch application
// must match.
func ApplyEvents(a Allocator, evs []task.Event) {
	for _, e := range evs {
		switch e.Kind {
		case task.Arrive:
			a.Arrive(task.Task{ID: e.Task, Size: e.Size})
		case task.Depart:
			a.Depart(e.Task)
		}
	}
}

// ApplyBatch implements BatchApplier for A_B. Placement is first-fit over
// copies and never reads the load tree, so the whole batch runs deferred.
func (b *Basic) ApplyBatch(evs []task.Event) {
	b.loads.BeginDeferred()
	ApplyEvents(b, evs)
	b.loads.EndDeferred()
}

// ApplyBatch implements BatchApplier for A_M. The d·N reallocation
// threshold is evaluated per arrival exactly as in Arrive, so batch and
// serial application reallocate at the same events. reallocate() may swap
// the load tree mid-batch; the replacement inherits deferred mode (see
// reallocate), so the final EndDeferred lands on whichever tree is current.
func (p *Periodic) ApplyBatch(evs []task.Event) {
	if p.greedy != nil {
		ApplyEvents(p, evs)
		return
	}
	p.loads.BeginDeferred()
	ApplyEvents(p, evs)
	p.loads.EndDeferred()
}

// ApplyBatch implements BatchApplier for Lazy. Its reallocation trigger
// reads the copy list (FindVacant), never the load tree, so deferring the
// aggregates cannot change any decision.
func (l *Lazy) ApplyBatch(evs []task.Event) {
	if l.greedy != nil {
		ApplyEvents(l, evs)
		return
	}
	l.loads.BeginDeferred()
	ApplyEvents(l, evs)
	l.loads.EndDeferred()
}

// ApplyBatch implements BatchApplier for A_Rand, whose placement is
// oblivious to loads entirely.
func (r *Random) ApplyBatch(evs []task.Event) {
	r.loads.BeginDeferred()
	ApplyEvents(r, evs)
	r.loads.EndDeferred()
}
