// Checkpointable state: versioned, CRC-guarded snapshot codecs for every
// allocator.
//
// The paper's central asymmetry (Lemma 2: A_R repacks the whole active
// set from scratch) means an allocator's *state* is tiny compared to its
// event *history*: the active placements, the fault set, and the d·N
// budget counters describe everything, while the journal that produced
// them grows without bound. Snapshot serializes exactly that state —
// canonical, deterministic bytes — and Restore rebuilds a live allocator
// from them, letting the engine checkpoint tenants, truncate WAL
// segments, and recover in O(tail) instead of O(history).
//
// Codec rules, in order of importance:
//
//   - Deterministic: the same logical state always yields the same bytes
//     (maps are emitted in sorted key order), so snapshot → restore →
//     snapshot is byte-identical and snapshots diff cleanly.
//   - Minimal: derived structures — the load tree, Greedy's failedUnder
//     counters, the copy list's first-fit hints, blocked leaves — are
//     rebuilt from first principles on Restore, never serialized.
//     (First-fit hints are lower bounds; restoring them as zero is
//     behavior-identical, just a cold cache.)
//   - Guarded: a trailing CRC-32C plus magic/version/algorithm header
//     rejects foreign or corrupt bytes up front, and every decoded value
//     is range-checked against the machine before it touches live state.
//     Restore never panics on hostile input and never retains the input
//     slice; on error the receiver is left unchanged.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"

	"partalloc/internal/copies"
	"partalloc/internal/loadtree"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// Checkpointable is implemented by allocators whose full state can be
// serialized and later restored. Snapshot returns a self-contained,
// versioned, CRC-guarded description of the allocator's live state;
// Restore replaces the receiver's state with the snapshotted one. The
// two ends must be the same algorithm on a machine of the same size.
//
// Contract: Restore(Snapshot()) leaves the allocator on a trajectory
// byte-identical to never having been snapshotted at all, and a second
// Snapshot after Restore returns the same bytes. Restore returns an
// error (wrapping ErrBadSnapshot) on corrupt, truncated, or mismatched
// input — it never panics — and on error the receiver is unchanged.
// Restore copies everything it needs out of data; the caller may reuse
// the slice immediately.
type Checkpointable interface {
	Snapshot() []byte
	Restore(data []byte) error
}

// ErrBadSnapshot is wrapped by every Restore failure: bad magic, version
// or algorithm mismatch, CRC failure, truncation, or any decoded value
// that fails validation against the machine.
var ErrBadSnapshot = errors.New("core: bad snapshot")

const (
	snapMagic0  = 'p'
	snapMagic1  = 'S'
	snapVersion = 1

	tagGreedy byte = iota + 1
	tagBasic
	tagPeriodic
	tagLazy
	tagRandom
	tagTwoChoice
	tagGreedyTie
)

// Decode-time plausibility caps. CRC catches random corruption, but a
// coverage-guided fuzzer can learn to fix checksums, so bounds that
// protect allocation and time must not depend on the checksum alone.
const (
	// maxSnapshotCopies bounds the copy-list length: each copy costs
	// O(N) memory, so an absurd count must fail before Grow runs.
	// Legitimate lists hold at most ~peak-concurrent-tasks copies.
	maxSnapshotCopies = 1 << 20
	// maxSnapshotCells bounds numCopies·N, the total memory a restored
	// copy list may take (in tree cells).
	maxSnapshotCells = 1 << 26
	// maxSnapshotDraws bounds PRNG fast-forward work on Restore. Real
	// trajectories draw a handful of values per arrival; 2^24 raw draws
	// is orders of magnitude past any workload the engine runs, and keeps
	// the worst-case fast-forward under ~50ms.
	maxSnapshotDraws = 1 << 24
)

var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

// guardRestore converts a panic escaping a restore body (e.g. a copies
// invariant violation on bytes that pass the CRC but describe an
// impossible layout) into an ErrBadSnapshot error.
func guardRestore(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: restore panicked: %v", ErrBadSnapshot, r)
		}
	}()
	return fn()
}

// snapEnc builds a snapshot: header, varint payload, trailing CRC-32C.
type snapEnc struct{ b []byte }

func newSnapEnc(tag byte) *snapEnc {
	return &snapEnc{b: []byte{snapMagic0, snapMagic1, snapVersion, tag}}
}

func (e *snapEnc) u(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *snapEnc) i(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *snapEnc) byte(v byte) { e.b = append(e.b, v) }

func (e *snapEnc) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

// finish appends the CRC over everything emitted so far and returns the
// completed snapshot.
func (e *snapEnc) finish() []byte {
	return binary.LittleEndian.AppendUint32(e.b, crc32.Checksum(e.b, snapCRCTable))
}

// snapDec consumes a verified snapshot payload with a sticky error, so
// decode sequences read linearly and check once at the end.
type snapDec struct {
	b   []byte
	err error
}

// openSnap verifies length, CRC, magic, version, and algorithm tag, and
// returns a decoder positioned at the payload.
func openSnap(data []byte, tag byte) (*snapDec, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the smallest frame", ErrBadSnapshot, len(data))
	}
	body := data[:len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, snapCRCTable); got != sum {
		return nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrBadSnapshot, sum, got)
	}
	if body[0] != snapMagic0 || body[1] != snapMagic1 {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, body[:2])
	}
	if body[2] != snapVersion {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrBadSnapshot, body[2], snapVersion)
	}
	if body[3] != tag {
		return nil, fmt.Errorf("%w: snapshot of algorithm tag %d, restoring tag %d", ErrBadSnapshot, body[3], tag)
	}
	return &snapDec{b: body[4:]}, nil
}

func (d *snapDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrBadSnapshot, fmt.Sprintf(format, args...))
	}
}

func (d *snapDec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *snapDec) i() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *snapDec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *snapDec) bool() bool { return d.byte() != 0 }

// count reads a collection length and bounds it by the bytes remaining
// (every element costs at least minBytes), so hostile lengths fail
// before any allocation.
func (d *snapDec) count(what string, minBytes int) int {
	v := d.u()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b)/minBytes)+1 {
		d.fail("%s count %d exceeds remaining payload", what, v)
		return 0
	}
	return int(v)
}

// close verifies the whole payload was consumed exactly.
func (d *snapDec) close() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(d.b))
	}
	return nil
}

// machineN reads and validates the machine-size field against m.
func (d *snapDec) machineN(m *tree.Machine) {
	n := d.u()
	if d.err == nil && n != uint64(m.N()) {
		d.fail("snapshot of an N=%d machine, restoring onto N=%d", n, m.N())
	}
}

// --- shared sub-codecs -------------------------------------------------

// encPlacedNodes emits a task→node placement map in ascending task order.
func (e *snapEnc) encPlacedNodes(placed map[task.ID]tree.Node) {
	ids := make([]task.ID, 0, len(placed))
	for id := range placed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.u(uint64(len(ids)))
	for _, id := range ids {
		e.i(int64(id))
		e.u(uint64(placed[id]))
	}
}

// decPlacedNodes reads a task→node map, enforcing strictly ascending IDs
// (the canonical encoding, which also rules out duplicates) and valid
// nodes.
func decPlacedNodes(d *snapDec, m *tree.Machine) map[task.ID]tree.Node {
	n := d.count("placement", 2)
	placed := make(map[task.ID]tree.Node, n)
	prev := int64(0)
	for k := 0; k < n; k++ {
		id := d.i()
		v := tree.Node(d.u())
		if d.err != nil {
			return nil
		}
		if k > 0 && id <= prev {
			d.fail("placement IDs not strictly ascending (%d after %d)", id, prev)
			return nil
		}
		prev = id
		if !m.Valid(v) {
			d.fail("task %d placed at invalid node %d", id, v)
			return nil
		}
		placed[task.ID(id)] = v
	}
	return placed
}

// encPlacedRecs emits a task→placementRec map in ascending task order.
// Sizes are derived (size == m.Size(node)), so only copy index and node
// are stored.
func (e *snapEnc) encPlacedRecs(placed map[task.ID]placementRec) {
	ids := make([]task.ID, 0, len(placed))
	for id := range placed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.u(uint64(len(ids)))
	for _, id := range ids {
		rec := placed[id]
		e.i(int64(id))
		e.u(uint64(rec.copyIdx))
		e.u(uint64(rec.node))
	}
}

// decPlacedRecs reads a task→placementRec map for a copy list of
// numCopies copies.
func decPlacedRecs(d *snapDec, m *tree.Machine, numCopies int) map[task.ID]placementRec {
	n := d.count("placement", 3)
	placed := make(map[task.ID]placementRec, n)
	prev := int64(0)
	for k := 0; k < n; k++ {
		id := d.i()
		ci := d.u()
		v := tree.Node(d.u())
		if d.err != nil {
			return nil
		}
		if k > 0 && id <= prev {
			d.fail("placement IDs not strictly ascending (%d after %d)", id, prev)
			return nil
		}
		prev = id
		if ci >= uint64(numCopies) {
			d.fail("task %d in copy %d of a %d-copy list", id, ci, numCopies)
			return nil
		}
		if !m.Valid(v) {
			d.fail("task %d placed at invalid node %d", id, v)
			return nil
		}
		placed[task.ID(id)] = placementRec{copyIdx: int(ci), node: v, size: m.Size(v)}
	}
	return placed
}

// encFaults emits the fault ledger: sorted failed PEs plus the forced-
// migration counters, which are *history* (not derivable from the failed
// set) and must survive restore without being re-counted.
func (e *snapEnc) encFaults(f *faultSet) {
	e.u(uint64(len(f.failed)))
	for _, pe := range f.failed {
		e.u(uint64(pe))
	}
	e.u(uint64(f.forced.Failures))
	e.u(uint64(f.forced.Recoveries))
	e.u(uint64(f.forced.Migrations))
	e.u(uint64(f.forced.MovedPEs))
}

// decFaults reads a fault ledger. The fields are assigned directly —
// going through markFailed would double-count ForcedStats.
func decFaults(d *snapDec, m *tree.Machine) faultSet {
	n := d.count("failed PE", 1)
	var f faultSet
	if n > 0 {
		f.failed = make([]int, 0, n)
	}
	prev := -1
	for k := 0; k < n; k++ {
		pe := d.u()
		if d.err != nil {
			return faultSet{}
		}
		if pe >= uint64(m.N()) || int(pe) <= prev {
			d.fail("failed PE list invalid at %d (N=%d, prev %d)", pe, m.N(), prev)
			return faultSet{}
		}
		prev = int(pe)
		f.failed = append(f.failed, int(pe))
	}
	f.forced.Failures = int(d.u())
	f.forced.Recoveries = int(d.u())
	f.forced.Migrations = int64(d.u())
	f.forced.MovedPEs = int64(d.u())
	return f
}

// encRealloc emits the d·N-budget ledger of a reallocating allocator.
func (e *snapEnc) encRealloc(sinceRealo, activeSize int64, stats ReallocStats) {
	e.i(sinceRealo)
	e.i(activeSize)
	e.u(uint64(stats.Reallocations))
	e.u(uint64(stats.Migrations))
	e.u(uint64(stats.MovedPEs))
}

func decRealloc(d *snapDec) (sinceRealo, activeSize int64, stats ReallocStats) {
	sinceRealo = d.i()
	activeSize = d.i()
	stats.Reallocations = int(d.u())
	stats.Migrations = int64(d.u())
	stats.MovedPEs = int64(d.u())
	if d.err == nil && (sinceRealo < 0 || activeSize < 0) {
		d.fail("negative budget counters (%d, %d)", sinceRealo, activeSize)
	}
	return sinceRealo, activeSize, stats
}

// decCopies reads a copy-list length under the plausibility caps.
func decCopies(d *snapDec, m *tree.Machine) int {
	n := d.u()
	if d.err != nil {
		return 0
	}
	if n > maxSnapshotCopies || n*uint64(m.N()) > maxSnapshotCells {
		d.fail("implausible copy count %d for N=%d", n, m.N())
		return 0
	}
	return int(n)
}

// rebuildLoads derives a load tree from node placements.
func rebuildLoads(m *tree.Machine, nodes map[task.ID]tree.Node) *loadtree.Tree {
	loads := loadtree.New(m)
	loads.BeginDeferred()
	for _, v := range nodes {
		loads.Place(v)
	}
	loads.EndDeferred()
	return loads
}

// rebuildCopyState derives a copy list and load tree from decoded copy-
// mode state: failed leaves pre-blocked, numCopies fresh copies, then
// every placement occupied verbatim. Copy.Occupy still validates
// vacancy, blocking, and nesting, so a CRC-valid snapshot describing an
// impossible layout fails here (caught by guardRestore) instead of
// corrupting live state.
func rebuildCopyState(m *tree.Machine, numCopies int, failed []int, placed map[task.ID]placementRec) (*copies.List, *loadtree.Tree) {
	list := copies.NewList(m)
	for _, pe := range failed {
		list.Block(m.LeafOf(pe))
	}
	list.Grow(numCopies)
	loads := loadtree.New(m)
	loads.BeginDeferred()
	ids := make([]task.ID, 0, len(placed))
	for id := range placed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rec := placed[id]
		list.OccupyAt(rec.copyIdx, rec.node)
		loads.Place(rec.node)
	}
	loads.EndDeferred()
	return list, loads
}

// rebuildFailedUnder derives Greedy's per-node failure counters from the
// failed-PE list (nil when fault-free, matching the lazy allocation of
// the live path).
func rebuildFailedUnder(m *tree.Machine, failed []int) []int32 {
	if len(failed) == 0 {
		return nil
	}
	fu := make([]int32, m.NumNodes()+1)
	for _, pe := range failed {
		for v := m.LeafOf(pe); ; v = m.Parent(v) {
			fu[v]++
			if v == 1 {
				break
			}
		}
	}
	return fu
}

// --- counting PRNG source ---------------------------------------------

// countingSource wraps math/rand's default source and counts raw draws.
// rand.Rand's rejection sampling (Intn) consumes a data-dependent number
// of raw values, so the only faithful serialization of PRNG position is
// (seed, raw draws); Restore re-seeds and fast-forwards. Both Int63 and
// Uint64 advance the underlying generator by exactly one step, so the
// replay can use either regardless of the original call mix, and pure
// delegation keeps the stream byte-identical to rand.NewSource — the
// golden A_Rand trajectories do not move.
type countingSource struct {
	seed  int64
	draws uint64
	src   rand.Source64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.seed, s.draws = seed, 0
	s.src.Seed(seed)
}

// restoreTo re-seeds and replays draws raw steps, leaving the source at
// the exact snapshotted position.
func (s *countingSource) restoreTo(seed int64, draws uint64) {
	s.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Int63()
	}
	s.draws = draws
}

// encRNG / decRNG serialize a counting source's position.
func (e *snapEnc) encRNG(s *countingSource) {
	e.i(s.seed)
	e.u(s.draws)
}

func decRNG(d *snapDec) (seed int64, draws uint64) {
	seed = d.i()
	draws = d.u()
	if d.err == nil && draws > maxSnapshotDraws {
		d.fail("implausible PRNG position %d", draws)
	}
	return seed, draws
}

// --- A_G ---------------------------------------------------------------

// Snapshot implements Checkpointable.
func (g *Greedy) Snapshot() []byte {
	e := newSnapEnc(tagGreedy)
	e.u(uint64(g.m.N()))
	e.encPlacedNodes(g.placed)
	e.encFaults(&g.faults)
	return e.finish()
}

// Restore implements Checkpointable.
func (g *Greedy) Restore(data []byte) error {
	return guardRestore(func() error {
		d, err := openSnap(data, tagGreedy)
		if err != nil {
			return err
		}
		d.machineN(g.m)
		placed := decPlacedNodes(d, g.m)
		faults := decFaults(d, g.m)
		if err := d.close(); err != nil {
			return err
		}
		g.loads = rebuildLoads(g.m, placed)
		g.placed = placed
		g.faults = faults
		g.failedUnder = rebuildFailedUnder(g.m, faults.failed)
		return nil
	})
}

// --- A_B ---------------------------------------------------------------

// Snapshot implements Checkpointable.
func (b *Basic) Snapshot() []byte {
	e := newSnapEnc(tagBasic)
	e.u(uint64(b.m.N()))
	e.u(uint64(b.list.Len()))
	e.encPlacedRecs(b.placed)
	e.encFaults(&b.faults)
	return e.finish()
}

// Restore implements Checkpointable.
func (b *Basic) Restore(data []byte) error {
	return guardRestore(func() error {
		d, err := openSnap(data, tagBasic)
		if err != nil {
			return err
		}
		d.machineN(b.m)
		numCopies := decCopies(d, b.m)
		placed := decPlacedRecs(d, b.m, numCopies)
		faults := decFaults(d, b.m)
		if err := d.close(); err != nil {
			return err
		}
		list, loads := rebuildCopyState(b.m, numCopies, faults.failed, placed)
		b.list, b.loads, b.placed, b.faults = list, loads, placed, faults
		return nil
	})
}

// --- A_C / A_M ----------------------------------------------------------

// Snapshot implements Checkpointable. The mode byte is load-bearing: a
// copy-mode instance whose d was raised past the greedy bound at run
// time (Degradable) stays in copy mode, so the mode cannot be derived
// from d alone.
func (p *Periodic) Snapshot() []byte {
	e := newSnapEnc(tagPeriodic)
	e.u(uint64(p.m.N()))
	e.i(int64(p.d))
	e.byte(byte(p.order))
	e.bool(p.lazy)
	e.bool(p.greedy != nil)
	if p.greedy != nil {
		e.encPlacedNodes(p.greedy.placed)
		e.encFaults(&p.greedy.faults)
	} else {
		e.u(uint64(p.list.Len()))
		e.encPlacedRecs(p.placed)
		e.encRealloc(p.sinceRealo, p.activeSize, p.stats)
		e.encFaults(&p.faults)
	}
	return e.finish()
}

// Restore implements Checkpointable.
func (p *Periodic) Restore(data []byte) error {
	return guardRestore(func() error {
		d, err := openSnap(data, tagPeriodic)
		if err != nil {
			return err
		}
		d.machineN(p.m)
		pd := d.i()
		order := ReallocOrder(d.byte())
		lazy := d.bool()
		greedyMode := d.bool()
		if d.err == nil && (pd < -1 || pd > int64(p.m.N())<<20) {
			d.fail("implausible d=%d", pd)
		}
		if d.err == nil && order > ArrivalOrder {
			d.fail("unknown reallocation order %d", order)
		}
		if greedyMode {
			placed := decPlacedNodes(d, p.m)
			faults := decFaults(d, p.m)
			if err := d.close(); err != nil {
				return err
			}
			g := NewGreedy(p.m)
			g.loads = rebuildLoads(p.m, placed)
			g.placed = placed
			g.faults = faults
			g.failedUnder = rebuildFailedUnder(p.m, faults.failed)
			p.d, p.order, p.lazy = int(pd), order, lazy
			p.greedy = g
			p.list, p.loads, p.placed = nil, nil, nil
			p.sinceRealo, p.activeSize, p.stats, p.faults = 0, 0, ReallocStats{}, faultSet{}
			return nil
		}
		numCopies := decCopies(d, p.m)
		placed := decPlacedRecs(d, p.m, numCopies)
		sinceRealo, activeSize, stats := decRealloc(d)
		faults := decFaults(d, p.m)
		if err := d.close(); err != nil {
			return err
		}
		list, loads := rebuildCopyState(p.m, numCopies, faults.failed, placed)
		p.d, p.order, p.lazy = int(pd), order, lazy
		p.greedy = nil
		p.list, p.loads, p.placed = list, loads, placed
		p.sinceRealo, p.activeSize, p.stats, p.faults = sinceRealo, activeSize, stats, faults
		return nil
	})
}

// --- A_M-lazy -----------------------------------------------------------

// Snapshot implements Checkpointable. The trigger state — sinceRealo and
// activeSize, which gate the on-demand reallocation condition — rides in
// the realloc ledger.
func (l *Lazy) Snapshot() []byte {
	e := newSnapEnc(tagLazy)
	e.u(uint64(l.m.N()))
	e.i(int64(l.d))
	e.byte(byte(l.order))
	e.bool(l.greedy != nil)
	if l.greedy != nil {
		e.encPlacedNodes(l.greedy.placed)
		e.encFaults(&l.greedy.faults)
	} else {
		e.u(uint64(l.list.Len()))
		e.encPlacedRecs(l.placed)
		e.encRealloc(l.sinceRealo, l.activeSize, l.stats)
		e.encFaults(&l.faults)
	}
	return e.finish()
}

// Restore implements Checkpointable.
func (l *Lazy) Restore(data []byte) error {
	return guardRestore(func() error {
		d, err := openSnap(data, tagLazy)
		if err != nil {
			return err
		}
		d.machineN(l.m)
		ld := d.i()
		order := ReallocOrder(d.byte())
		greedyMode := d.bool()
		if d.err == nil && (ld < -1 || ld > int64(l.m.N())<<20) {
			d.fail("implausible d=%d", ld)
		}
		if d.err == nil && order > ArrivalOrder {
			d.fail("unknown reallocation order %d", order)
		}
		if greedyMode {
			placed := decPlacedNodes(d, l.m)
			faults := decFaults(d, l.m)
			if err := d.close(); err != nil {
				return err
			}
			g := NewGreedy(l.m)
			g.loads = rebuildLoads(l.m, placed)
			g.placed = placed
			g.faults = faults
			g.failedUnder = rebuildFailedUnder(l.m, faults.failed)
			l.d, l.order = int(ld), order
			l.greedy = g
			l.list, l.loads, l.placed = nil, nil, nil
			l.sinceRealo, l.activeSize, l.stats, l.faults = 0, 0, ReallocStats{}, faultSet{}
			return nil
		}
		numCopies := decCopies(d, l.m)
		placed := decPlacedRecs(d, l.m, numCopies)
		sinceRealo, activeSize, stats := decRealloc(d)
		faults := decFaults(d, l.m)
		if err := d.close(); err != nil {
			return err
		}
		list, loads := rebuildCopyState(l.m, numCopies, faults.failed, placed)
		l.d, l.order = int(ld), order
		l.greedy = nil
		l.list, l.loads, l.placed = list, loads, placed
		l.sinceRealo, l.activeSize, l.stats, l.faults = sinceRealo, activeSize, stats, faults
		return nil
	})
}

// --- A_Rand -------------------------------------------------------------

// Snapshot implements Checkpointable. PRNG position is (seed, raw
// draws); see countingSource.
func (r *Random) Snapshot() []byte {
	e := newSnapEnc(tagRandom)
	e.u(uint64(r.m.N()))
	e.encRNG(r.src)
	e.encPlacedNodes(r.placed)
	return e.finish()
}

// Restore implements Checkpointable.
func (r *Random) Restore(data []byte) error {
	return guardRestore(func() error {
		d, err := openSnap(data, tagRandom)
		if err != nil {
			return err
		}
		d.machineN(r.m)
		seed, draws := decRNG(d)
		placed := decPlacedNodes(d, r.m)
		if err := d.close(); err != nil {
			return err
		}
		src := newCountingSource(seed)
		src.restoreTo(seed, draws)
		r.src = src
		r.rng = rand.New(src)
		r.loads = rebuildLoads(r.m, placed)
		r.placed = placed
		return nil
	})
}

// --- two-choice ---------------------------------------------------------

// Snapshot implements Checkpointable.
func (tc *TwoChoice) Snapshot() []byte {
	e := newSnapEnc(tagTwoChoice)
	e.u(uint64(tc.m.N()))
	e.encRNG(tc.src)
	e.encPlacedNodes(tc.placed)
	return e.finish()
}

// Restore implements Checkpointable.
func (tc *TwoChoice) Restore(data []byte) error {
	return guardRestore(func() error {
		d, err := openSnap(data, tagTwoChoice)
		if err != nil {
			return err
		}
		d.machineN(tc.m)
		seed, draws := decRNG(d)
		placed := decPlacedNodes(d, tc.m)
		if err := d.close(); err != nil {
			return err
		}
		src := newCountingSource(seed)
		src.restoreTo(seed, draws)
		tc.src = src
		tc.rng = rand.New(src)
		tc.loads = rebuildLoads(tc.m, placed)
		tc.placed = placed
		return nil
	})
}

// --- greedy, random ties ------------------------------------------------

// Snapshot implements Checkpointable.
func (g *GreedyRandomTie) Snapshot() []byte {
	e := newSnapEnc(tagGreedyTie)
	e.u(uint64(g.m.N()))
	e.encRNG(g.src)
	e.encPlacedNodes(g.placed)
	return e.finish()
}

// Restore implements Checkpointable.
func (g *GreedyRandomTie) Restore(data []byte) error {
	return guardRestore(func() error {
		d, err := openSnap(data, tagGreedyTie)
		if err != nil {
			return err
		}
		d.machineN(g.m)
		seed, draws := decRNG(d)
		placed := decPlacedNodes(d, g.m)
		if err := d.close(); err != nil {
			return err
		}
		src := newCountingSource(seed)
		src.restoreTo(seed, draws)
		g.src = src
		g.rng = rand.New(src)
		g.loads = rebuildLoads(g.m, placed)
		g.placed = placed
		return nil
	})
}
