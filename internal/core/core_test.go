package core

import (
	"math"
	"math/rand"
	"testing"

	"partalloc/internal/mathx"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// runSequence drives an allocator through a sequence and returns the
// maximum load observed over all event times.
func runSequence(a Allocator, seq task.Sequence) int {
	max := 0
	for _, e := range seq.Events {
		switch e.Kind {
		case task.Arrive:
			a.Arrive(task.Task{ID: e.Task, Size: e.Size})
		case task.Depart:
			a.Depart(e.Task)
		}
		if l := a.MaxLoad(); l > max {
			max = l
		}
	}
	return max
}

// randomSequence builds a valid random sequence on an N-PE machine.
func randomSequence(rng *rand.Rand, n, steps int) task.Sequence {
	b := task.NewBuilder()
	maxExp := mathx.Log2(n)
	for i := 0; i < steps; i++ {
		act := b.Active()
		if len(act) > 0 && rng.Intn(2) == 0 {
			b.Depart(act[rng.Intn(len(act))])
		} else {
			b.Arrive(1 << rng.Intn(maxExp+1))
		}
	}
	return b.Sequence()
}

func allFactories(seed int64) []Factory {
	return []Factory{
		GreedyFactory(),
		BasicFactory(),
		ConstantFactory(),
		PeriodicFactory(1),
		PeriodicFactory(2),
		PeriodicFactory(3),
		PeriodicFactory(100),
		RandomFactory(seed),
	}
}

// --- Generic allocator contract -----------------------------------------

func TestAllocatorContract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, f := range allFactories(5) {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			for trial := 0; trial < 5; trial++ {
				n := 1 << (2 + rng.Intn(5))
				m := tree.MustNew(n)
				a := f.New(m)
				seq := randomSequence(rng, n, 300)
				active := make(map[task.ID]int)
				for _, e := range seq.Events {
					switch e.Kind {
					case task.Arrive:
						v := a.Arrive(task.Task{ID: e.Task, Size: e.Size})
						if m.Size(v) != e.Size {
							t.Fatalf("%s placed size-%d task on size-%d submachine",
								f.Name, e.Size, m.Size(v))
						}
						active[e.Task] = e.Size
					case task.Depart:
						a.Depart(e.Task)
						delete(active, e.Task)
					}
					if a.Active() != len(active) {
						t.Fatalf("%s Active() = %d, want %d", f.Name, a.Active(), len(active))
					}
					// Placement consistency for all active tasks.
					for id := range active {
						if _, ok := a.Placement(id); !ok {
							t.Fatalf("%s lost placement of active task %d", f.Name, id)
						}
					}
					// PE loads consistent with placements.
					loads := make([]int, n)
					for id := range active {
						v, _ := a.Placement(id)
						lo, hi := m.PERange(v)
						for p := lo; p < hi; p++ {
							loads[p]++
						}
					}
					got := a.PELoads()
					maxLoad := 0
					for p := range loads {
						if loads[p] != got[p] {
							t.Fatalf("%s PE %d load %d, want %d", f.Name, p, got[p], loads[p])
						}
						if loads[p] > maxLoad {
							maxLoad = loads[p]
						}
					}
					if a.MaxLoad() != maxLoad {
						t.Fatalf("%s MaxLoad %d, want %d", f.Name, a.MaxLoad(), maxLoad)
					}
				}
			}
		})
	}
}

func TestDepartUnknownPanics(t *testing.T) {
	for _, f := range allFactories(1) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Depart of unknown task did not panic", f.Name)
				}
			}()
			f.New(tree.MustNew(8)).Depart(42)
		}()
	}
}

func TestDuplicateArrivalPanics(t *testing.T) {
	for _, f := range allFactories(1) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: duplicate arrival did not panic", f.Name)
				}
			}()
			a := f.New(tree.MustNew(8))
			a.Arrive(task.Task{ID: 1, Size: 2})
			a.Arrive(task.Task{ID: 1, Size: 2})
		}()
	}
}

// --- Figure 1 (§2) -------------------------------------------------------

func TestFigure1GreedyLoad2(t *testing.T) {
	m := tree.MustNew(4)
	g := NewGreedy(m)
	seq := task.Figure1Sequence()
	got := runSequence(g, seq)
	if got != 2 {
		t.Fatalf("A_G load on σ* = %d, want 2 (paper Figure 1)", got)
	}
	// And the final placement of t5 overlaps a PE holding t1 or t3.
	if g.MaxLoad() != 2 {
		t.Fatalf("final A_G load = %d, want 2", g.MaxLoad())
	}
}

func TestFigure1OneReallocationLoad1(t *testing.T) {
	// The paper (§2) observes that *a* 1-reallocation algorithm achieves
	// load 1 on σ* by reallocating at t5's arrival. Eager A_M spends its
	// reallocation earlier (at t4, when the threshold is reached) and ends
	// at load 2 — still within Theorem 4.2's (d+1)L* = 2. The lazy variant
	// holds the budget until the new copy would be needed and realizes the
	// paper's example exactly.
	m := tree.MustNew(4)
	seq := task.Figure1Sequence()

	lazy := NewLazy(m, 1, DecreasingSize)
	if got := runSequence(lazy, seq); got != 1 {
		t.Fatalf("A_M-lazy(d=1) load on σ* = %d, want 1 (paper §2)", got)
	}
	if lazy.ReallocStats().Reallocations != 1 {
		t.Fatalf("A_M-lazy(d=1) reallocated %d times on σ*, want 1",
			lazy.ReallocStats().Reallocations)
	}

	eager := NewPeriodic(m, 1, DecreasingSize)
	if got := runSequence(eager, seq); got > 2 {
		t.Fatalf("A_M(d=1) load on σ* = %d, exceeds Theorem 4.2 bound 2", got)
	}
}

// --- Theorem 3.1: A_C achieves the optimal load --------------------------

func TestConstantAchievesOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 1 << (1 + rng.Intn(7))
		m := tree.MustNew(n)
		a := NewConstant(m)
		seq := randomSequence(rng, n, 400)
		got := runSequence(a, seq)
		want := seq.OptimalLoad(n)
		if got != want {
			t.Fatalf("trial %d N=%d: A_C load %d, optimal %d", trial, n, got, want)
		}
	}
}

// --- Lemma 1: procedure A_R achieves ⌈S/N⌉ on any task set ---------------

func TestReallocProcedureLemma1(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 1 << (1 + rng.Intn(7))
		m := tree.MustNew(n)
		var tasks []task.Task
		total := 0
		for i := 0; i < rng.Intn(50)+1; i++ {
			size := 1 << rng.Intn(mathx.Log2(n)+1)
			tasks = append(tasks, task.Task{ID: task.ID(i + 1), Size: size})
			total += size
		}
		list, placed := ReallocateAll(m, tasks, DecreasingSize)
		want := mathx.CeilDiv(total, n)
		if list.Len() != want {
			t.Fatalf("trial %d: A_R used %d copies, want ⌈%d/%d⌉ = %d",
				trial, list.Len(), total, n, want)
		}
		// Claim 1 of Lemma 1: no vacancy except possibly in the last copy.
		for i := 0; i < list.Len()-1; i++ {
			if list.At(i).OccupiedPEs() != n {
				t.Fatalf("trial %d: copy %d not full (%d/%d PEs)",
					trial, i, list.At(i).OccupiedPEs(), n)
			}
		}
		if len(placed) != len(tasks) {
			t.Fatalf("trial %d: %d placements for %d tasks", trial, len(placed), len(tasks))
		}
	}
}

func TestReallocOrderIrrelevantForFreshSets(t *testing.T) {
	// Ablation finding: on a *fresh* task set (a reallocation has no
	// already-departed tasks), first-fit achieves ⌈S/N⌉ copies in ANY
	// order — the Claim-1 argument of Lemma 2 needs no sorting when there
	// are no departures. The decreasing-size sort of A_R is therefore a
	// proof device, not a packing necessity; we assert the equality that
	// 4000 random instances exhibit.
	m := tree.MustNew(8)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 4000; trial++ {
		var tasks []task.Task
		total := 0
		for i := 0; i < rng.Intn(8)+2; i++ {
			size := 1 << rng.Intn(4)
			tasks = append(tasks, task.Task{ID: task.ID(i + 1), Size: size})
			total += size
		}
		want := mathx.CeilDiv(total, 8)
		listA, _ := ReallocateAll(m, tasks, ArrivalOrder)
		if listA.Len() != want {
			t.Fatalf("trial %d: arrival-order used %d copies, want %d (tasks %v)",
				trial, listA.Len(), want, tasks)
		}
		listD, _ := ReallocateAll(m, tasks, DecreasingSize)
		if listD.Len() != want {
			t.Fatalf("trial %d: decreasing-size used %d copies, want %d", trial, listD.Len(), want)
		}
	}
}

// --- Lemma 2: A_B load ≤ ⌈S/N⌉ (S = total arrival size) ------------------

func TestBasicLemma2(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		n := 1 << (1 + rng.Intn(7))
		m := tree.MustNew(n)
		a := NewBasic(m)
		seq := randomSequence(rng, n, 300)
		got := runSequence(a, seq)
		bound := int(mathx.CeilDiv64(seq.TotalArrivalSize(), int64(n)))
		if got > bound {
			t.Fatalf("trial %d N=%d: A_B load %d > ⌈S/N⌉ = %d", trial, n, got, bound)
		}
		if a.Copies() > bound {
			t.Fatalf("trial %d: A_B created %d copies > %d", trial, a.Copies(), bound)
		}
	}
}

// --- Theorem 4.1: A_G load ≤ ⌈½(log N + 1)⌉ · L* -------------------------

func TestGreedyTheorem41(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		n := 1 << (1 + rng.Intn(8))
		m := tree.MustNew(n)
		a := NewGreedy(m)
		seq := randomSequence(rng, n, 400)
		got := runSequence(a, seq)
		lstar := seq.OptimalLoad(n)
		bound := mathx.GreedyBound(n) * lstar
		if got > bound {
			t.Fatalf("trial %d N=%d: A_G load %d > bound %d (L*=%d)",
				trial, n, got, bound, lstar)
		}
	}
}

// --- Theorem 4.2: A_M load ≤ min{d+1, ⌈½(log N+1)⌉} · L* -----------------

func TestPeriodicTheorem42(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		n := 1 << (2 + rng.Intn(6))
		m := tree.MustNew(n)
		seq := randomSequence(rng, n, 300)
		lstar := seq.OptimalLoad(n)
		for _, d := range []int{0, 1, 2, 3, 5, 8, 100} {
			a := NewPeriodic(m, d, DecreasingSize)
			got := runSequence(a, seq)
			bound := mathx.DetUpperFactor(n, d) * lstar
			if got > bound {
				t.Fatalf("trial %d N=%d d=%d: A_M load %d > bound %d (L*=%d)",
					trial, n, d, got, bound, lstar)
			}
		}
	}
}

// Stronger form used in the proof of Theorem 4.2: in copy mode the load is
// at most L* + d.
func TestPeriodicAdditiveBound(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		n := 1 << (3 + rng.Intn(5))
		m := tree.MustNew(n)
		seq := randomSequence(rng, n, 300)
		lstar := seq.OptimalLoad(n)
		for d := 0; d < mathx.GreedyBound(n); d++ {
			a := NewPeriodic(m, d, DecreasingSize)
			if a.UsesGreedy() {
				t.Fatalf("d=%d below bound should use copies", d)
			}
			got := runSequence(a, seq)
			if got > lstar+d {
				t.Fatalf("trial %d N=%d d=%d: load %d > L*+d = %d",
					trial, n, d, got, lstar+d)
			}
		}
	}
}

func TestPeriodicGreedyDelegation(t *testing.T) {
	m := tree.MustNew(1024) // greedy bound = 6
	if !NewPeriodic(m, 6, DecreasingSize).UsesGreedy() {
		t.Error("d=6 should delegate to greedy on N=1024")
	}
	if !NewPeriodic(m, -1, DecreasingSize).UsesGreedy() {
		t.Error("d=∞ should delegate to greedy")
	}
	if NewPeriodic(m, 5, DecreasingSize).UsesGreedy() {
		t.Error("d=5 should use copies on N=1024")
	}
	// Delegated instance behaves exactly like A_G.
	rng := rand.New(rand.NewSource(81))
	seq := randomSequence(rng, 1024, 500)
	am := NewPeriodic(m, 6, DecreasingSize)
	ag := NewGreedy(m)
	for _, e := range seq.Events {
		switch e.Kind {
		case task.Arrive:
			v1 := am.Arrive(task.Task{ID: e.Task, Size: e.Size})
			v2 := ag.Arrive(task.Task{ID: e.Task, Size: e.Size})
			if v1 != v2 {
				t.Fatalf("delegated A_M placed %d, A_G placed %d", v1, v2)
			}
		case task.Depart:
			am.Depart(e.Task)
			ag.Depart(e.Task)
		}
	}
	if am.ReallocStats().Reallocations != 0 {
		t.Error("greedy-mode A_M must never reallocate")
	}
}

// --- Theorem 5.1 (empirical): A_Rand expected load ≤ (3logN/loglogN+1)L* --

func TestRandomTheorem51Empirical(t *testing.T) {
	// For each N, run many seeds of a size-1 saturation workload (the
	// hardest case for oblivious placement: s(σ) = N so L* = 1) and check
	// the *mean* max load against the theorem's bound. Any single run can
	// exceed it; the mean must not.
	for _, n := range []int{64, 256, 1024} {
		m := tree.MustNew(n)
		b := task.NewBuilder()
		for i := 0; i < n; i++ {
			b.Arrive(1)
		}
		seq := b.Sequence()
		lstar := seq.OptimalLoad(n)
		if lstar != 1 {
			t.Fatalf("workload construction: L* = %d", lstar)
		}
		logN := float64(mathx.Log2(n))
		bound := (3*logN/math.Log2(logN) + 1) * float64(lstar)
		sum := 0.0
		const seeds = 50
		for s := int64(0); s < seeds; s++ {
			a := NewRandom(m, s)
			sum += float64(runSequence(a, seq))
		}
		mean := sum / seeds
		if mean > bound {
			t.Errorf("N=%d: mean max load %.2f > theorem bound %.2f", n, mean, bound)
		}
		// And randomization must beat nothing: load ≥ L*.
		if mean < 1 {
			t.Errorf("N=%d: mean %f below optimal", n, mean)
		}
	}
}
