package core

import (
	"sort"

	"partalloc/internal/copies"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// ReallocOrder selects how the reallocation procedure orders tasks before
// first-fit placement.
type ReallocOrder int

const (
	// DecreasingSize is the paper's A_R order (§3): sort by decreasing
	// size. First-fit-decreasing over complete subtrees leaves no vacancy
	// except possibly in the last copy (Lemma 1), so the resulting load is
	// exactly ⌈S/N⌉.
	DecreasingSize ReallocOrder = iota
	// ArrivalOrder is the ablation variant: first-fit in task-ID (arrival)
	// order. Lemma 1 does not hold for it; the E5 ablation table shows the
	// fragmentation it admits.
	ArrivalOrder
)

func (o ReallocOrder) String() string {
	if o == ArrivalOrder {
		return "arrival-order"
	}
	return "decreasing-size"
}

// ReallocateAll is the paper's reallocation procedure A_R (§3): take the
// active task set, sort it (per order), and first-fit each task into the
// first copy of T with a vacant submachine of its size, creating copies as
// needed; within a copy, take the leftmost vacant submachine. It returns
// the fresh copy list and the new placements.
//
// Ties in size are broken by task ID so the procedure is deterministic.
func ReallocateAll(m *tree.Machine, tasks []task.Task, order ReallocOrder) (*copies.List, map[task.ID]placementRec) {
	return ReallocateAllAvoiding(m, tasks, order, nil)
}

// ReallocateAllAvoiding is ReallocateAll on a machine with failed PEs: the
// fresh copy list blocks every failed PE before placement, so no task in
// the rebuilt layout covers one. It panics if some task has no healthy
// submachine of its size.
func ReallocateAllAvoiding(m *tree.Machine, tasks []task.Task, order ReallocOrder, failedPEs []int) (*copies.List, map[task.ID]placementRec) {
	sorted := make([]task.Task, len(tasks))
	copy(sorted, tasks)
	switch order {
	case DecreasingSize:
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].Size != sorted[j].Size {
				return sorted[i].Size > sorted[j].Size
			}
			return sorted[i].ID < sorted[j].ID
		})
	case ArrivalOrder:
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	}
	list := copies.NewList(m)
	for _, pe := range failedPEs {
		list.Block(m.LeafOf(pe))
	}
	placed := make(map[task.ID]placementRec, len(sorted))
	for _, t := range sorted {
		ci, v := list.Place(t.Size)
		placed[t.ID] = placementRec{copyIdx: ci, node: v, size: t.Size}
	}
	return list, placed
}
