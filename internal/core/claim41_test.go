package core

import (
	"math/rand"
	"testing"

	"partalloc/internal/mathx"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// The proof of Theorem 4.1 rests on this claim: when a task of size
// 2^x < N arrives, A_G can place it on a submachine of the left subtree
// with load < ⌈(½x+1)·L*⌉ or on one of the right subtree with load
// < ⌊(½x+1)·L*⌋. Verify the claim white-box during greedy runs: at every
// arrival, inspect all candidate submachines before placement and check
// that one of the two disjuncts holds (using the running prefix L*, which
// is what the adversary argument quantifies over).
func TestTheorem41InnerClaim(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 15; trial++ {
		n := 1 << (2 + rng.Intn(6))
		m := tree.MustNew(n)
		g := NewGreedy(m)
		b := task.NewBuilder()
		var maxActive int64
		for step := 0; step < 400; step++ {
			act := b.Active()
			if len(act) > 0 && rng.Intn(2) == 0 {
				id := act[rng.Intn(len(act))]
				b.Depart(id)
				g.Depart(id)
				continue
			}
			x := rng.Intn(mathx.Log2(n)) // sizes < N, as the claim assumes
			size := 1 << x
			// Evaluate the claim BEFORE the arrival is placed, using the
			// running optimal load of the sequence including this arrival.
			if b.ActiveSize()+int64(size) > maxActive {
				maxActive = b.ActiveSize() + int64(size)
			}
			lstar := int(mathx.CeilDiv64(maxActive, int64(n)))
			loads := g.PELoads()
			subLoad := func(v tree.Node) int {
				lo, hi := m.PERange(v)
				l := 0
				for p := lo; p < hi; p++ {
					if loads[p] > l {
						l = loads[p]
					}
				}
				return l
			}
			leftOK, rightOK := false, false
			leftBound := mathx.CeilDiv((x+2)*lstar, 2) // ⌈(½x+1)L*⌉
			rightBound := (x + 2) * lstar / 2          // ⌊(½x+1)L*⌋
			for _, v := range m.Submachines(size) {
				l := subLoad(v)
				if m.InLeftHalf(v) || v == m.Root() {
					if l < leftBound {
						leftOK = true
					}
				} else {
					if l < rightBound {
						rightOK = true
					}
				}
			}
			if !leftOK && !rightOK {
				t.Fatalf("trial %d step %d N=%d size=%d L*=%d: Theorem 4.1 claim violated (bounds %d/%d)",
					trial, step, n, size, lstar, leftBound, rightBound)
			}
			id := b.Arrive(size)
			g.Arrive(task.Task{ID: id, Size: size})
		}
	}
}
