package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"partalloc/internal/mathx"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// Property (Theorem 3.1 as a quick property): A_C achieves exactly the
// optimal load on any generated sequence.
func TestQuickConstantOptimal(t *testing.T) {
	f := func(seed int64, levelsRaw, steps uint8) bool {
		levels := int(levelsRaw)%7 + 1
		n := 1 << levels
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, n, int(steps)%200+1)
		a := NewConstant(tree.MustNew(n))
		got := runSequence(a, seq)
		return got == seq.OptimalLoad(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property (Theorem 4.2): A_M(d) stays within min{d+1, ⌈½(logN+1)⌉}·L*
// for quick-drawn d and sequences.
func TestQuickPeriodicBound(t *testing.T) {
	f := func(seed int64, levelsRaw, steps, dRaw uint8) bool {
		levels := int(levelsRaw)%6 + 2
		n := 1 << levels
		d := int(dRaw) % 8
		rng := rand.New(rand.NewSource(seed))
		seq := randomSequence(rng, n, int(steps)%200+1)
		a := NewPeriodic(tree.MustNew(n), d, DecreasingSize)
		got := runSequence(a, seq)
		lstar := seq.OptimalLoad(n)
		return got <= mathx.DetUpperFactor(n, d)*lstar
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: every allocator keeps Active() equal to arrivals minus
// departures, and MaxLoad is zero exactly when nothing is active.
func TestQuickActiveAccounting(t *testing.T) {
	factories := allFactories(3)
	f := func(seed int64, steps uint8, which uint8) bool {
		fy := factories[int(which)%len(factories)]
		n := 32
		a := fy.New(tree.MustNew(n))
		rng := rand.New(rand.NewSource(seed))
		b := task.NewBuilder()
		for i := 0; i < int(steps)%150+1; i++ {
			act := b.Active()
			if len(act) > 0 && rng.Intn(2) == 0 {
				id := act[rng.Intn(len(act))]
				b.Depart(id)
				a.Depart(id)
			} else {
				size := 1 << rng.Intn(6)
				id := b.Arrive(size)
				a.Arrive(task.Task{ID: id, Size: size})
			}
			if a.Active() != len(b.Active()) {
				return false
			}
			if (a.MaxLoad() == 0) != (len(b.Active()) == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: ReallocateAll output always covers every task exactly once
// with correctly-sized placements, for any task multiset.
func TestQuickReallocateAllWellFormed(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := tree.MustNew(64)
		var tasks []task.Task
		for i := 0; i < int(count)%40+1; i++ {
			tasks = append(tasks, task.Task{ID: task.ID(i + 1), Size: 1 << rng.Intn(7)})
		}
		order := DecreasingSize
		if seed%2 == 0 {
			order = ArrivalOrder
		}
		list, placed := ReallocateAll(m, tasks, order)
		if len(placed) != len(tasks) {
			return false
		}
		total := 0
		for _, tk := range tasks {
			rec, ok := placed[tk.ID]
			if !ok || m.Size(rec.node) != tk.Size {
				return false
			}
			total += tk.Size
		}
		return list.Len() == mathx.CeilDiv(total, 64)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
