// Package core implements the paper's processor-allocation algorithms for
// partitionable tree machines (Gao/Rosenberg/Sitaraman, SPAA'96):
//
//   - A_G  — the greedy on-line algorithm (§4.1): place each arriving task
//     on the leftmost minimum-load submachine of its size; never
//     reallocates. Load ≤ ⌈½(log N + 1)⌉·L* (Theorem 4.1).
//   - A_B  — the basic first-fit-over-copies algorithm (§4.1): load ≤
//     ⌈S/N⌉ where S is the total size of arrivals (Lemma 2).
//   - A_R  — the reallocation procedure (§3): first-fit-decreasing over
//     fresh copies; achieves ⌈S/N⌉ for any active set (Lemma 1).
//   - A_C  — the constantly-reallocating algorithm (§3): reallocates on
//     every arrival and achieves the optimal load L* (Theorem 3.1).
//   - A_M  — the d-reallocation algorithm (§4.1): A_B between
//     reallocations, A_R whenever the size arrived since the last
//     reallocation reaches d·N; if d ≥ ⌈½(log N+1)⌉ it degenerates to A_G.
//     Load ≤ min{d+1, ⌈½(log N+1)⌉}·L* (Theorem 4.2).
//   - A_Rand — the oblivious randomized algorithm (§5.1): place each task
//     uniformly at random among the submachines of its size. Expected load
//     ≤ (3·log N/log log N + 1)·L* (Theorem 5.1).
//
// All allocators share the Allocator interface and expose their current
// placements so adversaries (internal/adversary) and metrics
// (internal/sim, internal/metrics) can observe them.
package core

import (
	"fmt"

	"partalloc/internal/errs"
	"partalloc/internal/mathx"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// Allocator is an on-line processor-allocation algorithm. An arriving task
// must be assigned a submachine of exactly its size immediately; a
// departing task's submachine is released. Implementations are not safe
// for concurrent use.
type Allocator interface {
	// Name identifies the algorithm (for reports), e.g. "A_G".
	Name() string
	// Machine returns the machine being managed.
	Machine() *tree.Machine
	// Arrive assigns t a submachine and returns its root node. Reallocating
	// algorithms may also move other tasks during this call.
	Arrive(t task.Task) tree.Node
	// Depart releases the submachine of a previously arrived task.
	Depart(id task.ID)
	// MaxLoad returns the current machine-wide maximum PE load.
	MaxLoad() int
	// PELoads returns a snapshot of all PE loads.
	PELoads() []int
	// Placement returns the current node of an active task.
	Placement(id task.ID) (tree.Node, bool)
	// Active returns the number of active tasks.
	Active() int
}

// ReallocStats quantifies reallocation work: how often global reallocation
// ran, how many tasks physically changed submachine, and the cumulative PE
// count of moved tasks (a proxy for checkpoint/migration traffic).
type ReallocStats struct {
	Reallocations int
	Migrations    int64
	MovedPEs      int64
}

// Reallocator is implemented by allocators that may migrate tasks.
type Reallocator interface {
	Allocator
	ReallocStats() ReallocStats
}

// MigrationObserver receives one callback per migrated task during a
// reallocation: the task moved from the submachine rooted at `from` to the
// one rooted at `to`. Experiments use it to price migrations on different
// physical topologies (see internal/topology.MigrationCost).
type MigrationObserver func(id task.ID, from, to tree.Node)

// Observable is implemented by allocators that can report individual
// migrations.
type Observable interface {
	SetMigrationObserver(MigrationObserver)
}

// Degradable is implemented by allocators whose reallocation parameter d
// can be retuned while running — the paper's balance-vs-migration trade
// exposed as a live knob. The engine's Degrade overload policy uses it to
// raise the effective d (fewer, cheaper reallocations) or switch A_M to
// its lazy trigger under load, and to restore the configured setting once
// healthy.
//
// The Set methods report whether the knob took effect: an instance that
// delegates to A_G (d at or above the greedy bound at construction) has
// no reallocation machinery to retune and returns false, as does an
// attempt to set a state the instance cannot leave (A_M-lazy is always
// lazy). Knob changes apply from the next arrival; they never trigger or
// cancel a reallocation retroactively.
type Degradable interface {
	// EffectiveD returns the live reallocation parameter (-1 for ∞).
	EffectiveD() int
	// LazyRealloc reports whether the on-demand (lazy) trigger is active.
	LazyRealloc() bool
	// SetEffectiveD sets the live reallocation parameter (d ≥ 0).
	SetEffectiveD(d int) bool
	// SetLazyRealloc enables or disables the on-demand trigger.
	SetLazyRealloc(lazy bool) bool
}

// Migration records one forced task move: the task left the submachine
// rooted at From because a PE under it failed, and now runs at To.
type Migration struct {
	ID   task.ID
	From tree.Node
	To   tree.Node
}

// ForcedStats quantifies fault-handling work separately from the voluntary
// d·N reallocation budget of ReallocStats: failures survived, recoveries
// absorbed, and the forced-migration traffic they caused. Forced moves are
// imposed by the environment, not chosen by the algorithm, so the paper's
// budget accounting (and the invariant checker's realloc-budget rule)
// never charges them.
type ForcedStats struct {
	Failures   int
	Recoveries int
	Migrations int64
	MovedPEs   int64
}

// FaultTolerant is implemented by allocators that survive PE failures:
// when a PE fails, every active task whose submachine covers it is
// forcibly migrated to a healthy submachine of the same size, and no
// subsequent placement covers a failed PE until it recovers.
type FaultTolerant interface {
	Allocator
	// FailPE marks PE pe failed and migrates away every task covering it,
	// returning the forced migrations in a deterministic order. It panics
	// if pe is out of range, already failed, or if some affected task has
	// no healthy submachine of its size left.
	FailPE(pe int) []Migration
	// RecoverPE marks a failed PE healthy again. Recovery only adds
	// capacity, so no task moves.
	RecoverPE(pe int)
	// FailedPEs returns the currently failed PEs in increasing order.
	FailedPEs() []int
	// ForcedStats returns cumulative fault-handling counters.
	ForcedStats() ForcedStats
}

// Factory builds a fresh allocator for a machine; experiments use it to
// run the same algorithm across many machines and seeds.
type Factory struct {
	Name string
	New  func(m *tree.Machine) Allocator
}

// ErrUnknownTask is wrapped by Depart panics; exported for tests.
var ErrUnknownTask = fmt.Errorf("core: departure of unknown task")

// checkArrival validates a task against the machine; shared by all
// allocators. It panics with errors wrapping the errs sentinels so
// harnesses that recover (internal/engine) can surface a typed error.
func checkArrival(m *tree.Machine, t task.Task) {
	if t.Size < 1 || !mathx.IsPow2(t.Size) {
		panic(fmt.Errorf("core: task %d size %d: %w", t.ID, t.Size, errs.ErrNotPowerOfTwo))
	}
	if t.Size > m.N() {
		panic(fmt.Errorf("core: task %d size %d on an N=%d machine: %w", t.ID, t.Size, m.N(), errs.ErrTaskTooLarge))
	}
}

// panicDuplicate reports a second arrival of an already-active task; shared
// by every allocator so the wrapped sentinel cannot drift apart.
func panicDuplicate(id task.ID, algo string) {
	panic(fmt.Errorf("core: duplicate arrival of task %d (%s): %w", id, algo, errs.ErrDuplicateTask))
}
