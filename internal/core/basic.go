package core

import (
	"fmt"

	"partalloc/internal/copies"
	"partalloc/internal/loadtree"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// placementRec locates a task inside a copy list.
type placementRec struct {
	copyIdx int
	node    tree.Node
	size    int
}

// Basic is algorithm A_B (§4.1): maintain an ordered list of copies of T;
// on arrival, place the task in the leftmost vacant submachine of the first
// copy that has one, creating a new copy if none does. It never
// reallocates. Lemma 2: its load never exceeds ⌈S/N⌉ where S is the total
// size of all arrivals so far (departures included in the sequence do not
// help it, which is exactly why A_M pairs it with periodic reallocation).
type Basic struct {
	m      *tree.Machine
	list   *copies.List
	loads  *loadtree.Tree
	placed map[task.ID]placementRec
	faults faultSet
}

// NewBasic returns A_B on machine m.
func NewBasic(m *tree.Machine) *Basic {
	return &Basic{
		m:      m,
		list:   copies.NewList(m),
		loads:  loadtree.New(m),
		placed: make(map[task.ID]placementRec),
	}
}

// BasicFactory builds A_B allocators.
func BasicFactory() Factory {
	return Factory{Name: "A_B", New: func(m *tree.Machine) Allocator { return NewBasic(m) }}
}

// Name implements Allocator.
func (b *Basic) Name() string { return "A_B" }

// Machine implements Allocator.
func (b *Basic) Machine() *tree.Machine { return b.m }

// Arrive implements Allocator with first-fit over copies.
func (b *Basic) Arrive(t task.Task) tree.Node {
	checkArrival(b.m, t)
	if _, dup := b.placed[t.ID]; dup {
		panicDuplicate(t.ID, b.Name())
	}
	ci, v := b.list.Place(t.Size)
	b.loads.Place(v)
	b.placed[t.ID] = placementRec{copyIdx: ci, node: v, size: t.Size}
	return v
}

// Depart implements Allocator.
func (b *Basic) Depart(id task.ID) {
	rec, ok := b.placed[id]
	if !ok {
		panic(fmt.Errorf("%w: %d (A_B)", ErrUnknownTask, id))
	}
	b.list.Vacate(rec.copyIdx, rec.node)
	b.loads.Remove(rec.node)
	delete(b.placed, id)
}

// MaxLoad implements Allocator.
func (b *Basic) MaxLoad() int { return b.loads.MaxLoad() }

// PELoads implements Allocator.
func (b *Basic) PELoads() []int { return b.loads.Loads() }

// Placement implements Allocator.
func (b *Basic) Placement(id task.ID) (tree.Node, bool) {
	rec, ok := b.placed[id]
	return rec.node, ok
}

// Active implements Allocator.
func (b *Basic) Active() int { return len(b.placed) }

// Copies returns the number of copies A_B has created so far; Lemma 2
// bounds it by ⌈S/N⌉. Exposed for the tests that verify the lemma.
func (b *Basic) Copies() int { return b.list.Len() }

// FailPE implements FaultTolerant.
func (b *Basic) FailPE(pe int) []Migration {
	b.faults.markFailed(b.m, pe)
	migs := failInCopies(b.m, b.list, b.loads, b.placed, pe, nil)
	b.faults.recordMigrations(migs, b.m)
	return migs
}

// RecoverPE implements FaultTolerant.
func (b *Basic) RecoverPE(pe int) {
	b.faults.markRecovered(b.m, pe)
	b.list.Unblock(b.m.LeafOf(pe))
}

// FailedPEs implements FaultTolerant.
func (b *Basic) FailedPEs() []int { return b.faults.FailedPEs() }

// ForcedStats implements FaultTolerant.
func (b *Basic) ForcedStats() ForcedStats { return b.faults.ForcedStats() }
