package core

import (
	"fmt"

	"partalloc/internal/copies"
	"partalloc/internal/loadtree"
	"partalloc/internal/mathx"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// Periodic is the d-reallocation algorithm A_M (§4.1). Per the paper:
//
//   - if d ≥ ⌈½(log N + 1)⌉ (or d = ∞, encoded as d < 0), reallocation
//     cannot beat greedy's bound, so it simply runs A_G and never
//     reallocates;
//   - otherwise it places arrivals with A_B, and whenever the cumulative
//     size of arrivals since the last reallocation reaches d·N it
//     reallocates every active task with procedure A_R
//     (first-fit-decreasing into fresh copies), the arrival that crossed
//     the threshold included.
//
// Theorem 4.2: its load is at most min{d+1, ⌈½(log N+1)⌉} · L*.
// With d = 0 it reallocates on every arrival and is exactly the optimal
// algorithm A_C of §3 (Theorem 3.1: load = L*).
type Periodic struct {
	m *tree.Machine
	d int // -1 encodes infinity

	// greedy mode (d ≥ greedy bound)
	greedy *Greedy

	// copy mode (d < greedy bound)
	order      ReallocOrder
	list       *copies.List
	loads      *loadtree.Tree
	placed     map[task.ID]placementRec
	sinceRealo int64 // cumulative arrival size since last reallocation
	activeSize int64 // total size of active tasks, for the lazy trigger
	lazy       bool  // on-demand trigger (Degradable), as in Lazy
	stats      ReallocStats
	observer   MigrationObserver
	faults     faultSet
}

// SetMigrationObserver implements Observable.
func (p *Periodic) SetMigrationObserver(fn MigrationObserver) { p.observer = fn }

// NewPeriodic returns A_M with reallocation parameter d on machine m.
// d < 0 encodes d = ∞ (never reallocate). The order parameter selects the
// paper's first-fit-decreasing (DecreasingSize) or the ablation
// ArrivalOrder for the reallocation procedure.
func NewPeriodic(m *tree.Machine, d int, order ReallocOrder) *Periodic {
	p := &Periodic{m: m, d: d, order: order}
	if p.greedyMode() {
		p.greedy = NewGreedy(m)
	} else {
		p.list = copies.NewList(m)
		p.loads = loadtree.New(m)
		p.placed = make(map[task.ID]placementRec)
	}
	return p
}

// NewConstant returns the 0-reallocation algorithm A_C of §3: A_M with
// d = 0, which reallocates all active tasks on every arrival and achieves
// the optimal load L* (Theorem 3.1).
func NewConstant(m *tree.Machine) *Periodic {
	return NewPeriodic(m, 0, DecreasingSize)
}

// PeriodicFactory builds A_M(d) allocators.
func PeriodicFactory(d int) Factory {
	return Factory{
		Name: fmt.Sprintf("A_M(d=%d)", d),
		New:  func(m *tree.Machine) Allocator { return NewPeriodic(m, d, DecreasingSize) },
	}
}

// ConstantFactory builds A_C allocators.
func ConstantFactory() Factory {
	return Factory{Name: "A_C", New: func(m *tree.Machine) Allocator { return NewConstant(m) }}
}

func (p *Periodic) greedyMode() bool {
	bound := mathx.GreedyBound(p.m.N())
	return p.d < 0 || p.d >= bound
}

// D returns the reallocation parameter (-1 for ∞).
func (p *Periodic) D() int { return p.d }

// Name implements Allocator.
func (p *Periodic) Name() string {
	if p.d == 0 {
		return "A_C"
	}
	if p.d < 0 {
		return "A_M(d=inf)"
	}
	return fmt.Sprintf("A_M(d=%d)", p.d)
}

// Machine implements Allocator.
func (p *Periodic) Machine() *tree.Machine { return p.m }

// Arrive implements Allocator.
func (p *Periodic) Arrive(t task.Task) tree.Node {
	if p.greedy != nil {
		return p.greedy.Arrive(t)
	}
	checkArrival(p.m, t)
	if _, dup := p.placed[t.ID]; dup {
		panicDuplicate(t.ID, p.Name())
	}
	p.sinceRealo += int64(t.Size)
	p.activeSize += int64(t.Size)
	if p.shouldReallocate(t) {
		// Threshold reached (with d = 0 that is every arrival): reallocate
		// every active task, the new arrival included.
		p.placed[t.ID] = placementRec{copyIdx: -1, node: 0, size: t.Size}
		p.reallocate()
		p.sinceRealo = 0
		return p.placed[t.ID].node
	}
	ci, v := p.list.Place(t.Size)
	p.loads.Place(v)
	p.placed[t.ID] = placementRec{copyIdx: ci, node: v, size: t.Size}
	return v
}

// shouldReallocate decides whether t's arrival fires procedure A_R. The
// eager trigger is the paper's A_M rule (accumulated size reaches d·N);
// the lazy trigger additionally holds the earned reallocation until A_B
// would grow the copy count and compaction would actually avoid that —
// Lazy's exact condition, so a lazy-mode Periodic tracks Lazy move for
// move. Callers have already added t to sinceRealo and activeSize.
func (p *Periodic) shouldReallocate(t task.Task) bool {
	if p.sinceRealo < int64(p.d)*int64(p.m.N()) {
		return false
	}
	if !p.lazy {
		return true
	}
	n64 := int64(p.m.N())
	needNew := !p.list.HasVacant(t.Size)
	helps := (p.activeSize+n64-1)/n64 <= int64(p.list.Len())
	return needNew && helps
}

// EffectiveD implements Degradable.
func (p *Periodic) EffectiveD() int { return p.d }

// LazyRealloc implements Degradable.
func (p *Periodic) LazyRealloc() bool { return p.lazy }

// SetEffectiveD implements Degradable. Greedy-delegation instances have
// no reallocation machinery and refuse; raising d past the greedy bound
// on a copy-mode instance is allowed (it just reallocates ever rarer).
func (p *Periodic) SetEffectiveD(d int) bool {
	if p.greedy != nil || d < 0 {
		return false
	}
	p.d = d
	return true
}

// SetLazyRealloc implements Degradable.
func (p *Periodic) SetLazyRealloc(lazy bool) bool {
	if p.greedy != nil {
		return false
	}
	p.lazy = lazy
	return true
}

// reallocate runs procedure A_R over the active set, updating migration
// statistics (a task "migrates" when its submachine root changes; moving
// between copies at the same node keeps the same PEs and is free).
func (p *Periodic) reallocate() {
	tasks := make([]task.Task, 0, len(p.placed))
	//lint:ignore detorder ReallocateAll re-sorts tasks with a total order (size, then ID), so collection order cannot matter
	for id, rec := range p.placed {
		tasks = append(tasks, task.Task{ID: id, Size: rec.size})
	}
	list, placed := ReallocateAllAvoiding(p.m, tasks, p.order, p.faults.failed)
	p.stats.Reallocations++
	newLoads := loadtree.New(p.m)
	// Build the replacement tree with deferred aggregates when that is
	// cheaper (one O(N) rebuild vs len(placed) eager O(log²N) updates), and
	// always when the old tree is mid-batch: the replacement must inherit
	// deferred mode so ApplyBatch's EndDeferred lands on the current tree.
	lv := p.m.Levels() + 1
	if p.loads.Deferred() || len(placed)*lv*lv >= 4*p.m.NumNodes() {
		newLoads.BeginDeferred()
	}
	for id, rec := range placed {
		old := p.placed[id]
		// old.node == 0 marks the arrival that triggered this reallocation;
		// it had no previous placement, so it cannot "migrate".
		if old.node != 0 && old.node != rec.node {
			p.stats.Migrations++
			p.stats.MovedPEs += int64(rec.size)
			if p.observer != nil {
				p.observer(id, old.node, rec.node)
			}
		}
		newLoads.Place(rec.node)
	}
	if newLoads.Deferred() && !p.loads.Deferred() {
		newLoads.EndDeferred()
	}
	p.list = list
	p.placed = placed
	p.loads = newLoads
}

// Depart implements Allocator.
func (p *Periodic) Depart(id task.ID) {
	if p.greedy != nil {
		p.greedy.Depart(id)
		return
	}
	rec, ok := p.placed[id]
	if !ok {
		panic(fmt.Errorf("%w: %d (%s)", ErrUnknownTask, id, p.Name()))
	}
	p.list.Vacate(rec.copyIdx, rec.node)
	p.loads.Remove(rec.node)
	p.activeSize -= int64(rec.size)
	delete(p.placed, id)
}

// MaxLoad implements Allocator.
func (p *Periodic) MaxLoad() int {
	if p.greedy != nil {
		return p.greedy.MaxLoad()
	}
	return p.loads.MaxLoad()
}

// PELoads implements Allocator.
func (p *Periodic) PELoads() []int {
	if p.greedy != nil {
		return p.greedy.PELoads()
	}
	return p.loads.Loads()
}

// Placement implements Allocator.
func (p *Periodic) Placement(id task.ID) (tree.Node, bool) {
	if p.greedy != nil {
		return p.greedy.Placement(id)
	}
	rec, ok := p.placed[id]
	return rec.node, ok
}

// Active implements Allocator.
func (p *Periodic) Active() int {
	if p.greedy != nil {
		return p.greedy.Active()
	}
	return len(p.placed)
}

// ReallocStats implements Reallocator.
func (p *Periodic) ReallocStats() ReallocStats { return p.stats }

// UsesGreedy reports whether this instance delegates to A_G (d at or above
// the greedy bound).
func (p *Periodic) UsesGreedy() bool { return p.greedy != nil }

// FailPE implements FaultTolerant.
func (p *Periodic) FailPE(pe int) []Migration {
	if p.greedy != nil {
		return p.greedy.FailPE(pe)
	}
	p.faults.markFailed(p.m, pe)
	migs := failInCopies(p.m, p.list, p.loads, p.placed, pe, p.observer)
	p.faults.recordMigrations(migs, p.m)
	return migs
}

// RecoverPE implements FaultTolerant.
func (p *Periodic) RecoverPE(pe int) {
	if p.greedy != nil {
		p.greedy.RecoverPE(pe)
		return
	}
	p.faults.markRecovered(p.m, pe)
	p.list.Unblock(p.m.LeafOf(pe))
}

// FailedPEs implements FaultTolerant.
func (p *Periodic) FailedPEs() []int {
	if p.greedy != nil {
		return p.greedy.FailedPEs()
	}
	return p.faults.FailedPEs()
}

// ForcedStats implements FaultTolerant.
func (p *Periodic) ForcedStats() ForcedStats {
	if p.greedy != nil {
		return p.greedy.ForcedStats()
	}
	return p.faults.ForcedStats()
}
