package core

import (
	"math/rand"
	"testing"

	"partalloc/internal/mathx"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

func TestGreedyRandomTieContract(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 64
	m := tree.MustNew(n)
	a := NewGreedyRandomTie(m, 1)
	seq := randomSequence(rng, n, 500)
	active := map[task.ID]tree.Node{}
	for _, e := range seq.Events {
		switch e.Kind {
		case task.Arrive:
			v := a.Arrive(task.Task{ID: e.Task, Size: e.Size})
			if m.Size(v) != e.Size {
				t.Fatalf("wrong size placement")
			}
			active[e.Task] = v
		case task.Depart:
			a.Depart(e.Task)
			delete(active, e.Task)
		}
		want := make([]int, n)
		for _, v := range active {
			lo, hi := m.PERange(v)
			for p := lo; p < hi; p++ {
				want[p]++
			}
		}
		got := a.PELoads()
		for p := range want {
			if want[p] != got[p] {
				t.Fatalf("PE %d load %d want %d", p, got[p], want[p])
			}
		}
	}
}

// The random-tie variant picks a *minimum-load* submachine at every step
// (its defining property), so Theorem 4.1's bound still applies.
func TestGreedyRandomTieAlwaysMinLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := 32
	m := tree.MustNew(n)
	a := NewGreedyRandomTie(m, 2)
	active := []task.ID{}
	next := task.ID(1)
	for step := 0; step < 800; step++ {
		if len(active) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(active))
			a.Depart(active[i])
			active[i] = active[len(active)-1]
			active = active[:len(active)-1]
			continue
		}
		size := 1 << rng.Intn(6)
		// Compute the minimum submachine load before the arrival.
		min := 1 << 30
		loads := a.PELoads()
		for _, v := range m.Submachines(size) {
			lo, hi := m.PERange(v)
			l := 0
			for p := lo; p < hi; p++ {
				if loads[p] > l {
					l = loads[p]
				}
			}
			if l < min {
				min = l
			}
		}
		id := next
		next++
		v := a.Arrive(task.Task{ID: id, Size: size})
		// The chosen submachine's load before placement must equal min.
		lo, hi := m.PERange(v)
		l := 0
		for p := lo; p < hi; p++ {
			if loads[p] > l {
				l = loads[p]
			}
		}
		if l != min {
			t.Fatalf("step %d: placed on load %d, min was %d", step, l, min)
		}
		active = append(active, id)
	}
}

func TestGreedyRandomTieTheorem41(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 1 << (2 + rng.Intn(6))
		a := NewGreedyRandomTie(tree.MustNew(n), int64(trial))
		seq := randomSequence(rng, n, 300)
		got := runSequence(a, seq)
		lstar := seq.OptimalLoad(n)
		if got > mathx.GreedyBound(n)*lstar {
			t.Fatalf("trial %d N=%d: load %d exceeds Theorem 4.1 bound", trial, n, got)
		}
	}
}

// Different seeds must eventually pick different tie-breaks (sanity that
// the variant is actually randomized).
func TestGreedyRandomTieIsRandom(t *testing.T) {
	n := 64
	diverged := false
	for trial := 0; trial < 10 && !diverged; trial++ {
		a := NewGreedyRandomTie(tree.MustNew(n), 1)
		b := NewGreedyRandomTie(tree.MustNew(n), 2)
		for i := 1; i <= 16; i++ {
			va := a.Arrive(task.Task{ID: task.ID(i), Size: 1})
			vb := b.Arrive(task.Task{ID: task.ID(i), Size: 1})
			if va != vb {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("seeds 1 and 2 never diverged over 160 size-1 placements")
	}
}
