package core

import (
	"fmt"

	"partalloc/internal/copies"
	"partalloc/internal/loadtree"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// Lazy is a d-reallocation algorithm with *on-demand* reallocation timing.
//
// The paper's A_M reallocates eagerly at the first arrival where the size
// accumulated since the last reallocation reaches d·N. The model, however,
// only requires that consecutive reallocations be at least d·N arrived
// size apart — the algorithm may *hold* an earned reallocation until it is
// useful. That is exactly what the paper's §2 example exploits: on σ* a
// 1-reallocation algorithm reallocates at t5's arrival and achieves load
// 1, while eager A_M(d=1) spends its reallocation at t4 and incurs load 2.
//
// Lazy places arrivals with A_B, and reallocates (procedure A_R) only when
// both (a) the A_B placement would create a new copy, and (b) at least d·N
// size has arrived since the last reallocation. It satisfies the same
// Theorem 4.2 bound as A_M — after a reallocation there are at most L*
// copies, and every new copy is created while the accumulated size is
// below d·N, so at most d extra copies exist at any time — and in practice
// reallocates far less often (see experiment E8).
type Lazy struct {
	m          *tree.Machine
	d          int
	greedy     *Greedy // delegation when d ≥ greedy bound, as in A_M
	order      ReallocOrder
	list       *copies.List
	loads      *loadtree.Tree
	placed     map[task.ID]placementRec
	sinceRealo int64
	activeSize int64
	stats      ReallocStats
	observer   MigrationObserver
	faults     faultSet
}

// SetMigrationObserver implements Observable.
func (l *Lazy) SetMigrationObserver(fn MigrationObserver) { l.observer = fn }

// NewLazy returns the lazy d-reallocation algorithm on machine m. d < 0
// encodes ∞. d = 0 is allowed: the budget is always available, so it
// reallocates whenever A_B would grow the copy count, which also achieves
// the optimal load L*.
func NewLazy(m *tree.Machine, d int, order ReallocOrder) *Lazy {
	l := &Lazy{m: m, d: d, order: order}
	if d < 0 {
		l.greedy = NewGreedy(m)
	} else {
		l.list = copies.NewList(m)
		l.loads = loadtree.New(m)
		l.placed = make(map[task.ID]placementRec)
	}
	return l
}

// LazyFactory builds Lazy(d) allocators.
func LazyFactory(d int) Factory {
	return Factory{
		Name: fmt.Sprintf("A_M-lazy(d=%d)", d),
		New:  func(m *tree.Machine) Allocator { return NewLazy(m, d, DecreasingSize) },
	}
}

// Name implements Allocator.
func (l *Lazy) Name() string {
	if l.d < 0 {
		return "A_M-lazy(d=inf)"
	}
	return fmt.Sprintf("A_M-lazy(d=%d)", l.d)
}

// Machine implements Allocator.
func (l *Lazy) Machine() *tree.Machine { return l.m }

// Arrive implements Allocator.
func (l *Lazy) Arrive(t task.Task) tree.Node {
	if l.greedy != nil {
		return l.greedy.Arrive(t)
	}
	checkArrival(l.m, t)
	if _, dup := l.placed[t.ID]; dup {
		panicDuplicate(t.ID, l.Name())
	}
	l.sinceRealo += int64(t.Size)
	l.activeSize += int64(t.Size)
	// Would A_B need a new copy, and is the reallocation budget earned?
	needNew := !l.list.HasVacant(t.Size)
	// Reallocating is only worthwhile if compaction actually avoids the new
	// copy: the active set (new task included) must fit in the copies that
	// already exist. Otherwise the budget is saved for later.
	n64 := int64(l.m.N())
	helps := (l.activeSize+n64-1)/n64 <= int64(l.list.Len())
	if needNew && helps && l.sinceRealo >= int64(l.d)*n64 {
		l.placed[t.ID] = placementRec{copyIdx: -1, node: 0, size: t.Size}
		l.reallocate()
		l.sinceRealo = 0
		return l.placed[t.ID].node
	}
	ci, v := l.list.Place(t.Size)
	l.loads.Place(v)
	l.placed[t.ID] = placementRec{copyIdx: ci, node: v, size: t.Size}
	return v
}

func (l *Lazy) reallocate() {
	tasks := make([]task.Task, 0, len(l.placed))
	//lint:ignore detorder ReallocateAll re-sorts tasks with a total order (size, then ID), so collection order cannot matter
	for id, rec := range l.placed {
		tasks = append(tasks, task.Task{ID: id, Size: rec.size})
	}
	list, placed := ReallocateAllAvoiding(l.m, tasks, l.order, l.faults.failed)
	l.stats.Reallocations++
	newLoads := loadtree.New(l.m)
	// Same deferred-build rule as Periodic.reallocate: cheaper above the
	// size heuristic, and mandatory mid-batch so the swapped-in tree
	// inherits deferred mode.
	lv := l.m.Levels() + 1
	if l.loads.Deferred() || len(placed)*lv*lv >= 4*l.m.NumNodes() {
		newLoads.BeginDeferred()
	}
	for id, rec := range placed {
		old := l.placed[id]
		if old.node != 0 && old.node != rec.node {
			l.stats.Migrations++
			l.stats.MovedPEs += int64(rec.size)
			if l.observer != nil {
				l.observer(id, old.node, rec.node)
			}
		}
		newLoads.Place(rec.node)
	}
	if newLoads.Deferred() && !l.loads.Deferred() {
		newLoads.EndDeferred()
	}
	l.list = list
	l.placed = placed
	l.loads = newLoads
}

// Depart implements Allocator.
func (l *Lazy) Depart(id task.ID) {
	if l.greedy != nil {
		l.greedy.Depart(id)
		return
	}
	rec, ok := l.placed[id]
	if !ok {
		panic(fmt.Errorf("%w: %d (%s)", ErrUnknownTask, id, l.Name()))
	}
	l.list.Vacate(rec.copyIdx, rec.node)
	l.loads.Remove(rec.node)
	l.activeSize -= int64(rec.size)
	delete(l.placed, id)
}

// MaxLoad implements Allocator.
func (l *Lazy) MaxLoad() int {
	if l.greedy != nil {
		return l.greedy.MaxLoad()
	}
	return l.loads.MaxLoad()
}

// PELoads implements Allocator.
func (l *Lazy) PELoads() []int {
	if l.greedy != nil {
		return l.greedy.PELoads()
	}
	return l.loads.Loads()
}

// Placement implements Allocator.
func (l *Lazy) Placement(id task.ID) (tree.Node, bool) {
	if l.greedy != nil {
		return l.greedy.Placement(id)
	}
	rec, ok := l.placed[id]
	return rec.node, ok
}

// Active implements Allocator.
func (l *Lazy) Active() int {
	if l.greedy != nil {
		return l.greedy.Active()
	}
	return len(l.placed)
}

// ReallocStats implements Reallocator.
func (l *Lazy) ReallocStats() ReallocStats { return l.stats }

// EffectiveD implements Degradable.
func (l *Lazy) EffectiveD() int { return l.d }

// LazyRealloc implements Degradable; Lazy's trigger is always on-demand.
func (l *Lazy) LazyRealloc() bool { return true }

// SetEffectiveD implements Degradable.
func (l *Lazy) SetEffectiveD(d int) bool {
	if l.greedy != nil || d < 0 {
		return false
	}
	l.d = d
	return true
}

// SetLazyRealloc implements Degradable. Lazy cannot leave its on-demand
// trigger, so only lazy=true "takes effect".
func (l *Lazy) SetLazyRealloc(lazy bool) bool {
	return l.greedy == nil && lazy
}

// FailPE implements FaultTolerant.
func (l *Lazy) FailPE(pe int) []Migration {
	if l.greedy != nil {
		return l.greedy.FailPE(pe)
	}
	l.faults.markFailed(l.m, pe)
	migs := failInCopies(l.m, l.list, l.loads, l.placed, pe, l.observer)
	l.faults.recordMigrations(migs, l.m)
	return migs
}

// RecoverPE implements FaultTolerant.
func (l *Lazy) RecoverPE(pe int) {
	if l.greedy != nil {
		l.greedy.RecoverPE(pe)
		return
	}
	l.faults.markRecovered(l.m, pe)
	l.list.Unblock(l.m.LeafOf(pe))
}

// FailedPEs implements FaultTolerant.
func (l *Lazy) FailedPEs() []int {
	if l.greedy != nil {
		return l.greedy.FailedPEs()
	}
	return l.faults.FailedPEs()
}

// ForcedStats implements FaultTolerant.
func (l *Lazy) ForcedStats() ForcedStats {
	if l.greedy != nil {
		return l.greedy.ForcedStats()
	}
	return l.faults.ForcedStats()
}
