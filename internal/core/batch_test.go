package core

import (
	"math/rand"
	"reflect"
	"testing"

	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// batchFactories enumerates the allocators that implement BatchApplier,
// paired with a twin-constructor so batch and serial runs start identical.
func batchFactories(m *tree.Machine) map[string]func() Allocator {
	return map[string]func() Allocator{
		"A_B":            func() Allocator { return NewBasic(m) },
		"A_C":            func() Allocator { return NewConstant(m) },
		"A_M(d=2)":       func() Allocator { return NewPeriodic(m, 2, DecreasingSize) },
		"A_M(d=inf)":     func() Allocator { return NewPeriodic(m, -1, DecreasingSize) },
		"A_M-lazy(d=1)":  func() Allocator { return NewLazy(m, 1, DecreasingSize) },
		"A_Rand":         func() Allocator { return NewRandom(m, 7) },
		"A_Rand(seed=1)": func() Allocator { return NewRandom(m, 1) },
	}
}

// TestApplyBatchMatchesSerial replays the same random event stream through
// ApplyBatch (varied batch sizes) and through the per-event loop, and
// requires identical final PE loads, active sets, placements, and — for
// reallocators — identical ReallocStats. This is the guarantee the engine
// relies on: batching amortizes bookkeeping without changing behaviour.
func TestApplyBatchMatchesSerial(t *testing.T) {
	m := tree.MustNew(64)
	seq := randomEventStream(m.N(), 2000, 99)

	for name, mk := range batchFactories(m) {
		for _, batchSize := range []int{1, 7, 64, 500, len(seq)} {
			serial := mk()
			batch := mk()
			ba, ok := batch.(BatchApplier)
			if !ok {
				t.Fatalf("%s does not implement BatchApplier", name)
			}
			ApplyEvents(serial, seq)
			for i := 0; i < len(seq); i += batchSize {
				end := i + batchSize
				if end > len(seq) {
					end = len(seq)
				}
				ba.ApplyBatch(seq[i:end])
			}
			if got, want := batch.PELoads(), serial.PELoads(); !reflect.DeepEqual(got, want) {
				t.Errorf("%s batchSize=%d: PELoads = %v, serial %v", name, batchSize, got, want)
			}
			if got, want := batch.MaxLoad(), serial.MaxLoad(); got != want {
				t.Errorf("%s batchSize=%d: MaxLoad = %d, serial %d", name, batchSize, got, want)
			}
			if got, want := batch.Active(), serial.Active(); got != want {
				t.Errorf("%s batchSize=%d: Active = %d, serial %d", name, batchSize, got, want)
			}
			sr, srOK := serial.(Reallocator)
			br, brOK := batch.(Reallocator)
			if srOK != brOK {
				t.Fatalf("%s: Reallocator asymmetry", name)
			}
			if srOK {
				if got, want := br.ReallocStats(), sr.ReallocStats(); got != want {
					t.Errorf("%s batchSize=%d: ReallocStats = %+v, serial %+v", name, batchSize, got, want)
				}
			}
			// Spot-check placements of every active task.
			for _, e := range seq {
				sv, sok := serial.Placement(e.Task)
				bv, bok := batch.Placement(e.Task)
				if sok != bok || sv != bv {
					t.Errorf("%s batchSize=%d: task %d placement = (%d,%v), serial (%d,%v)",
						name, batchSize, e.Task, bv, bok, sv, sok)
				}
			}
		}
	}
}

// randomEventStream builds a valid random event stream: power-of-two sizes
// up to n, departures of previously-arrived active tasks.
func randomEventStream(n, events int, seed int64) []task.Event {
	rng := rand.New(rand.NewSource(seed))
	var (
		evs    []task.Event
		active []task.Event
		nextID task.ID = 1
	)
	maxExp := 0
	for 1<<(maxExp+1) <= n {
		maxExp++
	}
	for len(evs) < events {
		if len(active) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(active))
			a := active[i]
			active = append(active[:i], active[i+1:]...)
			evs = append(evs, task.Event{Kind: task.Depart, Task: a.Task, Size: a.Size, Time: float64(len(evs))})
			continue
		}
		e := task.Event{Kind: task.Arrive, Task: nextID, Size: 1 << rng.Intn(maxExp+1), Time: float64(len(evs))}
		nextID++
		active = append(active, e)
		evs = append(evs, e)
	}
	return evs
}

// BenchmarkApplySerial and BenchmarkApplyBatch measure the per-event
// bookkeeping cost the deferred load tree removes. Run via `make bench`.
func BenchmarkApplySerial(b *testing.B) {
	benchApply(b, false)
}

func BenchmarkApplyBatch(b *testing.B) {
	benchApply(b, true)
}

func benchApply(b *testing.B, batched bool) {
	m := tree.MustNew(256)
	seq := randomEventStream(m.N(), 5000, 42)
	for _, mk := range []struct {
		name string
		new  func() Allocator
	}{
		{"A_B", func() Allocator { return NewBasic(m) }},
		{"A_M(d=4)", func() Allocator { return NewPeriodic(m, 4, DecreasingSize) }},
		{"A_M-lazy(d=4)", func() Allocator { return NewLazy(m, 4, DecreasingSize) }},
		{"A_Rand", func() Allocator { return NewRandom(m, 7) }},
	} {
		b.Run(mk.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := mk.new()
				if batched {
					a.(BatchApplier).ApplyBatch(seq)
				} else {
					ApplyEvents(a, seq)
					a.MaxLoad()
				}
			}
			b.ReportMetric(float64(len(seq))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
