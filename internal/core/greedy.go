package core

import (
	"fmt"

	"partalloc/internal/loadtree"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// Greedy is algorithm A_G (§4.1): on arrival of a size-2^x task, compute
// the loads of all 2^x-PE submachines and assign the task to the leftmost
// one with the smallest load. It never reallocates. Theorem 4.1: its load
// is at most ⌈½(log N + 1)⌉ · L*.
type Greedy struct {
	m      *tree.Machine
	loads  *loadtree.Tree
	placed map[task.ID]tree.Node
}

// NewGreedy returns A_G on machine m.
func NewGreedy(m *tree.Machine) *Greedy {
	return &Greedy{m: m, loads: loadtree.New(m), placed: make(map[task.ID]tree.Node)}
}

// GreedyFactory builds A_G allocators.
func GreedyFactory() Factory {
	return Factory{Name: "A_G", New: func(m *tree.Machine) Allocator { return NewGreedy(m) }}
}

// Name implements Allocator.
func (g *Greedy) Name() string { return "A_G" }

// Machine implements Allocator.
func (g *Greedy) Machine() *tree.Machine { return g.m }

// Arrive implements Allocator using the leftmost-minimum-load rule.
func (g *Greedy) Arrive(t task.Task) tree.Node {
	checkArrival(g.m, t)
	if _, dup := g.placed[t.ID]; dup {
		panic(fmt.Sprintf("core: duplicate arrival of task %d", t.ID))
	}
	v, _ := g.loads.LeftmostMinLoad(t.Size)
	g.loads.Place(v)
	g.placed[t.ID] = v
	return v
}

// Depart implements Allocator.
func (g *Greedy) Depart(id task.ID) {
	v, ok := g.placed[id]
	if !ok {
		panic(fmt.Errorf("%w: %d (A_G)", ErrUnknownTask, id))
	}
	g.loads.Remove(v)
	delete(g.placed, id)
}

// MaxLoad implements Allocator.
func (g *Greedy) MaxLoad() int { return g.loads.MaxLoad() }

// PELoads implements Allocator.
func (g *Greedy) PELoads() []int { return g.loads.Loads() }

// Placement implements Allocator.
func (g *Greedy) Placement(id task.ID) (tree.Node, bool) {
	v, ok := g.placed[id]
	return v, ok
}

// Active implements Allocator.
func (g *Greedy) Active() int { return len(g.placed) }
