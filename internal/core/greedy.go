package core

import (
	"fmt"
	"sort"

	"partalloc/internal/errs"
	"partalloc/internal/loadtree"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// Greedy is algorithm A_G (§4.1): on arrival of a size-2^x task, compute
// the loads of all 2^x-PE submachines and assign the task to the leftmost
// one with the smallest load. It never reallocates. Theorem 4.1: its load
// is at most ⌈½(log N + 1)⌉ · L*.
//
// Under PE failures the rule is unchanged except that submachines covering
// a failed PE are excluded from the candidate set, and tasks stranded by a
// failure are re-placed by the same rule (leftmost minimum-load healthy
// submachine, largest tasks first).
type Greedy struct {
	m      *tree.Machine
	loads  *loadtree.Tree
	placed map[task.ID]tree.Node
	faults faultSet
	// failedUnder[v] counts failed PEs in v's subtree; allocated lazily on
	// the first failure so fault-free runs keep the O(log N) placement path.
	failedUnder []int32
}

// NewGreedy returns A_G on machine m.
func NewGreedy(m *tree.Machine) *Greedy {
	return &Greedy{m: m, loads: loadtree.New(m), placed: make(map[task.ID]tree.Node)}
}

// GreedyFactory builds A_G allocators.
func GreedyFactory() Factory {
	return Factory{Name: "A_G", New: func(m *tree.Machine) Allocator { return NewGreedy(m) }}
}

// Name implements Allocator.
func (g *Greedy) Name() string { return "A_G" }

// Machine implements Allocator.
func (g *Greedy) Machine() *tree.Machine { return g.m }

// Arrive implements Allocator using the leftmost-minimum-load rule.
func (g *Greedy) Arrive(t task.Task) tree.Node {
	checkArrival(g.m, t)
	if _, dup := g.placed[t.ID]; dup {
		panicDuplicate(t.ID, g.Name())
	}
	v := g.choose(t.Size)
	g.loads.Place(v)
	g.placed[t.ID] = v
	return v
}

// choose picks the leftmost minimum-load submachine of the given size,
// excluding any that covers a failed PE.
func (g *Greedy) choose(size int) tree.Node {
	if len(g.faults.failed) == 0 {
		v, _ := g.loads.LeftmostMinLoad(size)
		return v
	}
	best, bestLoad := tree.Node(0), 0
	for _, v := range g.m.Submachines(size) {
		if g.failedUnder[v] > 0 {
			continue
		}
		if l := g.loads.SubmachineLoad(v); best == 0 || l < bestLoad {
			best, bestLoad = v, l
		}
	}
	if best == 0 {
		panic(fmt.Errorf("core: no size-%d submachine avoids the %d failed PE(s) (A_G): %w", size, len(g.faults.failed), errs.ErrMachineFull))
	}
	return best
}

// Depart implements Allocator.
func (g *Greedy) Depart(id task.ID) {
	v, ok := g.placed[id]
	if !ok {
		panic(fmt.Errorf("%w: %d (A_G)", ErrUnknownTask, id))
	}
	g.loads.Remove(v)
	delete(g.placed, id)
}

// MaxLoad implements Allocator.
func (g *Greedy) MaxLoad() int { return g.loads.MaxLoad() }

// PELoads implements Allocator.
func (g *Greedy) PELoads() []int { return g.loads.Loads() }

// Placement implements Allocator.
func (g *Greedy) Placement(id task.ID) (tree.Node, bool) {
	v, ok := g.placed[id]
	return v, ok
}

// Active implements Allocator.
func (g *Greedy) Active() int { return len(g.placed) }

// FailPE implements FaultTolerant.
func (g *Greedy) FailPE(pe int) []Migration {
	g.faults.markFailed(g.m, pe)
	if g.failedUnder == nil {
		g.failedUnder = make([]int32, g.m.NumNodes()+1)
	}
	leaf := g.m.LeafOf(pe)
	for v := leaf; v >= 1; v = g.m.Parent(v) {
		g.failedUnder[v]++
		if v == 1 {
			break
		}
	}
	// Evict and re-place every task covering the failed leaf, largest
	// first so big tasks still find healthy submachines.
	var victims []task.Task
	for id, node := range g.placed {
		if g.m.Contains(node, leaf) {
			victims = append(victims, task.Task{ID: id, Size: g.m.Size(node)})
		}
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].Size != victims[j].Size {
			return victims[i].Size > victims[j].Size
		}
		return victims[i].ID < victims[j].ID
	})
	for _, t := range victims {
		g.loads.Remove(g.placed[t.ID])
	}
	migs := make([]Migration, 0, len(victims))
	for _, t := range victims {
		old := g.placed[t.ID]
		v := g.choose(t.Size)
		g.loads.Place(v)
		g.placed[t.ID] = v
		migs = append(migs, Migration{ID: t.ID, From: old, To: v})
	}
	g.faults.recordMigrations(migs, g.m)
	return migs
}

// RecoverPE implements FaultTolerant.
func (g *Greedy) RecoverPE(pe int) {
	g.faults.markRecovered(g.m, pe)
	for v := g.m.LeafOf(pe); v >= 1; v = g.m.Parent(v) {
		g.failedUnder[v]--
		if v == 1 {
			break
		}
	}
}

// FailedPEs implements FaultTolerant.
func (g *Greedy) FailedPEs() []int { return g.faults.FailedPEs() }

// ForcedStats implements FaultTolerant.
func (g *Greedy) ForcedStats() ForcedStats { return g.faults.ForcedStats() }
