package core

import (
	"fmt"
	"math/rand"

	"partalloc/internal/loadtree"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// TwoChoice is the balanced-allocations baseline (Azar, Broder, Karlin,
// Upfal, STOC'94 — the paper's related work [2]) adapted to submachine
// allocation: on arrival, draw two submachines of the task's size
// uniformly at random and place the task on the less loaded one (leftmost
// on a tie). It never reallocates.
//
// It sits between the oblivious A_Rand and the fully load-aware A_G: two
// random probes instead of a machine-wide scan, yet the classic
// power-of-two-choices effect drops the expected excess load from
// Θ(log N/log log N) to Θ(log log N) on the balls-into-bins workload —
// experiment E6 shows the separation.
type TwoChoice struct {
	m      *tree.Machine
	rng    *rand.Rand
	src    *countingSource // rng's source, counted so Snapshot can record PRNG position
	loads  *loadtree.Tree
	placed map[task.ID]tree.Node
}

// NewTwoChoice returns the two-choice allocator with the given seed.
func NewTwoChoice(m *tree.Machine, seed int64) *TwoChoice {
	src := newCountingSource(seed)
	return &TwoChoice{
		m:      m,
		rng:    rand.New(src),
		src:    src,
		loads:  loadtree.New(m),
		placed: make(map[task.ID]tree.Node),
	}
}

// TwoChoiceFactory builds two-choice allocators with the given seed.
func TwoChoiceFactory(seed int64) Factory {
	return Factory{Name: "A_2choice", New: func(m *tree.Machine) Allocator { return NewTwoChoice(m, seed) }}
}

// Name implements Allocator.
func (t *TwoChoice) Name() string { return "A_2choice" }

// Machine implements Allocator.
func (t *TwoChoice) Machine() *tree.Machine { return t.m }

// Arrive implements Allocator with the two-choice rule.
func (t *TwoChoice) Arrive(tk task.Task) tree.Node {
	checkArrival(t.m, tk)
	if _, dup := t.placed[tk.ID]; dup {
		panicDuplicate(tk.ID, t.Name())
	}
	k := t.m.NumSubmachines(tk.Size)
	a := t.m.SubmachineAt(tk.Size, t.rng.Intn(k))
	b := t.m.SubmachineAt(tk.Size, t.rng.Intn(k))
	v := a
	la, lb := t.loads.SubmachineLoad(a), t.loads.SubmachineLoad(b)
	if lb < la || (lb == la && b < a) {
		v = b
	}
	t.loads.Place(v)
	t.placed[tk.ID] = v
	return v
}

// Depart implements Allocator.
func (t *TwoChoice) Depart(id task.ID) {
	v, ok := t.placed[id]
	if !ok {
		panic(fmt.Errorf("%w: %d (A_2choice)", ErrUnknownTask, id))
	}
	t.loads.Remove(v)
	delete(t.placed, id)
}

// MaxLoad implements Allocator.
func (t *TwoChoice) MaxLoad() int { return t.loads.MaxLoad() }

// PELoads implements Allocator.
func (t *TwoChoice) PELoads() []int { return t.loads.Loads() }

// Placement implements Allocator.
func (t *TwoChoice) Placement(id task.ID) (tree.Node, bool) {
	v, ok := t.placed[id]
	return v, ok
}

// Active implements Allocator.
func (t *TwoChoice) Active() int { return len(t.placed) }
