package core

import (
	"bytes"
	"testing"

	"partalloc/internal/tree"
)

// FuzzSnapshotRoundTrip throws arbitrary bytes at every allocator's
// Restore. The contract under fuzzing:
//
//   - Restore never panics and never hangs: hostile input fails the CRC,
//     the range checks, or the plausibility caps, all wrapped in
//     ErrBadSnapshot.
//   - Anything Restore accepts is a reachable state: re-snapshotting it
//     and restoring *that* must succeed and re-encode byte-identically
//     (the codec is canonical from the first re-encode; the fuzzer may
//     hand us non-minimal varints, so the raw input itself need not
//     round-trip).
//
// The seed corpus is real mid-run snapshots of each algorithm — with
// faults in flight where supported — so coverage starts from the
// accepting paths, not just the header rejections.
func FuzzSnapshotRoundTrip(f *testing.F) {
	const n = 16
	for _, tc := range chkConfigs() {
		a := tc.build(tree.MustNew(n))
		for _, op := range chkScript(13, n, 150, tc.faulty) {
			applyChkOp(a, op)
		}
		f.Add(a.(Checkpointable).Snapshot())
	}
	f.Add([]byte{})
	f.Add([]byte{snapMagic0, snapMagic1, snapVersion, tagGreedy})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, tc := range chkConfigs() {
			c := tc.fresh(tree.MustNew(n)).(Checkpointable)
			if err := c.Restore(data); err != nil {
				continue
			}
			s1 := c.Snapshot()
			again := tc.fresh(tree.MustNew(n)).(Checkpointable)
			if err := again.Restore(s1); err != nil {
				t.Fatalf("%s: re-snapshot of an accepted state was rejected: %v", tc.name, err)
			}
			if s2 := again.Snapshot(); !bytes.Equal(s1, s2) {
				t.Fatalf("%s: accepted state does not re-encode canonically", tc.name)
			}
		}
	})
}
