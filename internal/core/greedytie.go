package core

import (
	"fmt"
	"math/rand"

	"partalloc/internal/loadtree"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// GreedyRandomTie is the tie-breaking ablation of A_G: it follows the same
// minimum-load placement rule but breaks ties uniformly at random instead
// of leftmost. Theorem 4.1's proof only uses minimum-load selection, so
// the bound applies to it unchanged; the variant exists to show that the
// leftmost rule is a determinism device, not a load-shaping one (and to
// measure whether randomized ties change average-case packing — E3's
// ablation row).
type GreedyRandomTie struct {
	m      *tree.Machine
	rng    *rand.Rand
	src    *countingSource // rng's source, counted so Snapshot can record PRNG position
	loads  *loadtree.Tree
	placed map[task.ID]tree.Node
}

// NewGreedyRandomTie returns the random-tie greedy variant.
func NewGreedyRandomTie(m *tree.Machine, seed int64) *GreedyRandomTie {
	src := newCountingSource(seed)
	return &GreedyRandomTie{
		m:      m,
		rng:    rand.New(src),
		src:    src,
		loads:  loadtree.New(m),
		placed: make(map[task.ID]tree.Node),
	}
}

// GreedyRandomTieFactory builds random-tie greedy allocators.
func GreedyRandomTieFactory(seed int64) Factory {
	return Factory{
		Name: "A_G-randtie",
		New:  func(m *tree.Machine) Allocator { return NewGreedyRandomTie(m, seed) },
	}
}

// Name implements Allocator.
func (g *GreedyRandomTie) Name() string { return "A_G-randtie" }

// Machine implements Allocator.
func (g *GreedyRandomTie) Machine() *tree.Machine { return g.m }

// Arrive implements Allocator: find the minimum load via the leftmost-min
// query, then reservoir-sample uniformly among all submachines tying it.
func (g *GreedyRandomTie) Arrive(t task.Task) tree.Node {
	checkArrival(g.m, t)
	if _, dup := g.placed[t.ID]; dup {
		panicDuplicate(t.ID, g.Name())
	}
	_, min := g.loads.LeftmostMinLoad(t.Size)
	// Reservoir-sample among ties.
	var pick tree.Node
	count := 0
	for _, v := range g.m.Submachines(t.Size) {
		if g.loads.SubmachineLoad(v) == min {
			count++
			if g.rng.Intn(count) == 0 {
				pick = v
			}
		}
	}
	g.loads.Place(pick)
	g.placed[t.ID] = pick
	return pick
}

// Depart implements Allocator.
func (g *GreedyRandomTie) Depart(id task.ID) {
	v, ok := g.placed[id]
	if !ok {
		panic(fmt.Errorf("%w: %d (A_G-randtie)", ErrUnknownTask, id))
	}
	g.loads.Remove(v)
	delete(g.placed, id)
}

// MaxLoad implements Allocator.
func (g *GreedyRandomTie) MaxLoad() int { return g.loads.MaxLoad() }

// PELoads implements Allocator.
func (g *GreedyRandomTie) PELoads() []int { return g.loads.Loads() }

// Placement implements Allocator.
func (g *GreedyRandomTie) Placement(id task.ID) (tree.Node, bool) {
	v, ok := g.placed[id]
	return v, ok
}

// Active implements Allocator.
func (g *GreedyRandomTie) Active() int { return len(g.placed) }
