package core

import (
	"math/rand"
	"sort"
	"testing"

	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// coversPE reports whether node v's submachine covers PE pe.
func coversPE(m *tree.Machine, v tree.Node, pe int) bool {
	lo, hi := m.PERange(v)
	return pe >= lo && pe < hi
}

// checkNoFailedCoverage asserts no active task covers any failed PE.
func checkNoFailedCoverage(t *testing.T, a FaultTolerant, ids []task.ID) {
	t.Helper()
	m := a.Machine()
	for _, pe := range a.FailedPEs() {
		for _, id := range ids {
			v, ok := a.Placement(id)
			if !ok {
				continue
			}
			if coversPE(m, v, pe) {
				t.Fatalf("task %d at node %d covers failed PE %d", id, v, pe)
			}
		}
	}
}

// faultTolerantFactories enumerates every allocator implementing
// FaultTolerant, covering both the copies-based family and greedy
// (including A_M's greedy-delegation mode via a large d).
func faultTolerantFactories() []Factory {
	return []Factory{
		GreedyFactory(),
		BasicFactory(),
		ConstantFactory(),
		PeriodicFactory(2),
		PeriodicFactory(1000), // greedy-delegation mode
		LazyFactory(2),
	}
}

func TestFailPEMigratesAffectedTasks(t *testing.T) {
	for _, f := range faultTolerantFactories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			m := tree.MustNew(16)
			a := f.New(m).(FaultTolerant)
			var ids []task.ID
			next := task.ID(1)
			for _, size := range []int{4, 4, 2, 2, 1, 1, 8} {
				a.Arrive(task.Task{ID: next, Size: size})
				ids = append(ids, next)
				next++
			}
			before := a.MaxLoad()
			migs := a.FailPE(3)
			if got := a.FailedPEs(); len(got) != 1 || got[0] != 3 {
				t.Fatalf("FailedPEs = %v, want [3]", got)
			}
			if len(migs) == 0 {
				t.Fatalf("no forced migrations although PE 3 was covered (max load %d before)", before)
			}
			checkNoFailedCoverage(t, a, ids)
			if st := a.ForcedStats(); st.Failures != 1 || st.Migrations != int64(len(migs)) {
				t.Fatalf("ForcedStats = %+v, want Failures=1 Migrations=%d", st, len(migs))
			}
			// Arrivals after the failure must avoid the failed PE too.
			for i := 0; i < 6; i++ {
				v := a.Arrive(task.Task{ID: next, Size: 2})
				ids = append(ids, next)
				next++
				if coversPE(m, v, 3) {
					t.Fatalf("post-failure arrival placed at node %d covering failed PE 3", v)
				}
			}
			checkNoFailedCoverage(t, a, ids)
			// Recovery restores capacity; the PE may be used again.
			a.RecoverPE(3)
			if got := a.FailedPEs(); len(got) != 0 {
				t.Fatalf("FailedPEs after recovery = %v, want empty", got)
			}
			if st := a.ForcedStats(); st.Recoveries != 1 {
				t.Fatalf("ForcedStats.Recoveries = %d, want 1", st.Recoveries)
			}
		})
	}
}

func TestFailPELoadConservation(t *testing.T) {
	// Load must be conserved across forced migrations: total PE load equals
	// the cumulative active size before and after each failure.
	for _, f := range faultTolerantFactories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			m := tree.MustNew(32)
			a := f.New(m).(FaultTolerant)
			rng := rand.New(rand.NewSource(7))
			var active []task.Task
			next := task.ID(1)
			var activeSize int64
			sum := func() int64 {
				var s int64
				for _, l := range a.PELoads() {
					s += int64(l)
				}
				return s
			}
			for step := 0; step < 200; step++ {
				switch {
				case step%17 == 13 && len(a.FailedPEs()) < 4:
					// Fail a random healthy PE.
					pe := rng.Intn(m.N())
					for isIn(a.FailedPEs(), pe) {
						pe = rng.Intn(m.N())
					}
					a.FailPE(pe)
				case step%23 == 19 && len(a.FailedPEs()) > 0:
					failed := a.FailedPEs()
					a.RecoverPE(failed[rng.Intn(len(failed))])
				case len(active) > 0 && rng.Intn(3) == 0:
					i := rng.Intn(len(active))
					a.Depart(active[i].ID)
					activeSize -= int64(active[i].Size)
					active = append(active[:i], active[i+1:]...)
				default:
					tk := task.Task{ID: next, Size: 1 << rng.Intn(3)}
					next++
					a.Arrive(tk)
					active = append(active, tk)
					activeSize += int64(tk.Size)
				}
				if got := sum(); got != activeSize {
					t.Fatalf("step %d: PE loads sum to %d, active size is %d", step, got, activeSize)
				}
				for _, pe := range a.FailedPEs() {
					if l := a.PELoads()[pe]; l != 0 {
						t.Fatalf("step %d: failed PE %d carries load %d", step, pe, l)
					}
				}
			}
		})
	}
}

func TestFailPEDeterministicMigrations(t *testing.T) {
	// Same state + same failure ⇒ identical migration list.
	run := func() []Migration {
		m := tree.MustNew(16)
		a := NewPeriodic(m, 2, DecreasingSize)
		for i := 1; i <= 9; i++ {
			a.Arrive(task.Task{ID: task.ID(i), Size: 1 << uint(i%3)})
		}
		return a.FailPE(5)
	}
	m1, m2 := run(), run()
	if len(m1) != len(m2) {
		t.Fatalf("migration counts differ: %d vs %d", len(m1), len(m2))
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("migration %d differs: %+v vs %+v", i, m1[i], m2[i])
		}
	}
}

func TestFailPEPanicsOnDoubleFailure(t *testing.T) {
	m := tree.MustNew(8)
	a := NewBasic(m)
	a.FailPE(2)
	defer func() {
		if recover() == nil {
			t.Fatalf("second FailPE(2) did not panic")
		}
	}()
	a.FailPE(2)
}

func TestRecoverPEPanicsOnHealthyPE(t *testing.T) {
	m := tree.MustNew(8)
	a := NewGreedy(m)
	defer func() {
		if recover() == nil {
			t.Fatalf("RecoverPE of healthy PE did not panic")
		}
	}()
	a.RecoverPE(1)
}

func TestFailPEExhaustionPanics(t *testing.T) {
	// A size-N task cannot survive any failure: FailPE must panic rather
	// than strand the task silently.
	m := tree.MustNew(8)
	a := NewBasic(m)
	a.Arrive(task.Task{ID: 1, Size: 8})
	defer func() {
		if recover() == nil {
			t.Fatalf("FailPE with no healthy size-8 submachine did not panic")
		}
	}()
	a.FailPE(0)
}

func TestVoluntaryReallocAvoidsFailedPEs(t *testing.T) {
	// A_M's periodic (voluntary) reallocation must keep avoiding failed
	// PEs: fail a PE, then push enough arrivals to trigger d·N realloc.
	m := tree.MustNew(16)
	a := NewPeriodic(m, 1, DecreasingSize)
	var ids []task.ID
	next := task.ID(1)
	arrive := func(size int) {
		a.Arrive(task.Task{ID: next, Size: size})
		ids = append(ids, next)
		next++
	}
	arrive(4)
	a.FailPE(1)
	for i := 0; i < 40; i++ { // several d·N thresholds worth of arrivals
		arrive(2)
	}
	if a.ReallocStats().Reallocations == 0 {
		t.Fatalf("expected at least one voluntary reallocation")
	}
	checkNoFailedCoverage(t, a, ids)
}

func TestForcedStatsSeparateFromReallocStats(t *testing.T) {
	// Forced migrations must not consume the voluntary d·N budget or count
	// as reallocations.
	m := tree.MustNew(16)
	a := NewPeriodic(m, 2, DecreasingSize)
	for i := 1; i <= 8; i++ {
		a.Arrive(task.Task{ID: task.ID(i), Size: 2})
	}
	voluntary := a.ReallocStats()
	migs := a.FailPE(0)
	if got := a.ReallocStats(); got != voluntary {
		t.Fatalf("ReallocStats changed across FailPE: %+v -> %+v", voluntary, got)
	}
	if forced := a.ForcedStats(); forced.Migrations != int64(len(migs)) {
		t.Fatalf("ForcedStats.Migrations = %d, want %d", forced.Migrations, len(migs))
	}
}

func isIn(xs []int, x int) bool {
	i := sort.SearchInts(xs, x)
	return i < len(xs) && xs[i] == x
}
