package core

import (
	"fmt"
	"math/rand"

	"partalloc/internal/loadtree"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// Random is the oblivious randomized algorithm of §5.1 (the paper also
// calls it A_R; we write A_Rand to avoid colliding with the reallocation
// procedure A_R of §3). On arrival of a size-2^x task it assigns it to a
// submachine chosen uniformly at random among the N/2^x submachines of
// that size — i.e. each with probability 2^x/N — ignoring current loads.
// It never reallocates. Theorem 5.1: its maximum expected load is at most
// (3·log N / log log N + 1) · L*.
type Random struct {
	m      *tree.Machine
	rng    *rand.Rand
	src    *countingSource // rng's source, counted so Snapshot can record PRNG position
	loads  *loadtree.Tree
	placed map[task.ID]tree.Node
}

// NewRandom returns A_Rand on machine m, drawing from the given seed.
func NewRandom(m *tree.Machine, seed int64) *Random {
	src := newCountingSource(seed)
	return &Random{
		m:      m,
		rng:    rand.New(src),
		src:    src,
		loads:  loadtree.New(m),
		placed: make(map[task.ID]tree.Node),
	}
}

// RandomFactory builds A_Rand allocators with the given seed.
func RandomFactory(seed int64) Factory {
	return Factory{Name: "A_Rand", New: func(m *tree.Machine) Allocator { return NewRandom(m, seed) }}
}

// Name implements Allocator.
func (r *Random) Name() string { return "A_Rand" }

// Machine implements Allocator.
func (r *Random) Machine() *tree.Machine { return r.m }

// Arrive implements Allocator with the oblivious uniform rule.
func (r *Random) Arrive(t task.Task) tree.Node {
	checkArrival(r.m, t)
	if _, dup := r.placed[t.ID]; dup {
		panicDuplicate(t.ID, r.Name())
	}
	k := r.m.NumSubmachines(t.Size)
	v := r.m.SubmachineAt(t.Size, r.rng.Intn(k))
	r.loads.Place(v)
	r.placed[t.ID] = v
	return v
}

// Depart implements Allocator.
func (r *Random) Depart(id task.ID) {
	v, ok := r.placed[id]
	if !ok {
		panic(fmt.Errorf("%w: %d (A_Rand)", ErrUnknownTask, id))
	}
	r.loads.Remove(v)
	delete(r.placed, id)
}

// MaxLoad implements Allocator.
func (r *Random) MaxLoad() int { return r.loads.MaxLoad() }

// PELoads implements Allocator.
func (r *Random) PELoads() []int { return r.loads.Loads() }

// Placement implements Allocator.
func (r *Random) Placement(id task.ID) (tree.Node, bool) {
	v, ok := r.placed[id]
	return v, ok
}

// Active implements Allocator.
func (r *Random) Active() int { return len(r.placed) }
