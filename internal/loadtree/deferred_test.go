package loadtree

import (
	"math/rand"
	"testing"

	"partalloc/internal/tree"
)

// TestDeferredMatchesEager drives an eager tree and a deferred tree through
// the same random placement/removal stream in batches; after every batch
// the deferred tree must answer every aggregate query identically and pass
// the from-scratch invariant check.
func TestDeferredMatchesEager(t *testing.T) {
	for _, n := range []int{2, 16, 128} {
		m := tree.MustNew(n)
		eager := New(m)
		lazy := New(m)
		rng := rand.New(rand.NewSource(int64(n)))
		var placedNodes []tree.Node

		for batch := 0; batch < 20; batch++ {
			lazy.BeginDeferred()
			for op := 0; op < 50; op++ {
				if len(placedNodes) > 0 && rng.Intn(3) == 0 {
					i := rng.Intn(len(placedNodes))
					v := placedNodes[i]
					placedNodes = append(placedNodes[:i], placedNodes[i+1:]...)
					eager.Remove(v)
					lazy.Remove(v)
					continue
				}
				size := 1 << rng.Intn(m.Levels()+1)
				k := m.NumSubmachines(size)
				v := m.SubmachineAt(size, rng.Intn(k))
				placedNodes = append(placedNodes, v)
				eager.Place(v)
				lazy.Place(v)
			}
			// Queries mid-batch must flush transparently.
			if batch%3 == 0 {
				if got, want := lazy.MaxLoad(), eager.MaxLoad(); got != want {
					t.Fatalf("n=%d batch %d mid-batch MaxLoad = %d, eager %d", n, batch, got, want)
				}
			}
			lazy.EndDeferred()

			if got, want := lazy.MaxLoad(), eager.MaxLoad(); got != want {
				t.Fatalf("n=%d batch %d MaxLoad = %d, eager %d", n, batch, got, want)
			}
			for size := 1; size <= n; size *= 2 {
				gv, gl := lazy.LeftmostMinLoad(size)
				ev, el := eager.LeftmostMinLoad(size)
				if gv != ev || gl != el {
					t.Fatalf("n=%d batch %d LeftmostMinLoad(%d) = (%d,%d), eager (%d,%d)", n, batch, size, gv, gl, ev, el)
				}
			}
			gl, el := lazy.Loads(), eager.Loads()
			for p := range gl {
				if gl[p] != el[p] {
					t.Fatalf("n=%d batch %d PE %d load = %d, eager %d", n, batch, p, gl[p], el[p])
				}
			}
			lazy.CheckInvariants()
		}
	}
}

// TestDeferredCoverQueriesSkipFlush checks that cover-only queries answer
// correctly during a deferred batch without forcing a rebuild.
func TestDeferredCoverQueriesSkipFlush(t *testing.T) {
	m := tree.MustNew(8)
	lt := New(m)
	lt.BeginDeferred()
	lt.Place(tree.Node(1)) // whole machine
	lt.Place(m.LeafOf(3))
	if got := lt.PELoad(3); got != 2 {
		t.Errorf("PELoad(3) = %d, want 2", got)
	}
	if got := lt.CumulativeSize(); got != 9 {
		t.Errorf("CumulativeSize = %d, want 9", got)
	}
	if !lt.Deferred() {
		t.Error("tree left deferred mode without EndDeferred")
	}
	if lt.dirty == false {
		t.Error("cover-only queries should not have flushed the batch")
	}
	lt.EndDeferred()
	if got := lt.MaxLoad(); got != 2 {
		t.Errorf("MaxLoad = %d, want 2", got)
	}
}
