package loadtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"partalloc/internal/tree"
)

func TestEmpty(t *testing.T) {
	lt := New(tree.MustNew(8))
	if lt.MaxLoad() != 0 || lt.Active() != 0 || lt.CumulativeSize() != 0 {
		t.Fatal("empty tree not empty")
	}
	for p := 0; p < 8; p++ {
		if lt.PELoad(p) != 0 {
			t.Fatalf("PE %d load nonzero", p)
		}
	}
	v, load := lt.LeftmostMinLoad(2)
	if v != 4 || load != 0 {
		t.Fatalf("LeftmostMinLoad(2) = %d,%d; want 4,0", v, load)
	}
}

func TestPlaceRemove(t *testing.T) {
	m := tree.MustNew(8)
	lt := New(m)
	lt.Place(2) // covers PEs 0..3
	lt.Place(4) // covers PEs 0..1
	lt.Place(8) // PE 0
	lt.CheckInvariants()
	wantLoads := []int{3, 2, 1, 1, 0, 0, 0, 0}
	for p, w := range wantLoads {
		if got := lt.PELoad(p); got != w {
			t.Errorf("PELoad(%d) = %d, want %d", p, got, w)
		}
	}
	if lt.MaxLoad() != 3 {
		t.Errorf("MaxLoad = %d, want 3", lt.MaxLoad())
	}
	if lt.CumulativeSize() != 4+2+1 {
		t.Errorf("CumulativeSize = %d, want 7", lt.CumulativeSize())
	}
	if got := lt.SubmachineLoad(4); got != 3 {
		t.Errorf("SubmachineLoad(4) = %d, want 3", got)
	}
	if got := lt.SubmachineLoad(5); got != 1 {
		t.Errorf("SubmachineLoad(5) = %d, want 1", got)
	}
	if got := lt.SubmachineLoad(3); got != 0 {
		t.Errorf("SubmachineLoad(3) = %d, want 0", got)
	}
	lt.Remove(2)
	lt.CheckInvariants()
	if lt.MaxLoad() != 2 || lt.Active() != 2 {
		t.Errorf("after remove: max=%d active=%d", lt.MaxLoad(), lt.Active())
	}
}

func TestRemovePanicsWhenAbsent(t *testing.T) {
	lt := New(tree.MustNew(4))
	defer func() {
		if recover() == nil {
			t.Error("Remove of absent task did not panic")
		}
	}()
	lt.Remove(2)
}

func TestLeftmostMinLoadTieBreak(t *testing.T) {
	m := tree.MustNew(8)
	lt := New(m)
	// All size-2 submachines idle: leftmost is node 4.
	if v, _ := lt.LeftmostMinLoad(2); v != 4 {
		t.Fatalf("want leftmost node 4, got %d", v)
	}
	lt.Place(4)
	// Nodes 5,6,7 tie at 0; leftmost is 5.
	if v, load := lt.LeftmostMinLoad(2); v != 5 || load != 0 {
		t.Fatalf("want 5,0; got %d,%d", v, load)
	}
	lt.Place(5)
	lt.Place(6)
	lt.Place(7)
	// All at 1; leftmost again 4.
	if v, load := lt.LeftmostMinLoad(2); v != 4 || load != 1 {
		t.Fatalf("want 4,1; got %d,%d", v, load)
	}
	// A task on node 3 (right half) pushes 6,7 to 2.
	lt.Place(3)
	if v, load := lt.LeftmostMinLoad(2); v != 4 || load != 1 {
		t.Fatalf("want 4,1; got %d,%d", v, load)
	}
	// Load node 2 (left half) with two tasks: now right half better? left
	// submachines 4,5 at 3; right at 2; leftmost min is 6.
	lt.Place(2)
	lt.Place(2)
	if v, load := lt.LeftmostMinLoad(2); v != 6 || load != 2 {
		t.Fatalf("want 6,2; got %d,%d", v, load)
	}
}

func TestLeftmostMinLoadSizeN(t *testing.T) {
	lt := New(tree.MustNew(4))
	lt.Place(1)
	v, load := lt.LeftmostMinLoad(4)
	if v != 1 || load != 1 {
		t.Fatalf("got %d,%d", v, load)
	}
}

// Reference implementation: brute-force loads via PE arrays.
type brute struct {
	m     *tree.Machine
	tasks []tree.Node
}

func (b *brute) loads() []int {
	out := make([]int, b.m.N())
	for _, v := range b.tasks {
		lo, hi := b.m.PERange(v)
		for p := lo; p < hi; p++ {
			out[p]++
		}
	}
	return out
}

func (b *brute) subLoad(v tree.Node) int {
	loads := b.loads()
	lo, hi := b.m.PERange(v)
	max := 0
	for p := lo; p < hi; p++ {
		if loads[p] > max {
			max = loads[p]
		}
	}
	return max
}

func (b *brute) leftmostMin(size int) (tree.Node, int) {
	best, bestLoad := tree.Node(0), 1<<30
	for _, v := range b.m.Submachines(size) {
		if l := b.subLoad(v); l < bestLoad {
			best, bestLoad = v, l
		}
	}
	return best, bestLoad
}

func TestAgainstBruteForceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		levels := 1 + rng.Intn(6)
		m := tree.MustNew(1 << levels)
		lt := New(m)
		b := &brute{m: m}
		for step := 0; step < 200; step++ {
			if len(b.tasks) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(b.tasks))
				v := b.tasks[i]
				b.tasks[i] = b.tasks[len(b.tasks)-1]
				b.tasks = b.tasks[:len(b.tasks)-1]
				lt.Remove(v)
			} else {
				size := 1 << rng.Intn(levels+1)
				k := m.NumSubmachines(size)
				v := m.SubmachineAt(size, rng.Intn(k))
				b.tasks = append(b.tasks, v)
				lt.Place(v)
			}
			lt.CheckInvariants()
			wantLoads := b.loads()
			gotLoads := lt.Loads()
			for p := range wantLoads {
				if wantLoads[p] != gotLoads[p] {
					t.Fatalf("trial %d step %d: PE %d load %d want %d",
						trial, step, p, gotLoads[p], wantLoads[p])
				}
				if lt.PELoad(p) != wantLoads[p] {
					t.Fatalf("PELoad(%d) mismatch", p)
				}
			}
			// Max load.
			wantMax := 0
			for _, l := range wantLoads {
				if l > wantMax {
					wantMax = l
				}
			}
			if lt.MaxLoad() != wantMax {
				t.Fatalf("MaxLoad = %d, want %d", lt.MaxLoad(), wantMax)
			}
			// Submachine loads and leftmost-min for every size.
			for s := 1; s <= m.N(); s *= 2 {
				for _, v := range m.Submachines(s) {
					if lt.SubmachineLoad(v) != b.subLoad(v) {
						t.Fatalf("SubmachineLoad(%d) = %d, want %d",
							v, lt.SubmachineLoad(v), b.subLoad(v))
					}
				}
				gv, gl := lt.LeftmostMinLoad(s)
				wv, wl := b.leftmostMin(s)
				if gv != wv || gl != wl {
					t.Fatalf("LeftmostMinLoad(%d) = %d,%d; want %d,%d", s, gv, gl, wv, wl)
				}
			}
			// Cumulative size.
			var want int64
			for _, v := range b.tasks {
				want += int64(m.Size(v))
			}
			if lt.CumulativeSize() != want {
				t.Fatalf("CumulativeSize = %d, want %d", lt.CumulativeSize(), want)
			}
		}
	}
}

// Property: placing then removing restores all observable state.
func TestPlaceRemoveInverseProperty(t *testing.T) {
	m := tree.MustNew(32)
	lt := New(m)
	// Background tasks.
	lt.Place(3)
	lt.Place(17)
	before := lt.Loads()
	f := func(raw uint16) bool {
		v := tree.Node(int(raw)%m.NumNodes() + 1)
		lt.Place(v)
		lt.Remove(v)
		after := lt.Loads()
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPlaceRemove(b *testing.B) {
	m := tree.MustNew(1 << 14)
	lt := New(m)
	rng := rand.New(rand.NewSource(1))
	nodes := make([]tree.Node, 1024)
	for i := range nodes {
		size := 1 << rng.Intn(10)
		nodes[i] = m.SubmachineAt(size, rng.Intn(m.NumSubmachines(size)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := nodes[i%len(nodes)]
		lt.Place(v)
		lt.Remove(v)
	}
}

func BenchmarkLeftmostMinLoad(b *testing.B) {
	m := tree.MustNew(1 << 14)
	lt := New(m)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		size := 1 << rng.Intn(10)
		lt.Place(m.SubmachineAt(size, rng.Intn(m.NumSubmachines(size))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lt.LeftmostMinLoad(1 << (i % 10))
	}
}
