// Package loadtree maintains per-PE thread loads on a tree machine under
// task placement and removal, and answers the queries the paper's on-line
// algorithms need:
//
//   - the load of any submachine (the maximum load of its PEs, which is what
//     algorithm A_G minimizes over candidate submachines), and
//   - the leftmost minimum-load submachine of a given size (A_G's placement
//     rule, including the paper's leftmost tie-break).
//
// A task assigned to the submachine rooted at v adds one thread to every PE
// under v. Rather than updating all those leaves, the tree stores at each
// node a cover count — the number of active tasks assigned exactly there —
// and aggregates maxBelow(v) = cover(v) + max over children. The load of a
// PE is then the sum of cover counts along its root path, and the load of a
// submachine v is maxBelow(v) plus the cover counts of v's proper ancestors.
// Place and Remove are O(log N); submachine-load queries are O(log N);
// the leftmost-min search is O(N/size) via depth-first descent.
package loadtree

import (
	"fmt"
	"math/bits"

	"partalloc/internal/tree"
)

// Tree tracks loads for one machine. It is not safe for concurrent use;
// simulations drive one Tree per allocator from a single goroutine.
type Tree struct {
	m        *tree.Machine
	levels   int
	cover    []int32 // cover[v]: tasks assigned exactly at node v
	maxBelow []int32 // maxBelow[v]: max PE load within v's subtree, excluding ancestor covers
	minBelow []int32 // minBelow[v]: min PE load within v's subtree, excluding ancestor covers
	// bestAt[v][k] is the minimum, over depth-(depth(v)+k) descendants u of
	// v, of (covers strictly between v and u) + maxBelow(u) — i.e. the best
	// submachine load at that granularity within v, excluding v's own cover
	// and everything above. bestAt[v][0] = maxBelow(v). It is the aggregate
	// that makes LeftmostMinLoad O(log N) at every size even under
	// adversarial fragmentation (where min-leaf pruning degrades to a full
	// level scan).
	bestAt [][]int32
	active int // number of placed tasks
	// deferred aggregation (see BeginDeferred): while set, Place/Remove
	// update only cover counts and the aggregates are rebuilt lazily, in
	// one bottom-up pass, the next time a query needs them.
	deferred bool
	dirty    bool
}

// New creates an all-idle load tree over machine m.
func New(m *tree.Machine) *Tree {
	nn := m.NumNodes() + 1 // 1-indexed
	t := &Tree{
		m:        m,
		levels:   m.Levels(),
		cover:    make([]int32, nn),
		maxBelow: make([]int32, nn),
		minBelow: make([]int32, nn),
		bestAt:   make([][]int32, nn),
	}
	// Carve every bestAt row out of one flat backing array: Tree
	// construction is on A_C/A_M's reallocation path, so per-node
	// allocations would dominate their profile.
	total := 0
	for v := 1; v <= m.NumNodes(); v++ {
		total += t.levels - mathxLog2Floor(v) + 1
	}
	backing := make([]int32, total)
	off := 0
	for v := 1; v <= m.NumNodes(); v++ {
		l := t.levels - mathxLog2Floor(v) + 1
		t.bestAt[v] = backing[off : off+l : off+l]
		off += l
	}
	return t
}

// mathxLog2Floor is floor(log2(v)) for v ≥ 1.
func mathxLog2Floor(v int) int {
	return bits.Len(uint(v)) - 1
}

// Machine returns the underlying machine description.
func (t *Tree) Machine() *tree.Machine { return t.m }

// LevelWidth returns the number of distinct physical switch blocks at
// depth d of the machine's decomposition (2^d on a plain binary machine;
// coarser on non-binary physical hierarchies like the fat tree, whose
// virtual depths inherit the enclosing physical level's width). Load
// bookkeeping is identical either way — the metadata exists so host-aware
// consumers (invariant audits, capacity reporting) can distinguish
// physical capacity boundaries from virtual binary splits.
func (t *Tree) LevelWidth(d int) int { return t.m.LevelWidth(d) }

// Active returns the number of currently placed tasks.
func (t *Tree) Active() int { return t.active }

// Place records one task assigned to the submachine rooted at v.
func (t *Tree) Place(v tree.Node) {
	t.add(v, 1)
	t.active++
}

// Remove erases one previously placed task from the submachine rooted at v.
// It panics if no task is assigned exactly at v.
func (t *Tree) Remove(v tree.Node) {
	if t.cover[v] <= 0 {
		panic(fmt.Sprintf("loadtree: Remove(%d) with no task assigned there", v))
	}
	t.add(v, -1)
	t.active--
}

func (t *Tree) add(v tree.Node, delta int32) {
	if !t.m.Valid(v) {
		panic(fmt.Sprintf("loadtree: invalid node %d", v))
	}
	t.cover[v] += delta
	if t.deferred {
		t.dirty = true
		return
	}
	for u := v; u >= 1; u /= 2 {
		mb, nb := t.cover[u], t.cover[u]
		if !t.m.IsLeaf(u) {
			l, r := t.maxBelow[2*u], t.maxBelow[2*u+1]
			if l < r {
				l = r
			}
			mb += l
			l2, r2 := t.minBelow[2*u], t.minBelow[2*u+1]
			if r2 < l2 {
				l2 = r2
			}
			nb += l2
		}
		t.maxBelow[u] = mb
		t.minBelow[u] = nb
		t.refreshBestAt(tree.Node(u))
	}
}

// BeginDeferred switches the tree into deferred-aggregation mode: Place
// and Remove update only the O(1) cover counts, and maxBelow/minBelow/
// bestAt are rebuilt in a single O(N) bottom-up pass the next time an
// aggregate query (MaxLoad, SubmachineLoad, LeftmostMinLoad,
// CheckInvariants) needs them. Cover-only queries (PELoad, Loads,
// CumulativeSize) never force a rebuild.
//
// This is the batching lever the copies-based allocators (A_B, A_M, lazy)
// and A_Rand exploit: their placement decisions never read the aggregates,
// so a batch of k events costs O(k + N) instead of O(k·log²N). Algorithms
// that query loads on every arrival (A_G) gain nothing and should stay
// eager. Final state is bit-identical either way.
func (t *Tree) BeginDeferred() { t.deferred = true }

// EndDeferred rebuilds any pending aggregates and returns the tree to
// eager per-update maintenance.
func (t *Tree) EndDeferred() {
	t.flush()
	t.deferred = false
}

// Deferred reports whether the tree is in deferred-aggregation mode.
func (t *Tree) Deferred() bool { return t.deferred }

// flush rebuilds every aggregate bottom-up if cover changed since the last
// rebuild. Children have larger heap indexes than parents, so a single
// descending scan sees each node's children already refreshed.
func (t *Tree) flush() {
	if !t.dirty {
		return
	}
	for v := t.m.NumNodes(); v >= 1; v-- {
		u := tree.Node(v)
		mb, nb := t.cover[u], t.cover[u]
		if !t.m.IsLeaf(u) {
			l, r := t.maxBelow[2*u], t.maxBelow[2*u+1]
			if l < r {
				l = r
			}
			mb += l
			l2, r2 := t.minBelow[2*u], t.minBelow[2*u+1]
			if r2 < l2 {
				l2 = r2
			}
			nb += l2
		}
		t.maxBelow[u] = mb
		t.minBelow[u] = nb
		t.refreshBestAt(u)
	}
	t.dirty = false
}

// refreshBestAt recomputes bestAt[u] from u's (already current) children.
func (t *Tree) refreshBestAt(u tree.Node) {
	b := t.bestAt[u]
	b[0] = t.maxBelow[u]
	if t.m.IsLeaf(u) {
		return
	}
	l, r := 2*u, 2*u+1
	bl, br := t.bestAt[l], t.bestAt[r]
	for k := 1; k < len(b); k++ {
		lv, rv := bl[k-1], br[k-1]
		if k-1 >= 1 {
			lv += t.cover[l]
			rv += t.cover[r]
		}
		if rv < lv {
			lv = rv
		}
		b[k] = lv
	}
}

// MaxLoad returns the machine-wide maximum PE load (the paper's
// L_A(sigma; tau) at the current instant).
func (t *Tree) MaxLoad() int {
	t.flush()
	return int(t.maxBelow[1])
}

// PELoad returns the load of PE p: the number of active tasks whose
// submachine covers p.
func (t *Tree) PELoad(p int) int {
	var sum int32
	for u := t.m.LeafOf(p); u >= 1; u /= 2 {
		sum += t.cover[u]
	}
	return int(sum)
}

// SubmachineLoad returns the load of the submachine rooted at v: the
// maximum load among its PEs.
func (t *Tree) SubmachineLoad(v tree.Node) int {
	t.flush()
	sum := t.maxBelow[v]
	t.m.Ancestors(v, func(u tree.Node) bool {
		sum += t.cover[u]
		return true
	})
	return int(sum)
}

// CumulativeSize returns the total size (PE count) of all active tasks —
// sum over tasks of their submachine sizes.
func (t *Tree) CumulativeSize() int64 {
	var s int64
	for v := 1; v <= t.m.NumNodes(); v++ {
		s += int64(t.cover[v]) * int64(t.m.Size(tree.Node(v)))
	}
	return s
}

// LeftmostMinLoad returns the leftmost submachine of the given size with
// the smallest load, and that load. This is A_G's placement rule.
//
// The bestAt aggregate answers it in O(log N): the minimal load at depth d
// is cover[root] + bestAt[root][d] (the root's cover burdens every
// candidate), and the leftmost argmin is found by descending toward the
// child whose contribution attains the minimum, preferring the left child
// on ties.
func (t *Tree) LeftmostMinLoad(size int) (tree.Node, int) {
	t.flush()
	d := t.m.DepthForSize(size)
	load := t.bestAt[1][d]
	if d >= 1 {
		load += t.cover[1]
	}
	v := tree.Node(1)
	for k := d; k >= 1; k-- {
		l, r := 2*v, 2*v+1
		lv, rv := t.bestAt[l][k-1], t.bestAt[r][k-1]
		if k-1 >= 1 {
			lv += t.cover[l]
			rv += t.cover[r]
		}
		if lv <= rv {
			v = l
		} else {
			v = r
		}
	}
	return v, int(load)
}

// Loads returns a snapshot of all PE loads; for metrics and tests.
func (t *Tree) Loads() []int {
	n := t.m.N()
	out := make([]int, n)
	t.fill(1, 0, out)
	return out
}

func (t *Tree) fill(v tree.Node, pathSum int32, out []int) {
	pathSum += t.cover[v]
	if t.m.IsLeaf(v) {
		out[t.m.PEOf(v)] = int(pathSum)
		return
	}
	t.fill(2*v, pathSum, out)
	t.fill(2*v+1, pathSum, out)
}

// CheckInvariants recomputes the aggregate from scratch and panics on any
// mismatch; used by tests and the simulator's paranoid mode. Pending
// deferred updates are flushed first — they are bookkeeping debt, not an
// inconsistency.
func (t *Tree) CheckInvariants() {
	t.flush()
	var rec func(v tree.Node) (int32, int32)
	rec = func(v tree.Node) (int32, int32) {
		mb, nb := t.cover[v], t.cover[v]
		if t.cover[v] < 0 {
			panic(fmt.Sprintf("loadtree: negative cover at node %d", v))
		}
		if !t.m.IsLeaf(v) {
			lmax, lmin := rec(t.m.Left(v))
			rmax, rmin := rec(t.m.Right(v))
			if lmax < rmax {
				lmax = rmax
			}
			mb += lmax
			if rmin < lmin {
				lmin = rmin
			}
			nb += lmin
		}
		if mb != t.maxBelow[v] {
			panic(fmt.Sprintf("loadtree: maxBelow[%d] = %d, recomputed %d", v, t.maxBelow[v], mb))
		}
		if nb != t.minBelow[v] {
			panic(fmt.Sprintf("loadtree: minBelow[%d] = %d, recomputed %d", v, t.minBelow[v], nb))
		}
		return mb, nb
	}
	rec(1)
	// bestAt: recompute each entry by brute force over the depth level.
	var bruteBest func(v tree.Node, k int) int32
	bruteBest = func(v tree.Node, k int) int32 {
		if k == 0 {
			return t.maxBelow[v]
		}
		l, r := 2*v, 2*v+1
		lv, rv := bruteBest(l, k-1), bruteBest(r, k-1)
		if k-1 >= 1 {
			lv += t.cover[l]
			rv += t.cover[r]
		}
		if rv < lv {
			lv = rv
		}
		return lv
	}
	for v := 1; v <= t.m.NumNodes(); v++ {
		for k := range t.bestAt[v] {
			if got, want := t.bestAt[v][k], bruteBest(tree.Node(v), k); got != want {
				panic(fmt.Sprintf("loadtree: bestAt[%d][%d] = %d, recomputed %d", v, k, got, want))
			}
		}
	}
}
