package task

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	id1 := b.Arrive(4)
	id2 := b.At(1).Arrive(2)
	if id1 != 1 || id2 != 2 {
		t.Fatalf("ids = %d,%d", id1, id2)
	}
	if b.ActiveSize() != 6 {
		t.Fatalf("ActiveSize = %d", b.ActiveSize())
	}
	b.Depart(id1)
	if b.ActiveSize() != 2 || b.SizeOf(id1) != 0 || b.SizeOf(id2) != 2 {
		t.Fatal("departure bookkeeping wrong")
	}
	seq := b.Sequence()
	if err := seq.Validate(8); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(seq.Events) != 3 {
		t.Fatalf("events = %d", len(seq.Events))
	}
	if seq.Events[2].Kind != Depart || seq.Events[2].Size != 4 {
		t.Fatalf("departure event %+v", seq.Events[2])
	}
}

func TestBuilderActiveSorted(t *testing.T) {
	b := NewBuilder()
	var ids []ID
	for i := 0; i < 20; i++ {
		ids = append(ids, b.Arrive(1))
	}
	b.Depart(ids[3])
	b.Depart(ids[17])
	act := b.Active()
	if len(act) != 18 {
		t.Fatalf("active len %d", len(act))
	}
	for i := 1; i < len(act); i++ {
		if act[i] <= act[i-1] {
			t.Fatal("Active not sorted")
		}
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	//lint:ignore powtwo deliberately invalid size: this test asserts the panic fires
	mustPanic("bad size", func() { NewBuilder().Arrive(3) })
	mustPanic("clock backwards", func() { NewBuilder().At(5).At(4) })
	mustPanic("inactive depart", func() { NewBuilder().Depart(7) })
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		seq  Sequence
	}{
		{"bad size", Sequence{Events: []Event{{Kind: Arrive, Task: 1, Size: 3}}}},
		{"too large", Sequence{Events: []Event{{Kind: Arrive, Task: 1, Size: 16}}}},
		{"zero id", Sequence{Events: []Event{{Kind: Arrive, Task: 0, Size: 1}}}},
		{"re-arrival", Sequence{Events: []Event{
			{Kind: Arrive, Task: 1, Size: 1},
			{Kind: Arrive, Task: 1, Size: 1}}}},
		{"ghost departure", Sequence{Events: []Event{{Kind: Depart, Task: 1}}}},
		{"double departure", Sequence{Events: []Event{
			{Kind: Arrive, Task: 1, Size: 1},
			{Kind: Depart, Task: 1},
			{Kind: Depart, Task: 1}}}},
		{"size mismatch", Sequence{Events: []Event{
			{Kind: Arrive, Task: 1, Size: 2},
			{Kind: Depart, Task: 1, Size: 4}}}},
		{"time travel", Sequence{Events: []Event{
			{Kind: Arrive, Task: 1, Size: 1, Time: 5},
			{Kind: Arrive, Task: 2, Size: 1, Time: 4}}}},
		{"unknown kind", Sequence{Events: []Event{{Kind: Kind(9), Task: 1, Size: 1}}}},
	}
	for _, c := range cases {
		if err := c.seq.Validate(8); err == nil {
			t.Errorf("%s: Validate accepted invalid sequence", c.name)
		}
	}
}

func TestSizeAndOptimalLoad(t *testing.T) {
	b := NewBuilder()
	a := b.Arrive(4)
	bb := b.Arrive(4) // active size 8
	b.Depart(a)
	b.Depart(bb)
	c := b.Arrive(2)
	_ = c
	seq := b.Sequence()
	if got := seq.Size(); got != 8 {
		t.Fatalf("Size = %d, want 8", got)
	}
	if got := seq.OptimalLoad(4); got != 2 {
		t.Fatalf("OptimalLoad(4) = %d, want 2", got)
	}
	if got := seq.OptimalLoad(8); got != 1 {
		t.Fatalf("OptimalLoad(8) = %d, want 1", got)
	}
	if got := seq.OptimalLoad(16); got != 1 {
		t.Fatalf("OptimalLoad(16) = %d, want 1 (ceil)", got)
	}
	if got := seq.TotalArrivalSize(); got != 10 {
		t.Fatalf("TotalArrivalSize = %d, want 10", got)
	}
	if got := seq.NumArrivals(); got != 3 {
		t.Fatalf("NumArrivals = %d", got)
	}
	empty := Sequence{}
	if empty.OptimalLoad(4) != 0 || empty.Size() != 0 {
		t.Fatal("empty sequence stats wrong")
	}
}

func TestActiveSizeAfter(t *testing.T) {
	b := NewBuilder()
	x := b.Arrive(2)
	b.Arrive(4)
	b.Depart(x)
	seq := b.Sequence()
	want := []int64{2, 6, 4}
	if got := seq.ActiveSizeAfter(-1); got != 0 {
		t.Fatalf("prefix -1: %d", got)
	}
	for i, w := range want {
		if got := seq.ActiveSizeAfter(i); got != w {
			t.Fatalf("prefix %d: %d want %d", i, got, w)
		}
	}
	if got := seq.ActiveSizeAfter(99); got != 4 {
		t.Fatalf("past end: %d", got)
	}
}

func TestFigure1Sequence(t *testing.T) {
	seq := Figure1Sequence()
	if err := seq.Validate(4); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(seq.Events) != 7 {
		t.Fatalf("events = %d, want 7", len(seq.Events))
	}
	// s(σ*) = 4 (four size-1 tasks all active), so L* = 1 on N=4.
	if seq.Size() != 4 {
		t.Fatalf("Size = %d, want 4", seq.Size())
	}
	if seq.OptimalLoad(4) != 1 {
		t.Fatalf("L* = %d, want 1", seq.OptimalLoad(4))
	}
	// Final active set: t1, t3, t5 with sizes 1,1,2.
	if got := seq.ActiveSizeAfter(len(seq.Events) - 1); got != 4 {
		t.Fatalf("final active size = %d, want 4", got)
	}
}

// Property: Size equals max over prefixes of ActiveSizeAfter, and
// builder-produced sequences always validate.
func TestSequenceSizeProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		for i := 0; i < int(steps)%60+1; i++ {
			act := b.Active()
			if len(act) > 0 && rng.Intn(3) == 0 {
				b.Depart(act[rng.Intn(len(act))])
			} else {
				b.Arrive(1 << rng.Intn(4))
			}
		}
		seq := b.Sequence()
		if seq.Validate(8) != nil {
			return false
		}
		var max int64
		for i := range seq.Events {
			if s := seq.ActiveSizeAfter(i); s > max {
				max = s
			}
		}
		return seq.Size() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
