// Package task defines the paper's workload model (§2): tasks of
// power-of-two size, task sequences of arrival and departure events ordered
// by time, and the derived quantities S(σ;τ) (active size at time τ),
// s(σ) (sequence size: the maximum active size over time) and the optimal
// load L* = ⌈s(σ)/N⌉ against which allocation algorithms are judged.
package task

import (
	"fmt"
	"sort"

	"partalloc/internal/errs"
	"partalloc/internal/mathx"
)

// ID identifies a task within a sequence. IDs are assigned by the sequence
// builder in arrival order starting from 1; ID 0 is invalid.
type ID int64

// Task is a user request for a submachine. Size is the number of PEs
// requested and must be a power of two. Execution time is unknown to the
// allocator — departures are separate events.
type Task struct {
	ID   ID
	Size int
}

// Kind discriminates sequence events.
type Kind uint8

const (
	// Arrive is a task-arrival event: the task must be placed immediately
	// (real-time service).
	Arrive Kind = iota
	// Depart is a task-departure event: the task's submachine is released.
	Depart
)

func (k Kind) String() string {
	switch k {
	case Arrive:
		return "arrive"
	case Depart:
		return "depart"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one step of a task sequence. Time is an optional wall-clock
// stamp used by workload generators and trace files; allocation algorithms
// only observe event order. Size is meaningful for arrivals (it is copied
// onto departures too, for convenience).
type Event struct {
	Kind Kind
	Task ID
	Size int
	Time float64
}

// Sequence is the paper's task sequence σ: events ordered by time of
// occurrence.
type Sequence struct {
	Events []Event
}

// Validate checks sequence well-formedness: positive power-of-two sizes no
// larger than n (pass n <= 0 to skip the machine-size check), departures
// only of active tasks, no double arrivals, consistent departure sizes,
// and non-decreasing time stamps.
func (s *Sequence) Validate(n int) error {
	active := make(map[ID]int, len(s.Events)/2)
	arrived := make(map[ID]bool, len(s.Events)/2)
	lastTime := -1.0
	for i, e := range s.Events {
		if e.Time < lastTime {
			return fmt.Errorf("task: event %d time %g decreases (previous %g)", i, e.Time, lastTime)
		}
		lastTime = e.Time
		switch e.Kind {
		case Arrive:
			if e.Task <= 0 {
				return fmt.Errorf("task: event %d arrival with invalid id %d", i, e.Task)
			}
			if arrived[e.Task] {
				return fmt.Errorf("task: event %d re-arrival of task %d: %w", i, e.Task, errs.ErrDuplicateTask)
			}
			if !mathx.IsPow2(e.Size) {
				return fmt.Errorf("task: event %d task %d size %d: %w", i, e.Task, e.Size, errs.ErrNotPowerOfTwo)
			}
			if n > 0 && e.Size > n {
				return fmt.Errorf("task: event %d task %d size %d exceeds machine size %d: %w", i, e.Task, e.Size, n, errs.ErrTaskTooLarge)
			}
			arrived[e.Task] = true
			active[e.Task] = e.Size
		case Depart:
			sz, ok := active[e.Task]
			if !ok {
				return fmt.Errorf("task: event %d departure of inactive task %d", i, e.Task)
			}
			if e.Size != 0 && e.Size != sz {
				return fmt.Errorf("task: event %d departure size %d != arrival size %d", i, e.Size, sz)
			}
			delete(active, e.Task)
		default:
			return fmt.Errorf("task: event %d has unknown kind %d", i, e.Kind)
		}
	}
	return nil
}

// Size returns s(σ): the maximum over all event prefixes of the cumulative
// size of active tasks. (The paper takes the max over time; active size
// only changes at events, so the prefix maximum is exact.)
func (s *Sequence) Size() int64 {
	var cur, max int64
	for _, e := range s.Events {
		switch e.Kind {
		case Arrive:
			cur += int64(e.Size)
			if cur > max {
				max = cur
			}
		case Depart:
			cur -= int64(e.Size)
		}
	}
	return max
}

// ActiveSizeAfter returns S(σ; τ) where τ is just after event index i
// (i = -1 gives 0).
func (s *Sequence) ActiveSizeAfter(i int) int64 {
	var cur int64
	for j := 0; j <= i && j < len(s.Events); j++ {
		switch s.Events[j].Kind {
		case Arrive:
			cur += int64(s.Events[j].Size)
		case Depart:
			cur -= int64(s.Events[j].Size)
		}
	}
	return cur
}

// OptimalLoad returns L* = ⌈s(σ)/N⌉, the inevitable load some PE must
// carry even under perfect balancing at all times (§2). It is 0 for an
// empty sequence.
func (s *Sequence) OptimalLoad(n int) int {
	sz := s.Size()
	if sz == 0 {
		return 0
	}
	return int(mathx.CeilDiv64(sz, int64(n)))
}

// NumArrivals returns the number of arrival events.
func (s *Sequence) NumArrivals() int {
	k := 0
	for _, e := range s.Events {
		if e.Kind == Arrive {
			k++
		}
	}
	return k
}

// TotalArrivalSize returns the sum of sizes over all arrivals (the paper's
// S in Lemma 2 — not the sequence size s(σ)).
func (s *Sequence) TotalArrivalSize() int64 {
	var t int64
	for _, e := range s.Events {
		if e.Kind == Arrive {
			t += int64(e.Size)
		}
	}
	return t
}

// Builder incrementally constructs valid sequences, assigning IDs in
// arrival order and tracking active tasks so departures can be emitted by
// ID with the right size.
type Builder struct {
	seq    Sequence
	nextID ID
	active map[ID]int
	clock  float64
}

// NewBuilder returns an empty sequence builder.
func NewBuilder() *Builder {
	return &Builder{nextID: 1, active: make(map[ID]int)}
}

// At advances the builder's clock to t; subsequent events are stamped with
// it. Time must not decrease.
func (b *Builder) At(t float64) *Builder {
	if t < b.clock {
		panic(fmt.Sprintf("task: Builder.At(%g) moves clock backwards from %g", t, b.clock))
	}
	b.clock = t
	return b
}

// Arrive appends an arrival of the given size and returns the new task's ID.
func (b *Builder) Arrive(size int) ID {
	if !mathx.IsPow2(size) {
		panic(fmt.Sprintf("task: Builder.Arrive size %d not a power of two", size))
	}
	id := b.nextID
	b.nextID++
	b.active[id] = size
	b.seq.Events = append(b.seq.Events, Event{Kind: Arrive, Task: id, Size: size, Time: b.clock})
	return id
}

// Depart appends a departure of an active task.
func (b *Builder) Depart(id ID) {
	size, ok := b.active[id]
	if !ok {
		panic(fmt.Sprintf("task: Builder.Depart of inactive task %d", id))
	}
	delete(b.active, id)
	b.seq.Events = append(b.seq.Events, Event{Kind: Depart, Task: id, Size: size, Time: b.clock})
}

// Active returns the IDs of currently active tasks in increasing order of
// ID (deterministic).
func (b *Builder) Active() []ID {
	out := make([]ID, 0, len(b.active))
	for id := range b.active {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ActiveSize returns the cumulative size of active tasks.
func (b *Builder) ActiveSize() int64 {
	var t int64
	for _, s := range b.active {
		t += int64(s)
	}
	return t
}

// SizeOf returns the size of an active task, or 0 if inactive.
func (b *Builder) SizeOf(id ID) int { return b.active[id] }

// Sequence returns the built sequence. The builder may continue to be used;
// the returned value shares the builder's backing slice until the next
// append, so callers should be done building.
func (b *Builder) Sequence() Sequence { return b.seq }

// Figure1Sequence returns the paper's running example σ* (§2, Figure 1):
// four size-1 arrivals, departures of t2 and t4, then a size-2 arrival, on
// a 4-PE machine. The greedy algorithm A_G incurs load 2 on it; a
// 1-reallocation algorithm achieves load 1.
func Figure1Sequence() Sequence {
	b := NewBuilder()
	t := make([]ID, 0, 5)
	for i := 0; i < 4; i++ {
		t = append(t, b.At(float64(i)).Arrive(1))
	}
	b.At(4).Depart(t[1]) // t2 departs
	b.At(5).Depart(t[3]) // t4 departs
	b.At(6).Arrive(2)    // t5
	return b.Sequence()
}
