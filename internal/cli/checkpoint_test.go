package cli

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	in := map[string][]string{
		"0": {"a", "1.5"},
		"2": {"b", "2.0"},
	}
	if err := SaveCheckpoint(path, "fp v1", in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadCheckpoint[[]string](path, "fp v1")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(out))
	}
	for k, v := range in {
		got, ok := out[k]
		if !ok || strings.Join(got, ",") != strings.Join(v, ",") {
			t.Fatalf("entry %q = %v, want %v", k, got, v)
		}
	}
}

func TestCheckpointFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	if err := SaveCheckpoint(path, "config A", map[string]string{"E1": "out"}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint[string](path, "config B"); err == nil {
		t.Fatal("fingerprint mismatch accepted")
	} else if !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCheckpointOverwriteIsAtomicUpdate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	if err := SaveCheckpoint(path, "fp", map[string]int{"0": 1}); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, "fp", map[string]int{"0": 1, "1": 2}); err != nil {
		t.Fatal(err)
	}
	out, err := LoadCheckpoint[int](path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if out["0"] != 1 || out["1"] != 2 {
		t.Fatalf("entries %v", out)
	}
}

func TestLoadCheckpointMissingFile(t *testing.T) {
	if _, err := LoadCheckpoint[int](filepath.Join(t.TempDir(), "absent.json"), "fp"); err == nil {
		t.Fatal("missing file accepted")
	}
}
