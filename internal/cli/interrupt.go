package cli

import (
	"context"
	"os"
	"os/signal"
)

// WithInterrupt returns a child of parent cancelled by the first SIGINT
// (later SIGINTs fall through to the default handler) or by parent's own
// cancellation, plus a cancel function for programmatic triggers. onSignal,
// when non-nil, runs once just before a SIGINT-driven cancellation — the
// place for a "draining" message.
//
// Runners treat the returned context's cancellation uniformly: stop
// claiming work, drain what is in flight, write the checkpoint. A parent
// context cancelled by a caller therefore checkpoints exactly like an
// interactive ^C.
func WithInterrupt(parent context.Context, onSignal func()) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	sigCh := make(chan os.Signal, 1)
	//lint:ignore ctxflow NotifyContext cannot run the onSignal hook before cancelling, and signal.Stop after the first SIGINT must leave the second one fatal
	signal.Notify(sigCh, os.Interrupt)
	go func() {
		defer signal.Stop(sigCh)
		select {
		case <-sigCh:
			if onSignal != nil {
				onSignal()
			}
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}
