package cli

import (
	"strings"
	"testing"

	"partalloc/internal/task"
	"partalloc/internal/tree"
)

func TestMakeAllocatorAllNames(t *testing.T) {
	m := tree.MustNew(16)
	for _, name := range AlgorithmNames() {
		a, err := MakeAllocator(m, name, 2, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		v := a.Arrive(task.Task{ID: 1, Size: 2})
		if m.Size(v) != 2 {
			t.Fatalf("%s placed wrong size", name)
		}
		a.Depart(1)
	}
	if _, err := MakeAllocator(m, "quantum", 2, 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestMakeWorkloadAllNames(t *testing.T) {
	spec := WorkloadSpec{N: 32, Arrivals: 50, Events: 100, Sessions: 10, Seed: 3}
	for _, name := range WorkloadNames() {
		seq, err := MakeWorkload(name, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := seq.Validate(32); err != nil {
			t.Fatalf("%s produced invalid sequence: %v", name, err)
		}
		if seq.NumArrivals() == 0 {
			t.Fatalf("%s produced empty sequence", name)
		}
	}
	if _, err := MakeWorkload("bursty", spec); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestUsageStringsMentionEveryName(t *testing.T) {
	au := AlgorithmUsage()
	for _, n := range AlgorithmNames() {
		if !contains(au, n) {
			t.Errorf("algorithm usage missing %q", n)
		}
	}
	wu := WorkloadUsage()
	for _, n := range WorkloadNames() {
		if !contains(wu, n) {
			t.Errorf("workload usage missing %q", n)
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
