// Package cli holds the flag-parsing helpers shared by the command-line
// tools: algorithm construction by name and workload generation by name.
// Keeping them here (tested) prevents the cmd/ binaries from drifting
// apart in what they accept.
package cli

import (
	"fmt"
	"strings"

	"partalloc/internal/core"
	"partalloc/internal/task"
	"partalloc/internal/topology"
	"partalloc/internal/tree"
	"partalloc/internal/workload"
)

// AlgorithmNames lists the accepted -algo values.
func AlgorithmNames() []string {
	return []string{"greedy", "basic", "constant", "periodic", "lazy", "random", "twochoice", "randtie"}
}

// AlgorithmUsage is the -algo flag help string.
func AlgorithmUsage() string {
	return "algorithm: " + strings.Join(AlgorithmNames(), "|")
}

// MakeAllocator constructs an allocator by CLI name. d is the
// reallocation parameter for periodic/lazy; seed feeds the randomized
// algorithms.
func MakeAllocator(m *tree.Machine, algo string, d int, seed int64) (core.Allocator, error) {
	switch algo {
	case "greedy":
		return core.NewGreedy(m), nil
	case "basic":
		return core.NewBasic(m), nil
	case "constant":
		return core.NewConstant(m), nil
	case "periodic":
		return core.NewPeriodic(m, d, core.DecreasingSize), nil
	case "lazy":
		return core.NewLazy(m, d, core.DecreasingSize), nil
	case "random":
		return core.NewRandom(m, seed), nil
	case "twochoice":
		return core.NewTwoChoice(m, seed), nil
	case "randtie":
		return core.NewGreedyRandomTie(m, seed), nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (want %s)", algo, strings.Join(AlgorithmNames(), "|"))
}

// TopologyNames lists the accepted -topology values.
func TopologyNames() []string { return topology.Names() }

// TopologyUsage is the -topology flag help string.
func TopologyUsage() string {
	return "physical network: " + strings.Join(topology.Names(), "|")
}

// MakeHost builds a topology host by CLI name: the physical network plus
// the decomposition tree allocators run on. "tree" reproduces the
// host-agnostic tools byte-identically.
func MakeHost(name string, n int) (*topology.Host, error) {
	h, err := topology.NewHostNamed(name, n)
	if err != nil {
		return nil, fmt.Errorf("unknown or invalid topology %q for N=%d: %w (want %s)",
			name, n, err, strings.Join(topology.Names(), "|"))
	}
	return h, nil
}

// WorkloadNames lists the accepted -workload values.
func WorkloadNames() []string { return []string{"poisson", "saturation", "sessions"} }

// WorkloadUsage is the -workload flag help string.
func WorkloadUsage() string {
	return "workload: " + strings.Join(WorkloadNames(), "|")
}

// WorkloadSpec carries the generator knobs the tools expose.
type WorkloadSpec struct {
	N        int
	Arrivals int // poisson
	Events   int // saturation
	Sessions int // sessions
	Seed     int64
}

// MakeWorkload generates a sequence by CLI name.
func MakeWorkload(kind string, spec WorkloadSpec) (task.Sequence, error) {
	switch kind {
	case "poisson":
		return workload.Poisson(workload.Config{N: spec.N, Arrivals: spec.Arrivals, Seed: spec.Seed}), nil
	case "saturation":
		return workload.Saturation(workload.SaturationConfig{
			N: spec.N, Events: spec.Events, Seed: spec.Seed, Churn: 0.2,
		}), nil
	case "sessions":
		return workload.Sessions(workload.SessionConfig{N: spec.N, Sessions: spec.Sessions, Seed: spec.Seed}), nil
	}
	return task.Sequence{}, fmt.Errorf("unknown workload %q (want %s)", kind, strings.Join(WorkloadNames(), "|"))
}
