package cli

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestCheckpointWriterStaleSnapshotDropped is the regression test for the
// lockorder fix in cmd/sweep: snapshots are now taken under the results
// mutex but written outside it, so writes can arrive out of order — an
// older snapshot must never overwrite a newer one on disk.
func TestCheckpointWriterStaleSnapshotDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	w := NewCheckpointWriter[int](path, "fp")
	if err := w.Save(2, map[string]int{"0": 1, "1": 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Save(1, map[string]int{"0": 1}); err != nil {
		t.Fatal(err)
	}
	out, err := LoadCheckpoint[int](path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out["1"] != 2 {
		t.Fatalf("stale snapshot regressed the checkpoint: %v", out)
	}
}

func TestCheckpointWriterFinalStateWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	w := NewCheckpointWriter[string](path, "fp")

	// Concurrent monotone snapshots, like sweep workers completing cells:
	// snapshot seq k contains entries 0..k-1.
	const n = 32
	var mu sync.Mutex
	state := make(map[string]string)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			state[fmt.Sprint(i)] = "row"
			seq := len(state)
			snap := make(map[string]string, len(state))
			for k, v := range state {
				snap[k] = v
			}
			mu.Unlock()
			if err := w.Save(seq, snap); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	// The final drain-time save, as cmd/sweep issues after RunCells.
	if err := w.Save(n+1, map[string]string{"all": "done"}); err != nil {
		t.Fatal(err)
	}
	out, err := LoadCheckpoint[string](path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out["all"] != "done" {
		t.Fatalf("final save did not win: %v", out)
	}
}

func TestCheckpointWriterEmptyPathIsNoop(t *testing.T) {
	w := NewCheckpointWriter[int]("", "fp")
	if err := w.Save(1, map[string]int{"0": 1}); err != nil {
		t.Fatal(err)
	}
	var nilW *CheckpointWriter[int]
	if err := nilW.Save(1, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointWriterStickyErrorRetries(t *testing.T) {
	dir := t.TempDir()
	// A path whose parent does not exist fails CreateTemp.
	bad := filepath.Join(dir, "missing", "cp.json")
	w := NewCheckpointWriter[int](bad, "fp")
	if err := w.Save(1, map[string]int{"0": 1}); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	// The sticky error surfaces even on a stale submission.
	if err := w.Save(1, map[string]int{"0": 1}); err == nil {
		t.Fatal("sticky error not reported")
	}
}
