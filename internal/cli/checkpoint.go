package cli

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// checkpointFile is the on-disk shape shared by cmd/sweep and
// cmd/experiments: a config fingerprint plus completed entries keyed by
// cell identifier. The fingerprint ties a checkpoint to the exact flag
// configuration (including any fault schedule contents) that produced it;
// resuming under a different configuration must fail loudly rather than
// silently mix results. See docs/FAULTS.md for the protocol.
type checkpointFile struct {
	Fingerprint string                     `json:"fingerprint"`
	Entries     map[string]json.RawMessage `json:"entries"`
}

// SaveCheckpoint atomically writes entries under fingerprint to path:
// marshal to a temp file in the same directory, then rename over the
// destination, so a kill mid-write never leaves a torn checkpoint.
func SaveCheckpoint[T any](path, fingerprint string, entries map[string]T) error {
	cf := checkpointFile{Fingerprint: fingerprint, Entries: make(map[string]json.RawMessage, len(entries))}
	// Marshal each entry separately; key order in the output is sorted by
	// encoding/json, so the file itself is deterministic.
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		raw, err := json.Marshal(entries[k])
		if err != nil {
			return fmt.Errorf("cli: checkpoint entry %q: %w", k, err)
		}
		cf.Entries[k] = raw
	}
	data, err := json.MarshalIndent(&cf, "", "  ")
	if err != nil {
		return fmt.Errorf("cli: checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// CheckpointWriter persists monotone snapshots from concurrent workers
// without making any of them hold a lock across file I/O — the discipline
// the lockorder analyzer enforces (a checkpoint write used to happen
// inside cmd/sweep's results mutex, stalling every other worker's row
// update behind the disk).
//
// Callers snapshot their state under their own lock, release it, then
// call Save(seq, entries) with a sequence number that orders snapshots
// (e.g. the completed-cell count). The writer coalesces: at most one
// goroutine writes at a time, always the newest pending snapshot, and a
// snapshot older than what is already on disk is dropped, so out-of-order
// arrivals can never regress the file.
type CheckpointWriter[T any] struct {
	path        string
	fingerprint string

	mu         sync.Mutex
	writing    bool
	pendingSeq int
	pending    map[string]T
	writtenSeq int
	err        error // last write error, sticky until a later write succeeds
}

// NewCheckpointWriter builds a writer for path under fingerprint. An
// empty path yields a writer whose Save is a no-op, mirroring the
// "-checkpoint not requested" mode of the harnesses.
func NewCheckpointWriter[T any](path, fingerprint string) *CheckpointWriter[T] {
	return &CheckpointWriter[T]{path: path, fingerprint: fingerprint}
}

// Save submits snapshot seq for persistence and returns the most recent
// write error (nil while healthy). The caller must not mutate entries
// after the call. Stale submissions (seq at or below a snapshot already
// written or pending) are dropped; if another goroutine is mid-write it
// picks up the newest pending snapshot before returning, so a nil result
// does not guarantee this exact snapshot reached disk — the final Save
// after all workers drain does.
func (w *CheckpointWriter[T]) Save(seq int, entries map[string]T) error {
	if w == nil || w.path == "" {
		return nil
	}
	w.mu.Lock()
	if seq > w.pendingSeq {
		w.pendingSeq, w.pending = seq, entries
	}
	if w.writing {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.writing = true
	for w.pendingSeq > w.writtenSeq {
		seq, entries := w.pendingSeq, w.pending
		w.pending = nil
		w.mu.Unlock()
		err := SaveCheckpoint(w.path, w.fingerprint, entries)
		w.mu.Lock()
		w.writtenSeq = seq
		w.err = err
	}
	w.writing = false
	err := w.err
	w.mu.Unlock()
	return err
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint and returns
// its entries. It fails if the stored fingerprint differs from
// fingerprint — the caller's configuration does not match the run that
// produced the file, so its results cannot be reused.
func LoadCheckpoint[T any](path, fingerprint string) (map[string]T, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("cli: checkpoint %s: %w", path, err)
	}
	if cf.Fingerprint != fingerprint {
		return nil, fmt.Errorf("cli: checkpoint %s was written by a different configuration:\n  checkpoint: %s\n  current:    %s",
			path, cf.Fingerprint, fingerprint)
	}
	out := make(map[string]T, len(cf.Entries))
	for k, raw := range cf.Entries {
		var v T
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, fmt.Errorf("cli: checkpoint %s entry %q: %w", path, k, err)
		}
		out[k] = v
	}
	return out, nil
}
