package cli

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// checkpointFile is the on-disk shape shared by cmd/sweep and
// cmd/experiments: a config fingerprint plus completed entries keyed by
// cell identifier. The fingerprint ties a checkpoint to the exact flag
// configuration (including any fault schedule contents) that produced it;
// resuming under a different configuration must fail loudly rather than
// silently mix results. See docs/FAULTS.md for the protocol.
type checkpointFile struct {
	Fingerprint string                     `json:"fingerprint"`
	Entries     map[string]json.RawMessage `json:"entries"`
}

// SaveCheckpoint atomically writes entries under fingerprint to path:
// marshal to a temp file in the same directory, then rename over the
// destination, so a kill mid-write never leaves a torn checkpoint.
func SaveCheckpoint[T any](path, fingerprint string, entries map[string]T) error {
	cf := checkpointFile{Fingerprint: fingerprint, Entries: make(map[string]json.RawMessage, len(entries))}
	// Marshal each entry separately; key order in the output is sorted by
	// encoding/json, so the file itself is deterministic.
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		raw, err := json.Marshal(entries[k])
		if err != nil {
			return fmt.Errorf("cli: checkpoint entry %q: %w", k, err)
		}
		cf.Entries[k] = raw
	}
	data, err := json.MarshalIndent(&cf, "", "  ")
	if err != nil {
		return fmt.Errorf("cli: checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint and returns
// its entries. It fails if the stored fingerprint differs from
// fingerprint — the caller's configuration does not match the run that
// produced the file, so its results cannot be reused.
func LoadCheckpoint[T any](path, fingerprint string) (map[string]T, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("cli: checkpoint %s: %w", path, err)
	}
	if cf.Fingerprint != fingerprint {
		return nil, fmt.Errorf("cli: checkpoint %s was written by a different configuration:\n  checkpoint: %s\n  current:    %s",
			path, cf.Fingerprint, fingerprint)
	}
	out := make(map[string]T, len(cf.Entries))
	for k, raw := range cf.Entries {
		var v T
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, fmt.Errorf("cli: checkpoint %s entry %q: %w", path, k, err)
		}
		out[k] = v
	}
	return out, nil
}
