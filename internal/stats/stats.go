// Package stats provides the small set of descriptive statistics the
// experiment harness reports: means, standard deviations, quantiles,
// normal-approximation confidence intervals, and fixed-width histograms.
// Everything operates on float64 slices and is deterministic.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary. It returns a zero Summary for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation (0 for fewer than 2 points).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Max returns the maximum (negative infinity for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum (positive infinity for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample using linear interpolation between closest ranks. It panics if
// the sample is empty or unsorted inputs are the caller's responsibility.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the half-width of a 95% confidence interval for the mean
// under the normal approximation: 1.96·s/√n. It returns 0 for fewer than
// two points.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * Std(xs) / math.Sqrt(float64(len(xs)))
}

// Histogram is a fixed-width-bin histogram.
type Histogram struct {
	Lo, Hi float64 // range covered; values outside are clamped to edge bins
	Counts []int
}

// NewHistogram builds a histogram of xs with the given number of bins over
// [lo, hi]. bins must be positive and hi > lo.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram spec [%g,%g] bins=%d", lo, hi, bins))
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add records one observation, clamping out-of-range values to the edge
// bins.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinLabel renders the range of bin i, e.g. "[2.0,4.0)".
func (h *Histogram) BinLabel(i int) string {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return fmt.Sprintf("[%.1f,%.1f)", h.Lo+float64(i)*w, h.Lo+float64(i+1)*w)
}
