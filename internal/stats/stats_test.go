package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeBasics(t *testing.T) {
	xs := []float64{4, 2, 8, 6}
	s := Summarize(xs)
	if s.N != 4 || s.Mean != 5 || s.Min != 2 || s.Max != 8 {
		t.Fatalf("summary %+v", s)
	}
	// Sample std of {2,4,6,8} = sqrt(20/3) ≈ 2.582.
	if !almostEq(s.Std, math.Sqrt(20.0/3), 1e-9) {
		t.Fatalf("std = %g", s.Std)
	}
	if s.Median != 5 {
		t.Fatalf("median = %g", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary nonzero N")
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestMeanStdMinMax(t *testing.T) {
	xs := []float64{1, 2, 3}
	if Mean(xs) != 2 || Min(xs) != 1 || Max(xs) != 3 {
		t.Fatal("basic stats wrong")
	}
	if Std([]float64{5}) != 0 || Mean(nil) != 0 {
		t.Fatal("degenerate stats wrong")
	}
	if !almostEq(Std(xs), 1, 1e-12) {
		t.Fatalf("Std = %g", Std(xs))
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	small := make([]float64, 20)
	large := make([]float64, 2000)
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	for i := range large {
		large[i] = rng.NormFloat64()
	}
	if CI95(large) >= CI95(small) {
		t.Errorf("CI did not shrink: %g vs %g", CI95(large), CI95(small))
	}
	// For standard normal with n=2000, CI ≈ 1.96/sqrt(2000) ≈ 0.044.
	if ci := CI95(large); ci < 0.02 || ci > 0.08 {
		t.Errorf("CI95 = %g, expected ≈0.044", ci)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1.5, 1.6, 9.9, -3, 42}, 0, 10, 10)
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0.5 and clamped -3
		t.Errorf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 2 { // 1.5, 1.6
		t.Errorf("bin 1 = %d", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 9.9 and clamped 42
		t.Errorf("bin 9 = %d", h.Counts[9])
	}
	if got := h.BinLabel(0); got != "[0.0,1.0)" {
		t.Errorf("label = %q", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(nil, 5, 5, 3)
}

// Property: mean is within [min, max]; std is non-negative; quantiles are
// monotone in q.
func TestSummaryProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 || s.Std < 0 {
			return false
		}
		return s.Median <= s.P90+1e-9 && s.P90 <= s.P99+1e-9 && s.P99 <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
