// Package tree models the paper's parallel machine T: an N-leaf complete
// binary tree whose leaves hold processing elements (PEs) and whose internal
// nodes hold communication switches (Gao/Rosenberg/Sitaraman, SPAA'96, §2;
// cf. Browning's Tree Machine and the CM-5/SP2 fat trees).
//
// Nodes are heap-indexed: the root is node 1, and node v has children 2v and
// 2v+1. With N = 2^L leaves the machine has 2N-1 nodes; nodes N..2N-1 are
// the leaves, and leaf N+p hosts PE p (0-indexed, left to right). An M-PE
// submachine is an M-leaf complete binary subtree of T; submachines of size
// 2^x correspond exactly to the nodes at depth L-x, in left-to-right order.
// "Leftmost" throughout this codebase means smallest heap index at a given
// depth, matching the paper's tie-breaking rule.
package tree

import (
	"fmt"

	"partalloc/internal/errs"
	"partalloc/internal/mathx"
)

// Node identifies a node of the machine tree by heap index. The zero Node
// is invalid; the root is Node(1).
type Node int

// Machine is an immutable description of an N-PE tree machine. It carries
// no allocation state; state lives in loadtree.Tree and copies.Copy.
//
// A Machine may additionally carry decomposition level widths (see
// NewDecomposition): when the tree is the binary decomposition of a
// physical network whose switch hierarchy is not binary (a 4-ary fat
// tree), some binary depths are "virtual" — they split a physical switch
// block in two without crossing a physical level. LevelWidth exposes how
// many distinct physical blocks exist at each depth so downstream
// consumers (loadtree, copies, the invariant checker, reporting) can tell
// physical capacity boundaries from virtual ones.
type Machine struct {
	n      int   // number of PEs (leaves); a power of two
	levels int   // log2(n); depth of the leaves
	widths []int // nil → uniform binary (widths[d] = 2^d)
}

// New constructs an N-PE tree machine. N must be a power of two (the model
// requires it: task sizes are powers of two and submachines are complete
// subtrees).
func New(n int) (*Machine, error) {
	if !mathx.IsPow2(n) {
		return nil, fmt.Errorf("tree: machine size %d: %w", n, errs.ErrNotPowerOfTwo)
	}
	return &Machine{n: n, levels: mathx.Log2(n)}, nil
}

// NewDecomposition constructs an N-PE tree machine annotated with physical
// level widths: widths[d] is the number of distinct physical switch blocks
// at binary depth d. It must hold one entry per depth 0..log2(N), start at
// 1 (the whole machine), end at N (the PEs), be non-decreasing, and every
// width must be a power of two not exceeding 2^d — a depth can never have
// more physical blocks than binary submachines. A uniform binary machine
// (widths[d] = 2^d) is what New produces implicitly.
func NewDecomposition(n int, widths []int) (*Machine, error) {
	m, err := New(n)
	if err != nil {
		return nil, err
	}
	if widths == nil {
		return m, nil
	}
	if len(widths) != m.levels+1 {
		return nil, fmt.Errorf("tree: decomposition needs %d level widths, got %d", m.levels+1, len(widths))
	}
	for d, w := range widths {
		switch {
		case !mathx.IsPow2(w):
			return nil, fmt.Errorf("tree: level width %d at depth %d not a power of two", w, d)
		case w > 1<<d:
			return nil, fmt.Errorf("tree: level width %d at depth %d exceeds 2^%d submachines", w, d, d)
		case d > 0 && w < widths[d-1]:
			return nil, fmt.Errorf("tree: level widths must be non-decreasing (depth %d: %d < %d)", d, w, widths[d-1])
		}
	}
	if widths[0] != 1 || widths[m.levels] != n {
		return nil, fmt.Errorf("tree: level widths must run from 1 to N, got %d..%d", widths[0], widths[m.levels])
	}
	m.widths = append([]int(nil), widths...)
	return m, nil
}

// LevelWidth returns the number of distinct physical blocks at depth d
// (2^d when the machine is a plain uniform binary decomposition).
func (m *Machine) LevelWidth(d int) int {
	if d < 0 || d > m.levels {
		panic(fmt.Sprintf("tree: depth %d out of range", d))
	}
	if m.widths == nil {
		return 1 << d
	}
	return m.widths[d]
}

// UniformLevels reports whether every binary depth is a physical level
// (no widths annotation, or one that matches the uniform 2^d profile).
func (m *Machine) UniformLevels() bool {
	if m.widths == nil {
		return true
	}
	for d, w := range m.widths {
		if w != 1<<d {
			return false
		}
	}
	return true
}

// MustNew is New but panics on error; for tests and internal construction
// from already-validated sizes.
func MustNew(n int) *Machine {
	m, err := New(n)
	if err != nil {
		panic(err)
	}
	return m
}

// N returns the number of PEs.
func (m *Machine) N() int { return m.n }

// Levels returns log2(N), the depth of the leaves (the root has depth 0).
func (m *Machine) Levels() int { return m.levels }

// NumNodes returns the total number of tree nodes, 2N-1.
func (m *Machine) NumNodes() int { return 2*m.n - 1 }

// Root returns the root node.
func (m *Machine) Root() Node { return 1 }

// Valid reports whether v is a node of this machine.
func (m *Machine) Valid(v Node) bool { return v >= 1 && int(v) < 2*m.n }

// IsLeaf reports whether v is a leaf (hosts a PE).
func (m *Machine) IsLeaf(v Node) bool { return int(v) >= m.n }

// Left returns the left child of internal node v.
func (m *Machine) Left(v Node) Node { return 2 * v }

// Right returns the right child of internal node v.
func (m *Machine) Right(v Node) Node { return 2*v + 1 }

// Parent returns the parent of non-root node v.
func (m *Machine) Parent(v Node) Node { return v / 2 }

// Depth returns the depth of v; the root has depth 0 and leaves depth
// Levels().
func (m *Machine) Depth(v Node) int {
	if !m.Valid(v) {
		panic(fmt.Sprintf("tree: invalid node %d", v))
	}
	return mathx.Log2Floor(int(v))
}

// Size returns the number of PEs in the submachine rooted at v: 2^(L-depth).
func (m *Machine) Size(v Node) int {
	return 1 << (m.levels - m.Depth(v))
}

// DepthForSize returns the depth at which submachines have the given PE
// count. size must be a power of two not exceeding N.
func (m *Machine) DepthForSize(size int) int {
	if !mathx.IsPow2(size) || size > m.n {
		panic(fmt.Sprintf("tree: invalid submachine size %d for N=%d", size, m.n))
	}
	return m.levels - mathx.Log2(size)
}

// NumSubmachines returns how many size-PE submachines T has: N/size.
func (m *Machine) NumSubmachines(size int) int {
	return m.n / size
}

// SubmachineAt returns the i-th (0-indexed, leftmost-first) submachine of
// the given size.
func (m *Machine) SubmachineAt(size, i int) Node {
	d := m.DepthForSize(size)
	if i < 0 || i >= m.n/size {
		panic(fmt.Sprintf("tree: submachine index %d out of range for size %d", i, size))
	}
	return Node((1 << d) + i)
}

// SubmachineIndex returns the left-to-right index of v among submachines of
// its size (the inverse of SubmachineAt).
func (m *Machine) SubmachineIndex(v Node) int {
	return int(v) - (1 << m.Depth(v))
}

// Submachines returns all submachines of the given size in leftmost order.
func (m *Machine) Submachines(size int) []Node {
	d := m.DepthForSize(size)
	k := m.n / size
	out := make([]Node, k)
	for i := 0; i < k; i++ {
		out[i] = Node((1 << d) + i)
	}
	return out
}

// PERange returns the half-open PE interval [lo, hi) covered by the
// submachine rooted at v. PEs are numbered 0..N-1 left to right.
func (m *Machine) PERange(v Node) (lo, hi int) {
	d := m.Depth(v)
	span := 1 << (m.levels - d)
	first := (int(v) << (m.levels - d)) - m.n
	return first, first + span
}

// LeafOf returns the leaf node hosting PE p.
func (m *Machine) LeafOf(pe int) Node {
	if pe < 0 || pe >= m.n {
		panic(fmt.Sprintf("tree: PE %d out of range", pe))
	}
	return Node(m.n + pe)
}

// PEOf returns the PE hosted at leaf v.
func (m *Machine) PEOf(v Node) int {
	if !m.IsLeaf(v) {
		panic(fmt.Sprintf("tree: node %d is not a leaf", v))
	}
	return int(v) - m.n
}

// Contains reports whether the submachine rooted at outer contains the
// submachine rooted at inner (including outer == inner).
func (m *Machine) Contains(outer, inner Node) bool {
	do, di := m.Depth(outer), m.Depth(inner)
	if do > di {
		return false
	}
	return inner>>(di-do) == outer
}

// AncestorAt returns the ancestor of v at the given depth (which must not
// exceed v's own depth).
func (m *Machine) AncestorAt(v Node, depth int) Node {
	d := m.Depth(v)
	if depth > d || depth < 0 {
		panic(fmt.Sprintf("tree: node %d has no ancestor at depth %d", v, depth))
	}
	return v >> (d - depth)
}

// Ancestors calls fn on every proper ancestor of v from parent up to the
// root, stopping early if fn returns false.
func (m *Machine) Ancestors(v Node, fn func(Node) bool) {
	for u := v / 2; u >= 1; u /= 2 {
		if !fn(u) {
			return
		}
	}
}

// Sibling returns the sibling of non-root node v.
func (m *Machine) Sibling(v Node) Node {
	if v == 1 {
		panic("tree: root has no sibling")
	}
	return v ^ 1
}

// IsLeftChild reports whether non-root v is a left child.
func (m *Machine) IsLeftChild(v Node) bool {
	if v == 1 {
		panic("tree: root is not a child")
	}
	return v&1 == 0
}

// InLeftHalf reports whether v lies (weakly) within the left subtree of the
// root. The root itself is in neither half and returns false.
func (m *Machine) InLeftHalf(v Node) bool {
	if v == 1 {
		return false
	}
	return m.AncestorAt(v, 1) == 2
}

// String renders the machine for diagnostics.
func (m *Machine) String() string {
	return fmt.Sprintf("tree.Machine{N=%d, levels=%d}", m.n, m.levels)
}
