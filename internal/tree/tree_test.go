package tree

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6, 12, 1000} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) should fail", n)
		}
	}
	for _, n := range []int{1, 2, 4, 8, 1024} {
		m, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		if m.N() != n || m.NumNodes() != 2*n-1 {
			t.Errorf("New(%d): N=%d NumNodes=%d", n, m.N(), m.NumNodes())
		}
	}
}

func TestDepthSize(t *testing.T) {
	m := MustNew(8) // levels = 3, nodes 1..15
	wantDepth := map[Node]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 15: 3}
	for v, d := range wantDepth {
		if got := m.Depth(v); got != d {
			t.Errorf("Depth(%d) = %d, want %d", v, got, d)
		}
	}
	wantSize := map[Node]int{1: 8, 2: 4, 3: 4, 4: 2, 7: 2, 8: 1, 15: 1}
	for v, s := range wantSize {
		if got := m.Size(v); got != s {
			t.Errorf("Size(%d) = %d, want %d", v, got, s)
		}
	}
}

func TestChildrenParents(t *testing.T) {
	m := MustNew(16)
	for v := Node(1); int(v) < m.NumNodes(); v++ {
		if !m.IsLeaf(v) {
			l, r := m.Left(v), m.Right(v)
			if m.Parent(l) != v || m.Parent(r) != v {
				t.Fatalf("parent/child mismatch at %d", v)
			}
			if m.Sibling(l) != r || m.Sibling(r) != l {
				t.Fatalf("sibling mismatch at %d", v)
			}
			if !m.IsLeftChild(l) || m.IsLeftChild(r) {
				t.Fatalf("IsLeftChild mismatch at %d", v)
			}
		}
	}
}

func TestSubmachineEnumeration(t *testing.T) {
	m := MustNew(8)
	got := m.Submachines(2)
	want := []Node{4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("Submachines(2) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Submachines(2) = %v, want %v", got, want)
		}
		if m.SubmachineAt(2, i) != want[i] {
			t.Fatalf("SubmachineAt(2,%d) != %v", i, want[i])
		}
		if m.SubmachineIndex(want[i]) != i {
			t.Fatalf("SubmachineIndex(%v) != %d", want[i], i)
		}
	}
	if n := m.NumSubmachines(1); n != 8 {
		t.Errorf("NumSubmachines(1) = %d", n)
	}
	if n := m.NumSubmachines(8); n != 1 {
		t.Errorf("NumSubmachines(8) = %d", n)
	}
}

func TestPERange(t *testing.T) {
	m := MustNew(8)
	cases := map[Node][2]int{
		1: {0, 8}, 2: {0, 4}, 3: {4, 8},
		4: {0, 2}, 5: {2, 4}, 6: {4, 6}, 7: {6, 8},
		8: {0, 1}, 11: {3, 4}, 15: {7, 8},
	}
	for v, want := range cases {
		lo, hi := m.PERange(v)
		if lo != want[0] || hi != want[1] {
			t.Errorf("PERange(%d) = [%d,%d), want %v", v, lo, hi, want)
		}
	}
}

func TestLeafPERoundTrip(t *testing.T) {
	m := MustNew(32)
	for pe := 0; pe < 32; pe++ {
		v := m.LeafOf(pe)
		if !m.IsLeaf(v) || m.PEOf(v) != pe {
			t.Fatalf("LeafOf/PEOf round trip failed at PE %d", pe)
		}
		lo, hi := m.PERange(v)
		if lo != pe || hi != pe+1 {
			t.Fatalf("leaf PERange wrong at PE %d: [%d,%d)", pe, lo, hi)
		}
	}
}

func TestContains(t *testing.T) {
	m := MustNew(8)
	if !m.Contains(1, 11) || !m.Contains(2, 4) || !m.Contains(2, 9) || !m.Contains(5, 5) {
		t.Error("Contains false negatives")
	}
	if m.Contains(2, 3) || m.Contains(4, 5) || m.Contains(8, 4) || m.Contains(3, 8) {
		t.Error("Contains false positives")
	}
}

func TestContainsMatchesPERange(t *testing.T) {
	m := MustNew(16)
	for a := Node(1); int(a) < m.NumNodes(); a++ {
		alo, ahi := m.PERange(a)
		for b := Node(1); int(b) < m.NumNodes(); b++ {
			blo, bhi := m.PERange(b)
			want := alo <= blo && bhi <= ahi
			if got := m.Contains(a, b); got != want {
				t.Fatalf("Contains(%d,%d) = %v, want %v (ranges [%d,%d) [%d,%d))",
					a, b, got, want, alo, ahi, blo, bhi)
			}
		}
	}
}

func TestAncestorAt(t *testing.T) {
	m := MustNew(16)
	if m.AncestorAt(16, 0) != 1 || m.AncestorAt(16, 1) != 2 || m.AncestorAt(16, 4) != 16 {
		t.Error("AncestorAt wrong")
	}
	count := 0
	m.Ancestors(31, func(u Node) bool { count++; return true })
	if count != 4 {
		t.Errorf("Ancestors visited %d nodes, want 4", count)
	}
	// Early stop.
	count = 0
	m.Ancestors(31, func(u Node) bool { count++; return false })
	if count != 1 {
		t.Errorf("Ancestors early stop visited %d", count)
	}
}

func TestInLeftHalf(t *testing.T) {
	m := MustNew(8)
	if m.InLeftHalf(1) {
		t.Error("root is in neither half")
	}
	for _, v := range []Node{2, 4, 5, 8, 9, 10, 11} {
		if !m.InLeftHalf(v) {
			t.Errorf("node %d should be in left half", v)
		}
	}
	for _, v := range []Node{3, 6, 7, 12, 13, 14, 15} {
		if m.InLeftHalf(v) {
			t.Errorf("node %d should be in right half", v)
		}
	}
}

func TestDepthForSizePanics(t *testing.T) {
	m := MustNew(8)
	for _, size := range []int{0, 3, 16} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DepthForSize(%d) did not panic", size)
				}
			}()
			m.DepthForSize(size)
		}()
	}
}

// Property: submachines of equal size partition the PEs.
func TestSubmachinePartitionProperty(t *testing.T) {
	f := func(e uint8, se uint8) bool {
		levels := int(e)%7 + 1
		n := 1 << levels
		m := MustNew(n)
		size := 1 << (int(se) % (levels + 1))
		covered := make([]int, n)
		for _, v := range m.Submachines(size) {
			if m.Size(v) != size {
				return false
			}
			lo, hi := m.PERange(v)
			for p := lo; p < hi; p++ {
				covered[p]++
			}
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: AncestorAt is consistent with Contains.
func TestAncestorContainsProperty(t *testing.T) {
	m := MustNew(64)
	f := func(raw uint16, dRaw uint8) bool {
		v := Node(int(raw)%(m.NumNodes()) + 1)
		d := int(dRaw) % (m.Depth(v) + 1)
		a := m.AncestorAt(v, d)
		return m.Contains(a, v) && m.Depth(a) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
