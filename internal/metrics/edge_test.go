package metrics_test

import (
	"math/rand"
	"testing"

	"partalloc/internal/core"
	"partalloc/internal/metrics"
	"partalloc/internal/sim"
	"partalloc/internal/task"
	"partalloc/internal/tree"
	"partalloc/internal/workload"
)

// Table-driven edge cases for Series and Imbalance: the degenerate inputs
// (empty, single sample, zero loads) that the aggregation paths must not
// mishandle.
func TestSeriesEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		samples []metrics.Sample
		maxLoad int
		peak    float64
	}{
		{"empty", nil, 0, 0},
		{"single zero", []metrics.Sample{{}}, 0, 0},
		{"single sample", []metrics.Sample{{MaxLoad: 3, RunningLStar: 2}}, 3, 1.5},
		{"lstar zero skipped", []metrics.Sample{{MaxLoad: 5, RunningLStar: 0}}, 5, 0},
		{"peak not at max load", []metrics.Sample{
			{MaxLoad: 2, RunningLStar: 1}, // ratio 2.0
			{MaxLoad: 6, RunningLStar: 4}, // ratio 1.5 but larger load
		}, 6, 2.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &metrics.Series{}
			for _, x := range tc.samples {
				s.Append(x)
			}
			if got := s.MaxLoad(); got != tc.maxLoad {
				t.Errorf("MaxLoad = %d, want %d", got, tc.maxLoad)
			}
			if got := s.PeakRatio(); got != tc.peak {
				t.Errorf("PeakRatio = %g, want %g", got, tc.peak)
			}
		})
	}
}

func TestImbalanceEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		loads []int
		want  float64
	}{
		{"nil", nil, 0},
		{"empty", []int{}, 0},
		{"all zero", []int{0, 0, 0, 0}, 0},
		{"single", []int{4}, 1},
		{"uniform", []int{2, 2, 2, 2}, 1},
		{"one hot", []int{4, 0, 0, 0}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := metrics.Imbalance(tc.loads); got != tc.want {
				t.Errorf("Imbalance(%v) = %g, want %g", tc.loads, got, tc.want)
			}
		})
	}
}

// RunningLStar is defined over the prefix *maximum* active size, so it
// must be non-decreasing over any recorded series, and every sample's
// MaxLoad must be at least the running optimum (no allocator beats L*).
func TestRunningLStarMonotone(t *testing.T) {
	m := tree.MustNew(32)
	seqs := map[string]task.Sequence{
		"poisson":    workload.Poisson(workload.Config{N: 32, Arrivals: 300, Seed: 9}),
		"saturation": workload.Saturation(workload.SaturationConfig{N: 32, Events: 600, Seed: 9, Churn: 0.3}),
	}
	for name, seq := range seqs {
		t.Run(name, func(t *testing.T) {
			res := sim.Run(core.NewBasic(m), seq, sim.Options{RecordSeries: true})
			samples := res.Series.Samples
			if len(samples) != len(seq.Events) {
				t.Fatalf("series has %d samples for %d events", len(samples), len(seq.Events))
			}
			prev := 0
			for i, x := range samples {
				if x.RunningLStar < prev {
					t.Fatalf("sample %d: RunningLStar %d < previous %d", i, x.RunningLStar, prev)
				}
				prev = x.RunningLStar
			}
			if res.MaxLoad < res.LStar {
				t.Fatalf("MaxLoad %d below L* %d", res.MaxLoad, res.LStar)
			}
		})
	}
}

// A departing task never increases any slowdown, and a tracker that saw
// only one arrival reports exactly one value from All.
func TestSlowdownTrackerSingleTask(t *testing.T) {
	m := tree.MustNew(8)
	tr := metrics.NewSlowdownTracker(m)
	tr.Arrive(1, m.SubmachineAt(2, 0))
	loads := []int{1, 1, 0, 0, 0, 0, 0, 0}
	tr.Observe(loads)
	if got := tr.All(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("All = %v, want [1]", got)
	}
	tr.Depart(1)
	if got := tr.Completed(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Completed = %v, want [1]", got)
	}
	if tr.Pending() != 0 {
		t.Fatalf("Pending = %d", tr.Pending())
	}
	// Double departure is ignored, not double-counted.
	tr.Depart(1)
	if got := tr.Completed(); len(got) != 1 {
		t.Fatalf("Completed after double depart = %v", got)
	}
}

// All must be deterministic regardless of map iteration: interleave many
// arrivals and check repeated calls agree element-wise.
func TestSlowdownAllDeterministic(t *testing.T) {
	m := tree.MustNew(16)
	tr := metrics.NewSlowdownTracker(m)
	rng := rand.New(rand.NewSource(11))
	for i := 1; i <= 40; i++ {
		tr.Arrive(task.ID(i), m.SubmachineAt(1, rng.Intn(16)))
	}
	loads := make([]int, 16)
	for p := range loads {
		loads[p] = rng.Intn(5)
	}
	tr.Observe(loads)
	first := tr.All()
	for trial := 0; trial < 10; trial++ {
		again := tr.All()
		if len(again) != len(first) {
			t.Fatalf("length changed: %d vs %d", len(again), len(first))
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("trial %d: element %d differs: %d vs %d", trial, i, again[i], first[i])
			}
		}
	}
}
