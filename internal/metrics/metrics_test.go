package metrics

import (
	"testing"

	"partalloc/internal/tree"
)

func TestSeries(t *testing.T) {
	var s Series
	if s.MaxLoad() != 0 || s.PeakRatio() != 0 {
		t.Fatal("empty series stats nonzero")
	}
	s.Append(Sample{MaxLoad: 2, RunningLStar: 1})
	s.Append(Sample{MaxLoad: 3, RunningLStar: 2})
	s.Append(Sample{MaxLoad: 1, RunningLStar: 2})
	if s.MaxLoad() != 3 {
		t.Errorf("MaxLoad = %d", s.MaxLoad())
	}
	// Peak ratio is 2/1 = 2 at the first sample.
	if got := s.PeakRatio(); got != 2 {
		t.Errorf("PeakRatio = %g", got)
	}
}

func TestImbalance(t *testing.T) {
	if Imbalance(nil) != 0 || Imbalance([]int{0, 0}) != 0 {
		t.Fatal("empty imbalance nonzero")
	}
	// loads {4,0,0,0}: mean 1, max 4 → 4.
	if got := Imbalance([]int{4, 0, 0, 0}); got != 4 {
		t.Errorf("Imbalance = %g", got)
	}
	// Perfectly balanced → 1.
	if got := Imbalance([]int{2, 2, 2, 2}); got != 1 {
		t.Errorf("Imbalance = %g", got)
	}
}

func TestSlowdownTracker(t *testing.T) {
	m := tree.MustNew(4)
	tr := NewSlowdownTracker(m)
	// Task 1 on node 2 (PEs 0,1), task 2 on node 4 (PE... node 4 is leaf PE0).
	tr.Arrive(1, 2)
	tr.Arrive(2, 4)
	tr.Observe([]int{2, 1, 0, 0})
	// Task 1's submachine (PEs 0-1) max load = 2; task 2's (PE 0) = 2.
	tr.Observe([]int{1, 3, 0, 0})
	// Now task 1 sees 3; task 2 sees 1 (worst stays 2).
	tr.Depart(2)
	tr.Depart(1)
	got := tr.Completed()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("completed = %v", got)
	}
	if tr.Pending() != 0 {
		t.Fatal("pending nonzero")
	}
}

func TestSlowdownTrackerIgnoresUnknownDepart(t *testing.T) {
	tr := NewSlowdownTracker(tree.MustNew(4))
	tr.Depart(99) // no-op
	if len(tr.Completed()) != 0 {
		t.Fatal("ghost departure recorded")
	}
}

func TestSlowdownAllIncludesActive(t *testing.T) {
	m := tree.MustNew(4)
	tr := NewSlowdownTracker(m)
	tr.Arrive(1, 1) // whole machine
	tr.Observe([]int{1, 1, 1, 1})
	tr.Arrive(2, 6) // PE 2
	tr.Observe([]int{1, 1, 2, 1})
	tr.Depart(1)
	all := tr.All()
	if len(all) != 2 {
		t.Fatalf("All = %v", all)
	}
	// Completed task 1 saw worst 2; active task 2 saw worst 2.
	if all[0] != 2 {
		t.Errorf("completed worst = %d", all[0])
	}
}
