// Package metrics derives the paper's measures of interest from allocator
// state over a run: per-event load time series, the imbalance ratio
// between the heaviest and the average PE, and the round-robin slowdown
// interpretation of PE load (§2: "the worst slowdown ever experienced by a
// user is proportional to the maximum load of any PE in the submachine
// allocated to it").
package metrics

import (
	"sort"

	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// Sample is one point of a load time series, taken just after an event was
// processed.
type Sample struct {
	EventIndex int
	Time       float64
	MaxLoad    int
	ActiveSize int64
	// RunningLStar is ⌈(max active size so far)/N⌉ — the optimal load of
	// the sequence prefix, the instantaneous benchmark for competitive
	// ratios.
	RunningLStar int
	// FailedPEs is the number of PEs down when the sample was taken
	// (0 in fault-free runs; see internal/fault).
	FailedPEs int
}

// Series is an append-only load time series.
type Series struct {
	Samples []Sample
}

// Append adds a sample.
func (s *Series) Append(x Sample) { s.Samples = append(s.Samples, x) }

// MaxLoad returns the maximum load across the series (0 if empty).
func (s *Series) MaxLoad() int {
	m := 0
	for _, x := range s.Samples {
		if x.MaxLoad > m {
			m = x.MaxLoad
		}
	}
	return m
}

// PeakRatio returns the largest instantaneous ratio MaxLoad/RunningLStar
// across the series (0 if empty or never loaded). This is a stricter
// quantity than MaxLoad/L*: it compares each moment against what was
// optimal *so far*.
func (s *Series) PeakRatio() float64 {
	best := 0.0
	for _, x := range s.Samples {
		if x.RunningLStar == 0 {
			continue
		}
		r := float64(x.MaxLoad) / float64(x.RunningLStar)
		if r > best {
			best = r
		}
	}
	return best
}

// Imbalance returns max(loads)/mean(loads) for a PE load snapshot, the
// classic load-imbalance factor. It returns 0 when all loads are zero.
func Imbalance(loads []int) float64 {
	if len(loads) == 0 {
		return 0
	}
	max, sum := 0, 0
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(loads))
	return float64(max) / mean
}

// SlowdownTracker records, per task, the worst round-robin slowdown the
// task ever experiences: the maximum, over the task's lifetime, of the
// maximum PE load within its assigned submachine.
type SlowdownTracker struct {
	m      *tree.Machine
	active map[task.ID]tree.Node
	worst  map[task.ID]int
	done   []int
}

// NewSlowdownTracker creates a tracker for machine m.
func NewSlowdownTracker(m *tree.Machine) *SlowdownTracker {
	return &SlowdownTracker{
		m:      m,
		active: make(map[task.ID]tree.Node),
		worst:  make(map[task.ID]int),
	}
}

// Arrive registers a task's placement.
func (t *SlowdownTracker) Arrive(id task.ID, v tree.Node) {
	t.active[id] = v
	t.worst[id] = 0
}

// Depart finalizes a task; its worst slowdown moves to the completed set.
func (t *SlowdownTracker) Depart(id task.ID) {
	if _, ok := t.active[id]; !ok {
		return
	}
	t.done = append(t.done, t.worst[id])
	delete(t.active, id)
	delete(t.worst, id)
}

// Observe updates every active task's worst slowdown from a PE load
// snapshot (taken after an event).
func (t *SlowdownTracker) Observe(loads []int) {
	for id, v := range t.active {
		lo, hi := t.m.PERange(v)
		max := 0
		for p := lo; p < hi; p++ {
			if loads[p] > max {
				max = loads[p]
			}
		}
		if max > t.worst[id] {
			t.worst[id] = max
		}
	}
}

// Completed returns worst slowdowns of all departed tasks, in departure
// order.
func (t *SlowdownTracker) Completed() []int { return t.done }

// Pending returns the number of still-active tracked tasks.
func (t *SlowdownTracker) Pending() int { return len(t.active) }

// All returns completed slowdowns plus current worsts of active tasks.
// Active tasks are appended in increasing ID order so the result is
// deterministic (it feeds the -slowdowns report and golden summaries).
func (t *SlowdownTracker) All() []int {
	ids := make([]task.ID, 0, len(t.worst))
	for id := range t.worst {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]int, 0, len(t.done)+len(ids))
	out = append(out, t.done...)
	for _, id := range ids {
		out = append(out, t.worst[id])
	}
	return out
}
