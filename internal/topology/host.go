package topology

import (
	"fmt"

	"partalloc/internal/tree"
)

// Decomposer is implemented by networks whose physical switch hierarchy is
// not binary: LevelWidths reports, for every binary decomposition depth
// 0..levels, how many distinct physical switch blocks exist at that depth.
// Networks without it get the uniform binary profile (2^d blocks at depth
// d). The fat tree implements it: its 4-ary hierarchy makes every other
// binary depth virtual.
type Decomposer interface {
	LevelWidths(levels int) []int
}

// Host pairs a physical network with its canonical hierarchical binary
// decomposition: an abstract tree machine whose depth-d node i stands for
// the physical PE set [i·2^(L-d), (i+1)·2^(L-d)) under the network's
// canonical numbering (see the package comment for why aligned ranges are
// exactly the physical submachines). Allocation algorithms run against the
// decomposition tree; the Host translates their placements, migrations and
// fault targets into physical terms — PE identities and hop-weighted
// migration costs.
//
// Migration costs exploit a uniformity property of every supported
// network: corresponding PEs of two equal-size aligned ranges sit at the
// same hop distance (for the bit-metric networks the XOR of corresponding
// PEs is constant; for the Morton mesh the row/column offsets are), so
// moving a size-s task costs exactly s · Dist(first PE, first PE). The
// property is verified against the brute-force per-PE sum in the package
// tests for every topology.
type Host struct {
	net     Machine
	dec     *tree.Machine
	sibHops []int64
}

// NewHost builds the canonical decomposition host for a physical network.
func NewHost(net Machine) (*Host, error) {
	if net == nil {
		return nil, fmt.Errorf("topology: nil network")
	}
	var widths []int
	if d, ok := net.(Decomposer); ok {
		widths = d.LevelWidths(levelsOf(net.N()))
	}
	dec, err := tree.NewDecomposition(net.N(), widths)
	if err != nil {
		return nil, fmt.Errorf("topology: %s decomposition: %w", net.Name(), err)
	}
	h := &Host{net: net, dec: dec}
	// Per-depth sibling distance: the two children of a depth-d node are
	// aligned ranges whose first PEs differ only in bit L-d-1, so the
	// distance is the same for every depth-d node (same XOR delta, or the
	// same single-coordinate offset on the mesh).
	h.sibHops = make([]int64, dec.Levels())
	for d := 0; d < dec.Levels(); d++ {
		h.sibHops[d] = int64(net.Dist(0, 1<<(dec.Levels()-d-1)))
	}
	return h, nil
}

// NewHostNamed builds the host for the named topology ("tree",
// "hypercube", "mesh", "butterfly" or "fattree") at size n.
func NewHostNamed(name string, n int) (*Host, error) {
	net, err := New(name, n)
	if err != nil {
		return nil, err
	}
	return NewHost(net)
}

func levelsOf(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

// Network returns the physical network.
func (h *Host) Network() Machine { return h.net }

// Tree returns the decomposition tree allocators run against. It carries
// the network's level-width metadata (see tree.NewDecomposition).
func (h *Host) Tree() *tree.Machine { return h.dec }

// Name returns the network name.
func (h *Host) Name() string { return h.net.Name() }

// N returns the PE count.
func (h *Host) N() int { return h.net.N() }

// PEs returns the physical (canonical) PEs of the submachine rooted at
// decomposition node v, in canonical order.
func (h *Host) PEs(v tree.Node) []int {
	lo, hi := h.dec.PERange(v)
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// PELabels renders the physical identities of the submachine rooted at v
// (mesh coordinates, hypercube vertex codes, ...).
func (h *Host) PELabels(v tree.Node) []string {
	lo, hi := h.dec.PERange(v)
	out := make([]string, hi-lo)
	for i := range out {
		out[i] = h.net.PELabel(lo + i)
	}
	return out
}

// CanonicalPE validates a physical PE number and returns its canonical
// (decomposition) index. Under the canonical numbering the two coincide;
// the call exists so fault schedules naming physical PEs are translated —
// and range-checked — through the decomposition rather than assumed.
func (h *Host) CanonicalPE(phys int) (int, error) {
	if phys < 0 || phys >= h.net.N() {
		return 0, fmt.Errorf("topology: physical PE %d out of range on %d-PE %s", phys, h.net.N(), h.net.Name())
	}
	return phys, nil
}

// LeafOf returns the decomposition leaf hosting physical PE p.
func (h *Host) LeafOf(phys int) (tree.Node, error) {
	p, err := h.CanonicalPE(phys)
	if err != nil {
		return 0, err
	}
	return h.dec.LeafOf(p), nil
}

// SiblingHops returns the per-PE hop distance between corresponding PEs of
// two sibling submachines whose parent sits at depth d (constant across
// the depth; see NewHost).
func (h *Host) SiblingHops(d int) int64 {
	if d < 0 || d >= h.dec.Levels() {
		panic(fmt.Sprintf("topology: no sibling pair below depth %d on %s", d, h.net.Name()))
	}
	return h.sibHops[d]
}

// MigrationCost prices moving a task between the equal-size submachines
// rooted at from and to, in routed hops: every PE's thread state moves to
// the corresponding PE of the target, each at the same distance (the
// uniformity property), so the cost is size · Dist(first, first). Moving
// to the same submachine costs 0.
func (h *Host) MigrationCost(from, to tree.Node) int64 {
	fl, fh := h.dec.PERange(from)
	tl, _ := h.dec.PERange(to)
	if sz := h.dec.Size(to); fh-fl != sz {
		panic(fmt.Sprintf("topology: migrating between different sizes %d and %d", fh-fl, sz))
	}
	if fl == tl {
		return 0
	}
	return int64(fh-fl) * int64(h.net.Dist(fl, tl))
}

// Diameter returns the network diameter: the per-PE worst case of any
// migration.
func (h *Host) Diameter() int { return h.net.Diameter() }

// LevelWidth returns the number of distinct physical switch blocks at
// decomposition depth d (2^d on uniformly binary networks).
func (h *Host) LevelWidth(d int) int { return h.dec.LevelWidth(d) }

// String renders the host for diagnostics.
func (h *Host) String() string {
	return fmt.Sprintf("topology.Host{%s, N=%d}", h.net.Name(), h.net.N())
}

// LevelWidths implements Decomposer for the fat tree: with two address
// bits per 4-ary switch level, a binary depth d holds size-2^(L-d)
// submachines, and the smallest physical block containing one has
// 4^⌈(L-d)/2⌉ PEs (capped at N). Odd binary depths therefore inherit the
// enclosing physical level's width instead of doubling it.
func (m *FatTree) LevelWidths(levels int) []int {
	out := make([]int, levels+1)
	for d := 0; d <= levels; d++ {
		rem := levels - d // submachine size exponent at depth d
		blockExp := 2 * ((rem + 1) / 2)
		if blockExp > levels {
			blockExp = levels
		}
		out[d] = m.n >> blockExp
	}
	return out
}
