package topology

import (
	"testing"

	"partalloc/internal/tree"
)

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		m, err := New(name, 16)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name || m.N() != 16 {
			t.Fatalf("%s: identity wrong", name)
		}
	}
	if _, err := New("torus", 16); err == nil {
		t.Fatal("unknown topology accepted")
	}
	for _, name := range Names() {
		if _, err := New(name, 12); err == nil {
			t.Fatalf("%s accepted non-power-of-two size", name)
		}
	}
}

// Metric-space sanity for every topology: symmetry, identity, triangle
// inequality, diameter attained and never exceeded.
func TestDistanceMetricProperties(t *testing.T) {
	for _, name := range Names() {
		m, err := New(name, 32)
		if err != nil {
			t.Fatal(err)
		}
		n := m.N()
		maxSeen := 0
		for a := 0; a < n; a++ {
			if m.Dist(a, a) != 0 {
				t.Fatalf("%s: Dist(%d,%d) != 0", name, a, a)
			}
			for b := 0; b < n; b++ {
				d := m.Dist(a, b)
				if d != m.Dist(b, a) {
					t.Fatalf("%s: asymmetric distance %d,%d", name, a, b)
				}
				if a != b && d <= 0 {
					t.Fatalf("%s: non-positive distance %d,%d", name, a, b)
				}
				if d > maxSeen {
					maxSeen = d
				}
			}
		}
		if maxSeen != m.Diameter() {
			t.Errorf("%s: observed max distance %d, Diameter() %d", name, maxSeen, m.Diameter())
		}
		// Triangle inequality on a sample.
		for a := 0; a < n; a += 3 {
			for b := 1; b < n; b += 5 {
				for c := 2; c < n; c += 7 {
					if m.Dist(a, c) > m.Dist(a, b)+m.Dist(b, c) {
						t.Fatalf("%s: triangle inequality fails at %d,%d,%d", name, a, b, c)
					}
				}
			}
		}
	}
}

func TestTreeDist(t *testing.T) {
	m, _ := NewTree(8)
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 2}, {0, 2, 4}, {0, 3, 4}, {0, 4, 6}, {0, 7, 6}, {3, 4, 6}, {6, 7, 2},
	}
	for _, c := range cases {
		if got := m.Dist(c.a, c.b); got != c.want {
			t.Errorf("tree Dist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHypercubeDist(t *testing.T) {
	m, _ := NewHypercube(16)
	if m.Dist(0b0000, 0b1111) != 4 || m.Dist(0b0101, 0b0100) != 1 {
		t.Error("hypercube Hamming distance wrong")
	}
	if m.Degree(3) != 4 || m.Diameter() != 4 {
		t.Error("hypercube degree/diameter wrong")
	}
	if m.PELabel(5) != "0101" {
		t.Errorf("label %q", m.PELabel(5))
	}
}

func TestMeshCoordsRoundTrip(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 128} {
		m, _ := NewMesh(n)
		seen := make(map[[2]int]bool)
		for p := 0; p < n; p++ {
			r, c := m.Coords(p)
			if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
				t.Fatalf("n=%d: PE %d out of grid (%d,%d)", n, p, r, c)
			}
			if seen[[2]int{r, c}] {
				t.Fatalf("n=%d: duplicate coords (%d,%d)", n, r, c)
			}
			seen[[2]int{r, c}] = true
			if m.PEAt(r, c) != p {
				t.Fatalf("n=%d: PEAt(Coords(%d)) = %d", n, p, m.PEAt(r, c))
			}
		}
	}
}

func TestMeshAlignedRangesAreRectangles(t *testing.T) {
	// Every aligned size-2^x range must be a contiguous rectangle of the
	// right area (the submesh property that makes Z-order numbering work).
	m, _ := NewMesh(64) // 8×8
	for size := 1; size <= 64; size *= 2 {
		for start := 0; start < 64; start += size {
			minR, maxR, minC, maxC := 1<<30, -1, 1<<30, -1
			for p := start; p < start+size; p++ {
				r, c := m.Coords(p)
				if r < minR {
					minR = r
				}
				if r > maxR {
					maxR = r
				}
				if c < minC {
					minC = c
				}
				if c > maxC {
					maxC = c
				}
			}
			area := (maxR - minR + 1) * (maxC - minC + 1)
			if area != size {
				t.Fatalf("size %d block at %d spans %dx%d area %d",
					size, start, maxR-minR+1, maxC-minC+1, area)
			}
		}
	}
}

func TestMeshDistManhattan(t *testing.T) {
	m, _ := NewMesh(16) // 4x4
	a := m.PEAt(0, 0)
	b := m.PEAt(3, 3)
	if m.Dist(a, b) != 6 {
		t.Errorf("Dist corner-corner = %d, want 6", m.Dist(a, b))
	}
	if m.Diameter() != 6 {
		t.Errorf("Diameter = %d", m.Diameter())
	}
}

func TestMeshDegree(t *testing.T) {
	m, _ := NewMesh(16) // 4×4
	if got := m.Degree(m.PEAt(0, 0)); got != 2 {
		t.Errorf("corner degree %d", got)
	}
	if got := m.Degree(m.PEAt(0, 1)); got != 3 {
		t.Errorf("edge degree %d", got)
	}
	if got := m.Degree(m.PEAt(1, 1)); got != 4 {
		t.Errorf("interior degree %d", got)
	}
	row, _ := NewMesh(2) // 1×2
	if got := row.Degree(0); got != 1 {
		t.Errorf("1x2 mesh degree %d", got)
	}
}

func TestButterflyDist(t *testing.T) {
	m, _ := NewButterfly(8)
	if m.Dist(0, 1) != 2 {
		t.Errorf("adjacent inputs: %d", m.Dist(0, 1))
	}
	if m.Dist(0, 4) != 6 {
		t.Errorf("opposite halves: %d", m.Dist(0, 4))
	}
	if m.Diameter() != 6 {
		t.Errorf("diameter: %d", m.Diameter())
	}
}

func TestMigrationCost(t *testing.T) {
	tm := tree.MustNew(8)
	for _, name := range Names() {
		m, _ := New(name, 8)
		// Moving a task to its own submachine is free.
		if c := MigrationCost(m, tm, 4, 4); c != 0 {
			t.Errorf("%s: self-migration cost %d", name, c)
		}
		// Moving between sibling size-2 submachines costs 2 PEs × dist.
		c := MigrationCost(m, tm, 4, 5)
		want := int64(m.Dist(0, 2) + m.Dist(1, 3))
		if c != want {
			t.Errorf("%s: sibling migration cost %d, want %d", name, c, want)
		}
		// Farther moves cost at least as much on every topology.
		far := MigrationCost(m, tm, 4, 7)
		if far < c {
			t.Errorf("%s: far migration %d cheaper than near %d", name, far, c)
		}
	}
}

func TestMigrationCostSizeMismatchPanics(t *testing.T) {
	tm := tree.MustNew(8)
	m, _ := NewTree(8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MigrationCost(m, tm, 2, 4)
}
