package topology

import (
	"strings"
	"testing"

	"partalloc/internal/tree"
)

// TestHostMigrationCostMatchesBruteForce verifies the uniformity property
// Host.MigrationCost relies on: for every pair of equal-size submachines,
// size · Dist(first, first) equals the brute-force sum of per-PE routed
// distances. This is the load-bearing check that lets every allocator price
// migrations in O(1) per move on every supported network.
func TestHostMigrationCostMatchesBruteForce(t *testing.T) {
	for _, name := range Names() {
		for _, n := range []int{2, 8, 64} {
			h, err := NewHostNamed(name, n)
			if err != nil {
				t.Fatalf("NewHostNamed(%s, %d): %v", name, n, err)
			}
			dec := h.Tree()
			for size := 1; size <= n; size *= 2 {
				subs := dec.Submachines(size)
				for _, from := range subs {
					for _, to := range subs {
						got := h.MigrationCost(from, to)
						want := MigrationCost(h.Network(), dec, from, to)
						if got != want {
							t.Fatalf("%s N=%d size=%d %v→%v: host cost %d, brute-force %d",
								name, n, size, from, to, got, want)
						}
					}
				}
			}
		}
	}
}

// TestHostSiblingHops pins SiblingHops to MigrationCost: migrating between
// the two children of a depth-d node costs child-size · SiblingHops(d).
func TestHostSiblingHops(t *testing.T) {
	for _, name := range Names() {
		h, err := NewHostNamed(name, 32)
		if err != nil {
			t.Fatal(err)
		}
		dec := h.Tree()
		for v := dec.Root(); !dec.IsLeaf(v); v = dec.Left(v) {
			d := dec.Depth(v)
			l, r := dec.Left(v), dec.Right(v)
			want := int64(dec.Size(l)) * h.SiblingHops(d)
			if got := h.MigrationCost(l, r); got != want {
				t.Errorf("%s: depth %d sibling migration cost %d, want %d", name, d, got, want)
			}
		}
	}
}

// TestMeshCornerMigrationCost pins the mesh metric at its corners: on the
// 8×8 Morton mesh the two far corners sit at the full diameter, and the
// leaf-to-leaf migration cost equals that Manhattan distance.
func TestMeshCornerMigrationCost(t *testing.T) {
	h, err := NewHostNamed("mesh", 64)
	if err != nil {
		t.Fatal(err)
	}
	m := h.Network().(*Mesh)
	corners := []struct {
		r1, c1, r2, c2 int
		want           int
	}{
		{0, 0, 7, 7, 14}, // opposite corners: the diameter
		{0, 0, 0, 7, 7},  // along the top edge
		{0, 0, 7, 0, 7},  // down the left edge
		{7, 0, 0, 7, 14}, // the other diagonal
		{0, 0, 0, 0, 0},
	}
	for _, c := range corners {
		a, b := m.PEAt(c.r1, c.c1), m.PEAt(c.r2, c.c2)
		if got := m.Dist(a, b); got != c.want {
			t.Errorf("mesh Dist((%d,%d),(%d,%d)) = %d, want %d", c.r1, c.c1, c.r2, c.c2, got, c.want)
		}
		la, err := h.LeafOf(a)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := h.LeafOf(b)
		if err != nil {
			t.Fatal(err)
		}
		if got := h.MigrationCost(la, lb); got != int64(c.want) {
			t.Errorf("mesh leaf migration (%d,%d)→(%d,%d) cost %d, want %d", c.r1, c.c1, c.r2, c.c2, got, c.want)
		}
	}
	if m.Diameter() != 14 {
		t.Errorf("8×8 mesh diameter = %d, want 14", m.Diameter())
	}
}

// TestButterflyCornerMigrationCost pins the butterfly metric: PEs differing
// in the top address bit route through the full switch ladder (2·log₂N
// hops), and neighbors through one switch level.
func TestButterflyCornerMigrationCost(t *testing.T) {
	h, err := NewHostNamed("butterfly", 64)
	if err != nil {
		t.Fatal(err)
	}
	b := h.Network()
	cases := []struct{ a, p, want int }{
		{0, 63, 12}, // full ladder: 2·6
		{0, 1, 2},   // one switch level up and back
		{0, 32, 12}, // top bit alone still crosses the whole ladder
		{31, 31, 0},
	}
	for _, c := range cases {
		if got := b.Dist(c.a, c.p); got != c.want {
			t.Errorf("butterfly Dist(%d,%d) = %d, want %d", c.a, c.p, got, c.want)
		}
	}
	la, _ := h.LeafOf(0)
	lb, _ := h.LeafOf(63)
	if got := h.MigrationCost(la, lb); got != 12 {
		t.Errorf("butterfly corner leaf migration cost %d, want 12", got)
	}
}

// TestFatTreeLevelWidths pins the 4-ary physical level profile the
// decomposition carries: odd binary depths are virtual (same physical
// switch block as the even depth above).
func TestFatTreeLevelWidths(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{64, []int{1, 1, 4, 4, 16, 16, 64}},
		{8, []int{1, 2, 2, 8}},
		{2, []int{1, 2}},
	}
	for _, c := range cases {
		h, err := NewHostNamed("fattree", c.n)
		if err != nil {
			t.Fatal(err)
		}
		for d, want := range c.want {
			if got := h.LevelWidth(d); got != want {
				t.Errorf("fattree N=%d LevelWidth(%d) = %d, want %d", c.n, d, got, want)
			}
		}
		// With ≥ 2 switch levels the 4-ary profile departs from uniform
		// binary; at N=2 the two coincide.
		if c.n >= 8 && h.Tree().UniformLevels() {
			t.Errorf("fattree N=%d decomposition should carry non-uniform level widths", c.n)
		}
	}
	// Every other network decomposes uniformly: 2^d blocks at depth d.
	for _, name := range []string{"tree", "hypercube", "mesh", "butterfly"} {
		h, err := NewHostNamed(name, 16)
		if err != nil {
			t.Fatal(err)
		}
		if !h.Tree().UniformLevels() {
			t.Errorf("%s decomposition should be uniformly binary", name)
		}
		for d := 0; d <= h.Tree().Levels(); d++ {
			if got := h.LevelWidth(d); got != 1<<d {
				t.Errorf("%s LevelWidth(%d) = %d, want %d", name, d, got, 1<<d)
			}
		}
	}
}

// TestHostCanonicalPE checks the physical→canonical translation and its
// range checking (this is what fault schedules pass through).
func TestHostCanonicalPE(t *testing.T) {
	h, err := NewHostNamed("hypercube", 16)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 16; p++ {
		got, err := h.CanonicalPE(p)
		if err != nil || got != p {
			t.Fatalf("CanonicalPE(%d) = %d, %v; want identity", p, got, err)
		}
		leaf, err := h.LeafOf(p)
		if err != nil {
			t.Fatal(err)
		}
		if h.Tree().PEOf(leaf) != p {
			t.Fatalf("LeafOf(%d) round-trip gave PE %d", p, h.Tree().PEOf(leaf))
		}
	}
	for _, bad := range []int{-1, 16, 1000} {
		if _, err := h.CanonicalPE(bad); err == nil {
			t.Errorf("CanonicalPE(%d): want range error", bad)
		}
	}
}

// TestHostPEs checks the node→physical-PE-set translation.
func TestHostPEs(t *testing.T) {
	h, err := NewHostNamed("mesh", 16)
	if err != nil {
		t.Fatal(err)
	}
	root := h.Tree().Root()
	pes := h.PEs(root)
	if len(pes) != 16 || pes[0] != 0 || pes[15] != 15 {
		t.Fatalf("PEs(root) = %v, want 0..15", pes)
	}
	labels := h.PELabels(h.Tree().LeafOf(5))
	if len(labels) != 1 || !strings.Contains(labels[0], "(") {
		t.Fatalf("PELabels(leaf 5) = %v, want one mesh coordinate label", labels)
	}
}

// TestHostMigrationCostSizeMismatchPanics mirrors the generic helper's
// contract on the O(1) fast path.
func TestHostMigrationCostSizeMismatchPanics(t *testing.T) {
	h, err := NewHostNamed("tree", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	h.MigrationCost(h.Tree().Root(), h.Tree().Left(h.Tree().Root()))
}

// TestNewHostErrors covers the construction error paths.
func TestNewHostErrors(t *testing.T) {
	if _, err := NewHostNamed("torus", 16); err == nil {
		t.Error("unknown topology: want error")
	}
	if _, err := NewHostNamed("hypercube", 12); err == nil {
		t.Error("non-power-of-two size: want error")
	}
	if _, err := NewHost(nil); err == nil {
		t.Error("nil network: want error")
	}
}

// TestDecompositionValidation exercises tree.NewDecomposition's width
// checks through the one package allowed to call it directly.
func TestDecompositionValidation(t *testing.T) {
	bad := [][]int{
		{1, 2, 4},          // wrong length for n=16
		{1, 2, 4, 8},       // wrong length
		{2, 2, 4, 8, 16},   // root width must be 1
		{1, 2, 4, 8, 8},    // leaf width must be n
		{1, 4, 2, 8, 16},   // decreasing
		{1, 3, 4, 8, 16},   // not a power of two
		{1, 2, 8, 16, 16},  // width 16 at depth 3 exceeds 2^3
		{1, 2, 4, 16, 16},  // same, via a different profile
		{0, 2, 4, 8, 16},   // zero width
		{1, 2, 4, 8, 32},   // leaf width exceeds n
		{1, 1, 1, 1, 1, 1}, // nonsense length
	}
	for _, w := range bad {
		if _, err := tree.NewDecomposition(16, w); err == nil {
			t.Errorf("NewDecomposition(16, %v): want error", w)
		}
	}
	m, err := tree.NewDecomposition(16, []int{1, 1, 4, 4, 16})
	if err != nil {
		t.Fatalf("valid fat-tree profile rejected: %v", err)
	}
	if m.UniformLevels() {
		t.Error("non-uniform profile reported uniform")
	}
	plain, err := tree.NewDecomposition(16, nil)
	if err != nil || !plain.UniformLevels() {
		t.Fatalf("nil widths should give the plain machine (err %v)", err)
	}
}
