// Package topology models the hierarchically decomposable interconnection
// networks the paper says its results extend to (§1): the tree machine
// itself, the hypercube, the 2-D mesh, and the butterfly.
//
// Every such network admits a canonical PE numbering 0..N-1 under which
// the 2^x-PE submachines are exactly the aligned ranges
// [i·2^x, (i+1)·2^x): for the tree this is leaf order; for the hypercube,
// the binary PE code (aligned ranges are subcubes); for the 2^a×2^b mesh,
// the Z-order (Morton) curve (aligned ranges are submeshes); for the
// butterfly, input-column order (aligned ranges are sub-butterflies).
// Allocation logic therefore runs unchanged on the abstract tree from
// internal/tree, and a Machine here contributes what actually differs
// between networks: physical identity, adjacency, hop distances, and hence
// the cost of migrating a task between submachines — the currency the
// paper trades against thread-management load.
package topology

import (
	"fmt"
	"math/bits"

	"partalloc/internal/mathx"
	"partalloc/internal/tree"
)

// Machine is a physical network with a hierarchical decomposition aligned
// to the canonical PE numbering.
type Machine interface {
	// Name identifies the topology, e.g. "hypercube".
	Name() string
	// N returns the number of PEs (a power of two).
	N() int
	// PELabel renders the physical identity of canonical PE p (e.g. mesh
	// coordinates "(3,1)").
	PELabel(p int) string
	// Degree returns the number of physical neighbors of PE p.
	Degree(p int) int
	// Dist returns the hop distance between canonical PEs a and b over the
	// network (switches included where the network has them).
	Dist(a, b int) int
	// Diameter returns the maximum hop distance between any two PEs.
	Diameter() int
}

// MigrationCost returns the cost of moving a task occupying the size-s
// submachine rooted at from (on the abstract tree t) to the one rooted at
// to: each PE's thread state moves to the corresponding PE of the target
// submachine, so the cost is the summed hop distance of the |s| moves.
// Migrating to the same submachine costs 0.
func MigrationCost(m Machine, t *tree.Machine, from, to tree.Node) int64 {
	fl, fh := t.PERange(from)
	tl, th := t.PERange(to)
	if fh-fl != th-tl {
		panic(fmt.Sprintf("topology: migrating between different sizes %d and %d", fh-fl, th-tl))
	}
	var cost int64
	for i := 0; i < fh-fl; i++ {
		cost += int64(m.Dist(fl+i, tl+i))
	}
	return cost
}

// --- Tree machine ---------------------------------------------------------

// Tree is the paper's machine: PEs at the leaves of a complete binary
// tree, switches at internal nodes. The hop distance between two leaves is
// the length of the tree path between them (2·levels to their lowest
// common ancestor).
type Tree struct {
	t *tree.Machine
}

// NewTree returns an N-PE tree machine.
func NewTree(n int) (*Tree, error) {
	t, err := tree.New(n)
	if err != nil {
		return nil, err
	}
	return &Tree{t: t}, nil
}

// Name implements Machine.
func (m *Tree) Name() string { return "tree" }

// N implements Machine.
func (m *Tree) N() int { return m.t.N() }

// PELabel implements Machine.
func (m *Tree) PELabel(p int) string { return fmt.Sprintf("leaf%d", p) }

// Degree implements Machine: every leaf hangs off one switch.
func (m *Tree) Degree(p int) int { return 1 }

// Dist implements Machine: 2·(levels above the LCA of the two leaves).
func (m *Tree) Dist(a, b int) int {
	if a == b {
		return 0
	}
	// Leaves differ at bit position k (0-based from LSB of the leaf index
	// within the heap numbering): the LCA is k+1 levels up.
	x := uint(a ^ b)
	up := bits.Len(x)
	return 2 * up
}

// Diameter implements Machine.
func (m *Tree) Diameter() int { return 2 * m.t.Levels() }

// --- Hypercube ------------------------------------------------------------

// Hypercube is the log2(N)-dimensional binary hypercube; canonical PE p is
// the vertex with binary code p, and aligned ranges are subcubes (the
// buddy-system view of subcube allocation, cf. Chen/Shin).
type Hypercube struct {
	n   int
	dim int
}

// NewHypercube returns an N-PE hypercube.
func NewHypercube(n int) (*Hypercube, error) {
	if !mathx.IsPow2(n) {
		return nil, fmt.Errorf("topology: hypercube size %d not a power of two", n)
	}
	return &Hypercube{n: n, dim: mathx.Log2(n)}, nil
}

// Name implements Machine.
func (m *Hypercube) Name() string { return "hypercube" }

// N implements Machine.
func (m *Hypercube) N() int { return m.n }

// PELabel implements Machine.
func (m *Hypercube) PELabel(p int) string { return fmt.Sprintf("%0*b", m.dim, p) }

// Degree implements Machine.
func (m *Hypercube) Degree(p int) int { return m.dim }

// Dist implements Machine: Hamming distance.
func (m *Hypercube) Dist(a, b int) int { return bits.OnesCount(uint(a ^ b)) }

// Diameter implements Machine.
func (m *Hypercube) Diameter() int { return m.dim }

// --- 2-D mesh ---------------------------------------------------------------

// Mesh is a 2^a × 2^b mesh with PEs numbered along the Z-order (Morton)
// curve so that aligned ranges are (near-)square submeshes.
type Mesh struct {
	n            int
	rows, cols   int
	rBits, cBits int
}

// NewMesh returns an N-PE mesh as square as possible (rows ≤ cols).
func NewMesh(n int) (*Mesh, error) {
	if !mathx.IsPow2(n) {
		return nil, fmt.Errorf("topology: mesh size %d not a power of two", n)
	}
	d := mathx.Log2(n)
	rBits := d / 2
	cBits := d - rBits
	return &Mesh{n: n, rows: 1 << rBits, cols: 1 << cBits, rBits: rBits, cBits: cBits}, nil
}

// Name implements Machine.
func (m *Mesh) Name() string { return "mesh" }

// N implements Machine.
func (m *Mesh) N() int { return m.n }

// Coords maps canonical PE p to (row, col) by de-interleaving the Morton
// code. With unequal side bits, the extra column bits occupy the top of
// the code so aligned power-of-two ranges remain contiguous rectangles.
func (m *Mesh) Coords(p int) (row, col int) {
	// Interleave pattern: lowest 2·rBits bits alternate col(LSB first),row;
	// remaining high bits are column bits.
	for i := 0; i < m.rBits; i++ {
		col |= ((p >> (2 * i)) & 1) << i
		row |= ((p >> (2*i + 1)) & 1) << i
	}
	high := p >> (2 * m.rBits)
	col |= high << m.rBits
	return row, col
}

// PEAt is the inverse of Coords.
func (m *Mesh) PEAt(row, col int) int {
	p := 0
	for i := 0; i < m.rBits; i++ {
		p |= ((col >> i) & 1) << (2 * i)
		p |= ((row >> i) & 1) << (2*i + 1)
	}
	p |= (col >> m.rBits) << (2 * m.rBits)
	return p
}

// PELabel implements Machine.
func (m *Mesh) PELabel(p int) string {
	r, c := m.Coords(p)
	return fmt.Sprintf("(%d,%d)", r, c)
}

// Degree implements Machine.
func (m *Mesh) Degree(p int) int {
	r, c := m.Coords(p)
	d := 4
	if r == 0 || r == m.rows-1 {
		d--
	}
	if c == 0 || c == m.cols-1 {
		d--
	}
	if m.rows == 1 {
		d-- // a 1-row mesh has no vertical links at all
	}
	return d
}

// Dist implements Machine: Manhattan distance.
func (m *Mesh) Dist(a, b int) int {
	ra, ca := m.Coords(a)
	rb, cb := m.Coords(b)
	return abs(ra-rb) + abs(ca-cb)
}

// Diameter implements Machine.
func (m *Mesh) Diameter() int { return (m.rows - 1) + (m.cols - 1) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// --- Butterfly --------------------------------------------------------------

// Butterfly models an N-input butterfly with PEs at the level-0 (input)
// column; messages route up the levels and back. Two inputs whose codes
// first differ at bit k (counting from the most significant, 0-based) must
// route up to level dim−k and back, so the hop distance is 2·(bits.Len(a^b)).
// Aligned ranges are sub-butterflies.
type Butterfly struct {
	n   int
	dim int
}

// NewButterfly returns an N-input butterfly.
func NewButterfly(n int) (*Butterfly, error) {
	if !mathx.IsPow2(n) {
		return nil, fmt.Errorf("topology: butterfly size %d not a power of two", n)
	}
	return &Butterfly{n: n, dim: mathx.Log2(n)}, nil
}

// Name implements Machine.
func (m *Butterfly) Name() string { return "butterfly" }

// N implements Machine.
func (m *Butterfly) N() int { return m.n }

// PELabel implements Machine.
func (m *Butterfly) PELabel(p int) string { return fmt.Sprintf("in%d", p) }

// Degree implements Machine: each input connects to two level-1 switches
// (straight and cross edges).
func (m *Butterfly) Degree(p int) int { return 2 }

// Dist implements Machine.
func (m *Butterfly) Dist(a, b int) int {
	if a == b {
		return 0
	}
	return 2 * bits.Len(uint(a^b))
}

// Diameter implements Machine.
func (m *Butterfly) Diameter() int { return 2 * m.dim }

// --- CM-5-style fat tree ------------------------------------------------------

// FatTree models the CM-5 data network the paper cites as its motivating
// machine (Leiserson et al. [17]): a 4-ary fat tree over the PEs, with
// each PE connected to two first-level switches and link capacity doubling
// toward the root. Messages route up to the lowest common 4-ary ancestor
// and back down, so the hop distance between PEs a and b is 2·k where k is
// the number of 4-ary levels to their LCA (two address bits per level).
// The fat links mean migration cost in *hops* matches this distance even
// under contention at moderate loads — the aspect the hop metric captures.
type FatTree struct {
	n      int
	levels int // 4-ary levels, ⌈log4 N⌉
}

// NewFatTree returns an N-PE CM-5-style fat tree.
func NewFatTree(n int) (*FatTree, error) {
	if !mathx.IsPow2(n) {
		return nil, fmt.Errorf("topology: fat tree size %d not a power of two", n)
	}
	d := mathx.Log2(n)
	return &FatTree{n: n, levels: (d + 1) / 2}, nil
}

// Name implements Machine.
func (m *FatTree) Name() string { return "fattree" }

// N implements Machine.
func (m *FatTree) N() int { return m.n }

// PELabel implements Machine.
func (m *FatTree) PELabel(p int) string { return fmt.Sprintf("pe%d", p) }

// Degree implements Machine: CM-5 PEs connect to two level-1 switches.
func (m *FatTree) Degree(p int) int { return 2 }

// Dist implements Machine: 2·(4-ary levels to the LCA).
func (m *FatTree) Dist(a, b int) int {
	if a == b {
		return 0
	}
	diff := uint(a ^ b)
	// Two address bits per 4-ary level.
	k := (bits.Len(diff) + 1) / 2
	return 2 * k
}

// Diameter implements Machine.
func (m *FatTree) Diameter() int { return 2 * m.levels }

// --- Registry ---------------------------------------------------------------

// New constructs a topology by name: "tree", "hypercube", "mesh",
// "butterfly" or "fattree".
func New(name string, n int) (Machine, error) {
	switch name {
	case "tree":
		return NewTree(n)
	case "hypercube":
		return NewHypercube(n)
	case "mesh":
		return NewMesh(n)
	case "butterfly":
		return NewButterfly(n)
	case "fattree":
		return NewFatTree(n)
	}
	return nil, fmt.Errorf("topology: unknown topology %q", name)
}

// Names lists the supported topologies.
func Names() []string { return []string{"tree", "hypercube", "mesh", "butterfly", "fattree"} }
