// Package parallel provides the small fan-out helpers the experiment
// harness uses to spread independent seeded runs across cores. Experiment
// cells are embarrassingly parallel — each builds its own allocator and
// workload from a seed — so a bounded worker pool with deterministic
// result ordering is all that is needed: results are collected by index,
// never by completion order, keeping every table byte-identical to the
// sequential run.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines
// (workers ≤ 0 selects GOMAXPROCS). It returns after all calls complete.
// fn must be safe to call concurrently for distinct i.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Work-stealing by atomic ticket: each worker claims the next index
	// with one uncontended fetch-add instead of a mutex handoff.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn over [0, n) in parallel and returns the results in index
// order, so downstream aggregation is deterministic regardless of
// completion order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}
