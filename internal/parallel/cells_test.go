package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachErrCollectsInOrder(t *testing.T) {
	errs := ForEachErr(10, 4, func(i int) error {
		if i%3 == 0 {
			return fmt.Errorf("cell %d", i)
		}
		return nil
	})
	if len(errs) != 10 {
		t.Fatalf("%d errors, want 10", len(errs))
	}
	for i, err := range errs {
		if (i%3 == 0) != (err != nil) {
			t.Errorf("cell %d: err = %v", i, err)
		}
		if err != nil && err.Error() != fmt.Sprintf("cell %d", i) {
			t.Errorf("cell %d: wrong error %v", i, err)
		}
	}
}

func TestRunCellsCapturesPanics(t *testing.T) {
	errs := RunCells(5, RunOptions{Workers: 2}, func(i int) error {
		if i == 3 {
			panic("copies: injected failure")
		}
		return nil
	})
	for i, err := range errs {
		if i != 3 {
			if err != nil {
				t.Errorf("cell %d: unexpected error %v", i, err)
			}
			continue
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("cell 3: error %v is not a PanicError", err)
		}
		if pe.Index != 3 || pe.Value != "copies: injected failure" || len(pe.Stack) == 0 {
			t.Fatalf("cell 3: bad PanicError %+v", pe)
		}
	}
}

func TestRunCellsWatchdog(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	errs := RunCells(4, RunOptions{Workers: 4, Timeout: 20 * time.Millisecond}, func(i int) error {
		if i == 1 {
			<-hang
		}
		return nil
	})
	var te *TimeoutError
	if !errors.As(errs[1], &te) {
		t.Fatalf("cell 1: error %v is not a TimeoutError", errs[1])
	}
	if te.Index != 1 || te.Timeout != 20*time.Millisecond {
		t.Fatalf("bad TimeoutError %+v", te)
	}
	for _, i := range []int{0, 2, 3} {
		if errs[i] != nil {
			t.Errorf("cell %d: unexpected error %v", i, errs[i])
		}
	}
}

func TestRunCellsRetriesTransientFailures(t *testing.T) {
	var attempts [3]atomic.Int32
	errs := RunCells(3, RunOptions{Workers: 3, Retries: 2, Backoff: time.Millisecond}, func(i int) error {
		if attempts[i].Add(1) <= 2 && i == 1 {
			return errors.New("transient")
		}
		return nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatalf("unexpected error after retries: %v", err)
	}
	if got := attempts[1].Load(); got != 3 {
		t.Fatalf("cell 1 attempted %d times, want 3", got)
	}
	if got := attempts[0].Load(); got != 1 {
		t.Fatalf("cell 0 attempted %d times, want 1", got)
	}
}

func TestRunCellsRetriesExhaust(t *testing.T) {
	var n atomic.Int32
	errs := RunCells(1, RunOptions{Retries: 2, Backoff: time.Microsecond}, func(i int) error {
		n.Add(1)
		return errors.New("always")
	})
	if errs[0] == nil || errs[0].Error() != "always" {
		t.Fatalf("err = %v", errs[0])
	}
	if n.Load() != 3 {
		t.Fatalf("attempted %d times, want 3 (1 + 2 retries)", n.Load())
	}
}

func TestRunCellsCancelDrains(t *testing.T) {
	cancel := make(chan struct{})
	started := make(chan int, 64)
	errs := RunCells(64, RunOptions{Workers: 2, Cancel: cancel}, func(i int) error {
		started <- i
		if len(started) == 4 {
			close(cancel)
		}
		return nil
	})
	var done, skipped int
	for i, err := range errs {
		switch {
		case err == nil:
			done++
		case errors.Is(err, ErrCanceled):
			skipped++
		default:
			t.Fatalf("cell %d: unexpected error %v", i, err)
		}
	}
	if done+skipped != 64 {
		t.Fatalf("done %d + skipped %d != 64", done, skipped)
	}
	if skipped == 0 {
		t.Fatal("cancel skipped nothing; expected most cells canceled")
	}
}

func TestRunCellsZeroAndNegative(t *testing.T) {
	if errs := RunCells(0, RunOptions{}, func(int) error { return errors.New("no") }); len(errs) != 0 {
		t.Fatalf("n=0 returned %d errors", len(errs))
	}
	if errs := RunCells(-3, RunOptions{}, nil); len(errs) != 0 {
		t.Fatalf("n<0 returned %d errors", len(errs))
	}
}

func TestFirstError(t *testing.T) {
	if err := FirstError([]error{nil, nil}); err != nil {
		t.Fatalf("FirstError of nils = %v", err)
	}
	e := errors.New("x")
	if err := FirstError([]error{nil, e, errors.New("y")}); err != e {
		t.Fatalf("FirstError = %v, want %v", err, e)
	}
}
