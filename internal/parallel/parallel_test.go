package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 200
		var hits [n]int32
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestMapOrderDeterministic(t *testing.T) {
	got := Map(50, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d: got %d", i, v)
		}
	}
}

func TestMapSingleWorkerMatchesParallel(t *testing.T) {
	seq := Map(100, 1, func(i int) int { return i * 3 })
	par := Map(100, 16, func(i int) int { return i * 3 })
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
}
