package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 200
		var hits [n]int32
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestMapOrderDeterministic(t *testing.T) {
	got := Map(50, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d: got %d", i, v)
		}
	}
}

func TestMapSingleWorkerMatchesParallel(t *testing.T) {
	seq := Map(100, 1, func(i int) int { return i * 3 })
	par := Map(100, 16, func(i int) int { return i * 3 })
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
}

// TestForEachOverlappingPools hammers many concurrent ForEach pools that
// write into a shared (index-disjoint) buffer; run under -race this
// verifies the ticket counter and the wait-group publication of results.
func TestForEachOverlappingPools(t *testing.T) {
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	const pools = 8
	const n = 300
	var buf [pools][n]int
	for r := 0; r < rounds; r++ {
		done := make(chan int, pools)
		for p := 0; p < pools; p++ {
			go func(p int) {
				ForEach(n, (p%5)+1, func(i int) {
					buf[p][i] = p*n + i
				})
				done <- p
			}(p)
		}
		for p := 0; p < pools; p++ {
			<-done
		}
		// ForEach returned, so every write must be visible without
		// further synchronization.
		for p := 0; p < pools; p++ {
			for i := 0; i < n; i++ {
				if buf[p][i] != p*n+i {
					t.Fatalf("round %d: pool %d index %d = %d", r, p, i, buf[p][i])
				}
			}
		}
	}
}

// TestMapNestedPools exercises Map called from inside a ForEach worker —
// the overlap pattern experiment sweeps use (outer cells, inner repeats).
func TestMapNestedPools(t *testing.T) {
	outer := Map(10, 4, func(i int) []int {
		return Map(20, 3, func(j int) int { return i*100 + j })
	})
	for i, row := range outer {
		for j, v := range row {
			if v != i*100+j {
				t.Fatalf("outer %d inner %d = %d", i, j, v)
			}
		}
	}
}
