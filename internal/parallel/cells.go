package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"partalloc/internal/obs"
)

// ErrCanceled marks cells that were never started because RunOptions.Cancel
// was closed first. Cells already in flight when the cancel lands run to
// completion (their results are real, not canceled).
var ErrCanceled = errors.New("parallel: run canceled before cell started")

// PanicError is a cell panic converted into a value: the harness must
// survive a panicking cell (a capacity-exhaustion panic under fault
// injection, say) and keep the other cells' results.
type PanicError struct {
	// Index is the cell that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: cell %d panicked: %v", e.Index, e.Value)
}

// TimeoutError marks a cell attempt that outran the per-cell watchdog.
type TimeoutError struct {
	// Index is the cell that timed out.
	Index int
	// Attempt is the 0-based attempt number that timed out.
	Attempt int
	// Timeout is the watchdog duration that expired.
	Timeout time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("parallel: cell %d attempt %d exceeded %v", e.Index, e.Attempt, e.Timeout)
}

// RunOptions configures RunCells.
type RunOptions struct {
	// Workers bounds concurrency (≤ 0 selects GOMAXPROCS).
	Workers int
	// Retries is how many times a failed cell is re-attempted after the
	// first try (0 = single attempt). Deterministic failures fail every
	// attempt; retries exist for cells with environmental flakiness
	// (timeouts under load).
	Retries int
	// Backoff is the sleep before the first retry, doubling per attempt
	// (exponential backoff). 0 retries immediately.
	Backoff time.Duration
	// Timeout is the per-attempt watchdog (0 = none). A timed-out
	// attempt's goroutine cannot be killed — it is abandoned and its
	// eventual result discarded — so fn should not hold unbounded
	// resources when this is set.
	Timeout time.Duration
	// Cancel, when closed, stops workers from claiming new cells; cells
	// never started report ErrCanceled. In-flight cells drain normally,
	// which is what lets a SIGINT handler keep a consistent checkpoint.
	Cancel <-chan struct{}
	// Sink counts watchdog kills, retries, and captured panics. nil (the
	// default) records nothing.
	Sink *obs.Sink
}

// RunCells runs fn(i) for i in [0, n) on a bounded worker pool and returns
// per-index errors (nil for success). Unlike ForEach it never lets one bad
// cell take down the sweep: panics become *PanicError, hung cells trip the
// watchdog as *TimeoutError, and transient failures are retried with
// exponential backoff. Results are index-ordered, so downstream tables
// stay byte-identical to a sequential run regardless of scheduling.
func RunCells(n int, opt RunOptions, fn func(i int) error) []error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if canceled(opt.Cancel) {
					errs[i] = ErrCanceled
					continue // drain the remaining tickets as canceled
				}
				errs[i] = runCell(i, opt, fn)
			}
		}()
	}
	wg.Wait()
	return errs
}

// runCell drives one cell through its attempts.
func runCell(i int, opt RunOptions, fn func(i int) error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = runAttempt(i, attempt, opt, fn)
		if err == nil || attempt >= opt.Retries || canceled(opt.Cancel) {
			return err
		}
		opt.Sink.CellRetry(i, attempt+1)
		if opt.Backoff > 0 {
			if !sleepOrCancel(opt.Backoff<<uint(attempt), opt.Cancel) {
				return err
			}
		}
	}
}

// runAttempt runs one attempt under the watchdog (if armed).
func runAttempt(i, attempt int, opt RunOptions, fn func(i int) error) error {
	if opt.Timeout <= 0 {
		return capture(i, opt.Sink, fn)
	}
	done := make(chan error, 1)
	go func() { done <- capture(i, opt.Sink, fn) }()
	timer := time.NewTimer(opt.Timeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		// The attempt goroutine is abandoned; its buffered send cannot
		// block and its result is discarded.
		opt.Sink.WatchdogTimeout(i, attempt, int64(opt.Timeout))
		return &TimeoutError{Index: i, Attempt: attempt, Timeout: opt.Timeout}
	}
}

// capture converts a panic in fn into a *PanicError.
func capture(i int, sink *obs.Sink, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			sink.CellPanic(i)
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

func canceled(c <-chan struct{}) bool {
	if c == nil {
		return false
	}
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// sleepOrCancel sleeps d, returning false if cancel fired first.
func sleepOrCancel(d time.Duration, cancel <-chan struct{}) bool {
	if cancel == nil {
		time.Sleep(d)
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-cancel:
		return false
	}
}

// ForEachErr runs fn(i) for i in [0, n) on up to workers goroutines and
// returns the per-index errors (nil entries for successes). It is the
// error-aware ForEach: callers that used to swallow failures inside fn get
// them back in index order. Panics in fn are captured as *PanicError
// rather than crashing the pool.
func ForEachErr(n, workers int, fn func(i int) error) []error {
	return RunCells(n, RunOptions{Workers: workers}, fn)
}

// FirstError returns the lowest-index non-nil error, or nil.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
