package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden experiment artifacts")

// goldenConfig pins the snapshot configuration; any seed or scale change
// must regenerate the files (go test ./internal/experiments -update-golden).
var goldenConfig = Config{Quick: true, Seeds: 2}

// Golden snapshots freeze the full rendered artifact (tables, plots,
// notes) for the deterministic experiments, so any behavioral drift in an
// algorithm, a workload generator or a renderer shows up as a readable
// diff. E6/E7/E11 are excluded only where different platforms' math could
// reorder float ties — everything here is integer- or fixed-seed-stable.
func TestGoldenArtifacts(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E9", "E12", "E13"} {
		id := id
		t.Run(id, func(t *testing.T) {
			r, ok := ByID(id)
			if !ok {
				t.Fatalf("unknown runner %s", id)
			}
			var b strings.Builder
			if err := r.Run(goldenConfig).Render(&b); err != nil {
				t.Fatal(err)
			}
			got := b.String()
			path := filepath.Join("testdata", "golden", id+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from golden snapshot.\n--- got ---\n%s\n--- want ---\n%s",
					id, clip(got), clip(string(want)))
			}
		})
	}
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "\n...[clipped]"
	}
	return s
}
