package experiments

import (
	"fmt"

	"partalloc/internal/report"
	"partalloc/internal/stats"
	"partalloc/internal/subcube"
	"partalloc/internal/task"
	"partalloc/internal/workload"
)

// E13Row reports one (dim, strategy) cell.
type E13Row struct {
	N          int
	Strategy   string
	Candidates string // candidate subcubes per size-N/4 request, for scale
	MeanRatio  float64
	MaxRatio   float64
}

// E13TreeRestriction asks what the paper's structural restriction costs:
// its algorithms place tasks only on the hierarchical (buddy-aligned)
// submachines, but a hypercube owner could let greedy choose among *all*
// subcubes. The experiment runs min-max-load greedy over the buddy,
// Gray-code and exhaustive candidate sets on identical time-shared
// workloads and compares competitive ratios. The observed answer: the
// richer candidate sets buy little to nothing on churning workloads —
// evidence that the hierarchical-decomposition restriction, which is what
// makes the paper's reallocation procedure and bounds possible, is cheap.
func E13TreeRestriction(cfg Config) Artifact {
	rows := E13Rows(cfg)
	tab := &report.Table{
		Caption: "E13 — cost of the buddy/tree restriction: greedy over richer hypercube candidate sets",
		Headers: []string{"N", "candidate set", "candidates@N/4", "mean ratio", "max ratio"},
	}
	for _, r := range rows {
		tab.AddRowf(r.N, r.Strategy, r.Candidates, r.MeanRatio, r.MaxRatio)
	}
	return Artifact{
		ID:     "E13",
		Title:  "Ablation: does restricting placements to the tree hierarchy cost load?",
		Tables: []*report.Table{tab},
		Notes: []string{
			"buddy = the paper's candidate set (identical to tree-machine submachines).",
			"expected/observed shape: mean ratios nearly identical across candidate sets — the hierarchy restriction costs little under time sharing, while it is what makes ⌈S/N⌉ repacking (Lemma 1) possible at all.",
		},
	}
}

// E13Rows computes the raw table.
func E13Rows(cfg Config) []E13Row {
	dims := []int{6, 8}
	if cfg.Quick {
		dims = []int{5, 6}
	}
	seeds := cfg.seeds(5)
	events := 3000
	if cfg.Quick {
		events = 600
	}
	var rows []E13Row
	for _, dim := range dims {
		n := 1 << dim
		for _, st := range subcube.Strategies() {
			var ratios []float64
			for s := 0; s < seeds; s++ {
				seq := workload.Saturation(workload.SaturationConfig{
					N: n, Events: events, Seed: int64(s), Target: 2.0, Churn: 0.3,
					Sizes: workload.MixedSizes,
				})
				a := subcube.NewTimeShared(dim, st)
				maxLoad := 0
				for _, e := range seq.Events {
					switch e.Kind {
					case task.Arrive:
						a.Arrive(task.Task{ID: e.Task, Size: e.Size})
					case task.Depart:
						a.Depart(e.Task)
					}
					if l := a.MaxLoad(); l > maxLoad {
						maxLoad = l
					}
				}
				if lstar := seq.OptimalLoad(n); lstar > 0 {
					ratios = append(ratios, float64(maxLoad)/float64(lstar))
				}
			}
			rows = append(rows, E13Row{
				N:          n,
				Strategy:   st.String(),
				Candidates: fmt.Sprintf("%d", candidateCount(dim, dim-2, st)),
				MeanRatio:  stats.Mean(ratios),
				MaxRatio:   stats.Max(ratios),
			})
		}
	}
	return rows
}

// candidateCount counts candidate subcubes of size 2^x in a dim-cube per
// strategy (empty cube).
func candidateCount(dim, x int, st subcube.Strategy) int {
	c := subcube.NewCube(dim)
	return c.CountFree(1<<x, st)
}
