// Package experiments contains one runner per artifact in the experiment
// index of DESIGN.md (E1–E10). The paper is theoretical — its "evaluation"
// is a worked example (Figure 1) and seven theorem bounds — so each
// experiment empirically regenerates the corresponding claim: measured
// competitive ratios against the proven upper and lower bounds, the
// headline load-versus-reallocation-frequency tradeoff, and the cost side
// of the trade (migration traffic).
//
// Every runner is deterministic given its Config and returns an Artifact
// holding rendered tables/plots plus the raw numbers the tests assert on.
package experiments

import (
	"fmt"
	"io"

	"partalloc/internal/report"
	"partalloc/internal/tree"
)

// newMachine builds the tree machine the experiment runners allocate on.
// The experiments regenerate the paper's tables, which are stated on the
// abstract tree model, so they construct it directly instead of going
// through a topology host; this helper is the one sanctioned call site.
//
//lint:ignore hosttopo the experiment tables are defined on the abstract tree model
func newMachine(n int) *tree.Machine { return tree.MustNew(n) }

// Config scales the experiments.
type Config struct {
	// Quick shrinks machine sizes and seed counts so the full suite runs
	// in seconds (used by tests and `go test -bench`); the default (false)
	// is the paper-scale configuration used by cmd/experiments.
	Quick bool
	// Seeds overrides the number of random seeds per cell (0 = default).
	Seeds int
}

func (c Config) seeds(def int) int {
	if c.Seeds > 0 {
		return c.Seeds
	}
	if c.Quick {
		return mathxMax(2, def/5)
	}
	return def
}

func mathxMax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Artifact is one regenerated table or figure.
type Artifact struct {
	ID     string
	Title  string
	Tables []*report.Table
	Plots  []*report.Plot
	// Notes records observations that belong next to the artifact (e.g.
	// substitutions or shape statements).
	Notes []string
}

// Render writes every table and plot in ASCII form.
func (a Artifact) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n\n", a.ID, a.Title); err != nil {
		return err
	}
	for _, t := range a.Tables {
		if err := t.WriteASCII(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, p := range a.Plots {
		if err := p.WriteASCII(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, n := range a.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Runner is a named experiment entry point.
type Runner struct {
	ID   string
	Run  func(Config) Artifact
	Desc string
}

// All returns every experiment in index order.
func All() []Runner {
	return []Runner{
		{"E1", func(c Config) Artifact { return Figure1() }, "Figure 1 replay: σ* on a 4-PE machine"},
		{"E2", E2Optimal0Realloc, "Theorem 3.1: A_C achieves the optimal load"},
		{"E3", E3GreedyUpper, "Theorem 4.1: greedy upper bound"},
		{"E4", E4Tradeoff, "Theorem 4.2/4.3: the load vs reallocation-frequency tradeoff"},
		{"E5", E5DetLowerBound, "Theorem 4.3: deterministic lower bound achieved"},
		{"E6", E6RandUpper, "Theorem 5.1: randomized upper bound"},
		{"E7", E7RandLowerBound, "Theorem 5.2: randomized lower bound via σ_r"},
		{"E8", E8ReallocCost, "The trade: reallocation traffic vs load, by d"},
		{"E9", E9Topologies, "Cross-topology: migration traffic on tree/hypercube/mesh/butterfly"},
		{"E10", E10Slowdown, "Round-robin slowdown distributions by d"},
		{"E11", E11ClosedLoop, "Closed-loop execution: response times under gang round-robin"},
		{"E12", E12SpaceVsTime, "Space sharing (Chen/Shin subcube allocation) vs the paper's time sharing"},
		{"E13", E13TreeRestriction, "Ablation: cost of restricting placements to the tree hierarchy"},
		{"E14", E14WorkloadSensitivity, "Sensitivity of the d-tradeoff to workload shape"},
	}
}

// ByID returns the runner with the given ID, or false.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
