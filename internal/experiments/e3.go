package experiments

import (
	"partalloc/internal/adversary"
	"partalloc/internal/core"
	"partalloc/internal/mathx"
	"partalloc/internal/report"
	"partalloc/internal/sim"
	"partalloc/internal/stats"
)

// E3Row is one machine size of the greedy-upper-bound table.
type E3Row struct {
	N            int
	Bound        int     // ⌈½(log N + 1)⌉
	AdvRatio     float64 // ratio on the Theorem 4.3 adversary sequence
	RandMean     float64 // mean ratio over random saturation workloads
	RandMax      float64
	RandTieMean  float64 // ablation: min-load greedy with random tie-breaking
	AdvFinalLoad int
}

// E3GreedyUpper measures greedy A_G against the Theorem 4.1 bound
// ⌈½(log N + 1)⌉·L*: the adversary pushes the measured ratio toward the
// bound (within the factor-2 gap between Theorems 4.1 and 4.3), while
// random workloads sit far below it.
func E3GreedyUpper(cfg Config) Artifact {
	rows := E3Rows(cfg)
	tab := &report.Table{
		Caption: "E3 — Theorem 4.1: greedy A_G load vs bound ⌈½(log N+1)⌉·L*",
		Headers: []string{"N", "bound", "adversarial ratio", "random mean", "random max", "rand-tie mean"},
	}
	for _, r := range rows {
		tie := any(r.RandTieMean)
		if r.RandTieMean == 0 {
			tie = "—" // ablation capped at N ≤ 4096 (O(N) tie census)
		}
		tab.AddRowf(r.N, r.Bound, r.AdvRatio, r.RandMean, r.RandMax, tie)
	}
	plot := &report.Plot{
		Caption: "E3 — greedy competitive ratio vs machine size (log2 N on x)",
		XLabel:  "log2 N", YLabel: "load ratio",
	}
	var adv, bound, rnd []report.SeriesPoint
	for _, r := range rows {
		x := float64(mathx.Log2(r.N))
		adv = append(adv, report.SeriesPoint{X: x, Y: r.AdvRatio})
		bound = append(bound, report.SeriesPoint{X: x, Y: float64(r.Bound)})
		rnd = append(rnd, report.SeriesPoint{X: x, Y: r.RandMean})
	}
	plot.Add("upper bound", 'o', bound)
	plot.Add("adversarial", '*', adv)
	plot.Add("random mean", '.', rnd)
	return Artifact{
		ID:     "E3",
		Title:  "Greedy upper bound (Theorem 4.1)",
		Tables: []*report.Table{tab},
		Plots:  []*report.Plot{plot},
		Notes: []string{
			"the adversarial ratio must stay ≤ the bound (Theorem 4.1) and ≥ ⌈½(log N+1)⌉/2 (Theorem 4.3, bounds tight within factor 2).",
			"rand-tie ablation finding: the leftmost tie-break is NOT just a determinism device — breaking ties uniformly at random fragments the machine (ratios 1.25–1.5 where leftmost holds 1.0 on churning workloads). Leftmost concentrates load like first-fit in bin packing, preserving contiguous low-load regions for future large tasks; Theorem 4.1's worst case is unchanged either way.",
		},
	}
}

// E3Rows computes the raw table.
func E3Rows(cfg Config) []E3Row {
	ns := []int{16, 64, 256, 1024, 4096, 65536}
	if cfg.Quick {
		ns = []int{16, 64, 256}
	}
	seeds := cfg.seeds(10)
	var rows []E3Row
	for _, n := range ns {
		adv := adversary.RunDeterministic(core.NewGreedy(newMachine(n)), -1)
		ratios := make([]float64, 0, seeds)
		tieRatios := make([]float64, 0, seeds)
		for s := 0; s < seeds; s++ {
			seq := genWorkload("saturation", n, int64(s), cfg.Quick)
			res := sim.Run(core.NewGreedy(newMachine(n)), seq, sim.Options{})
			if res.LStar > 0 {
				ratios = append(ratios, res.Ratio)
			}
			// The rand-tie ablation's tie census is O(N) per arrival; cap
			// it at moderate N (the finding is a small-to-mid-N effect).
			if n <= 4096 {
				tie := sim.Run(core.NewGreedyRandomTie(newMachine(n), int64(s)), seq, sim.Options{})
				if tie.LStar > 0 {
					tieRatios = append(tieRatios, tie.Ratio)
				}
			}
		}
		rows = append(rows, E3Row{
			N:            n,
			Bound:        mathx.GreedyBound(n),
			AdvRatio:     float64(adv.MaxLoad) / float64(adv.OptimalLoad),
			RandMean:     stats.Mean(ratios),
			RandMax:      stats.Max(ratios),
			RandTieMean:  stats.Mean(tieRatios),
			AdvFinalLoad: adv.FinalLoad,
		})
	}
	return rows
}
