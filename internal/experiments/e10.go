package experiments

import (
	"fmt"
	"sort"

	"partalloc/internal/core"
	"partalloc/internal/report"
	"partalloc/internal/sim"
	"partalloc/internal/stats"
	"partalloc/internal/workload"
)

// E10Row summarizes the per-task slowdown distribution for one d.
type E10Row struct {
	D      int
	Mean   float64
	P50    float64
	P90    float64
	P99    float64
	Max    float64
	NTasks int
}

// E10Slowdown reads the paper's §2 remark — "the worst slowdown ever
// experienced by a user is proportional to the maximum load of any PE in
// the submachine allocated to it" — as a user-facing metric: for each d it
// reports the distribution over tasks of the worst round-robin slowdown
// each task ever saw. Frequent reallocation compresses the tail.
func E10Slowdown(cfg Config) Artifact {
	n := 256
	if cfg.Quick {
		n = 64
	}
	rows := E10Rows(cfg, n)
	tab := &report.Table{
		Caption: fmt.Sprintf("E10 — per-task worst slowdown distribution by d (N=%d, oversubscribed churn workload, L*≈3)", n),
		Headers: []string{"d", "mean", "p50", "p90", "p99", "max", "tasks"},
	}
	for _, r := range rows {
		d := fmt.Sprintf("%d", r.D)
		if r.D < 0 {
			d = "inf (greedy)"
		}
		tab.AddRowf(d, r.Mean, r.P50, r.P90, r.P99, r.Max, r.NTasks)
	}
	return Artifact{
		ID:     "E10",
		Title:  "Round-robin slowdown distributions (the user-visible face of PE load)",
		Tables: []*report.Table{tab},
		Notes: []string{
			"expected shape: the p99/max columns grow with d — the paper's load bounds translate directly into worst-case user slowdowns.",
		},
	}
}

// E10Rows computes the raw distribution summaries.
func E10Rows(cfg Config, n int) []E10Row {
	seeds := cfg.seeds(5)
	events := 4000
	if cfg.Quick {
		events = 800
	}
	var rows []E10Row
	for _, d := range []int{0, 1, 2, 4, -1} {
		var all []float64
		for s := 0; s < seeds; s++ {
			// Oversubscribed machine: the active size is held near 3·N, so
			// even perfect balancing gives every user slowdown ≈ 3 and the
			// allocator's imbalance shows up directly in the tail.
			seq := workload.Saturation(workload.SaturationConfig{
				N: n, Events: events, Seed: int64(s), Target: 3.0, Churn: 0.3,
				Sizes: workload.MixedSizes,
			})
			a := core.NewPeriodic(newMachine(n), d, core.DecreasingSize)
			res := sim.Run(a, seq, sim.Options{TrackSlowdowns: true})
			for _, sd := range res.Slowdowns {
				all = append(all, float64(sd))
			}
		}
		sort.Float64s(all)
		rows = append(rows, E10Row{
			D:      d,
			Mean:   stats.Mean(all),
			P50:    stats.Quantile(all, 0.5),
			P90:    stats.Quantile(all, 0.9),
			P99:    stats.Quantile(all, 0.99),
			Max:    stats.Max(all),
			NTasks: len(all),
		})
	}
	return rows
}
