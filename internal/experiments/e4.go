package experiments

import (
	"fmt"

	"partalloc/internal/adversary"
	"partalloc/internal/core"
	"partalloc/internal/mathx"
	"partalloc/internal/parallel"
	"partalloc/internal/report"
	"partalloc/internal/sim"
	"partalloc/internal/stats"
)

// E4Row is one (N, d) point of the headline tradeoff figure.
type E4Row struct {
	N          int
	D          int
	Upper      int     // min{d+1, ⌈½(log N+1)⌉}      (Theorem 4.2)
	Lower      int     // ⌈½(min{d, log N}+1)⌉         (Theorem 4.3)
	AdvRatio   float64 // A_M(d) on the matched adversary sequence
	RandMean   float64 // A_M(d) mean ratio on random saturation workloads
	Reallocs   int     // reallocations during the random runs (mean, rounded)
	Migrations float64 // migrations per event across the random runs
}

// E4Tradeoff regenerates the paper's central claim as a figure: the
// maximum load of the d-reallocation algorithm A_M sits between the
// Theorem 4.3 lower bound and the Theorem 4.2 upper bound for every d, the
// curve rising with d until it saturates at the greedy bound
// ⌈½(log N+1)⌉ — a predictable trade of reallocation frequency against
// thread-management load.
func E4Tradeoff(cfg Config) Artifact {
	ns := []int{256, 1024, 4096}
	if cfg.Quick {
		ns = []int{64, 256}
	}
	var tables []*report.Table
	var plots []*report.Plot
	for _, n := range ns {
		rows := E4Rows(cfg, n)
		tab := &report.Table{
			Caption: fmt.Sprintf("E4 — load vs reallocation parameter d (N=%d, greedy bound %d)", n, mathx.GreedyBound(n)),
			Headers: []string{"d", "lower bound", "measured (adversarial)", "measured (random)", "upper bound", "reallocs", "migr/event"},
		}
		plot := &report.Plot{
			Caption: fmt.Sprintf("E4 — the tradeoff at N=%d: load ratio vs d", n),
			XLabel:  "d (reallocation parameter)", YLabel: "load / L*",
		}
		var lower, upper, meas, msRand []report.SeriesPoint
		for _, r := range rows {
			tab.AddRowf(r.D, r.Lower, r.AdvRatio, r.RandMean, r.Upper, r.Reallocs, r.Migrations)
			x := float64(r.D)
			lower = append(lower, report.SeriesPoint{X: x, Y: float64(r.Lower)})
			upper = append(upper, report.SeriesPoint{X: x, Y: float64(r.Upper)})
			meas = append(meas, report.SeriesPoint{X: x, Y: r.AdvRatio})
			msRand = append(msRand, report.SeriesPoint{X: x, Y: r.RandMean})
		}
		plot.Add("upper bound min{d+1,⌈½(logN+1)⌉}", 'o', upper)
		plot.Add("measured, adversarial", '*', meas)
		plot.Add("measured, random", '.', msRand)
		plot.Add("lower bound ⌈½(min{d,logN}+1)⌉", '_', lower)
		tables = append(tables, tab)
		plots = append(plots, plot)
	}
	return Artifact{
		ID:     "E4",
		Title:  "The load vs reallocation-frequency tradeoff (Theorems 4.2 + 4.3)",
		Tables: tables,
		Plots:  plots,
		Notes: []string{
			"expected shape: measured curves rise with d, stay between the bounds, and flatten once d+1 ≥ ⌈½(log N+1)⌉ (A_M degenerates to greedy).",
			"d = 0 is A_C: ratio exactly 1. The d column's last row is d=∞ (never reallocate), shown as the greedy bound value.",
		},
	}
}

// E4Rows computes the tradeoff at machine size n for d = 0..greedyBound+1
// plus d = ∞ (encoded as -1).
func E4Rows(cfg Config, n int) []E4Row {
	g := mathx.GreedyBound(n)
	seeds := cfg.seeds(5)
	var rows []E4Row
	ds := make([]int, 0, g+3)
	for d := 0; d <= g+1; d++ {
		ds = append(ds, d)
	}
	ds = append(ds, -1)
	rowFor := func(d int) E4Row {
		// Adversarial: matched lower-bound instance.
		adv := adversary.RunDeterministic(core.NewPeriodic(newMachine(n), d, core.DecreasingSize), d)
		// Random: saturation workloads.
		ratios := make([]float64, 0, seeds)
		reallocs, migrPerEvent := 0.0, 0.0
		for s := 0; s < seeds; s++ {
			seq := genWorkload("saturation", n, int64(s), cfg.Quick)
			res := sim.Run(core.NewPeriodic(newMachine(n), d, core.DecreasingSize), seq, sim.Options{})
			if res.LStar > 0 {
				ratios = append(ratios, res.Ratio)
			}
			reallocs += float64(res.Realloc.Reallocations)
			if res.Events > 0 {
				migrPerEvent += float64(res.Realloc.Migrations) / float64(res.Events)
			}
		}
		return E4Row{
			N:          n,
			D:          d,
			Upper:      mathx.DetUpperFactor(n, d),
			Lower:      mathx.DetLowerFactor(n, d),
			AdvRatio:   float64(adv.MaxLoad) / float64(adv.OptimalLoad),
			RandMean:   stats.Mean(ratios),
			Reallocs:   int(reallocs/float64(seeds) + 0.5),
			Migrations: migrPerEvent / float64(seeds),
		}
	}
	rows = parallel.Map(len(ds), 0, func(i int) E4Row { return rowFor(ds[i]) })
	return rows
}
