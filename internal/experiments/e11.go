package experiments

import (
	"fmt"

	"partalloc/internal/core"
	"partalloc/internal/report"
	"partalloc/internal/sched"
	"partalloc/internal/workload"
)

// E11Row summarizes one algorithm's closed-loop execution.
type E11Row struct {
	Algorithm    string
	D            int // -2 marks non-d algorithms
	MeanSlowdown float64
	P95Slowdown  float64
	MaxSlowdown  float64
	Makespan     float64
	MaxLoad      int
	Migrations   int64
}

// E11ClosedLoop is the extension experiment that executes the paper's
// motivation end to end: jobs carry work requirements and run under
// gang-scheduled round-robin, so an allocator's load imbalance feeds back
// into residence times. It reports user-visible response-time metrics —
// mean/p95/max slowdown and makespan — for the d sweep plus the
// no-reallocation baselines, alongside the migration cost each point paid.
func E11ClosedLoop(cfg Config) Artifact {
	n := 256
	if cfg.Quick {
		n = 64
	}
	rows := E11Rows(cfg, n)
	tab := &report.Table{
		Caption: fmt.Sprintf("E11 — closed-loop execution (gang round-robin) at N=%d: slowdown vs reallocation", n),
		Headers: []string{"algorithm", "mean slowdown", "p95", "max", "makespan", "max load", "migrations"},
	}
	for _, r := range rows {
		tab.AddRowf(r.Algorithm, r.MeanSlowdown, r.P95Slowdown, r.MaxSlowdown,
			r.Makespan, r.MaxLoad, r.Migrations)
	}
	return Artifact{
		ID:     "E11",
		Title:  "Closed-loop response time (extension: §2's round-robin model executed)",
		Tables: []*report.Table{tab},
		Notes: []string{
			"slowdown 1.0 = the job ran as if it had the submachine to itself.",
			"observed shape: the load-aware algorithms (A_C, A_M, greedy) cluster together on average-case workloads — greedy's worst case needs adversarial sequences (E4/E5) — while the oblivious A_Rand and the two-probe A_2choice pay clearly higher mean and tail slowdowns. Migrations measure what A_C/A_M pay for their guarantee.",
			"closed loop amplifies imbalance: slow jobs stay resident, keeping their PEs hot — the feedback the open-loop experiments (E4, E10) cannot show.",
		},
	}
}

// E11Rows computes the raw table.
func E11Rows(cfg Config, n int) []E11Row {
	seeds := cfg.seeds(5)
	jobs := 600
	if cfg.Quick {
		jobs = 200
	}
	type entry struct {
		name string
		d    int
		mk   func(seed int64) core.Allocator
	}
	entries := []entry{
		{"A_C (d=0)", 0, func(int64) core.Allocator { return core.NewConstant(newMachine(n)) }},
		{"A_M(d=1)", 1, func(int64) core.Allocator { return core.NewPeriodic(newMachine(n), 1, core.DecreasingSize) }},
		{"A_M(d=2)", 2, func(int64) core.Allocator { return core.NewPeriodic(newMachine(n), 2, core.DecreasingSize) }},
		{"A_M-lazy(d=2)", 2, func(int64) core.Allocator { return core.NewLazy(newMachine(n), 2, core.DecreasingSize) }},
		{"A_G (never)", -2, func(int64) core.Allocator { return core.NewGreedy(newMachine(n)) }},
		{"A_2choice", -2, func(s int64) core.Allocator { return core.NewTwoChoice(newMachine(n), s+50) }},
		{"A_Rand", -2, func(s int64) core.Allocator { return core.NewRandom(newMachine(n), s+50) }},
	}
	var rows []E11Row
	for _, e := range entries {
		var mean, p95, max, makespan float64
		var maxLoad int
		var migrations int64
		for s := 0; s < seeds; s++ {
			w := sched.RandomWorkload(sched.WorkloadConfig{
				N: n, Jobs: jobs, Seed: int64(s), Sizes: workload.GeometricSizes,
			})
			res := sched.Run(e.mk(int64(s)), w)
			mean += res.MeanSlowdown
			p95 += res.P95Slowdown
			if res.MaxSlowdown > max {
				max = res.MaxSlowdown
			}
			makespan += res.Makespan
			if res.MaxLoad > maxLoad {
				maxLoad = res.MaxLoad
			}
			migrations += res.Realloc.Migrations
		}
		rows = append(rows, E11Row{
			Algorithm:    e.name,
			D:            e.d,
			MeanSlowdown: mean / float64(seeds),
			P95Slowdown:  p95 / float64(seeds),
			MaxSlowdown:  max,
			Makespan:     makespan / float64(seeds),
			MaxLoad:      maxLoad,
			Migrations:   migrations / int64(seeds),
		})
	}
	return rows
}
