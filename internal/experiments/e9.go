package experiments

import (
	"fmt"

	"partalloc/internal/core"
	"partalloc/internal/report"
	"partalloc/internal/sim"
	"partalloc/internal/task"
	"partalloc/internal/topology"
	"partalloc/internal/tree"
)

// E9Row prices the same reallocation schedule on one physical topology.
type E9Row struct {
	Topology     string
	Diameter     int
	LoadRatio    float64 // identical across topologies by construction
	Migrations   int64
	TrafficHops  int64   // Σ over migrations of per-PE hop distance
	HopsPerMoved float64 // TrafficHops / moved PE-units
}

// E9Topologies demonstrates the paper's claim that the allocation results
// hold for any hierarchically decomposable network: the allocator runs on
// the abstract tree, so the load trajectory (and hence every theorem
// artifact) is byte-identical on tree, hypercube, mesh and butterfly; what
// differs is the physical price of each migration, which this experiment
// reports as routed hop counts under each network's distance metric.
func E9Topologies(cfg Config) Artifact {
	rows, n, d := E9Rows(cfg)
	tab := &report.Table{
		Caption: fmt.Sprintf("E9 — one A_M(d=%d) run priced on five topologies (N=%d, identical placement trace)", d, n),
		Headers: []string{"topology", "diameter", "load ratio", "migrations", "traffic (hops)", "hops per moved PE"},
	}
	for _, r := range rows {
		tab.AddRowf(r.Topology, r.Diameter, r.LoadRatio, r.Migrations, r.TrafficHops, r.HopsPerMoved)
	}
	return Artifact{
		ID:     "E9",
		Title:  "Cross-topology migration pricing",
		Tables: []*report.Table{tab},
		Notes: []string{
			"load ratio is identical by construction — the theorems are topology-independent; the networks differ only in migration cost (hypercube cheapest per PE; the CM-5 fat tree halves the plain tree's levels; tree/butterfly pay their 2·log N root paths).",
		},
	}
}

// E9Rows runs one seeded A_M run per topology and prices its migrations.
func E9Rows(cfg Config) ([]E9Row, int, int) {
	n := 256
	if cfg.Quick {
		n = 64
	}
	const d = 2
	var rows []E9Row
	for _, name := range topology.Names() {
		top, err := topology.New(name, n)
		if err != nil {
			panic(err)
		}
		tm := newMachine(n)
		a := core.NewPeriodic(tm, d, core.DecreasingSize)
		var traffic int64
		a.SetMigrationObserver(func(id task.ID, from, to tree.Node) {
			traffic += topology.MigrationCost(top, tm, from, to)
		})
		seq := genWorkload("saturation", n, 12345, cfg.Quick)
		res := sim.Run(a, seq, sim.Options{})
		hpm := 0.0
		if res.Realloc.MovedPEs > 0 {
			hpm = float64(traffic) / float64(res.Realloc.MovedPEs)
		}
		rows = append(rows, E9Row{
			Topology:     name,
			Diameter:     top.Diameter(),
			LoadRatio:    res.Ratio,
			Migrations:   res.Realloc.Migrations,
			TrafficHops:  traffic,
			HopsPerMoved: hpm,
		})
	}
	return rows, n, d
}
