package experiments

import (
	"math"

	"partalloc/internal/core"
	"partalloc/internal/mathx"
	"partalloc/internal/parallel"
	"partalloc/internal/report"
	"partalloc/internal/sim"
	"partalloc/internal/stats"
	"partalloc/internal/task"
)

// E6Row is one machine size of the randomized-upper-bound table.
type E6Row struct {
	N             int
	Bound         float64 // 3·log N / log log N + 1
	MeanLoad      float64 // mean max load over seeds, saturation-1 workload (L* = 1)
	CI95          float64
	TwoChoiceMean float64 // balanced-allocations baseline (related work [2])
	GreedyLoad    float64 // A_G on the same workload, for reference
	MaxLoad       float64
}

// E6RandUpper measures the oblivious randomized algorithm A_Rand against
// the Theorem 5.1 bound (3·log N/log log N + 1)·L*. The workload is the
// hardest case for oblivious placement: N size-1 tasks all active at once,
// so L* = 1 and the expected maximum load is the balls-into-bins maximum.
func E6RandUpper(cfg Config) Artifact {
	rows := E6Rows(cfg)
	tab := &report.Table{
		Caption: "E6 — Theorem 5.1: A_Rand expected max load vs bound (3·logN/loglogN + 1), L* = 1",
		Headers: []string{"N", "A_Rand mean ±CI95", "A_Rand max", "bound", "2-choice mean", "A_G"},
	}
	for _, r := range rows {
		tab.AddRowf(r.N,
			formatPM(r.MeanLoad, r.CI95),
			r.MaxLoad, r.Bound, r.TwoChoiceMean, r.GreedyLoad)
	}
	plot := &report.Plot{
		Caption: "E6 — randomized load vs machine size",
		XLabel:  "log2 N", YLabel: "max load (L*=1)",
	}
	var mean, bound []report.SeriesPoint
	for _, r := range rows {
		x := float64(mathx.Log2(r.N))
		mean = append(mean, report.SeriesPoint{X: x, Y: r.MeanLoad})
		bound = append(bound, report.SeriesPoint{X: x, Y: r.Bound})
	}
	plot.Add("bound", 'o', bound)
	plot.Add("measured mean", '*', mean)
	return Artifact{
		ID:     "E6",
		Title:  "Randomized upper bound (Theorem 5.1)",
		Tables: []*report.Table{tab},
		Plots:  []*report.Plot{plot},
		Notes: []string{
			"measured means follow the balls-into-bins Θ(log N/log log N) shape, well under the theorem's constant-3 bound.",
			"A_G achieves 1 on this workload (it sees loads; A_Rand is oblivious) — randomization pays for obliviousness, not for beating greedy here.",
			"the 2-choice column is the balanced-allocations baseline (the paper's related work [2]): two random probes drop the excess load to Θ(log log N).",
		},
	}
}

func formatPM(mean, ci float64) string {
	return trimFloat(mean) + " ± " + trimFloat(ci)
}

func trimFloat(x float64) string {
	s := math.Round(x*100) / 100
	return report.FormatFloat(s)
}

// E6Rows computes the raw table.
func E6Rows(cfg Config) []E6Row {
	ns := []int{64, 256, 1024, 4096, 16384}
	if cfg.Quick {
		ns = []int{64, 256, 1024}
	}
	seeds := cfg.seeds(50)
	var rows []E6Row
	for _, n := range ns {
		// N size-1 tasks, all simultaneously active.
		b := task.NewBuilder()
		for i := 0; i < n; i++ {
			b.Arrive(1)
		}
		seq := b.Sequence()
		type cell struct{ one, two float64 }
		cells := parallel.Map(seeds, 0, func(s int) cell {
			res := sim.Run(core.NewRandom(newMachine(n), int64(s)), seq, sim.Options{})
			res2 := sim.Run(core.NewTwoChoice(newMachine(n), int64(s)), seq, sim.Options{})
			return cell{one: float64(res.MaxLoad), two: float64(res2.MaxLoad)}
		})
		loads := make([]float64, 0, seeds)
		two := make([]float64, 0, seeds)
		for _, c := range cells {
			loads = append(loads, c.one)
			two = append(two, c.two)
		}
		greedy := sim.Run(core.NewGreedy(newMachine(n)), seq, sim.Options{})
		logN := float64(mathx.Log2(n))
		rows = append(rows, E6Row{
			N:             n,
			Bound:         3*logN/math.Log2(logN) + 1,
			MeanLoad:      stats.Mean(loads),
			CI95:          stats.CI95(loads),
			MaxLoad:       stats.Max(loads),
			TwoChoiceMean: stats.Mean(two),
			GreedyLoad:    float64(greedy.MaxLoad),
		})
	}
	return rows
}
