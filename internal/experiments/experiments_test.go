package experiments

import (
	"fmt"
	"strings"
	"testing"
)

var quick = Config{Quick: true, Seeds: 3}

func TestFigure1Check(t *testing.T) {
	res := Figure1Raw()
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if len(res.Artifact.Tables) != 2 {
		t.Fatalf("expected 2 tables, got %d", len(res.Artifact.Tables))
	}
}

func TestE2AllRatiosExactlyOne(t *testing.T) {
	for _, r := range E2Rows(quick) {
		if r.MeanRatio != 1 || r.MaxRatio != 1 {
			t.Errorf("N=%d %s: ratio mean %g max %g, want exactly 1",
				r.N, r.Workload, r.MeanRatio, r.MaxRatio)
		}
	}
}

func TestE3WithinBounds(t *testing.T) {
	for _, r := range E3Rows(quick) {
		if r.AdvRatio > float64(r.Bound) {
			t.Errorf("N=%d: adversarial ratio %g exceeds Theorem 4.1 bound %d",
				r.N, r.AdvRatio, r.Bound)
		}
		// Theorem 4.3 with d=∞: forced ratio at least ⌈½(logN+1)⌉ ≥ bound/1
		// — the adversary result itself is checked in internal/adversary;
		// here just require it beats random by a margin at larger N.
		if r.RandMean > r.AdvRatio {
			t.Errorf("N=%d: random mean %g above adversarial %g", r.N, r.RandMean, r.AdvRatio)
		}
		if r.RandMean < 1 || r.RandMax < r.RandMean {
			t.Errorf("N=%d: nonsense random stats %+v", r.N, r)
		}
	}
}

func TestE4TradeoffShape(t *testing.T) {
	rows := E4Rows(quick, 256)
	var prevUpper int
	for i, r := range rows {
		if r.AdvRatio > float64(r.Upper) {
			t.Errorf("d=%d: adversarial ratio %g > upper %d", r.D, r.AdvRatio, r.Upper)
		}
		if r.AdvRatio < float64(r.Lower) {
			t.Errorf("d=%d: adversarial ratio %g < lower %d", r.D, r.AdvRatio, r.Lower)
		}
		if r.RandMean > float64(r.Upper) {
			t.Errorf("d=%d: random mean %g > upper %d", r.D, r.RandMean, r.Upper)
		}
		// Upper bound is non-decreasing in d (with d=∞ last, equal to cap).
		if i > 0 && r.Upper < prevUpper {
			t.Errorf("upper bound decreased at d=%d", r.D)
		}
		prevUpper = r.Upper
	}
	// d=0 must be optimal.
	if rows[0].D != 0 || rows[0].AdvRatio != 1 || rows[0].RandMean != 1 {
		t.Errorf("d=0 row not optimal: %+v", rows[0])
	}
}

func TestE5AllBoundsMet(t *testing.T) {
	for _, r := range E5Rows(quick) {
		if !r.Met {
			t.Errorf("%s N=%d d=%d: forced load %d below bound %d",
				r.Algorithm, r.N, r.D, r.FinalLoad, r.Bound)
		}
	}
}

func TestE6UnderBound(t *testing.T) {
	for _, r := range E6Rows(quick) {
		if r.MeanLoad > r.Bound {
			t.Errorf("N=%d: mean load %g exceeds bound %g", r.N, r.MeanLoad, r.Bound)
		}
		if r.MeanLoad < 1 {
			t.Errorf("N=%d: mean load %g below optimal", r.N, r.MeanLoad)
		}
		if r.GreedyLoad != 1 {
			t.Errorf("N=%d: greedy load %g on saturation-1 workload, want 1", r.N, r.GreedyLoad)
		}
	}
}

func TestE6LoadGrowsWithN(t *testing.T) {
	rows := E6Rows(Config{Quick: true, Seeds: 10})
	if len(rows) < 2 {
		t.Skip("not enough sizes")
	}
	if rows[len(rows)-1].MeanLoad <= rows[0].MeanLoad {
		t.Errorf("balls-into-bins load did not grow: %g (N=%d) vs %g (N=%d)",
			rows[0].MeanLoad, rows[0].N, rows[len(rows)-1].MeanLoad, rows[len(rows)-1].N)
	}
}

func TestE7ForcesLoadAboveOptimal(t *testing.T) {
	// At simulatable N the cube-root bound is < 1 — the theorem promises
	// nothing non-trivial there (a finding recorded in EXPERIMENTS.md), so
	// the load-aware algorithms legitimately hold load 1. The oblivious
	// A_Rand, however, must show the collision mechanism: load above L*.
	for _, r := range E7Rows(quick) {
		if r.MeanLoad < r.ProvedBound {
			t.Errorf("N=%d %s: mean load %g below proved bound %g",
				r.N, r.Algorithm, r.MeanLoad, r.ProvedBound)
		}
		if r.ProvedBound >= 1 {
			t.Errorf("N=%d: proved bound %g ≥ 1; vacuity note in EXPERIMENTS.md is stale",
				r.N, r.ProvedBound)
		}
		if r.LStarMean > 1.2 {
			t.Errorf("N=%d: σ_r L* mean %g, want ≈1", r.N, r.LStarMean)
		}
		if r.Algorithm == "A_Rand" && r.MeanLoad <= r.LStarMean {
			t.Errorf("N=%d A_Rand: σ_r failed to separate load %g from L* %g",
				r.N, r.MeanLoad, r.LStarMean)
		}
	}
}

func TestE8TradeShape(t *testing.T) {
	rows := E8Rows(quick, 256)
	byD := map[int]map[string]E8Row{}
	for _, r := range rows {
		if byD[r.D] == nil {
			byD[r.D] = map[string]E8Row{}
		}
		byD[r.D][r.Variant] = r
	}
	// d=0 eager: ratio 1, traffic positive. d=inf: zero traffic.
	if r := byD[0]["eager"]; r.RatioMean != 1 || r.MovedPEPerUnit <= 0 {
		t.Errorf("d=0 eager: %+v", r)
	}
	if r := byD[-1]["eager"]; r.MovedPEPerUnit != 0 || r.Reallocs != 0 {
		t.Errorf("d=inf eager moved data: %+v", r)
	}
	// Traffic falls from d=1 to d=4 (eager).
	if byD[1]["eager"].MovedPEPerUnit <= byD[4]["eager"].MovedPEPerUnit {
		t.Errorf("traffic did not fall with d: d1=%g d4=%g",
			byD[1]["eager"].MovedPEPerUnit, byD[4]["eager"].MovedPEPerUnit)
	}
	// Lazy never moves more than eager at the same d ≥ 1.
	for _, d := range []int{1, 2, 3, 4} {
		if byD[d]["lazy"].Reallocs > byD[d]["eager"].Reallocs {
			t.Errorf("d=%d: lazy reallocated more (%g) than eager (%g)",
				d, byD[d]["lazy"].Reallocs, byD[d]["eager"].Reallocs)
		}
	}
}

func TestE9IdenticalLoadsDifferentTraffic(t *testing.T) {
	rows, _, _ := E9Rows(quick)
	if len(rows) != 5 {
		t.Fatalf("expected 5 topologies, got %d", len(rows))
	}
	for _, r := range rows[1:] {
		if r.LoadRatio != rows[0].LoadRatio {
			t.Errorf("%s load ratio %g differs from %s %g — placements must be topology-independent",
				r.Topology, r.LoadRatio, rows[0].Topology, rows[0].LoadRatio)
		}
		if r.Migrations != rows[0].Migrations {
			t.Errorf("%s migration count differs", r.Topology)
		}
	}
	// Hop pricing must differ somewhere (tree vs hypercube at least).
	prices := map[string]float64{}
	for _, r := range rows {
		prices[r.Topology] = r.HopsPerMoved
	}
	if prices["tree"] <= prices["hypercube"] {
		t.Errorf("tree hops/PE %g should exceed hypercube %g",
			prices["tree"], prices["hypercube"])
	}
	// The fat tree halves the levels of the binary tree, so it prices
	// migrations strictly cheaper than the plain tree.
	if prices["fattree"] >= prices["tree"] {
		t.Errorf("fattree hops/PE %g should be below tree %g",
			prices["fattree"], prices["tree"])
	}
}

func TestE10TailGrowsWithD(t *testing.T) {
	rows := E10Rows(quick, 64)
	var d0, dInf E10Row
	for _, r := range rows {
		if r.D == 0 {
			d0 = r
		}
		if r.D == -1 {
			dInf = r
		}
		if r.NTasks == 0 {
			t.Fatalf("d=%d: no tasks tracked", r.D)
		}
		if r.P50 > r.P90 || r.P90 > r.P99 || r.P99 > r.Max {
			t.Errorf("d=%d: quantiles disordered %+v", r.D, r)
		}
	}
	if dInf.Max < d0.Max {
		t.Errorf("greedy max slowdown %g below A_C max %g — tail should grow with d",
			dInf.Max, d0.Max)
	}
	if dInf.Mean <= d0.Mean {
		t.Errorf("greedy mean slowdown %g not above A_C mean %g — oversubscribed workload should separate them",
			dInf.Mean, d0.Mean)
	}
}

func TestE11ObliviousnessCosts(t *testing.T) {
	rows := E11Rows(quick, 64)
	byName := map[string]E11Row{}
	for _, r := range rows {
		byName[r.Algorithm] = r
	}
	ac := byName["A_C (d=0)"]
	rnd := byName["A_Rand"]
	two := byName["A_2choice"]
	if ac.MeanSlowdown <= 1 || rnd.MeanSlowdown <= 1 {
		t.Fatalf("degenerate slowdowns: %+v %+v", ac, rnd)
	}
	if rnd.MeanSlowdown <= ac.MeanSlowdown {
		t.Errorf("oblivious A_Rand mean slowdown %g not above A_C %g",
			rnd.MeanSlowdown, ac.MeanSlowdown)
	}
	if two.MeanSlowdown >= rnd.MeanSlowdown {
		t.Errorf("two-choice %g not better than one-choice %g",
			two.MeanSlowdown, rnd.MeanSlowdown)
	}
	if ac.Migrations == 0 {
		t.Error("A_C reported no migrations in closed loop")
	}
	if rnd.Migrations != 0 || byName["A_G (never)"].Migrations != 0 {
		t.Error("no-reallocation algorithms reported migrations")
	}
}

func TestE12SpaceVsTimeShape(t *testing.T) {
	rows := E12Rows(quick, 6)
	byName := map[string]E12Row{}
	for _, r := range rows {
		byName[r.Discipline] = r
	}
	buddy := byName["space/buddy"]
	grayR := byName["space/graycode"]
	exh := byName["space/exhaustive"]
	if !(exh.MeanWait <= grayR.MeanWait && grayR.MeanWait <= buddy.MeanWait) {
		t.Errorf("recognition power did not order waits: buddy %g gray %g exh %g",
			buddy.MeanWait, grayR.MeanWait, exh.MeanWait)
	}
	if buddy.MeanWait <= 0 {
		t.Error("space sharing never queued; stream too light to say anything")
	}
	for _, name := range []string{"time/A_C (d=0)", "time/A_M(d=2)", "time/A_G"} {
		r := byName[name]
		if r.MeanWait != 0 || r.EverQueued != 0 {
			t.Errorf("%s: time sharing must never wait (%+v)", name, r)
		}
		if r.MaxLoad < 2 {
			t.Errorf("%s: max load %d — the no-wait price should be visible", name, r.MaxLoad)
		}
	}
	if byName["time/A_C (d=0)"].MaxLoad > byName["time/A_G"].MaxLoad+1 {
		t.Errorf("A_C max load should not exceed greedy's materially")
	}
}

func TestE13RestrictionIsCheap(t *testing.T) {
	rows := E13Rows(quick)
	byKey := map[string]E13Row{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%d/%s", r.N, r.Strategy)] = r
		if r.MeanRatio < 1 || r.MaxRatio < r.MeanRatio {
			t.Errorf("%d/%s: nonsense ratios %+v", r.N, r.Strategy, r)
		}
	}
	for _, n := range []int{32, 64} {
		b, ok1 := byKey[fmt.Sprintf("%d/buddy", n)]
		e, ok2 := byKey[fmt.Sprintf("%d/exhaustive", n)]
		if !ok1 || !ok2 {
			continue
		}
		// The richer candidate set may only buy a modest improvement; a
		// large gap would mean the paper's restriction is expensive (and
		// would be a finding worth recording — fail so it gets noticed).
		if b.MeanRatio-e.MeanRatio > 0.75 {
			t.Errorf("N=%d: exhaustive %g beats buddy %g by a surprising margin",
				n, e.MeanRatio, b.MeanRatio)
		}
	}
}

func TestE14ShapeSensitivity(t *testing.T) {
	rows := E14Rows(quick, 128)
	if len(rows) != 16 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.D == 0 && (r.RatioMean != 1 || r.RatioMax != 1) {
			t.Errorf("%s d=0: ratio %g/%g, want exactly 1 (Theorem 3.1 is shape-free)",
				r.Shape, r.RatioMean, r.RatioMax)
		}
		if r.RatioMean < 1 || r.RatioMax < r.RatioMean {
			t.Errorf("%s d=%d: nonsense ratios %+v", r.Shape, r.D, r)
		}
		if r.D == -1 && r.Reallocs != 0 {
			t.Errorf("%s d=inf reallocated", r.Shape)
		}
	}
}

func TestAllRunnersRenderAndAreIndexed(t *testing.T) {
	runners := All()
	if len(runners) != 14 {
		t.Fatalf("%d runners", len(runners))
	}
	seen := map[string]bool{}
	for _, r := range runners {
		if seen[r.ID] {
			t.Fatalf("duplicate runner %s", r.ID)
		}
		seen[r.ID] = true
		if _, ok := ByID(r.ID); !ok {
			t.Fatalf("ByID(%s) failed", r.ID)
		}
		art := r.Run(Config{Quick: true, Seeds: 2})
		if art.ID != r.ID {
			t.Errorf("runner %s produced artifact %s", r.ID, art.ID)
		}
		var b strings.Builder
		if err := art.Render(&b); err != nil {
			t.Fatalf("%s render: %v", r.ID, err)
		}
		if !strings.Contains(b.String(), art.Title) {
			t.Errorf("%s render missing title", r.ID)
		}
		if len(art.Tables) == 0 {
			t.Errorf("%s has no tables", r.ID)
		}
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID accepted unknown id")
	}
}
