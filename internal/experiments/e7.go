package experiments

import (
	"partalloc/internal/adversary"
	"partalloc/internal/core"
	"partalloc/internal/parallel"
	"partalloc/internal/report"
	"partalloc/internal/sim"
	"partalloc/internal/stats"
)

// E7Row is one (N, algorithm) cell of the randomized-lower-bound table.
type E7Row struct {
	N            int
	Algorithm    string
	MeanLoad     float64
	CI95         float64
	LStarMean    float64
	TheoremBound float64 // (1/7)(logN/loglogN)^{1/3}, the stated constant
	ProvedBound  float64 // (logN/(240·loglogN))^{1/3}, what Lemma 7 proves
}

// E7RandLowerBound runs the Theorem 5.2 random sequence σ_r against the
// no-reallocation algorithms (greedy, basic, randomized). The sequence's
// optimal load is 1 w.h.p. (Lemma 5) while every on-line algorithm's load
// must exceed the cube-root bound; the measured means show the separation.
func E7RandLowerBound(cfg Config) Artifact {
	rows := E7Rows(cfg)
	tab := &report.Table{
		Caption: "E7 — Theorem 5.2: load forced by σ_r on no-reallocation algorithms",
		Headers: []string{"N", "algorithm", "mean load ±CI95", "mean L*", "stated bound", "proved bound"},
	}
	for _, r := range rows {
		tab.AddRowf(r.N, r.Algorithm, formatPM(r.MeanLoad, r.CI95),
			r.LStarMean, r.TheoremBound, r.ProvedBound)
	}
	return Artifact{
		ID:     "E7",
		Title:  "Randomized lower bound via σ_r (Theorem 5.2)",
		Tables: []*report.Table{tab},
		Notes: []string{
			"substitution: σ_r's task sizes logⁱN are rounded to powers of two (base B = 2^⌈lg lg N⌉); the model requires power-of-two sizes (see DESIGN.md).",
			"finding: the cube-root bound is < 1 for every simulatable N (e.g. ≈0.27 at N=2^20) and σ_r has only ⌊logN/(2 loglogN)⌋ ≈ 2 phases there, so load-aware algorithms (A_G, A_B) dodge every survivor and hold load 1 — Theorem 5.2 is consistent but vacuous below astronomical N.",
			"the oblivious A_Rand does exhibit the collision mechanism the proof exploits: its load exceeds L* = 1 at every N.",
		},
	}
}

// E7Rows computes the raw table.
func E7Rows(cfg Config) []E7Row {
	ns := []int{1 << 12, 1 << 16, 1 << 20}
	if cfg.Quick {
		ns = []int{1 << 10, 1 << 14}
	}
	seeds := cfg.seeds(20)
	algs := []struct {
		name string
		mk   func(n int, seed int64) core.Allocator
	}{
		{"A_G", func(n int, _ int64) core.Allocator { return core.NewGreedy(newMachine(n)) }},
		{"A_B", func(n int, _ int64) core.Allocator { return core.NewBasic(newMachine(n)) }},
		{"A_Rand", func(n int, seed int64) core.Allocator { return core.NewRandom(newMachine(n), seed+7777) }},
	}
	var rows []E7Row
	for _, n := range ns {
		for _, alg := range algs {
			type cell struct {
				load, lstar, theorem, proved float64
			}
			cells := parallel.Map(seeds, 0, func(s int) cell {
				seq, st := adversary.SigmaR(adversary.SigmaRConfig{N: n, Seed: int64(s)})
				res := sim.Run(alg.mk(n, int64(s)), seq, sim.Options{})
				return cell{
					load: float64(res.MaxLoad), lstar: float64(res.LStar),
					theorem: st.TheoremBound, proved: st.ProvedBound,
				}
			})
			loads := make([]float64, 0, seeds)
			lstars := make([]float64, 0, seeds)
			var theorem, proved float64
			for _, c := range cells {
				loads = append(loads, c.load)
				lstars = append(lstars, c.lstar)
				theorem, proved = c.theorem, c.proved
			}
			rows = append(rows, E7Row{
				N:            n,
				Algorithm:    alg.name,
				MeanLoad:     stats.Mean(loads),
				CI95:         stats.CI95(loads),
				LStarMean:    stats.Mean(lstars),
				TheoremBound: theorem,
				ProvedBound:  proved,
			})
		}
	}
	return rows
}
