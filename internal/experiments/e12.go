package experiments

import (
	"fmt"
	"sort"

	"partalloc/internal/core"
	"partalloc/internal/report"
	"partalloc/internal/sim"
	"partalloc/internal/stats"
	"partalloc/internal/subcube"
	"partalloc/internal/task"
)

// E12Row is one discipline's outcome on the common job stream.
type E12Row struct {
	Discipline  string
	MeanWait    float64
	P95Wait     float64
	EverQueued  float64 // fraction of jobs that waited
	Utilization float64
	MaxLoad     int // time-shared only; 1 for space-shared by definition
}

// E12SpaceVsTime contrasts the paper's time-sharing model with the
// exclusive space-sharing world of its related work (Chen/Shin subcube
// allocation): the same Poisson job stream is run (a) space-shared on a
// hypercube under buddy, Gray-code and exhaustive subcube recognition —
// jobs queue when fragmentation blocks them — and (b) time-shared under
// the paper's allocators — no job ever waits, and the cost surfaces as PE
// load (threads per PE) instead. This is the paper's core motivation made
// quantitative: real-time service is bought by letting loads exceed one.
func E12SpaceVsTime(cfg Config) Artifact {
	dim := 8
	if cfg.Quick {
		dim = 6
	}
	rows := E12Rows(cfg, dim)
	tab := &report.Table{
		Caption: fmt.Sprintf("E12 — space sharing vs time sharing on a %d-cube (N=%d), identical Poisson job streams", dim, 1<<dim),
		Headers: []string{"discipline", "mean wait", "p95 wait", "frac queued", "utilization", "max PE load"},
	}
	for _, r := range rows {
		tab.AddRowf(r.Discipline, r.MeanWait, r.P95Wait, r.EverQueued, r.Utilization, r.MaxLoad)
	}
	return Artifact{
		ID:     "E12",
		Title:  "Space sharing (related work) vs time sharing (this paper)",
		Tables: []*report.Table{tab},
		Notes: []string{
			"space-shared rows: better subcube recognition (buddy → graycode → exhaustive) trims waiting, but fragmentation-induced queueing never disappears.",
			"time-shared rows: wait is identically zero — the paper's real-time-service guarantee — and the price appears in the max-PE-load column, which is exactly what Theorems 3.1–4.3 bound.",
			"utilization for time-shared rows is the mean offered load fraction (can exceed space-shared utilization because nothing is ever idle-while-queued).",
		},
	}
}

// E12Rows computes the raw table for a dim-cube.
func E12Rows(cfg Config, dim int) []E12Row {
	n := 1 << dim
	seeds := cfg.seeds(5)
	jobs := 500
	if cfg.Quick {
		jobs = 200
	}
	// Arrival rate chosen to offer ~80% of the machine: rate·E[size]·E[dur]
	// ≈ 0.8·N with E[size]≈2, E[dur]=8.
	rate := 0.8 * float64(n) / (2 * 8)

	var rows []E12Row
	// Space-shared disciplines.
	for _, st := range subcube.Strategies() {
		var waits, p95s, queued, utils []float64
		for s := 0; s < seeds; s++ {
			stream := subcube.RandomJobs(dim, jobs, rate, 8, int64(s))
			res := subcube.RunQueue(dim, st, stream)
			waits = append(waits, res.MeanWait)
			p95s = append(p95s, res.P95Wait)
			queued = append(queued, float64(res.EverQueued)/float64(jobs))
			utils = append(utils, res.Utilization)
		}
		rows = append(rows, E12Row{
			Discipline:  "space/" + st.String(),
			MeanWait:    stats.Mean(waits),
			P95Wait:     stats.Mean(p95s),
			EverQueued:  stats.Mean(queued),
			Utilization: stats.Mean(utils),
			MaxLoad:     1,
		})
	}
	// Time-shared disciplines: the same streams as open-loop sequences
	// (every job runs immediately for its duration; loads may exceed 1).
	for _, entry := range []struct {
		name string
		mk   func() core.Allocator
	}{
		{"time/A_C (d=0)", func() core.Allocator { return core.NewConstant(newMachine(n)) }},
		{"time/A_M(d=2)", func() core.Allocator { return core.NewPeriodic(newMachine(n), 2, core.DecreasingSize) }},
		{"time/A_G", func() core.Allocator { return core.NewGreedy(newMachine(n)) }},
	} {
		var utils []float64
		maxLoad := 0
		for s := 0; s < seeds; s++ {
			stream := subcube.RandomJobs(dim, jobs, rate, 8, int64(s))
			seq, offered := jobsToSequence(stream)
			res := sim.Run(entry.mk(), seq, sim.Options{})
			if res.MaxLoad > maxLoad {
				maxLoad = res.MaxLoad
			}
			utils = append(utils, offered/float64(n))
		}
		rows = append(rows, E12Row{
			Discipline:  entry.name,
			MeanWait:    0,
			P95Wait:     0,
			EverQueued:  0,
			Utilization: stats.Mean(utils),
			MaxLoad:     maxLoad,
		})
	}
	return rows
}

// jobsToSequence converts a space-sharing job stream into the paper's
// open-loop event sequence (every job is serviced immediately) and returns
// the time-averaged offered PE load alongside.
func jobsToSequence(jobs []subcube.Job) (task.Sequence, float64) {
	type ev struct {
		at     float64
		arrive bool
		idx    int
	}
	evs := make([]ev, 0, 2*len(jobs))
	for i, j := range jobs {
		evs = append(evs, ev{at: j.Arrival, arrive: true, idx: i})
		evs = append(evs, ev{at: j.Arrival + j.Duration, arrive: false, idx: i})
	}
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].at != evs[b].at {
			return evs[a].at < evs[b].at
		}
		// Departures before arrivals at ties frees capacity first.
		return !evs[a].arrive && evs[b].arrive
	})
	b := task.NewBuilder()
	ids := make([]task.ID, len(jobs))
	var peTime float64
	var span float64
	for _, e := range evs {
		b.At(e.at)
		if e.arrive {
			ids[e.idx] = b.Arrive(jobs[e.idx].Size)
		} else {
			b.Depart(ids[e.idx])
		}
		if e.at > span {
			span = e.at
		}
	}
	for _, j := range jobs {
		peTime += float64(j.Size) * j.Duration
	}
	offered := 0.0
	if span > 0 {
		offered = peTime / span
	}
	return b.Sequence(), offered
}
