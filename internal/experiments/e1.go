package experiments

import (
	"fmt"

	"partalloc/internal/core"
	"partalloc/internal/report"
	"partalloc/internal/sim"
	"partalloc/internal/task"
)

// Figure1Result carries the raw outcome of the Figure 1 replay alongside
// the rendered artifact.
type Figure1Result struct {
	Artifact Artifact
	// GreedyLoad is A_G's maximum load on σ* (the paper shows 2).
	GreedyLoad int
	// LazyLoad is the 1-reallocation load (the paper's §2 claim: 1).
	LazyLoad int
	// ConstantLoad is A_C's load (Theorem 3.1: equals L* = 1).
	ConstantLoad int
	// OptimalLoad is L*(σ*) = 1.
	OptimalLoad int
}

// Figure1 replays the paper's worked example σ* (Figure 1) on a 4-PE
// machine: the greedy algorithm incurs load 2, a 1-reallocation algorithm
// achieves 1, and the constantly-reallocating A_C also achieves 1.
func Figure1() Artifact {
	return Figure1Raw().Artifact
}

// Figure1Raw is Figure1 with the raw numbers exposed for tests.
func Figure1Raw() Figure1Result {
	seq := task.Figure1Sequence()
	lstar := seq.OptimalLoad(4)

	runs := []struct {
		name  string
		alloc core.Allocator
	}{
		{"A_G (greedy, no realloc)", core.NewGreedy(newMachine(4))},
		{"A_M-lazy(d=1) (one realloc)", core.NewLazy(newMachine(4), 1, core.DecreasingSize)},
		{"A_C (realloc every arrival)", core.NewConstant(newMachine(4))},
	}

	tab := &report.Table{
		Caption: "E1 — Figure 1 replay: σ* = t1..t4 size-1 arrive; t2,t4 depart; t5 size-2 arrives (N=4, L*=1)",
		Headers: []string{"algorithm", "max load", "final load", "ratio", "paper says"},
	}
	detail := &report.Table{
		Caption: "E1 — per-event max load on σ*",
		Headers: []string{"event", "A_G", "A_M-lazy(d=1)", "A_C"},
	}

	var series [][]int
	res := Figure1Result{OptimalLoad: lstar}
	for i, r := range runs {
		out := sim.Run(r.alloc, seq, sim.Options{RecordSeries: true})
		paper := ""
		switch i {
		case 0:
			res.GreedyLoad = out.MaxLoad
			paper = "2 (Figure 1)"
		case 1:
			res.LazyLoad = out.MaxLoad
			paper = "1 (§2)"
		case 2:
			res.ConstantLoad = out.MaxLoad
			paper = "L* = 1 (Thm 3.1)"
		}
		tab.AddRowf(r.name, out.MaxLoad, out.FinalLoad, out.Ratio, paper)
		col := make([]int, len(out.Series.Samples))
		for j, s := range out.Series.Samples {
			col[j] = s.MaxLoad
		}
		series = append(series, col)
	}
	events := []string{"t1+", "t2+", "t3+", "t4+", "t2-", "t4-", "t5+"}
	for j, ev := range events {
		detail.AddRowf(ev, series[0][j], series[1][j], series[2][j])
	}

	res.Artifact = Artifact{
		ID:     "E1",
		Title:  "Figure 1 replay",
		Tables: []*report.Table{tab, detail},
		Notes: []string{
			"eager A_M(d=1) spends its reallocation at t4 and incurs load 2 (within Theorem 4.2's bound (d+1)L* = 2); the paper's §2 claim of load 1 is realized by holding the budget until t5 (A_M-lazy).",
		},
	}
	return res
}

// assertFigure1 is used by cmd/experiments to fail loudly if the canonical
// example ever regresses.
func (r Figure1Result) Check() error {
	if r.GreedyLoad != 2 {
		return fmt.Errorf("E1: greedy load %d, want 2", r.GreedyLoad)
	}
	if r.LazyLoad != 1 {
		return fmt.Errorf("E1: 1-reallocation load %d, want 1", r.LazyLoad)
	}
	if r.ConstantLoad != 1 || r.OptimalLoad != 1 {
		return fmt.Errorf("E1: A_C load %d / L* %d, want 1/1", r.ConstantLoad, r.OptimalLoad)
	}
	return nil
}
