package experiments

import (
	"fmt"

	"partalloc/internal/core"
	"partalloc/internal/report"
	"partalloc/internal/sim"
	"partalloc/internal/stats"
	"partalloc/internal/task"
	"partalloc/internal/workload"
)

// E14Row is one (workload shape, d) cell.
type E14Row struct {
	Shape     string
	D         int
	RatioMean float64
	RatioMax  float64
	Reallocs  float64
}

// E14WorkloadSensitivity asks how robust the d-tradeoff is to workload
// shape: the theorems are worst-case, but a practitioner picks d for the
// traffic they actually have. The experiment crosses four size/duration
// profiles — geometric sizes with exponential service, uniform sizes,
// heavy-tailed Pareto service (long-lived jobs pin fragmentation in
// place), and the mixed profile with occasional machine-sized jobs —
// against d ∈ {0, 1, 2, ∞} and reports achieved ratios.
func E14WorkloadSensitivity(cfg Config) Artifact {
	n := 512
	if cfg.Quick {
		n = 128
	}
	rows := E14Rows(cfg, n)
	tab := &report.Table{
		Caption: fmt.Sprintf("E14 — tradeoff sensitivity to workload shape (N=%d)", n),
		Headers: []string{"workload shape", "d", "mean ratio", "max ratio", "reallocs/run"},
	}
	for _, r := range rows {
		d := fmt.Sprintf("%d", r.D)
		if r.D < 0 {
			d = "inf"
		}
		tab.AddRowf(r.Shape, d, r.RatioMean, r.RatioMax, r.Reallocs)
	}
	return Artifact{
		ID:     "E14",
		Title:  "Workload-shape sensitivity of the d-tradeoff",
		Tables: []*report.Table{tab},
		Notes: []string{
			"d = 0 holds ratio 1.0 on every shape (Theorem 3.1 is shape-free).",
			"heavy-tailed (Pareto) service hurts the no-reallocation rows most: long-lived tasks freeze fragmentation that only reallocation can undo — the workload regime where paying for d is most worthwhile.",
		},
	}
}

// E14Rows computes the raw table.
func E14Rows(cfg Config, n int) []E14Row {
	seeds := cfg.seeds(5)
	arrivals := 3000
	if cfg.Quick {
		arrivals = 600
	}
	shapes := []struct {
		name string
		gen  func(seed int64) workloadSeq
	}{
		{"geometric/exp", func(seed int64) workloadSeq {
			return workload.Poisson(workload.Config{
				N: n, Arrivals: arrivals, Seed: seed,
				Sizes: workload.GeometricSizes, Durations: workload.ExpDurations,
				ArrivalRate: float64(n) / 16, MeanDuration: 10,
			})
		}},
		{"uniform/exp", func(seed int64) workloadSeq {
			return workload.Poisson(workload.Config{
				N: n, Arrivals: arrivals, Seed: seed,
				Sizes: workload.UniformSizes, Durations: workload.ExpDurations,
				ArrivalRate: float64(n) / 64, MeanDuration: 10,
			})
		}},
		{"geometric/pareto", func(seed int64) workloadSeq {
			return workload.Poisson(workload.Config{
				N: n, Arrivals: arrivals, Seed: seed,
				Sizes: workload.GeometricSizes, Durations: workload.ParetoDurations,
				ArrivalRate: float64(n) / 16, MeanDuration: 10,
			})
		}},
		{"mixed/pareto", func(seed int64) workloadSeq {
			return workload.Poisson(workload.Config{
				N: n, Arrivals: arrivals, Seed: seed,
				Sizes: workload.MixedSizes, Durations: workload.ParetoDurations,
				ArrivalRate: float64(n) / 32, MeanDuration: 10,
			})
		}},
	}
	var rows []E14Row
	for _, shape := range shapes {
		for _, d := range []int{0, 1, 2, -1} {
			var ratios []float64
			var reallocs float64
			for s := 0; s < seeds; s++ {
				seq := shape.gen(int64(s))
				var a core.Allocator
				if d < 0 {
					a = core.NewGreedy(newMachine(n))
				} else {
					a = core.NewPeriodic(newMachine(n), d, core.DecreasingSize)
				}
				res := sim.Run(a, seq, sim.Options{})
				if res.LStar > 0 {
					ratios = append(ratios, res.Ratio)
				}
				reallocs += float64(res.Realloc.Reallocations)
			}
			rows = append(rows, E14Row{
				Shape:     shape.name,
				D:         d,
				RatioMean: stats.Mean(ratios),
				RatioMax:  stats.Max(ratios),
				Reallocs:  reallocs / float64(seeds),
			})
		}
	}
	return rows
}

// workloadSeq keeps the shape-closure signatures readable.
type workloadSeq = task.Sequence
