package experiments

import (
	"partalloc/internal/core"
	"partalloc/internal/report"
	"partalloc/internal/sim"
	"partalloc/internal/stats"
	"partalloc/internal/task"
	"partalloc/internal/workload"
)

// E2Row is one cell of the Theorem 3.1 table.
type E2Row struct {
	N         int
	Workload  string
	Seeds     int
	MeanRatio float64
	MaxRatio  float64
}

// E2Optimal0Realloc verifies Theorem 3.1 empirically: the constantly
// reallocating algorithm A_C achieves exactly the optimal load L* on every
// sequence — its competitive ratio is identically 1 across machine sizes,
// workload shapes and seeds.
func E2Optimal0Realloc(cfg Config) Artifact {
	rows := E2Rows(cfg)
	tab := &report.Table{
		Caption: "E2 — Theorem 3.1: A_C (0-reallocation) achieves the optimal load (ratio must be exactly 1)",
		Headers: []string{"N", "workload", "seeds", "mean ratio", "max ratio"},
	}
	for _, r := range rows {
		tab.AddRowf(r.N, r.Workload, r.Seeds, r.MeanRatio, r.MaxRatio)
	}
	return Artifact{
		ID:     "E2",
		Title:  "A_C optimality (Theorem 3.1)",
		Tables: []*report.Table{tab},
		Notes:  []string{"any value other than 1.000 anywhere in this table is a bug."},
	}
}

// E2Rows computes the raw table.
func E2Rows(cfg Config) []E2Row {
	ns := []int{4, 16, 64, 256, 1024}
	if cfg.Quick {
		ns = []int{4, 32, 128}
	}
	seeds := cfg.seeds(20)
	var rows []E2Row
	for _, n := range ns {
		for _, wl := range []string{"poisson", "saturation", "sessions"} {
			ratios := make([]float64, 0, seeds)
			for s := 0; s < seeds; s++ {
				seq := genWorkload(wl, n, int64(s), cfg.Quick)
				res := sim.Run(core.NewConstant(newMachine(n)), seq, sim.Options{})
				if res.LStar > 0 {
					ratios = append(ratios, res.Ratio)
				}
			}
			rows = append(rows, E2Row{
				N:         n,
				Workload:  wl,
				Seeds:     seeds,
				MeanRatio: stats.Mean(ratios),
				MaxRatio:  stats.Max(ratios),
			})
		}
	}
	return rows
}

// genWorkload builds the named workload for machine size n.
func genWorkload(kind string, n int, seed int64, quick bool) task.Sequence {
	events := 2000
	arrivals := 800
	sessions := 120
	if quick {
		events, arrivals, sessions = 400, 200, 40
	}
	switch kind {
	case "poisson":
		return workload.Poisson(workload.Config{
			N: n, Arrivals: arrivals, Seed: seed,
			Sizes: workload.GeometricSizes, Durations: workload.ExpDurations,
			ArrivalRate: 2, MeanDuration: 15,
		})
	case "poisson-pareto":
		return workload.Poisson(workload.Config{
			N: n, Arrivals: arrivals, Seed: seed,
			Sizes: workload.MixedSizes, Durations: workload.ParetoDurations,
			ArrivalRate: 2, MeanDuration: 15,
		})
	case "saturation":
		return workload.Saturation(workload.SaturationConfig{
			N: n, Events: events, Seed: seed, Churn: 0.25, Target: 0.95,
			Sizes: workload.UniformSizes,
		})
	case "sessions":
		return workload.Sessions(workload.SessionConfig{N: n, Sessions: sessions, Seed: seed})
	}
	panic("experiments: unknown workload " + kind)
}
