package experiments

import (
	"fmt"

	"partalloc/internal/core"
	"partalloc/internal/mathx"
	"partalloc/internal/report"
	"partalloc/internal/sim"
	"partalloc/internal/stats"
	"partalloc/internal/workload"
)

// E8Row is one d of the cost-of-reallocation table.
type E8Row struct {
	D              int
	Variant        string // "eager" (A_M) or "lazy"
	RatioMean      float64
	Reallocs       float64 // per run
	MigrPerEvent   float64
	MovedPEPerUnit float64 // PE-units moved per arrived PE-unit of work
}

// E8ReallocCost quantifies both sides of the paper's trade on a realistic
// multiprogrammed workload: as d grows, reallocation traffic (migrations,
// PE-units of checkpoint state moved) falls off while the achieved load
// ratio climbs toward the greedy bound. The lazy variant gets the same
// load guarantee with a fraction of the traffic.
func E8ReallocCost(cfg Config) Artifact {
	n := 1024
	if cfg.Quick {
		n = 256
	}
	rows := E8Rows(cfg, n)
	tab := &report.Table{
		Caption: fmt.Sprintf("E8 — the trade at N=%d (near-saturation churn workload): load vs reallocation traffic", n),
		Headers: []string{"d", "variant", "load ratio", "reallocs/run", "migr/event", "movedPE/arrivedPE"},
	}
	for _, r := range rows {
		d := fmt.Sprintf("%d", r.D)
		if r.D < 0 {
			d = "inf"
		}
		tab.AddRowf(d, r.Variant, r.RatioMean, r.Reallocs, r.MigrPerEvent, r.MovedPEPerUnit)
	}
	loadPlot := &report.Plot{
		Caption: fmt.Sprintf("E8 — load ratio (rising) and migration traffic (falling) vs d, N=%d, eager A_M", n),
		XLabel:  "d", YLabel: "ratio / traffic",
	}
	var ratio, traffic []report.SeriesPoint
	for _, r := range rows {
		if r.Variant != "eager" || r.D < 0 {
			continue
		}
		ratio = append(ratio, report.SeriesPoint{X: float64(r.D), Y: r.RatioMean})
		traffic = append(traffic, report.SeriesPoint{X: float64(r.D), Y: r.MovedPEPerUnit})
	}
	loadPlot.Add("load ratio", '*', ratio)
	loadPlot.Add("movedPE per arrived PE", 'o', traffic)
	return Artifact{
		ID:     "E8",
		Title:  "Cost of reallocation: the trade itself",
		Tables: []*report.Table{tab},
		Plots:  []*report.Plot{loadPlot},
		Notes: []string{
			"expected shape: traffic ≈ proportional to 1/d (each reallocation amortized over d·N arrived work), load ratio growing with d and capped at the greedy bound.",
			"lazy reallocation dominates eager: same or better load at strictly less traffic on this workload.",
		},
	}
}

// E8Rows computes the raw table for machine size n.
func E8Rows(cfg Config, n int) []E8Row {
	seeds := cfg.seeds(5)
	g := mathx.GreedyBound(n)
	var rows []E8Row
	ds := []int{0, 1, 2, 3, 4}
	for d := 5; d < g; d += 2 {
		ds = append(ds, d)
	}
	ds = append(ds, g, -1)
	for _, d := range ds {
		for _, variant := range []string{"eager", "lazy"} {
			var ratios []float64
			var reallocs, migrPerEvent, movedPerUnit float64
			events := 4000
			if cfg.Quick {
				events = 800
			}
			for s := 0; s < seeds; s++ {
				// Oversubscribed (active ≈ 2·N) with churn: fragmentation
				// pressure is continuous, so the d-knob moves both sides of
				// the trade.
				seq := workload.Saturation(workload.SaturationConfig{
					N: n, Events: events, Seed: int64(s), Target: 2.0, Churn: 0.3,
					Sizes: workload.MixedSizes,
				})
				var a core.Allocator
				if variant == "eager" {
					a = core.NewPeriodic(newMachine(n), d, core.DecreasingSize)
				} else {
					a = core.NewLazy(newMachine(n), d, core.DecreasingSize)
				}
				res := sim.Run(a, seq, sim.Options{})
				if res.LStar > 0 {
					ratios = append(ratios, res.Ratio)
				}
				reallocs += float64(res.Realloc.Reallocations)
				if res.Events > 0 {
					migrPerEvent += float64(res.Realloc.Migrations) / float64(res.Events)
				}
				if tot := seq.TotalArrivalSize(); tot > 0 {
					movedPerUnit += float64(res.Realloc.MovedPEs) / float64(tot)
				}
			}
			rows = append(rows, E8Row{
				D:              d,
				Variant:        variant,
				RatioMean:      stats.Mean(ratios),
				Reallocs:       reallocs / float64(seeds),
				MigrPerEvent:   migrPerEvent / float64(seeds),
				MovedPEPerUnit: movedPerUnit / float64(seeds),
			})
		}
	}
	return rows
}
