package experiments

import (
	"fmt"

	"partalloc/internal/adversary"
	"partalloc/internal/core"
	"partalloc/internal/report"
)

// E5Row records the adversary's effect on one algorithm.
type E5Row struct {
	Algorithm string
	N         int
	D         int // the d the adversary assumed (-1 = ∞)
	FinalLoad int
	Bound     int
	Met       bool
}

// E5DetLowerBound runs the Theorem 4.3 adversary against every
// deterministic algorithm in the suite and reports the forced load next to
// the theorem's bound ⌈½(min{d, log N}+1)⌉ — every row must have
// FinalLoad ≥ Bound (L* = 1 by construction).
func E5DetLowerBound(cfg Config) Artifact {
	rows := E5Rows(cfg)
	tab := &report.Table{
		Caption: "E5 — Theorem 4.3: adversary-forced load vs the lower bound (L* = 1)",
		Headers: []string{"algorithm", "N", "d", "forced load", "lower bound", "met?"},
	}
	for _, r := range rows {
		d := fmt.Sprintf("%d", r.D)
		if r.D < 0 {
			d = "inf"
		}
		tab.AddRowf(r.Algorithm, r.N, d, r.FinalLoad, r.Bound, fmt.Sprintf("%v", r.Met))
	}
	return Artifact{
		ID:     "E5",
		Title:  "Deterministic lower bound achieved (Theorem 4.3)",
		Tables: []*report.Table{tab},
		Notes: []string{
			"\"met?\" false anywhere would contradict Theorem 4.3 (or reveal an implementation bug in the adversary).",
		},
	}
}

// E5Rows computes the raw table.
func E5Rows(cfg Config) []E5Row {
	ns := []int{64, 1024}
	if cfg.Quick {
		ns = []int{64, 256}
	}
	var rows []E5Row
	for _, n := range ns {
		type entry struct {
			name string
			mk   func() core.Allocator
			d    int
		}
		entries := []entry{
			{"A_G", func() core.Allocator { return core.NewGreedy(newMachine(n)) }, -1},
			{"A_B", func() core.Allocator { return core.NewBasic(newMachine(n)) }, -1},
		}
		for _, d := range []int{2, 3, 4} {
			d := d
			entries = append(entries,
				entry{fmt.Sprintf("A_M(d=%d)", d), func() core.Allocator {
					return core.NewPeriodic(newMachine(n), d, core.DecreasingSize)
				}, d},
				entry{fmt.Sprintf("A_M-lazy(d=%d)", d), func() core.Allocator {
					return core.NewLazy(newMachine(n), d, core.DecreasingSize)
				}, d},
			)
		}
		for _, e := range entries {
			res := adversary.RunDeterministic(e.mk(), e.d)
			rows = append(rows, E5Row{
				Algorithm: e.name,
				N:         n,
				D:         e.d,
				FinalLoad: res.FinalLoad,
				Bound:     res.LowerBound,
				Met:       res.FinalLoad >= res.LowerBound,
			})
		}
	}
	return rows
}
