package adversary

import (
	"testing"

	"partalloc/internal/core"
	"partalloc/internal/mathx"
	"partalloc/internal/task"
	"partalloc/internal/tree"
)

// Theorem 4.3: the adversary forces final load ≥ ⌈½(min{d,logN}+1)⌉ on
// every deterministic algorithm that cannot reallocate mid-sequence.
// The no-reallocation algorithms (A_G, A_B) correspond to d = ∞.
func TestDeterministicAdversaryForcesBound(t *testing.T) {
	for _, n := range []int{16, 64, 256, 1024} {
		m := tree.MustNew(n)
		for _, f := range []core.Factory{core.GreedyFactory(), core.BasicFactory()} {
			res := RunDeterministic(f.New(m), -1)
			if res.OptimalLoad != 1 {
				t.Fatalf("N=%d %s: adversary sequence has L* = %d, want 1",
					n, f.Name, res.OptimalLoad)
			}
			if res.FinalLoad < res.LowerBound {
				t.Errorf("N=%d %s: final load %d < theorem bound %d",
					n, f.Name, res.FinalLoad, res.LowerBound)
			}
			if res.MaxLoad < res.FinalLoad {
				t.Errorf("N=%d %s: max load %d < final load %d",
					n, f.Name, res.MaxLoad, res.FinalLoad)
			}
			if err := res.Sequence.Validate(n); err != nil {
				t.Fatalf("N=%d %s: invalid adversary sequence: %v", n, f.Name, err)
			}
		}
	}
}

// Against d-reallocation algorithms the adversary only runs p = d phases,
// keeping total arrivals ≤ d·N so no reallocation can trigger; the forced
// load is ⌈½(d+1)⌉.
func TestDeterministicAdversaryAgainstPeriodic(t *testing.T) {
	n := 1024
	m := tree.MustNew(n)
	for _, d := range []int{1, 2, 3, 4, 5} {
		a := core.NewPeriodic(m, d, core.DecreasingSize)
		res := RunDeterministic(a, d)
		if res.Phases != mathx.Min(d, 10) {
			t.Fatalf("d=%d: phases = %d", d, res.Phases)
		}
		if res.FinalLoad < res.LowerBound {
			t.Errorf("d=%d: final load %d < bound %d", d, res.FinalLoad, res.LowerBound)
		}
		// The construction keeps total arrivals ≤ d·N so the algorithm
		// (which may reallocate once the accumulated size *reaches* d·N)
		// cannot reallocate before the final arrival. For d ≥ 2 the total
		// is strictly below d·N and no reallocation happens at all; for
		// d = 1, phase 0 alone totals exactly N = d·N, so eager A_M is
		// entitled to one reallocation at the very last arrival — which
		// cannot reduce the (trivial) d=1 bound of 1.
		if a.UsesGreedy() {
			continue
		}
		r := a.ReallocStats().Reallocations
		allowed := 0
		if d == 1 {
			allowed = 1
		}
		if r > allowed {
			t.Errorf("d=%d: algorithm reallocated %d times mid-adversary (allowed %d)", d, r, allowed)
		}
	}
}

// The adversarial sequence's total arrival size never exceeds p·N.
func TestDeterministicAdversaryArrivalBudget(t *testing.T) {
	for _, n := range []int{16, 128} {
		m := tree.MustNew(n)
		for _, d := range []int{1, 2, 3, -1} {
			res := RunDeterministic(core.NewGreedy(m), d)
			budget := int64(res.Phases) * int64(n)
			if got := res.Sequence.TotalArrivalSize(); got > budget {
				t.Errorf("N=%d d=%d: total arrivals %d > p·N = %d", n, d, got, budget)
			}
		}
	}
}

// The adversary's guarantee is tight-ish for greedy: on N PEs greedy's
// load also satisfies the Theorem 4.1 upper bound on this sequence.
func TestAdversaryVersusGreedyUpper(t *testing.T) {
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		m := tree.MustNew(n)
		res := RunDeterministic(core.NewGreedy(m), -1)
		upper := mathx.GreedyBound(n) * res.OptimalLoad
		if res.MaxLoad > upper {
			t.Errorf("N=%d: adversary drove greedy to %d > upper bound %d",
				n, res.MaxLoad, upper)
		}
	}
}

// A_C (0-reallocation) is immune: with d=0 the adversary gets p=0 phases
// and cannot force anything beyond L* = 1.
func TestAdversaryCannotBeatConstant(t *testing.T) {
	m := tree.MustNew(256)
	res := RunDeterministic(core.NewConstant(m), 0)
	if res.MaxLoad != 1 {
		t.Errorf("A_C forced to load %d, want 1", res.MaxLoad)
	}
}

func TestSigmaRDefaults(t *testing.T) {
	seq, stats := SigmaR(SigmaRConfig{N: 1 << 16, Seed: 1})
	if err := seq.Validate(1 << 16); err != nil {
		t.Fatalf("invalid σ_r: %v", err)
	}
	// N = 2^16: logN = 16, base = 16, phases = 16/(2·4) = 2.
	if stats.Base != 16 {
		t.Errorf("base = %d, want 16", stats.Base)
	}
	if stats.Phases != 2 {
		t.Errorf("phases = %d, want 2", stats.Phases)
	}
	if stats.KeepProb != 1.0/16 {
		t.Errorf("keep prob = %g", stats.KeepProb)
	}
	if stats.TheoremBound <= 0 || stats.ProvedBound <= 0 || stats.ProvedBound > stats.TheoremBound*7 {
		t.Errorf("bounds look wrong: %+v", stats)
	}
}

// Lemma 5: s(σ_r) ≤ N with high probability. With our power-of-two base
// the phase-0 arrivals total N/3 and survivors are rare; check across
// seeds that the sequence size never exceeds N and L* = 1.
func TestSigmaRLemma5(t *testing.T) {
	n := 1 << 14
	for seed := int64(0); seed < 50; seed++ {
		seq, stats := SigmaR(SigmaRConfig{N: n, Seed: seed})
		if stats.SequenceSize > int64(n) {
			t.Errorf("seed %d: s(σ_r) = %d > N = %d", seed, stats.SequenceSize, n)
		}
		if stats.OptimalLoad != 1 {
			t.Errorf("seed %d: L* = %d, want 1", seed, stats.OptimalLoad)
		}
		if seq.NumArrivals() == 0 {
			t.Errorf("seed %d: empty σ_r", seed)
		}
	}
}

// σ_r must actually hurt: across seeds, the mean max load of the greedy
// and randomized algorithms on σ_r exceeds the proved lower-bound factor
// (L* = 1).
func TestSigmaRForcesLoad(t *testing.T) {
	n := 1 << 14
	m := tree.MustNew(n)
	const seeds = 30
	sumG, sumR := 0.0, 0.0
	var proved float64
	for seed := int64(0); seed < seeds; seed++ {
		seq, stats := SigmaR(SigmaRConfig{N: n, Seed: seed})
		proved = stats.ProvedBound
		g := core.NewGreedy(m2(n))
		sumG += float64(maxLoadOn(g, seq))
		r := core.NewRandom(m2(n), seed+1000)
		sumR += float64(maxLoadOn(r, seq))
	}
	_ = m
	if sumG/seeds < proved {
		t.Errorf("greedy mean load %.2f below proved bound %.2f", sumG/seeds, proved)
	}
	if sumR/seeds < proved {
		t.Errorf("randomized mean load %.2f below proved bound %.2f", sumR/seeds, proved)
	}
}

func m2(n int) *tree.Machine { return tree.MustNew(n) }

func maxLoadOn(a core.Allocator, seq task.Sequence) int {
	max := 0
	for _, e := range seq.Events {
		switch e.Kind {
		case task.Arrive:
			a.Arrive(task.Task{ID: e.Task, Size: e.Size})
		case task.Depart:
			a.Depart(e.Task)
		}
		if l := a.MaxLoad(); l > max {
			max = l
		}
	}
	return max
}

func TestSigmaROverrides(t *testing.T) {
	seq, stats := SigmaR(SigmaRConfig{N: 256, Base: 4, Phases: 3, KeepProb: 0.5, Seed: 9})
	if stats.Base != 4 || stats.Phases != 3 || stats.KeepProb != 0.5 {
		t.Fatalf("overrides not honored: %+v", stats)
	}
	if err := seq.Validate(256); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Sizes used: 1, 4, 16.
	seen := map[int]bool{}
	for _, e := range seq.Events {
		if e.Kind == task.Arrive {
			seen[e.Size] = true
		}
	}
	for _, want := range []int{1, 4, 16} {
		if !seen[want] {
			t.Errorf("size %d never arrived", want)
		}
	}
}
